// Data cleaning: near-duplicate detection by approximate string matching —
// the paper's opening motivation. Strings are tokenized into 3-grams, so
// finding near-duplicate records becomes exact set similarity search; the
// whole probe workload runs as one RangeBatch over the engine's thread
// pool.
//
//   $ ./build/example_data_cleaning

#include <cstdio>
#include <string>
#include <vector>

#include "les3/les3.h"

namespace {

/// A messy customer table: clusters of near-duplicates with typos, spacing
/// and casing differences, generated programmatically around clean
/// templates.
std::vector<std::string> MakeDirtyRecords(size_t clusters,
                                          size_t copies_per_cluster,
                                          les3::Rng* rng) {
  const char* first[] = {"jonathan", "elizabeth", "christopher", "margaret",
                         "alexander", "katherine", "sebastian", "gabriella"};
  const char* last[] = {"smith", "johnson", "williams", "brown", "jones",
                        "garcia", "miller", "davis"};
  const char* street[] = {"main st", "oak avenue", "park road", "hill lane"};
  std::vector<std::string> records;
  for (size_t c = 0; c < clusters; ++c) {
    std::string base = std::string(first[c % 8]) + " " + last[(c / 8) % 8] +
                       " " + std::to_string(100 + c) + " " +
                       street[c % 4];
    for (size_t copy = 0; copy < copies_per_cluster; ++copy) {
      std::string r = base;
      // Inject typos: drop, swap, or duplicate a character.
      size_t edits = rng->Uniform(3);
      for (size_t e = 0; e < edits && r.size() > 4; ++e) {
        size_t pos = 1 + rng->Uniform(r.size() - 2);
        switch (rng->Uniform(3)) {
          case 0: r.erase(pos, 1); break;
          case 1: std::swap(r[pos], r[pos + 1]); break;
          default: r.insert(pos, 1, r[pos]); break;
        }
      }
      records.push_back(std::move(r));
    }
  }
  return records;
}

}  // namespace

int main() {
  using namespace les3;
  Rng rng(7);
  // 12,000 dirty records in 2,000 near-duplicate clusters.
  auto records = MakeDirtyRecords(2000, 6, &rng);

  // Tokenize to 3-gram sets over a shared vocabulary.
  Vocabulary vocab;
  auto db = std::make_shared<SetDatabase>();
  for (const auto& r : records) {
    db->AddSet(TokenizeQGrams(r, 3, &vocab));
  }
  std::printf("tokenized %zu records into %s\n", records.size(),
              ComputeStats(*db).ToString().c_str());

  // Build the LES3 engine.
  api::EngineOptions options;
  options.num_groups = 64;
  options.cascade.init_groups = 32;
  auto engine =
      api::EngineBuilder::Build(db, "les3", options).ValueOrDie();
  std::printf("engine: %s\n", engine->Describe().c_str());

  // Deduplicate: for a batch of probe records, find near-duplicates at
  // Jaccard >= 0.55 on 3-grams — one RangeBatch call.
  const size_t kProbes = 50;
  std::vector<SetId> probe_ids;
  std::vector<SetRecord> probes;
  for (size_t p = 0; p < kProbes; ++p) {
    SetId probe = static_cast<SetId>(rng.Uniform(records.size()));
    probe_ids.push_back(probe);
    probes.emplace_back(db->set(probe));
  }
  auto results = engine->RangeBatch(probes, 0.55);

  size_t found_dups = 0;
  double total_pe = 0;
  for (size_t p = 0; p < kProbes; ++p) {
    total_pe += results[p].stats.pruning_efficiency;
    if (p < 3) {
      std::printf("\nnear-duplicates of \"%s\":\n",
                  records[probe_ids[p]].c_str());
      for (const auto& [id, sim] : results[p].hits) {
        if (id == probe_ids[p]) continue;
        std::printf("  %.3f  \"%s\"\n", sim, records[id].c_str());
      }
    }
    found_dups += results[p].hits.size() > 1 ? results[p].hits.size() - 1 : 0;
  }
  std::printf(
      "\n%zu probes: %zu near-duplicates found, mean pruning efficiency "
      "%.4f\n",
      kProbes, found_dups, total_pe / kProbes);
  return 0;
}
