// Data cleaning: near-duplicate detection by approximate string matching —
// the paper's opening motivation. Strings are tokenized into 3-grams, so
// finding near-duplicate records becomes exact set similarity search.
//
//   $ ./build/examples/data_cleaning

#include <cstdio>
#include <string>
#include <vector>

#include "les3/les3.h"

namespace {

/// A messy customer table: clusters of near-duplicates with typos, spacing
/// and casing differences, generated programmatically around clean
/// templates.
std::vector<std::string> MakeDirtyRecords(size_t clusters,
                                          size_t copies_per_cluster,
                                          les3::Rng* rng) {
  const char* first[] = {"jonathan", "elizabeth", "christopher", "margaret",
                         "alexander", "katherine", "sebastian", "gabriella"};
  const char* last[] = {"smith", "johnson", "williams", "brown", "jones",
                        "garcia", "miller", "davis"};
  const char* street[] = {"main st", "oak avenue", "park road", "hill lane"};
  std::vector<std::string> records;
  for (size_t c = 0; c < clusters; ++c) {
    std::string base = std::string(first[c % 8]) + " " + last[(c / 8) % 8] +
                       " " + std::to_string(100 + c) + " " +
                       street[c % 4];
    for (size_t copy = 0; copy < copies_per_cluster; ++copy) {
      std::string r = base;
      // Inject typos: drop, swap, or duplicate a character.
      size_t edits = rng->Uniform(3);
      for (size_t e = 0; e < edits && r.size() > 4; ++e) {
        size_t pos = 1 + rng->Uniform(r.size() - 2);
        switch (rng->Uniform(3)) {
          case 0: r.erase(pos, 1); break;
          case 1: std::swap(r[pos], r[pos + 1]); break;
          default: r.insert(pos, 1, r[pos]); break;
        }
      }
      records.push_back(std::move(r));
    }
  }
  return records;
}

}  // namespace

int main() {
  using namespace les3;
  Rng rng(7);
  // 12,000 dirty records in 2,000 near-duplicate clusters.
  auto records = MakeDirtyRecords(2000, 6, &rng);

  // Tokenize to 3-gram sets over a shared vocabulary.
  Vocabulary vocab;
  SetDatabase db;
  for (const auto& r : records) {
    db.AddSet(TokenizeQGrams(r, 3, &vocab));
  }
  std::printf("tokenized %zu records into %s\n", records.size(),
              ComputeStats(db).ToString().c_str());

  // Partition with L2P and index.
  l2p::CascadeOptions opts;
  opts.init_groups = 32;
  opts.target_groups = 64;
  l2p::L2PPartitioner partitioner(opts);
  auto part = partitioner.Partition(db, opts.target_groups);
  search::Les3Index index(db, part.assignment, part.num_groups);

  // Deduplicate: for a few probe records, find near-duplicates at Jaccard
  // >= 0.55 on 3-grams.
  size_t found_dups = 0;
  double total_pe = 0;
  const size_t kProbes = 50;
  for (size_t p = 0; p < kProbes; ++p) {
    SetId probe = static_cast<SetId>(rng.Uniform(records.size()));
    search::QueryStats stats;
    auto dups = index.Range(index.db().set(probe), 0.55, &stats);
    total_pe += stats.pruning_efficiency;
    if (p < 3) {
      std::printf("\nnear-duplicates of \"%s\":\n", records[probe].c_str());
      for (const auto& [id, sim] : dups) {
        if (id == probe) continue;
        std::printf("  %.3f  \"%s\"\n", sim, records[id].c_str());
      }
    }
    found_dups += dups.size() > 1 ? dups.size() - 1 : 0;
  }
  std::printf(
      "\n%zu probes: %zu near-duplicates found, mean pruning efficiency "
      "%.4f\n",
      kProbes, found_dups, total_pe / kProbes);
  return 0;
}
