// Digital-trace analysis on a social network (the paper's FS workload):
// each user is a set whose tokens are their friends; "who is most similar
// to user X" is a kNN set-similarity query. Demonstrates cosine similarity
// (TGM applicability beyond Jaccard) and the disk-resident backends — all
// four engines here share one owned database through the unified API.
//
//   $ ./build/example_social_network

#include <cstdio>

#include "les3/les3.h"

int main() {
  using namespace les3;
  // A community-structured friendship graph: 30k users in communities of
  // ~60; friends are drawn mostly from one's own community.
  const auto& spec = datagen::AnalogSpecByName("FS");
  datagen::PowerLawSimOptions gen;
  gen.num_sets = 30000;
  gen.num_tokens = 30000;  // tokens are user ids
  gen.avg_set_size = spec.avg_set_size;
  gen.alpha = 1.6;
  gen.sets_per_cluster = 60;
  gen.seed = 99;
  auto db = std::make_shared<SetDatabase>(
      datagen::GeneratePowerLawSimilarity(gen));
  std::printf("friend sets: %s\n", ComputeStats(*db).ToString().c_str());

  // Cosine similarity: also satisfies the TGM Applicability Property.
  api::EngineOptions options;
  options.measure = SimilarityMeasure::kCosine;
  options.num_groups = 150;  // ~0.5% of |D|
  options.cascade.init_groups = 64;
  auto engine = api::EngineBuilder::Build(db, "les3", options).ValueOrDie();

  SetId user = 1234;
  auto similar = engine->Knn(db->set(user), 5);
  std::printf("\nusers with the most similar friend circles to user %u "
              "(cosine):\n", user);
  for (const auto& [id, sim] : similar.hits) {
    if (id == user) continue;
    std::printf("  user %-6u cosine %.4f\n", id, sim);
  }
  std::printf("pruning efficiency %.4f (%llu of %zu sets verified)\n",
              similar.stats.pruning_efficiency,
              static_cast<unsigned long long>(
                  similar.stats.candidates_verified),
              db->size());

  // Disk-resident variants: same database (shared, not copied), groups
  // laid out contiguously on a simulated 5400-RPM HDD. Compare against a
  // sequential full scan.
  auto on_disk = api::EngineBuilder::Build(db, "disk_les3", options)
                     .ValueOrDie();
  auto scan = api::EngineBuilder::Build(db, "disk_brute_force", options)
                  .ValueOrDie();
  auto r1 = on_disk->Knn(db->set(user), 5);
  auto r2 = scan->Knn(db->set(user), 5);
  std::printf("\ndisk mode: LES3 %.1fms I/O (%llu seeks) vs full scan "
              "%.1fms I/O\n",
              r1.io->io_ms, static_cast<unsigned long long>(r1.io->seeks),
              r2.io->io_ms);
  return 0;
}
