// Digital-trace analysis on a social network (the paper's FS workload):
// each user is a set whose tokens are their friends; "who is most similar
// to user X" is a kNN set-similarity query. Demonstrates cosine similarity
// (TGM applicability beyond Jaccard) and the disk-resident mode.
//
//   $ ./build/examples/social_network

#include <cstdio>

#include "les3/les3.h"

int main() {
  using namespace les3;
  // A community-structured friendship graph: 30k users in communities of
  // ~60; friends are drawn mostly from one's own community.
  const auto& spec = datagen::AnalogSpecByName("FS");
  datagen::PowerLawSimOptions gen;
  gen.num_sets = 30000;
  gen.num_tokens = 30000;  // tokens are user ids
  gen.avg_set_size = spec.avg_set_size;
  gen.alpha = 1.6;
  gen.sets_per_cluster = 60;
  gen.seed = 99;
  SetDatabase db = datagen::GeneratePowerLawSimilarity(gen);
  std::printf("friend sets: %s\n", ComputeStats(db).ToString().c_str());

  l2p::CascadeOptions opts;
  opts.init_groups = 64;
  opts.target_groups = 150;  // ~0.5% of |D|
  l2p::L2PPartitioner partitioner(opts);
  auto part = partitioner.Partition(db, opts.target_groups);

  // Cosine similarity: also satisfies the TGM Applicability Property.
  search::Les3Index index(db, part.assignment, part.num_groups,
                          SimilarityMeasure::kCosine);

  SetId user = 1234;
  search::QueryStats stats;
  auto similar = index.Knn(db.set(user), 5, &stats);
  std::printf("\nusers with the most similar friend circles to user %u "
              "(cosine):\n", user);
  for (const auto& [id, sim] : similar) {
    if (id == user) continue;
    std::printf("  user %-6u cosine %.4f\n", id, sim);
  }
  std::printf("pruning efficiency %.4f (%llu of %zu sets verified)\n",
              stats.pruning_efficiency,
              static_cast<unsigned long long>(stats.candidates_verified),
              db.size());

  // Disk-resident variant: groups laid out contiguously; simulated 5400-RPM
  // HDD. Compare against a sequential full scan.
  storage::DiskLes3 on_disk(&db, part.assignment, part.num_groups,
                            SimilarityMeasure::kCosine);
  storage::DiskBruteForce scan(&db, SimilarityMeasure::kCosine);
  auto r1 = on_disk.Knn(db.set(user), 5);
  auto r2 = scan.Knn(db.set(user), 5);
  std::printf("\ndisk mode: LES3 %.1fms I/O (%llu seeks) vs full scan "
              "%.1fms I/O\n",
              r1.io_ms, static_cast<unsigned long long>(r1.seeks), r2.io_ms);
  return 0;
}
