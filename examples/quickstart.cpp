// Quickstart: generate a database, learn a partitioning with L2P, build the
// LES3 index, and run kNN + range queries.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "les3/les3.h"

int main() {
  using namespace les3;

  // 1. A synthetic database: 20k sets over 10k tokens with Zipfian token
  //    popularity (swap in your own data via SetDatabase::AddSet or Load).
  datagen::ZipfOptions gen;
  gen.num_sets = 20000;
  gen.num_tokens = 10000;
  gen.avg_set_size = 10;
  gen.seed = 42;
  SetDatabase db = datagen::GenerateZipf(gen);
  std::printf("database: %s\n", ComputeStats(db).ToString().c_str());

  // 2. Learn the partitioning with L2P (cascade of Siamese networks over
  //    PTR representations). n ≈ 0.5% of |D| groups is the paper's sweet
  //    spot.
  l2p::CascadeOptions opts;
  opts.init_groups = 64;
  opts.target_groups = 128;
  l2p::L2PPartitioner partitioner(opts);
  auto part = partitioner.Partition(db, opts.target_groups);
  std::printf("L2P: %u groups in %.2fs (%llu models trained)\n",
              part.num_groups, part.seconds,
              static_cast<unsigned long long>(
                  partitioner.last_cascade().models_trained));

  // 3. Build the index (TGM + group-at-a-time search engine).
  search::Les3Index index(db, part.assignment, part.num_groups,
                          SimilarityMeasure::kJaccard);
  std::printf("TGM size: %s (compressed bitmaps)\n",
              HumanBytes(index.tgm().BitmapBytes()).c_str());

  // 4. Query: top-5 most similar sets to set #7, then all sets within
  //    Jaccard 0.6.
  const SetRecord& query = db.set(7);
  search::QueryStats stats;
  auto top5 = index.Knn(query, 5, &stats);
  std::printf("\nkNN(k=5) results (PE %.4f, %llu candidates verified):\n",
              stats.pruning_efficiency,
              static_cast<unsigned long long>(stats.candidates_verified));
  for (const auto& [id, sim] : top5) {
    std::printf("  set %-6u similarity %.4f\n", id, sim);
  }

  auto close = index.Range(query, 0.6, &stats);
  std::printf("\nrange(delta=0.6): %zu results (PE %.4f)\n", close.size(),
              stats.pruning_efficiency);

  // 5. Results are exact: verify against a brute-force scan.
  baselines::BruteForce brute(&index.db());
  auto expected = brute.Knn(query, 5);
  bool exact = true;
  for (size_t i = 0; i < top5.size(); ++i) {
    exact = exact && top5[i].second == expected[i].second;
  }
  std::printf("\nexactness check vs brute force: %s\n",
              exact ? "PASS" : "FAIL");
  return exact ? 0 : 1;
}
