// Quickstart: generate a database, build a search engine through the
// unified API, and run kNN + range queries. Switching backend is a
// one-string change — every backend answers the same queries exactly.
//
//   $ ./build/example_quickstart

#include <cstdio>

#include "les3/les3.h"

int main() {
  using namespace les3;

  // 1. A synthetic database: 20k sets over 10k tokens with Zipfian token
  //    popularity (swap in your own data via SetDatabase::AddSet or Load).
  datagen::ZipfOptions gen;
  gen.num_sets = 20000;
  gen.num_tokens = 10000;
  gen.avg_set_size = 10;
  gen.seed = 42;
  auto db = std::make_shared<SetDatabase>(datagen::GenerateZipf(gen));
  std::printf("database: %s\n", ComputeStats(*db).ToString().c_str());

  // 2. Build the LES3 engine (L2P partitioning + TGM index behind the
  //    scenes). n ≈ 0.5% of |D| groups is the paper's sweet spot.
  api::EngineOptions options;
  options.num_groups = 128;
  options.cascade.init_groups = 64;
  auto built = api::EngineBuilder::Build(db, "les3", options);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  auto engine = std::move(built).ValueOrDie();
  std::printf("engine: %s, index %s\n", engine->Describe().c_str(),
              HumanBytes(engine->IndexBytes()).c_str());

  // 3. Query: top-5 most similar sets to set #7, then all sets within
  //    Jaccard 0.6.
  SetView query = db->set(7);
  auto top5 = engine->Knn(query, 5);
  std::printf("\nkNN(k=5) results (PE %.4f, %llu candidates verified):\n",
              top5.stats.pruning_efficiency,
              static_cast<unsigned long long>(
                  top5.stats.candidates_verified));
  for (const auto& [id, sim] : top5.hits) {
    std::printf("  set %-6u similarity %.4f\n", id, sim);
  }

  auto close = engine->Range(query, 0.6);
  std::printf("\nrange(delta=0.6): %zu results (PE %.4f)\n",
              close.hits.size(), close.stats.pruning_efficiency);

  // 4. Results are exact: a brute-force engine over the same (shared, not
  //    copied) database must agree.
  auto brute = api::EngineBuilder::Build(db, "brute_force", options);
  auto expected = brute.value()->Knn(query, 5);
  bool exact = top5.hits.size() == expected.hits.size();
  for (size_t i = 0; exact && i < top5.hits.size(); ++i) {
    exact = top5.hits[i].second == expected.hits[i].second;
  }
  std::printf("\nexactness check vs brute force: %s\n",
              exact ? "PASS" : "FAIL");

  // 5. Multi-query workloads parallelize for free with the batch entry
  //    points: results are identical to sequential Knn calls.
  std::vector<SetRecord> queries;
  for (SetId qid = 0; qid < 64; ++qid) queries.emplace_back(db->set(qid * 100));
  auto batch = engine->KnnBatch(queries, 5);
  std::printf("KnnBatch answered %zu queries, first PE %.4f\n", batch.size(),
              batch[0].stats.pruning_efficiency);
  return exact ? 0 : 1;
}
