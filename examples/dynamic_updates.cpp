// Streaming inserts with an evolving token universe (paper Section 6):
// the engine absorbs new sets — including sets whose tokens were never
// seen at build time — without retraining, and pruning efficiency is
// tracked online through the unified Insert / Knn interface.
//
//   $ ./build/example_dynamic_updates

#include <cstdio>

#include "les3/les3.h"

int main() {
  using namespace les3;
  // Initial corpus: 20k sets over 8k tokens.
  datagen::ZipfOptions gen;
  gen.num_sets = 20000;
  gen.num_tokens = 8000;
  gen.avg_set_size = 9;
  gen.seed = 5;

  api::EngineOptions options;
  options.num_groups = 100;
  options.cascade.init_groups = 64;
  auto engine =
      api::EngineBuilder::Build(datagen::GenerateZipf(gen), "les3", options)
          .ValueOrDie();
  std::printf("built %s on %zu sets\n", engine->Describe().c_str(),
              engine->db().size());

  // Stream 10k inserts; every other batch introduces brand-new tokens
  // (ids beyond the original universe).
  Rng rng(11);
  auto measure_pe = [&]() {
    double pe = 0;
    const int kProbes = 50;
    for (int i = 0; i < kProbes; ++i) {
      SetId q = static_cast<SetId>(rng.Uniform(engine->db().size()));
      pe += engine->Knn(engine->db().set(q), 10).stats.pruning_efficiency;
    }
    return pe / kProbes;
  };

  std::printf("\nbatch  inserted  new-token?  |T|    avg PE\n");
  for (int batch = 0; batch < 5; ++batch) {
    bool open_universe = batch % 2 == 1;
    for (int i = 0; i < 2000; ++i) {
      std::vector<TokenId> tokens;
      size_t size = 3 + rng.Uniform(10);
      for (size_t t = 0; t < size; ++t) {
        TokenId tok = static_cast<TokenId>(rng.Uniform(8000));
        if (open_universe && t % 2 == 0) {
          tok += 8000 + batch * 1000;  // previously unseen region
        }
        tokens.push_back(tok);
      }
      auto id = engine->Insert(SetRecord::FromTokens(std::move(tokens)));
      if (!id.ok()) {
        std::fprintf(stderr, "insert failed: %s\n",
                     id.status().ToString().c_str());
        return 1;
      }
    }
    std::printf("%5d  %8zu  %9s  %5u  %.4f\n", batch, engine->db().size(),
                open_universe ? "yes" : "no", engine->db().num_tokens(),
                measure_pe());
  }

  // The newly inserted sets are immediately searchable.
  SetView last = engine->db().set(engine->db().size() - 1);
  auto hits = engine->Knn(last, 3);
  std::printf("\nlast inserted set: top hit similarity %.3f (self)\n",
              hits.hits.empty() ? 0.0 : hits.hits[0].second);
  return 0;
}
