// Streaming inserts with an evolving token universe (paper Section 6):
// the index absorbs new sets — including sets whose tokens were never seen
// at build time — without retraining, and pruning efficiency is tracked
// online.
//
//   $ ./build/examples/dynamic_updates

#include <cstdio>

#include "les3/les3.h"

int main() {
  using namespace les3;
  // Initial corpus: 20k sets over 8k tokens.
  datagen::ZipfOptions gen;
  gen.num_sets = 20000;
  gen.num_tokens = 8000;
  gen.avg_set_size = 9;
  gen.seed = 5;
  SetDatabase db = datagen::GenerateZipf(gen);

  l2p::CascadeOptions opts;
  opts.init_groups = 64;
  opts.target_groups = 100;
  l2p::L2PPartitioner partitioner(opts);
  auto part = partitioner.Partition(db, opts.target_groups);
  search::Les3Index index(db, part.assignment, part.num_groups);
  std::printf("built index on %zu sets, %u groups, %u token columns\n",
              index.db().size(), index.tgm().num_groups(),
              index.tgm().num_token_columns());

  // Stream 10k inserts; every other batch introduces brand-new tokens
  // (ids beyond the original universe).
  Rng rng(11);
  auto measure_pe = [&]() {
    double pe = 0;
    const int kProbes = 50;
    for (int i = 0; i < kProbes; ++i) {
      SetId q = static_cast<SetId>(rng.Uniform(index.db().size()));
      search::QueryStats stats;
      index.Knn(index.db().set(q), 10, &stats);
      pe += stats.pruning_efficiency;
    }
    return pe / kProbes;
  };

  std::printf("\nbatch  inserted  new-token?  |T| columns  avg PE\n");
  for (int batch = 0; batch < 5; ++batch) {
    bool open_universe = batch % 2 == 1;
    for (int i = 0; i < 2000; ++i) {
      std::vector<TokenId> tokens;
      size_t size = 3 + rng.Uniform(10);
      for (size_t t = 0; t < size; ++t) {
        TokenId tok = static_cast<TokenId>(rng.Uniform(8000));
        if (open_universe && t % 2 == 0) {
          tok += 8000 + batch * 1000;  // previously unseen region
        }
        tokens.push_back(tok);
      }
      index.Insert(SetRecord::FromTokens(std::move(tokens)));
    }
    std::printf("%5d  %8zu  %9s  %11u  %.4f\n", batch,
                index.db().size(), open_universe ? "yes" : "no",
                index.tgm().num_token_columns(), measure_pe());
  }

  // The newly inserted sets are immediately searchable.
  const SetRecord& last = index.db().set(index.db().size() - 1);
  auto hits = index.Knn(last, 3);
  std::printf("\nlast inserted set: top hit similarity %.3f (self)\n",
              hits.empty() ? 0.0 : hits[0].second);
  return 0;
}
