// Exactness tests for the DualTrans baseline (transform + R-tree).

#include "baselines/dualtrans.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/brute_force.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace les3 {
namespace baselines {
namespace {

SetDatabase MakeDb(uint64_t seed, uint32_t num_sets = 500) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = 150;
  opts.avg_set_size = 8;
  opts.zipf_exponent = 0.8;
  opts.seed = seed;
  return datagen::GenerateZipf(opts);
}

TEST(DualTransTest, TransformSumsToSetSize) {
  SetDatabase db = MakeDb(1, 100);
  DualTrans dt(&db);
  for (SetId i = 0; i < 50; ++i) {
    auto vec = dt.Transform(db.set(i));
    double sum = 0;
    for (float v : vec) sum += v;
    EXPECT_DOUBLE_EQ(sum, static_cast<double>(db.set(i).size()));
  }
}

class DualTransMeasureTest
    : public ::testing::TestWithParam<SimilarityMeasure> {};

TEST_P(DualTransMeasureTest, KnnMatchesBruteForce) {
  SetDatabase db = MakeDb(3);
  DualTransOptions opts;
  opts.measure = GetParam();
  DualTrans index(&db, opts);
  BruteForce brute(&db, GetParam());
  Rng rng(4);
  for (size_t k : {1u, 10u}) {
    for (int q = 0; q < 15; ++q) {
      SetView query = db.set(static_cast<SetId>(rng.Uniform(db.size())));
      auto got = index.Knn(query, k);
      auto expected = brute.Knn(query, k);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].second, expected[i].second, 1e-12);
      }
    }
  }
}

TEST_P(DualTransMeasureTest, RangeMatchesBruteForce) {
  SetDatabase db = MakeDb(5);
  DualTransOptions opts;
  opts.measure = GetParam();
  DualTrans index(&db, opts);
  BruteForce brute(&db, GetParam());
  Rng rng(6);
  for (double delta : {0.4, 0.7, 0.9}) {
    for (int q = 0; q < 15; ++q) {
      SetView query = db.set(static_cast<SetId>(rng.Uniform(db.size())));
      auto got = index.Range(query, delta);
      auto expected = brute.Range(query, delta);
      ASSERT_EQ(got.size(), expected.size()) << delta;
      std::set<SetId> g, e;
      for (auto& h : got) g.insert(h.first);
      for (auto& h : expected) e.insert(h.first);
      EXPECT_EQ(g, e);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, DualTransMeasureTest,
                         ::testing::Values(SimilarityMeasure::kJaccard,
                                           SimilarityMeasure::kDice,
                                           SimilarityMeasure::kCosine),
                         [](const auto& info) { return ToString(info.param); });

TEST(DualTransTest, DimensionalityTunable) {
  SetDatabase db = MakeDb(7, 300);
  for (size_t dims : {4u, 16u, 64u}) {
    DualTransOptions opts;
    opts.dims = dims;
    DualTrans index(&db, opts);
    auto got = index.Knn(db.set(0), 5);
    BruteForce brute(&db);
    auto expected = brute.Knn(db.set(0), 5);
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].second, expected[i].second, 1e-12) << dims;
    }
  }
}

TEST(DualTransTest, IndexHeavierThanPostingsAlone) {
  // The point of Figures 11-13: the tree + vectors are heavy.
  SetDatabase db = MakeDb(9, 400);
  DualTrans index(&db);
  EXPECT_GT(index.IndexBytes(),
            static_cast<uint64_t>(db.size()) * 16 * sizeof(float));
}

TEST(DualTransTest, PrunesOnEasyQueries) {
  SetDatabase db = MakeDb(11, 800);
  DualTrans index(&db);
  search::QueryStats stats;
  index.Range(db.set(0), 0.95, &stats);
  EXPECT_LT(stats.candidates_verified, db.size());
}

}  // namespace
}  // namespace baselines
}  // namespace les3
