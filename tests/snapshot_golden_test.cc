// Golden-file test: the serialized form of a fixed-seed build is pinned
// byte-for-byte against a snapshot checked into tests/data/. Any change
// to the encoding — field order, widths, container layout, chunk
// framing — fails this test and forces a deliberate format-version bump
// (plus a regenerated golden file).
//
// The golden corpus is built with init_groups == num_groups, so the L2P
// cascade performs sorted initialization only and trains zero models:
// the build is pure integer code, deterministic across compilers, which
// is what makes a byte-level pin meaningful (CI uploads the artifact so
// other platforms can diff it too).
//
// Regenerate after an intentional format change:
//   LES3_UPDATE_GOLDEN=1 ./build/snapshot_golden_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/engine_builder.h"
#include "datagen/generators.h"
#include "persist/snapshot.h"

#ifndef LES3_TEST_DATA_DIR
#error "LES3_TEST_DATA_DIR must point at tests/data (set by CMakeLists.txt)"
#endif

namespace les3 {
namespace persist {
namespace {

const char* GoldenPath() {
  static const std::string* path =
      new std::string(std::string(LES3_TEST_DATA_DIR) + "/golden_v1.les3snap");
  return path->c_str();
}

/// The pinned build: every knob fixed, no trained models (see header
/// comment), so the snapshot bytes are a pure function of this recipe.
std::shared_ptr<SetDatabase> GoldenDb() {
  datagen::UniformOptions o;
  o.num_sets = 120;
  o.num_tokens = 40;
  o.avg_set_size = 4.0;
  o.seed = 7;
  return std::make_shared<SetDatabase>(datagen::GenerateUniform(o));
}

api::EngineOptions GoldenOptions() {
  api::EngineOptions options;
  options.measure = SimilarityMeasure::kJaccard;
  options.num_groups = 10;
  options.cascade.init_groups = 10;  // == num_groups: no models trained
  options.cascade.seed = 7;
  options.keep_l2p_models = true;  // trained-model set is provably empty
  return options;
}

std::vector<uint8_t> BuildGoldenBytes() {
  auto engine = api::EngineBuilder::Build(GoldenDb(), "les3", GoldenOptions());
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  std::string path = ::testing::TempDir() + "les3_golden_fresh.snap";
  EXPECT_TRUE(engine.value()->Save(path).ok());
  std::vector<uint8_t> bytes;
  EXPECT_TRUE(ReadFileBytes(path, &bytes).ok());
  std::remove(path.c_str());
  return bytes;
}

TEST(SnapshotGoldenTest, FixedSeedBuildSerializesByteStable) {
  std::vector<uint8_t> fresh = BuildGoldenBytes();
  ASSERT_FALSE(fresh.empty());
  if (std::getenv("LES3_UPDATE_GOLDEN") != nullptr) {
    ASSERT_TRUE(WriteFileBytes(GoldenPath(), fresh).ok());
    GTEST_SKIP() << "golden file regenerated at " << GoldenPath();
  }
  std::vector<uint8_t> golden;
  ASSERT_TRUE(ReadFileBytes(GoldenPath(), &golden).ok())
      << "missing golden file; regenerate with LES3_UPDATE_GOLDEN=1";
  ASSERT_EQ(golden.size(), fresh.size())
      << "serialized size changed — format drift without a version bump?";
  // Locate the first diverging byte for an actionable failure message.
  for (size_t i = 0; i < golden.size(); ++i) {
    ASSERT_EQ(golden[i], fresh[i])
        << "snapshot bytes diverge at offset " << i
        << " — the format changed; bump kSnapshotVersion and regenerate";
  }
}

TEST(SnapshotGoldenTest, GoldenFileOpensAndAnswersExactly) {
  auto reloaded = api::EngineBuilder::Open(GoldenPath());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  auto fresh = api::EngineBuilder::Build(GoldenDb(), "les3", GoldenOptions());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(reloaded.value()->db().size(), fresh.value()->db().size());
  for (SetId id = 0; id < 20; ++id) {
    auto expected = fresh.value()->Knn(fresh.value()->db().set(id), 5);
    auto actual = reloaded.value()->Knn(fresh.value()->db().set(id), 5);
    ASSERT_EQ(expected.hits.size(), actual.hits.size()) << "q=" << id;
    for (size_t i = 0; i < expected.hits.size(); ++i) {
      EXPECT_EQ(expected.hits[i].first, actual.hits[i].first);
      EXPECT_DOUBLE_EQ(expected.hits[i].second, actual.hits[i].second);
    }
  }
}

TEST(SnapshotGoldenTest, BumpedVersionHeaderIsRejectedWithClearError) {
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(GoldenPath(), &bytes).ok());
  // The u32 version sits right after the 8-byte magic; write one beyond
  // the newest version this build reads (v2 is valid — sharded).
  bytes[8] = static_cast<uint8_t>(kMaxSnapshotVersion + 1);
  auto result = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  // The message must tell the operator what happened and what to do.
  EXPECT_NE(result.status().message().find("unsupported snapshot version"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().message().find("re-save"), std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace persist
}  // namespace les3
