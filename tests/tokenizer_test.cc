// Tests for core/tokenizer.h.

#include "core/tokenizer.h"

#include <gtest/gtest.h>

namespace les3 {
namespace {

TEST(VocabularyTest, AssignsStableIds) {
  Vocabulary v;
  TokenId a = v.GetOrAdd("apple");
  TokenId b = v.GetOrAdd("banana");
  EXPECT_NE(a, b);
  EXPECT_EQ(v.GetOrAdd("apple"), a);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.TokenString(a), "apple");
  EXPECT_EQ(v.Find("banana"), b);
  EXPECT_EQ(v.Find("cherry"), Vocabulary::kInvalidToken);
}

TEST(TokenizerTest, SplitWordsLowercasesAndSplits) {
  auto words = SplitWords("Hello, World!  42-fish");
  EXPECT_EQ(words,
            (std::vector<std::string>{"hello", "world", "42", "fish"}));
}

TEST(TokenizerTest, SplitWordsEmpty) {
  EXPECT_TRUE(SplitWords("  ,,, ").empty());
}

TEST(TokenizerTest, QGramsPadded) {
  auto grams = QGrams("ab", 3);
  // padded: ##ab$$ -> ##a, #ab, ab$, b$$
  EXPECT_EQ(grams, (std::vector<std::string>{"##a", "#ab", "ab$", "b$$"}));
}

TEST(TokenizerTest, QGramsSingleChar) {
  auto grams = QGrams("x", 2);
  EXPECT_EQ(grams, (std::vector<std::string>{"#x", "x$"}));
}

TEST(TokenizerTest, TokenizeWordsBuildsRecord) {
  Vocabulary v;
  SetRecord s = TokenizeWords("the cat and the hat", &v);
  EXPECT_EQ(s.size(), 5u);        // multiset: "the" twice
  EXPECT_EQ(s.DistinctCount(), 4u);
  EXPECT_EQ(v.size(), 4u);
}

TEST(TokenizerTest, SimilarStringsShareQGrams) {
  Vocabulary v;
  SetRecord a = TokenizeQGrams("jonathan smith", 3, &v);
  SetRecord b = TokenizeQGrams("jonathan smyth", 3, &v);
  SetRecord c = TokenizeQGrams("completely different", 3, &v);
  size_t ab = SetRecord::OverlapSize(a, b);
  size_t ac = SetRecord::OverlapSize(a, c);
  EXPECT_GT(ab, ac);
  EXPECT_GT(ab, a.size() / 2);  // near-duplicates share most grams
}

}  // namespace
}  // namespace les3
