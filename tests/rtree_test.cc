// Tests for the R-tree substrate: structure sanity and best-first search
// correctness against a linear scan with an admissible bound.

#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace les3 {
namespace rtree {
namespace {

std::vector<std::vector<float>> RandomVectors(size_t n, size_t d,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<float>> out(n, std::vector<float>(d));
  for (auto& v : out) {
    for (auto& x : v) x = static_cast<float>(rng.NextDouble() * 100.0);
  }
  return out;
}

/// Score = negative L1 distance to `q`; bound = negative min L1 distance
/// from `q` to the box (admissible: no point inside scores higher).
double MinL1ToBox(const std::vector<float>& q, const Mbr& mbr) {
  double d = 0;
  for (size_t i = 0; i < q.size(); ++i) {
    if (q[i] < mbr.lo[i]) {
      d += mbr.lo[i] - q[i];
    } else if (q[i] > mbr.hi[i]) {
      d += q[i] - mbr.hi[i];
    }
  }
  return d;
}

double L1(const std::vector<float>& a, const std::vector<float>& b) {
  double d = 0;
  for (size_t i = 0; i < a.size(); ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

TEST(RTreeTest, TopKMatchesLinearScan) {
  auto vectors = RandomVectors(800, 4, 1);
  RTree tree(vectors);
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<float> q(4);
    for (auto& x : q) x = static_cast<float>(rng.NextDouble() * 100.0);
    uint64_t nodes = 0, scored = 0;
    auto got = tree.TopK(
        10, [&](const Mbr& m) { return -MinL1ToBox(q, m); },
        [&](uint32_t id) { return -L1(q, vectors[id]); }, &nodes, &scored);
    // Reference: sort all by score.
    std::vector<std::pair<double, uint32_t>> ref;
    for (uint32_t i = 0; i < vectors.size(); ++i) {
      ref.push_back({-L1(q, vectors[i]), i});
    }
    std::sort(ref.begin(), ref.end(), [](auto& a, auto& b) {
      return a.first > b.first || (a.first == b.first && a.second < b.second);
    });
    ASSERT_EQ(got.size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_NEAR(got[i].second, ref[i].first, 1e-9) << "rank " << i;
    }
    // Pruning must actually happen on most queries.
    EXPECT_LE(scored, vectors.size());
  }
}

TEST(RTreeTest, RangeSearchMatchesLinearScan) {
  auto vectors = RandomVectors(600, 3, 3);
  RTree tree(vectors);
  Rng rng(4);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<float> q(3);
    for (auto& x : q) x = static_cast<float>(rng.NextDouble() * 100.0);
    double threshold = -40.0;  // all points within L1 distance 40
    auto got = tree.RangeSearch(
        threshold, [&](const Mbr& m) { return -MinL1ToBox(q, m); },
        [&](uint32_t id) { return -L1(q, vectors[id]); }, nullptr, nullptr);
    size_t expected = 0;
    for (const auto& v : vectors) {
      if (-L1(q, v) >= threshold) ++expected;
    }
    EXPECT_EQ(got.size(), expected);
  }
}

TEST(RTreeTest, EmptyTree) {
  RTree tree({});
  auto got = tree.TopK(
      5, [](const Mbr&) { return 0.0; }, [](uint32_t) { return 0.0; },
      nullptr, nullptr);
  EXPECT_TRUE(got.empty());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree({{1.0f, 2.0f}});
  auto got = tree.TopK(
      3, [](const Mbr&) { return 1.0; }, [](uint32_t) { return 0.5; },
      nullptr, nullptr);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 0u);
}

TEST(RTreeTest, LeavesRespectCapacity) {
  auto vectors = RandomVectors(1000, 2, 5);
  RTree::Options opts;
  opts.leaf_capacity = 16;
  RTree tree(vectors, opts);
  size_t total_entries = 0;
  for (size_t n = 0; n < tree.num_nodes(); ++n) {
    if (tree.IsLeaf(n)) {
      EXPECT_LE(tree.NodeEntries(n).size(), 16u);
      total_entries += tree.NodeEntries(n).size();
    }
  }
  EXPECT_EQ(total_entries, 1000u);
}

TEST(RTreeTest, MemoryBytesPositive) {
  auto vectors = RandomVectors(100, 4, 7);
  RTree tree(vectors);
  EXPECT_GT(tree.MemoryBytes(), 100 * 4u);
}

}  // namespace
}  // namespace rtree
}  // namespace les3
