// Concurrency contract of the sharded engine, exercised under
// ThreadSanitizer in CI: Insert is safe concurrently with Knn/Range on
// every shard and with other Inserts. Writer threads stream new sets in
// while reader threads hammer queries; afterwards the quiesced engine
// must agree exactly with brute force over the grown database — so the
// test catches both data races (TSan) and lost/duplicated updates
// (the differential check).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine_builder.h"
#include "api/engine_options.h"
#include "datagen/generators.h"
#include "search/maintenance.h"
#include "shard/sharded_engine.h"

namespace les3 {
namespace api {
namespace {

std::shared_ptr<SetDatabase> MakeDb(uint64_t seed, uint32_t num_sets) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = 80;
  opts.avg_set_size = 6;
  opts.zipf_exponent = 0.9;
  opts.seed = seed;
  return std::make_shared<SetDatabase>(datagen::GenerateZipf(opts));
}

EngineOptions ShardedOptions(uint32_t num_shards) {
  EngineOptions options;
  options.backend = Backend::kShardedLes3;
  options.num_shards = num_shards;
  options.num_groups = 10;
  options.cascade.init_groups = 8;
  options.cascade.min_group_size = 6;
  options.cascade.pairs_per_model = 800;
  options.cascade.seed = 19;
  options.num_threads = 4;
  return options;
}

TEST(ShardConcurrencyTest, ConcurrentInsertAndQuery) {
  constexpr uint32_t kInitialSets = 240;
  constexpr int kWriters = 2;
  constexpr int kInsertsPerWriter = 40;
  constexpr int kReaders = 3;

  auto db = MakeDb(51, kInitialSets);
  // Query records are snapshotted up front: readers must not touch the
  // (growing) global database while writers run.
  std::vector<SetRecord> queries;
  for (SetId qid = 0; qid < 24; ++qid) queries.emplace_back(db->set(qid * 9));

  auto built = EngineBuilder::Build(db, ShardedOptions(3));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SearchEngine* engine = built.value().get();

  std::atomic<bool> writers_done{false};
  std::atomic<int> insert_failures{0};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        SetRecord novel = SetRecord::FromTokens(
            {static_cast<TokenId>(100 + w * kInsertsPerWriter + i),
             static_cast<TokenId>(3 + (i % 5)),
             static_cast<TokenId>(40 + (i % 7))});
        if (!engine->Insert(std::move(novel)).ok()) ++insert_failures;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      // Keep querying until every writer finished, then one final pass so
      // each reader also queries the fully grown engine.
      do {
        const SetRecord& q = queries[i % queries.size()];
        auto knn = engine->Knn(q, 5);
        ASSERT_LE(knn.hits.size(), 5u);
        auto range = engine->Range(q, 0.5);
        ASSERT_EQ(range.stats.results, range.hits.size());
        ++i;
      } while (!writers_done.load());
    });
  }
  // Join writers (the first kWriters threads), release the readers.
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(insert_failures.load(), 0);
  ASSERT_EQ(engine->db().size(),
            kInitialSets + static_cast<size_t>(kWriters * kInsertsPerWriter));

  // Quiesced differential check: no insert was lost, duplicated, or
  // routed to a shard that cannot answer for it.
  EngineOptions reference_options;
  reference_options.backend = Backend::kBruteForce;
  auto reference = EngineBuilder::Build(db, reference_options);
  ASSERT_TRUE(reference.ok());
  for (SetId qid = 0; qid < engine->db().size(); qid += 23) {
    SetView q = engine->db().set(qid);
    auto expected = reference.value()->Knn(q, 10);
    auto actual = engine->Knn(q, 10);
    ASSERT_EQ(expected.hits.size(), actual.hits.size()) << "q=" << qid;
    for (size_t i = 0; i < expected.hits.size(); ++i) {
      EXPECT_EQ(expected.hits[i].first, actual.hits[i].first)
          << "q=" << qid << " rank " << i;
      EXPECT_DOUBLE_EQ(expected.hits[i].second, actual.hits[i].second)
          << "q=" << qid << " rank " << i;
    }
  }
}

TEST(ShardConcurrencyTest, ConcurrentBatchQueriesDuringInserts) {
  auto db = MakeDb(52, 180);
  std::vector<SetRecord> queries;
  for (SetId qid = 0; qid < 16; ++qid) queries.emplace_back(db->set(qid * 11));

  auto built = EngineBuilder::Build(db, ShardedOptions(2));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SearchEngine* engine = built.value().get();

  // Batch queries stripe (query, shard) tasks over the engine pool while
  // a writer mutates shards — the pool tasks and the writer contend on
  // the same per-shard locks.
  std::thread writer([&] {
    for (int i = 0; i < 30; ++i) {
      auto id = engine->Insert(SetRecord::FromTokens(
          {static_cast<TokenId>(90 + i), static_cast<TokenId>(i % 13)}));
      ASSERT_TRUE(id.ok());
    }
  });
  for (int round = 0; round < 5; ++round) {
    auto batch = engine->KnnBatch(queries, 6);
    ASSERT_EQ(batch.size(), queries.size());
    auto ranges = engine->RangeBatch(queries, 0.4);
    ASSERT_EQ(ranges.size(), queries.size());
  }
  writer.join();
  EXPECT_EQ(engine->db().size(), 180u + 30u);
}

// Regression for the documented ShardedEngine::db() race: StableDb() is
// the supported read path while mutations run. Reader threads snapshot
// and fully scan the copy while writers Insert/Delete/Update; TSan
// certifies the locking, the invariant checks certify each snapshot is a
// consistent point-in-time state (never a half-applied mutation).
TEST(ShardConcurrencyTest, StableDbSafeDuringMutations) {
  constexpr uint32_t kInitialSets = 200;
  auto db = MakeDb(53, kInitialSets);
  auto built = EngineBuilder::Build(db, ShardedOptions(3));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SearchEngine* engine = built.value().get();

  std::atomic<bool> writers_done{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 60; ++i) {
        const SetId target =
            static_cast<SetId>((w * 89 + i * 7) % kInitialSets);
        switch (i % 3) {
          case 0:
            ASSERT_TRUE(engine
                            ->Insert(SetRecord::FromTokens(
                                {static_cast<TokenId>(100 + i),
                                 static_cast<TokenId>(w)}))
                            .ok());
            break;
          case 1:
            // NotFound (already deleted by the other writer) is fine;
            // what matters is that the attempt is race-free.
            (void)engine->Delete(target);
            break;
          default:
            (void)engine->Update(
                target, SetRecord::FromTokens(
                            {static_cast<TokenId>(i % 80),
                             static_cast<TokenId>(30 + w)}));
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      do {
        std::shared_ptr<const SetDatabase> view = engine->StableDb();
        // Full scan of the snapshot: every token byte is read, so TSan
        // sees any write that slipped past the mutation lock.
        uint64_t live_tokens = 0;
        size_t live = 0;
        for (SetId id = 0; id < view->size(); ++id) {
          if (view->is_deleted(id)) {
            ASSERT_EQ(view->set_size(id), 0u);
            continue;
          }
          ++live;
          for (TokenId t : view->set(id)) live_tokens += t + 1;
        }
        ASSERT_EQ(live, view->num_live());
        ASSERT_EQ(view->num_live() + view->num_deleted(), view->size());
        (void)live_tokens;
      } while (!writers_done.load());
    });
  }
  for (int w = 0; w < 2; ++w) threads[w].join();
  writers_done.store(true);
  for (size_t t = 2; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(engine->db().size(), kInitialSets + 2u * 20u);
  EXPECT_GT(engine->db().num_deleted(), 0u);
}

// Sustained mixed-mutation soak with the self-healing maintenance thread
// running: inserts, deletes, updates, and queries hammer the shards while
// background cycles split/recompute groups under the same shard locks.
// Afterwards the quiesced engine (plus one synchronous full maintenance
// pass) must agree exactly with brute force over the survivor state.
TEST(ShardConcurrencyTest, MutationSoakWithMaintenanceStaysExact) {
  constexpr uint32_t kInitialSets = 240;
  auto db = MakeDb(54, kInitialSets);
  std::vector<SetRecord> queries;
  for (SetId qid = 0; qid < 20; ++qid) queries.emplace_back(db->set(qid * 11));

  auto built = EngineBuilder::Build(db, ShardedOptions(3));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SearchEngine* engine = built.value().get();
  auto* sharded = dynamic_cast<shard::ShardedEngine*>(engine);
  ASSERT_NE(sharded, nullptr);

  search::MaintenanceOptions maintenance;
  maintenance.interval = std::chrono::milliseconds(1);
  maintenance.dirt_ratio = 0.0;  // heal aggressively while traffic runs
  maintenance.min_split_size = 8;
  sharded->StartMaintenance(maintenance);

  std::atomic<bool> writers_done{false};
  std::atomic<int> insert_failures{0};
  std::vector<std::thread> threads;
  constexpr int kWriters = 2;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 90; ++i) {
        const SetId target =
            static_cast<SetId>((w * 131 + i * 17) % kInitialSets);
        switch (i % 4) {
          case 0:
          case 1:
            if (!engine
                     ->Insert(SetRecord::FromTokens(
                         {static_cast<TokenId>(90 + w * 90 + i),
                          static_cast<TokenId>(5 + (i % 11))}))
                     .ok()) {
              ++insert_failures;
            }
            break;
          case 2:
            (void)engine->Delete(target);
            break;
          default:
            (void)engine->Update(
                target, SetRecord::FromTokens(
                            {static_cast<TokenId>(i % 70),
                             static_cast<TokenId>(71 + (w + i) % 8)}));
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      do {
        const SetRecord& q = queries[i % queries.size()];
        auto knn = engine->Knn(q, 7);
        ASSERT_LE(knn.hits.size(), 7u);
        for (const auto& hit : knn.hits) ASSERT_GE(hit.second, 0.0);
        auto range = engine->Range(q, 0.4);
        ASSERT_EQ(range.stats.results, range.hits.size());
        ++i;
      } while (!writers_done.load());
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  sharded->StopMaintenance();

  EXPECT_EQ(insert_failures.load(), 0);
  EXPECT_GT(engine->db().num_deleted(), 0u);

  // One synchronous full pass: quiesced, so the report is deterministic
  // evidence the engine still had (or no longer has) debt to pay.
  Result<search::MaintenanceReport> report = sharded->MaintainNow();
  ASSERT_TRUE(report.ok());  // content depends on how much the background
                             // thread won

  // The healed engine answers exactly like brute force over the survivor
  // database (tombstones skipped), including similarity ties.
  EngineOptions reference_options;
  reference_options.backend = Backend::kBruteForce;
  auto reference = EngineBuilder::Build(
      std::make_shared<SetDatabase>(engine->db()), reference_options);
  ASSERT_TRUE(reference.ok());
  for (SetId qid = 0; qid < engine->db().size(); qid += 17) {
    if (engine->db().is_deleted(qid)) continue;
    SetRecord q(engine->db().set(qid));
    auto expected = reference.value()->Knn(q.view(), 10);
    auto actual = engine->Knn(q.view(), 10);
    ASSERT_EQ(expected.hits.size(), actual.hits.size()) << "q=" << qid;
    for (size_t i = 0; i < expected.hits.size(); ++i) {
      EXPECT_EQ(expected.hits[i].first, actual.hits[i].first)
          << "q=" << qid << " rank " << i;
      EXPECT_DOUBLE_EQ(expected.hits[i].second, actual.hits[i].second)
          << "q=" << qid << " rank " << i;
    }
  }
}

// The batched probe pipeline under fire — the TSan leg for the fused
// (chunk, shard) sub-batches: KnnBatch/RangeBatch stripe whole chunks
// through each shard's index under one reader lock while writers mutate
// shards and the background maintenance thread splits/heals them. The
// thread_local probe scratch, the per-shard activity counters, and the
// striped lock acquisitions all race here. Once quiesced, batch answers
// must equal solo answers bit for bit.
TEST(ShardConcurrencyTest, BatchedProbesDuringMutationSoak) {
  constexpr uint32_t kInitialSets = 200;
  auto db = MakeDb(55, kInitialSets);
  std::vector<SetRecord> queries;
  for (SetId qid = 0; qid < 80; ++qid) {
    queries.emplace_back(db->set((qid * 7) % kInitialSets));
  }
  queries.emplace_back();  // one empty row rides every batch

  auto built = EngineBuilder::Build(db, ShardedOptions(3));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SearchEngine* engine = built.value().get();
  auto* sharded = dynamic_cast<shard::ShardedEngine*>(engine);
  ASSERT_NE(sharded, nullptr);

  search::MaintenanceOptions maintenance;
  maintenance.interval = std::chrono::milliseconds(1);
  maintenance.dirt_ratio = 0.0;
  maintenance.min_split_size = 8;
  sharded->StartMaintenance(maintenance);

  std::atomic<bool> writers_done{false};
  std::thread writer([&] {
    for (int i = 0; i < 120; ++i) {
      const SetId target = static_cast<SetId>((i * 13) % kInitialSets);
      switch (i % 4) {
        case 0:
        case 1:
          (void)engine->Insert(SetRecord::FromTokens(
              {static_cast<TokenId>(30 + i % 40),
               static_cast<TokenId>(3 + (i % 9))}));
          break;
        case 2:
          (void)engine->Delete(target);
          break;
        default:
          (void)engine->Update(target,
                               SetRecord::FromTokens(
                                   {static_cast<TokenId>(i % 60),
                                    static_cast<TokenId>(61 + i % 10)}));
      }
    }
    writers_done.store(true);
  });
  // Batches large enough to cross the 64-query chunk boundary, so several
  // (chunk, shard) sub-batches are in flight per call.
  while (!writers_done.load()) {
    auto batch = engine->KnnBatch(queries, 6);
    ASSERT_EQ(batch.size(), queries.size());
    for (const auto& result : batch) ASSERT_LE(result.hits.size(), 6u);
    auto ranges = engine->RangeBatch(queries, 0.4);
    ASSERT_EQ(ranges.size(), queries.size());
    for (const auto& result : ranges) {
      ASSERT_EQ(result.stats.results, result.hits.size());
    }
  }
  writer.join();
  sharded->StopMaintenance();

  // Quiesced differential: the fused pipeline and the solo path walk the
  // same healed index and must agree exactly.
  auto batch = engine->KnnBatch(queries, 6);
  auto ranges = engine->RangeBatch(queries, 0.4);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto solo_knn = engine->Knn(queries[i].view(), 6);
    ASSERT_EQ(solo_knn.hits.size(), batch[i].hits.size()) << "q=" << i;
    for (size_t r = 0; r < solo_knn.hits.size(); ++r) {
      EXPECT_EQ(solo_knn.hits[r].first, batch[i].hits[r].first)
          << "q=" << i << " rank " << r;
      EXPECT_EQ(solo_knn.hits[r].second, batch[i].hits[r].second)
          << "q=" << i << " rank " << r;
    }
    auto solo_range = engine->Range(queries[i].view(), 0.4);
    ASSERT_EQ(solo_range.hits.size(), ranges[i].hits.size()) << "q=" << i;
    for (size_t r = 0; r < solo_range.hits.size(); ++r) {
      EXPECT_EQ(solo_range.hits[r].first, ranges[i].hits[r].first)
          << "q=" << i << " rank " << r;
      EXPECT_EQ(solo_range.hits[r].second, ranges[i].hits[r].second)
          << "q=" << i << " rank " << r;
    }
  }
}

}  // namespace
}  // namespace api
}  // namespace les3
