// Concurrency contract of the sharded engine, exercised under
// ThreadSanitizer in CI: Insert is safe concurrently with Knn/Range on
// every shard and with other Inserts. Writer threads stream new sets in
// while reader threads hammer queries; afterwards the quiesced engine
// must agree exactly with brute force over the grown database — so the
// test catches both data races (TSan) and lost/duplicated updates
// (the differential check).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine_builder.h"
#include "api/engine_options.h"
#include "datagen/generators.h"

namespace les3 {
namespace api {
namespace {

std::shared_ptr<SetDatabase> MakeDb(uint64_t seed, uint32_t num_sets) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = 80;
  opts.avg_set_size = 6;
  opts.zipf_exponent = 0.9;
  opts.seed = seed;
  return std::make_shared<SetDatabase>(datagen::GenerateZipf(opts));
}

EngineOptions ShardedOptions(uint32_t num_shards) {
  EngineOptions options;
  options.backend = Backend::kShardedLes3;
  options.num_shards = num_shards;
  options.num_groups = 10;
  options.cascade.init_groups = 8;
  options.cascade.min_group_size = 6;
  options.cascade.pairs_per_model = 800;
  options.cascade.seed = 19;
  options.num_threads = 4;
  return options;
}

TEST(ShardConcurrencyTest, ConcurrentInsertAndQuery) {
  constexpr uint32_t kInitialSets = 240;
  constexpr int kWriters = 2;
  constexpr int kInsertsPerWriter = 40;
  constexpr int kReaders = 3;

  auto db = MakeDb(51, kInitialSets);
  // Query records are snapshotted up front: readers must not touch the
  // (growing) global database while writers run.
  std::vector<SetRecord> queries;
  for (SetId qid = 0; qid < 24; ++qid) queries.emplace_back(db->set(qid * 9));

  auto built = EngineBuilder::Build(db, ShardedOptions(3));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SearchEngine* engine = built.value().get();

  std::atomic<bool> writers_done{false};
  std::atomic<int> insert_failures{0};
  std::vector<std::thread> threads;

  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        SetRecord novel = SetRecord::FromTokens(
            {static_cast<TokenId>(100 + w * kInsertsPerWriter + i),
             static_cast<TokenId>(3 + (i % 5)),
             static_cast<TokenId>(40 + (i % 7))});
        if (!engine->Insert(std::move(novel)).ok()) ++insert_failures;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      // Keep querying until every writer finished, then one final pass so
      // each reader also queries the fully grown engine.
      do {
        const SetRecord& q = queries[i % queries.size()];
        auto knn = engine->Knn(q, 5);
        ASSERT_LE(knn.hits.size(), 5u);
        auto range = engine->Range(q, 0.5);
        ASSERT_EQ(range.stats.results, range.hits.size());
        ++i;
      } while (!writers_done.load());
    });
  }
  // Join writers (the first kWriters threads), release the readers.
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  writers_done.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(insert_failures.load(), 0);
  ASSERT_EQ(engine->db().size(),
            kInitialSets + static_cast<size_t>(kWriters * kInsertsPerWriter));

  // Quiesced differential check: no insert was lost, duplicated, or
  // routed to a shard that cannot answer for it.
  EngineOptions reference_options;
  reference_options.backend = Backend::kBruteForce;
  auto reference = EngineBuilder::Build(db, reference_options);
  ASSERT_TRUE(reference.ok());
  for (SetId qid = 0; qid < engine->db().size(); qid += 23) {
    SetView q = engine->db().set(qid);
    auto expected = reference.value()->Knn(q, 10);
    auto actual = engine->Knn(q, 10);
    ASSERT_EQ(expected.hits.size(), actual.hits.size()) << "q=" << qid;
    for (size_t i = 0; i < expected.hits.size(); ++i) {
      EXPECT_EQ(expected.hits[i].first, actual.hits[i].first)
          << "q=" << qid << " rank " << i;
      EXPECT_DOUBLE_EQ(expected.hits[i].second, actual.hits[i].second)
          << "q=" << qid << " rank " << i;
    }
  }
}

TEST(ShardConcurrencyTest, ConcurrentBatchQueriesDuringInserts) {
  auto db = MakeDb(52, 180);
  std::vector<SetRecord> queries;
  for (SetId qid = 0; qid < 16; ++qid) queries.emplace_back(db->set(qid * 11));

  auto built = EngineBuilder::Build(db, ShardedOptions(2));
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  SearchEngine* engine = built.value().get();

  // Batch queries stripe (query, shard) tasks over the engine pool while
  // a writer mutates shards — the pool tasks and the writer contend on
  // the same per-shard locks.
  std::thread writer([&] {
    for (int i = 0; i < 30; ++i) {
      auto id = engine->Insert(SetRecord::FromTokens(
          {static_cast<TokenId>(90 + i), static_cast<TokenId>(i % 13)}));
      ASSERT_TRUE(id.ok());
    }
  });
  for (int round = 0; round < 5; ++round) {
    auto batch = engine->KnnBatch(queries, 6);
    ASSERT_EQ(batch.size(), queries.size());
    auto ranges = engine->RangeBatch(queries, 0.4);
    ASSERT_EQ(ranges.size(), queries.size());
  }
  writer.join();
  EXPECT_EQ(engine->db().size(), 180u + 30u);
}

}  // namespace
}  // namespace api
}  // namespace les3
