// Update-path tests for the flat TGM (paper Section 6): an interleaved
// AddSet/query sequence must leave the matrix byte-for-byte consistent
// with a TGM rebuilt from scratch over the same final assignment — for
// both bitmap backends and through both the batched kernels and the
// per-bit reference path.
//
// The snapshot legs extend that to persistence: inserting into a matrix
// (or engine) reloaded from a snapshot must behave exactly like inserting
// into the one that was saved — same routing decisions, same final state
// as a from-scratch rebuild — with and without persisted L2P weights
// (inserts route through the TGM per Section 6 either way).

#include "tgm/tgm.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/engine_builder.h"
#include "datagen/generators.h"
#include "persist/bytes.h"
#include "util/random.h"

namespace les3 {
namespace tgm {
namespace {

SetDatabase MakeDb(uint32_t num_sets, uint64_t seed) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = 150;
  opts.avg_set_size = 8;
  opts.zipf_exponent = 0.9;
  opts.seed = seed;
  return datagen::GenerateZipf(opts);
}

SetRecord RandomSet(Rng* rng, uint32_t max_token) {
  std::vector<TokenId> tokens;
  size_t n = 1 + rng->Uniform(12);
  for (size_t i = 0; i < n; ++i) {
    tokens.push_back(static_cast<TokenId>(rng->Uniform(max_token)));
  }
  return SetRecord::FromTokens(std::move(tokens));
}

/// Rebuilds a TGM from the live one's assignment and checks that matched
/// counts agree on `queries` (kernel path and reference path both).
void ExpectConsistentWithRebuild(const Tgm& live, const SetDatabase& db,
                                 const std::vector<SetRecord>& queries) {
  std::vector<GroupId> assignment(db.size());
  for (SetId i = 0; i < db.size(); ++i) assignment[i] = live.group_of(i);
  Tgm rebuilt(db, assignment, live.num_groups(), live.bitmap_backend());
  for (const SetRecord& q : queries) {
    std::vector<uint32_t> live_counts, rebuilt_counts, reference_counts;
    live.MatchedCounts(q, &live_counts);
    rebuilt.MatchedCounts(q, &rebuilt_counts);
    EXPECT_EQ(live_counts, rebuilt_counts);
    live.MatchedCountsReference(q, &reference_counts);
    EXPECT_EQ(live_counts, reference_counts);
  }
}

class TgmUpdateTest : public ::testing::TestWithParam<bitmap::BitmapBackend> {
};

TEST_P(TgmUpdateTest, InterleavedInsertsMatchRebuild) {
  const uint32_t kGroups = 12;
  SetDatabase db = MakeDb(180, 5);
  Rng rng(77);
  std::vector<GroupId> assignment(db.size());
  for (auto& g : assignment) g = static_cast<GroupId>(rng.Uniform(kGroups));
  Tgm tgm(db, assignment, kGroups, GetParam());
  if (GetParam() == bitmap::BitmapBackend::kRoaring) tgm.RunOptimize();

  std::vector<SetRecord> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(RandomSet(&rng, 150));

  for (int round = 0; round < 6; ++round) {
    // A few inserts — including sets with previously unseen tokens, which
    // must grow fresh columns in the configured backend.
    for (int i = 0; i < 5; ++i) {
      uint32_t max_token = (i == 0) ? 150 + 40 * (round + 1) : 150;
      SetRecord set = RandomSet(&rng, max_token);
      SetId id = db.AddSet(set);
      GroupId g = tgm.AddSet(id, db.set(id), SimilarityMeasure::kJaccard);
      EXPECT_EQ(tgm.group_of(id), g);
      EXPECT_LT(g, kGroups);
    }
    // Interleaved queries must see every insert immediately.
    ExpectConsistentWithRebuild(tgm, db, queries);
  }
  // Final sanity: membership and matrix agree cell-by-cell on a sample.
  for (SetId id = 0; id < db.size(); ++id) {
    GroupId g = tgm.group_of(id);
    TokenId prev = static_cast<TokenId>(-1);
    for (TokenId t : db.set(id).tokens()) {
      if (t == prev) continue;
      prev = t;
      EXPECT_TRUE(tgm.Test(g, t)) << "set " << id << " token " << t;
    }
  }
}

TEST_P(TgmUpdateTest, InsertAfterRunOptimizeStaysConsistent) {
  // Run-encoded columns must absorb Add() correctly (the Roaring run-add
  // path) and keep the batched kernels exact.
  const uint32_t kGroups = 8;
  SetDatabase db = MakeDb(200, 9);
  std::vector<GroupId> assignment(db.size());
  for (SetId i = 0; i < db.size(); ++i) assignment[i] = i % kGroups;
  Tgm tgm(db, assignment, kGroups, GetParam());
  tgm.RunOptimize();
  Rng rng(11);
  std::vector<SetRecord> queries;
  for (int i = 0; i < 6; ++i) queries.push_back(RandomSet(&rng, 150));
  for (int i = 0; i < 20; ++i) {
    SetRecord set = RandomSet(&rng, 150);
    SetId id = db.AddSet(set);
    tgm.AddSet(id, db.set(id), SimilarityMeasure::kJaccard);
  }
  ExpectConsistentWithRebuild(tgm, db, queries);
}

TEST_P(TgmUpdateTest, InsertAfterDeserializeMatchesLiveMatrix) {
  // Serialize a live matrix, reload it, then feed both the same insert
  // stream: every routing decision and the final matrix state must match
  // (and the reloaded matrix must stay consistent with a from-scratch
  // rebuild, like any other updated matrix).
  const uint32_t kGroups = 10;
  SetDatabase db = MakeDb(160, 13);
  std::vector<GroupId> assignment(db.size());
  for (SetId i = 0; i < db.size(); ++i) assignment[i] = i % kGroups;
  Tgm live(db, assignment, kGroups, GetParam());
  live.RunOptimize();

  persist::ByteWriter writer;
  live.SerializeColumns(&writer);
  persist::ByteReader reader(writer.data());
  std::vector<uint32_t> set_sizes(db.size());
  for (SetId i = 0; i < db.size(); ++i) {
    set_sizes[i] = static_cast<uint32_t>(db.set_size(i));
  }
  auto reloaded = Tgm::Deserialize(live.group_assignment(), kGroups,
                                   set_sizes, &reader);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  Tgm restored = std::move(reloaded).ValueOrDie();
  ASSERT_EQ(restored.num_groups(), live.num_groups());
  ASSERT_EQ(restored.bitmap_backend(), live.bitmap_backend());

  SetDatabase db_copy = db;  // two databases absorbing the same inserts
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    uint32_t max_token = (i % 5 == 0) ? 150 + 30 * i : 150;
    SetRecord set = RandomSet(&rng, max_token);
    SetId live_id = db.AddSet(set);
    SetId restored_id = db_copy.AddSet(set);
    ASSERT_EQ(live_id, restored_id);
    GroupId live_group =
        live.AddSet(live_id, db.set(live_id), SimilarityMeasure::kJaccard);
    GroupId restored_group = restored.AddSet(
        restored_id, db_copy.set(restored_id), SimilarityMeasure::kJaccard);
    EXPECT_EQ(live_group, restored_group) << "insert " << i;
  }
  std::vector<SetRecord> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(RandomSet(&rng, 400));
  for (const SetRecord& q : queries) {
    std::vector<uint32_t> live_counts, restored_counts;
    live.MatchedCounts(q, &live_counts);
    restored.MatchedCounts(q, &restored_counts);
    EXPECT_EQ(live_counts, restored_counts);
  }
  ExpectConsistentWithRebuild(restored, db_copy, queries);
}

/// Engine-level insert-after-load: Insert on a reopened snapshot engine
/// must answer queries exactly like the saved engine absorbing the same
/// inserts — with and without persisted L2P weights (routing is TGM-based
/// per Section 6, so the weights must make no behavioral difference).
TEST_P(TgmUpdateTest, EngineInsertAfterOpenMatchesOriginal) {
  for (bool keep_l2p_models : {false, true}) {
    auto db = std::make_shared<SetDatabase>(MakeDb(200, 23));
    api::EngineOptions options;
    options.num_groups = 14;
    options.cascade.init_groups = 7;
    options.cascade.min_group_size = 8;
    options.cascade.pairs_per_model = 600;
    options.cascade.seed = 3;
    options.bitmap_backend = GetParam();
    options.keep_l2p_models = keep_l2p_models;
    auto original = api::EngineBuilder::Build(db, "les3", options);
    ASSERT_TRUE(original.ok()) << original.status().ToString();

    std::string path = ::testing::TempDir() + "les3_insert_after_load_" +
                       bitmap::ToString(GetParam()) +
                       (keep_l2p_models ? "_l2p" : "") + ".snap";
    ASSERT_TRUE(original.value()->Save(path).ok());
    auto reloaded = api::EngineBuilder::Open(path);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
    std::remove(path.c_str());

    Rng rng(29);
    for (int i = 0; i < 25; ++i) {
      uint32_t max_token = (i % 4 == 0) ? 200 + 25 * i : 200;
      SetRecord set = RandomSet(&rng, max_token);
      auto id1 = original.value()->Insert(set);
      auto id2 = reloaded.value()->Insert(set);
      ASSERT_TRUE(id1.ok());
      ASSERT_TRUE(id2.ok());
      EXPECT_EQ(id1.value(), id2.value());
    }
    std::vector<SetRecord> queries;
    for (int i = 0; i < 8; ++i) queries.push_back(RandomSet(&rng, 600));
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto expected = original.value()->Knn(queries[qi], 10);
      auto actual = reloaded.value()->Knn(queries[qi], 10);
      ASSERT_EQ(expected.hits.size(), actual.hits.size()) << "q=" << qi;
      for (size_t i = 0; i < expected.hits.size(); ++i) {
        EXPECT_EQ(expected.hits[i].first, actual.hits[i].first)
            << "q=" << qi << " rank " << i
            << (keep_l2p_models ? " (l2p persisted)" : "");
        EXPECT_DOUBLE_EQ(expected.hits[i].second, actual.hits[i].second);
      }
      auto expected_range = original.value()->Range(queries[qi], 0.4);
      auto actual_range = reloaded.value()->Range(queries[qi], 0.4);
      ASSERT_EQ(expected_range.hits.size(), actual_range.hits.size());
      for (size_t i = 0; i < expected_range.hits.size(); ++i) {
        EXPECT_EQ(expected_range.hits[i].first, actual_range.hits[i].first);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, TgmUpdateTest,
                         ::testing::Values(bitmap::BitmapBackend::kRoaring,
                                           bitmap::BitmapBackend::kBitVector),
                         [](const auto& info) {
                           return bitmap::ToString(info.param);
                         });

}  // namespace
}  // namespace tgm
}  // namespace les3
