// Update-path tests for the flat TGM (paper Section 6): an interleaved
// AddSet/query sequence must leave the matrix byte-for-byte consistent
// with a TGM rebuilt from scratch over the same final assignment — for
// both bitmap backends and through both the batched kernels and the
// per-bit reference path.

#include "tgm/tgm.h"

#include <gtest/gtest.h>

#include <vector>

#include "datagen/generators.h"
#include "util/random.h"

namespace les3 {
namespace tgm {
namespace {

SetDatabase MakeDb(uint32_t num_sets, uint64_t seed) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = 150;
  opts.avg_set_size = 8;
  opts.zipf_exponent = 0.9;
  opts.seed = seed;
  return datagen::GenerateZipf(opts);
}

SetRecord RandomSet(Rng* rng, uint32_t max_token) {
  std::vector<TokenId> tokens;
  size_t n = 1 + rng->Uniform(12);
  for (size_t i = 0; i < n; ++i) {
    tokens.push_back(static_cast<TokenId>(rng->Uniform(max_token)));
  }
  return SetRecord::FromTokens(std::move(tokens));
}

/// Rebuilds a TGM from the live one's assignment and checks that matched
/// counts agree on `queries` (kernel path and reference path both).
void ExpectConsistentWithRebuild(const Tgm& live, const SetDatabase& db,
                                 const std::vector<SetRecord>& queries) {
  std::vector<GroupId> assignment(db.size());
  for (SetId i = 0; i < db.size(); ++i) assignment[i] = live.group_of(i);
  Tgm rebuilt(db, assignment, live.num_groups(), live.bitmap_backend());
  for (const SetRecord& q : queries) {
    std::vector<uint32_t> live_counts, rebuilt_counts, reference_counts;
    live.MatchedCounts(q, &live_counts);
    rebuilt.MatchedCounts(q, &rebuilt_counts);
    EXPECT_EQ(live_counts, rebuilt_counts);
    live.MatchedCountsReference(q, &reference_counts);
    EXPECT_EQ(live_counts, reference_counts);
  }
}

class TgmUpdateTest : public ::testing::TestWithParam<bitmap::BitmapBackend> {
};

TEST_P(TgmUpdateTest, InterleavedInsertsMatchRebuild) {
  const uint32_t kGroups = 12;
  SetDatabase db = MakeDb(180, 5);
  Rng rng(77);
  std::vector<GroupId> assignment(db.size());
  for (auto& g : assignment) g = static_cast<GroupId>(rng.Uniform(kGroups));
  Tgm tgm(db, assignment, kGroups, GetParam());
  if (GetParam() == bitmap::BitmapBackend::kRoaring) tgm.RunOptimize();

  std::vector<SetRecord> queries;
  for (int i = 0; i < 8; ++i) queries.push_back(RandomSet(&rng, 150));

  for (int round = 0; round < 6; ++round) {
    // A few inserts — including sets with previously unseen tokens, which
    // must grow fresh columns in the configured backend.
    for (int i = 0; i < 5; ++i) {
      uint32_t max_token = (i == 0) ? 150 + 40 * (round + 1) : 150;
      SetRecord set = RandomSet(&rng, max_token);
      SetId id = db.AddSet(set);
      GroupId g = tgm.AddSet(id, db.set(id), SimilarityMeasure::kJaccard);
      EXPECT_EQ(tgm.group_of(id), g);
      EXPECT_LT(g, kGroups);
    }
    // Interleaved queries must see every insert immediately.
    ExpectConsistentWithRebuild(tgm, db, queries);
  }
  // Final sanity: membership and matrix agree cell-by-cell on a sample.
  for (SetId id = 0; id < db.size(); ++id) {
    GroupId g = tgm.group_of(id);
    TokenId prev = static_cast<TokenId>(-1);
    for (TokenId t : db.set(id).tokens()) {
      if (t == prev) continue;
      prev = t;
      EXPECT_TRUE(tgm.Test(g, t)) << "set " << id << " token " << t;
    }
  }
}

TEST_P(TgmUpdateTest, InsertAfterRunOptimizeStaysConsistent) {
  // Run-encoded columns must absorb Add() correctly (the Roaring run-add
  // path) and keep the batched kernels exact.
  const uint32_t kGroups = 8;
  SetDatabase db = MakeDb(200, 9);
  std::vector<GroupId> assignment(db.size());
  for (SetId i = 0; i < db.size(); ++i) assignment[i] = i % kGroups;
  Tgm tgm(db, assignment, kGroups, GetParam());
  tgm.RunOptimize();
  Rng rng(11);
  std::vector<SetRecord> queries;
  for (int i = 0; i < 6; ++i) queries.push_back(RandomSet(&rng, 150));
  for (int i = 0; i < 20; ++i) {
    SetRecord set = RandomSet(&rng, 150);
    SetId id = db.AddSet(set);
    tgm.AddSet(id, db.set(id), SimilarityMeasure::kJaccard);
  }
  ExpectConsistentWithRebuild(tgm, db, queries);
}

INSTANTIATE_TEST_SUITE_P(Backends, TgmUpdateTest,
                         ::testing::Values(bitmap::BitmapBackend::kRoaring,
                                           bitmap::BitmapBackend::kBitVector),
                         [](const auto& info) {
                           return bitmap::ToString(info.param);
                         });

}  // namespace
}  // namespace tgm
}  // namespace les3
