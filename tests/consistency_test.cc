// Cross-engine consistency matrix: for every (data distribution ×
// similarity measure), every engine — LES3, HTGM (1 and 2 levels), InvIdx,
// DualTrans, and the disk-mode wrappers — must return the same answers as
// brute force, for both query types. Each parameterized instance checks a
// genuinely distinct configuration of the whole stack.

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "baselines/dualtrans.h"
#include "baselines/invidx.h"
#include "datagen/generators.h"
#include "search/les3_index.h"
#include "storage/disk_search.h"
#include "tgm/htgm.h"
#include "util/random.h"

namespace les3 {
namespace {

struct ConsistencyParam {
  const char* data;  // "uniform" | "zipf" | "clustered" | "powerlaw"
  SimilarityMeasure measure;
};

std::string ParamName(
    const ::testing::TestParamInfo<ConsistencyParam>& info) {
  return std::string(info.param.data) + "_" + ToString(info.param.measure);
}

SetDatabase MakeData(const char* kind, uint64_t seed) {
  if (std::string(kind) == "uniform") {
    datagen::UniformOptions opts;
    opts.num_sets = 400;
    opts.num_tokens = 120;
    opts.avg_set_size = 7;
    opts.seed = seed;
    return GenerateUniform(opts);
  }
  if (std::string(kind) == "zipf") {
    datagen::ZipfOptions opts;
    opts.num_sets = 400;
    opts.num_tokens = 300;
    opts.avg_set_size = 7;
    opts.zipf_exponent = 1.1;
    opts.seed = seed;
    return GenerateZipf(opts);
  }
  if (std::string(kind) == "clustered") {
    datagen::ZipfOptions opts;
    opts.num_sets = 400;
    opts.num_tokens = 500;
    opts.avg_set_size = 8;
    opts.cluster_fraction = 0.8;
    opts.sets_per_cluster = 25;
    opts.orphan_fraction = 0.3;
    opts.seed = seed;
    return GenerateZipf(opts);
  }
  datagen::PowerLawSimOptions opts;
  opts.num_sets = 400;
  opts.num_tokens = 500;
  opts.alpha = 2.0;
  opts.sets_per_cluster = 20;
  opts.seed = seed;
  return GeneratePowerLawSimilarity(opts);
}

class ConsistencyTest : public ::testing::TestWithParam<ConsistencyParam> {
 protected:
  void SetUp() override {
    db_ = MakeData(GetParam().data, 11);
    Rng rng(13);
    assignment_.resize(db_.size());
    for (auto& g : assignment_) g = static_cast<GroupId>(rng.Uniform(12));
    // A second, nested fine level for the 2-level HTGM.
    fine_.resize(db_.size());
    for (SetId i = 0; i < db_.size(); ++i) {
      fine_[i] = assignment_[i] * 2 + (i % 2);
    }
  }

  void ExpectSimsEqual(const std::vector<std::pair<SetId, double>>& got,
                       const std::vector<std::pair<SetId, double>>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_NEAR(got[i].second, want[i].second, 1e-12) << "rank " << i;
    }
  }

  SetDatabase db_;
  std::vector<GroupId> assignment_;
  std::vector<GroupId> fine_;
};

TEST_P(ConsistencyTest, AllEnginesAgreeOnKnn) {
  SimilarityMeasure m = GetParam().measure;
  search::Les3Index les3(db_, assignment_, 12, m);
  tgm::Htgm flat(db_, {{fine_, 24}});
  tgm::Htgm hier(db_, {{assignment_, 12}, {fine_, 24}});
  baselines::InvIdxOptions iopts;
  iopts.measure = m;
  baselines::InvIdx invidx(&db_, iopts);
  baselines::DualTransOptions dopts;
  dopts.measure = m;
  baselines::DualTrans dualtrans(&db_, dopts);
  storage::DiskLes3 disk_les3(&db_, assignment_, 12, m);
  baselines::BruteForce brute(&db_, m);

  Rng rng(17);
  for (size_t k : {1u, 7u, 25u}) {
    for (int q = 0; q < 8; ++q) {
      SetView query = db_.set(static_cast<SetId>(rng.Uniform(db_.size())));
      auto want = brute.Knn(query, k);
      ExpectSimsEqual(les3.Knn(query, k), want);
      ExpectSimsEqual(flat.Knn(db_, query, k, m, nullptr), want);
      ExpectSimsEqual(hier.Knn(db_, query, k, m, nullptr), want);
      ExpectSimsEqual(invidx.Knn(query, k), want);
      ExpectSimsEqual(dualtrans.Knn(query, k), want);
      ExpectSimsEqual(disk_les3.Knn(query, k).hits, want);
    }
  }
}

TEST_P(ConsistencyTest, AllEnginesAgreeOnRange) {
  SimilarityMeasure m = GetParam().measure;
  search::Les3Index les3(db_, assignment_, 12, m);
  tgm::Htgm hier(db_, {{assignment_, 12}, {fine_, 24}});
  baselines::InvIdxOptions iopts;
  iopts.measure = m;
  baselines::InvIdx invidx(&db_, iopts);
  baselines::DualTransOptions dopts;
  dopts.measure = m;
  baselines::DualTrans dualtrans(&db_, dopts);
  storage::DiskInvIdx disk_invidx(&db_, iopts);
  baselines::BruteForce brute(&db_, m);

  Rng rng(19);
  for (double delta : {0.25, 0.5, 0.8}) {
    for (int q = 0; q < 8; ++q) {
      SetView query = db_.set(static_cast<SetId>(rng.Uniform(db_.size())));
      auto want = brute.Range(query, delta);
      ExpectSimsEqual(les3.Range(query, delta), want);
      ExpectSimsEqual(hier.Range(db_, query, delta, m, nullptr), want);
      ExpectSimsEqual(invidx.Range(query, delta), want);
      ExpectSimsEqual(dualtrans.Range(query, delta), want);
      ExpectSimsEqual(disk_invidx.Range(query, delta).hits, want);
    }
  }
}

TEST_P(ConsistencyTest, EnginesAreDeterministic) {
  SimilarityMeasure m = GetParam().measure;
  search::Les3Index a(db_, assignment_, 12, m);
  search::Les3Index b(db_, assignment_, 12, m);
  SetView query = db_.set(42);
  auto ha = a.Knn(query, 9);
  auto hb = b.Knn(query, 9);
  ASSERT_EQ(ha.size(), hb.size());
  for (size_t i = 0; i < ha.size(); ++i) {
    EXPECT_EQ(ha[i].first, hb[i].first);
    EXPECT_EQ(ha[i].second, hb[i].second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConsistencyTest,
    ::testing::Values(
        ConsistencyParam{"uniform", SimilarityMeasure::kJaccard},
        ConsistencyParam{"uniform", SimilarityMeasure::kDice},
        ConsistencyParam{"uniform", SimilarityMeasure::kCosine},
        ConsistencyParam{"zipf", SimilarityMeasure::kJaccard},
        ConsistencyParam{"zipf", SimilarityMeasure::kDice},
        ConsistencyParam{"zipf", SimilarityMeasure::kCosine},
        ConsistencyParam{"clustered", SimilarityMeasure::kJaccard},
        ConsistencyParam{"clustered", SimilarityMeasure::kDice},
        ConsistencyParam{"clustered", SimilarityMeasure::kCosine},
        ConsistencyParam{"powerlaw", SimilarityMeasure::kJaccard},
        ConsistencyParam{"powerlaw", SimilarityMeasure::kDice},
        ConsistencyParam{"powerlaw", SimilarityMeasure::kCosine}),
    ParamName);

}  // namespace
}  // namespace les3
