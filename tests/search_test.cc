// Exactness tests for the LES3 search engine: results must equal brute
// force on randomized databases across measures, query types, partitionings
// and parameters — the paper's central "exact" claim.

#include "search/les3_index.h"

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace les3 {
namespace search {
namespace {

SetDatabase MakeDb(uint64_t seed, uint32_t num_sets = 600,
                   uint32_t num_tokens = 150) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = num_tokens;
  opts.avg_set_size = 8;
  opts.zipf_exponent = 0.8;
  opts.seed = seed;
  return datagen::GenerateZipf(opts);
}

std::vector<GroupId> RandomAssignment(size_t n, uint32_t groups,
                                      uint64_t seed) {
  Rng rng(seed);
  std::vector<GroupId> a(n);
  for (auto& g : a) g = static_cast<GroupId>(rng.Uniform(groups));
  return a;
}

/// kNN answers may legitimately differ on ties; compare the similarity
/// multiset instead of ids.
void ExpectSameSimilarities(const std::vector<Hit>& a,
                            const std::vector<Hit>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].second, b[i].second, 1e-12) << "rank " << i;
  }
}

class SearchExactnessTest
    : public ::testing::TestWithParam<SimilarityMeasure> {};

TEST_P(SearchExactnessTest, KnnMatchesBruteForce) {
  SetDatabase db = MakeDb(1);
  SetDatabase db_copy = db;
  auto assignment = RandomAssignment(db.size(), 12, 2);
  Les3Index index(std::move(db_copy), assignment, 12, GetParam());
  baselines::BruteForce brute(&db, GetParam());
  Rng rng(3);
  for (size_t k : {1u, 5u, 20u}) {
    for (int q = 0; q < 20; ++q) {
      SetView query = db.set(static_cast<SetId>(rng.Uniform(600)));
      QueryStats stats;
      auto got = index.Knn(query, k, &stats);
      auto expected = brute.Knn(query, k);
      ExpectSameSimilarities(got, expected);
      EXPECT_LE(stats.candidates_verified, db.size());
      EXPECT_GE(stats.pruning_efficiency, 0.0);
      EXPECT_LE(stats.pruning_efficiency, 1.0);
    }
  }
}

TEST_P(SearchExactnessTest, RangeMatchesBruteForce) {
  SetDatabase db = MakeDb(5);
  SetDatabase db_copy = db;
  auto assignment = RandomAssignment(db.size(), 10, 6);
  Les3Index index(std::move(db_copy), assignment, 10, GetParam());
  baselines::BruteForce brute(&db, GetParam());
  Rng rng(7);
  for (double delta : {0.3, 0.5, 0.7, 0.9}) {
    for (int q = 0; q < 20; ++q) {
      SetView query = db.set(static_cast<SetId>(rng.Uniform(600)));
      auto got = index.Range(query, delta);
      auto expected = brute.Range(query, delta);
      ASSERT_EQ(got.size(), expected.size()) << "delta " << delta;
      // Range results are id-exact (no tie ambiguity in membership).
      std::set<SetId> got_ids, expected_ids;
      for (auto& h : got) got_ids.insert(h.first);
      for (auto& h : expected) expected_ids.insert(h.first);
      EXPECT_EQ(got_ids, expected_ids);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, SearchExactnessTest,
                         ::testing::Values(SimilarityMeasure::kJaccard,
                                           SimilarityMeasure::kDice,
                                           SimilarityMeasure::kCosine),
                         [](const auto& info) { return ToString(info.param); });

TEST(SearchTest, QueryWithUnseenTokens) {
  SetDatabase db = MakeDb(9);
  SetDatabase db_copy = db;
  auto assignment = RandomAssignment(db.size(), 8, 10);
  Les3Index index(std::move(db_copy), assignment, 8);
  baselines::BruteForce brute(&db);
  // Tokens 500+ never occur in the 150-token universe.
  SetRecord query = SetRecord::FromTokens({500, 501, 0, 1, 2});
  auto got = index.Knn(query, 5);
  auto expected = brute.Knn(query, 5);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].second, expected[i].second, 1e-12);
  }
}

TEST(SearchTest, EmptyQueryReturnsSomething) {
  SetDatabase db = MakeDb(11);
  auto assignment = RandomAssignment(db.size(), 8, 12);
  Les3Index index(std::move(db), assignment, 8);
  auto hits = index.Knn(SetRecord(), 3);
  EXPECT_EQ(hits.size(), 3u);  // all sims 0, but k results exist
}

TEST(SearchTest, KLargerThanDatabase) {
  SetDatabase db(20);
  for (int i = 0; i < 5; ++i) {
    db.AddSet(SetRecord::FromTokens({static_cast<TokenId>(i)}));
  }
  std::vector<GroupId> assignment{0, 0, 1, 1, 1};
  Les3Index index(std::move(db), assignment, 2);
  auto hits = index.Knn(SetRecord::FromTokens({0}), 50);
  EXPECT_EQ(hits.size(), 5u);
}

TEST(SearchTest, RangeDeltaOneFindsExactDuplicates) {
  SetDatabase db(10);
  db.AddSet(SetRecord::FromTokens({1, 2}));
  db.AddSet(SetRecord::FromTokens({1, 2}));
  db.AddSet(SetRecord::FromTokens({1, 3}));
  std::vector<GroupId> assignment{0, 1, 1};
  Les3Index index(std::move(db), assignment, 2);
  auto hits = index.Range(SetRecord::FromTokens({1, 2}), 1.0);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_DOUBLE_EQ(hits[0].second, 1.0);
}

TEST(SearchTest, BetterPartitioningPrunesMore) {
  // Cluster-aligned groups should verify fewer candidates than random
  // groups for the same queries.
  Rng rng(13);
  SetDatabase db(160);
  std::vector<GroupId> aligned;
  for (uint32_t c = 0; c < 8; ++c) {
    for (int i = 0; i < 50; ++i) {
      std::vector<TokenId> tokens;
      for (int j = 0; j < 8; ++j) {
        tokens.push_back(static_cast<TokenId>(20 * c + rng.Uniform(20)));
      }
      db.AddSet(SetRecord::FromTokens(std::move(tokens)));
      aligned.push_back(c);
    }
  }
  SetDatabase db2 = db;
  auto random = RandomAssignment(db.size(), 8, 15);
  Les3Index good(std::move(db), aligned, 8);
  Les3Index bad(std::move(db2), random, 8);
  uint64_t good_cands = 0, bad_cands = 0;
  for (int q = 0; q < 40; ++q) {
    SetView query = good.db().set(static_cast<SetId>(q * 7 % 400));
    QueryStats sg, sb;
    good.Knn(query, 10, &sg);
    bad.Knn(query, 10, &sb);
    good_cands += sg.candidates_verified;
    bad_cands += sb.candidates_verified;
  }
  EXPECT_LT(good_cands, bad_cands);
}

TEST(SearchTest, InsertedSetsAreFindable) {
  SetDatabase db = MakeDb(17, 200);
  auto assignment = RandomAssignment(db.size(), 6, 18);
  Les3Index index(std::move(db), assignment, 6);
  SetRecord novel = SetRecord::FromTokens({3, 4, 5, 6, 7});
  SetId id = index.Insert(novel);
  auto hits = index.Range(novel, 1.0);
  bool found = false;
  for (auto& h : hits) found = found || h.first == id;
  EXPECT_TRUE(found);
  // And kNN with k=1 should return it (similarity 1).
  auto top = index.Knn(novel, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_DOUBLE_EQ(top[0].second, 1.0);
}

TEST(SearchTest, InsertWithNewTokensSearchable) {
  SetDatabase db = MakeDb(19, 200);
  auto assignment = RandomAssignment(db.size(), 6, 20);
  Les3Index index(std::move(db), assignment, 6);
  SetRecord novel = SetRecord::FromTokens({9000, 9001, 9002});
  SetId id = index.Insert(novel);
  auto hits = index.Knn(novel, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, id);
  EXPECT_DOUBLE_EQ(hits[0].second, 1.0);
}

TEST(SearchTest, StatsAccounting) {
  SetDatabase db = MakeDb(21);
  auto assignment = RandomAssignment(db.size(), 10, 22);
  Les3Index index(std::move(db), assignment, 10);
  QueryStats stats;
  index.Range(index.db().set(0), 0.8, &stats);
  EXPECT_EQ(stats.groups_visited + stats.groups_pruned, 10u);
  EXPECT_GT(stats.columns_scanned, 0u);
  EXPECT_GE(stats.micros, 0.0);
}

}  // namespace
}  // namespace search
}  // namespace les3
