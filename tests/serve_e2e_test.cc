// End-to-end loopback suite for the serving front-end (serve/server.h):
// an in-process Server on an ephemeral port, driven through serve::Client
// and through raw sockets.
//
// The load-bearing property is the differential one: every response must
// agree byte-for-byte with a direct call on the underlying engine —
// with the cache cold, warm, disabled, and across interleaved Inserts
// (the exactness argument of serve/result_cache.h, tested rather than
// trusted). Responses carry no timing, so hit-exact (ids and similarity
// bit patterns) equals byte-exact.
//
// ServeE2E.ConcurrentClientsAndInserts is the TSan leg: concurrent
// clients and an inserter hammer one server; the CI TSan lane runs it.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine_builder.h"
#include "datagen/generators.h"
#include "serve/client.h"
#include "serve/server.h"

namespace les3 {
namespace serve {
namespace {

using api::EngineOptions;
using api::SearchEngine;

std::shared_ptr<SetDatabase> MakeDb(uint64_t seed, uint32_t num_sets = 400) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = 120;
  opts.avg_set_size = 8;
  opts.zipf_exponent = 0.8;
  opts.seed = seed;
  return std::make_shared<SetDatabase>(datagen::GenerateZipf(opts));
}

/// Cheap build knobs (api_test.cc's FastOptions) + two shards so the
/// engine under the server is the production backend.
EngineOptions FastOptions() {
  EngineOptions options;
  options.num_groups = 24;
  options.num_shards = 2;
  options.cascade.init_groups = 16;
  options.cascade.min_group_size = 10;
  options.cascade.pairs_per_model = 2000;
  options.cascade.seed = 7;
  return options;
}

std::shared_ptr<SearchEngine> BuildEngine(uint64_t seed) {
  auto engine =
      api::EngineBuilder::Build(MakeDb(seed), "sharded_les3", FastOptions());
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::shared_ptr<SearchEngine>(std::move(engine).ValueOrDie());
}

/// Byte-exact agreement: same ids, same similarity BIT PATTERNS, same
/// order (the f64 wire encoding round-trips bits).
void ExpectExactHits(const std::vector<Hit>& expected,
                     const std::vector<Hit>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first) << label << " rank " << i;
    EXPECT_EQ(expected[i].second, actual[i].second) << label << " rank " << i;
  }
}

std::vector<SetRecord> SampleQueries(const SetDatabase& db, size_t n) {
  std::vector<SetRecord> queries;
  size_t stride = db.size() / n;
  for (size_t i = 0; i < db.size() && queries.size() < n; i += stride) {
    queries.emplace_back(db.set(static_cast<SetId>(i)));
  }
  return queries;
}

Client MustConnect(uint16_t port, uint32_t timeout_ms = 10000) {
  auto client = Client::Connect("127.0.0.1", port, timeout_ms);
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).ValueOrDie();
}

/// A raw TCP connection for the malformed-frame and pipelining tests —
/// sends arbitrary bytes the well-behaved Client cannot produce.
class RawConn {
 public:
  /// `rcvbuf` > 0 shrinks SO_RCVBUF before connect — the flow-control
  /// test uses it so server replies back up instead of vanishing into
  /// kernel buffers.
  explicit RawConn(uint16_t port, int rcvbuf = 0) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (rcvbuf > 0) {
      setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    timeval tv{10, 0};
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() { Close(); }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  void Send(const void* data, size_t size) {
    ASSERT_EQ(send(fd_, data, size, MSG_NOSIGNAL),
              static_cast<ssize_t>(size));
  }
  void Send(const persist::ByteWriter& frame) {
    Send(frame.data().data(), frame.size());
  }

  /// Like Send but tolerates partial writes — for buffers larger than
  /// the socket buffers (the sender may block while the server applies
  /// read backpressure; a concurrent reader keeps it live).
  void SendLoop(const persist::ByteWriter& frames) {
    const uint8_t* p = frames.data().data();
    size_t left = frames.size();
    while (left > 0) {
      ssize_t n = send(fd_, p, left, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      p += n;
      left -= static_cast<size_t>(n);
    }
  }

  /// Half-close: FIN the write side, keep reading replies.
  void ShutdownWrite() { shutdown(fd_, SHUT_WR); }

  /// Reads one response frame (decoded with `type`'s OK-body shape).
  Result<Response> RecvResponse(MsgType type) {
    for (;;) {
      size_t frame_end = 0;
      bool complete = false;
      LES3_RETURN_NOT_OK(
          ExtractFrame(in_.data(), in_.size(), &frame_end, &complete));
      if (complete) {
        auto response = DecodeResponse(in_.data() + 4, frame_end - 4, type);
        in_.erase(in_.begin(), in_.begin() + static_cast<ptrdiff_t>(frame_end));
        return response;
      }
      uint8_t buf[4096];
      ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) return Status::IOError("connection closed or timed out");
      in_.insert(in_.end(), buf, buf + n);
    }
  }

  /// True when the server closed the connection (clean EOF after any
  /// buffered bytes are drained).
  bool ServerClosed() {
    uint8_t buf[4096];
    for (;;) {
      ssize_t n = recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout: still open
    }
  }

 private:
  int fd_ = -1;
  std::vector<uint8_t> in_;
};

Request PingRequest(uint32_t seq) {
  Request request;
  request.seq = seq;
  request.type = MsgType::kPing;
  return request;
}

// ---------------------------------------------------------------------------

class ServeE2ETest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    engine_ = BuildEngine(11);
    options.port = 0;
    server_ = std::make_unique<Server>(engine_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::shared_ptr<SearchEngine> engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeE2ETest, PingAndDescribe) {
  StartServer();
  Client client = MustConnect(server_->port());
  EXPECT_TRUE(client.Ping().ok());
  auto describe = client.Describe();
  ASSERT_TRUE(describe.ok()) << describe.status().ToString();
  // Engine description plus the serving-layer suffix.
  EXPECT_NE(describe.value().find("sharded_les3"), std::string::npos);
  EXPECT_NE(describe.value().find("serve:"), std::string::npos);
}

TEST_F(ServeE2ETest, KnnMatchesDirectEngineColdAndCached) {
  StartServer();
  Client client = MustConnect(server_->port());
  for (const SetRecord& query : SampleQueries(engine_->db(), 10)) {
    std::vector<Hit> direct = engine_->Knn(query.view(), 10).hits;
    auto cold = client.Knn(query.view(), 10);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    ExpectExactHits(direct, cold.value(), "cold");
    // Second lookup is served from the cache — still byte-exact.
    auto warm = client.Knn(query.view(), 10);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    ExpectExactHits(direct, warm.value(), "warm");
  }
  ASSERT_NE(server_->cache(), nullptr);
  EXPECT_GE(server_->cache()->stats().hits, 10u);
}

TEST_F(ServeE2ETest, RangeMatchesDirectEngineColdAndCached) {
  StartServer();
  Client client = MustConnect(server_->port());
  for (const SetRecord& query : SampleQueries(engine_->db(), 10)) {
    std::vector<Hit> direct = engine_->Range(query.view(), 0.5).hits;
    auto cold = client.Range(query.view(), 0.5);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    ExpectExactHits(direct, cold.value(), "cold");
    auto warm = client.Range(query.view(), 0.5);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();
    ExpectExactHits(direct, warm.value(), "warm");
  }
}

TEST_F(ServeE2ETest, CacheDisabledMatchesCacheEnabled) {
  StartServer();  // cache on
  ServerOptions uncached_options;
  uncached_options.port = 0;
  uncached_options.cache_bytes = 0;
  Server uncached(engine_, uncached_options);
  ASSERT_TRUE(uncached.Start().ok());
  EXPECT_EQ(uncached.cache(), nullptr);

  Client cached_client = MustConnect(server_->port());
  Client uncached_client = MustConnect(uncached.port());
  for (const SetRecord& query : SampleQueries(engine_->db(), 8)) {
    for (int pass = 0; pass < 2; ++pass) {
      auto cached = cached_client.Knn(query.view(), 5);
      auto plain = uncached_client.Knn(query.view(), 5);
      ASSERT_TRUE(cached.ok() && plain.ok());
      ExpectExactHits(plain.value(), cached.value(),
                      "pass " + std::to_string(pass));
    }
  }
  uncached.Shutdown();
}

TEST_F(ServeE2ETest, BatchesMatchDirectEngine) {
  StartServer();
  Client client = MustConnect(server_->port());
  std::vector<SetRecord> queries = SampleQueries(engine_->db(), 6);
  {
    auto over_wire = client.KnnBatch(queries, 7);
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    std::vector<api::QueryResult> direct = engine_->KnnBatch(queries, 7);
    ASSERT_EQ(over_wire.value().size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectExactHits(direct[i].hits, over_wire.value()[i],
                      "knn batch " + std::to_string(i));
    }
  }
  {
    auto over_wire = client.RangeBatch(queries, 0.6);
    ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();
    std::vector<api::QueryResult> direct = engine_->RangeBatch(queries, 0.6);
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectExactHits(direct[i].hits, over_wire.value()[i],
                      "range batch " + std::to_string(i));
    }
  }
}

// The differential the cache's exactness argument is judged by: Inserts
// interleave with cached queries, and after every mutation the served
// answer must equal what the engine computes fresh at that moment.
TEST_F(ServeE2ETest, InterleavedInsertsStayExact) {
  StartServer();
  Client client = MustConnect(server_->port());
  std::vector<SetRecord> queries = SampleQueries(engine_->db(), 4);
  size_t initial_size = engine_->db().size();

  for (uint32_t round = 0; round < 6; ++round) {
    // Warm the cache on every query.
    for (const SetRecord& query : queries) {
      auto warm = client.Knn(query.view(), 8);
      ASSERT_TRUE(warm.ok());
      ExpectExactHits(engine_->Knn(query.view(), 8).hits, warm.value(),
                      "pre-insert round " + std::to_string(round));
    }
    // Insert a set overlapping the queries so answers actually change.
    SetRecord new_set(queries[round % queries.size()]);
    auto inserted = client.Insert(new_set);
    ASSERT_TRUE(inserted.ok()) << inserted.status().ToString();
    // Every post-insert answer must reflect the mutation: byte-exact
    // against a fresh engine computation, never a stale cache entry.
    for (const SetRecord& query : queries) {
      auto after = client.Knn(query.view(), 8);
      ASSERT_TRUE(after.ok());
      ExpectExactHits(engine_->Knn(query.view(), 8).hits, after.value(),
                      "post-insert round " + std::to_string(round));
      auto range_after = client.Range(query.view(), 0.5);
      ASSERT_TRUE(range_after.ok());
      ExpectExactHits(engine_->Range(query.view(), 0.5).hits,
                      range_after.value(),
                      "post-insert range round " + std::to_string(round));
    }
  }
  EXPECT_EQ(engine_->db().size(), initial_size + 6);
  ASSERT_NE(server_->cache(), nullptr);
  // The inserts actually exercised the invalidation path.
  EXPECT_GE(server_->cache()->stats().invalidations, 1u);
}

// Satellite of the mutability work: Delete and Update over the wire must
// invalidate the result cache exactly like Insert — every post-mutation
// answer is byte-exact against a fresh engine computation, and a
// tombstoned id never reappears from a stale cache entry.
TEST_F(ServeE2ETest, InterleavedMutationsStayExact) {
  StartServer();
  Client client = MustConnect(server_->port());
  std::vector<SetRecord> queries = SampleQueries(engine_->db(), 4);

  for (uint32_t round = 0; round < 4; ++round) {
    // Warm the cache on every query.
    for (const SetRecord& query : queries) {
      auto warm = client.Knn(query.view(), 8);
      ASSERT_TRUE(warm.ok());
      ExpectExactHits(engine_->Knn(query.view(), 8).hits, warm.value(),
                      "warm round " + std::to_string(round));
    }
    // Delete the current top hit of one query: the cached answer for
    // that query is now wrong and must not be served.
    const SetRecord& victim_query = queries[round % queries.size()];
    auto top = client.Knn(victim_query.view(), 1);
    ASSERT_TRUE(top.ok());
    ASSERT_FALSE(top.value().empty());
    const SetId victim = top.value()[0].first;
    ASSERT_TRUE(client.Delete(victim).ok());
    // Double delete is a typed NotFound, not a transport error.
    Status again = client.Delete(victim);
    ASSERT_FALSE(again.ok());
    EXPECT_EQ(again.code(), StatusCode::kNotFound);

    for (const SetRecord& query : queries) {
      auto after = client.Knn(query.view(), 8);
      ASSERT_TRUE(after.ok());
      ExpectExactHits(engine_->Knn(query.view(), 8).hits, after.value(),
                      "post-delete round " + std::to_string(round));
      for (const Hit& hit : after.value()) EXPECT_NE(hit.first, victim);
      auto range_after = client.Range(query.view(), 0.5);
      ASSERT_TRUE(range_after.ok());
      ExpectExactHits(engine_->Range(query.view(), 0.5).hits,
                      range_after.value(),
                      "post-delete range round " + std::to_string(round));
    }

    // Update another live set to exactly one query's content: it must
    // surface at similarity 1 on the next (uncached) answer.
    SetId updated = 0;
    while (engine_->db().is_deleted(updated)) ++updated;
    ASSERT_TRUE(client.Update(updated, victim_query).ok());
    auto post_update = client.Knn(victim_query.view(), 8);
    ASSERT_TRUE(post_update.ok());
    ExpectExactHits(engine_->Knn(victim_query.view(), 8).hits,
                    post_update.value(),
                    "post-update round " + std::to_string(round));
    bool found = false;
    for (const Hit& hit : post_update.value()) {
      if (hit.first == updated) {
        found = true;
        EXPECT_DOUBLE_EQ(hit.second, 1.0);
      }
    }
    EXPECT_TRUE(found) << "updated set missing from its own query";

    // Updating a deleted id is a typed NotFound.
    Status dead_update = client.Update(victim, victim_query);
    ASSERT_FALSE(dead_update.ok());
    EXPECT_EQ(dead_update.code(), StatusCode::kNotFound);
  }

  EXPECT_GT(engine_->db().num_deleted(), 0u);
  ASSERT_NE(server_->cache(), nullptr);
  // Every successful mutation bumped the epoch (failed ones must not).
  EXPECT_GE(server_->cache()->stats().invalidations, 8u);
}

// The mutation TSan leg (the served half of the mutation soak):
// concurrent query clients against one mutator running inserts, deletes,
// and updates on disjoint deterministic id ranges, then a quiescent
// differential against the engine.
TEST_F(ServeE2ETest, ConcurrentClientsAndMutations) {
  StartServer();
  uint16_t port = server_->port();
  std::vector<SetRecord> queries = SampleQueries(engine_->db(), 8);

  constexpr int kClients = 3;
  constexpr int kIters = 30;
  constexpr int kMutations = 36;
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client = MustConnect(port);
      for (int i = 0; i < kIters; ++i) {
        const SetRecord& query = queries[(c + i) % queries.size()];
        if (i % 2 == 0) {
          if (!client.Knn(query.view(), 5).ok()) failures.fetch_add(1);
        } else {
          if (!client.Range(query.view(), 0.6).ok()) failures.fetch_add(1);
        }
      }
    });
  }
  std::thread mutator([&] {
    Client client = MustConnect(port);
    for (int i = 0; i < kMutations; ++i) {
      Status st = Status::OK();
      switch (i % 3) {
        case 0: {
          auto id = client.Insert(queries[i % queries.size()]);
          st = id.ok() ? Status::OK() : id.status();
          break;
        }
        case 1:
          // Distinct ids per iteration: every delete targets a live set.
          st = client.Delete(static_cast<SetId>(3 * (i / 3)));
          break;
        default:
          st = client.Update(static_cast<SetId>(100 + 3 * (i / 3)),
                             queries[i % queries.size()]);
      }
      if (!st.ok()) failures.fetch_add(1);
    }
  });
  for (auto& thread : clients) thread.join();
  mutator.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(engine_->db().num_deleted(), uint64_t{kMutations} / 3);

  // Quiescent differential: served answers equal fresh computations over
  // the mutated database.
  Client client = MustConnect(port);
  for (const SetRecord& query : queries) {
    auto hits = client.Knn(query.view(), 5);
    ASSERT_TRUE(hits.ok());
    ExpectExactHits(engine_->Knn(query.view(), 5).hits, hits.value(),
                    "quiescent");
  }
}

TEST_F(ServeE2ETest, DeadlineExceededInsteadOfExecution) {
  ServerOptions options;
  options.executors = 1;
  // Hold every request past any 1 ms budget before its deadline check.
  options.before_execute = [](const Request&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  };
  StartServer(options);
  Client client = MustConnect(server_->port());
  SetRecord query(engine_->db().set(0));
  auto hits = client.Knn(query.view(), 5, /*deadline_ms=*/1);
  ASSERT_FALSE(hits.ok());
  EXPECT_EQ(hits.status().code(), StatusCode::kDeadlineExceeded);
  // An unbounded request on the same connection still succeeds.
  auto unbounded = client.Knn(query.view(), 5, /*deadline_ms=*/0);
  EXPECT_TRUE(unbounded.ok()) << unbounded.status().ToString();
  EXPECT_GE(server_->counters().deadline_exceeded, 1u);
  // Batches re-check the budget mid-run.
  auto batch = client.KnnBatch(SampleQueries(engine_->db(), 4), 5,
                               /*deadline_ms=*/1);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(ServeE2ETest, AdmissionControlFastRejectsWhenFull) {
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  std::atomic<int> held{0};

  ServerOptions options;
  options.executors = 1;
  options.max_pending = 1;
  options.before_execute = [&](const Request& request) {
    if (request.type != MsgType::kKnn) return;
    held.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gate_open; });
  };
  StartServer(options);

  SetRecord query(engine_->db().set(0));
  // Occupy the single executor.
  std::thread first([&] {
    Client client = MustConnect(server_->port());
    auto hits = client.Knn(query.view(), 5);
    EXPECT_TRUE(hits.ok()) << hits.status().ToString();
  });
  while (held.load() == 0) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  // With the executor blocked and the queue bounded at 1, exactly one of
  // the next two requests is admitted and one is fast-rejected —
  // whichever order they arrive in.
  Status results[2];
  std::thread second([&] {
    Client client = MustConnect(server_->port());
    auto hits = client.Knn(query.view(), 5);
    results[0] = hits.ok() ? Status::OK() : hits.status();
  });
  std::thread third([&] {
    Client client = MustConnect(server_->port());
    auto hits = client.Knn(query.view(), 5);
    results[1] = hits.ok() ? Status::OK() : hits.status();
  });
  // The rejected one returns without the gate opening: admission control
  // costs no engine work and no executor.
  std::thread release([&] {
    while (server_->counters().overloaded == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::lock_guard<std::mutex> lock(mu);
    gate_open = true;
    cv.notify_all();
  });
  first.join();
  second.join();
  third.join();
  release.join();

  int ok = 0, overloaded = 0;
  for (const Status& st : results) {
    if (st.ok()) ++ok;
    if (st.code() == StatusCode::kOverloaded) ++overloaded;
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(overloaded, 1);
  EXPECT_EQ(server_->counters().overloaded, 1u);
}

TEST_F(ServeE2ETest, MalformedFramingGetsErrorThenClose) {
  StartServer();
  {
    // Oversized length prefix: typed error reply, then the server closes
    // (a corrupt length cannot be resynchronized).
    RawConn conn(server_->port());
    uint32_t huge = kMaxFrameBytes + 1;
    conn.Send(&huge, sizeof(huge));
    auto response = conn.RecvResponse(MsgType::kPing);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, WireStatus::kInvalidArgument);
    EXPECT_TRUE(conn.ServerClosed());
  }
  {
    // Zero length prefix: same fate.
    RawConn conn(server_->port());
    uint32_t zero = 0;
    conn.Send(&zero, sizeof(zero));
    auto response = conn.RecvResponse(MsgType::kPing);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, WireStatus::kInvalidArgument);
    EXPECT_TRUE(conn.ServerClosed());
  }
  EXPECT_GE(server_->counters().protocol_errors, 2u);
  // The server survived both; a fresh connection works.
  Client client = MustConnect(server_->port());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServeE2ETest, DecodeErrorRepliesTypedAndKeepsConnection) {
  StartServer();
  RawConn conn(server_->port());
  // A well-framed payload whose body is garbage: u32 seq, unknown type
  // byte 99, then padding.
  persist::ByteWriter bad;
  bad.WriteU32(9);  // length prefix
  bad.WriteU32(123);
  bad.WriteU8(99);
  bad.WriteU32(0);
  conn.Send(bad);
  auto error = conn.RecvResponse(MsgType::kPing);
  ASSERT_TRUE(error.ok()) << error.status().ToString();
  EXPECT_EQ(error.value().status, WireStatus::kInvalidArgument);
  // The framing is intact, so the connection survives: a valid request
  // on the same socket succeeds.
  persist::ByteWriter ping;
  EncodeRequest(PingRequest(7), &ping);
  conn.Send(ping);
  auto pong = conn.RecvResponse(MsgType::kPing);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong.value().status, WireStatus::kOk);
  EXPECT_EQ(pong.value().seq, 7u);
}

TEST_F(ServeE2ETest, AbruptDisconnectMidFrameIsHarmless) {
  StartServer();
  {
    RawConn conn(server_->port());
    uint8_t partial[2] = {0xff, 0x00};  // half a length prefix
    conn.Send(partial, sizeof(partial));
  }  // destructor closes mid-frame
  {
    // A declared payload that never arrives, then disconnect.
    RawConn conn(server_->port());
    uint32_t len = 100;
    conn.Send(&len, sizeof(len));
  }
  Client client = MustConnect(server_->port());
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(ServeE2ETest, PipelinedRequestsMatchBySeq) {
  StartServer();
  RawConn conn(server_->port());
  // Two requests in one write; replies may complete in any order on the
  // executor pool, the seq echo pairs them up.
  persist::ByteWriter frames;
  EncodeRequest(PingRequest(100), &frames);
  EncodeRequest(PingRequest(101), &frames);
  conn.Send(frames);
  auto a = conn.RecvResponse(MsgType::kPing);
  auto b = conn.RecvResponse(MsgType::kPing);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().seq + b.value().seq, 201u);
  EXPECT_NE(a.value().seq, b.value().seq);
}

TEST_F(ServeE2ETest, KnnKAboveCapRejectedTyped) {
  StartServer();
  Client client = MustConnect(server_->port());
  SetRecord query(engine_->db().set(0));
  auto hits = client.Knn(query.view(), static_cast<size_t>(kMaxKnnK) + 1);
  ASSERT_FALSE(hits.ok());
  EXPECT_EQ(hits.status().code(), StatusCode::kInvalidArgument);
  // A body rejection, not a framing one: the connection survives.
  EXPECT_TRUE(client.Ping().ok());
}

// Burst + shutdown(SHUT_WR) is a legal client pattern: every request
// sent before the FIN must still be answered, the replies flushed, and
// only then the connection closed.
TEST_F(ServeE2ETest, PeerFinAfterBurstStillGetsReplies) {
  StartServer();
  RawConn conn(server_->port());
  constexpr uint32_t kBurst = 8;
  persist::ByteWriter frames;
  for (uint32_t i = 0; i < kBurst; ++i) {
    EncodeRequest(PingRequest(100 + i), &frames);
  }
  conn.Send(frames);
  conn.ShutdownWrite();
  std::vector<bool> seen(kBurst, false);
  for (uint32_t i = 0; i < kBurst; ++i) {
    auto response = conn.RecvResponse(MsgType::kPing);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().status, WireStatus::kOk);
    uint32_t seq = response.value().seq;
    ASSERT_GE(seq, 100u);
    ASSERT_LT(seq, 100u + kBurst);
    EXPECT_FALSE(seen[seq - 100]);
    seen[seq - 100] = true;
  }
  EXPECT_TRUE(conn.ServerClosed());
}

// A client that pipelines thousands of requests while reading slowly
// must not grow the server's per-connection buffers without bound: the
// tiny outbuf cap pauses reads under backlog, flushing resumes them, and
// every single request is still answered (liveness under backpressure).
TEST_F(ServeE2ETest, OutputBufferCapBackpressureAnswersEverything) {
  ServerOptions options;
  options.max_conn_outbuf_bytes = 16 * 1024;
  options.max_pending = 1u << 16;  // admission never rejects this test
  StartServer(options);
  RawConn conn(server_->port(), /*rcvbuf=*/4096);
  constexpr uint32_t kCount = 40000;
  persist::ByteWriter frames;
  for (uint32_t i = 0; i < kCount; ++i) EncodeRequest(PingRequest(i), &frames);
  // The sender may block mid-stream while the server applies
  // backpressure; the main thread reads concurrently so it drains.
  std::thread sender([&] { conn.SendLoop(frames); });
  std::vector<bool> seen(kCount, false);
  uint32_t ok = 0;
  for (uint32_t i = 0; i < kCount; ++i) {
    auto response = conn.RecvResponse(MsgType::kPing);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response.value().status, WireStatus::kOk);
    ASSERT_LT(response.value().seq, kCount);
    ASSERT_FALSE(seen[response.value().seq]);
    seen[response.value().seq] = true;
    ++ok;
  }
  sender.join();
  EXPECT_EQ(ok, kCount);
}

TEST_F(ServeE2ETest, GracefulShutdownDrainsInFlightRequests) {
  std::mutex mu;
  std::condition_variable cv;
  bool gate_open = false;
  std::atomic<int> held{0};

  ServerOptions options;
  options.executors = 1;
  options.before_execute = [&](const Request& request) {
    if (request.type != MsgType::kKnn) return;
    held.fetch_add(1);
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gate_open; });
  };
  StartServer(options);
  uint16_t port = server_->port();

  // An in-flight request, held inside the executor.
  SetRecord query(engine_->db().set(0));
  Status in_flight = Status::Internal("no reply");
  std::vector<Hit> in_flight_hits;
  std::thread requester([&] {
    Client client = MustConnect(port);
    auto hits = client.Knn(query.view(), 5);
    in_flight = hits.ok() ? Status::OK() : hits.status();
    if (hits.ok()) in_flight_hits = std::move(hits).ValueOrDie();
  });
  while (held.load() == 0) std::this_thread::sleep_for(
      std::chrono::milliseconds(1));

  // Shutdown must block until the drained request is answered.
  std::atomic<bool> shutdown_returned{false};
  std::thread shutdown([&] {
    server_->Shutdown();
    shutdown_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(shutdown_returned.load());  // still draining
  {
    std::lock_guard<std::mutex> lock(mu);
    gate_open = true;
    cv.notify_all();
  }
  shutdown.join();
  requester.join();

  // The in-flight request was answered, correctly, through the drain.
  ASSERT_TRUE(in_flight.ok()) << in_flight.ToString();
  ExpectExactHits(engine_->Knn(query.view(), 5).hits, in_flight_hits,
                  "drained");
  // And the server is actually gone: new connections fail outright.
  auto late = Client::Connect("127.0.0.1", port, 1000);
  if (late.ok()) {
    EXPECT_FALSE(late.value().Ping().ok());
  }
  // Idempotent.
  server_->Shutdown();
}

// The TSan leg: concurrent query clients and an inserter on one server,
// cache enabled, then a final differential against the engine.
TEST_F(ServeE2ETest, ConcurrentClientsAndInserts) {
  StartServer();
  uint16_t port = server_->port();
  std::vector<SetRecord> queries = SampleQueries(engine_->db(), 8);

  constexpr int kClients = 4;
  constexpr int kIters = 40;
  constexpr int kInserts = 12;
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client = MustConnect(port);
      for (int i = 0; i < kIters; ++i) {
        const SetRecord& query = queries[(c + i) % queries.size()];
        if (i % 2 == 0) {
          if (!client.Knn(query.view(), 5).ok()) failures.fetch_add(1);
        } else {
          if (!client.Range(query.view(), 0.6).ok()) failures.fetch_add(1);
        }
      }
    });
  }
  std::thread inserter([&] {
    Client client = MustConnect(port);
    for (int i = 0; i < kInserts; ++i) {
      if (!client.Insert(queries[i % queries.size()]).ok()) {
        failures.fetch_add(1);
      }
    }
  });
  for (auto& thread : clients) thread.join();
  inserter.join();
  EXPECT_EQ(failures.load(), 0u);

  // Quiescent differential: with all inserts applied, served answers
  // again equal fresh engine computations.
  Client client = MustConnect(port);
  for (const SetRecord& query : queries) {
    auto hits = client.Knn(query.view(), 5);
    ASSERT_TRUE(hits.ok());
    ExpectExactHits(engine_->Knn(query.view(), 5).hits, hits.value(),
                    "quiescent");
  }
  Server::Counters counters = server_->counters();
  EXPECT_EQ(counters.requests_ok,
            uint64_t{kClients} * kIters + kInserts + queries.size());
}

// Executor coalescing (ServerOptions::batch_window): a pipelined burst of
// compatible and INcompatible requests, executed by one deliberately slow
// executor so the pending queue actually fills and groups form. Every
// reply must be byte-exact against a direct engine call and match its
// request by seq — coalescing must be invisible in the answers.
TEST_F(ServeE2ETest, CoalescedServingStaysExact) {
  ServerOptions options;
  options.batch_window = 8;
  options.executors = 1;
  options.cache_bytes = 0;  // every request reaches the engine batch path
  options.before_execute = [](const Request&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  StartServer(options);
  Client client = MustConnect(server_->port());
  std::vector<SetRecord> queries = SampleQueries(engine_->db(), 10);

  std::vector<Request> burst;
  for (size_t i = 0; i < 40; ++i) {
    Request request;
    request.queries.push_back(queries[i % queries.size()]);
    switch (i % 4) {
      case 0:
        request.type = MsgType::kKnn;
        request.k = 5;
        break;
      case 1:
        request.type = MsgType::kKnn;
        request.k = 9;  // incompatible k: must never share a group with k=5
        break;
      case 2:
        request.type = MsgType::kRange;
        request.delta = 0.5;
        break;
      default:
        request.type = MsgType::kRange;
        request.delta = 0.7;
        break;
    }
    burst.push_back(std::move(request));
  }
  std::vector<Response> replies;
  Status st = client.CallPipelined(burst, &replies);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(replies.size(), burst.size());
  for (size_t i = 0; i < burst.size(); ++i) {
    ASSERT_EQ(replies[i].status, WireStatus::kOk) << replies[i].message;
    SetView query = burst[i].queries[0].view();
    std::vector<Hit> direct = burst[i].type == MsgType::kKnn
                                  ? engine_->Knn(query, burst[i].k).hits
                                  : engine_->Range(query, burst[i].delta).hits;
    ExpectExactHits(direct, replies[i].results[0],
                    "coalesced i=" + std::to_string(i));
  }
}

// Coalescing under concurrent mutations — the TSan leg for the batched
// serving path: pipelining clients keep the queue populated while a
// mutator inserts/deletes/updates, so engine batch calls, cache fills,
// epoch bumps, and coalesced grouping all race. Replies must stay
// well-formed throughout and exact once quiescent.
TEST_F(ServeE2ETest, CoalescedServingWithConcurrentMutations) {
  ServerOptions options;
  options.batch_window = 6;
  options.executors = 2;
  StartServer(options);
  uint16_t port = server_->port();
  std::vector<SetRecord> queries = SampleQueries(engine_->db(), 8);

  constexpr int kClients = 3;
  constexpr int kRounds = 12;
  constexpr size_t kPipeline = 10;
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client = MustConnect(port);
      std::vector<Request> burst;
      std::vector<Response> replies;
      for (int round = 0; round < kRounds; ++round) {
        burst.clear();
        for (size_t j = 0; j < kPipeline; ++j) {
          Request request;
          request.type = (j % 2 == 0) ? MsgType::kKnn : MsgType::kRange;
          request.k = 5;
          request.delta = 0.6;
          request.queries.push_back(queries[(c + round + j) % queries.size()]);
          burst.push_back(std::move(request));
        }
        if (!client.CallPipelined(burst, &replies).ok()) {
          failures.fetch_add(kPipeline);
          continue;
        }
        for (const Response& reply : replies) {
          if (reply.status != WireStatus::kOk) failures.fetch_add(1);
        }
      }
    });
  }
  std::thread mutator([&] {
    Client client = MustConnect(port);
    for (int i = 0; i < 30; ++i) {
      Status st = Status::OK();
      switch (i % 3) {
        case 0: {
          auto id = client.Insert(queries[i % queries.size()]);
          st = id.ok() ? Status::OK() : id.status();
          break;
        }
        case 1:
          st = client.Delete(static_cast<SetId>(5 * (i / 3)));
          break;
        default:
          st = client.Update(static_cast<SetId>(150 + 5 * (i / 3)),
                             queries[i % queries.size()]);
      }
      if (!st.ok()) failures.fetch_add(1);
    }
  });
  for (auto& thread : clients) thread.join();
  mutator.join();
  EXPECT_EQ(failures.load(), 0u);

  Client client = MustConnect(port);
  for (const SetRecord& query : queries) {
    auto hits = client.Knn(query.view(), 5);
    ASSERT_TRUE(hits.ok());
    ExpectExactHits(engine_->Knn(query.view(), 5).hits, hits.value(),
                    "quiescent coalesced");
  }
}

// The kMaintainNow admin verb: runs a synchronous maintenance cycle on
// the serving engine, returns its ops counters, and preserves every
// answer — including ones already sitting in the result cache (no epoch
// bump: maintenance is exactness-preserving).
TEST_F(ServeE2ETest, MaintainNowOverWire) {
  StartServer();
  Client client = MustConnect(server_->port());
  std::vector<SetRecord> queries = SampleQueries(engine_->db(), 6);

  // Tombstone some sets so maintenance has stale bits to pay down.
  for (SetId id = 0; id < 30; id += 2) {
    ASSERT_TRUE(client.Delete(id).ok());
  }
  // Warm the cache and pin the expected answers.
  std::vector<std::vector<Hit>> before;
  for (const SetRecord& query : queries) {
    auto hits = client.Knn(query.view(), 6);
    ASSERT_TRUE(hits.ok());
    before.push_back(std::move(hits).ValueOrDie());
  }
  ASSERT_NE(server_->cache(), nullptr);
  uint64_t epoch_before = server_->cache()->epoch();

  auto report = client.MaintainNow();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report.value().bits_dropped, 0u);  // the tombstones' dirt

  // No invalidation, and the (cached) answers are still the exact ones.
  EXPECT_EQ(server_->cache()->epoch(), epoch_before);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto hits = client.Knn(queries[i].view(), 6);
    ASSERT_TRUE(hits.ok());
    ExpectExactHits(before[i], hits.value(),
                    "post-maintenance q=" + std::to_string(i));
    ExpectExactHits(engine_->Knn(queries[i].view(), 6).hits, hits.value(),
                    "post-maintenance fresh q=" + std::to_string(i));
  }
}

// Backends without self-healing maintenance answer the verb with a typed
// NotSupported, not a protocol error.
TEST_F(ServeE2ETest, MaintainNowNotSupportedTyped) {
  auto engine = api::EngineBuilder::Build(MakeDb(12), "brute_force",
                                          FastOptions());
  ASSERT_TRUE(engine.ok());
  std::shared_ptr<SearchEngine> shared(std::move(engine).ValueOrDie());
  ServerOptions options;
  options.port = 0;
  Server server(shared, options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server.port());
  auto report = client.MaintainNow();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kNotSupported);
  // The connection survives a typed rejection.
  EXPECT_TRUE(client.Ping().ok());
}

}  // namespace
}  // namespace serve
}  // namespace les3
