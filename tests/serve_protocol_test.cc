// Codec suite for the les3_serve wire protocol (serve/wire.h): round
// trips for every message type, then the malformed-frame sweep — framing
// violations, truncation at every byte boundary, corrupted fields —
// mirroring the snapshot corruption suite. Every malformed input must
// produce a typed Status (never a crash, hang, or out-of-bounds read;
// the ASan/UBSan CI lane runs this binary).

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "serve/wire.h"

namespace les3 {
namespace serve {
namespace {

SetRecord Set(std::vector<TokenId> tokens) {
  return SetRecord::FromSortedTokens(std::move(tokens));
}

// Encodes `request` and returns just the payload (length prefix checked
// and stripped).
std::vector<uint8_t> EncodePayload(const Request& request) {
  persist::ByteWriter out;
  EncodeRequest(request, &out);
  size_t frame_end = 0;
  bool complete = false;
  EXPECT_TRUE(
      ExtractFrame(out.data().data(), out.size(), &frame_end, &complete).ok());
  EXPECT_TRUE(complete);
  EXPECT_EQ(frame_end, out.size());
  return std::vector<uint8_t>(out.data().begin() + 4, out.data().end());
}

std::vector<uint8_t> EncodeResponsePayload(const Response& response,
                                           MsgType type) {
  persist::ByteWriter out;
  EncodeResponse(response, type, &out);
  return std::vector<uint8_t>(out.data().begin() + 4, out.data().end());
}

Request KnnRequest() {
  Request request;
  request.seq = 42;
  request.type = MsgType::kKnn;
  request.deadline_ms = 250;
  request.k = 10;
  request.queries.push_back(Set({1, 5, 9, 9, 200000}));
  return request;
}

// ---------------------------------------------------------------------------
// Round trips.

TEST(ServeProtocol, RoundTripPingAndDescribe) {
  for (MsgType type : {MsgType::kPing, MsgType::kDescribe}) {
    Request request;
    request.seq = 7;
    request.type = type;
    request.deadline_ms = 100;
    std::vector<uint8_t> payload = EncodePayload(request);
    auto decoded = DecodeRequest(payload.data(), payload.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().seq, 7u);
    EXPECT_EQ(decoded.value().type, type);
    EXPECT_EQ(decoded.value().deadline_ms, 100u);
    EXPECT_TRUE(decoded.value().queries.empty());
  }
}

TEST(ServeProtocol, RoundTripKnn) {
  std::vector<uint8_t> payload = EncodePayload(KnnRequest());
  auto decoded = DecodeRequest(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Request& request = decoded.value();
  EXPECT_EQ(request.seq, 42u);
  EXPECT_EQ(request.type, MsgType::kKnn);
  EXPECT_EQ(request.k, 10u);
  ASSERT_EQ(request.queries.size(), 1u);
  EXPECT_EQ(request.queries[0].tokens(),
            (std::vector<TokenId>{1, 5, 9, 9, 200000}));
}

TEST(ServeProtocol, RoundTripRange) {
  Request request;
  request.seq = 3;
  request.type = MsgType::kRange;
  request.delta = 0.725;
  request.queries.push_back(Set({2, 4}));
  std::vector<uint8_t> payload = EncodePayload(request);
  auto decoded = DecodeRequest(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MsgType::kRange);
  EXPECT_DOUBLE_EQ(decoded.value().delta, 0.725);
  ASSERT_EQ(decoded.value().queries.size(), 1u);
  EXPECT_EQ(decoded.value().queries[0].tokens(),
            (std::vector<TokenId>{2, 4}));
}

TEST(ServeProtocol, RoundTripBatches) {
  for (MsgType type : {MsgType::kKnnBatch, MsgType::kRangeBatch}) {
    Request request;
    request.seq = 11;
    request.type = type;
    request.k = 5;
    request.delta = 0.5;
    request.queries.push_back(Set({1, 2, 3}));
    request.queries.push_back(Set({}));  // the empty set is a legal query
    request.queries.push_back(Set({7}));
    std::vector<uint8_t> payload = EncodePayload(request);
    auto decoded = DecodeRequest(payload.data(), payload.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded.value().queries.size(), 3u);
    EXPECT_EQ(decoded.value().queries[1].size(), 0u);
    EXPECT_EQ(decoded.value().queries[2].tokens(),
              (std::vector<TokenId>{7}));
  }
}

TEST(ServeProtocol, RoundTripInsert) {
  Request request;
  request.seq = 9;
  request.type = MsgType::kInsert;
  request.queries.push_back(Set({10, 20, 30}));
  std::vector<uint8_t> payload = EncodePayload(request);
  auto decoded = DecodeRequest(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MsgType::kInsert);
  ASSERT_EQ(decoded.value().queries.size(), 1u);
}

TEST(ServeProtocol, RoundTripDelete) {
  Request request;
  request.seq = 13;
  request.type = MsgType::kDelete;
  request.target_id = 77777;
  std::vector<uint8_t> payload = EncodePayload(request);
  auto decoded = DecodeRequest(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MsgType::kDelete);
  EXPECT_EQ(decoded.value().target_id, 77777u);
  EXPECT_TRUE(decoded.value().queries.empty());
  // Truncation never decodes.
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeRequest(payload.data(), len).ok())
        << "prefix length " << len << " decoded";
  }
}

TEST(ServeProtocol, RoundTripUpdate) {
  Request request;
  request.seq = 14;
  request.type = MsgType::kUpdate;
  request.target_id = 42;
  request.queries.push_back(Set({3, 9, 9, 50000}));
  std::vector<uint8_t> payload = EncodePayload(request);
  auto decoded = DecodeRequest(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MsgType::kUpdate);
  EXPECT_EQ(decoded.value().target_id, 42u);
  ASSERT_EQ(decoded.value().queries.size(), 1u);
  EXPECT_EQ(decoded.value().queries[0].tokens(),
            (std::vector<TokenId>{3, 9, 9, 50000}));
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeRequest(payload.data(), len).ok())
        << "prefix length " << len << " decoded";
  }
}

TEST(ServeProtocol, RoundTripMaintainNow) {
  Request request;
  request.seq = 15;
  request.type = MsgType::kMaintainNow;
  std::vector<uint8_t> payload = EncodePayload(request);
  auto decoded = DecodeRequest(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().type, MsgType::kMaintainNow);
  EXPECT_TRUE(decoded.value().queries.empty());
  for (size_t len = 0; len < payload.size(); ++len) {
    EXPECT_FALSE(DecodeRequest(payload.data(), len).ok())
        << "prefix length " << len << " decoded";
  }

  // The OK reply carries the three u64 ops counters, nothing else.
  Response response;
  response.seq = 15;
  response.maintenance_splits = 3;
  response.maintenance_recomputes = 9;
  response.maintenance_bits_dropped = 12345678901234ull;
  std::vector<uint8_t> reply =
      EncodeResponsePayload(response, MsgType::kMaintainNow);
  EXPECT_EQ(EncodedOkPayloadSize(response, MsgType::kMaintainNow),
            reply.size());
  auto round = DecodeResponse(reply.data(), reply.size(),
                              MsgType::kMaintainNow);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_EQ(round.value().maintenance_splits, 3u);
  EXPECT_EQ(round.value().maintenance_recomputes, 9u);
  EXPECT_EQ(round.value().maintenance_bits_dropped, 12345678901234ull);
  for (size_t len = 0; len < reply.size(); ++len) {
    EXPECT_FALSE(
        DecodeResponse(reply.data(), len, MsgType::kMaintainNow).ok())
        << "prefix length " << len << " decoded";
  }
}

TEST(ServeProtocol, MutationOkResponsesCarryNoBody) {
  // A successful Delete/Update reply is seq + status only; the encoder's
  // size accounting and the decoder must agree on the empty body.
  for (MsgType type : {MsgType::kDelete, MsgType::kUpdate}) {
    Response response;
    response.seq = 21;
    std::vector<uint8_t> payload = EncodeResponsePayload(response, type);
    EXPECT_EQ(payload.size(), 4u + 1u);  // seq + status byte
    auto decoded = DecodeResponse(payload.data(), payload.size(), type);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().seq, 21u);
    EXPECT_EQ(decoded.value().status, WireStatus::kOk);
    // Trailing bytes after the empty body are rejected.
    std::vector<uint8_t> oversized = payload;
    oversized.push_back(0);
    EXPECT_FALSE(
        DecodeResponse(oversized.data(), oversized.size(), type).ok());
  }
}

TEST(ServeProtocol, RoundTripResponses) {
  {
    Response response;
    response.seq = 1;
    response.results.push_back({{3, 0.9}, {8, 0.5}});
    std::vector<uint8_t> payload =
        EncodeResponsePayload(response, MsgType::kKnn);
    auto decoded = DecodeResponse(payload.data(), payload.size(),
                                  MsgType::kKnn);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded.value().results.size(), 1u);
    ASSERT_EQ(decoded.value().results[0].size(), 2u);
    EXPECT_EQ(decoded.value().results[0][0].first, 3u);
    EXPECT_DOUBLE_EQ(decoded.value().results[0][0].second, 0.9);
  }
  {
    Response response;
    response.seq = 2;
    response.results.push_back({{1, 1.0}});
    response.results.push_back({});
    std::vector<uint8_t> payload =
        EncodeResponsePayload(response, MsgType::kRangeBatch);
    auto decoded = DecodeResponse(payload.data(), payload.size(),
                                  MsgType::kRangeBatch);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_EQ(decoded.value().results.size(), 2u);
    EXPECT_TRUE(decoded.value().results[1].empty());
  }
  {
    Response response;
    response.seq = 5;
    response.describe = "sharded_les3(...)";
    std::vector<uint8_t> payload =
        EncodeResponsePayload(response, MsgType::kDescribe);
    auto decoded = DecodeResponse(payload.data(), payload.size(),
                                  MsgType::kDescribe);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().describe, "sharded_les3(...)");
  }
  {
    Response response;
    response.seq = 6;
    response.inserted_id = 99000;
    std::vector<uint8_t> payload =
        EncodeResponsePayload(response, MsgType::kInsert);
    auto decoded = DecodeResponse(payload.data(), payload.size(),
                                  MsgType::kInsert);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().inserted_id, 99000u);
  }
}

TEST(ServeProtocol, ErrorResponseDecodesUnderAnyExpectedType) {
  persist::ByteWriter out;
  EncodeErrorResponse(17, WireStatus::kOverloaded, "queue full", &out);
  std::vector<uint8_t> payload(out.data().begin() + 4, out.data().end());
  for (MsgType type : {MsgType::kPing, MsgType::kKnn, MsgType::kRangeBatch,
                       MsgType::kInsert}) {
    auto decoded = DecodeResponse(payload.data(), payload.size(), type);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().seq, 17u);
    EXPECT_EQ(decoded.value().status, WireStatus::kOverloaded);
    EXPECT_EQ(decoded.value().message, "queue full");
    EXPECT_TRUE(decoded.value().results.empty());
  }
}

TEST(ServeProtocol, WireStatusMirrorsStatusCode) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kIOError,
      StatusCode::kNotSupported, StatusCode::kInternal,
      StatusCode::kDeadlineExceeded, StatusCode::kOverloaded,
  };
  for (StatusCode code : codes) {
    EXPECT_EQ(CodeFromWireStatus(WireStatusFromCode(code)), code);
  }
  EXPECT_EQ(WireStatusFromCode(StatusCode::kDeadlineExceeded),
            WireStatus::kDeadlineExceeded);
  EXPECT_EQ(WireStatusFromCode(StatusCode::kOverloaded),
            WireStatus::kOverloaded);
  // Status::FromCode must round-trip the serving codes too: the client
  // folds wire rejections back into les3::Status through it.
  EXPECT_EQ(Status::FromCode(StatusCode::kDeadlineExceeded, "m").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::FromCode(StatusCode::kOverloaded, "m").code(),
            StatusCode::kOverloaded);
}

// ---------------------------------------------------------------------------
// Framing.

TEST(ServeProtocol, ExtractFrameWaitsForPrefixAndPayload) {
  persist::ByteWriter out;
  EncodeRequest(KnnRequest(), &out);
  const std::vector<uint8_t>& frame = out.data();
  // Every strict prefix of the frame is "incomplete", never an error.
  for (size_t len = 0; len < frame.size(); ++len) {
    size_t frame_end = 0;
    bool complete = true;
    Status st = ExtractFrame(frame.data(), len, &frame_end, &complete);
    ASSERT_TRUE(st.ok()) << "prefix length " << len << ": " << st.ToString();
    EXPECT_FALSE(complete) << "prefix length " << len;
  }
  size_t frame_end = 0;
  bool complete = false;
  ASSERT_TRUE(
      ExtractFrame(frame.data(), frame.size(), &frame_end, &complete).ok());
  EXPECT_TRUE(complete);
  EXPECT_EQ(frame_end, frame.size());
}

TEST(ServeProtocol, ExtractFrameRejectsZeroLength) {
  const uint8_t zero[4] = {0, 0, 0, 0};
  size_t frame_end = 0;
  bool complete = false;
  Status st = ExtractFrame(zero, sizeof(zero), &frame_end, &complete);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocol, ExtractFrameRejectsOversizedLength) {
  // A length prefix above the cap must be rejected from the prefix alone,
  // before any payload arrives (no 64 MiB allocation on 4 hostile bytes).
  uint32_t huge = kMaxFrameBytes + 1;
  uint8_t prefix[4];
  std::memcpy(prefix, &huge, sizeof(huge));
  size_t frame_end = 0;
  bool complete = false;
  Status st = ExtractFrame(prefix, sizeof(prefix), &frame_end, &complete);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Truncation sweeps: every strict prefix of a valid payload must decode
// to a typed error (the full payload consumes every byte, so a prefix
// always cuts a read short or trips a count check).

TEST(ServeProtocol, RequestTruncationSweep) {
  Request request;
  request.seq = 1;
  request.type = MsgType::kKnnBatch;
  request.k = 3;
  request.queries.push_back(Set({1, 2, 3}));
  request.queries.push_back(Set({4, 5}));
  std::vector<uint8_t> payload = EncodePayload(request);
  ASSERT_TRUE(DecodeRequest(payload.data(), payload.size()).ok());
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = DecodeRequest(payload.data(), len);
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len << " decoded";
  }
}

TEST(ServeProtocol, ResponseTruncationSweep) {
  Response response;
  response.seq = 1;
  response.results.push_back({{1, 0.5}, {2, 0.25}});
  response.results.push_back({{9, 1.0}});
  std::vector<uint8_t> payload =
      EncodeResponsePayload(response, MsgType::kKnnBatch);
  ASSERT_TRUE(
      DecodeResponse(payload.data(), payload.size(), MsgType::kKnnBatch).ok());
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = DecodeResponse(payload.data(), len, MsgType::kKnnBatch);
    EXPECT_FALSE(decoded.ok()) << "prefix length " << len << " decoded";
  }
}

// ---------------------------------------------------------------------------
// Corrupted fields.

TEST(ServeProtocol, RejectsUnknownRequestType) {
  std::vector<uint8_t> payload = EncodePayload(KnnRequest());
  for (uint8_t bad : {uint8_t{0}, uint8_t{11}, uint8_t{200}}) {
    std::vector<uint8_t> corrupt = payload;
    corrupt[4] = bad;  // type byte sits after the u32 seq
    auto decoded = DecodeRequest(corrupt.data(), corrupt.size());
    ASSERT_FALSE(decoded.ok()) << "type " << int(bad);
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ServeProtocol, RejectsUnknownResponseStatus) {
  Response response;
  response.seq = 1;
  response.results.push_back({});
  std::vector<uint8_t> payload =
      EncodeResponsePayload(response, MsgType::kKnn);
  payload[4] = 10;  // first value past WireStatus::kOverloaded
  auto decoded = DecodeResponse(payload.data(), payload.size(), MsgType::kKnn);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocol, RejectsDescendingTokens) {
  // Hand-encode: the public encoder cannot produce out-of-order tokens
  // (SetRecord sorts), so corrupt the bytes of a sorted set instead.
  std::vector<uint8_t> payload = EncodePayload(KnnRequest());
  // Swap the first two tokens (1 and 5): offsets are seq(4) + type(1) +
  // deadline(4) + k(4) + count(4) = 17, tokens at 17 and 21.
  for (int i = 0; i < 4; ++i) std::swap(payload[17 + i], payload[21 + i]);
  auto decoded = DecodeRequest(payload.data(), payload.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocol, DuplicateTokensAreLegal) {
  Request request = KnnRequest();
  request.queries[0] = Set({3, 3, 3});
  std::vector<uint8_t> payload = EncodePayload(request);
  EXPECT_TRUE(DecodeRequest(payload.data(), payload.size()).ok());
}

TEST(ServeProtocol, RejectsTrailingBytes) {
  std::vector<uint8_t> payload = EncodePayload(KnnRequest());
  payload.push_back(0);
  auto decoded = DecodeRequest(payload.data(), payload.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocol, RejectsSetCountBeyondPayload) {
  std::vector<uint8_t> payload = EncodePayload(KnnRequest());
  // Token count field of the single query (offset 13, after seq, type,
  // deadline, k): claim 2^30 tokens in a payload of a few dozen bytes.
  uint32_t huge = 1u << 30;
  std::memcpy(payload.data() + 13, &huge, sizeof(huge));
  auto decoded = DecodeRequest(payload.data(), payload.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocol, RejectsBatchCountOverCap) {
  Request request;
  request.seq = 1;
  request.type = MsgType::kKnnBatch;
  request.k = 1;
  request.queries.push_back(Set({1}));
  std::vector<uint8_t> payload = EncodePayload(request);
  // Batch count field at offset 13 (seq, type, deadline, k).
  uint32_t over = kMaxBatchQueries + 1;
  std::memcpy(payload.data() + 13, &over, sizeof(over));
  auto decoded = DecodeRequest(payload.data(), payload.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocol, RejectsNonFiniteDelta) {
  Request request;
  request.seq = 1;
  request.type = MsgType::kRange;
  request.delta = 0.5;
  request.queries.push_back(Set({1}));
  std::vector<uint8_t> payload = EncodePayload(request);
  double nan = std::nan("");
  // Delta sits at offset 9 (seq, type, deadline).
  std::memcpy(payload.data() + 9, &nan, sizeof(nan));
  auto decoded = DecodeRequest(payload.data(), payload.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(ServeProtocol, RejectsKAboveCap) {
  for (MsgType type : {MsgType::kKnn, MsgType::kKnnBatch}) {
    Request request;
    request.seq = 1;
    request.type = type;
    request.k = kMaxKnnK + 1;
    request.queries.push_back(Set({1}));
    std::vector<uint8_t> payload = EncodePayload(request);
    auto decoded = DecodeRequest(payload.data(), payload.size());
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  // kMaxKnnK itself is legal.
  Request request = KnnRequest();
  request.k = kMaxKnnK;
  std::vector<uint8_t> payload = EncodePayload(request);
  EXPECT_TRUE(DecodeRequest(payload.data(), payload.size()).ok());
}

TEST(ServeProtocol, EncodedOkPayloadSizeMatchesEncoder) {
  Response response;
  response.seq = 9;
  response.describe = "engine description";
  response.inserted_id = 77;
  // The single-result shape (kKnn/kRange demands exactly one list).
  response.results.push_back({{1, 0.5}, {2, 0.25}});
  for (MsgType type : {MsgType::kPing, MsgType::kDescribe, MsgType::kKnn,
                       MsgType::kRange, MsgType::kInsert}) {
    std::vector<uint8_t> payload = EncodeResponsePayload(response, type);
    EXPECT_EQ(EncodedOkPayloadSize(response, type), payload.size())
        << "type " << static_cast<int>(type);
  }
  // The batch shape, including an empty hit list.
  response.results.push_back({});
  response.results.push_back({{3, 1.0}});
  for (MsgType type : {MsgType::kKnnBatch, MsgType::kRangeBatch}) {
    std::vector<uint8_t> payload = EncodeResponsePayload(response, type);
    EXPECT_EQ(EncodedOkPayloadSize(response, type), payload.size())
        << "type " << static_cast<int>(type);
  }
}

// A well-formed request whose OK result would not fit one frame (~5.6M
// hits) must come back as a typed kOutOfRange error, never an encoder
// abort — the remote-crash guard for huge-k Knn / wide Range / big
// batches.
TEST(ServeProtocol, OversizedOkResponseBecomesOutOfRange) {
  Response response;
  response.seq = 31337;
  response.results.emplace_back();
  response.results[0].assign(kMaxFrameBytes / 12 + 1, Hit{1, 0.5});
  ASSERT_GT(EncodedOkPayloadSize(response, MsgType::kKnn), kMaxFrameBytes);

  persist::ByteWriter out;
  EncodeResponse(response, MsgType::kKnn, &out);
  size_t frame_end = 0;
  bool complete = false;
  ASSERT_TRUE(
      ExtractFrame(out.data().data(), out.size(), &frame_end, &complete).ok());
  ASSERT_TRUE(complete);
  auto decoded = DecodeResponse(out.data().data() + 4, frame_end - 4,
                                MsgType::kKnn);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().seq, 31337u);
  EXPECT_EQ(decoded.value().status, WireStatus::kOutOfRange);
  EXPECT_FALSE(decoded.value().message.empty());

  // ClampOversizedResponse (the server-side path) agrees.
  ClampOversizedResponse(&response, MsgType::kKnn);
  EXPECT_EQ(response.status, WireStatus::kOutOfRange);
  EXPECT_TRUE(response.results.empty());

  // And leaves a small response untouched.
  Response small;
  small.seq = 2;
  small.results.push_back({{1, 0.5}});
  ClampOversizedResponse(&small, MsgType::kKnn);
  EXPECT_EQ(small.status, WireStatus::kOk);
  EXPECT_EQ(small.results.size(), 1u);
}

TEST(ServeProtocol, HitCountBeyondPayloadRejected) {
  Response response;
  response.seq = 1;
  response.results.push_back({{1, 0.5}});
  std::vector<uint8_t> payload =
      EncodeResponsePayload(response, MsgType::kKnn);
  // Hit count at offset 5 (seq, status byte).
  uint32_t huge = 1u << 30;
  std::memcpy(payload.data() + 5, &huge, sizeof(huge));
  auto decoded = DecodeResponse(payload.data(), payload.size(), MsgType::kKnn);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace serve
}  // namespace les3
