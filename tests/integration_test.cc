// End-to-end integration tests: full LES3 pipeline (generate -> L2P ->
// TGM -> search) checked for exactness and for the paper's qualitative
// claims at small scale (learned partitioning prunes better than random,
// updates degrade PE only mildly).

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "baselines/dualtrans.h"
#include "baselines/invidx.h"
#include "datagen/analogs.h"
#include "datagen/generators.h"
#include "l2p/l2p.h"
#include "search/les3_index.h"
#include "tgm/htgm.h"
#include "util/random.h"

namespace les3 {
namespace {

l2p::CascadeOptions FastCascade(uint32_t init, uint32_t target) {
  l2p::CascadeOptions opts;
  opts.init_groups = init;
  opts.target_groups = target;
  opts.min_group_size = 10;
  opts.pairs_per_model = 3000;
  opts.num_threads = 4;
  return opts;
}

TEST(IntegrationTest, FullPipelineExactOnAnalogSample) {
  const auto& spec = datagen::AnalogSpecByName("KOSARAK");
  SetDatabase db = datagen::GenerateAnalogSample(spec, 3000, 1);
  SetDatabase db_copy = db;
  l2p::L2PPartitioner l2p(FastCascade(8, 32));
  auto part = l2p.Partition(db, 32);
  search::Les3Index index(std::move(db_copy), part.assignment,
                          part.num_groups);
  baselines::BruteForce brute(&db);
  auto queries = datagen::SampleQueryIds(db, 25, 2);
  for (SetId qid : queries) {
    SetView query = db.set(qid);
    auto got = index.Knn(query, 10);
    auto expected = brute.Knn(query, 10);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].second, expected[i].second, 1e-12);
    }
    auto got_range = index.Range(query, 0.5);
    auto expected_range = brute.Range(query, 0.5);
    EXPECT_EQ(got_range.size(), expected_range.size());
  }
}

TEST(IntegrationTest, L2PPrunesBetterThanRandomPartitioning) {
  datagen::PowerLawSimOptions gen;
  gen.num_sets = 4000;
  gen.num_tokens = 4000;
  gen.alpha = 1.5;
  gen.seed = 3;
  SetDatabase db = datagen::GeneratePowerLawSimilarity(gen);
  SetDatabase db1 = db, db2 = db;

  l2p::L2PPartitioner l2p(FastCascade(8, 64));
  auto learned = l2p.Partition(db, 64);
  Rng rng(5);
  std::vector<GroupId> random(db.size());
  for (auto& g : random) g = static_cast<GroupId>(rng.Uniform(64));

  search::Les3Index learned_index(std::move(db1), learned.assignment,
                                  learned.num_groups);
  search::Les3Index random_index(std::move(db2), random, 64);
  auto queries = datagen::SampleQueryIds(db, 40, 7);
  double learned_pe = 0, random_pe = 0;
  for (SetId qid : queries) {
    search::QueryStats sl, sr;
    learned_index.Knn(db.set(qid), 10, &sl);
    random_index.Knn(db.set(qid), 10, &sr);
    learned_pe += sl.pruning_efficiency;
    random_pe += sr.pruning_efficiency;
  }
  EXPECT_GT(learned_pe, random_pe);
}

TEST(IntegrationTest, TgmSmallerThanInvIdxAndDualTrans) {
  // The Figure 11 shape at test scale: the compressed TGM is the smallest
  // index.
  const auto& spec = datagen::AnalogSpecByName("AOL");
  SetDatabase db = datagen::GenerateAnalogSample(spec, 5000, 9);
  SetDatabase db_copy = db;
  l2p::L2PPartitioner l2p(FastCascade(8, 32));
  auto part = l2p.Partition(db, 32);
  search::Les3Index index(std::move(db_copy), part.assignment,
                          part.num_groups);
  baselines::InvIdx invidx(&db);
  baselines::DualTrans dualtrans(&db);
  EXPECT_LT(index.tgm().BitmapBytes(), invidx.IndexBytes());
  EXPECT_LT(index.tgm().BitmapBytes(), dualtrans.IndexBytes());
}

TEST(IntegrationTest, UpdatesDegradePeOnlyMildly) {
  // Figure 15 shape: insert 50% new sets (closed universe) and compare PE
  // against a from-scratch rebuild; the drop should be bounded.
  datagen::ZipfOptions gen;
  gen.num_sets = 3000;
  gen.num_tokens = 1000;
  gen.avg_set_size = 8;
  gen.seed = 11;
  SetDatabase base = datagen::GenerateZipf(gen);
  gen.seed = 13;
  SetDatabase extra = datagen::GenerateZipf(gen);
  const size_t insert_count = 1500;

  // Index built on base, then updated incrementally.
  SetDatabase base_copy = base;
  l2p::L2PPartitioner l2p(FastCascade(8, 32));
  auto part = l2p.Partition(base, 32);
  search::Les3Index updated(std::move(base_copy), part.assignment,
                            part.num_groups);
  for (size_t i = 0; i < insert_count; ++i) {
    updated.Insert(SetRecord(extra.set(static_cast<SetId>(i))));
  }

  // Rebuild from scratch on the union.
  SetDatabase unioned = base;
  for (size_t i = 0; i < insert_count; ++i) {
    unioned.AddSet(extra.set(static_cast<SetId>(i)));
  }
  SetDatabase unioned_copy = unioned;
  l2p::L2PPartitioner l2p2(FastCascade(8, 32));
  auto part2 = l2p2.Partition(unioned, 32);
  search::Les3Index rebuilt(std::move(unioned_copy), part2.assignment,
                            part2.num_groups);

  auto queries = datagen::SampleQueryIds(unioned, 30, 15);
  double pe_updated = 0, pe_rebuilt = 0;
  for (SetId qid : queries) {
    search::QueryStats su, sr;
    updated.Knn(unioned.set(qid), 10, &su);
    rebuilt.Knn(unioned.set(qid), 10, &sr);
    pe_updated += su.pruning_efficiency;
    pe_rebuilt += sr.pruning_efficiency;
  }
  pe_updated /= queries.size();
  pe_rebuilt /= queries.size();
  // Results stay exact (spot check).
  baselines::BruteForce brute(&unioned);
  auto got = updated.Knn(unioned.set(queries[0]), 10);
  auto expected = brute.Knn(unioned.set(queries[0]), 10);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].second, expected[i].second, 1e-12);
  }
  // PE decreases, but within a generous bound at this scale (paper: <= 8%
  // at full scale).
  EXPECT_LE(pe_rebuilt - pe_updated, 0.25);
}

TEST(IntegrationTest, HtgmFromCascadeLevelsIsExact) {
  datagen::PowerLawSimOptions gen;
  gen.num_sets = 2000;
  gen.num_tokens = 2000;
  gen.alpha = 3.0;
  gen.seed = 17;
  SetDatabase db = datagen::GeneratePowerLawSimilarity(gen);
  l2p::L2PPartitioner l2p(FastCascade(4, 32));
  auto part = l2p.Partition(db, 32);
  const auto& levels = l2p.last_cascade().levels;
  ASSERT_GE(levels.size(), 2u);
  tgm::HtgmLevelSpec coarse{levels.front().assignment,
                            levels.front().num_groups};
  tgm::HtgmLevelSpec fine{levels.back().assignment,
                          levels.back().num_groups};
  tgm::Htgm htgm(db, {coarse, fine});
  baselines::BruteForce brute(&db);
  auto queries = datagen::SampleQueryIds(db, 20, 19);
  for (SetId qid : queries) {
    auto got = htgm.Knn(db, db.set(qid), 10, SimilarityMeasure::kJaccard,
                        nullptr);
    auto expected = brute.Knn(db.set(qid), 10);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].second, expected[i].second, 1e-12);
    }
  }
}

}  // namespace
}  // namespace les3
