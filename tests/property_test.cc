// Differential property-test suite: every EngineBuilder backend — and both
// TGM bitmap backends — must agree EXACTLY with brute force on randomized
// corpora, for kNN and range queries, across similarity measures,
// including tie-handling: since every searcher resolves similarity ties
// toward the smaller id (HitOrder), the full hit sequence (ids,
// similarities, order) is a deterministic function of the query, and any
// kernel or pruning bug that changes an answer fails the diff.
//
// A save→load differential leg holds snapshot reloads (persist/) to the
// same bar: the reopened engine must agree exactly with the engine that
// was saved, for both les3-family backends and both bitmap backends.
//
// The default run sweeps a small matrix (seconds). Set
// LES3_PROPERTY_SWEEP=full for the extended sweep across more corpus
// regimes, measures, seeds, and query loads — CMake registers that as the
// `property_sweep` ctest entry behind the "slow" label.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "api/engine_builder.h"
#include "api/engine_options.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace les3 {
namespace api {
namespace {

bool FullSweep() {
  const char* env = std::getenv("LES3_PROPERTY_SWEEP");
  return env != nullptr && std::string(env) == "full";
}

// ---------------------------------------------------------------------------
// Corpus regimes: token-skew x set-length.

struct Regime {
  std::string name;
  SetDatabase db;
};

SetDatabase UniformDb(uint32_t sets, uint32_t tokens, double avg,
                      uint64_t seed) {
  datagen::UniformOptions o;
  o.num_sets = sets;
  o.num_tokens = tokens;
  o.avg_set_size = avg;
  o.seed = seed;
  return datagen::GenerateUniform(o);
}

SetDatabase ZipfDb(uint32_t sets, uint32_t tokens, double avg, double skew,
                   double cluster, uint64_t seed) {
  datagen::ZipfOptions o;
  o.num_sets = sets;
  o.num_tokens = tokens;
  o.avg_set_size = avg;
  o.zipf_exponent = skew;
  o.cluster_fraction = cluster;
  o.sets_per_cluster = 64;
  o.seed = seed;
  return datagen::GenerateZipf(o);
}

std::vector<Regime> MakeRegimes() {
  std::vector<Regime> regimes;
  // Dense small universe with short sets: maximal similarity collisions,
  // the regime that stresses tie-handling.
  regimes.push_back({"uniform_short", UniformDb(300, 50, 4.0, 21)});
  // Skewed token popularity, medium sets: the Zipf-head columns become
  // run/bitset containers, stressing the batched kernels.
  regimes.push_back({"zipf_mid", ZipfDb(350, 400, 10.0, 1.0, 0.0, 22)});
  if (FullSweep()) {
    regimes.push_back(
        {"zipf_clustered_long", ZipfDb(400, 800, 24.0, 0.8, 0.6, 23)});
    regimes.push_back({"uniform_long", UniformDb(250, 600, 30.0, 24)});
    regimes.push_back({"zipf_skewed", ZipfDb(500, 300, 8.0, 1.3, 0.2, 25)});
  }
  return regimes;
}

std::vector<SimilarityMeasure> MakeMeasures() {
  std::vector<SimilarityMeasure> measures = {SimilarityMeasure::kJaccard,
                                             SimilarityMeasure::kContainment};
  if (FullSweep()) {
    measures.push_back(SimilarityMeasure::kDice);
    measures.push_back(SimilarityMeasure::kCosine);
  }
  return measures;
}

// ---------------------------------------------------------------------------
// Query loads: sampled sets, perturbations, and adversarial edges.

std::vector<SetRecord> MakeQueries(const SetDatabase& db, uint64_t seed) {
  Rng rng(seed);
  std::vector<SetRecord> queries;
  size_t sampled = FullSweep() ? 8 : 4;
  for (SetId id : datagen::SampleQueryIds(db, sampled, seed)) {
    queries.emplace_back(db.set(id));
  }
  uint32_t universe = db.num_tokens();
  // Random probe sets, including tokens absent from the database.
  for (int i = 0; i < (FullSweep() ? 4 : 2); ++i) {
    std::vector<TokenId> tokens;
    size_t n = 1 + rng.Uniform(12);
    for (size_t j = 0; j < n; ++j) {
      tokens.push_back(static_cast<TokenId>(rng.Uniform(universe + 20)));
    }
    queries.push_back(SetRecord::FromTokens(std::move(tokens)));
  }
  // Edges: empty query, singleton, duplicate tokens, all-unseen tokens.
  queries.push_back(SetRecord::FromTokens({}));
  queries.push_back(SetRecord::FromTokens({0}));
  queries.push_back(SetRecord::FromTokens({1, 1, 1, 2, 2}));
  queries.push_back(
      SetRecord::FromTokens({universe + 1, universe + 2, universe + 3}));
  return queries;
}

// ---------------------------------------------------------------------------
// Engine matrix and the exact diff.

EngineOptions FastOptions(SimilarityMeasure measure) {
  EngineOptions options;
  options.measure = measure;
  options.num_groups = 20;
  options.cascade.init_groups = 12;
  options.cascade.min_group_size = 8;
  options.cascade.pairs_per_model = 1500;
  options.cascade.seed = 13;
  return options;
}

struct EngineUnderTest {
  std::string label;
  std::unique_ptr<SearchEngine> engine;
};

std::vector<EngineUnderTest> MakeEngines(std::shared_ptr<SetDatabase> db,
                                         SimilarityMeasure measure) {
  std::vector<EngineUnderTest> engines;
  for (const std::string& name : BackendNames()) {
    if (name == "brute_force") continue;  // the reference
    EngineOptions options = FastOptions(measure);
    auto built = EngineBuilder::Build(db, name, options);
    EXPECT_TRUE(built.ok()) << name << ": " << built.status().ToString();
    engines.push_back({name, std::move(built).ValueOrDie()});
    // The LES3 backends additionally run under the dense bitmap backend.
    if (name == "les3" || name == "disk_les3") {
      options.bitmap_backend = bitmap::BitmapBackend::kBitVector;
      auto dense = EngineBuilder::Build(db, name, options);
      EXPECT_TRUE(dense.ok()) << name << ": " << dense.status().ToString();
      engines.push_back({name + "+bitvector", std::move(dense).ValueOrDie()});
    }
    // The sharded engine runs at 1 shard via the plain loop entry above;
    // a 3-shard variant exercises the scatter-gather merge (global-id
    // mapping, cross-shard tie-handling, shards holding fewer than k).
    if (name == "sharded_les3") {
      options.num_shards = 3;
      auto sharded = EngineBuilder::Build(db, name, options);
      EXPECT_TRUE(sharded.ok()) << name << ": " << sharded.status().ToString();
      engines.push_back({name + "+3shards", std::move(sharded).ValueOrDie()});
    }
  }
  return engines;
}

/// Exact agreement: same ids, same similarities, same order — no tie
/// tolerance.
void ExpectExactHits(const std::vector<Hit>& expected,
                     const std::vector<Hit>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first) << label << " rank " << i;
    EXPECT_DOUBLE_EQ(expected[i].second, actual[i].second)
        << label << " rank " << i;
  }
}

TEST(PropertyTest, AllBackendsMatchBruteForceExactly) {
  std::vector<size_t> ks = FullSweep() ? std::vector<size_t>{1, 3, 10, 50}
                                       : std::vector<size_t>{1, 3, 10};
  std::vector<double> deltas = FullSweep()
                                   ? std::vector<double>{0.2, 0.5, 2.0 / 3.0,
                                                         0.8, 1.0}
                                   : std::vector<double>{0.25, 0.5, 0.8};
  for (auto& regime : MakeRegimes()) {
    auto db = std::make_shared<SetDatabase>(std::move(regime.db));
    auto queries = MakeQueries(*db, 31);
    for (SimilarityMeasure measure : MakeMeasures()) {
      auto reference =
          EngineBuilder::Build(db, "brute_force", FastOptions(measure));
      ASSERT_TRUE(reference.ok());
      auto engines = MakeEngines(db, measure);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        const SetRecord& q = queries[qi];
        for (size_t k : ks) {
          auto expected = reference.value()->Knn(q, k);
          for (const auto& e : engines) {
            ExpectExactHits(expected.hits, e.engine->Knn(q, k).hits,
                            regime.name + "/" + ToString(measure) + "/" +
                                e.label + "/knn k=" + std::to_string(k) +
                                " q=" + std::to_string(qi));
          }
        }
        for (double delta : deltas) {
          auto expected = reference.value()->Range(q, delta);
          for (const auto& e : engines) {
            ExpectExactHits(expected.hits, e.engine->Range(q, delta).hits,
                            regime.name + "/" + ToString(measure) + "/" +
                                e.label + "/range d=" + std::to_string(delta) +
                                " q=" + std::to_string(qi));
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Save→load differential leg: a reloaded snapshot engine must agree
// EXACTLY with the engine that was saved — hit ids, similarities, and
// order, ties included — for both les3-family backends, both bitmap
// backends, with and without persisted L2P weights, across measures and
// query loads. The full configuration sweep runs behind the `slow` label
// with the rest of the extended matrix.

struct SnapshotConfig {
  std::string backend;
  bitmap::BitmapBackend bitmap_backend;
  bool keep_l2p_models;
};

TEST(PropertyTest, ReloadedSnapshotAgreesExactlyWithOriginal) {
  std::vector<SnapshotConfig> configs = {
      {"les3", bitmap::BitmapBackend::kRoaring, true},
      {"disk_les3", bitmap::BitmapBackend::kBitVector, false},
  };
  if (FullSweep()) {
    configs.push_back({"les3", bitmap::BitmapBackend::kBitVector, false});
    configs.push_back({"disk_les3", bitmap::BitmapBackend::kRoaring, true});
  }
  std::vector<size_t> ks = FullSweep() ? std::vector<size_t>{1, 3, 10, 50}
                                       : std::vector<size_t>{1, 3, 10};
  std::vector<double> deltas = FullSweep()
                                   ? std::vector<double>{0.2, 0.5, 2.0 / 3.0,
                                                         0.8, 1.0}
                                   : std::vector<double>{0.25, 0.5, 0.8};
  size_t snapshot_id = 0;
  for (auto& regime : MakeRegimes()) {
    auto db = std::make_shared<SetDatabase>(std::move(regime.db));
    auto queries = MakeQueries(*db, 61);
    for (SimilarityMeasure measure : MakeMeasures()) {
      for (const auto& config : configs) {
        EngineOptions options = FastOptions(measure);
        options.bitmap_backend = config.bitmap_backend;
        options.keep_l2p_models = config.keep_l2p_models;
        auto original = EngineBuilder::Build(db, config.backend, options);
        ASSERT_TRUE(original.ok()) << original.status().ToString();
        std::string label = regime.name + "/" + ToString(measure) + "/" +
                            config.backend + "+" +
                            bitmap::ToString(config.bitmap_backend);
        std::string path = ::testing::TempDir() + "les3_property_" +
                           std::to_string(snapshot_id++) + ".snap";
        ASSERT_TRUE(original.value()->Save(path).ok()) << label;
        auto reloaded = EngineBuilder::Open(path);
        ASSERT_TRUE(reloaded.ok())
            << label << ": " << reloaded.status().ToString();
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          const SetRecord& q = queries[qi];
          for (size_t k : ks) {
            ExpectExactHits(original.value()->Knn(q, k).hits,
                            reloaded.value()->Knn(q, k).hits,
                            label + "/knn k=" + std::to_string(k) +
                                " q=" + std::to_string(qi));
          }
          for (double delta : deltas) {
            ExpectExactHits(original.value()->Range(q, delta).hits,
                            reloaded.value()->Range(q, delta).hits,
                            label + "/range d=" + std::to_string(delta) +
                                " q=" + std::to_string(qi));
          }
        }
        std::remove(path.c_str());
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Mutation leg: any deterministic interleaving of Insert / Delete / Update
// / Knn / Range must keep every mutable backend in exact agreement — ids,
// similarities, order, ties — with the brute-force oracle replaying the
// SAME mutation sequence. Each engine owns a private copy of the corpus
// (mutations must not leak across engines through a shared database), and
// after the interleaving the mutated engines are saved (compaction +
// tombstone flag) and reopened, and the reopened engines are held to the
// same oracle.

struct MutableEngine {
  std::string label;
  std::unique_ptr<SearchEngine> engine;
};

std::vector<MutableEngine> MakeMutableEngines(const SetDatabase& base,
                                              SimilarityMeasure measure) {
  std::vector<MutableEngine> engines;
  auto add = [&](const std::string& label, const std::string& backend,
                 EngineOptions options) {
    auto built = EngineBuilder::Build(std::make_shared<SetDatabase>(base),
                                      backend, options);
    EXPECT_TRUE(built.ok()) << label << ": " << built.status().ToString();
    if (built.ok()) engines.push_back({label, std::move(built).ValueOrDie()});
  };
  add("les3", "les3", FastOptions(measure));
  {
    EngineOptions dense = FastOptions(measure);
    dense.bitmap_backend = bitmap::BitmapBackend::kBitVector;
    add("les3+bitvector", "les3", dense);
  }
  {
    EngineOptions sharded = FastOptions(measure);
    sharded.num_shards = 3;
    add("sharded_les3+3shards", "sharded_les3", sharded);
  }
  return engines;
}

TEST(PropertyTest, MutationInterleavingsMatchBruteForceExactly) {
  const size_t num_ops = FullSweep() ? 200 : 90;
  std::vector<size_t> ks = {1, 3, 10};
  std::vector<double> deltas = {0.25, 0.5, 0.8};
  size_t snapshot_id = 0;
  for (auto& regime : MakeRegimes()) {
    SetDatabase base = std::move(regime.db);
    const uint32_t universe = base.num_tokens();
    for (SimilarityMeasure measure : MakeMeasures()) {
      auto oracle = EngineBuilder::Build(std::make_shared<SetDatabase>(base),
                                         "brute_force", FastOptions(measure));
      ASSERT_TRUE(oracle.ok());
      std::vector<MutableEngine> engines = MakeMutableEngines(base, measure);
      ASSERT_EQ(engines.size(), 3u);

      Rng rng(91 + static_cast<uint64_t>(measure));
      auto random_set = [&](size_t min_tokens) {
        std::vector<TokenId> tokens;
        size_t n = min_tokens + rng.Uniform(10);
        for (size_t j = 0; j < n; ++j) {
          tokens.push_back(static_cast<TokenId>(rng.Uniform(universe + 10)));
        }
        return SetRecord::FromTokens(std::move(tokens));
      };
      auto check_queries = [&](const std::string& when) {
        std::vector<SetRecord> queries;
        for (int i = 0; i < 4; ++i) queries.push_back(random_set(1));
        queries.push_back(SetRecord::FromTokens({}));
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          const SetRecord& q = queries[qi];
          for (size_t k : ks) {
            auto expected = oracle.value()->Knn(q, k);
            for (const auto& e : engines) {
              ExpectExactHits(expected.hits, e.engine->Knn(q, k).hits,
                              regime.name + "/" + ToString(measure) + "/" +
                                  e.label + "/" + when +
                                  "/knn k=" + std::to_string(k) +
                                  " q=" + std::to_string(qi));
            }
          }
          for (double delta : deltas) {
            auto expected = oracle.value()->Range(q, delta);
            for (const auto& e : engines) {
              ExpectExactHits(expected.hits,
                              e.engine->Range(q, delta).hits,
                              regime.name + "/" + ToString(measure) + "/" +
                                  e.label + "/" + when +
                                  "/range d=" + std::to_string(delta) +
                                  " q=" + std::to_string(qi));
            }
          }
        }
      };

      for (size_t op = 0; op < num_ops; ++op) {
        const uint32_t kind = rng.Uniform(5);
        const std::string at = "op" + std::to_string(op);
        if (kind == 0) {
          SetRecord novel = random_set(1);
          auto expected_id = oracle.value()->Insert(novel);
          ASSERT_TRUE(expected_id.ok());
          for (const auto& e : engines) {
            auto id = e.engine->Insert(novel);
            ASSERT_TRUE(id.ok()) << e.label << " " << at;
            // Ids are assigned identically (append-only id space).
            EXPECT_EQ(expected_id.value(), id.value()) << e.label << " " << at;
          }
        } else if (kind == 1) {
          // Random target: sometimes live, sometimes already tombstoned —
          // every engine must agree on the verdict, not just the data.
          SetId target =
              static_cast<SetId>(rng.Uniform(oracle.value()->db().size() + 3));
          const bool expected_ok = oracle.value()->Delete(target).ok();
          for (const auto& e : engines) {
            EXPECT_EQ(expected_ok, e.engine->Delete(target).ok())
                << e.label << " " << at << " id=" << target;
          }
        } else if (kind == 2) {
          SetId target =
              static_cast<SetId>(rng.Uniform(oracle.value()->db().size() + 3));
          SetRecord fresh = random_set(1);
          const bool expected_ok = oracle.value()->Update(target, fresh).ok();
          for (const auto& e : engines) {
            EXPECT_EQ(expected_ok, e.engine->Update(target, fresh).ok())
                << e.label << " " << at << " id=" << target;
          }
        } else if (kind == 3) {
          SetRecord q = random_set(1);
          size_t k = 1 + rng.Uniform(8);
          auto expected = oracle.value()->Knn(q, k);
          for (const auto& e : engines) {
            ExpectExactHits(expected.hits, e.engine->Knn(q, k).hits,
                            e.label + "/" + at + "/knn");
          }
        } else {
          SetRecord q = random_set(1);
          double delta = deltas[rng.Uniform(deltas.size())];
          auto expected = oracle.value()->Range(q, delta);
          for (const auto& e : engines) {
            ExpectExactHits(expected.hits, e.engine->Range(q, delta).hits,
                            e.label + "/" + at + "/range");
          }
        }
        if (::testing::Test::HasFatalFailure() || ::testing::Test::HasFailure())
          return;  // one diff explains more than a thousand cascading ones
      }
      ASSERT_GT(oracle.value()->db().num_deleted(), 0u)
          << "mutation sequence never tombstoned anything — weak test";
      check_queries("quiesced");

      // Compact-then-Open: the saved file physically drops tombstone
      // payloads and stale column bits, and the reopened engine must
      // still answer exactly like the live oracle.
      for (const auto& e : engines) {
        std::string path = ::testing::TempDir() + "les3_mutprop_" +
                           std::to_string(snapshot_id++) + ".snap";
        ASSERT_TRUE(e.engine->Save(path).ok()) << e.label;
        auto reloaded = EngineBuilder::Open(path);
        ASSERT_TRUE(reloaded.ok())
            << e.label << ": " << reloaded.status().ToString();
        EXPECT_EQ(reloaded.value()->db().num_deleted(),
                  oracle.value()->db().num_deleted())
            << e.label;
        Rng qrng(7);
        for (int i = 0; i < 6; ++i) {
          std::vector<TokenId> tokens;
          size_t n = 1 + qrng.Uniform(10);
          for (size_t j = 0; j < n; ++j) {
            tokens.push_back(static_cast<TokenId>(qrng.Uniform(universe + 10)));
          }
          SetRecord q = SetRecord::FromTokens(std::move(tokens));
          for (size_t k : ks) {
            ExpectExactHits(oracle.value()->Knn(q, k).hits,
                            reloaded.value()->Knn(q, k).hits,
                            e.label + "/reopened knn k=" + std::to_string(k));
          }
          for (double delta : deltas) {
            ExpectExactHits(
                oracle.value()->Range(q, delta).hits,
                reloaded.value()->Range(q, delta).hits,
                e.label + "/reopened range d=" + std::to_string(delta));
          }
        }
        std::remove(path.c_str());
      }
      if (!FullSweep()) break;  // one measure per regime in the fast lane
    }
  }
}

/// k larger than the database must return everything, in HitOrder, on
/// every backend (the all-ties tail is where ordering bugs hide).
TEST(PropertyTest, OverlongKnnReturnsWholeDatabaseInOrder) {
  auto db = std::make_shared<SetDatabase>(UniformDb(120, 40, 4.0, 41));
  auto queries = MakeQueries(*db, 42);
  for (SimilarityMeasure measure : MakeMeasures()) {
    auto reference =
        EngineBuilder::Build(db, "brute_force", FastOptions(measure));
    ASSERT_TRUE(reference.ok());
    auto engines = MakeEngines(db, measure);
    for (const SetRecord& q : queries) {
      auto expected = reference.value()->Knn(q, db->size() + 10);
      ASSERT_EQ(expected.hits.size(), db->size());
      for (const auto& e : engines) {
        ExpectExactHits(expected.hits,
                        e.engine->Knn(q, db->size() + 10).hits,
                        e.label + "/overlong " + ToString(measure));
      }
    }
  }
}

}  // namespace
}  // namespace api
}  // namespace les3
