// Unit tests for core/set_record.h, including multiset semantics.

#include "core/set_record.h"

#include <gtest/gtest.h>

namespace les3 {
namespace {

TEST(SetRecordTest, FromTokensSorts) {
  SetRecord s = SetRecord::FromTokens({5, 1, 3, 1});
  EXPECT_EQ(s.tokens(), (std::vector<TokenId>{1, 1, 3, 5}));
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.DistinctCount(), 3u);
}

TEST(SetRecordTest, EmptySet) {
  SetRecord s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.DistinctCount(), 0u);
  EXPECT_FALSE(s.Contains(0));
}

TEST(SetRecordTest, Contains) {
  SetRecord s = SetRecord::FromTokens({2, 4, 8});
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(8));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_FALSE(s.Contains(100));
}

TEST(SetRecordTest, MinMaxToken) {
  SetRecord s = SetRecord::FromTokens({9, 2, 7});
  EXPECT_EQ(s.MinToken(), 2u);
  EXPECT_EQ(s.MaxToken(), 9u);
}

TEST(SetRecordTest, OverlapPlainSets) {
  SetRecord a = SetRecord::FromTokens({1, 2, 3, 4});
  SetRecord b = SetRecord::FromTokens({3, 4, 5});
  EXPECT_EQ(SetRecord::OverlapSize(a, b), 2u);
  EXPECT_EQ(SetRecord::OverlapSize(b, a), 2u);
}

TEST(SetRecordTest, OverlapDisjoint) {
  SetRecord a = SetRecord::FromTokens({1, 2});
  SetRecord b = SetRecord::FromTokens({3, 4});
  EXPECT_EQ(SetRecord::OverlapSize(a, b), 0u);
}

TEST(SetRecordTest, OverlapMultisetMinMultiplicity) {
  // {1,1,1,2} ∩ {1,1,3} = {1,1} under multiset semantics.
  SetRecord a = SetRecord::FromTokens({1, 1, 1, 2});
  SetRecord b = SetRecord::FromTokens({1, 1, 3});
  EXPECT_EQ(SetRecord::OverlapSize(a, b), 2u);
}

TEST(SetRecordTest, OverlapWithSelfIsSize) {
  SetRecord a = SetRecord::FromTokens({1, 1, 2, 9});
  EXPECT_EQ(SetRecord::OverlapSize(a, a), a.size());
}

TEST(SetRecordTest, OverlapWithEmpty) {
  SetRecord a = SetRecord::FromTokens({1, 2});
  SetRecord e;
  EXPECT_EQ(SetRecord::OverlapSize(a, e), 0u);
}

TEST(SetRecordTest, EqualityIsContentBased) {
  EXPECT_EQ(SetRecord::FromTokens({3, 1}), SetRecord::FromTokens({1, 3}));
  EXPECT_FALSE(SetRecord::FromTokens({1}) == SetRecord::FromTokens({1, 1}));
}

}  // namespace
}  // namespace les3
