// Property tests for the Roaring bitmap against a std::set reference model,
// across container-kind transitions (array <-> bitset <-> run).

#include "bitmap/roaring.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/random.h"

namespace les3 {
namespace bitmap {
namespace {

std::vector<uint32_t> ToSortedVector(const std::set<uint32_t>& s) {
  return {s.begin(), s.end()};
}

TEST(RoaringTest, EmptyBitmap) {
  Roaring r;
  EXPECT_TRUE(r.Empty());
  EXPECT_EQ(r.Cardinality(), 0u);
  EXPECT_FALSE(r.Contains(0));
  EXPECT_EQ(r.ToVector().size(), 0u);
}

TEST(RoaringTest, AddAndContainsSmall) {
  Roaring r;
  r.Add(5);
  r.Add(100000);
  r.Add(5);  // duplicate
  EXPECT_EQ(r.Cardinality(), 2u);
  EXPECT_TRUE(r.Contains(5));
  EXPECT_TRUE(r.Contains(100000));
  EXPECT_FALSE(r.Contains(6));
}

TEST(RoaringTest, ArrayToBitsetTransition) {
  Roaring r;
  std::set<uint32_t> ref;
  // Push one chunk past the 4096 array threshold.
  for (uint32_t i = 0; i < 5000; ++i) {
    r.Add(i * 3);
    ref.insert(i * 3);
  }
  EXPECT_EQ(r.Cardinality(), ref.size());
  EXPECT_EQ(r.ToVector(), ToSortedVector(ref));
  for (uint32_t probe = 0; probe < 15000; ++probe) {
    EXPECT_EQ(r.Contains(probe), ref.count(probe) > 0) << probe;
  }
}

TEST(RoaringTest, FromSortedMatchesIncremental) {
  Rng rng(3);
  std::set<uint32_t> ref;
  for (int i = 0; i < 20000; ++i) {
    ref.insert(static_cast<uint32_t>(rng.Uniform(1u << 20)));
  }
  Roaring bulk = Roaring::FromSorted(ToSortedVector(ref));
  Roaring inc;
  for (uint32_t v : ref) inc.Add(v);
  EXPECT_EQ(bulk, inc);
  EXPECT_EQ(bulk.Cardinality(), ref.size());
}

TEST(RoaringTest, ForEachAscending) {
  Rng rng(4);
  std::set<uint32_t> ref;
  for (int i = 0; i < 5000; ++i) {
    ref.insert(static_cast<uint32_t>(rng.Uniform(1u << 24)));
  }
  Roaring r = Roaring::FromSorted(ToSortedVector(ref));
  std::vector<uint32_t> got;
  r.ForEach([&](uint32_t v) { got.push_back(v); });
  EXPECT_EQ(got, ToSortedVector(ref));
}

TEST(RoaringTest, RunOptimizePreservesContent) {
  Roaring r;
  std::set<uint32_t> ref;
  // Dense runs compress well.
  for (uint32_t i = 1000; i < 9000; ++i) {
    r.Add(i);
    ref.insert(i);
  }
  uint64_t before = r.MemoryBytes();
  size_t converted = r.RunOptimize();
  EXPECT_GT(converted, 0u);
  EXPECT_LT(r.MemoryBytes(), before);
  EXPECT_EQ(r.ToVector(), ToSortedVector(ref));
  for (uint32_t probe = 0; probe < 12000; ++probe) {
    EXPECT_EQ(r.Contains(probe), ref.count(probe) > 0) << probe;
  }
}

TEST(RoaringTest, AddIntoRunContainerMergesNeighbours) {
  Roaring r;
  for (uint32_t i = 0; i < 6000; ++i) r.Add(i * 2);  // no runs yet
  for (uint32_t i = 10; i < 5000; ++i) r.Add(i);     // create dense region
  r.RunOptimize();
  std::set<uint32_t> ref;
  r.ForEach([&](uint32_t v) { ref.insert(v); });
  // Adds after run conversion must stay correct.
  for (uint32_t v : {9u, 5001u, 10001u, 60000u, 5u}) {
    r.Add(v);
    ref.insert(v);
    EXPECT_TRUE(r.Contains(v));
  }
  EXPECT_EQ(r.ToVector(), ToSortedVector(ref));
}

struct DensityParam {
  uint32_t universe;
  int inserts;
};

class RoaringDensityTest : public ::testing::TestWithParam<DensityParam> {};

TEST_P(RoaringDensityTest, RandomOpsMatchReferenceModel) {
  const auto& p = GetParam();
  Rng rng(42 + p.universe);
  Roaring r;
  std::set<uint32_t> ref;
  for (int i = 0; i < p.inserts; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(p.universe));
    r.Add(v);
    ref.insert(v);
    if (i % 997 == 0) {
      EXPECT_EQ(r.Cardinality(), ref.size());
    }
  }
  EXPECT_EQ(r.ToVector(), ToSortedVector(ref));
  // Membership spot checks.
  for (int i = 0; i < 2000; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(p.universe));
    EXPECT_EQ(r.Contains(v), ref.count(v) > 0);
  }
  // RunOptimize must be content-preserving at every density.
  r.RunOptimize();
  EXPECT_EQ(r.ToVector(), ToSortedVector(ref));
}

INSTANTIATE_TEST_SUITE_P(
    Densities, RoaringDensityTest,
    ::testing::Values(DensityParam{1u << 10, 3000},   // dense, runs
                      DensityParam{1u << 16, 20000},  // bitset regime
                      DensityParam{1u << 22, 20000},  // array regime
                      DensityParam{1u << 31, 5000}),  // sparse, many chunks
    [](const ::testing::TestParamInfo<DensityParam>& info) {
      return "u" + std::to_string(info.param.universe >> 10) + "k_n" +
             std::to_string(info.param.inserts);
    });

TEST(RoaringTest, AndCardinalityMatchesReference) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::set<uint32_t> ra, rb;
    uint32_t universe = trial % 2 == 0 ? 5000 : (1u << 24);
    for (int i = 0; i < 8000; ++i) {
      ra.insert(static_cast<uint32_t>(rng.Uniform(universe)));
      rb.insert(static_cast<uint32_t>(rng.Uniform(universe)));
    }
    Roaring a = Roaring::FromSorted(ToSortedVector(ra));
    Roaring b = Roaring::FromSorted(ToSortedVector(rb));
    if (trial % 3 == 0) {
      a.RunOptimize();  // exercise run-vs-other intersections
    }
    uint64_t expected = 0;
    for (uint32_t v : ra) expected += rb.count(v);
    EXPECT_EQ(a.AndCardinality(b), expected);
    EXPECT_EQ(b.AndCardinality(a), expected);
    EXPECT_EQ(a.OrCardinality(b), ra.size() + rb.size() - expected);
  }
}

TEST(RoaringTest, MemoryBytesSparseVsDense) {
  // A sparse bitmap must use far less memory than its universe size.
  Roaring sparse;
  for (uint32_t i = 0; i < 100; ++i) sparse.Add(i * 1000000);
  EXPECT_LT(sparse.MemoryBytes(), 100 * 16u);
}

}  // namespace
}  // namespace bitmap
}  // namespace les3
