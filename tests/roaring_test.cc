// Property tests for the Roaring bitmap against a std::set reference model,
// across container-kind transitions (array <-> bitset <-> run).

#include "bitmap/roaring.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bitmap/kernels.h"
#include "util/random.h"

namespace les3 {
namespace bitmap {
namespace {

std::vector<uint32_t> ToSortedVector(const std::set<uint32_t>& s) {
  return {s.begin(), s.end()};
}

TEST(RoaringTest, EmptyBitmap) {
  Roaring r;
  EXPECT_TRUE(r.Empty());
  EXPECT_EQ(r.Cardinality(), 0u);
  EXPECT_FALSE(r.Contains(0));
  EXPECT_EQ(r.ToVector().size(), 0u);
}

TEST(RoaringTest, AddAndContainsSmall) {
  Roaring r;
  r.Add(5);
  r.Add(100000);
  r.Add(5);  // duplicate
  EXPECT_EQ(r.Cardinality(), 2u);
  EXPECT_TRUE(r.Contains(5));
  EXPECT_TRUE(r.Contains(100000));
  EXPECT_FALSE(r.Contains(6));
}

TEST(RoaringTest, ArrayToBitsetTransition) {
  Roaring r;
  std::set<uint32_t> ref;
  // Push one chunk past the 4096 array threshold.
  for (uint32_t i = 0; i < 5000; ++i) {
    r.Add(i * 3);
    ref.insert(i * 3);
  }
  EXPECT_EQ(r.Cardinality(), ref.size());
  EXPECT_EQ(r.ToVector(), ToSortedVector(ref));
  for (uint32_t probe = 0; probe < 15000; ++probe) {
    EXPECT_EQ(r.Contains(probe), ref.count(probe) > 0) << probe;
  }
}

TEST(RoaringTest, FromSortedMatchesIncremental) {
  Rng rng(3);
  std::set<uint32_t> ref;
  for (int i = 0; i < 20000; ++i) {
    ref.insert(static_cast<uint32_t>(rng.Uniform(1u << 20)));
  }
  Roaring bulk = Roaring::FromSorted(ToSortedVector(ref));
  Roaring inc;
  for (uint32_t v : ref) inc.Add(v);
  EXPECT_EQ(bulk, inc);
  EXPECT_EQ(bulk.Cardinality(), ref.size());
}

TEST(RoaringTest, ForEachAscending) {
  Rng rng(4);
  std::set<uint32_t> ref;
  for (int i = 0; i < 5000; ++i) {
    ref.insert(static_cast<uint32_t>(rng.Uniform(1u << 24)));
  }
  Roaring r = Roaring::FromSorted(ToSortedVector(ref));
  std::vector<uint32_t> got;
  r.ForEach([&](uint32_t v) { got.push_back(v); });
  EXPECT_EQ(got, ToSortedVector(ref));
}

TEST(RoaringTest, RunOptimizePreservesContent) {
  Roaring r;
  std::set<uint32_t> ref;
  // Dense runs compress well.
  for (uint32_t i = 1000; i < 9000; ++i) {
    r.Add(i);
    ref.insert(i);
  }
  uint64_t before = r.MemoryBytes();
  size_t converted = r.RunOptimize();
  EXPECT_GT(converted, 0u);
  EXPECT_LT(r.MemoryBytes(), before);
  EXPECT_EQ(r.ToVector(), ToSortedVector(ref));
  for (uint32_t probe = 0; probe < 12000; ++probe) {
    EXPECT_EQ(r.Contains(probe), ref.count(probe) > 0) << probe;
  }
}

TEST(RoaringTest, AddIntoRunContainerMergesNeighbours) {
  Roaring r;
  for (uint32_t i = 0; i < 6000; ++i) r.Add(i * 2);  // no runs yet
  for (uint32_t i = 10; i < 5000; ++i) r.Add(i);     // create dense region
  r.RunOptimize();
  std::set<uint32_t> ref;
  r.ForEach([&](uint32_t v) { ref.insert(v); });
  // Adds after run conversion must stay correct.
  for (uint32_t v : {9u, 5001u, 10001u, 60000u, 5u}) {
    r.Add(v);
    ref.insert(v);
    EXPECT_TRUE(r.Contains(v));
  }
  EXPECT_EQ(r.ToVector(), ToSortedVector(ref));
}

struct DensityParam {
  uint32_t universe;
  int inserts;
};

class RoaringDensityTest : public ::testing::TestWithParam<DensityParam> {};

TEST_P(RoaringDensityTest, RandomOpsMatchReferenceModel) {
  const auto& p = GetParam();
  Rng rng(42 + p.universe);
  Roaring r;
  std::set<uint32_t> ref;
  for (int i = 0; i < p.inserts; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(p.universe));
    r.Add(v);
    ref.insert(v);
    if (i % 997 == 0) {
      EXPECT_EQ(r.Cardinality(), ref.size());
    }
  }
  EXPECT_EQ(r.ToVector(), ToSortedVector(ref));
  // Membership spot checks.
  for (int i = 0; i < 2000; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(p.universe));
    EXPECT_EQ(r.Contains(v), ref.count(v) > 0);
  }
  // RunOptimize must be content-preserving at every density.
  r.RunOptimize();
  EXPECT_EQ(r.ToVector(), ToSortedVector(ref));
}

INSTANTIATE_TEST_SUITE_P(
    Densities, RoaringDensityTest,
    ::testing::Values(DensityParam{1u << 10, 3000},   // dense, runs
                      DensityParam{1u << 16, 20000},  // bitset regime
                      DensityParam{1u << 22, 20000},  // array regime
                      DensityParam{1u << 31, 5000}),  // sparse, many chunks
    [](const ::testing::TestParamInfo<DensityParam>& info) {
      return "u" + std::to_string(info.param.universe >> 10) + "k_n" +
             std::to_string(info.param.inserts);
    });

TEST(RoaringTest, AndCardinalityMatchesReference) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::set<uint32_t> ra, rb;
    uint32_t universe = trial % 2 == 0 ? 5000 : (1u << 24);
    for (int i = 0; i < 8000; ++i) {
      ra.insert(static_cast<uint32_t>(rng.Uniform(universe)));
      rb.insert(static_cast<uint32_t>(rng.Uniform(universe)));
    }
    Roaring a = Roaring::FromSorted(ToSortedVector(ra));
    Roaring b = Roaring::FromSorted(ToSortedVector(rb));
    if (trial % 3 == 0) {
      a.RunOptimize();  // exercise run-vs-other intersections
    }
    uint64_t expected = 0;
    for (uint32_t v : ra) expected += rb.count(v);
    EXPECT_EQ(a.AndCardinality(b), expected);
    EXPECT_EQ(b.AndCardinality(a), expected);
    EXPECT_EQ(a.OrCardinality(b), ra.size() + rb.size() - expected);
  }
}

// --------------------------------------------------------------------------
// Container-boundary behavior. Container kinds are not directly
// observable; MemoryBytes pins them down exactly: an array costs
// 2 bytes/value, a bitset a flat 8192, a run 4 bytes/run (+2 bytes/chunk
// key either way).

TEST(RoaringTest, ArrayHoldsExactlyAtThreshold) {
  // 4096 values in one chunk: still an array, 2 bytes each.
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 4096; ++i) values.push_back(i * 3);
  Roaring r = Roaring::FromSorted(values);
  EXPECT_EQ(r.MemoryBytes(), 2u + 4096 * 2u);
  EXPECT_EQ(r.Cardinality(), 4096u);
}

TEST(RoaringTest, AddPromotesToBitsetPastThreshold) {
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 4096; ++i) values.push_back(i * 3);
  Roaring r = Roaring::FromSorted(values);
  r.Add(1);  // 4097th value: array must promote to bitset
  EXPECT_EQ(r.MemoryBytes(), 2u + 1024 * 8u);
  EXPECT_EQ(r.Cardinality(), 4097u);
  EXPECT_TRUE(r.Contains(1));
  EXPECT_TRUE(r.Contains(4095 * 3));
  // Re-adding an existing value at the boundary must NOT promote.
  Roaring s = Roaring::FromSorted(values);
  s.Add(0);
  EXPECT_EQ(s.MemoryBytes(), 2u + 4096 * 2u);
  EXPECT_EQ(s.Cardinality(), 4096u);
}

TEST(RoaringTest, FromSortedPicksBitsetPastThreshold) {
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 4097; ++i) values.push_back(i * 3);
  Roaring r = Roaring::FromSorted(values);
  EXPECT_EQ(r.MemoryBytes(), 2u + 1024 * 8u);
  EXPECT_EQ(r.ToVector(), values);
}

TEST(RoaringTest, RunOptimizeDemotesBitsetAndRoundTrips) {
  // A full interval of 5000 values builds as a bitset; RunOptimize must
  // demote it to a single run and preserve content exactly.
  std::vector<uint32_t> values;
  for (uint32_t i = 1000; i < 6000; ++i) values.push_back(i);
  Roaring r = Roaring::FromSorted(values);
  EXPECT_EQ(r.MemoryBytes(), 2u + 1024 * 8u);
  EXPECT_EQ(r.RunOptimize(), 1u);
  EXPECT_EQ(r.MemoryBytes(), 2u + 4u);  // one run
  EXPECT_EQ(r.ToVector(), values);
  // A second RunOptimize is a no-op on an already-run container.
  EXPECT_EQ(r.RunOptimize(), 0u);
  EXPECT_EQ(r.ToVector(), values);
}

TEST(RoaringTest, RunOptimizeKeepsIncompressibleContainers) {
  // Isolated even values have as many runs as values; run encoding would
  // be 2x the array, so the container must stay an array.
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 100; ++i) values.push_back(i * 2);
  Roaring r = Roaring::FromSorted(values);
  uint64_t before = r.MemoryBytes();
  EXPECT_EQ(r.RunOptimize(), 0u);
  EXPECT_EQ(r.MemoryBytes(), before);
}

// --------------------------------------------------------------------------
// AndCardinality and AccumulateInto across all container-kind pairs.

/// Builds one single-chunk bitmap of the requested kind (verified via
/// MemoryBytes) together with its reference contents.
struct KindFixture {
  Roaring bitmap;
  std::set<uint32_t> ref;
};

KindFixture MakeKind(int kind, uint64_t seed) {
  KindFixture f;
  Rng rng(seed);
  std::vector<uint32_t> values;
  switch (kind) {
    case 0:  // array: sparse random, below threshold
      for (int i = 0; i < 2000; ++i) {
        f.ref.insert(static_cast<uint32_t>(rng.Uniform(1u << 16)));
      }
      f.bitmap = Roaring::FromSorted({f.ref.begin(), f.ref.end()});
      break;
    case 1:  // bitset: dense random, above threshold, incompressible
      for (int i = 0; i < 20000; ++i) {
        f.ref.insert(static_cast<uint32_t>(rng.Uniform(1u << 16)));
      }
      f.bitmap = Roaring::FromSorted({f.ref.begin(), f.ref.end()});
      break;
    default:  // run: a few long intervals, then RunOptimize
      for (int block = 0; block < 4; ++block) {
        uint32_t start = static_cast<uint32_t>(rng.Uniform(50000));
        for (uint32_t i = 0; i < 3000; ++i) f.ref.insert(start + i);
      }
      f.bitmap = Roaring::FromSorted({f.ref.begin(), f.ref.end()});
      f.bitmap.RunOptimize();
      EXPECT_EQ(f.bitmap.MemoryBytes() % 4, 2u);  // 2-byte key + 4-byte runs
      break;
  }
  return f;
}

TEST(RoaringTest, AndCardinalityAcrossAllNineKindPairs) {
  for (int ka = 0; ka < 3; ++ka) {
    for (int kb = 0; kb < 3; ++kb) {
      KindFixture a = MakeKind(ka, 100 + ka);
      KindFixture b = MakeKind(kb, 200 + kb);
      uint64_t expected = 0;
      for (uint32_t v : a.ref) expected += b.ref.count(v);
      EXPECT_EQ(a.bitmap.AndCardinality(b.bitmap), expected)
          << "kinds " << ka << " x " << kb;
      EXPECT_EQ(b.bitmap.AndCardinality(a.bitmap), expected)
          << "kinds " << kb << " x " << ka;
    }
  }
}

TEST(RoaringTest, AccumulateIntoAcrossAllKinds) {
  // Fuse one column of each kind with distinct weights; the accumulator
  // must agree with a scalar reference regardless of which kernels fire.
  std::vector<uint32_t> expected(1u << 16, 0);
  std::vector<KindFixture> fixtures;
  for (int kind = 0; kind < 3; ++kind) {
    fixtures.push_back(MakeKind(kind, 300 + kind));
    for (uint32_t v : fixtures.back().ref) expected[v] += kind + 1;
  }
  std::vector<uint32_t> counts;
  GroupCountAccumulator acc(1u << 16, &counts);
  for (int kind = 0; kind < 3; ++kind) {
    fixtures[kind].bitmap.AccumulateInto(acc, kind + 1);
  }
  acc.Finish();
  EXPECT_EQ(counts, expected);
  // The direct-array kernel must agree as well.
  std::vector<uint32_t> direct(1u << 16, 0);
  for (int kind = 0; kind < 3; ++kind) {
    fixtures[kind].bitmap.AccumulateInto(direct.data(), direct.size(),
                                         kind + 1);
  }
  EXPECT_EQ(direct, expected);
}

TEST(RoaringTest, MemoryBytesSparseVsDense) {
  // A sparse bitmap must use far less memory than its universe size.
  Roaring sparse;
  for (uint32_t i = 0; i < 100; ++i) sparse.Add(i * 1000000);
  EXPECT_LT(sparse.MemoryBytes(), 100 * 16u);
}

}  // namespace
}  // namespace bitmap
}  // namespace les3
