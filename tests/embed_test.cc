// Tests for embed/: PTR (checked against the paper's Table 1 and Section
// 5.3 examples), Binary Encoding, Jacobi eigensolver, PCA, landmark MDS.

#include <gtest/gtest.h>

#include <cmath>

#include "datagen/generators.h"
#include "embed/binary_encoding.h"
#include "embed/eigen.h"
#include "embed/mds.h"
#include "embed/pca.h"
#include "embed/ptr.h"
#include "embed/representation.h"

namespace les3 {
namespace embed {
namespace {

std::vector<float> Embed(const SetRepresentation& rep, SetId id,
                         const SetRecord& s) {
  std::vector<float> out(rep.dim());
  rep.Embed(id, s, out.data());
  return out;
}

TEST(PtrTest, PaperTable1PathTable) {
  // T = {A,B,C,D} as ids 0..3; Table 1 rows.
  PtrRepresentation ptr(4);
  EXPECT_EQ(ptr.height(), 2u);
  EXPECT_EQ(ptr.dim(), 4u);
  auto row = [&](TokenId t) {
    return Embed(ptr, 0, SetRecord::FromTokens({t}));
  };
  EXPECT_EQ(row(0), (std::vector<float>{1, 1, 0, 0}));  // A
  EXPECT_EQ(row(1), (std::vector<float>{1, 0, 0, 1}));  // B
  EXPECT_EQ(row(2), (std::vector<float>{0, 1, 1, 0}));  // C
  EXPECT_EQ(row(3), (std::vector<float>{0, 0, 1, 1}));  // D
}

TEST(PtrTest, PaperSection53Examples) {
  PtrRepresentation ptr(4);
  // Rep({A,B,C}) = [2,2,1,1]; Rep({B,D}) = [1,0,1,2].
  EXPECT_EQ(Embed(ptr, 0, SetRecord::FromTokens({0, 1, 2})),
            (std::vector<float>{2, 2, 1, 1}));
  EXPECT_EQ(Embed(ptr, 0, SetRecord::FromTokens({1, 3})),
            (std::vector<float>{1, 0, 1, 2}));
}

TEST(PtrTest, MultisetMultiplicityVisible) {
  PtrRepresentation ptr(4);
  // Rep({A}) = [1,1,0,0], Rep({A,A}) = [2,2,0,0] (paper Section 5.3).
  EXPECT_EQ(Embed(ptr, 0, SetRecord::FromTokens({0})),
            (std::vector<float>{1, 1, 0, 0}));
  EXPECT_EQ(Embed(ptr, 0, SetRecord::FromTokens({0, 0})),
            (std::vector<float>{2, 2, 0, 0}));
}

TEST(PtrTest, HalfTableCollisionsFullTableSeparates) {
  // Paper: with only the first half, {A}, {B,C}, {A,D}, {B,C,D} all map to
  // [1,1]; the full table distinguishes them.
  PtrRepresentation full(4);
  PtrHalfRepresentation half(4);
  std::vector<SetRecord> sets = {
      SetRecord::FromTokens({0}), SetRecord::FromTokens({1, 2}),
      SetRecord::FromTokens({0, 3}), SetRecord::FromTokens({1, 2, 3})};
  std::vector<std::vector<float>> half_reps, full_reps;
  for (const auto& s : sets) {
    half_reps.push_back(Embed(half, 0, s));
    full_reps.push_back(Embed(full, 0, s));
  }
  for (size_t i = 1; i < sets.size(); ++i) {
    EXPECT_EQ(half_reps[i], half_reps[0]);  // all collide at [1,1]
    EXPECT_NE(full_reps[i], full_reps[0]);  // full PTR separates
  }
  EXPECT_EQ(half_reps[0], (std::vector<float>{1, 1}));
}

TEST(PtrTest, DistinctTokensDistinctPaths) {
  PtrRepresentation ptr(37);  // non-power-of-two universe
  std::set<std::vector<float>> seen;
  for (TokenId t = 0; t < 37; ++t) {
    seen.insert(Embed(ptr, 0, SetRecord::FromTokens({t})));
  }
  EXPECT_EQ(seen.size(), 37u);
}

TEST(PtrTest, SeparationFriendlyProperty) {
  // All sets containing token t lie on one side of an axis-aligned
  // hyperplane: the dimensions where t's path bit is 1 are >= 1 for any set
  // containing t (trivially), and more discriminatively the sum over t's
  // one-positions grows with membership. Verify the Figure 6 flavor: for a
  // random token, min over containing sets of Rep[d] (d = a one-position of
  // t) >= 1 while some non-containing sets sit at 0.
  PtrRepresentation ptr(16);
  TokenId t = 5;
  size_t one_dim = 0;
  while (ptr.PathBit(t, one_dim) == 0) ++one_dim;
  SetRecord with_t = SetRecord::FromTokens({t, 9});
  SetRecord without_t = SetRecord::FromTokens({8});
  // Token 8 = 1000b: path bits 0,1,1,1 -> dimension 0 stays 0 only if its
  // bit there is 0; pick dimension where t has 1.
  auto rep_with = Embed(ptr, 0, with_t);
  EXPECT_GE(rep_with[one_dim], 1.0f);
  (void)without_t;
}

TEST(BinaryEncodingTest, UniqueIdCodes) {
  BinaryEncoding enc(10);
  EXPECT_EQ(enc.dim(), 4u);  // ceil(log2 10)
  SetRecord dummy = SetRecord::FromTokens({1});
  std::set<std::vector<float>> seen;
  for (SetId id = 0; id < 10; ++id) {
    auto rep = Embed(enc, id, dummy);
    for (float v : rep) EXPECT_TRUE(v == 0.0f || v == 1.0f);
    seen.insert(rep);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(BinaryEncodingTest, IgnoresContent) {
  BinaryEncoding enc(8);
  EXPECT_EQ(Embed(enc, 3, SetRecord::FromTokens({1, 2})),
            Embed(enc, 3, SetRecord::FromTokens({5, 6, 7})));
}

TEST(EigenTest, DiagonalMatrix) {
  std::vector<double> a{3, 0, 0, 0, 1, 0, 0, 0, 2};
  auto eig = JacobiEigen(a, 3);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-9);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-9);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-9);
}

TEST(EigenTest, KnownSymmetricMatrix) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
  std::vector<double> a{2, 1, 1, 2};
  auto eig = JacobiEigen(a, 2);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-9);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-9);
  EXPECT_NEAR(std::fabs(eig.eigenvectors[0][0]), 1.0 / std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(std::fabs(eig.eigenvectors[0][1]), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(EigenTest, ReconstructsMatrix) {
  Rng rng(7);
  const size_t n = 6;
  std::vector<double> a(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      a[i * n + j] = a[j * n + i] = rng.NextGaussian();
    }
  }
  auto eig = JacobiEigen(a, n);
  // A = sum_k lambda_k v_k v_k^T.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double acc = 0;
      for (size_t k = 0; k < n; ++k) {
        acc += eig.eigenvalues[k] * eig.eigenvectors[k][i] *
               eig.eigenvectors[k][j];
      }
      EXPECT_NEAR(acc, a[i * n + j], 1e-6);
    }
  }
}

SetDatabase TwoClusterDb(uint32_t per_cluster, uint64_t seed) {
  // Cluster 0 uses tokens [0, 50), cluster 1 uses [50, 100).
  Rng rng(seed);
  SetDatabase db(100);
  for (uint32_t c = 0; c < 2; ++c) {
    for (uint32_t i = 0; i < per_cluster; ++i) {
      std::vector<TokenId> tokens;
      for (int j = 0; j < 8; ++j) {
        tokens.push_back(static_cast<TokenId>(50 * c + rng.Uniform(50)));
      }
      db.AddSet(SetRecord::FromTokens(std::move(tokens)));
    }
  }
  return db;
}

TEST(PcaTest, SeparatesTokenClusters) {
  SetDatabase db = TwoClusterDb(60, 3);
  PcaOptions opts;
  opts.dim = 2;
  PcaRepresentation pca(db, opts);
  EXPECT_EQ(pca.dim(), 2u);
  // The leading component must separate the two clusters: projections of
  // cluster 0 and cluster 1 have well-separated means on some axis.
  double mean0 = 0, mean1 = 0;
  std::vector<float> out(2);
  for (SetId i = 0; i < 60; ++i) {
    pca.Embed(i, db.set(i), out.data());
    mean0 += out[0];
  }
  for (SetId i = 60; i < 120; ++i) {
    pca.Embed(i, db.set(i), out.data());
    mean1 += out[0];
  }
  mean0 /= 60;
  mean1 /= 60;
  EXPECT_GT(std::fabs(mean0 - mean1), 1.0);
}

TEST(PcaTest, ComponentScalesDescending) {
  SetDatabase db = TwoClusterDb(60, 5);
  PcaOptions opts;
  opts.dim = 4;
  PcaRepresentation pca(db, opts);
  const auto& scales = pca.component_scales();
  ASSERT_EQ(scales.size(), 4u);
  EXPECT_GE(scales[0] + 1e-9, scales[1]);
}

TEST(MdsTest, PreservesDistanceOrdering) {
  SetDatabase db = TwoClusterDb(40, 9);
  MdsOptions opts;
  opts.dim = 4;
  opts.num_landmarks = 30;
  MdsRepresentation mds(db, opts);
  EXPECT_EQ(mds.dim(), 4u);
  // Intra-cluster embedded distances should on average be smaller than
  // cross-cluster ones.
  auto embed = [&](SetId id) {
    std::vector<float> out(mds.dim());
    mds.Embed(id, db.set(id), out.data());
    return out;
  };
  auto dist = [](const std::vector<float>& a, const std::vector<float>& b) {
    double d = 0;
    for (size_t i = 0; i < a.size(); ++i) d += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(d);
  };
  Rng rng(11);
  double intra = 0, cross = 0;
  int n = 0;
  for (int trial = 0; trial < 200; ++trial) {
    SetId a = static_cast<SetId>(rng.Uniform(40));
    SetId b = static_cast<SetId>(rng.Uniform(40));
    SetId c = static_cast<SetId>(40 + rng.Uniform(40));
    if (a == b) continue;
    intra += dist(embed(a), embed(b));
    cross += dist(embed(a), embed(c));
    ++n;
  }
  EXPECT_LT(intra / n, cross / n);
}

TEST(EmbedDatabaseTest, MatrixShapeAndSubset) {
  SetDatabase db = TwoClusterDb(10, 13);
  PtrRepresentation ptr(db.num_tokens());
  ml::Matrix all = EmbedDatabase(ptr, db);
  EXPECT_EQ(all.rows(), db.size());
  EXPECT_EQ(all.cols(), ptr.dim());
  std::vector<SetId> subset{3, 7};
  ml::Matrix some = EmbedDatabase(ptr, db, &subset);
  EXPECT_EQ(some.rows(), 2u);
  for (size_t c = 0; c < ptr.dim(); ++c) {
    EXPECT_EQ(some.At(0, c), all.At(3, c));
    EXPECT_EQ(some.At(1, c), all.At(7, c));
  }
}

}  // namespace
}  // namespace embed
}  // namespace les3
