// Cross-module edge cases: container boundaries, degenerate queries,
// insert stress, and option extremes.

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "baselines/invidx.h"
#include "bitmap/roaring.h"
#include "datagen/generators.h"
#include "embed/mds.h"
#include "embed/pca.h"
#include "graph/partition_fm.h"
#include "search/les3_index.h"
#include "storage/disk_search.h"
#include "util/random.h"

namespace les3 {
namespace {

TEST(RoaringEdgeTest, ChunkBoundaryValues) {
  bitmap::Roaring r;
  std::vector<uint32_t> values{0,          65535,      65536,
                               131071,     131072,     4294967295u,
                               4294901760u};
  for (uint32_t v : values) r.Add(v);
  for (uint32_t v : values) EXPECT_TRUE(r.Contains(v)) << v;
  EXPECT_FALSE(r.Contains(1));
  EXPECT_FALSE(r.Contains(65534));
  EXPECT_EQ(r.Cardinality(), values.size());
}

TEST(RoaringEdgeTest, FullChunkBecomesSingleRun) {
  std::vector<uint32_t> all(65536);
  for (uint32_t i = 0; i < 65536; ++i) all[i] = i;
  bitmap::Roaring r = bitmap::Roaring::FromSorted(all);
  EXPECT_EQ(r.Cardinality(), 65536u);
  size_t converted = r.RunOptimize();
  EXPECT_EQ(converted, 1u);
  // One run = 4 bytes vs 8 KiB bitset.
  EXPECT_LE(r.MemoryBytes(), 16u);
  EXPECT_TRUE(r.Contains(0));
  EXPECT_TRUE(r.Contains(65535));
  EXPECT_EQ(r.AndCardinality(r), 65536u);
}

TEST(FmPartitionEdgeTest, MorePartsThanVertices) {
  graph::Graph g = graph::Graph::FromEdges(3, {{0, 1}});
  auto part = graph::PartitionGraph(g, 3);
  std::set<uint32_t> used(part.begin(), part.end());
  EXPECT_EQ(used.size(), 3u);  // every vertex its own part
}

TEST(PcaEdgeTest, DimClampedToUniverse) {
  SetDatabase db(3);
  db.AddSet(SetRecord::FromTokens({0, 1}));
  db.AddSet(SetRecord::FromTokens({1, 2}));
  embed::PcaOptions opts;
  opts.dim = 16;  // larger than |T| = 3
  embed::PcaRepresentation pca(db, opts);
  EXPECT_LE(pca.dim(), 3u);
}

TEST(MdsEdgeTest, DimClampedToLandmarks) {
  datagen::UniformOptions gen;
  gen.num_sets = 20;
  gen.num_tokens = 50;
  SetDatabase db = datagen::GenerateUniform(gen);
  embed::MdsOptions opts;
  opts.dim = 64;
  opts.num_landmarks = 8;
  embed::MdsRepresentation mds(db, opts);
  EXPECT_LT(mds.dim(), 8u);
}

TEST(InvIdxEdgeTest, QueryOfOnlyUnknownTokens) {
  SetDatabase db(10);
  db.AddSet(SetRecord::FromTokens({1, 2}));
  db.AddSet(SetRecord::FromTokens({3}));
  baselines::InvIdx index(&db);
  SetRecord query = SetRecord::FromTokens({500, 501});
  auto range = index.Range(query, 0.5);
  EXPECT_TRUE(range.empty());
  auto knn = index.Knn(query, 1);
  ASSERT_EQ(knn.size(), 1u);
  EXPECT_DOUBLE_EQ(knn[0].second, 0.0);
}

TEST(InvIdxEdgeTest, ThresholdAboveOneReturnsNothing) {
  SetDatabase db(10);
  db.AddSet(SetRecord::FromTokens({1, 2}));
  baselines::InvIdx index(&db);
  auto hits = index.Range(SetRecord::FromTokens({1, 2}), 1.5);
  EXPECT_TRUE(hits.empty());
}

TEST(SearchEdgeTest, SingleGroupIndexDegeneratesToScan) {
  datagen::UniformOptions gen;
  gen.num_sets = 200;
  gen.num_tokens = 60;
  SetDatabase db = datagen::GenerateUniform(gen);
  std::vector<GroupId> assignment(db.size(), 0);
  search::Les3Index index(db, assignment, 1);
  baselines::BruteForce brute(&db);
  search::QueryStats stats;
  auto got = index.Knn(db.set(0), 5, &stats);
  auto expected = brute.Knn(db.set(0), 5);
  EXPECT_EQ(stats.candidates_verified, db.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].second, expected[i].second, 1e-12);
  }
}

TEST(SearchEdgeTest, ManyInsertsRemainExact) {
  datagen::ZipfOptions gen;
  gen.num_sets = 300;
  gen.num_tokens = 100;
  gen.seed = 3;
  SetDatabase db = datagen::GenerateZipf(gen);
  Rng rng(5);
  std::vector<GroupId> assignment(db.size());
  for (auto& g : assignment) g = static_cast<GroupId>(rng.Uniform(8));
  search::Les3Index index(db, assignment, 8);
  // Insert 300 more sets, a third with new tokens.
  for (int i = 0; i < 300; ++i) {
    std::vector<TokenId> tokens;
    size_t size = 1 + rng.Uniform(8);
    for (size_t t = 0; t < size; ++t) {
      TokenId tok = static_cast<TokenId>(rng.Uniform(100));
      if (i % 3 == 0) tok += 1000;
      tokens.push_back(tok);
    }
    index.Insert(SetRecord::FromTokens(std::move(tokens)));
  }
  baselines::BruteForce brute(&index.db());
  for (int q = 0; q < 20; ++q) {
    SetView query = index.db().set(static_cast<SetId>(rng.Uniform(index.db().size())));
    auto got = index.Knn(query, 7);
    auto expected = brute.Knn(query, 7);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].second, expected[i].second, 1e-12);
    }
  }
}

TEST(DiskEdgeTest, Les3SeeksBoundedByGroupsVisited) {
  datagen::ZipfOptions gen;
  gen.num_sets = 400;
  gen.num_tokens = 120;
  gen.seed = 7;
  SetDatabase db = datagen::GenerateZipf(gen);
  Rng rng(9);
  std::vector<GroupId> assignment(db.size());
  for (auto& g : assignment) g = static_cast<GroupId>(rng.Uniform(10));
  storage::DiskLes3 disk(&db, assignment, 10, SimilarityMeasure::kJaccard);
  auto r = disk.Knn(db.set(0), 5);
  EXPECT_LE(r.seeks, r.stats.groups_visited);
  EXPECT_GE(r.stats.groups_visited, 1u);
}

TEST(SimilarityEdgeTest, SingleTokenSets) {
  SetRecord a = SetRecord::FromTokens({5});
  SetRecord b = SetRecord::FromTokens({5});
  SetRecord c = SetRecord::FromTokens({6});
  for (auto m : {SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
                 SimilarityMeasure::kCosine}) {
    EXPECT_DOUBLE_EQ(Similarity(m, a, b), 1.0);
    EXPECT_DOUBLE_EQ(Similarity(m, a, c), 0.0);
  }
}

TEST(DatagenEdgeTest, ClusterFractionZeroMatchesLegacyBehavior) {
  datagen::ZipfOptions a, b;
  a.num_sets = b.num_sets = 100;
  a.num_tokens = b.num_tokens = 50;
  a.seed = b.seed = 11;
  a.cluster_fraction = 0.0;
  b.cluster_fraction = 0.0;
  SetDatabase da = GenerateZipf(a);
  SetDatabase dbb = GenerateZipf(b);
  for (SetId i = 0; i < da.size(); ++i) EXPECT_EQ(da.set(i), dbb.set(i));
}

TEST(DatagenEdgeTest, ClusteredDataHasHigherIntraClusterSimilarity) {
  datagen::ZipfOptions opts;
  opts.num_sets = 1000;
  opts.num_tokens = 5000;
  opts.avg_set_size = 8;
  opts.cluster_fraction = 0.8;
  opts.sets_per_cluster = 50;
  opts.seed = 13;
  SetDatabase db = GenerateZipf(opts);
  Rng rng(15);
  double intra = 0, cross = 0;
  for (int i = 0; i < 2000; ++i) {
    SetId a = static_cast<SetId>(rng.Uniform(1000));
    SetId same = (a / 50) * 50 + static_cast<SetId>(rng.Uniform(50));
    SetId other = static_cast<SetId>(rng.Uniform(1000));
    intra += Similarity(SimilarityMeasure::kJaccard, db.set(a), db.set(same));
    cross +=
        Similarity(SimilarityMeasure::kJaccard, db.set(a), db.set(other));
  }
  EXPECT_GT(intra, cross * 2);
}

}  // namespace
}  // namespace les3
