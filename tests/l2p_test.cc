// Tests for l2p/: cascade mechanics (level doubling, min-group-size stop,
// nesting) and partition quality on clustered data.

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "embed/ptr.h"
#include "l2p/cascade.h"
#include "l2p/l2p.h"
#include "partition/metrics.h"
#include "util/random.h"

namespace les3 {
namespace l2p {
namespace {

SetDatabase ClusteredDb(uint32_t clusters, uint32_t per_cluster,
                        uint64_t seed) {
  Rng rng(seed);
  SetDatabase db(clusters * 40);
  for (uint32_t c = 0; c < clusters; ++c) {
    for (uint32_t i = 0; i < per_cluster; ++i) {
      std::vector<TokenId> tokens;
      for (int j = 0; j < 10; ++j) {
        tokens.push_back(static_cast<TokenId>(40 * c + rng.Uniform(40)));
      }
      db.AddSet(SetRecord::FromTokens(std::move(tokens)));
    }
  }
  return db;
}

CascadeOptions FastOptions() {
  CascadeOptions opts;
  opts.init_groups = 4;
  opts.target_groups = 16;
  opts.min_group_size = 8;
  opts.pairs_per_model = 2000;
  opts.siamese.epochs = 3;
  opts.num_threads = 2;
  return opts;
}

TEST(CascadeTest, LevelsRefineAndReachTarget) {
  SetDatabase db = ClusteredDb(4, 80, 1);
  embed::PtrRepresentation ptr(db.num_tokens());
  CascadeResult result = TrainCascade(db, ptr, FastOptions());
  ASSERT_GE(result.levels.size(), 2u);
  EXPECT_EQ(result.levels.front().num_groups, 4u);
  EXPECT_EQ(result.levels.back().num_groups, 16u);
  // Group counts never shrink level to level.
  for (size_t l = 1; l < result.levels.size(); ++l) {
    EXPECT_GE(result.levels[l].num_groups,
              result.levels[l - 1].num_groups);
  }
  EXPECT_GT(result.models_trained, 0u);
  EXPECT_FALSE(result.first_model_losses.empty());
}

TEST(CascadeTest, LevelsNest) {
  // Every finer group must be contained in exactly one coarser group (the
  // property HTGM construction relies on).
  SetDatabase db = ClusteredDb(4, 60, 3);
  embed::PtrRepresentation ptr(db.num_tokens());
  CascadeResult result = TrainCascade(db, ptr, FastOptions());
  for (size_t l = 1; l < result.levels.size(); ++l) {
    const auto& coarse = result.levels[l - 1];
    const auto& fine = result.levels[l];
    std::vector<GroupId> parent(fine.num_groups, kInvalidGroup);
    for (SetId i = 0; i < db.size(); ++i) {
      GroupId c = coarse.assignment[i];
      GroupId f = fine.assignment[i];
      if (parent[f] == kInvalidGroup) {
        parent[f] = c;
      } else {
        EXPECT_EQ(parent[f], c) << "level " << l;
      }
    }
  }
}

TEST(CascadeTest, MinGroupSizeStopsSplitting) {
  SetDatabase db = ClusteredDb(1, 60, 5);
  CascadeOptions opts = FastOptions();
  opts.init_groups = 1;
  opts.use_sorted_init = false;
  opts.target_groups = 64;  // unreachable with min_group_size 30
  opts.min_group_size = 30;
  embed::PtrRepresentation ptr(db.num_tokens());
  CascadeResult result = TrainCascade(db, ptr, opts);
  // 60 sets with min size 30: level 1 has 2 groups of ~30, which cannot
  // split further; the cascade must stop well short of 64.
  EXPECT_LT(result.levels.back().num_groups, 8u);
  // And no group at any level ended smaller than 1.
  auto balance = partition::ComputeBalance(result.levels.back().assignment,
                                           result.levels.back().num_groups);
  EXPECT_GE(balance.min_size, 1u);
}

TEST(CascadeTest, SplitsAreReasonablyBalanced) {
  SetDatabase db = ClusteredDb(4, 100, 7);
  embed::PtrRepresentation ptr(db.num_tokens());
  CascadeResult result = TrainCascade(db, ptr, FastOptions());
  auto balance = partition::ComputeBalance(result.levels.back().assignment,
                                           result.levels.back().num_groups);
  // 400 sets into 16 groups: mean 25; no group should dominate.
  EXPECT_LE(balance.max_size, 150u);
  EXPECT_GE(balance.min_size, 1u);
}

TEST(L2PPartitionerTest, ImplementsPartitionerContract) {
  SetDatabase db = ClusteredDb(4, 60, 9);
  CascadeOptions opts = FastOptions();
  L2PPartitioner l2p(opts);
  auto result = l2p.Partition(db, 16);
  EXPECT_EQ(result.assignment.size(), db.size());
  EXPECT_EQ(result.num_groups, 16u);
  for (GroupId g : result.assignment) EXPECT_LT(g, result.num_groups);
  EXPECT_EQ(l2p.name(), "L2P");
  EXPECT_GE(l2p.last_cascade().levels.size(), 2u);
}

TEST(L2PPartitionerTest, BeatsRandomGpoOnClusteredData) {
  SetDatabase db = ClusteredDb(8, 50, 11);
  CascadeOptions opts = FastOptions();
  opts.init_groups = 8;
  opts.target_groups = 8;
  L2PPartitioner l2p(opts);
  auto result = l2p.Partition(db, 8);
  double achieved = partition::ExactGpo(db, result.assignment,
                                        result.num_groups,
                                        SimilarityMeasure::kJaccard);
  Rng rng(13);
  std::vector<GroupId> random(db.size());
  for (auto& g : random) g = static_cast<GroupId>(rng.Uniform(8));
  double baseline =
      partition::ExactGpo(db, random, 8, SimilarityMeasure::kJaccard);
  EXPECT_LT(achieved, baseline);
}

TEST(CascadeTest, DeterministicPerSeed) {
  SetDatabase db = ClusteredDb(2, 60, 15);
  embed::PtrRepresentation ptr(db.num_tokens());
  CascadeOptions opts = FastOptions();
  opts.num_threads = 1;  // single-threaded for fully ordered execution
  CascadeResult a = TrainCascade(db, ptr, opts);
  CascadeResult b = TrainCascade(db, ptr, opts);
  EXPECT_EQ(a.levels.back().assignment, b.levels.back().assignment);
}

}  // namespace
}  // namespace l2p
}  // namespace les3
