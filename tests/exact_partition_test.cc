// Tests for the exhaustive GPO minimizer, used to empirically validate the
// Section 4 theory: optimal partitions are balanced under the uniform token
// distribution (Theorem 4.2) and the heuristics land near the optimum on
// tiny instances.

#include "partition/exact_small.h"

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "partition/metrics.h"
#include "partition/par_a.h"
#include "partition/par_c.h"
#include "util/random.h"

namespace les3 {
namespace partition {
namespace {

TEST(ExactPartitionTest, TwoObviousClusters) {
  // Two tight clusters of 3 identical-ish sets: the optimum must separate
  // them with GPO 0.
  SetDatabase db(20);
  for (int i = 0; i < 3; ++i) db.AddSet(SetRecord::FromTokens({1, 2, 3}));
  for (int i = 0; i < 3; ++i) db.AddSet(SetRecord::FromTokens({7, 8, 9}));
  ExactPartition best =
      MinimizeGpoExact(db, 2, SimilarityMeasure::kJaccard);
  EXPECT_DOUBLE_EQ(best.gpo, 0.0);
  EXPECT_EQ(best.assignment[0], best.assignment[1]);
  EXPECT_EQ(best.assignment[1], best.assignment[2]);
  EXPECT_EQ(best.assignment[3], best.assignment[4]);
  EXPECT_NE(best.assignment[0], best.assignment[3]);
}

TEST(ExactPartitionTest, MatchesBruteGpoDefinition) {
  datagen::UniformOptions opts;
  opts.num_sets = 8;
  opts.num_tokens = 12;
  opts.avg_set_size = 4;
  opts.seed = 3;
  SetDatabase db = datagen::GenerateUniform(opts);
  ExactPartition best =
      MinimizeGpoExact(db, 3, SimilarityMeasure::kJaccard);
  EXPECT_NEAR(best.gpo,
              ExactGpo(db, best.assignment, best.num_groups,
                       SimilarityMeasure::kJaccard),
              1e-9);
}

TEST(ExactPartitionTest, Theorem42OptimalIsBalancedUnderUniformTokens) {
  // Under (approximately) uniform token distribution, the GPO-optimal
  // 2-partition should be balanced (group sizes differ by at most ~2 at
  // this tiny scale). Checked over several random draws.
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    datagen::UniformOptions opts;
    opts.num_sets = 10;
    opts.num_tokens = 40;
    opts.avg_set_size = 6;
    opts.seed = seed;
    SetDatabase db = datagen::GenerateUniform(opts);
    ExactPartition best =
        MinimizeGpoExact(db, 2, SimilarityMeasure::kJaccard);
    BalanceStats balance = ComputeBalance(best.assignment, 2);
    EXPECT_LE(balance.max_size - balance.min_size, 2u) << "seed " << seed;
  }
}

TEST(ExactPartitionTest, HeuristicsWithinFactorOfOptimum) {
  // PAR-C on a tiny clustered instance should come close to the optimum
  // (within 2x GPO) — and never beat it, which would indicate a bug in one
  // of the two.
  Rng rng(7);
  SetDatabase db(30);
  for (uint32_t c = 0; c < 2; ++c) {
    for (int i = 0; i < 6; ++i) {
      std::vector<TokenId> tokens;
      for (int j = 0; j < 5; ++j) {
        tokens.push_back(static_cast<TokenId>(15 * c + rng.Uniform(10)));
      }
      db.AddSet(SetRecord::FromTokens(std::move(tokens)));
    }
  }
  ExactPartition best =
      MinimizeGpoExact(db, 2, SimilarityMeasure::kJaccard);
  ParCOptions copts;
  copts.sample_size = 12;  // exact-ish estimates at this scale
  copts.max_iterations = 20;
  ParC par_c(copts);
  auto result = par_c.Partition(db, 2);
  double heuristic_gpo = ExactGpo(db, result.assignment, result.num_groups,
                                  SimilarityMeasure::kJaccard);
  EXPECT_GE(heuristic_gpo + 1e-9, best.gpo);
  EXPECT_LE(heuristic_gpo, best.gpo * 2.0 + 1e-9);
}

TEST(ExactPartitionTest, SingleGroupGpoIsTotalDistance) {
  SetDatabase db(10);
  db.AddSet(SetRecord::FromTokens({1}));
  db.AddSet(SetRecord::FromTokens({2}));
  db.AddSet(SetRecord::FromTokens({3}));
  ExactPartition best =
      MinimizeGpoExact(db, 1, SimilarityMeasure::kJaccard);
  // All pairs disjoint: GPO = 6 ordered pairs * distance 1.
  EXPECT_DOUBLE_EQ(best.gpo, 6.0);
}

TEST(ExactPartitionTest, NGroupsEqualsNSetsGivesZero) {
  SetDatabase db(10);
  for (int i = 0; i < 5; ++i) {
    db.AddSet(SetRecord::FromTokens({static_cast<TokenId>(i)}));
  }
  ExactPartition best =
      MinimizeGpoExact(db, 5, SimilarityMeasure::kJaccard);
  EXPECT_DOUBLE_EQ(best.gpo, 0.0);
}

}  // namespace
}  // namespace partition
}  // namespace les3
