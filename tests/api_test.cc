// Tests for the unified SearchEngine API: every backend built by
// EngineBuilder must return identical exact results for the same queries
// (the paper's methods differ in cost, never in answers), batch queries
// must equal their sequential counterparts, and the builder must reject
// bad configurations.

#include "api/engine_builder.h"

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <memory>

#include "api/engine_options.h"
#include "api/search_engine.h"
#include "datagen/generators.h"

namespace les3 {
namespace api {
namespace {

std::shared_ptr<SetDatabase> MakeDb(uint64_t seed, uint32_t num_sets = 400,
                                    uint32_t num_tokens = 120) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = num_tokens;
  opts.avg_set_size = 8;
  opts.zipf_exponent = 0.8;
  opts.seed = seed;
  return std::make_shared<SetDatabase>(datagen::GenerateZipf(opts));
}

/// Cheap construction knobs so all eight backends build in milliseconds.
EngineOptions FastOptions() {
  EngineOptions options;
  options.num_groups = 24;
  options.cascade.init_groups = 16;
  options.cascade.min_group_size = 10;
  options.cascade.pairs_per_model = 2000;
  options.cascade.seed = 7;
  return options;
}

std::unique_ptr<SearchEngine> MustBuild(std::shared_ptr<SetDatabase> db,
                                        const std::string& backend,
                                        EngineOptions options) {
  auto engine = EngineBuilder::Build(std::move(db), backend, options);
  EXPECT_TRUE(engine.ok()) << backend << ": " << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

/// Hits must agree exactly: same ids, same similarities, same order.
void ExpectSameHits(const std::vector<Hit>& expected,
                    const std::vector<Hit>& actual,
                    const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first) << label << " rank " << i;
    EXPECT_DOUBLE_EQ(expected[i].second, actual[i].second)
        << label << " rank " << i;
  }
}

/// kNN ties at the boundary may legitimately resolve to different ids;
/// the similarity sequence is still uniquely determined.
void ExpectSameSimilarities(const std::vector<Hit>& expected,
                            const std::vector<Hit>& actual,
                            const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(expected[i].second, actual[i].second)
        << label << " rank " << i;
  }
}

class ApiParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeDb(11);
    for (const auto& name : BackendNames()) {
      engines_[name] = MustBuild(db_, name, FastOptions());
    }
  }

  std::shared_ptr<SetDatabase> db_;
  std::map<std::string, std::unique_ptr<SearchEngine>> engines_;
};

TEST_F(ApiParityTest, AllBackendsConstructibleByName) {
  ASSERT_EQ(BackendNames().size(), 9u);
  for (const auto& name : BackendNames()) {
    ASSERT_NE(engines_[name], nullptr) << name;
    EXPECT_EQ(engines_[name]->Describe().rfind(name + "(", 0), 0u)
        << engines_[name]->Describe();
    EXPECT_EQ(&engines_[name]->db(), db_.get()) << name << " copied the db";
  }
}

TEST_F(ApiParityTest, RangeResultsIdenticalAcrossBackends) {
  const auto& reference = engines_["brute_force"];
  for (SetId qid : {0u, 7u, 50u, 123u, 250u, 399u}) {
    SetView query = db_->set(qid);
    for (double delta : {0.5, 0.8}) {
      auto expected = reference->Range(query, delta);
      EXPECT_GT(expected.hits.size(), 0u);  // the query set itself
      for (const auto& [name, engine] : engines_) {
        auto actual = engine->Range(query, delta);
        ExpectSameHits(expected.hits, actual.hits,
                       name + " range q=" + std::to_string(qid) +
                           " delta=" + std::to_string(delta));
      }
    }
  }
}

TEST_F(ApiParityTest, KnnResultsIdenticalAcrossBackends) {
  const auto& reference = engines_["brute_force"];
  for (SetId qid : {0u, 7u, 50u, 123u, 250u, 399u}) {
    SetView query = db_->set(qid);
    for (size_t k : {1u, 10u}) {
      auto expected = reference->Knn(query, k);
      ASSERT_EQ(expected.hits.size(), k);
      for (const auto& [name, engine] : engines_) {
        auto actual = engine->Knn(query, k);
        ExpectSameSimilarities(expected.hits, actual.hits,
                               name + " knn q=" + std::to_string(qid) +
                                   " k=" + std::to_string(k));
      }
    }
  }
}

TEST_F(ApiParityTest, StatsAndIoAccountingFilled) {
  SetView query = db_->set(3);
  for (const auto& [name, engine] : engines_) {
    auto result = engine->Knn(query, 5);
    EXPECT_GT(result.stats.candidates_verified, 0u) << name;
    EXPECT_EQ(result.stats.results, result.hits.size()) << name;
    EXPECT_GT(result.stats.pruning_efficiency, 0.0) << name;
    auto parsed = ParseBackend(name);
    ASSERT_TRUE(parsed.ok());
    if (IsDiskBackend(parsed.value())) {
      ASSERT_TRUE(result.io.has_value()) << name;
      EXPECT_GT(result.io->io_ms, 0.0) << name;
      EXPECT_GT(result.io->pages, 0u) << name;
      EXPECT_GE(result.TotalMs(), result.io->io_ms) << name;
    } else {
      EXPECT_FALSE(result.io.has_value()) << name;
    }
  }
}

TEST_F(ApiParityTest, IndexBytesReflectBackend) {
  EXPECT_GT(engines_["les3"]->IndexBytes(), 0u);
  EXPECT_GT(engines_["invidx"]->IndexBytes(), 0u);
  EXPECT_GT(engines_["dualtrans"]->IndexBytes(), 0u);
  EXPECT_EQ(engines_["brute_force"]->IndexBytes(), 0u);
  EXPECT_EQ(engines_["disk_brute_force"]->IndexBytes(), 0u);
}

TEST(ApiBatchTest, KnnBatchMatchesSequentialKnn) {
  auto db = MakeDb(23);
  EngineOptions options = FastOptions();
  options.num_threads = 4;
  for (const std::string& name : {"les3", "brute_force", "disk_invidx"}) {
    auto engine = MustBuild(db, name, options);
    std::vector<SetRecord> queries;
    for (SetId qid = 0; qid < 32; ++qid) queries.emplace_back(db->set(qid * 7));
    auto batch = engine->KnnBatch(queries, 10);
    ASSERT_EQ(batch.size(), queries.size()) << name;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto sequential = engine->Knn(queries[i], 10);
      ExpectSameHits(sequential.hits, batch[i].hits,
                     name + " batch query " + std::to_string(i));
    }
  }
}

TEST(ApiBatchTest, RangeBatchMatchesSequentialRange) {
  auto db = MakeDb(29);
  EngineOptions options = FastOptions();
  options.num_threads = 4;
  auto engine = MustBuild(db, "les3", options);
  std::vector<SetRecord> queries;
  for (SetId qid = 0; qid < 24; ++qid) queries.emplace_back(db->set(qid * 11));
  auto batch = engine->RangeBatch(queries, 0.6);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto sequential = engine->Range(queries[i], 0.6);
    ExpectSameHits(sequential.hits, batch[i].hits,
                   "batch query " + std::to_string(i));
  }
}

TEST(ApiBatchTest, EmptyBatchIsEmpty) {
  auto engine = MustBuild(MakeDb(31), "brute_force", {});
  EXPECT_TRUE(engine->KnnBatch({}, 5).empty());
  EXPECT_TRUE(engine->RangeBatch({}, 0.5).empty());
}

TEST(ApiValidationTest, NonFiniteRangeDeltaIsInvalidArgument) {
  // The validating Range/RangeBatch boundary: NaN and ±inf must be
  // rejected before any backend (and its threshold arithmetic) runs, on
  // every backend, including the sharded engine's overridden batch path.
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  auto db = MakeDb(47);
  std::vector<SetRecord> queries = {SetRecord(db->set(0)),
                                    SetRecord(db->set(1))};
  for (const std::string& name : {"les3", "brute_force", "sharded_les3",
                                  "disk_les3"}) {
    auto engine = MustBuild(db, name, FastOptions());
    for (double bad : {kNan, kInf, -kInf}) {
      QueryResult single = engine->Range(db->set(0), bad);
      EXPECT_EQ(single.status.code(), StatusCode::kInvalidArgument)
          << name << " delta=" << bad;
      EXPECT_TRUE(single.hits.empty()) << name;
      auto batch = engine->RangeBatch(queries, bad);
      ASSERT_EQ(batch.size(), queries.size()) << name;
      for (const auto& r : batch) {
        EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument) << name;
        EXPECT_TRUE(r.hits.empty()) << name;
      }
    }
    // A plain finite query reports OK through the same field.
    EXPECT_TRUE(engine->Range(db->set(0), 0.5).status.ok()) << name;
  }
}

TEST(ApiInsertTest, InsertableBackendsAbsorbSets) {
  for (const std::string& name : {"les3", "brute_force", "sharded_les3"}) {
    auto engine = MustBuild(MakeDb(37), name, FastOptions());
    size_t before = engine->db().size();
    SetRecord novel = SetRecord::FromTokens({1, 2, 3, 500, 501});
    auto id = engine->Insert(novel);
    ASSERT_TRUE(id.ok()) << name << ": " << id.status().ToString();
    EXPECT_EQ(id.value(), before);
    auto top = engine->Knn(novel, 1);
    ASSERT_EQ(top.hits.size(), 1u) << name;
    EXPECT_EQ(top.hits[0].first, id.value()) << name;
    EXPECT_DOUBLE_EQ(top.hits[0].second, 1.0) << name;
  }
}

TEST(ApiInsertTest, StaticBackendsRejectInserts) {
  for (const std::string& name :
       {"invidx", "dualtrans", "disk_les3", "disk_brute_force", "disk_invidx",
        "disk_dualtrans"}) {
    auto engine = MustBuild(MakeDb(41), name, FastOptions());
    auto id = engine->Insert(SetRecord::FromTokens({1, 2, 3}));
    ASSERT_FALSE(id.ok()) << name;
    EXPECT_EQ(id.status().code(), StatusCode::kNotSupported) << name;
  }
}

TEST(EngineBuilderTest, RejectsUnknownBackend) {
  auto engine = EngineBuilder::Build(MakeDb(43), "les4", {});
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, UnknownBackendStatusListsEveryValidName) {
  // The error is the documentation: a caller who typos a backend gets the
  // full menu, not a trip to the source.
  auto engine = EngineBuilder::Build(MakeDb(43), "les4", {});
  ASSERT_FALSE(engine.ok());
  const std::string& message = engine.status().message();
  for (const auto& name : BackendNames()) {
    EXPECT_NE(message.find(name), std::string::npos)
        << "\"" << name << "\" missing from: " << message;
  }
}

TEST(EngineBuilderTest, RejectsEmptyDatabase) {
  auto engine = EngineBuilder::Build(SetDatabase(), EngineOptions{});
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, RejectsNullDatabase) {
  auto engine =
      EngineBuilder::Build(std::shared_ptr<SetDatabase>(), EngineOptions{});
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineBuilderTest, RejectsBadKnobs) {
  EngineOptions options;
  options.backend = Backend::kInvIdx;
  options.invidx.knn_delta_step = 0.0;
  EXPECT_FALSE(EngineBuilder::Build(MakeDb(47), options).ok());

  options = EngineOptions();
  options.backend = Backend::kDualTrans;
  options.dualtrans.dims = 0;
  EXPECT_FALSE(EngineBuilder::Build(MakeDb(47), options).ok());

  // Knobs irrelevant to the chosen backend are ignored, as documented.
  options.backend = Backend::kBruteForce;
  options.invidx.knn_delta_step = 0.0;
  EXPECT_TRUE(EngineBuilder::Build(MakeDb(47), options).ok());
}

TEST(EngineBuilderTest, BackendNameRoundTrip) {
  for (const auto& name : BackendNames()) {
    auto parsed = ParseBackend(name);
    ASSERT_TRUE(parsed.ok()) << name;
    EXPECT_EQ(ToString(parsed.value()), name);
  }
}

}  // namespace
}  // namespace api
}  // namespace les3
