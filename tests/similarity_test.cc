// Tests for core/similarity.h: exact values, and the Theorem 3.1 upper
// bound property checked as a randomized invariant across all measures.

#include "core/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/random.h"

namespace les3 {
namespace {

TEST(SimilarityTest, JaccardKnownValues) {
  SetRecord a = SetRecord::FromTokens({1, 2, 3});
  SetRecord b = SetRecord::FromTokens({2, 3, 4, 5});
  // overlap 2, union 5.
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kJaccard, a, b), 0.4);
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kJaccard, a, a), 1.0);
}

TEST(SimilarityTest, DiceKnownValues) {
  SetRecord a = SetRecord::FromTokens({1, 2, 3});
  SetRecord b = SetRecord::FromTokens({2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kDice, a, b), 4.0 / 7.0);
}

TEST(SimilarityTest, CosineKnownValues) {
  SetRecord a = SetRecord::FromTokens({1, 2, 3});
  SetRecord b = SetRecord::FromTokens({2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kCosine, a, b),
                   2.0 / std::sqrt(12.0));
}

TEST(SimilarityTest, EmptySetConventions) {
  SetRecord e1, e2;
  SetRecord a = SetRecord::FromTokens({1});
  for (auto m : {SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
                 SimilarityMeasure::kCosine}) {
    EXPECT_DOUBLE_EQ(Similarity(m, e1, e2), 1.0) << ToString(m);
    EXPECT_DOUBLE_EQ(Similarity(m, e1, a), 0.0) << ToString(m);
  }
}

TEST(SimilarityTest, MultisetJaccard) {
  // {A,A} vs {A}: overlap 1, |A∪B| = 2 + 1 - 1 = 2.
  SetRecord aa = SetRecord::FromTokens({7, 7});
  SetRecord a = SetRecord::FromTokens({7});
  EXPECT_DOUBLE_EQ(Similarity(SimilarityMeasure::kJaccard, aa, a), 0.5);
}

TEST(SimilarityTest, PaperSection32Example) {
  // Q = {t1,t2,t3}, Q∩S = {t1,t2}: Jaccard bound 2/3, cosine bound
  // 2/sqrt(3*2) ≈ 0.816 (paper Section 3.2).
  EXPECT_DOUBLE_EQ(GroupUpperBound(SimilarityMeasure::kJaccard, 2, 3),
                   2.0 / 3.0);
  EXPECT_NEAR(GroupUpperBound(SimilarityMeasure::kCosine, 2, 3),
              2.0 / std::sqrt(6.0), 1e-12);
}

class MeasureTest : public ::testing::TestWithParam<SimilarityMeasure> {};

TEST_P(MeasureTest, SymmetricAndBounded) {
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    auto make = [&] {
      std::vector<TokenId> t;
      size_t n = 1 + rng.Uniform(12);
      for (size_t i = 0; i < n; ++i) {
        t.push_back(static_cast<TokenId>(rng.Uniform(30)));
      }
      return SetRecord::FromTokens(std::move(t));
    };
    SetRecord a = make(), b = make();
    double sab = Similarity(GetParam(), a, b);
    double sba = Similarity(GetParam(), b, a);
    EXPECT_DOUBLE_EQ(sab, sba);
    EXPECT_GE(sab, 0.0);
    EXPECT_LE(sab, 1.0);
    EXPECT_DOUBLE_EQ(Similarity(GetParam(), a, a), 1.0);
  }
}

TEST_P(MeasureTest, GroupUpperBoundDominatesMemberSimilarity) {
  // The Theorem 3.1 invariant: for random Q and random groups, the bound
  // computed from the matched-token count dominates every member's true
  // similarity (multisets included).
  Rng rng(22);
  const uint32_t universe = 40;
  for (int trial = 0; trial < 300; ++trial) {
    auto make = [&] {
      std::vector<TokenId> t;
      size_t n = 1 + rng.Uniform(10);
      for (size_t i = 0; i < n; ++i) {
        t.push_back(static_cast<TokenId>(rng.Uniform(universe)));
      }
      return SetRecord::FromTokens(std::move(t));
    };
    SetRecord q = make();
    std::vector<SetRecord> group;
    for (int i = 0; i < 6; ++i) group.push_back(make());
    // matched = Σ_{t in Q} [some member contains t], multiplicity counted.
    size_t matched = 0;
    for (TokenId t : q.tokens()) {
      bool present = false;
      for (const auto& s : group) present = present || s.Contains(t);
      if (present) ++matched;
    }
    double ub = GroupUpperBound(GetParam(), matched, q.size());
    for (const auto& s : group) {
      EXPECT_GE(ub + 1e-12, Similarity(GetParam(), q, s))
          << ToString(GetParam());
    }
  }
}

TEST_P(MeasureTest, GroupUpperBoundMonotoneInMatched) {
  for (size_t q = 1; q <= 20; ++q) {
    for (size_t r = 1; r <= q; ++r) {
      EXPECT_GE(GroupUpperBound(GetParam(), r, q),
                GroupUpperBound(GetParam(), r - 1, q));
    }
    EXPECT_DOUBLE_EQ(GroupUpperBound(GetParam(), q, q), 1.0);
    EXPECT_DOUBLE_EQ(GroupUpperBound(GetParam(), 0, q), 0.0);
  }
}

TEST_P(MeasureTest, MinOverlapForThresholdIsLeastSufficient) {
  for (size_t q : {1u, 3u, 7u, 20u}) {
    for (double delta : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      size_t r = MinOverlapForThreshold(GetParam(), q, delta);
      ASSERT_LE(r, q + 1);
      if (r <= q) {
        EXPECT_GE(GroupUpperBound(GetParam(), r, q), delta);
      }
      if (r > 0 && r <= q) {
        EXPECT_LT(GroupUpperBound(GetParam(), r - 1, q), delta);
      }
    }
    EXPECT_EQ(MinOverlapForThreshold(GetParam(), q, 0.0), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, MeasureTest,
                         ::testing::Values(SimilarityMeasure::kJaccard,
                                           SimilarityMeasure::kDice,
                                           SimilarityMeasure::kCosine),
                         [](const auto& info) { return ToString(info.param); });

}  // namespace
}  // namespace les3
