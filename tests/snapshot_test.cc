// Snapshot subsystem tests (persist/): byte-level primitives, exact
// save→load round-trips through the api layer, and the corruption
// contract — truncations, bit flips, bad headers, oversized chunk
// lengths, and semantically invalid payloads must all come back as
// Status errors, never a crash or an out-of-bounds access (this file
// also runs in the ASan+UBSan CI lane, which would catch any stray
// read the Status paths miss).

#include "persist/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/engine_builder.h"
#include "datagen/generators.h"
#include "persist/bytes.h"
#include "tgm/tgm.h"
#include "util/random.h"

namespace les3 {
namespace persist {
namespace {

// ---------------------------------------------------------------------------
// Shared fixtures.

SetDatabase MakeDb(uint32_t num_sets, uint64_t seed) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = 200;
  opts.avg_set_size = 8;
  opts.zipf_exponent = 0.9;
  opts.seed = seed;
  return datagen::GenerateZipf(opts);
}

api::EngineOptions FastOptions(SimilarityMeasure measure,
                               bitmap::BitmapBackend bitmap_backend) {
  api::EngineOptions options;
  options.measure = measure;
  options.num_groups = 16;
  options.cascade.init_groups = 8;  // < num_groups: models do get trained
  options.cascade.min_group_size = 8;
  options.cascade.pairs_per_model = 800;
  options.cascade.seed = 7;
  options.bitmap_backend = bitmap_backend;
  return options;
}

std::vector<SetRecord> MakeQueries(const SetDatabase& db, uint64_t seed) {
  Rng rng(seed);
  std::vector<SetRecord> queries;
  for (SetId id : datagen::SampleQueryIds(db, 5, seed)) {
    queries.emplace_back(db.set(id));
  }
  for (int i = 0; i < 3; ++i) {
    std::vector<TokenId> tokens;
    size_t n = 1 + rng.Uniform(10);
    for (size_t j = 0; j < n; ++j) {
      tokens.push_back(static_cast<TokenId>(rng.Uniform(db.num_tokens() + 10)));
    }
    queries.push_back(SetRecord::FromTokens(std::move(tokens)));
  }
  queries.push_back(SetRecord::FromTokens({}));
  return queries;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "les3_" + name;
}

void ExpectExactHits(const std::vector<Hit>& expected,
                     const std::vector<Hit>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first) << label << " rank " << i;
    EXPECT_DOUBLE_EQ(expected[i].second, actual[i].second)
        << label << " rank " << i;
  }
}

void ExpectEnginesAgree(const api::SearchEngine& original,
                        const api::SearchEngine& reloaded,
                        const std::vector<SetRecord>& queries,
                        const std::string& label) {
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    for (size_t k : {1u, 5u, 100u}) {
      ExpectExactHits(original.Knn(queries[qi], k).hits,
                      reloaded.Knn(queries[qi], k).hits,
                      label + "/knn k=" + std::to_string(k) +
                          " q=" + std::to_string(qi));
    }
    for (double delta : {0.3, 0.6, 0.9}) {
      ExpectExactHits(original.Range(queries[qi], delta).hits,
                      reloaded.Range(queries[qi], delta).hits,
                      label + "/range d=" + std::to_string(delta) +
                          " q=" + std::to_string(qi));
    }
  }
}

// ---------------------------------------------------------------------------
// Byte primitives.

TEST(BytesTest, Crc32MatchesKnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(BytesTest, RoundTripAndBoundsChecks) {
  ByteWriter w;
  w.WriteU8(7);
  w.WriteU16(0xBEEF);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteF32(1.5f);
  w.WriteString("hello");

  ByteReader r(w.data());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  float f;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadF32(&f).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(f, 1.5f);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
  // Reads past the end fail without advancing or touching output.
  EXPECT_FALSE(r.ReadU8(&u8).ok());
  EXPECT_FALSE(r.ReadU64(&u64).ok());

  // Little-endian layout is explicit, not host-dependent.
  EXPECT_EQ(w.data()[1], 0xEF);
  EXPECT_EQ(w.data()[2], 0xBE);
}

TEST(BytesTest, StringLengthIsCapped) {
  ByteWriter w;
  w.WriteU32(1u << 30);  // claimed length far beyond the buffer
  ByteReader r(w.data());
  std::string s;
  EXPECT_FALSE(r.ReadString(&s).ok());
}

// ---------------------------------------------------------------------------
// Round trips through the api layer.

class SnapshotRoundTripTest
    : public ::testing::TestWithParam<bitmap::BitmapBackend> {};

TEST_P(SnapshotRoundTripTest, MemoryEngineAgreesExactly) {
  auto db = std::make_shared<SetDatabase>(MakeDb(300, 11));
  auto queries = MakeQueries(*db, 12);
  auto options = FastOptions(SimilarityMeasure::kJaccard, GetParam());
  auto original = api::EngineBuilder::Build(db, "les3", options);
  ASSERT_TRUE(original.ok()) << original.status().ToString();

  std::string path =
      TempPath("roundtrip_" + bitmap::ToString(GetParam()) + ".snap");
  ASSERT_TRUE(original.value()->Save(path).ok());
  auto reloaded = api::EngineBuilder::Open(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  EXPECT_NE(reloaded.value()->Describe().find("snapshot=v1"),
            std::string::npos);
  EXPECT_EQ(original.value()->IndexBytes(), reloaded.value()->IndexBytes());
  ExpectEnginesAgree(*original.value(), *reloaded.value(), queries,
                     bitmap::ToString(GetParam()));
  std::remove(path.c_str());
}

TEST_P(SnapshotRoundTripTest, DiskEngineRegeneratesTheSameLayout) {
  auto db = std::make_shared<SetDatabase>(MakeDb(250, 21));
  auto queries = MakeQueries(*db, 22);
  auto options = FastOptions(SimilarityMeasure::kCosine, GetParam());
  auto original = api::EngineBuilder::Build(db, "disk_les3", options);
  ASSERT_TRUE(original.ok()) << original.status().ToString();

  std::string path =
      TempPath("disk_roundtrip_" + bitmap::ToString(GetParam()) + ".snap");
  ASSERT_TRUE(original.value()->Save(path).ok());
  auto reloaded = api::EngineBuilder::Open(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();

  // Same hits AND the same simulated I/O: seeks/pages depend on the
  // GroupContiguous extents, so equality means the reloaded assignment
  // regenerated the identical layout.
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto expected = original.value()->Knn(queries[qi], 10);
    auto actual = reloaded.value()->Knn(queries[qi], 10);
    ExpectExactHits(expected.hits, actual.hits,
                    "disk knn q=" + std::to_string(qi));
    ASSERT_TRUE(expected.io.has_value());
    ASSERT_TRUE(actual.io.has_value());
    EXPECT_EQ(expected.io->seeks, actual.io->seeks) << "q=" << qi;
    EXPECT_EQ(expected.io->pages, actual.io->pages) << "q=" << qi;
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Backends, SnapshotRoundTripTest,
                         ::testing::Values(bitmap::BitmapBackend::kRoaring,
                                           bitmap::BitmapBackend::kBitVector),
                         [](const auto& info) {
                           return bitmap::ToString(info.param);
                         });

TEST(SnapshotTest, ResaveAfterLoadIsByteIdentical) {
  // Exact container state survives the round trip: a reloaded engine
  // serializes to the very same bytes.
  auto db = std::make_shared<SetDatabase>(MakeDb(200, 31));
  auto options =
      FastOptions(SimilarityMeasure::kJaccard, bitmap::BitmapBackend::kRoaring);
  options.keep_l2p_models = true;
  auto original = api::EngineBuilder::Build(db, "les3", options);
  ASSERT_TRUE(original.ok());

  std::string path1 = TempPath("resave1.snap");
  std::string path2 = TempPath("resave2.snap");
  ASSERT_TRUE(original.value()->Save(path1).ok());
  auto reloaded = api::EngineBuilder::Open(path1);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  ASSERT_TRUE(reloaded.value()->Save(path2).ok());

  std::vector<uint8_t> bytes1, bytes2;
  ASSERT_TRUE(ReadFileBytes(path1, &bytes1).ok());
  ASSERT_TRUE(ReadFileBytes(path2, &bytes2).ok());
  EXPECT_EQ(bytes1, bytes2);
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(SnapshotTest, L2pModelsPersistAcrossReload) {
  auto db = std::make_shared<SetDatabase>(MakeDb(300, 41));
  auto options =
      FastOptions(SimilarityMeasure::kJaccard, bitmap::BitmapBackend::kRoaring);
  options.keep_l2p_models = true;
  auto original = api::EngineBuilder::Build(db, "les3", options);
  ASSERT_TRUE(original.ok());
  // init_groups=8 < num_groups=16 over 300 sets: models must be trained.
  std::string describe = original.value()->Describe();
  ASSERT_NE(describe.find("l2p_models="), std::string::npos) << describe;

  std::string path = TempPath("l2p.snap");
  ASSERT_TRUE(original.value()->Save(path).ok());
  auto reloaded = api::EngineBuilder::Open(path);
  ASSERT_TRUE(reloaded.ok());
  // The persisted-model count is part of Describe() and must survive.
  std::string tail = describe.substr(describe.find("l2p_models="));
  tail = tail.substr(0, tail.find_first_of(",)"));
  EXPECT_NE(reloaded.value()->Describe().find(tail), std::string::npos)
      << reloaded.value()->Describe();
  std::remove(path.c_str());
}

TEST(SnapshotTest, BackendOverrideOnOpen) {
  auto db = std::make_shared<SetDatabase>(MakeDb(150, 51));
  auto options =
      FastOptions(SimilarityMeasure::kJaccard, bitmap::BitmapBackend::kRoaring);
  auto original = api::EngineBuilder::Build(db, "les3", options);
  ASSERT_TRUE(original.ok());
  std::string path = TempPath("override.snap");
  ASSERT_TRUE(original.value()->Save(path).ok());

  api::OpenOptions disk_open;
  disk_open.backend = "disk_les3";
  auto as_disk = api::EngineBuilder::Open(path, disk_open);
  ASSERT_TRUE(as_disk.ok()) << as_disk.status().ToString();
  EXPECT_NE(as_disk.value()->Describe().find("disk_les3("),
            std::string::npos);
  auto queries = MakeQueries(*db, 52);
  ExpectEnginesAgree(*original.value(), *as_disk.value(), queries,
                     "open-as-disk");

  api::OpenOptions bad_open;
  bad_open.backend = "brute_force";
  auto bad = api::EngineBuilder::Open(path, bad_open);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SnapshotTest, SaveUnsupportedOnNonLes3Backends) {
  auto db = std::make_shared<SetDatabase>(MakeDb(100, 61));
  for (const char* backend : {"brute_force", "invidx", "dualtrans"}) {
    auto engine = api::EngineBuilder::Build(db, backend);
    ASSERT_TRUE(engine.ok());
    Status s = engine.value()->Save(TempPath("unsupported.snap"));
    EXPECT_EQ(s.code(), StatusCode::kNotSupported) << backend;
  }
}

TEST(SnapshotTest, MissingFileIsAnError) {
  auto missing = api::EngineBuilder::Open(TempPath("does_not_exist.snap"));
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// Corruption robustness. One valid byte buffer, attacked in every way the
// issue names; DecodeSnapshot must return a Status every time.

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto db = std::make_shared<SetDatabase>(MakeDb(120, 71));
    auto options = FastOptions(SimilarityMeasure::kJaccard,
                               bitmap::BitmapBackend::kRoaring);
    options.keep_l2p_models = true;  // exercise the L2P chunk too
    auto engine = api::EngineBuilder::Build(db, "les3", options);
    ASSERT_TRUE(engine.ok());
    std::string path = TempPath("corruption_base.snap");
    ASSERT_TRUE(engine.value()->Save(path).ok());
    bytes_ = new std::vector<uint8_t>();
    ASSERT_TRUE(ReadFileBytes(path, bytes_).ok());
    std::remove(path.c_str());
    ASSERT_TRUE(DecodeSnapshot(bytes_->data(), bytes_->size()).ok());
  }
  static void TearDownTestSuite() {
    delete bytes_;
    bytes_ = nullptr;
  }

  static std::vector<uint8_t>* bytes_;
};

std::vector<uint8_t>* SnapshotCorruptionTest::bytes_ = nullptr;

TEST_F(SnapshotCorruptionTest, EveryTruncationFails) {
  const auto& bytes = *bytes_;
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto result = DecodeSnapshot(bytes.data(), len);
    EXPECT_FALSE(result.ok()) << "truncation at " << len << " of "
                              << bytes.size();
  }
}

TEST_F(SnapshotCorruptionTest, EverySingleBitFlipFails) {
  // One flip per byte (rotating bit position) keeps the sweep quadratic-
  // free while still touching every header field, length, payload byte,
  // and checksum.
  std::vector<uint8_t> corrupted = *bytes_;
  for (size_t i = 0; i < corrupted.size(); ++i) {
    uint8_t mask = static_cast<uint8_t>(1u << (i % 8));
    corrupted[i] ^= mask;
    auto result = DecodeSnapshot(corrupted.data(), corrupted.size());
    EXPECT_FALSE(result.ok()) << "bit flip at byte " << i;
    corrupted[i] ^= mask;
  }
}

TEST_F(SnapshotCorruptionTest, BadMagicVersionAndFlags) {
  std::vector<uint8_t> bad = *bytes_;
  bad[0] = 'X';
  auto r = DecodeSnapshot(bad.data(), bad.size());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);

  bad = *bytes_;
  // A version beyond anything this build reads.
  bad[8] = static_cast<uint8_t>(kMaxSnapshotVersion + 1);
  r = DecodeSnapshot(bad.data(), bad.size());
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version"), std::string::npos);

  // Version 2 exists (sharded snapshots) but this file has a v1 layout:
  // relabeling the header must fail cleanly, not decode as sharded.
  bad = *bytes_;
  bad[8] = static_cast<uint8_t>(kSnapshotVersionSharded);
  EXPECT_FALSE(DecodeSnapshot(bad.data(), bad.size()).ok());

  // Flag bit 0 (kSnapshotFlagTombstones) is known: it promises only that
  // tombstone sentinels MAY appear, so setting it on a clean file still
  // decodes — and must not invent any deletions.
  bad = *bytes_;
  bad[12] = 1;
  auto flagged = DecodeSnapshot(bad.data(), bad.size());
  ASSERT_TRUE(flagged.ok()) << flagged.status().ToString();
  EXPECT_EQ(flagged.value().db->num_deleted(), 0u);

  // Any other flag bit is from a future format: reject, never guess.
  for (uint8_t unknown : {uint8_t{2}, uint8_t{3}, uint8_t{0x80}}) {
    bad = *bytes_;
    bad[12] = unknown;
    auto r2 = DecodeSnapshot(bad.data(), bad.size());
    ASSERT_FALSE(r2.ok()) << "flags " << int(unknown);
    EXPECT_NE(r2.status().message().find("flag"), std::string::npos)
        << r2.status().ToString();
  }
}

TEST_F(SnapshotCorruptionTest, OversizedChunkLengthFails) {
  // The first chunk header sits right after the 16-byte file header:
  // u32 type at 16, u64 payload length at 20.
  std::vector<uint8_t> bad = *bytes_;
  for (uint8_t b : {0xFF, 0x7F}) {
    for (size_t i = 20; i < 28; ++i) bad[i] = b;  // absurd 64-bit length
    auto result = DecodeSnapshot(bad.data(), bad.size());
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("exceeds the file size"),
              std::string::npos)
        << result.status().ToString();
  }
}

TEST_F(SnapshotCorruptionTest, GarbageAndEmptyInputsFail) {
  EXPECT_FALSE(DecodeSnapshot(nullptr, 0).ok());
  std::vector<uint8_t> garbage(1024, 0xAB);
  EXPECT_FALSE(DecodeSnapshot(garbage.data(), garbage.size()).ok());
  // A valid header with no chunks at all.
  ByteWriter w;
  w.WriteBytes(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.WriteU32(kSnapshotVersion);
  w.WriteU32(0);
  EXPECT_FALSE(DecodeSnapshot(w.data().data(), w.data().size()).ok());
}

TEST_F(SnapshotCorruptionTest, TrailingGarbageAfterEndChunkFails) {
  std::vector<uint8_t> bad = *bytes_;
  bad.push_back(0);
  EXPECT_FALSE(DecodeSnapshot(bad.data(), bad.size()).ok());
}

// ---------------------------------------------------------------------------
// Semantic validation of the inner payloads, attacked below the CRC layer
// (crafted buffers, no checksums involved): the deserializers themselves
// must reject anything that would break the query kernels' invariants.

TEST(SnapshotSemanticTest, TgmRejectsOutOfRangeAssignment) {
  ByteWriter w;
  tgm::Tgm tgm(SetDatabase(4), {}, 2);
  tgm.SerializeColumns(&w);
  std::vector<GroupId> bad_assignment = {0, 1, 2};  // 2 >= num_groups
  ByteReader r(w.data());
  auto result =
      tgm::Tgm::Deserialize(bad_assignment, 2, {1, 1, 1}, &r);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(SnapshotSemanticTest, TgmRejectsGroupCountBeyondSetCount) {
  // Partitionings are dense, so num_groups can never exceed |assignment|;
  // an attacker-sized group count must be rejected before the membership
  // allocation, not after.
  ByteWriter w;
  tgm::Tgm tgm(SetDatabase(4), {}, 2);
  tgm.SerializeColumns(&w);
  std::vector<GroupId> assignment = {0, 1, 0};
  ByteReader r(w.data());
  auto result =
      tgm::Tgm::Deserialize(assignment, 0xFFFFFFFFu, {1, 1, 1}, &r);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(SnapshotSemanticTest, ColumnValueBeyondGroupCountRejected) {
  // A column naming group 40 must not load into an 8-group matrix: the
  // count kernels would write past the counter array.
  bitmap::BitmapColumn col = bitmap::BitmapColumn::FromSorted(
      bitmap::BitmapBackend::kRoaring, {1, 3, 40});
  ByteWriter w;
  col.Serialize(&w);
  ByteReader ok_reader(w.data());
  EXPECT_TRUE(bitmap::BitmapColumn::Deserialize(&ok_reader, 41).ok());
  ByteReader bad_reader(w.data());
  auto result = bitmap::BitmapColumn::Deserialize(&bad_reader, 8);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(SnapshotSemanticTest, RoaringStructuralInvariantsEnforced) {
  {
    // Array values not strictly ascending.
    ByteWriter w;
    w.WriteU32(1);            // one container
    w.WriteU16(0);            // key
    w.WriteU8(0);             // array tag
    w.WriteU32(2);            // two values
    w.WriteU16(5);
    w.WriteU16(5);            // duplicate
    ByteReader r(w.data());
    EXPECT_FALSE(bitmap::Roaring::Deserialize(&r, 1 << 20).ok());
  }
  {
    // Bitset cardinality disagreeing with its popcount.
    ByteWriter w;
    w.WriteU32(1);
    w.WriteU16(0);
    w.WriteU8(1);             // bitset tag
    w.WriteU32(7);            // claimed cardinality
    w.WriteU64(0b11);         // actual popcount 2
    for (int i = 1; i < 1024; ++i) w.WriteU64(0);
    ByteReader r(w.data());
    EXPECT_FALSE(bitmap::Roaring::Deserialize(&r, 1 << 20).ok());
  }
  {
    // Overlapping runs.
    ByteWriter w;
    w.WriteU32(1);
    w.WriteU16(0);
    w.WriteU8(2);             // run tag
    w.WriteU32(2);
    w.WriteU16(0);
    w.WriteU16(10);           // [0, 10]
    w.WriteU16(5);
    w.WriteU16(3);            // [5, 8] overlaps
    ByteReader r(w.data());
    EXPECT_FALSE(bitmap::Roaring::Deserialize(&r, 1 << 20).ok());
  }
  {
    // Unknown container tag.
    ByteWriter w;
    w.WriteU32(1);
    w.WriteU16(0);
    w.WriteU8(9);
    ByteReader r(w.data());
    EXPECT_FALSE(bitmap::Roaring::Deserialize(&r, 1 << 20).ok());
  }
}

TEST(SnapshotSemanticTest, DenseColumnInvariantsEnforced) {
  {
    // Stray bit past the logical size.
    ByteWriter w;
    w.WriteU64(10);     // num_bits
    w.WriteU64(1u << 12);  // bit 12 set, but only bits [0, 10) are legal
    ByteReader r(w.data());
    EXPECT_FALSE(bitmap::BitVector::Deserialize(&r, 64).ok());
  }
  {
    // Size beyond the universe bound.
    ByteWriter w;
    w.WriteU64(100);
    for (int i = 0; i < 2; ++i) w.WriteU64(0);
    ByteReader r(w.data());
    EXPECT_FALSE(bitmap::BitVector::Deserialize(&r, 32).ok());
  }
  {
    // Column cardinality disagreeing with the bits.
    ByteWriter w;
    w.WriteU8(static_cast<uint8_t>(bitmap::BitmapBackend::kBitVector));
    w.WriteU64(5);      // claimed cardinality
    w.WriteU64(8);      // num_bits
    w.WriteU64(0b101);  // actual popcount 2
    ByteReader r(w.data());
    EXPECT_FALSE(bitmap::BitmapColumn::Deserialize(&r, 64).ok());
  }
}

// ---------------------------------------------------------------------------
// Tombstone persistence (docs/snapshot_format.md, "Tombstones"): deleted
// ids travel as kInvalidGroup sentinels in PART under header flag bit 0,
// columns are compacted at save, and the two validation edges — sentinel
// without the flag, sentinel whose DB entry still carries tokens — are
// rejected.

uint32_t ReadU32At(const std::vector<uint8_t>& bytes, size_t off) {
  return static_cast<uint32_t>(bytes[off]) |
         static_cast<uint32_t>(bytes[off + 1]) << 8 |
         static_cast<uint32_t>(bytes[off + 2]) << 16 |
         static_cast<uint32_t>(bytes[off + 3]) << 24;
}

void WriteU32At(std::vector<uint8_t>* bytes, size_t off, uint32_t v) {
  (*bytes)[off] = static_cast<uint8_t>(v);
  (*bytes)[off + 1] = static_cast<uint8_t>(v >> 8);
  (*bytes)[off + 2] = static_cast<uint8_t>(v >> 16);
  (*bytes)[off + 3] = static_cast<uint8_t>(v >> 24);
}

/// Payload offset and length of the first chunk of `type` (16-byte file
/// header, then type u32 + length u64 + payload + crc u32 per chunk).
bool FindChunk(const std::vector<uint8_t>& bytes, ChunkType type,
               size_t* payload_off, size_t* payload_len) {
  size_t off = 16;
  while (off + 12 <= bytes.size()) {
    uint32_t chunk_type = ReadU32At(bytes, off);
    uint64_t len = static_cast<uint64_t>(ReadU32At(bytes, off + 4)) |
                   static_cast<uint64_t>(ReadU32At(bytes, off + 8)) << 32;
    if (chunk_type == static_cast<uint32_t>(type)) {
      *payload_off = off + 12;
      *payload_len = static_cast<size_t>(len);
      return true;
    }
    if (chunk_type == static_cast<uint32_t>(ChunkType::kEnd)) return false;
    off += 12 + static_cast<size_t>(len) + 4;
  }
  return false;
}

/// Recomputes the CRC that trails the chunk at `payload_off`.
void FixChunkCrc(std::vector<uint8_t>* bytes, size_t payload_off,
                 size_t payload_len) {
  WriteU32At(bytes, payload_off + payload_len,
             Crc32(bytes->data() + payload_off, payload_len));
}

std::unique_ptr<api::SearchEngine> BuildMutatedEngine(
    const std::string& backend, uint32_t num_shards) {
  auto db = std::make_shared<SetDatabase>(MakeDb(150, 83));
  auto options =
      FastOptions(SimilarityMeasure::kJaccard, bitmap::BitmapBackend::kRoaring);
  options.num_shards = num_shards;
  auto built = api::EngineBuilder::Build(db, backend, options);
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  if (!built.ok()) return nullptr;
  std::unique_ptr<api::SearchEngine> engine = std::move(built).ValueOrDie();
  for (SetId id = 1; id < 150; id += 13) {
    EXPECT_TRUE(
        engine->Update(id, SetRecord::FromTokens({5, 9, 300 + id})).ok());
  }
  // Updates first, then deletes: id 66 gets both (update then tombstone).
  for (SetId id = 0; id < 150; id += 11) {
    EXPECT_TRUE(engine->Delete(id).ok());
  }
  return engine;
}

class SnapshotTombstoneTest : public ::testing::TestWithParam<
                                  std::pair<const char*, uint32_t>> {};

TEST_P(SnapshotTombstoneTest, FlaggedCompactedRoundTrip) {
  const auto [backend, num_shards] = GetParam();
  auto engine = BuildMutatedEngine(backend, num_shards);
  ASSERT_NE(engine, nullptr);

  std::string path1 = TempPath(std::string("tomb1_") + backend + ".snap");
  std::string path2 = TempPath(std::string("tomb2_") + backend + ".snap");
  ASSERT_TRUE(engine->Save(path1).ok());

  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path1, &bytes).ok());
  EXPECT_EQ(ReadU32At(bytes, 12), kSnapshotFlagTombstones);

  auto reloaded = api::EngineBuilder::Open(path1);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value()->db().num_deleted(), engine->db().num_deleted());
  EXPECT_EQ(reloaded.value()->db().size(), engine->db().size());
  for (const SetRecord& query : MakeQueries(engine->db(), 59)) {
    ExpectExactHits(engine->Knn(query.view(), 10).hits,
                    reloaded.value()->Knn(query.view(), 10).hits,
                    "reloaded knn");
    ExpectExactHits(engine->Range(query.view(), 0.4).hits,
                    reloaded.value()->Range(query.view(), 0.4).hits,
                    "reloaded range");
  }

  // Compaction is a fixed point: the reloaded engine re-saves to the
  // very same bytes (tombstones and all).
  ASSERT_TRUE(reloaded.value()->Save(path2).ok());
  std::vector<uint8_t> bytes2;
  ASSERT_TRUE(ReadFileBytes(path2, &bytes2).ok());
  EXPECT_EQ(bytes, bytes2);
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SnapshotTombstoneTest,
    ::testing::Values(std::make_pair("les3", 1u),
                      std::make_pair("sharded_les3", 3u)),
    [](const auto& info) { return std::string(info.param.first); });

TEST(SnapshotTombstoneTest, CleanSaveStaysFlagless) {
  // A database that never saw a delete writes a flagless file — the
  // byte-compatibility guarantee the golden test pins across builds.
  auto db = std::make_shared<SetDatabase>(MakeDb(80, 97));
  auto built = api::EngineBuilder::Build(
      db, "les3",
      FastOptions(SimilarityMeasure::kJaccard,
                  bitmap::BitmapBackend::kRoaring));
  ASSERT_TRUE(built.ok());
  // Inserts mutate, but leave no holes and no dirt: still flagless.
  ASSERT_TRUE(built.value()->Insert(SetRecord::FromTokens({1, 2, 3})).ok());
  std::string path = TempPath("tomb_clean.snap");
  ASSERT_TRUE(built.value()->Save(path).ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
  EXPECT_EQ(ReadU32At(bytes, 12), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTombstoneTest, SentinelWithoutFlagRejected) {
  auto engine = BuildMutatedEngine("les3", 1);
  ASSERT_NE(engine, nullptr);
  std::string path = TempPath("tomb_noflag.snap");
  ASSERT_TRUE(engine->Save(path).ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
  std::remove(path.c_str());
  ASSERT_EQ(ReadU32At(bytes, 12), kSnapshotFlagTombstones);

  // Clear the flag: the PART sentinels are now format violations — a
  // build that predates tombstones must never load this file silently.
  WriteU32At(&bytes, 12, 0);
  auto result = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("flag"), std::string::npos)
      << result.status().ToString();
}

TEST(SnapshotTombstoneTest, TombstonedSetWithTokensRejected) {
  // Stitch a hostile file: take a clean snapshot, set the tombstone
  // flag, and park a live set's assignment at the sentinel. Its DB entry
  // still carries tokens, which the loader must treat as corruption
  // (a real writer empties the span before writing the sentinel).
  auto db = std::make_shared<SetDatabase>(MakeDb(80, 101));
  auto built = api::EngineBuilder::Build(
      db, "les3",
      FastOptions(SimilarityMeasure::kJaccard,
                  bitmap::BitmapBackend::kRoaring));
  ASSERT_TRUE(built.ok());
  std::string path = TempPath("tomb_stitched.snap");
  ASSERT_TRUE(built.value()->Save(path).ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
  std::remove(path.c_str());

  WriteU32At(&bytes, 12, kSnapshotFlagTombstones);
  size_t part_off = 0, part_len = 0;
  ASSERT_TRUE(FindChunk(bytes, ChunkType::kPartition, &part_off, &part_len));
  // PART payload: num_groups u32, count u32, then one u32 per set.
  ASSERT_EQ(ReadU32At(bytes, part_off + 4), 80u);
  WriteU32At(&bytes, part_off + 8 + 4 * 7, kInvalidGroup);  // live set 7
  FixChunkCrc(&bytes, part_off, part_len);

  auto result = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("carries tokens"),
            std::string::npos)
      << result.status().ToString();
}

}  // namespace
}  // namespace persist
}  // namespace les3
