// ResultCache unit suite (serve/result_cache.h): key construction, LRU
// eviction and recency, the epoch invalidation protocol that preserves
// exactness under Inserts, and stats/capacity accounting. The end-to-end
// differential leg lives in serve_e2e_test.cc.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/set_record.h"
#include "serve/result_cache.h"

namespace les3 {
namespace serve {
namespace {

ResultCache::Value Hits(std::vector<Hit> hits) {
  return std::make_shared<const std::vector<Hit>>(std::move(hits));
}

SetRecord Set(std::vector<TokenId> tokens) {
  return SetRecord::FromSortedTokens(std::move(tokens));
}

// A single shard makes LRU order observable deterministically.
ResultCache::Options SingleShard(size_t capacity) {
  ResultCache::Options options;
  options.capacity_bytes = capacity;
  options.num_shards = 1;
  return options;
}

TEST(ServeCache, KeysSeparateTypesParamsAndQueries) {
  SetRecord a = Set({1, 2, 3});
  SetRecord b = Set({1, 2, 4});
  EXPECT_NE(ResultCache::KnnKey(a.view(), 10),
            ResultCache::KnnKey(a.view(), 11));
  EXPECT_NE(ResultCache::KnnKey(a.view(), 10),
            ResultCache::KnnKey(b.view(), 10));
  EXPECT_NE(ResultCache::RangeKey(a.view(), 0.5),
            ResultCache::RangeKey(a.view(), 0.6));
  // A kNN and a range lookup can never share an entry, whatever the
  // parameter bits happen to be.
  EXPECT_NE(ResultCache::KnnKey(a.view(), 1),
            ResultCache::RangeKey(a.view(), 0.0));
  // Same inputs -> same key (the whole point).
  EXPECT_EQ(ResultCache::RangeKey(a.view(), 0.5),
            ResultCache::RangeKey(a.view(), 0.5));
}

TEST(ServeCache, HitAfterPutMissBefore) {
  ResultCache cache(SingleShard(1 << 20));
  std::string key = ResultCache::KnnKey(Set({1, 2}).view(), 5);
  EXPECT_EQ(cache.Get(key), nullptr);
  cache.Put(key, Hits({{7, 0.9}}), cache.epoch());
  ResultCache::Value value = cache.Get(key);
  ASSERT_NE(value, nullptr);
  ASSERT_EQ(value->size(), 1u);
  EXPECT_EQ((*value)[0].first, 7u);
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ServeCache, BumpEpochInvalidatesEverythingOlder) {
  ResultCache cache(SingleShard(1 << 20));
  std::string key = ResultCache::KnnKey(Set({1}).view(), 3);
  cache.Put(key, Hits({{1, 1.0}}), cache.epoch());
  ASSERT_NE(cache.Get(key), nullptr);
  cache.BumpEpoch();  // an Insert completed
  EXPECT_EQ(cache.Get(key), nullptr);  // stale entry must not be served
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  // The entry was dropped eagerly, not just skipped: a fresh Put at the
  // new epoch serves again.
  cache.Put(key, Hits({{2, 1.0}}), cache.epoch());
  ResultCache::Value value = cache.Get(key);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ((*value)[0].first, 2u);
}

TEST(ServeCache, PutAtStaleEpochIsIgnored) {
  ResultCache cache(SingleShard(1 << 20));
  std::string key = ResultCache::RangeKey(Set({1, 9}).view(), 0.7);
  uint64_t before = cache.epoch();
  cache.BumpEpoch();  // Insert lands between epoch read and Put
  cache.Put(key, Hits({{1, 0.8}}), before);
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ServeCache, LruEvictsOldestUnderCapacity) {
  // Entries charge key bytes + hit bytes + a fixed overhead; a small
  // capacity holds only a couple of them.
  ResultCache cache(SingleShard(512));
  std::vector<std::string> keys;
  for (TokenId t = 0; t < 8; ++t) {
    keys.push_back(ResultCache::KnnKey(Set({t}).view(), 1));
    cache.Put(keys.back(), Hits({{t, 1.0}}), cache.epoch());
  }
  EXPECT_LE(cache.charged_bytes(), 512u);
  EXPECT_GT(cache.stats().evictions, 0u);
  // The newest entry survived; the oldest was evicted.
  EXPECT_NE(cache.Get(keys.back()), nullptr);
  EXPECT_EQ(cache.Get(keys.front()), nullptr);
}

TEST(ServeCache, GetRefreshesRecency) {
  ResultCache cache(SingleShard(512));
  std::string first = ResultCache::KnnKey(Set({100}).view(), 1);
  cache.Put(first, Hits({{1, 1.0}}), cache.epoch());
  // Keep touching `first` while filling; it must outlive untouched keys.
  std::string last;
  for (TokenId t = 0; t < 6; ++t) {
    last = ResultCache::KnnKey(Set({t}).view(), 1);
    cache.Put(last, Hits({{t, 1.0}}), cache.epoch());
    ASSERT_NE(cache.Get(first), nullptr) << "after put " << t;
  }
  EXPECT_NE(cache.Get(first), nullptr);
}

TEST(ServeCache, OversizedEntryIsNotCached) {
  ResultCache cache(SingleShard(256));
  std::vector<Hit> big(1000, {1, 0.5});
  std::string key = ResultCache::KnnKey(Set({1}).view(), 1000);
  cache.Put(key, Hits(big), cache.epoch());
  // Larger than the whole shard slice: storing it would evict everything
  // and still not fit.
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.charged_bytes(), 0u);
}

TEST(ServeCache, ValueOutlivesEviction) {
  // A reply in flight holds the shared_ptr; eviction must not free it.
  ResultCache cache(SingleShard(512));
  std::string key = ResultCache::KnnKey(Set({1}).view(), 1);
  cache.Put(key, Hits({{42, 0.75}}), cache.epoch());
  ResultCache::Value held = cache.Get(key);
  ASSERT_NE(held, nullptr);
  for (TokenId t = 10; t < 30; ++t) {
    cache.Put(ResultCache::KnnKey(Set({t}).view(), 1), Hits({{t, 1.0}}),
              cache.epoch());
  }
  EXPECT_EQ(cache.Get(key), nullptr);  // evicted from the cache...
  ASSERT_EQ(held->size(), 1u);         // ...but the held value is intact
  EXPECT_EQ((*held)[0].first, 42u);
  EXPECT_DOUBLE_EQ((*held)[0].second, 0.75);
}

TEST(ServeCache, PutSameKeyRefreshesInPlace) {
  ResultCache cache(SingleShard(1 << 20));
  std::string key = ResultCache::KnnKey(Set({5}).view(), 2);
  cache.Put(key, Hits({{1, 0.1}}), cache.epoch());
  cache.Put(key, Hits({{2, 0.2}}), cache.epoch());
  ResultCache::Value value = cache.Get(key);
  ASSERT_NE(value, nullptr);
  EXPECT_EQ((*value)[0].first, 2u);
  // Refresh replaced the entry rather than double-charging.
  ResultCache cache2(SingleShard(1 << 20));
  cache2.Put(key, Hits({{1, 0.1}}), cache2.epoch());
  size_t single = cache2.charged_bytes();
  EXPECT_EQ(cache.charged_bytes(), single);
}

TEST(ServeCache, MultiShardCountsAggregate) {
  ResultCache::Options options;
  options.capacity_bytes = 1 << 20;
  options.num_shards = 16;
  ResultCache cache(options);
  for (TokenId t = 0; t < 64; ++t) {
    std::string key = ResultCache::KnnKey(Set({t}).view(), 1);
    cache.Put(key, Hits({{t, 1.0}}), cache.epoch());
    EXPECT_NE(cache.Get(key), nullptr);
  }
  ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 64u);
  EXPECT_EQ(stats.hits, 64u);
  EXPECT_GT(cache.charged_bytes(), 0u);
}

}  // namespace
}  // namespace serve
}  // namespace les3
