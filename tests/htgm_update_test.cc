// Tests for HTGM level-by-level insertion (Section 6).

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "datagen/generators.h"
#include "tgm/htgm.h"
#include "util/random.h"

namespace les3 {
namespace tgm {
namespace {

struct NestedFixture {
  SetDatabase db;
  HtgmLevelSpec coarse;
  HtgmLevelSpec fine;
};

NestedFixture MakeNested(uint32_t clusters, uint32_t per_cluster,
                         uint64_t seed) {
  NestedFixture f;
  Rng rng(seed);
  f.db = SetDatabase(clusters * 25);
  f.coarse.num_groups = clusters;
  f.fine.num_groups = clusters * 2;
  for (uint32_t c = 0; c < clusters; ++c) {
    for (uint32_t i = 0; i < per_cluster; ++i) {
      std::vector<TokenId> tokens;
      for (int j = 0; j < 6; ++j) {
        tokens.push_back(static_cast<TokenId>(25 * c + rng.Uniform(25)));
      }
      f.db.AddSet(SetRecord::FromTokens(std::move(tokens)));
      f.coarse.assignment.push_back(c);
      f.fine.assignment.push_back(2 * c + (i % 2));
    }
  }
  return f;
}

TEST(HtgmUpdateTest, InsertRoutesToMatchingCluster) {
  NestedFixture f = MakeNested(4, 30, 1);
  Htgm h(f.db, {f.coarse, f.fine});
  // A set built from cluster 2's token range must land in one of cluster
  // 2's fine groups (ids 4 or 5).
  SetRecord s = SetRecord::FromTokens({50, 51, 52, 53});
  SetId id = f.db.AddSet(s);
  GroupId g = h.AddSet(id, f.db.set(id), SimilarityMeasure::kJaccard);
  EXPECT_TRUE(g == 4 || g == 5) << g;
}

TEST(HtgmUpdateTest, InsertedSetIsFindable) {
  NestedFixture f = MakeNested(4, 30, 3);
  Htgm h(f.db, {f.coarse, f.fine});
  SetRecord novel = SetRecord::FromTokens({10, 11, 12, 60, 61});
  SetId id = f.db.AddSet(novel);
  h.AddSet(id, f.db.set(id), SimilarityMeasure::kJaccard);
  auto hits = h.Knn(f.db, novel, 1, SimilarityMeasure::kJaccard, nullptr);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, id);
  EXPECT_DOUBLE_EQ(hits[0].second, 1.0);
}

TEST(HtgmUpdateTest, OpenUniverseTokensSearchable) {
  NestedFixture f = MakeNested(3, 20, 5);
  Htgm h(f.db, {f.coarse, f.fine});
  // Tokens 900+ were never seen at build time.
  SetRecord novel = SetRecord::FromTokens({900, 901, 902});
  SetId id = f.db.AddSet(novel);
  h.AddSet(id, f.db.set(id), SimilarityMeasure::kJaccard);
  auto hits = h.Knn(f.db, SetRecord::FromTokens({900, 901, 902}), 1,
                    SimilarityMeasure::kJaccard, nullptr);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].first, id);
}

TEST(HtgmUpdateTest, ExactAfterManyInserts) {
  NestedFixture f = MakeNested(4, 25, 7);
  Htgm h(f.db, {f.coarse, f.fine});
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    std::vector<TokenId> tokens;
    size_t size = 3 + rng.Uniform(5);
    for (size_t t = 0; t < size; ++t) {
      tokens.push_back(static_cast<TokenId>(rng.Uniform(120)));
    }
    SetRecord s = SetRecord::FromTokens(std::move(tokens));
    SetId id = f.db.AddSet(s);
    h.AddSet(id, f.db.set(id), SimilarityMeasure::kJaccard);
  }
  baselines::BruteForce brute(&f.db);
  for (int q = 0; q < 15; ++q) {
    SetView query = f.db.set(static_cast<SetId>(rng.Uniform(f.db.size())));
    auto got = h.Knn(f.db, query, 8, SimilarityMeasure::kJaccard, nullptr);
    auto expected = brute.Knn(query, 8);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].second, expected[i].second, 1e-12);
    }
    auto got_range =
        h.Range(f.db, query, 0.5, SimilarityMeasure::kJaccard, nullptr);
    auto expected_range = brute.Range(query, 0.5);
    EXPECT_EQ(got_range.size(), expected_range.size());
  }
}

TEST(HtgmUpdateTest, BitVectorBackendMatchesRoaringAndBruteForce) {
  // The dense node-bitmap backend must answer identically through builds,
  // inserts (including open-universe tokens), and both query kinds.
  NestedFixture f = MakeNested(4, 25, 13);
  Htgm roaring(f.db, {f.coarse, f.fine}, bitmap::BitmapBackend::kRoaring);
  Htgm dense(f.db, {f.coarse, f.fine}, bitmap::BitmapBackend::kBitVector);
  Rng rng(15);
  for (int i = 0; i < 60; ++i) {
    std::vector<TokenId> tokens;
    size_t size = 3 + rng.Uniform(5);
    uint32_t universe = (i % 10 == 0) ? 150 + i : 100;  // some unseen tokens
    for (size_t t = 0; t < size; ++t) {
      tokens.push_back(static_cast<TokenId>(rng.Uniform(universe)));
    }
    SetRecord s = SetRecord::FromTokens(std::move(tokens));
    SetId id = f.db.AddSet(s);
    GroupId gr = roaring.AddSet(id, f.db.set(id), SimilarityMeasure::kJaccard);
    GroupId gd = dense.AddSet(id, f.db.set(id), SimilarityMeasure::kJaccard);
    EXPECT_EQ(gr, gd);
  }
  baselines::BruteForce brute(&f.db);
  for (int q = 0; q < 10; ++q) {
    SetView query = f.db.set(static_cast<SetId>(rng.Uniform(f.db.size())));
    auto expected = brute.Knn(query, 6);
    for (const Htgm* h : {&roaring, &dense}) {
      auto got = h->Knn(f.db, query, 6, SimilarityMeasure::kJaccard, nullptr);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].first, expected[i].first);
        EXPECT_DOUBLE_EQ(got[i].second, expected[i].second);
      }
      auto got_range =
          h->Range(f.db, query, 0.4, SimilarityMeasure::kJaccard, nullptr);
      auto expected_range = brute.Range(query, 0.4);
      ASSERT_EQ(got_range.size(), expected_range.size());
      for (size_t i = 0; i < got_range.size(); ++i) {
        EXPECT_EQ(got_range[i].first, expected_range[i].first);
      }
    }
  }
}

TEST(HtgmUpdateTest, SingleLevelInsertBehavesLikeFlatTgm) {
  NestedFixture f = MakeNested(4, 20, 11);
  Htgm flat(f.db, {f.fine});
  SetRecord s = SetRecord::FromTokens({1, 2, 3});
  SetId id = f.db.AddSet(s);
  GroupId g = flat.AddSet(id, f.db.set(id), SimilarityMeasure::kJaccard);
  EXPECT_LT(g, 8u);
  EXPECT_GT(flat.GroupSize(g), 0u);
  auto hits = flat.Knn(f.db, s, 1, SimilarityMeasure::kJaccard, nullptr);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_DOUBLE_EQ(hits[0].second, 1.0);
}

}  // namespace
}  // namespace tgm
}  // namespace les3
