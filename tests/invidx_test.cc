// Exactness and filter-correctness tests for the InvIdx baseline.

#include "baselines/invidx.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/brute_force.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace les3 {
namespace baselines {
namespace {

SetDatabase MakeDb(uint64_t seed, uint32_t num_sets = 500) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = 120;
  opts.avg_set_size = 7;
  opts.zipf_exponent = 0.9;
  opts.seed = seed;
  return datagen::GenerateZipf(opts);
}

class InvIdxMeasureTest
    : public ::testing::TestWithParam<SimilarityMeasure> {};

TEST_P(InvIdxMeasureTest, RangeMatchesBruteForce) {
  SetDatabase db = MakeDb(1);
  InvIdxOptions opts;
  opts.measure = GetParam();
  InvIdx index(&db, opts);
  BruteForce brute(&db, GetParam());
  Rng rng(2);
  for (double delta : {0.2, 0.5, 0.7, 0.95}) {
    for (int q = 0; q < 15; ++q) {
      SetView query = db.set(static_cast<SetId>(rng.Uniform(db.size())));
      auto got = index.Range(query, delta);
      auto expected = brute.Range(query, delta);
      ASSERT_EQ(got.size(), expected.size())
          << ToString(GetParam()) << " delta " << delta;
      std::set<SetId> g, e;
      for (auto& h : got) g.insert(h.first);
      for (auto& h : expected) e.insert(h.first);
      EXPECT_EQ(g, e);
    }
  }
}

TEST_P(InvIdxMeasureTest, KnnMatchesBruteForce) {
  SetDatabase db = MakeDb(3);
  InvIdxOptions opts;
  opts.measure = GetParam();
  InvIdx index(&db, opts);
  BruteForce brute(&db, GetParam());
  Rng rng(4);
  for (size_t k : {1u, 10u, 40u}) {
    for (int q = 0; q < 10; ++q) {
      SetView query = db.set(static_cast<SetId>(rng.Uniform(db.size())));
      auto got = index.Knn(query, k);
      auto expected = brute.Knn(query, k);
      ASSERT_EQ(got.size(), expected.size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].second, expected[i].second, 1e-12)
            << "k=" << k << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, InvIdxMeasureTest,
                         ::testing::Values(SimilarityMeasure::kJaccard,
                                           SimilarityMeasure::kDice,
                                           SimilarityMeasure::kCosine),
                         [](const auto& info) { return ToString(info.param); });

TEST(InvIdxTest, FilterCandidatesCoverAllResults) {
  // The prefix + size filter must never drop a true result (no false
  // negatives in the filter step).
  SetDatabase db = MakeDb(5);
  InvIdx index(&db);
  BruteForce brute(&db);
  Rng rng(6);
  for (double delta : {0.3, 0.6, 0.8}) {
    for (int q = 0; q < 20; ++q) {
      SetView query = db.set(static_cast<SetId>(rng.Uniform(db.size())));
      auto filter = index.RangeFilter(query, delta);
      std::set<SetId> candidates(filter.candidates.begin(),
                                 filter.candidates.end());
      for (auto& hit : brute.Range(query, delta)) {
        EXPECT_TRUE(candidates.count(hit.first))
            << "missing result " << hit.first << " at delta " << delta;
      }
      EXPECT_FALSE(filter.prefix_tokens.empty());
    }
  }
}

TEST(InvIdxTest, HigherThresholdFewerCandidates) {
  SetDatabase db = MakeDb(7);
  InvIdx index(&db);
  SetView query = db.set(11);
  auto low = index.RangeFilter(query, 0.3);
  auto high = index.RangeFilter(query, 0.9);
  EXPECT_LE(high.candidates.size(), low.candidates.size());
  EXPECT_LE(high.prefix_tokens.size(), low.prefix_tokens.size());
}

TEST(InvIdxTest, PostingsSortedAndComplete) {
  SetDatabase db = MakeDb(9, 200);
  InvIdx index(&db);
  uint64_t total = 0;
  for (TokenId t = 0; t < db.num_tokens(); ++t) {
    const auto& p = index.Postings(t);
    EXPECT_TRUE(std::is_sorted(p.begin(), p.end()));
    for (SetId s : p) EXPECT_TRUE(db.set(s).Contains(t));
    total += p.size();
  }
  // Every distinct (set, token) membership appears exactly once.
  uint64_t expected = 0;
  for (SetId i = 0; i < db.size(); ++i) {
    expected += db.set(i).DistinctCount();
  }
  EXPECT_EQ(total, expected);
}

TEST(InvIdxTest, IndexBytesPositive) {
  SetDatabase db = MakeDb(11, 100);
  InvIdx index(&db);
  EXPECT_GT(index.IndexBytes(), db.num_tokens() * sizeof(uint32_t));
}

TEST(InvIdxTest, MultisetQueriesExact) {
  SetDatabase db(20);
  db.AddSet(SetRecord::FromTokens({1, 1, 2}));
  db.AddSet(SetRecord::FromTokens({1, 2}));
  db.AddSet(SetRecord::FromTokens({3, 4}));
  db.AddSet(SetRecord::FromTokens({1, 1}));
  InvIdx index(&db);
  BruteForce brute(&db);
  SetRecord query = SetRecord::FromTokens({1, 1, 2});
  for (double delta : {0.4, 0.6, 1.0}) {
    auto got = index.Range(query, delta);
    auto expected = brute.Range(query, delta);
    ASSERT_EQ(got.size(), expected.size()) << delta;
  }
}

}  // namespace
}  // namespace baselines
}  // namespace les3
