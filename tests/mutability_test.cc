// Unit tests for full index mutability (docs/mutability.md): tombstones
// at every layer — SetDatabase holes, bitmap-column Remove across
// container shapes, TGM member removal / re-routing / splitting /
// column recompute — plus the self-healing maintenance policy and the
// engine-level Delete/Update/StableDb contract. The end-to-end
// interleaving differential lives in property_test.cc; these tests pin
// each layer's behavior in isolation so a regression names its layer.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/engine_builder.h"
#include "api/engine_options.h"
#include "api/search_engine.h"
#include "bitmap/bitmap_column.h"
#include "bitmap/roaring.h"
#include "core/database.h"
#include "core/set_record.h"
#include "core/similarity.h"
#include "core/types.h"
#include "datagen/generators.h"
#include "search/les3_index.h"
#include "search/maintenance.h"
#include "tgm/tgm.h"

namespace les3 {
namespace {

SetRecord Rec(std::vector<TokenId> tokens) {
  return SetRecord::FromTokens(std::move(tokens));
}

// ---------------------------------------------------------------------------
// SetDatabase: holes, span repointing, arena garbage.
// ---------------------------------------------------------------------------

TEST(MutabilityDatabaseTest, DeleteTombstonesAndNeverReusesIds) {
  SetDatabase db(10);
  SetId a = db.AddSet(Rec({1, 2, 3}).view());
  SetId b = db.AddSet(Rec({4, 5}).view());
  ASSERT_EQ(db.size(), 2u);
  ASSERT_EQ(db.num_live(), 2u);

  EXPECT_TRUE(db.DeleteSet(a));
  EXPECT_EQ(db.size(), 2u);  // id space keeps the hole
  EXPECT_EQ(db.num_live(), 1u);
  EXPECT_EQ(db.num_deleted(), 1u);
  EXPECT_TRUE(db.is_deleted(a));
  EXPECT_EQ(db.set_size(a), 0u);
  EXPECT_EQ(db.set(a).size(), 0u);
  EXPECT_EQ(db.GarbageTokens(), 3u);

  // Idempotent / out-of-range.
  EXPECT_FALSE(db.DeleteSet(a));
  EXPECT_FALSE(db.DeleteSet(999));

  // New inserts take fresh ids, never the hole.
  SetId c = db.AddSet(Rec({7}).view());
  EXPECT_EQ(c, 2u);
  EXPECT_TRUE(db.is_deleted(a));
  EXPECT_EQ(db.set_size(b), 2u);
}

TEST(MutabilityDatabaseTest, ReplaceRepointsSpanAndLeavesGarbage) {
  SetDatabase db(10);
  SetId a = db.AddSet(Rec({1, 2, 3}).view());
  SetId b = db.AddSet(Rec({4, 5}).view());

  EXPECT_TRUE(db.ReplaceSet(a, Rec({6, 7, 8, 9}).view()));
  EXPECT_EQ(db.set_size(a), 4u);
  EXPECT_EQ(db.set(a)[0], 6u);
  EXPECT_EQ(db.GarbageTokens(), 3u);  // the old {1,2,3} span
  EXPECT_EQ(db.TotalTokens(), 6u);
  // Neighbor untouched.
  EXPECT_EQ(db.set_size(b), 2u);
  EXPECT_EQ(db.set(b)[0], 4u);

  // Replacing a deleted id is an error, not a resurrection.
  ASSERT_TRUE(db.DeleteSet(b));
  EXPECT_FALSE(db.ReplaceSet(b, Rec({1}).view()));
  EXPECT_TRUE(db.is_deleted(b));
  EXPECT_FALSE(db.ReplaceSet(999, Rec({1}).view()));

  // Universe still grows through ReplaceSet.
  EXPECT_TRUE(db.ReplaceSet(a, Rec({50}).view()));
  EXPECT_GE(db.num_tokens(), 51u);
}

// ---------------------------------------------------------------------------
// Roaring / BitmapColumn Remove across container shapes.
// ---------------------------------------------------------------------------

TEST(MutabilityBitmapTest, RoaringRemoveArrayContainer) {
  bitmap::Roaring r;
  for (uint32_t v : {5u, 100u, 70000u}) r.Add(v);
  EXPECT_TRUE(r.Remove(100));
  EXPECT_FALSE(r.Contains(100));
  EXPECT_TRUE(r.Contains(5));
  EXPECT_TRUE(r.Contains(70000));
  EXPECT_EQ(r.Cardinality(), 2u);
  EXPECT_FALSE(r.Remove(100));  // already gone
  EXPECT_FALSE(r.Remove(12345));  // never present

  // Draining a chunk drops its container entirely.
  EXPECT_TRUE(r.Remove(70000));
  EXPECT_TRUE(r.Remove(5));
  EXPECT_TRUE(r.Empty());
}

TEST(MutabilityBitmapTest, RoaringRemoveBitsetContainer) {
  std::vector<uint32_t> values;
  for (uint32_t v = 0; v < 5000; ++v) values.push_back(v * 2);
  bitmap::Roaring r = bitmap::Roaring::FromSorted(values);
  ASSERT_EQ(r.Cardinality(), 5000u);  // > 4096 in one chunk -> bitset

  EXPECT_TRUE(r.Remove(2468));
  EXPECT_FALSE(r.Contains(2468));
  EXPECT_TRUE(r.Contains(2466));
  EXPECT_TRUE(r.Contains(2470));
  EXPECT_EQ(r.Cardinality(), 4999u);
  EXPECT_FALSE(r.Remove(3));  // odd value never present
}

TEST(MutabilityBitmapTest, RoaringRemoveRunContainer) {
  std::vector<uint32_t> values;
  for (uint32_t v = 10; v < 110; ++v) values.push_back(v);  // one run
  for (uint32_t v = 200; v < 210; ++v) values.push_back(v);
  bitmap::Roaring r = bitmap::Roaring::FromSorted(values);
  r.RunOptimize();

  // Middle of a run (splits it), run head, run tail, and a full miss.
  EXPECT_TRUE(r.Remove(50));
  EXPECT_TRUE(r.Remove(10));
  EXPECT_TRUE(r.Remove(109));
  EXPECT_FALSE(r.Remove(150));
  EXPECT_FALSE(r.Contains(50));
  EXPECT_FALSE(r.Contains(10));
  EXPECT_FALSE(r.Contains(109));
  EXPECT_TRUE(r.Contains(49));
  EXPECT_TRUE(r.Contains(51));
  EXPECT_TRUE(r.Contains(11));
  EXPECT_TRUE(r.Contains(108));
  EXPECT_EQ(r.Cardinality(), 107u);

  std::vector<uint32_t> expect;
  for (uint32_t v = 11; v < 109; ++v) {
    if (v != 50) expect.push_back(v);
  }
  for (uint32_t v = 200; v < 210; ++v) expect.push_back(v);
  EXPECT_EQ(r.ToVector(), expect);
}

TEST(MutabilityBitmapTest, ColumnRemoveBothBackends) {
  for (auto backend :
       {bitmap::BitmapBackend::kRoaring, bitmap::BitmapBackend::kBitVector}) {
    bitmap::BitmapColumn col(backend);
    col.Add(3);
    col.Add(17);
    col.Add(64);
    EXPECT_TRUE(col.Remove(17));
    EXPECT_FALSE(col.Remove(17));
    EXPECT_FALSE(col.Remove(99));
    EXPECT_FALSE(col.Contains(17));
    EXPECT_TRUE(col.Contains(3));
    EXPECT_TRUE(col.Contains(64));
    EXPECT_EQ(col.Cardinality(), 2u);
  }
}

// ---------------------------------------------------------------------------
// Tgm: RemoveSet / ReinsertSet / SplitGroup / RecomputeGroupColumns.
// ---------------------------------------------------------------------------

/// Two groups: g0 = {0:{0,1}, 1:{0,2}, 2:{0,3,4}}, g1 = {3:{5,6}}.
struct SmallTgm {
  SetDatabase db{8};
  std::vector<GroupId> assignment;
  std::unique_ptr<tgm::Tgm> tgm;

  SmallTgm() {
    db.AddSet(Rec({0, 1}).view());
    db.AddSet(Rec({0, 2}).view());
    db.AddSet(Rec({0, 3, 4}).view());
    db.AddSet(Rec({5, 6}).view());
    assignment = {0, 0, 0, 1};
    tgm = std::make_unique<tgm::Tgm>(db, assignment, 2);
  }
};

TEST(MutabilityTgmTest, RemoveSetErasesMemberAndChargesDirt) {
  SmallTgm f;
  ASSERT_EQ(f.tgm->group_size(0), 3u);
  ASSERT_EQ(f.tgm->group_dirt(0), 0u);

  EXPECT_TRUE(f.tgm->RemoveSet(1, 2));
  EXPECT_EQ(f.tgm->group_of(1), kInvalidGroup);
  EXPECT_EQ(f.tgm->group_size(0), 2u);
  EXPECT_EQ(f.tgm->group_dirt(0), 1u);
  EXPECT_EQ(f.tgm->TotalDirt(), 1u);
  // Members list no longer carries id 1.
  const auto& members = f.tgm->group_members(0);
  EXPECT_EQ(std::count(members.begin(), members.end(), SetId{1}), 0);

  // Column bits are NOT cleared (stale-bit debt, still admissible): token
  // 2 belonged only to set 1 yet M[0, 2] stays set.
  EXPECT_TRUE(f.tgm->Test(0, 2));

  // Double-remove and unknown ids fail.
  EXPECT_FALSE(f.tgm->RemoveSet(1, 2));
  EXPECT_FALSE(f.tgm->RemoveSet(99, 1));
}

TEST(MutabilityTgmTest, RemoveLastMemberDropsNonemptyCount) {
  SmallTgm f;
  ASSERT_EQ(f.tgm->num_nonempty_groups(), 2u);
  EXPECT_TRUE(f.tgm->RemoveSet(3, 2));
  EXPECT_EQ(f.tgm->group_size(1), 0u);
  EXPECT_EQ(f.tgm->num_nonempty_groups(), 1u);
}

TEST(MutabilityTgmTest, RecomputeGroupColumnsDropsStaleBits) {
  SmallTgm f;
  ASSERT_TRUE(f.tgm->RemoveSet(1, 2));
  f.db.DeleteSet(1);

  size_t dropped = f.tgm->RecomputeGroupColumns(0, f.db);
  EXPECT_EQ(dropped, 1u);  // token 2 was unique to the removed set
  EXPECT_FALSE(f.tgm->Test(0, 2));
  // Shared token 0 survives (sets 0 and 2 still carry it).
  EXPECT_TRUE(f.tgm->Test(0, 0));
  EXPECT_EQ(f.tgm->group_dirt(0), 0u);
  EXPECT_EQ(f.tgm->TotalDirt(), 0u);
}

TEST(MutabilityTgmTest, ReinsertSplicesAtSizeIdPosition) {
  SmallTgm f;
  // Update set 2 ({0,3,4}, size 3) down to size 1: it must land *before*
  // the size-2 members in its new group's (size, id)-ordered run.
  ASSERT_TRUE(f.tgm->RemoveSet(2, 3));
  ASSERT_TRUE(f.db.ReplaceSet(2, Rec({0}).view()));
  GroupId g = f.tgm->ReinsertSet(2, f.db.set(2), SimilarityMeasure::kJaccard);
  ASSERT_NE(g, kInvalidGroup);
  EXPECT_EQ(f.tgm->group_of(2), g);
  EXPECT_TRUE(f.tgm->Test(g, 0));

  const auto& members = f.tgm->group_members(g);
  auto pos = std::find(members.begin(), members.end(), SetId{2});
  ASSERT_NE(pos, members.end());
  // Every member before it is no larger; every member after no smaller.
  for (auto it = members.begin(); it != pos; ++it) {
    EXPECT_LE(f.db.set_size(*it), f.db.set_size(2));
  }
  for (auto it = pos + 1; it != members.end(); ++it) {
    EXPECT_GE(f.db.set_size(*it), f.db.set_size(2));
  }
}

TEST(MutabilityTgmTest, SplitGroupMovesUpperHalfToNewGroup) {
  SmallTgm f;
  ASSERT_EQ(f.tgm->num_groups(), 2u);
  GroupId fresh = f.tgm->SplitGroup(0, f.db);
  ASSERT_EQ(fresh, 2u);
  EXPECT_EQ(f.tgm->num_groups(), 3u);
  EXPECT_EQ(f.tgm->group_size(0) + f.tgm->group_size(2), 3u);
  EXPECT_GE(f.tgm->group_size(0), 1u);
  EXPECT_GE(f.tgm->group_size(2), 1u);

  // Moved members point at the new group; the largest set moved.
  for (SetId id : f.tgm->group_members(2)) {
    EXPECT_EQ(f.tgm->group_of(id), fresh);
    // New group's columns were built fresh from the moved members.
    for (TokenId t : f.db.set(id)) EXPECT_TRUE(f.tgm->Test(fresh, t));
  }
  EXPECT_EQ(f.tgm->group_of(2), fresh);  // size-3 set is the upper half

  // Source group carries the moved members' bits as dirt now.
  EXPECT_GT(f.tgm->group_dirt(0), 0u);

  // Singleton and empty groups refuse to split.
  EXPECT_EQ(f.tgm->SplitGroup(1, f.db), kInvalidGroup);
}

// ---------------------------------------------------------------------------
// Zero-count backfill can never resurrect a tombstoned set (satellite:
// Knn tie-handling / Describe audit). The deleted member is physically
// erased from its group run, so the backfill walk cannot see it.
// ---------------------------------------------------------------------------

TEST(MutabilityIndexTest, BackfillNeverResurrectsDeletedSets) {
  SetDatabase db(16);
  for (TokenId t = 0; t < 8; ++t) {
    db.AddSet(Rec({t, static_cast<TokenId>(t + 1)}).view());
  }
  std::vector<GroupId> assignment = {0, 0, 1, 1, 2, 2, 3, 3};
  search::Les3Index index(std::move(db), assignment, 4);

  ASSERT_TRUE(index.Delete(3));
  ASSERT_TRUE(index.Delete(6));

  // A query disjoint from every set: every live set is a similarity-0
  // tie, served purely by the zero-count backfill. Deleted ids must not
  // appear even with k spanning the whole database.
  SetRecord probe = Rec({15});
  auto hits = index.Knn(probe.view(), index.db().size());
  ASSERT_EQ(hits.size(), index.db().num_live());
  for (const auto& hit : hits) {
    EXPECT_NE(hit.first, 3u);
    EXPECT_NE(hit.first, 6u);
    EXPECT_DOUBLE_EQ(hit.second, 0.0);
  }
  // Tie order among the zero hits is ascending id.
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LT(hits[i - 1].first, hits[i].first);
  }

  // Range at delta 0 backfills too; same guarantee.
  auto range_hits = index.Range(probe.view(), 0.0);
  ASSERT_EQ(range_hits.size(), index.db().num_live());
  for (const auto& hit : range_hits) {
    EXPECT_NE(hit.first, 3u);
    EXPECT_NE(hit.first, 6u);
  }
}

// ---------------------------------------------------------------------------
// Maintenance policy.
// ---------------------------------------------------------------------------

TEST(MutabilityMaintenanceTest, GroupActivityObserveScoreDecay) {
  search::GroupActivity activity(2);
  activity.Observe(0, 4);  // 1 visit + 4 candidates
  activity.Observe(0, 0);
  activity.Observe(1, 9);
  activity.Observe(7, 100);  // out of range: dropped, not UB
  EXPECT_EQ(activity.Score(0), 6u);
  EXPECT_EQ(activity.Score(1), 10u);
  EXPECT_EQ(activity.Score(7), 0u);

  activity.Decay();
  EXPECT_EQ(activity.Score(0), 3u);
  EXPECT_EQ(activity.Score(1), 5u);

  activity.Grow(9);
  EXPECT_EQ(activity.Score(0), 3u);  // counts preserved across Grow
  activity.Observe(7, 0);
  EXPECT_EQ(activity.Score(7), 1u);
}

search::Les3Index MakeDriftedIndex(size_t* deleted_out) {
  datagen::ZipfOptions opts;
  opts.num_sets = 300;
  opts.num_tokens = 100;
  opts.avg_set_size = 6;
  opts.zipf_exponent = 0.8;
  opts.seed = 33;
  SetDatabase db = datagen::GenerateZipf(opts);
  std::vector<GroupId> assignment(db.size());
  for (SetId id = 0; id < db.size(); ++id) assignment[id] = id % 8;
  search::Les3Index index(std::move(db), assignment, 8);
  // Delete every 3rd set: plenty of stale bits in every group.
  size_t deleted = 0;
  for (SetId id = 0; id < index.db().size(); id += 3) {
    if (index.Delete(id)) ++deleted;
  }
  *deleted_out = deleted;
  return index;
}

TEST(MutabilityMaintenanceTest, CyclesHealDirtWithoutChangingAnswers) {
  size_t deleted = 0;
  search::Les3Index index = MakeDriftedIndex(&deleted);
  ASSERT_GT(index.tgm().TotalDirt(), 0u);

  SetRecord probe = Rec({1, 2, 3, 9});
  auto before = index.Knn(probe.view(), 20);

  search::MaintenanceOptions options;
  options.dirt_ratio = 0.0;       // every dirty group is due
  options.max_ops_per_cycle = 4;  // but cycles stay bounded
  search::MaintenanceReport total;
  size_t cycles = 0;
  while (index.tgm().TotalDirt() > 0) {
    search::MaintenanceReport report =
        search::MaintainIndexOnce(&index, options);
    ASSERT_LE(report.splits + report.recomputes, options.max_ops_per_cycle);
    ASSERT_GT(report.splits + report.recomputes, 0u)
        << "no progress with dirt remaining";
    total += report;
    ASSERT_LT(++cycles, 1000u);
  }
  EXPECT_GT(total.recomputes, 0u);
  EXPECT_GT(total.bits_dropped, 0u);
  EXPECT_EQ(index.tgm().TotalDirt(), 0u);

  // Healing only drops stale bits — answers are bit-for-bit identical.
  auto after = index.Knn(probe.view(), 20);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].first, after[i].first);
    EXPECT_DOUBLE_EQ(before[i].second, after[i].second);
  }
}

TEST(MutabilityMaintenanceTest, SplitsOvergrownGroupsAtTheMedian) {
  // Group 0 holds 60 members, groups 1..3 hold 4 each: mean live size is
  // 18, so factor 2.0 flags only group 0.
  SetDatabase db(64);
  std::vector<GroupId> assignment;
  for (int i = 0; i < 60; ++i) {
    db.AddSet(Rec({static_cast<TokenId>(i % 50),
                   static_cast<TokenId>((i + 7) % 50)})
                  .view());
    assignment.push_back(0);
  }
  for (int i = 0; i < 12; ++i) {
    db.AddSet(Rec({static_cast<TokenId>(50 + i % 10)}).view());
    assignment.push_back(static_cast<GroupId>(1 + i % 3));
  }
  search::Les3Index index(std::move(db), assignment, 4);

  SetRecord probe = Rec({3, 10, 52});
  auto before = index.Knn(probe.view(), 15);

  search::MaintenanceOptions options;
  options.overgrown_factor = 2.0;
  options.min_split_size = 8;
  options.max_ops_per_cycle = 8;
  search::GroupActivity activity(index.tgm().num_groups());
  search::MaintenanceReport report =
      search::MaintainIndexOnce(&index, options, &activity);
  EXPECT_GE(report.splits, 1u);
  EXPECT_GT(index.tgm().num_groups(), 4u);
  // Activity tracker grew alongside the matrix.
  EXPECT_EQ(activity.size(), index.tgm().num_groups());
  // No group is left above the (new) overgrown threshold by more than
  // one cycle's backlog; the flagged group at least halved.
  EXPECT_LE(index.tgm().group_size(0), 30u);

  auto after = index.Knn(probe.view(), 15);
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].first, after[i].first);
    EXPECT_DOUBLE_EQ(before[i].second, after[i].second);
  }
}

TEST(MutabilityMaintenanceTest, OpsPerCycleBoundsTheCriticalSection) {
  size_t deleted = 0;
  search::Les3Index index = MakeDriftedIndex(&deleted);
  search::MaintenanceOptions options;
  options.dirt_ratio = 0.0;
  options.max_ops_per_cycle = 1;
  search::MaintenanceReport report = search::MaintainIndexOnce(&index, options);
  EXPECT_EQ(report.splits + report.recomputes, 1u);
}

// ---------------------------------------------------------------------------
// Engine-level contract: statuses, Describe population, StableDb.
// ---------------------------------------------------------------------------

std::unique_ptr<api::SearchEngine> BuildEngine(const std::string& backend,
                                               size_t num_shards = 0) {
  datagen::ZipfOptions opts;
  opts.num_sets = 120;
  opts.num_tokens = 60;
  opts.avg_set_size = 5;
  opts.seed = 17;
  auto db = std::make_shared<SetDatabase>(datagen::GenerateZipf(opts));
  api::EngineOptions options;
  options.num_groups = 8;
  options.cascade.init_groups = 8;
  options.cascade.min_group_size = 8;
  options.cascade.pairs_per_model = 500;
  options.cascade.seed = 5;
  if (num_shards > 0) options.num_shards = num_shards;
  auto engine = api::EngineBuilder::Build(std::move(db), backend, options);
  EXPECT_TRUE(engine.ok()) << backend << ": " << engine.status().ToString();
  return engine.ok() ? std::move(engine).ValueOrDie() : nullptr;
}

TEST(MutabilityEngineTest, DeleteUpdateStatusContract) {
  for (const std::string& backend : {"les3", "brute_force"}) {
    auto engine = BuildEngine(backend);
    ASSERT_NE(engine, nullptr) << backend;

    EXPECT_EQ(engine->Delete(999999).code(), StatusCode::kNotFound) << backend;
    EXPECT_EQ(engine->Update(999999, Rec({1, 2})).code(),
              StatusCode::kNotFound)
        << backend;

    ASSERT_TRUE(engine->Delete(5).ok()) << backend;
    EXPECT_EQ(engine->Delete(5).code(), StatusCode::kNotFound)
        << backend << ": double delete";
    EXPECT_EQ(engine->Update(5, Rec({1, 2})).code(), StatusCode::kNotFound)
        << backend << ": update of deleted id";

    // Update keeps the id and changes answers.
    ASSERT_TRUE(engine->Update(7, Rec({55, 56, 57})).ok()) << backend;
    api::QueryResult result = engine->Knn(Rec({55, 56, 57}).view(), 1);
    ASSERT_TRUE(result.status.ok()) << backend;
    ASSERT_EQ(result.hits.size(), 1u) << backend;
    EXPECT_EQ(result.hits[0].first, 7u) << backend;
    EXPECT_DOUBLE_EQ(result.hits[0].second, 1.0) << backend;

    // Describe reports the live/deleted population once holes exist.
    std::string describe = engine->Describe();
    EXPECT_NE(describe.find("deleted=1"), std::string::npos)
        << backend << ": " << describe;
    EXPECT_NE(describe.find("live="), std::string::npos) << backend;
  }
}

TEST(MutabilityEngineTest, DefaultStableDbAliasesTheLiveDatabase) {
  // Engines on the serialized-mutation contract return a no-copy alias;
  // the caller already must not mutate concurrently.
  auto engine = BuildEngine("les3");
  ASSERT_NE(engine, nullptr);
  std::shared_ptr<const SetDatabase> view = engine->StableDb();
  EXPECT_EQ(view.get(), &engine->db());
}

TEST(MutabilityEngineTest, ShardedStableDbIsIsolatedFromLaterMutations) {
  auto engine = BuildEngine("sharded_les3", 3);
  ASSERT_NE(engine, nullptr);

  std::shared_ptr<const SetDatabase> view = engine->StableDb();
  const size_t size_before = view->size();
  const size_t live_before = view->num_live();
  std::vector<TokenId> tokens7(view->set(7).begin(), view->set(7).end());

  ASSERT_TRUE(engine->Delete(3).ok());
  ASSERT_TRUE(engine->Update(7, Rec({58, 59})).ok());
  ASSERT_TRUE(engine->Insert(Rec({1, 2, 3})).ok());

  EXPECT_EQ(view->size(), size_before);
  EXPECT_EQ(view->num_live(), live_before);
  EXPECT_FALSE(view->is_deleted(3));
  std::vector<TokenId> tokens7_after(view->set(7).begin(),
                                     view->set(7).end());
  EXPECT_EQ(tokens7, tokens7_after);

  // A fresh view sees the mutations.
  std::shared_ptr<const SetDatabase> fresh = engine->StableDb();
  EXPECT_EQ(fresh->size(), size_before + 1);
  EXPECT_TRUE(fresh->is_deleted(3));
  EXPECT_EQ(fresh->set_size(7), 2u);
}

}  // namespace
}  // namespace les3
