// Tests for the sharded scatter-gather engine (shard/sharded_engine.h):
// exact agreement with brute force across shard counts (the differential
// property suite also holds it to that on every measure), correct global
// top-k when shards hold fewer than k sets, insert routing, shard
// reporting, and the sharded (v2) snapshot round trip — save, reopen with
// zero retraining, answer identically, reject corruption and
// version/backend mismatches.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/engine_builder.h"
#include "api/engine_options.h"
#include "datagen/generators.h"
#include "persist/snapshot.h"

namespace les3 {
namespace api {
namespace {

std::shared_ptr<SetDatabase> MakeDb(uint64_t seed, uint32_t num_sets = 300,
                                    uint32_t num_tokens = 90) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = num_tokens;
  opts.avg_set_size = 7;
  opts.zipf_exponent = 0.9;
  opts.seed = seed;
  return std::make_shared<SetDatabase>(datagen::GenerateZipf(opts));
}

EngineOptions FastOptions(uint32_t num_shards) {
  EngineOptions options;
  options.backend = Backend::kShardedLes3;
  options.num_shards = num_shards;
  options.num_groups = 12;
  options.cascade.init_groups = 8;
  options.cascade.min_group_size = 6;
  options.cascade.pairs_per_model = 1000;
  options.cascade.seed = 17;
  return options;
}

std::unique_ptr<SearchEngine> MustBuild(std::shared_ptr<SetDatabase> db,
                                        const EngineOptions& options) {
  auto engine = EngineBuilder::Build(std::move(db), options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

void ExpectExactHits(const std::vector<Hit>& expected,
                     const std::vector<Hit>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first) << label << " rank " << i;
    EXPECT_DOUBLE_EQ(expected[i].second, actual[i].second)
        << label << " rank " << i;
  }
}

TEST(ShardedEngineTest, MatchesBruteForceAcrossShardCounts) {
  auto db = MakeDb(5);
  EngineOptions reference_options;
  reference_options.backend = Backend::kBruteForce;
  auto reference = MustBuild(db, reference_options);
  for (uint32_t shards : {1u, 3u, 7u}) {
    auto engine = MustBuild(db, FastOptions(shards));
    for (SetId qid : {0u, 13u, 77u, 299u}) {
      SetView q = db->set(qid);
      for (size_t k : {1u, 5u, 20u}) {
        ExpectExactHits(reference->Knn(q, k).hits, engine->Knn(q, k).hits,
                        "shards=" + std::to_string(shards) +
                            " knn k=" + std::to_string(k) +
                            " q=" + std::to_string(qid));
      }
      for (double delta : {0.3, 0.6}) {
        ExpectExactHits(reference->Range(q, delta).hits,
                        engine->Range(q, delta).hits,
                        "shards=" + std::to_string(shards) +
                            " range d=" + std::to_string(delta) +
                            " q=" + std::to_string(qid));
      }
    }
  }
}

TEST(ShardedEngineTest, GlobalKExactWhenShardsHoldFewerThanK) {
  // 10 sets across 5 shards: every shard holds 2 sets, so any k > 2
  // forces the merge to assemble the global answer from under-full
  // shards (and k > 10 must return the whole database in HitOrder).
  auto db = MakeDb(6, /*num_sets=*/10, /*num_tokens=*/25);
  EngineOptions reference_options;
  reference_options.backend = Backend::kBruteForce;
  auto reference = MustBuild(db, reference_options);
  auto engine = MustBuild(db, FastOptions(5));
  for (SetId qid = 0; qid < db->size(); ++qid) {
    SetView q = db->set(qid);
    for (size_t k : {3u, 10u, 25u}) {
      ExpectExactHits(reference->Knn(q, k).hits, engine->Knn(q, k).hits,
                      "k=" + std::to_string(k) + " q=" + std::to_string(qid));
    }
  }
}

TEST(ShardedEngineTest, BatchMatchesSequential) {
  auto db = MakeDb(7);
  auto engine = MustBuild(db, FastOptions(3));
  std::vector<SetRecord> queries;
  for (SetId qid = 0; qid < 20; ++qid) queries.emplace_back(db->set(qid * 11));
  auto knn_batch = engine->KnnBatch(queries, 8);
  auto range_batch = engine->RangeBatch(queries, 0.5);
  ASSERT_EQ(knn_batch.size(), queries.size());
  ASSERT_EQ(range_batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectExactHits(engine->Knn(queries[i], 8).hits, knn_batch[i].hits,
                    "knn batch q=" + std::to_string(i));
    ExpectExactHits(engine->Range(queries[i], 0.5).hits, range_batch[i].hits,
                    "range batch q=" + std::to_string(i));
  }
}

TEST(ShardedEngineTest, InsertRoutesToOneShardAndIsImmediatelyVisible) {
  auto db = MakeDb(8);
  auto engine = MustBuild(db, FastOptions(3));
  size_t before = engine->db().size();
  for (int i = 0; i < 7; ++i) {
    SetRecord novel = SetRecord::FromTokens(
        {static_cast<TokenId>(200 + i), static_cast<TokenId>(300 + i), 5});
    auto id = engine->Insert(novel);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(id.value(), before + static_cast<size_t>(i));
    auto top = engine->Knn(novel, 1);
    ASSERT_EQ(top.hits.size(), 1u);
    EXPECT_EQ(top.hits[0].first, id.value());
    EXPECT_DOUBLE_EQ(top.hits[0].second, 1.0);
  }
  EXPECT_EQ(engine->db().size(), before + 7);

  // After the inserts the engine must still agree exactly with brute
  // force over the grown database.
  EngineOptions reference_options;
  reference_options.backend = Backend::kBruteForce;
  auto reference = MustBuild(db, reference_options);
  for (SetId qid : {1u, 100u, static_cast<SetId>(before + 3)}) {
    SetView q = engine->db().set(qid);
    ExpectExactHits(reference->Knn(q, 10).hits, engine->Knn(q, 10).hits,
                    "post-insert knn q=" + std::to_string(qid));
    ExpectExactHits(reference->Range(q, 0.4).hits, engine->Range(q, 0.4).hits,
                    "post-insert range q=" + std::to_string(qid));
  }
}

TEST(ShardedEngineTest, DescribeReportsShards) {
  auto engine = MustBuild(MakeDb(9), FastOptions(3));
  std::string describe = engine->Describe();
  EXPECT_EQ(describe.rfind("sharded_les3(", 0), 0u) << describe;
  EXPECT_NE(describe.find("shards=3"), std::string::npos) << describe;
  EXPECT_NE(describe.find("groups=["), std::string::npos) << describe;
}

TEST(ShardedEngineTest, ShardCountClampedToDatabaseSize) {
  auto db = MakeDb(10, /*num_sets=*/5, /*num_tokens=*/20);
  auto engine = MustBuild(db, FastOptions(64));
  EXPECT_NE(engine->Describe().find("shards=5"), std::string::npos)
      << engine->Describe();
  auto top = engine->Knn(db->set(2), 5);
  EXPECT_EQ(top.hits.size(), 5u);
}

TEST(ShardedEngineTest, ZeroShardsRejected) {
  auto engine = EngineBuilder::Build(MakeDb(11), FastOptions(0));
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Sharded (v2) snapshots.

class ShardedSnapshotTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    std::string path = ::testing::TempDir() + "les3_shard_" + name + ".snap";
    paths_.push_back(path);
    return path;
  }
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::vector<std::string> paths_;
};

TEST_F(ShardedSnapshotTest, SaveOpenRoundTripAnswersIdentically) {
  auto db = MakeDb(12);
  auto original = MustBuild(db, FastOptions(3));
  // A couple of inserts first: the snapshot must capture the grown state.
  ASSERT_TRUE(original->Insert(SetRecord::FromTokens({1, 2, 88})).ok());
  ASSERT_TRUE(original->Insert(SetRecord::FromTokens({3, 91, 95})).ok());

  std::string path = Path("roundtrip");
  ASSERT_TRUE(original->Save(path).ok());
  auto reloaded = EngineBuilder::Open(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_NE(reloaded.value()->Describe().find("snapshot=v2"),
            std::string::npos)
      << reloaded.value()->Describe();
  EXPECT_NE(reloaded.value()->Describe().find("shards=3"), std::string::npos);
  EXPECT_EQ(reloaded.value()->db().size(), original->db().size());
  EXPECT_EQ(reloaded.value()->IndexBytes(), original->IndexBytes());

  for (SetId qid = 0; qid < original->db().size(); qid += 17) {
    SetView q = original->db().set(qid);
    for (size_t k : {1u, 7u, 40u}) {
      ExpectExactHits(original->Knn(q, k).hits, reloaded.value()->Knn(q, k).hits,
                      "knn k=" + std::to_string(k) +
                          " q=" + std::to_string(qid));
    }
    ExpectExactHits(original->Range(q, 0.5).hits,
                    reloaded.value()->Range(q, 0.5).hits,
                    "range q=" + std::to_string(qid));
  }

  // The reopened engine keeps the upgraded contract: inserts still work
  // and route consistently with the re-derived id-mod-S mapping.
  size_t before = reloaded.value()->db().size();
  auto id = reloaded.value()->Insert(SetRecord::FromTokens({4, 5, 6}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), before);
}

TEST_F(ShardedSnapshotTest, ExplicitBackendMustMatchSnapshotKind) {
  auto db = MakeDb(13);
  auto sharded = MustBuild(db, FastOptions(2));
  std::string sharded_path = Path("kind_sharded");
  ASSERT_TRUE(sharded->Save(sharded_path).ok());

  EngineOptions single_options;
  single_options.num_groups = 12;
  single_options.cascade = FastOptions(1).cascade;
  auto single = MustBuild(db, single_options);
  std::string single_path = Path("kind_single");
  ASSERT_TRUE(single->Save(single_path).ok());

  // Explicit sharded open of a sharded snapshot works.
  OpenOptions open;
  open.backend = "sharded_les3";
  EXPECT_TRUE(EngineBuilder::Open(sharded_path, open).ok());
  // A sharded snapshot cannot reopen single-index, nor vice versa.
  open.backend = "les3";
  EXPECT_FALSE(EngineBuilder::Open(sharded_path, open).ok());
  open.backend = "disk_les3";
  EXPECT_FALSE(EngineBuilder::Open(sharded_path, open).ok());
  open.backend = "sharded_les3";
  EXPECT_FALSE(EngineBuilder::Open(single_path, open).ok());
}

TEST_F(ShardedSnapshotTest, OneShardSnapshotRoundTrips) {
  auto db = MakeDb(14, /*num_sets=*/120);
  auto original = MustBuild(db, FastOptions(1));
  std::string path = Path("one_shard");
  ASSERT_TRUE(original->Save(path).ok());
  auto reloaded = EngineBuilder::Open(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  SetView q = db->set(3);
  ExpectExactHits(original->Knn(q, 9).hits, reloaded.value()->Knn(q, 9).hits,
                  "one-shard knn");
}

TEST_F(ShardedSnapshotTest, EveryTruncationOfShardedSnapshotFails) {
  auto db = MakeDb(15, /*num_sets=*/60, /*num_tokens=*/30);
  auto engine = MustBuild(db, FastOptions(3));
  std::string path = Path("trunc");
  ASSERT_TRUE(engine->Save(path).ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(persist::ReadFileBytes(path, &bytes).ok());
  ASSERT_TRUE(persist::DecodeSnapshot(bytes.data(), bytes.size()).ok());
  // Step 7 keeps the sweep fast; truncation failures are byte-local.
  for (size_t len = 0; len < bytes.size(); len += 7) {
    EXPECT_FALSE(persist::DecodeSnapshot(bytes.data(), len).ok())
        << "truncation at " << len << " of " << bytes.size();
  }
}

TEST_F(ShardedSnapshotTest, ShardCountMismatchRejected) {
  auto db = MakeDb(16, /*num_sets=*/60, /*num_tokens=*/30);
  auto engine = MustBuild(db, FastOptions(3));
  std::string path = Path("mismatch");
  ASSERT_TRUE(engine->Save(path).ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(persist::ReadFileBytes(path, &bytes).ok());
  // The META chunk is the first chunk; its num_shards u32 is the last
  // field of its payload. Flipping it breaks the META<->PART agreement
  // (and the CRC, were it not recomputed) — corrupt via a full re-encode
  // instead: decode, then lie about the shard count.
  auto loaded = persist::DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(loaded.ok());
  persist::SnapshotMeta meta = loaded.value().meta;
  const SetDatabase& global = *loaded.value().db;
  // Rebuild the id-mod-S local slices the encoder compacts columns
  // against (the snapshot under test is clean, so no holes to mirror).
  std::vector<SetDatabase> locals;
  for (size_t s = 0; s < loaded.value().shards.size(); ++s) {
    SetDatabase local(global.num_tokens());
    for (SetId id = static_cast<SetId>(s); id < global.size();
         id += static_cast<SetId>(loaded.value().shards.size())) {
      local.AddSet(global.set(id));
    }
    locals.push_back(std::move(local));
  }
  std::vector<const tgm::Tgm*> tgms;
  std::vector<const SetDatabase*> local_dbs;
  for (size_t s = 0; s < loaded.value().shards.size(); ++s) {
    tgms.push_back(&loaded.value().shards[s].tgm);
    local_dbs.push_back(&locals[s]);
  }
  tgms.pop_back();  // claim 2 shards' worth of chunks for a 3-shard split
  local_dbs.pop_back();
  persist::ByteWriter writer;
  persist::EncodeShardedSnapshot(meta, global, tgms, local_dbs, &writer);
  auto result =
      persist::DecodeSnapshot(writer.data().data(), writer.data().size());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace api
}  // namespace les3
