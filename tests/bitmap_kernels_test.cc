// Differential tests for the batched accumulation kernels and the
// pluggable BitmapColumn: every container-aware fast path must produce
// exactly what the per-bit ForEach reference produces, for every container
// kind and both backends.

#include "bitmap/bitmap_column.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bitmap/kernels.h"
#include "bitmap/kernels_simd.h"
#include "core/simd_dispatch.h"
#include "util/random.h"

namespace les3 {
namespace bitmap {
namespace {

constexpr uint32_t kUniverse = 3000;  // one chunk, bitset-capable

/// Runs `fn` once pinned to each dispatch level this machine supports
/// (always at least scalar), restoring normal dispatch afterwards.
template <typename Fn>
void ForEachDispatchLevel(Fn&& fn) {
  for (simd::Level level : simd::SupportedLevels()) {
    SCOPED_TRACE(std::string("dispatch level ") + simd::LevelName(level));
    simd::SetLevelForTesting(level);
    fn();
  }
  simd::ClearLevelForTesting();
}

/// Value layouts that force each Roaring container kind within kUniverse.
std::vector<uint32_t> ArrayValues() {
  std::vector<uint32_t> v;
  for (uint32_t i = 0; i < 200; ++i) v.push_back(i * 13 % kUniverse);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

std::vector<uint32_t> DenseValues() {
  // > 4096 would leave the chunk; instead spread over several chunks so at
  // least one becomes a bitset: use a wider universe for the bitset case.
  std::vector<uint32_t> v;
  for (uint32_t i = 0; i < 5000; ++i) v.push_back(i * 2);  // 0..9998, sparse
  return v;
}

std::vector<uint32_t> RunValues() {
  std::vector<uint32_t> v;
  for (uint32_t i = 100; i < 900; ++i) v.push_back(i);
  for (uint32_t i = 1500; i < 2800; ++i) v.push_back(i);
  return v;
}

/// Reference accumulation through ForEach.
std::vector<uint32_t> ReferenceCounts(const BitmapColumn& col,
                                      uint32_t num_groups, uint32_t weight,
                                      std::vector<uint32_t> base = {}) {
  base.resize(num_groups, 0);
  col.ForEach([&](uint32_t v) { base[v] += weight; });
  return base;
}

class BitmapColumnBackendTest
    : public ::testing::TestWithParam<BitmapBackend> {};

TEST_P(BitmapColumnBackendTest, AccumulateMatchesForEachPerKind) {
  ForEachDispatchLevel([this] {
    for (const auto& values : {ArrayValues(), DenseValues(), RunValues()}) {
      uint32_t n = values.back() + 1;
      BitmapColumn col = BitmapColumn::FromSorted(GetParam(), values);
      if (GetParam() == BitmapBackend::kRoaring) col.RunOptimize();
      // Accumulator path (runs go through the difference array).
      std::vector<uint32_t> counts;
      GroupCountAccumulator acc(n, &counts);
      col.AccumulateInto(acc, 3);
      acc.Finish();
      EXPECT_EQ(counts, ReferenceCounts(col, n, 3));
      // Direct-array path.
      std::vector<uint32_t> direct(n, 0);
      col.AccumulateInto(direct.data(), direct.size(), 3);
      EXPECT_EQ(direct, ReferenceCounts(col, n, 3));
    }
  });
}

TEST(AccumulateWordsTest, VectorTiersMatchScalarAtEveryBoundary) {
  // The vector kernels read-modify-write whole 64-counter word spans; the
  // dangerous inputs are counter arrays that end mid-word, density around
  // the vectorization cutoff, and bits at lane boundaries. Differential
  // against the scalar kernel over random words at every dispatch level,
  // with counts_size swept across the last word.
  Rng rng(53);
  for (int trial = 0; trial < 60; ++trial) {
    const size_t num_words = 1 + rng.Uniform(8);
    std::vector<uint64_t> words(num_words);
    for (auto& w : words) {
      switch (rng.Uniform(4)) {
        case 0: w = 0; break;                        // empty
        case 1: w = rng.Next(); break;               // ~50% density
        case 2: w = rng.Next() & rng.Next() & rng.Next(); break;  // sparse
        default: w = ~uint64_t{0}; break;            // full
      }
    }
    const uint32_t base = static_cast<uint32_t>(rng.Uniform(3)) * 64;
    const uint32_t weight = 1 + static_cast<uint32_t>(rng.Uniform(5));
    // Sweep the array end across the final word (and give slack past it).
    for (size_t tail : {size_t{0}, size_t{1}, size_t{17}, size_t{63},
                        size_t{64}, size_t{130}}) {
      const size_t counts_size = base + (num_words - 1) * 64 + tail;
      // Drop bits the scalar kernel would write out of bounds — the
      // contract (bitvector.cc enforces it structurally) is that no set
      // bit maps past the counter array.
      std::vector<uint64_t> clipped = words;
      for (size_t w = 0; w < num_words; ++w) {
        for (int bit = 0; bit < 64; ++bit) {
          if (base + w * 64 + bit >= counts_size) {
            clipped[w] &= ~(uint64_t{1} << bit);
          }
        }
      }
      std::vector<uint32_t> expected(counts_size, 0);
      AccumulateWordsScalar(clipped.data(), num_words, base, expected.data(),
                            weight);
      ForEachDispatchLevel([&] {
        std::vector<uint32_t> counts(counts_size, 0);
        AccumulateWords(clipped.data(), num_words, base, counts.data(),
                        weight, counts_size);
        ASSERT_EQ(counts, expected)
            << "words=" << num_words << " base=" << base << " tail=" << tail;
      });
    }
  }
}

TEST(ArrayAccumulateTest, VectorTierMatchesScalarEveryLength) {
  // Array-container bulk add: every length through 2x the gather width,
  // random strictly-increasing uint16 values, at every dispatch level.
  Rng rng(59);
  for (size_t len = 0; len <= 33; ++len) {
    std::set<uint16_t> unique;
    while (unique.size() < len) {
      unique.insert(static_cast<uint16_t>(rng.Uniform(1u << 16)));
    }
    std::vector<uint16_t> values(unique.begin(), unique.end());
    const uint32_t base = static_cast<uint32_t>(rng.Uniform(2)) << 16;
    const uint32_t weight = 1 + static_cast<uint32_t>(rng.Uniform(4));
    const size_t counts_size = base + (1u << 16);
    std::vector<uint32_t> expected(counts_size, 0);
    for (uint16_t v : values) expected[base + v] += weight;
    ForEachDispatchLevel([&] {
      std::vector<uint32_t> counts(counts_size, 0);
      ArrayAccumulate(values.data(), values.size(), base, counts.data(),
                      weight);
      ASSERT_EQ(counts, expected) << "len=" << len << " base=" << base;
    });
  }
}

TEST_P(BitmapColumnBackendTest, AccumulatorFusesManyColumns) {
  Rng rng(17);
  std::vector<BitmapColumn> cols;
  std::vector<uint32_t> weights;
  std::vector<uint32_t> expected(kUniverse, 0);
  for (int c = 0; c < 20; ++c) {
    std::set<uint32_t> vals;
    size_t card = 1 + rng.Uniform(400);
    // Mix point sets and contiguous blocks so RunOptimize produces a mix
    // of container kinds across the columns.
    if (c % 3 == 0) {
      uint32_t start = static_cast<uint32_t>(rng.Uniform(kUniverse - 500));
      for (uint32_t i = 0; i < 400; ++i) vals.insert(start + i);
    } else {
      for (size_t i = 0; i < card; ++i) {
        vals.insert(static_cast<uint32_t>(rng.Uniform(kUniverse)));
      }
    }
    uint32_t w = 1 + static_cast<uint32_t>(rng.Uniform(4));
    BitmapColumn col = BitmapColumn::FromSorted(
        GetParam(), std::vector<uint32_t>(vals.begin(), vals.end()));
    if (c % 2 == 0) col.RunOptimize();
    for (uint32_t v : vals) expected[v] += w;
    cols.push_back(std::move(col));
    weights.push_back(w);
  }
  std::vector<uint32_t> counts;
  GroupCountAccumulator acc(kUniverse, &counts);
  for (size_t c = 0; c < cols.size(); ++c) {
    cols[c].AccumulateInto(acc, weights[c]);
  }
  acc.Finish();
  EXPECT_EQ(counts, expected);
}

TEST_P(BitmapColumnBackendTest, BasicOpsMatchReferenceModel) {
  Rng rng(23);
  BitmapColumn col(GetParam());
  std::set<uint32_t> ref;
  for (int i = 0; i < 4000; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(1u << 16));
    col.Add(v);
    ref.insert(v);
  }
  EXPECT_EQ(col.Cardinality(), ref.size());
  EXPECT_FALSE(col.Empty());
  EXPECT_EQ(col.ToVector(), std::vector<uint32_t>(ref.begin(), ref.end()));
  for (int i = 0; i < 2000; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(1u << 16));
    EXPECT_EQ(col.Contains(v), ref.count(v) > 0);
  }
  col.RunOptimize();
  EXPECT_EQ(col.ToVector(), std::vector<uint32_t>(ref.begin(), ref.end()));
}

TEST_P(BitmapColumnBackendTest, WeightedIntersectMatchesContains) {
  Rng rng(29);
  BitmapColumn col(GetParam());
  std::set<uint32_t> ref;
  for (int i = 0; i < 3000; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(1u << 18));
    col.Add(v);
    ref.insert(v);
  }
  std::vector<std::pair<uint32_t, uint32_t>> probes;
  uint64_t expected = 0;
  for (int i = 0; i < 1000; ++i) {
    uint32_t v = static_cast<uint32_t>(rng.Uniform(1u << 18));
    uint32_t w = 1 + static_cast<uint32_t>(rng.Uniform(5));
    probes.emplace_back(v, w);
  }
  std::sort(probes.begin(), probes.end());
  for (const auto& [v, w] : probes) {
    if (ref.count(v)) expected += w;
  }
  EXPECT_EQ(col.WeightedIntersect(probes.data(), probes.size()), expected);
}

TEST_P(BitmapColumnBackendTest, EmptyColumn) {
  BitmapColumn col(GetParam());
  EXPECT_TRUE(col.Empty());
  EXPECT_EQ(col.Cardinality(), 0u);
  EXPECT_FALSE(col.Contains(0));
  std::vector<uint32_t> counts;
  GroupCountAccumulator acc(16, &counts);
  col.AccumulateInto(acc, 2);
  acc.Finish();
  EXPECT_EQ(counts, std::vector<uint32_t>(16, 0));
}

INSTANTIATE_TEST_SUITE_P(Backends, BitmapColumnBackendTest,
                         ::testing::Values(BitmapBackend::kRoaring,
                                           BitmapBackend::kBitVector),
                         [](const auto& info) { return ToString(info.param); });

TEST(GroupCountAccumulatorTest, RangesFoldExactly) {
  std::vector<uint32_t> counts;
  GroupCountAccumulator acc(10, &counts);
  acc.counts()[2] += 5;
  acc.AddRange(0, 3, 2);
  acc.AddRange(3, 9, 1);
  acc.AddRange(9, 9, 7);
  acc.Finish();
  EXPECT_EQ(counts,
            (std::vector<uint32_t>{2, 2, 7, 3, 1, 1, 1, 1, 1, 8}));
}

TEST(GroupCountAccumulatorTest, ResetClearsState) {
  std::vector<uint32_t> counts;
  GroupCountAccumulator acc(4, &counts);
  acc.AddRange(0, 3, 9);
  acc.Finish();
  acc.Reset(6, &counts);
  acc.Finish();
  EXPECT_EQ(counts, std::vector<uint32_t>(6, 0));
}

TEST(BitmapBackendTest, ParseRoundTrips) {
  for (BitmapBackend b :
       {BitmapBackend::kRoaring, BitmapBackend::kBitVector}) {
    auto parsed = ParseBitmapBackend(ToString(b));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), b);
  }
  EXPECT_FALSE(ParseBitmapBackend("ewah").ok());
}

}  // namespace
}  // namespace bitmap
}  // namespace les3
