// Tests for partition/: metrics (GPO, U, balance), sorted initialization,
// and the four algorithmic partitioners PAR-C/D/A/G.

#include <gtest/gtest.h>

#include <memory>

#include "datagen/generators.h"
#include "partition/metrics.h"
#include "partition/par_a.h"
#include "partition/par_c.h"
#include "partition/par_d.h"
#include "partition/par_g.h"
#include "partition/partitioner.h"
#include "partition/sorted_init.h"
#include "util/random.h"

namespace les3 {
namespace partition {
namespace {

SetDatabase ClusteredDb(uint32_t clusters, uint32_t per_cluster,
                        uint64_t seed) {
  Rng rng(seed);
  SetDatabase db(clusters * 30);
  for (uint32_t c = 0; c < clusters; ++c) {
    for (uint32_t i = 0; i < per_cluster; ++i) {
      std::vector<TokenId> tokens;
      for (int j = 0; j < 8; ++j) {
        tokens.push_back(static_cast<TokenId>(30 * c + rng.Uniform(30)));
      }
      db.AddSet(SetRecord::FromTokens(std::move(tokens)));
    }
  }
  return db;
}

TEST(MetricsTest, ExactGpoByHand) {
  SetDatabase db(10);
  db.AddSet(SetRecord::FromTokens({1, 2}));   // set 0
  db.AddSet(SetRecord::FromTokens({1, 2}));   // set 1, identical
  db.AddSet(SetRecord::FromTokens({5, 6}));   // set 2, disjoint
  // Groups {0,1} and {2}: intra distances = 2 * (1 - 1.0) = 0.
  EXPECT_DOUBLE_EQ(ExactGpo(db, {0, 0, 1}, 2, SimilarityMeasure::kJaccard),
                   0.0);
  // Groups {0,2} and {1}: intra distance = 2 * (1 - 0) = 2.
  EXPECT_DOUBLE_EQ(ExactGpo(db, {0, 1, 0}, 2, SimilarityMeasure::kJaccard),
                   2.0);
}

TEST(MetricsTest, EstimateGpoTracksExact) {
  SetDatabase db = ClusteredDb(3, 30, 1);
  Rng rng(2);
  std::vector<GroupId> assignment(db.size());
  for (auto& g : assignment) g = static_cast<GroupId>(rng.Uniform(6));
  double exact = ExactGpo(db, assignment, 6, SimilarityMeasure::kJaccard);
  double est =
      EstimateGpo(db, assignment, 6, SimilarityMeasure::kJaccard, 2000, 3);
  EXPECT_NEAR(est, exact, exact * 0.15);
}

TEST(MetricsTest, UnionObjectiveByHand) {
  SetDatabase db(10);
  db.AddSet(SetRecord::FromTokens({1, 2}));
  db.AddSet(SetRecord::FromTokens({2, 3}));
  db.AddSet(SetRecord::FromTokens({7}));
  EXPECT_EQ(UnionObjective(db, {0, 0, 1}, 2), 3u + 1u);
  EXPECT_EQ(UnionObjective(db, {0, 1, 0}, 2), 3u + 2u);
}

TEST(MetricsTest, BalanceStats) {
  BalanceStats b = ComputeBalance({0, 0, 0, 1}, 2);
  EXPECT_EQ(b.min_size, 1u);
  EXPECT_EQ(b.max_size, 3u);
  EXPECT_DOUBLE_EQ(b.mean_size, 2.0);
  EXPECT_DOUBLE_EQ(b.stddev, 1.0);
}

TEST(SortedInitTest, BalancedAndOrderedByMinToken) {
  SetDatabase db = ClusteredDb(4, 25, 5);
  auto assignment = SortedInitialization(db, 10);
  BalanceStats b = ComputeBalance(assignment, 10);
  EXPECT_EQ(b.min_size, 10u);
  EXPECT_EQ(b.max_size, 10u);
  // Sets with smaller min tokens get smaller (or equal) group ids.
  for (SetId i = 0; i < db.size(); ++i) {
    for (SetId j = 0; j < db.size(); ++j) {
      if (db.set(i).MinToken() < db.set(j).MinToken()) {
        EXPECT_LE(assignment[i], assignment[j]);
      }
    }
  }
}

TEST(PartitionerUtilTest, GroupMembersInverts) {
  auto groups = GroupMembers({2, 0, 2, 1}, 3);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], (std::vector<SetId>{1}));
  EXPECT_EQ(groups[1], (std::vector<SetId>{3}));
  EXPECT_EQ(groups[2], (std::vector<SetId>{0, 2}));
}

TEST(PartitionerUtilTest, CompactRenumbersDensely) {
  std::vector<GroupId> a{5, 9, 5, 2};
  uint32_t n = Compact(&a);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(a, (std::vector<GroupId>{0, 1, 0, 2}));
}

class AlgorithmicPartitionerTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Partitioner> Make() const {
    std::string name = GetParam();
    if (name == "PAR-C") return std::make_unique<ParC>();
    if (name == "PAR-D") return std::make_unique<ParD>();
    if (name == "PAR-A") return std::make_unique<ParA>();
    return std::make_unique<ParG>();
  }
};

TEST_P(AlgorithmicPartitionerTest, ProducesValidPartition) {
  SetDatabase db = ClusteredDb(4, 40, 7);
  auto partitioner = Make();
  PartitionResult result = partitioner->Partition(db, 8);
  ASSERT_EQ(result.assignment.size(), db.size());
  ASSERT_GE(result.num_groups, 1u);
  ASSERT_LE(result.num_groups, 8u);
  for (GroupId g : result.assignment) EXPECT_LT(g, result.num_groups);
  EXPECT_GE(result.seconds, 0.0);
  EXPECT_GT(result.working_memory_bytes, 0u);
}

TEST_P(AlgorithmicPartitionerTest, BeatsRandomGpoOnClusteredData) {
  SetDatabase db = ClusteredDb(8, 25, 9);
  auto partitioner = Make();
  PartitionResult result = partitioner->Partition(db, 8);
  double achieved = ExactGpo(db, result.assignment, result.num_groups,
                             SimilarityMeasure::kJaccard);
  Rng rng(11);
  std::vector<GroupId> random(db.size());
  for (auto& g : random) g = static_cast<GroupId>(rng.Uniform(8));
  double baseline = ExactGpo(db, random, 8, SimilarityMeasure::kJaccard);
  EXPECT_LT(achieved, baseline);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AlgorithmicPartitionerTest,
                         ::testing::Values("PAR-C", "PAR-D", "PAR-A",
                                           "PAR-G"),
                         [](const auto& info) {
                           std::string n = info.param;
                           n.erase(n.find('-'), 1);
                           return n;
                         });

TEST(ParGTest, ReportsGraphStatistics) {
  SetDatabase db = ClusteredDb(4, 30, 13);
  ParG par_g;
  PartitionResult result = par_g.Partition(db, 4);
  EXPECT_GT(par_g.last_graph_bytes(), 0u);
  EXPECT_EQ(result.num_groups, 4u);
  // On 4 clean clusters the cut should be small relative to edges.
  EXPECT_LT(par_g.last_cut_size(), db.size() * 5);
}

TEST(ParDTest, ReachesTargetGroups) {
  SetDatabase db = ClusteredDb(2, 50, 15);
  ParD par_d;
  PartitionResult result = par_d.Partition(db, 16);
  EXPECT_EQ(result.num_groups, 16u);
}

TEST(ParATest, MergesDownToTarget) {
  SetDatabase db = ClusteredDb(2, 30, 17);
  ParA par_a;
  PartitionResult result = par_a.Partition(db, 12);
  EXPECT_EQ(result.num_groups, 12u);
}

}  // namespace
}  // namespace partition
}  // namespace les3
