// Tests for the hierarchical TGM: nesting validation, exactness vs brute
// force, and the cost-accounting behavior behind Figure 14.

#include "tgm/htgm.h"

#include <gtest/gtest.h>

#include "baselines/brute_force.h"
#include "datagen/generators.h"
#include "util/random.h"

namespace les3 {
namespace tgm {
namespace {

/// Clustered database plus nested two-level assignments: coarse = cluster,
/// fine = cluster split in half.
struct NestedFixture {
  SetDatabase db;
  HtgmLevelSpec coarse;
  HtgmLevelSpec fine;
};

NestedFixture MakeNested(uint32_t clusters, uint32_t per_cluster,
                         uint64_t seed) {
  NestedFixture f;
  Rng rng(seed);
  f.db = SetDatabase(clusters * 25);
  f.coarse.num_groups = clusters;
  f.fine.num_groups = clusters * 2;
  for (uint32_t c = 0; c < clusters; ++c) {
    for (uint32_t i = 0; i < per_cluster; ++i) {
      std::vector<TokenId> tokens;
      for (int j = 0; j < 6; ++j) {
        tokens.push_back(static_cast<TokenId>(25 * c + rng.Uniform(25)));
      }
      f.db.AddSet(SetRecord::FromTokens(std::move(tokens)));
      f.coarse.assignment.push_back(c);
      f.fine.assignment.push_back(2 * c + (i % 2));
    }
  }
  return f;
}

TEST(HtgmTest, SingleLevelKnnMatchesBruteForce) {
  NestedFixture f = MakeNested(6, 30, 1);
  Htgm flat(f.db, {f.fine});
  baselines::BruteForce brute(&f.db);
  Rng rng(2);
  for (int q = 0; q < 25; ++q) {
    SetView query = f.db.set(static_cast<SetId>(rng.Uniform(f.db.size())));
    auto got = flat.Knn(f.db, query, 5, SimilarityMeasure::kJaccard, nullptr);
    auto expected = brute.Knn(query, 5);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].second, expected[i].second, 1e-12);
    }
  }
}

TEST(HtgmTest, TwoLevelKnnAndRangeMatchBruteForce) {
  NestedFixture f = MakeNested(6, 30, 3);
  Htgm h(f.db, {f.coarse, f.fine});
  EXPECT_EQ(h.num_levels(), 2u);
  baselines::BruteForce brute(&f.db);
  Rng rng(4);
  for (int q = 0; q < 25; ++q) {
    SetView query = f.db.set(static_cast<SetId>(rng.Uniform(f.db.size())));
    auto got = h.Knn(f.db, query, 7, SimilarityMeasure::kJaccard, nullptr);
    auto expected = brute.Knn(query, 7);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i].second, expected[i].second, 1e-12);
    }
    auto got_range =
        h.Range(f.db, query, 0.6, SimilarityMeasure::kJaccard, nullptr);
    auto expected_range = brute.Range(query, 0.6);
    ASSERT_EQ(got_range.size(), expected_range.size());
  }
}

TEST(HtgmTest, CoarsePruningSavesCellsOnDissimilarData) {
  // With well-separated clusters, the 2-level HTGM should touch fewer
  // (node, token) cells than the flat fine-level TGM.
  NestedFixture f = MakeNested(16, 20, 5);
  Htgm flat(f.db, {f.fine});
  Htgm two(f.db, {f.coarse, f.fine});
  Rng rng(6);
  uint64_t flat_cells = 0, two_cells = 0;
  for (int q = 0; q < 30; ++q) {
    SetView query = f.db.set(static_cast<SetId>(rng.Uniform(f.db.size())));
    HtgmQueryCost cf, ct;
    flat.Knn(f.db, query, 5, SimilarityMeasure::kJaccard, &cf);
    two.Knn(f.db, query, 5, SimilarityMeasure::kJaccard, &ct);
    flat_cells += cf.cells_accessed;
    two_cells += ct.cells_accessed;
  }
  EXPECT_LT(two_cells, flat_cells);
}

TEST(HtgmTest, RejectsNonNestedLevels) {
  NestedFixture f = MakeNested(2, 10, 7);
  // Corrupt nesting: one fine group spans two coarse groups.
  HtgmLevelSpec bad = f.fine;
  bad.assignment[0] = 3;  // set 0 is in coarse group 0; group 3 belongs to
                          // coarse group 1
  EXPECT_DEATH(Htgm(f.db, {f.coarse, bad}), "parent_of");
}

TEST(HtgmTest, MemoryScalesWithLevels) {
  NestedFixture f = MakeNested(4, 30, 9);
  Htgm one(f.db, {f.fine});
  Htgm two(f.db, {f.coarse, f.fine});
  EXPECT_GT(two.MemoryBytes(), one.MemoryBytes());
}

TEST(HtgmTest, CostCountersPopulated) {
  NestedFixture f = MakeNested(4, 20, 11);
  Htgm h(f.db, {f.coarse, f.fine});
  HtgmQueryCost cost;
  h.Knn(f.db, f.db.set(0), 3, SimilarityMeasure::kJaccard, &cost);
  EXPECT_GT(cost.nodes_visited, 0u);
  EXPECT_GT(cost.cells_accessed, 0u);
  EXPECT_GT(cost.sims_computed, 0u);
}

}  // namespace
}  // namespace tgm
}  // namespace les3
