// Tests for threshold verification with early termination, text I/O, and
// the one-call index builder.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/text_io.h"
#include "core/verify.h"
#include "datagen/generators.h"
#include "search/builder.h"
#include "util/random.h"

namespace les3 {
namespace {

TEST(VerifyTest, ExactWhenPassing) {
  SetRecord a = SetRecord::FromTokens({1, 2, 3, 4});
  SetRecord b = SetRecord::FromTokens({2, 3, 4, 5});
  // Jaccard = 3/5 = 0.6.
  for (double delta : {0.1, 0.5, 0.6}) {
    VerifyResult v =
        VerifyThreshold(SimilarityMeasure::kJaccard, a, b, delta);
    EXPECT_TRUE(v.passed) << delta;
    EXPECT_DOUBLE_EQ(v.similarity, 0.6);
  }
}

TEST(VerifyTest, UpperBoundWhenFailing) {
  SetRecord a = SetRecord::FromTokens({1, 2, 3, 4});
  SetRecord b = SetRecord::FromTokens({2, 3, 4, 5});
  VerifyResult v = VerifyThreshold(SimilarityMeasure::kJaccard, a, b, 0.7);
  EXPECT_FALSE(v.passed);
  EXPECT_GE(v.similarity, 0.6);  // bound dominates the true similarity
}

TEST(VerifyTest, AgreesWithFullSimilarityRandomized) {
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    auto make = [&] {
      std::vector<TokenId> t;
      size_t n = 1 + rng.Uniform(12);
      for (size_t i = 0; i < n; ++i) {
        t.push_back(static_cast<TokenId>(rng.Uniform(25)));
      }
      return SetRecord::FromTokens(std::move(t));
    };
    SetRecord a = make(), b = make();
    double threshold = rng.NextDouble();
    for (auto m : {SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
                   SimilarityMeasure::kCosine}) {
      double exact = Similarity(m, a, b);
      VerifyResult v = VerifyThreshold(m, a, b, threshold);
      EXPECT_EQ(v.passed, exact >= threshold)
          << ToString(m) << " thr " << threshold;
      if (v.passed) {
        EXPECT_NEAR(v.similarity, exact, 1e-12);
      } else {
        EXPECT_GE(v.similarity + 1e-12, exact);
      }
    }
  }
}

TEST(VerifyTest, ZeroThresholdAlwaysPassesExactly) {
  SetRecord a = SetRecord::FromTokens({1});
  SetRecord b = SetRecord::FromTokens({2});
  VerifyResult v = VerifyThreshold(SimilarityMeasure::kJaccard, a, b, 0.0);
  EXPECT_TRUE(v.passed);
  EXPECT_DOUBLE_EQ(v.similarity, 0.0);
}

TEST(TextIoTest, ParseSetLine) {
  auto r = ParseSetLine("5 1  12\t3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tokens(), (std::vector<TokenId>{1, 3, 5, 12}));
  EXPECT_TRUE(ParseSetLine("").ok());
  EXPECT_TRUE(ParseSetLine("   ").ok());
  EXPECT_FALSE(ParseSetLine("1 x 2").ok());
  EXPECT_FALSE(ParseSetLine("99999999999999999999").ok());
}

TEST(TextIoTest, SaveLoadRoundTrip) {
  SetDatabase db(100);
  db.AddSet(SetRecord::FromTokens({3, 1, 4}));
  db.AddSet(SetRecord::FromTokens({}));
  db.AddSet(SetRecord::FromTokens({42}));
  std::string path = ::testing::TempDir() + "/les3_text_io.txt";
  ASSERT_TRUE(SaveSetsToText(db, path).ok());
  auto loaded = LoadSetsFromText(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  for (SetId i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded.value().set(i), db.set(i)) << i;
  }
  std::remove(path.c_str());
}

TEST(TextIoTest, LoadReportsLineNumberOnError) {
  std::string path = ::testing::TempDir() + "/les3_bad.txt";
  {
    std::ofstream out(path);
    out << "1 2\nbad line\n";
  }
  auto r = LoadSetsFromText(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BuilderTest, EmptyDatabaseRejected) {
  auto r = search::BuildLes3Index(SetDatabase(5));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, BuildsWorkingIndexWithDefaults) {
  datagen::ZipfOptions gen;
  gen.num_sets = 2000;
  gen.num_tokens = 800;
  gen.cluster_fraction = 0.7;
  gen.sets_per_cluster = 40;
  gen.seed = 7;
  SetDatabase db = datagen::GenerateZipf(gen);
  SetDatabase copy = db;
  search::Les3BuildOptions options;
  options.cascade.pairs_per_model = 2000;  // keep the test fast
  auto index = search::BuildLes3Index(std::move(copy), options);
  ASSERT_TRUE(index.ok());
  auto hits = index.value().Knn(db.set(11), 5);
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_DOUBLE_EQ(hits[0].second, 1.0);  // the query is in the database
  EXPECT_GT(index.value().tgm().num_groups(), 1u);
}

TEST(BuilderTest, RespectsExplicitGroupCount) {
  datagen::UniformOptions gen;
  gen.num_sets = 500;
  gen.num_tokens = 200;
  SetDatabase db = datagen::GenerateUniform(gen);
  search::Les3BuildOptions options;
  options.num_groups = 10;
  options.cascade.pairs_per_model = 1000;
  auto index = search::BuildLes3Index(std::move(db), options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().tgm().num_groups(), 10u);
}

}  // namespace
}  // namespace les3
