// Tests for threshold verification with early termination, text I/O, and
// the one-call index builder.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>

#include "core/simd_dispatch.h"
#include "core/text_io.h"
#include "core/verify.h"
#include "core/verify_simd.h"
#include "datagen/generators.h"
#include "search/builder.h"
#include "util/random.h"

namespace les3 {
namespace {

/// Runs `fn` once pinned to each dispatch level this machine supports
/// (always at least scalar), restoring normal dispatch afterwards — the
/// forced-path harness of the SIMD differential tests.
template <typename Fn>
void ForEachDispatchLevel(Fn&& fn) {
  for (simd::Level level : simd::SupportedLevels()) {
    SCOPED_TRACE(std::string("dispatch level ") + simd::LevelName(level));
    simd::SetLevelForTesting(level);
    fn();
  }
  simd::ClearLevelForTesting();
}

TEST(VerifyTest, ExactWhenPassing) {
  SetRecord a = SetRecord::FromTokens({1, 2, 3, 4});
  SetRecord b = SetRecord::FromTokens({2, 3, 4, 5});
  // Jaccard = 3/5 = 0.6.
  for (double delta : {0.1, 0.5, 0.6}) {
    VerifyResult v =
        VerifyThreshold(SimilarityMeasure::kJaccard, a, b, delta);
    EXPECT_TRUE(v.passed) << delta;
    EXPECT_DOUBLE_EQ(v.similarity, 0.6);
  }
}

TEST(VerifyTest, UpperBoundWhenFailing) {
  SetRecord a = SetRecord::FromTokens({1, 2, 3, 4});
  SetRecord b = SetRecord::FromTokens({2, 3, 4, 5});
  VerifyResult v = VerifyThreshold(SimilarityMeasure::kJaccard, a, b, 0.7);
  EXPECT_FALSE(v.passed);
  EXPECT_GE(v.similarity, 0.6);  // bound dominates the true similarity
}

TEST(VerifyTest, AgreesWithFullSimilarityRandomized) {
  Rng rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    auto make = [&] {
      std::vector<TokenId> t;
      size_t n = 1 + rng.Uniform(12);
      for (size_t i = 0; i < n; ++i) {
        t.push_back(static_cast<TokenId>(rng.Uniform(25)));
      }
      return SetRecord::FromTokens(std::move(t));
    };
    SetRecord a = make(), b = make();
    double threshold = rng.NextDouble();
    for (auto m : {SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
                   SimilarityMeasure::kCosine}) {
      double exact = Similarity(m, a, b);
      VerifyResult v = VerifyThreshold(m, a, b, threshold);
      EXPECT_EQ(v.passed, exact >= threshold)
          << ToString(m) << " thr " << threshold;
      if (v.passed) {
        EXPECT_NEAR(v.similarity, exact, 1e-12);
      } else {
        EXPECT_GE(v.similarity + 1e-12, exact);
      }
    }
  }
}

TEST(VerifyTest, ZeroThresholdAlwaysPassesExactly) {
  SetRecord a = SetRecord::FromTokens({1});
  SetRecord b = SetRecord::FromTokens({2});
  VerifyResult v = VerifyThreshold(SimilarityMeasure::kJaccard, a, b, 0.0);
  EXPECT_TRUE(v.passed);
  EXPECT_DOUBLE_EQ(v.similarity, 0.0);
}

// ---------------------------------------------------------------------------
// Adversarial kernel cases: both layouts of the verifier (merge and gallop)
// must agree with the full similarity on the inputs that historically break
// intersection kernels.

constexpr SimilarityMeasure kAllMeasures[] = {
    SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
    SimilarityMeasure::kCosine, SimilarityMeasure::kContainment};

void ExpectKernelsExact(const SetRecord& a, const SetRecord& b,
                        double threshold) {
  for (auto m : kAllMeasures) {
    double exact = Similarity(m, a, b);
    for (int kernel = 0; kernel < 3; ++kernel) {
      VerifyResult v = kernel == 0 ? VerifyMerge(m, a, b, threshold)
                       : kernel == 1 ? VerifyGallop(m, a, b, threshold)
                                     : VerifyThreshold(m, a, b, threshold);
      EXPECT_EQ(v.passed, exact >= threshold)
          << ToString(m) << " kernel " << kernel << " thr " << threshold;
      if (v.passed) {
        // Bit-identical to Similarity(): both go through the one
        // SimilarityFromOverlap expression.
        EXPECT_EQ(v.similarity, exact) << ToString(m) << " kernel " << kernel;
      } else {
        EXPECT_GE(v.similarity + 1e-12, exact)
            << ToString(m) << " kernel " << kernel;
      }
    }
  }
}

TEST(VerifyKernelsTest, DuplicateHeavyMultisets) {
  ForEachDispatchLevel([] {
    // Multiset min-multiplicity semantics: {7x4, 9x2} vs {7x2, 9x5}
    // overlaps in min(4,2) + min(2,5) = 4 tokens.
    SetRecord a = SetRecord::FromTokens({7, 7, 7, 7, 9, 9});
    SetRecord b = SetRecord::FromTokens({7, 7, 9, 9, 9, 9, 9});
    EXPECT_EQ(SetRecord::OverlapSize(a, b), 4u);
    for (double t : {0.0, 0.25, 0.5, 0.75, 1.0}) ExpectKernelsExact(a, b, t);
    // All-one-token multisets of different multiplicities.
    SetRecord c = SetRecord::FromTokens({3, 3, 3, 3, 3, 3, 3, 3});
    SetRecord d = SetRecord::FromTokens({3, 3});
    EXPECT_EQ(SetRecord::OverlapSize(c, d), 2u);
    for (double t : {0.1, 0.5, 0.9}) ExpectKernelsExact(c, d, t);
    // Long duplicate-heavy multisets (past the vector width, so the
    // duplicate-window fallback actually engages at the AVX tiers).
    std::vector<TokenId> e_toks, f_toks;
    for (int i = 0; i < 64; ++i) e_toks.push_back(static_cast<TokenId>(i / 4));
    for (int i = 0; i < 48; ++i) f_toks.push_back(static_cast<TokenId>(i / 3));
    SetRecord e = SetRecord::FromTokens(std::move(e_toks));
    SetRecord f = SetRecord::FromTokens(std::move(f_toks));
    for (double t : {0.0, 0.3, 0.7, 1.0}) ExpectKernelsExact(e, f, t);
  });
}

TEST(VerifyKernelsTest, EmptyAndIdenticalSets) {
  ForEachDispatchLevel([] {
    SetRecord empty;
    SetRecord some = SetRecord::FromTokens({1, 5, 5, 9});
    for (double t : {0.0, 0.5, 1.0}) {
      ExpectKernelsExact(empty, some, t);
      ExpectKernelsExact(some, empty, t);
      ExpectKernelsExact(empty, empty, t);   // defined as similarity 1
      ExpectKernelsExact(some, some, t);     // identical sets: similarity 1
    }
    // A threshold above 1 is unattainable even by identical sets.
    VerifyResult v =
        VerifyThreshold(SimilarityMeasure::kJaccard, some, some, 1.5);
    EXPECT_FALSE(v.passed);
  });
}

TEST(VerifyKernelsTest, NonFiniteThresholdIsRejectedNotCast) {
  // Regression: a NaN threshold used to fall through MinOverlapForPair's
  // closed-form estimate into a double -> size_t cast (undefined
  // behavior; this test runs under the UBSan CI lane). NaN and +inf are
  // unsatisfiable — the canonical max_overlap + 1 — while -inf passes
  // everything, like any threshold <= 0.
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  const double kInf = std::numeric_limits<double>::infinity();
  SetRecord a = SetRecord::FromTokens({1, 2, 3, 4});
  SetRecord b = SetRecord::FromTokens({2, 3, 4, 5});
  for (auto m : kAllMeasures) {
    EXPECT_EQ(MinOverlapForPair(m, 4, 4, kNan), 5u) << ToString(m);
    EXPECT_EQ(MinOverlapForPair(m, 4, 4, kInf), 5u) << ToString(m);
    EXPECT_EQ(MinOverlapForPair(m, 4, 4, -kInf), 0u) << ToString(m);
    EXPECT_EQ(MinOverlapForPair(m, 0, 9, kNan), 1u) << ToString(m);
    for (double t : {kNan, kInf}) {
      EXPECT_FALSE(VerifyThreshold(m, a, b, t).passed) << ToString(m);
      EXPECT_FALSE(VerifyMerge(m, a, b, t).passed) << ToString(m);
      EXPECT_FALSE(VerifyGallop(m, a, b, t).passed) << ToString(m);
    }
    EXPECT_TRUE(VerifyThreshold(m, a, b, -kInf).passed) << ToString(m);
  }
}

TEST(SimdKernelsTest, IntersectCountUnalignedOffsetsAndEveryTailLength) {
  // Every operand length 0 .. 2x the widest vector (16 lanes), both sides,
  // with each view offset from its allocation start so the vector loads
  // are genuinely unaligned — differential against the reference multiset
  // intersection, at every dispatch level, with and without an early-exit
  // requirement.
  Rng rng(41);
  constexpr size_t kMaxLen = 32;
  for (size_t offset : {size_t{0}, size_t{1}, size_t{3}}) {
    std::vector<std::vector<TokenId>> bufs_a(kMaxLen + 1), bufs_b(kMaxLen + 1);
    auto fill = [&](std::vector<TokenId>* buf, size_t len) {
      std::vector<TokenId> tokens;
      for (size_t i = 0; i < len; ++i) {
        // Universe ~1.5x the length: overlaps and duplicates are common.
        tokens.push_back(static_cast<TokenId>(rng.Uniform(3 + len * 3 / 2)));
      }
      std::sort(tokens.begin(), tokens.end());
      buf->assign(offset, TokenId{0});  // pad to shift alignment
      buf->insert(buf->end(), tokens.begin(), tokens.end());
    };
    for (size_t n = 0; n <= kMaxLen; ++n) {
      fill(&bufs_a[n], n);
      fill(&bufs_b[n], n);
    }
    for (size_t la = 0; la <= kMaxLen; ++la) {
      for (size_t lb = 0; lb <= kMaxLen; ++lb) {
        SetView a(bufs_a[la].data() + offset, la);
        SetView b(bufs_b[lb].data() + offset, lb);
        const size_t exact = SetView::OverlapSize(a, b);
        const size_t min_o = rng.Uniform(std::min(la, lb) + 2);
        ForEachDispatchLevel([&] {
          simd::CountResult free_run = simd::IntersectCount(a, b, 0);
          ASSERT_FALSE(free_run.aborted);
          ASSERT_EQ(free_run.value, exact)
              << "la=" << la << " lb=" << lb << " offset=" << offset;
          simd::CountResult gated = simd::IntersectCount(a, b, min_o);
          if (gated.aborted) {
            // Abort is only legal when the requirement is truly
            // unreachable, and the reported value is an upper bound.
            ASSERT_LT(gated.value, min_o) << "la=" << la << " lb=" << lb;
            ASSERT_GE(gated.value, exact) << "la=" << la << " lb=" << lb;
          } else {
            ASSERT_EQ(gated.value, exact) << "la=" << la << " lb=" << lb;
          }
        });
      }
    }
  }
}

TEST(SimdKernelsTest, LowerBoundMatchesScalarEverywhere) {
  Rng rng(43);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = rng.Uniform(150);
    std::vector<TokenId> sorted;
    for (size_t i = 0; i < n; ++i) {
      sorted.push_back(static_cast<TokenId>(rng.Uniform(1 + n * 2)));
    }
    // Occasionally include extreme token values so the unsigned-compare
    // bias trick is exercised at the top of the uint32 range.
    if (trial % 7 == 0 && n > 0) sorted.back() = 0xFFFFFFFEu;
    std::sort(sorted.begin(), sorted.end());
    SetView v(sorted.data(), sorted.size());
    for (int probe = 0; probe < 20; ++probe) {
      size_t lo = rng.Uniform(n + 1);
      size_t hi = lo + rng.Uniform(n + 1 - lo);
      TokenId t = probe % 5 == 0 ? 0xFFFFFFFFu
                                 : static_cast<TokenId>(rng.Uniform(1 + n * 2));
      const size_t expected = simd::LowerBoundScalar(v, lo, hi, t);
      ForEachDispatchLevel([&] {
        ASSERT_EQ(simd::LowerBound(v, lo, hi, t), expected)
            << "n=" << n << " lo=" << lo << " hi=" << hi << " t=" << t;
      });
    }
  }
}

TEST(VerifyKernelsTest, MinOverlapForPairIsTheExactBoundary) {
  Rng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    size_t na = rng.Uniform(30);
    size_t nb = rng.Uniform(30);
    double t = rng.NextDouble();
    for (auto m : kAllMeasures) {
      size_t min_o = MinOverlapForPair(m, na, nb, t);
      size_t max_o = std::min(na, nb);
      for (size_t o = 0; o <= max_o; ++o) {
        EXPECT_EQ(SimilarityFromOverlap(m, o, na, nb) >= t, o >= min_o)
            << ToString(m) << " na=" << na << " nb=" << nb << " o=" << o
            << " t=" << t;
      }
    }
  }
}

TEST(VerifyKernelsTest, SizeWindowBoundariesAreExact) {
  // |S| exactly at lo and hi must stay inside the window; lo-1 and hi+1
  // must be excluded — under the same doubles the verifier compares with.
  Rng rng(23);
  for (int trial = 0; trial < 300; ++trial) {
    size_t q = rng.Uniform(200);
    double t = 0.05 + 0.95 * rng.NextDouble();
    for (auto m : kAllMeasures) {
      SizeBounds w = SizeBoundsForThreshold(m, q, t);
      if (w.Empty()) {
        EXPECT_GT(t, 1.0) << ToString(m) << " q=" << q;
        continue;
      }
      EXPECT_GE(MaxSimForSize(m, q, w.lo), t) << ToString(m) << " q=" << q;
      if (w.lo > 0) {
        EXPECT_LT(MaxSimForSize(m, q, w.lo - 1), t)
            << ToString(m) << " q=" << q << " t=" << t;
      }
      if (w.hi != static_cast<size_t>(-1)) {
        EXPECT_GE(MaxSimForSize(m, q, w.hi), t) << ToString(m) << " q=" << q;
        EXPECT_LT(MaxSimForSize(m, q, w.hi + 1), t)
            << ToString(m) << " q=" << q << " t=" << t;
      } else {
        // Only containment has no upper size bound for t <= 1.
        EXPECT_EQ(m, SimilarityMeasure::kContainment);
      }
    }
  }
}

TEST(VerifyKernelsTest, RangeKeepsCandidatesExactlyAtTheWindowBoundaries) {
  // Query {0,1,2,3}, Jaccard δ = 0.5: the size window is [2, 8]. Sets at
  // sizes exactly 2 and 8 (both attaining similarity exactly 0.5) must
  // survive the filter; sizes 1 and 9 must be skipped without
  // verification — their best case is strictly below δ.
  SetDatabase db(16);
  SetId s1 = db.AddSet(SetRecord::FromTokens({0}));                // size 1
  SetId s2 = db.AddSet(SetRecord::FromTokens({0, 1}));             // size 2
  SetId s8 = db.AddSet(
      SetRecord::FromTokens({0, 1, 2, 3, 4, 5, 6, 7}));            // size 8
  SetId s9 = db.AddSet(
      SetRecord::FromTokens({0, 1, 2, 3, 4, 5, 6, 7, 8}));         // size 9
  std::vector<GroupId> assignment(db.size(), 0);
  search::Les3Index index(db, assignment, 1);
  SetRecord query = SetRecord::FromTokens({0, 1, 2, 3});
  search::QueryStats stats;
  auto hits = index.Range(query, 0.5, &stats);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].first, s2);
  EXPECT_DOUBLE_EQ(hits[0].second, 0.5);
  EXPECT_EQ(hits[1].first, s8);
  EXPECT_DOUBLE_EQ(hits[1].second, 0.5);
  // s1 and s9 never reached a kernel.
  EXPECT_EQ(stats.candidates_size_skipped, 2u);
  EXPECT_EQ(stats.candidates_verified, 2u);
  (void)s1;
  (void)s9;
}

void RunRandomizedDifferential(uint64_t seed) {
  // The kernels against the one reference multiset intersection
  // (SetRecord::OverlapSize): random pairs across size skews and duplicate
  // densities, random thresholds, all measures, all kernels — including
  // the precomputed-min-overlap entry points the batch pipeline uses.
  Rng rng(seed);
  for (int trial = 0; trial < 2000; ++trial) {
    auto make = [&](size_t max_size, uint64_t universe) {
      std::vector<TokenId> tokens;
      size_t n = rng.Uniform(max_size + 1);
      for (size_t i = 0; i < n; ++i) {
        tokens.push_back(static_cast<TokenId>(rng.Uniform(universe)));
      }
      return SetRecord::FromTokens(std::move(tokens));
    };
    // Mix size regimes: comparable, skewed (gallop territory), and tiny
    // universes (duplicate-heavy multisets).
    SetRecord a = make(trial % 3 == 0 ? 6 : 40, trial % 2 == 0 ? 8 : 64);
    SetRecord b = make(trial % 3 == 1 ? 200 : 24, trial % 2 == 0 ? 8 : 64);
    double t = rng.NextDouble();
    for (auto m : kAllMeasures) {
      size_t overlap = SetRecord::OverlapSize(a, b);
      double exact = SimilarityFromOverlap(m, overlap, a.size(), b.size());
      size_t min_o = MinOverlapForPair(m, a.size(), b.size(), t);
      for (int kernel = 0; kernel < 4; ++kernel) {
        VerifyResult v = kernel == 0 ? VerifyMerge(m, a, b, t)
                         : kernel == 1 ? VerifyGallop(m, a, b, t)
                         : kernel == 2 ? VerifyThreshold(m, a, b, t)
                                       : VerifyThreshold(m, a, b, t, min_o);
        ASSERT_EQ(v.passed, exact >= t)
            << ToString(m) << " kernel " << kernel << " |a|=" << a.size()
            << " |b|=" << b.size() << " t=" << t;
        if (v.passed) {
          ASSERT_EQ(v.similarity, exact)
              << ToString(m) << " kernel " << kernel;
        } else {
          ASSERT_GE(v.similarity + 1e-12, exact)
              << ToString(m) << " kernel " << kernel;
        }
      }
    }
  }
}

TEST(VerifyKernelsTest, RandomizedDifferentialAgainstOverlapSize) {
  // The full 2000-trial differential once per dispatch level, each with
  // its own seed, so the AVX tiers see their own random corpus rather
  // than replaying the scalar one.
  uint64_t seed = 29;
  ForEachDispatchLevel([&] { RunRandomizedDifferential(seed++); });
}

TEST(TextIoTest, ParseSetLine) {
  auto r = ParseSetLine("5 1  12\t3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().tokens(), (std::vector<TokenId>{1, 3, 5, 12}));
  EXPECT_TRUE(ParseSetLine("").ok());
  EXPECT_TRUE(ParseSetLine("   ").ok());
  EXPECT_FALSE(ParseSetLine("1 x 2").ok());
  EXPECT_FALSE(ParseSetLine("99999999999999999999").ok());
}

TEST(TextIoTest, SaveLoadRoundTrip) {
  SetDatabase db(100);
  db.AddSet(SetRecord::FromTokens({3, 1, 4}));
  db.AddSet(SetRecord::FromTokens({}));
  db.AddSet(SetRecord::FromTokens({42}));
  std::string path = ::testing::TempDir() + "/les3_text_io.txt";
  ASSERT_TRUE(SaveSetsToText(db, path).ok());
  auto loaded = LoadSetsFromText(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  for (SetId i = 0; i < 3; ++i) {
    EXPECT_EQ(loaded.value().set(i), db.set(i)) << i;
  }
  std::remove(path.c_str());
}

TEST(TextIoTest, LoadReportsLineNumberOnError) {
  std::string path = ::testing::TempDir() + "/les3_bad.txt";
  {
    std::ofstream out(path);
    out << "1 2\nbad line\n";
  }
  auto r = LoadSetsFromText(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BuilderTest, EmptyDatabaseRejected) {
  auto r = search::BuildLes3Index(SetDatabase(5));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, BuildsWorkingIndexWithDefaults) {
  datagen::ZipfOptions gen;
  gen.num_sets = 2000;
  gen.num_tokens = 800;
  gen.cluster_fraction = 0.7;
  gen.sets_per_cluster = 40;
  gen.seed = 7;
  SetDatabase db = datagen::GenerateZipf(gen);
  SetDatabase copy = db;
  search::Les3BuildOptions options;
  options.cascade.pairs_per_model = 2000;  // keep the test fast
  auto index = search::BuildLes3Index(std::move(copy), options);
  ASSERT_TRUE(index.ok());
  auto hits = index.value().Knn(db.set(11), 5);
  ASSERT_EQ(hits.size(), 5u);
  EXPECT_DOUBLE_EQ(hits[0].second, 1.0);  // the query is in the database
  EXPECT_GT(index.value().tgm().num_groups(), 1u);
}

TEST(BuilderTest, RespectsExplicitGroupCount) {
  datagen::UniformOptions gen;
  gen.num_sets = 500;
  gen.num_tokens = 200;
  SetDatabase db = datagen::GenerateUniform(gen);
  search::Les3BuildOptions options;
  options.num_groups = 10;
  options.cascade.pairs_per_model = 1000;
  auto index = search::BuildLes3Index(std::move(db), options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index.value().tgm().num_groups(), 10u);
}

}  // namespace
}  // namespace les3
