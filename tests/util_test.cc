// Unit tests for util/: Status/Result, Rng, ThreadPool, TableReporter.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>

#include "util/csv.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace les3 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    LES3_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(13);
  for (uint32_t k : {0u, 1u, 5u, 50u, 100u}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    std::set<uint32_t> s(sample.begin(), sample.end());
    EXPECT_EQ(s.size(), k);
    for (uint32_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversIndices) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(TableReporterTest, CsvRoundTrip) {
  TableReporter t({"a", "b"});
  t.Add("x", 1);
  t.Add("y,z", 2.5);
  std::string path = ::testing::TempDir() + "/les3_csv_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "x,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"y,z\",2.5000");
  std::remove(path.c_str());
}

TEST(TableReporterTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(TimerTest, MeasuresElapsed) {
  WallTimer t;
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  (void)x;
  EXPECT_GE(t.Seconds(), 0.0);
  EXPECT_GE(t.Micros(), t.Millis());
}

}  // namespace
}  // namespace les3
