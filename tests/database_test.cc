// Tests for core/database.h and core/stats.h.

#include "core/database.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/stats.h"

namespace les3 {
namespace {

TEST(DatabaseTest, AddSetAssignsSequentialIds) {
  SetDatabase db(10);
  EXPECT_EQ(db.AddSet(SetRecord::FromTokens({1, 2})), 0u);
  EXPECT_EQ(db.AddSet(SetRecord::FromTokens({3})), 1u);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(db.set(0).size(), 2u);
}

TEST(DatabaseTest, UniverseGrowsWithUnseenTokens) {
  SetDatabase db(5);
  EXPECT_EQ(db.num_tokens(), 5u);
  db.AddSet(SetRecord::FromTokens({9}));
  EXPECT_EQ(db.num_tokens(), 10u);
  db.AddSet(SetRecord::FromTokens({2}));
  EXPECT_EQ(db.num_tokens(), 10u);  // no shrink
}

TEST(DatabaseTest, TotalTokens) {
  SetDatabase db(10);
  db.AddSet(SetRecord::FromTokens({1, 2, 3}));
  db.AddSet(SetRecord::FromTokens({1, 1}));
  EXPECT_EQ(db.TotalTokens(), 5u);
}

TEST(DatabaseTest, SaveLoadRoundTrip) {
  SetDatabase db(100);
  db.AddSet(SetRecord::FromTokens({3, 1, 4}));
  db.AddSet(SetRecord::FromTokens({}));
  db.AddSet(SetRecord::FromTokens({99, 99}));
  std::string path = ::testing::TempDir() + "/les3_db_test.bin";
  ASSERT_TRUE(db.Save(path).ok());
  auto loaded = SetDatabase::Load(path);
  ASSERT_TRUE(loaded.ok());
  const SetDatabase& db2 = loaded.value();
  ASSERT_EQ(db2.size(), db.size());
  EXPECT_EQ(db2.num_tokens(), db.num_tokens());
  for (SetId i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db2.set(i), db.set(i)) << i;
  }
  std::remove(path.c_str());
}

TEST(DatabaseTest, LoadMissingFileFails) {
  auto r = SetDatabase::Load("/nonexistent/path/db.bin");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(StatsTest, ComputeStatsMatchesHandCount) {
  SetDatabase db(50);
  db.AddSet(SetRecord::FromTokens({1}));
  db.AddSet(SetRecord::FromTokens({1, 2, 3, 4}));
  db.AddSet(SetRecord::FromTokens({5, 6, 7}));
  DatasetStats s = ComputeStats(db);
  EXPECT_EQ(s.num_sets, 3u);
  EXPECT_EQ(s.min_set_size, 1u);
  EXPECT_EQ(s.max_set_size, 4u);
  EXPECT_NEAR(s.avg_set_size, 8.0 / 3.0, 1e-12);
  EXPECT_EQ(s.num_tokens, 50u);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(StatsTest, EmptyDatabase) {
  SetDatabase db(1);
  DatasetStats s = ComputeStats(db);
  EXPECT_EQ(s.num_sets, 0u);
  EXPECT_EQ(s.avg_set_size, 0.0);
}

}  // namespace
}  // namespace les3
