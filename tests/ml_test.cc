// Tests for ml/: MLP forward/backward (gradient-checked), Adam, and the
// Siamese trainer with the Equation-18 surrogate loss.

#include <gtest/gtest.h>

#include <cmath>

#include "ml/adam.h"
#include "ml/matrix.h"
#include "ml/mlp.h"
#include "ml/siamese.h"

namespace les3 {
namespace ml {
namespace {

TEST(MatrixTest, Basics) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  m.At(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m.Row(1)[2], 5.0f);
  m.Fill(1.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 1.0f);
}

TEST(MatrixTest, XavierInitWithinLimit) {
  Rng rng(1);
  Matrix m(8, 16);
  m.InitXavier(&rng);
  float limit = std::sqrt(6.0f / (8 + 16));
  bool any_nonzero = false;
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), limit);
    any_nonzero = any_nonzero || m.data()[i] != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(MlpTest, ForwardMatchesManualComputation) {
  // 1-2-1 net with hand-set weights.
  Mlp net({1, 2, 1}, 7);
  // params: W1 (2x1), b1 (2), W2 (1x2), b2 (1).
  net.SetParamsFlat({0.5f, -1.0f, 0.1f, 0.2f, 1.0f, 1.0f, -0.3f});
  float x = 0.8f;
  auto sigmoid = [](float v) { return 1.0f / (1.0f + std::exp(-v)); };
  float h1 = sigmoid(0.5f * x + 0.1f);
  float h2 = sigmoid(-1.0f * x + 0.2f);
  float out = sigmoid(h1 + h2 - 0.3f);
  auto got = net.ForwardOne(&x);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_NEAR(got[0], out, 1e-6);
  // Batch forward agrees with single forward.
  Matrix batch(1, 1);
  batch.At(0, 0) = x;
  EXPECT_NEAR(net.Forward(batch).At(0, 0), out, 1e-6);
}

TEST(MlpTest, GradientsMatchFiniteDifferences) {
  // Loss = 0.5 * sum((O - target)^2) over a small batch; analytic gradients
  // from Backward must match central finite differences.
  Mlp net({3, 4, 2}, 11);
  Rng rng(13);
  const size_t batch = 5;
  Matrix input(batch, 3);
  Matrix target(batch, 2);
  for (size_t i = 0; i < batch; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      input.At(i, j) = static_cast<float>(rng.NextGaussian());
    }
    for (size_t j = 0; j < 2; ++j) {
      target.At(i, j) = static_cast<float>(rng.NextDouble());
    }
  }
  auto loss_fn = [&](Mlp* m) {
    const Matrix& out = m->Forward(input);
    double loss = 0.0;
    for (size_t i = 0; i < batch; ++i) {
      for (size_t j = 0; j < 2; ++j) {
        double d = out.At(i, j) - target.At(i, j);
        loss += 0.5 * d * d;
      }
    }
    return loss;
  };
  // Analytic gradient.
  const Matrix& out = net.Forward(input);
  Matrix grad_out(batch, 2);
  for (size_t i = 0; i < batch; ++i) {
    for (size_t j = 0; j < 2; ++j) {
      grad_out.At(i, j) = out.At(i, j) - target.At(i, j);
    }
  }
  net.ZeroGrad();
  net.Backward(input, grad_out);
  std::vector<float> analytic = net.GradsFlat();
  // Numeric gradient.
  std::vector<float> params = net.ParamsFlat();
  const double eps = 1e-3;
  for (size_t p = 0; p < params.size(); ++p) {
    std::vector<float> plus = params, minus = params;
    plus[p] += static_cast<float>(eps);
    minus[p] -= static_cast<float>(eps);
    net.SetParamsFlat(plus);
    double lp = loss_fn(&net);
    net.SetParamsFlat(minus);
    double lm = loss_fn(&net);
    double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(analytic[p], numeric,
                1e-2 * std::max(1.0, std::fabs(numeric)))
        << "param " << p;
  }
}

TEST(MlpTest, ParamRoundTrip) {
  Mlp net({4, 8, 8, 1}, 3);
  auto params = net.ParamsFlat();
  EXPECT_EQ(params.size(), net.NumParams());
  EXPECT_EQ(net.NumParams(), 4u * 8 + 8 + 8 * 8 + 8 + 8 + 1);
  params[0] = 123.0f;
  net.SetParamsFlat(params);
  EXPECT_FLOAT_EQ(net.ParamsFlat()[0], 123.0f);
}

TEST(AdamTest, MinimizesQuadratic) {
  // Minimize f(x) = (x - 3)^2 with Adam on a single parameter.
  float x = 0.0f;
  AdamOptions opts;
  opts.learning_rate = 0.1f;
  Adam adam(1, opts);
  std::vector<float*> params{&x};
  for (int step = 0; step < 500; ++step) {
    std::vector<float> grad{2.0f * (x - 3.0f)};
    adam.Step(params, grad);
  }
  EXPECT_NEAR(x, 3.0f, 0.05f);
  EXPECT_EQ(adam.step_count(), 500u);
}

TEST(SiameseTest, SurrogateLossValues) {
  // Same side, maximally close outputs -> full weight.
  EXPECT_FLOAT_EQ(SurrogateLoss(0.6f, 0.6f, 0.8f), 0.5f * 0.8f);
  // Opposite sides -> zero.
  EXPECT_FLOAT_EQ(SurrogateLoss(0.4f, 0.6f, 0.8f), 0.0f);
  // Same side, far apart -> small weight.
  EXPECT_NEAR(SurrogateLoss(0.5f, 0.9f, 1.0f), 0.1f, 1e-6);
  // Similar pairs (dissim 0) cost nothing.
  EXPECT_FLOAT_EQ(SurrogateLoss(0.6f, 0.6f, 0.0f), 0.0f);
}

TEST(SiameseTest, LearnsToSeparateTwoClusters) {
  // Two well-separated point clouds; dissimilarity 1 across, 0 within.
  Rng rng(17);
  const size_t per_cluster = 40;
  Matrix reps(2 * per_cluster, 2);
  for (size_t i = 0; i < per_cluster; ++i) {
    reps.At(i, 0) = static_cast<float>(rng.NextGaussian() * 0.2 - 2.0);
    reps.At(i, 1) = static_cast<float>(rng.NextGaussian() * 0.2);
    reps.At(per_cluster + i, 0) =
        static_cast<float>(rng.NextGaussian() * 0.2 + 2.0);
    reps.At(per_cluster + i, 1) = static_cast<float>(rng.NextGaussian() * 0.2);
  }
  std::vector<SiamesePair> pairs;
  for (uint32_t i = 0; i < 2 * per_cluster; ++i) {
    for (uint32_t j = i + 1; j < 2 * per_cluster; ++j) {
      bool same = (i < per_cluster) == (j < per_cluster);
      pairs.push_back({i, j, same ? 0.0f : 1.0f});
    }
  }
  Mlp net({2, 8, 8, 1}, 19);
  SiameseOptions opts;
  opts.epochs = 20;
  opts.batch_size = 64;
  opts.seed = 23;
  SiameseStats stats = TrainSiamese(&net, reps, pairs, opts);
  EXPECT_FALSE(stats.batch_losses.empty());
  // The split at 0.5 should separate the clusters (allow a couple strays).
  size_t cluster0_left = 0, cluster1_left = 0;
  for (size_t i = 0; i < per_cluster; ++i) {
    if (net.ForwardOne(reps.Row(i))[0] < 0.5f) ++cluster0_left;
    if (net.ForwardOne(reps.Row(per_cluster + i))[0] < 0.5f) {
      ++cluster1_left;
    }
  }
  bool separated = (cluster0_left >= per_cluster - 2 &&
                    cluster1_left <= 2) ||
                   (cluster0_left <= 2 && cluster1_left >= per_cluster - 2);
  EXPECT_TRUE(separated) << cluster0_left << " vs " << cluster1_left;
}

TEST(SiameseTest, LossDecreasesOverTraining) {
  Rng rng(29);
  Matrix reps(60, 3);
  for (size_t i = 0; i < reps.size(); ++i) {
    reps.data()[i] = static_cast<float>(rng.NextGaussian());
  }
  std::vector<SiamesePair> pairs;
  for (uint32_t i = 0; i < 60; ++i) {
    for (uint32_t j = i + 1; j < 60; ++j) {
      pairs.push_back({i, j, static_cast<float>(rng.NextDouble())});
    }
  }
  Mlp net({3, 8, 8, 1}, 31);
  SiameseOptions opts;
  opts.epochs = 10;
  opts.batch_size = 128;
  SiameseStats stats = TrainSiamese(&net, reps, pairs, opts);
  ASSERT_GT(stats.batch_losses.size(), 10u);
  double head = 0, tail = 0;
  size_t n = stats.batch_losses.size();
  for (size_t i = 0; i < 5; ++i) head += stats.batch_losses[i];
  for (size_t i = n - 5; i < n; ++i) tail += stats.batch_losses[i];
  EXPECT_LT(tail, head);
}

TEST(SiameseTest, EmptyPairsIsNoOp) {
  Matrix reps(1, 2);
  Mlp net({2, 4, 1}, 1);
  auto before = net.ParamsFlat();
  SiameseStats stats = TrainSiamese(&net, reps, {}, SiameseOptions{});
  EXPECT_TRUE(stats.batch_losses.empty());
  EXPECT_EQ(net.ParamsFlat(), before);
}

}  // namespace
}  // namespace ml
}  // namespace les3
