// Tests for graph/: CSR construction, kNN graph, FM balanced partitioning.

#include <gtest/gtest.h>

#include <set>

#include "datagen/generators.h"
#include "graph/graph.h"
#include "graph/knn_graph.h"
#include "graph/partition_fm.h"
#include "util/random.h"

namespace les3 {
namespace graph {
namespace {

TEST(GraphTest, FromEdgesDedupsAndSymmetrizes) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 0}, {2, 3}, {2, 2}, {0, 1}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);  // (0,1) and (2,3); self-loop dropped
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(*g.NeighborsBegin(0), 1u);
  EXPECT_EQ(g.Degree(2), 1u);
  EXPECT_EQ(*g.NeighborsBegin(3), 2u);
}

TEST(GraphTest, CutSizeByHand) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  std::vector<uint32_t> part{0, 0, 1, 1};
  EXPECT_EQ(CutSize(g, part), 1u);  // only edge (1,2) crosses
  std::vector<uint32_t> all_same{0, 0, 0, 0};
  EXPECT_EQ(CutSize(g, all_same), 0u);
}

SetDatabase ClusteredDb(uint32_t clusters, uint32_t per_cluster,
                        uint64_t seed) {
  Rng rng(seed);
  SetDatabase db(clusters * 30);
  for (uint32_t c = 0; c < clusters; ++c) {
    for (uint32_t i = 0; i < per_cluster; ++i) {
      std::vector<TokenId> tokens;
      for (int j = 0; j < 8; ++j) {
        tokens.push_back(static_cast<TokenId>(30 * c + rng.Uniform(30)));
      }
      db.AddSet(SetRecord::FromTokens(std::move(tokens)));
    }
  }
  return db;
}

TEST(KnnGraphTest, NeighborsAreMostlyIntraCluster) {
  SetDatabase db = ClusteredDb(4, 50, 3);
  KnnGraphOptions opts;
  opts.k = 5;
  Graph g = BuildKnnGraph(db, opts);
  EXPECT_EQ(g.num_vertices(), db.size());
  uint64_t intra = 0, total = 0;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (const uint32_t* n = g.NeighborsBegin(v); n != g.NeighborsEnd(v);
         ++n) {
      ++total;
      if (*n / 50 == v / 50) ++intra;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(intra) / total, 0.9);
}

TEST(KnnGraphTest, RangeGraphEdgesRespectThreshold) {
  SetDatabase db = ClusteredDb(2, 30, 5);
  Graph g = BuildRangeGraph(db, 0.5, SimilarityMeasure::kJaccard);
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (const uint32_t* n = g.NeighborsBegin(v); n != g.NeighborsEnd(v);
         ++n) {
      EXPECT_GE(Similarity(SimilarityMeasure::kJaccard, db.set(v), db.set(*n)),
                0.5);
    }
  }
}

TEST(FmPartitionTest, BalancedParts) {
  SetDatabase db = ClusteredDb(4, 64, 7);
  KnnGraphOptions kopts;
  kopts.k = 6;
  Graph g = BuildKnnGraph(db, kopts);
  for (uint32_t parts : {2u, 4u, 8u}) {
    auto assignment = PartitionGraph(g, parts);
    std::vector<size_t> sizes(parts, 0);
    for (uint32_t p : assignment) {
      ASSERT_LT(p, parts);
      ++sizes[p];
    }
    size_t target = db.size() / parts;
    for (size_t s : sizes) {
      EXPECT_NEAR(static_cast<double>(s), static_cast<double>(target),
                  target * 0.25 + 2);
    }
  }
}

TEST(FmPartitionTest, CutBeatsRandomOnClusteredGraph) {
  SetDatabase db = ClusteredDb(4, 64, 9);
  KnnGraphOptions kopts;
  kopts.k = 6;
  Graph g = BuildKnnGraph(db, kopts);
  auto fm = PartitionGraph(g, 4);
  Rng rng(11);
  std::vector<uint32_t> random(g.num_vertices());
  for (auto& p : random) p = static_cast<uint32_t>(rng.Uniform(4));
  EXPECT_LT(CutSize(g, fm), CutSize(g, random) / 2);
}

TEST(FmPartitionTest, SinglePartTrivial) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}});
  auto assignment = PartitionGraph(g, 1);
  for (uint32_t p : assignment) EXPECT_EQ(p, 0u);
}

TEST(FmPartitionTest, DisconnectedGraphStillCovered) {
  // No edges at all: partitioning must still produce balanced parts.
  Graph g = Graph::FromEdges(10, {});
  auto assignment = PartitionGraph(g, 5);
  std::vector<size_t> sizes(5, 0);
  for (uint32_t p : assignment) {
    ASSERT_LT(p, 5u);
    ++sizes[p];
  }
  for (size_t s : sizes) EXPECT_EQ(s, 2u);
}

}  // namespace
}  // namespace graph
}  // namespace les3
