// Tests for storage/: disk cost model, layouts, and disk-mode searchers
// (exactness + the sequential-vs-random I/O ordering Figure 13 relies on).

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "storage/disk.h"
#include "storage/disk_search.h"
#include "storage/disk_store.h"
#include "util/random.h"

namespace les3 {
namespace storage {
namespace {

TEST(DiskSimulatorTest, SequentialReadsOneSeek) {
  DiskSimulator sim;
  sim.Read(0, 4096);
  sim.Read(4096, 4096);
  sim.Read(8192, 100);
  EXPECT_EQ(sim.seeks(), 1u);
  EXPECT_EQ(sim.pages_read(), 3u);
}

TEST(DiskSimulatorTest, ScatteredReadsSeekEach) {
  DiskSimulator sim;
  sim.Read(0, 100);
  sim.Read(1 << 20, 100);
  sim.Read(5 << 20, 100);
  EXPECT_EQ(sim.seeks(), 3u);
}

TEST(DiskSimulatorTest, RandomReadAlwaysSeeks) {
  DiskSimulator sim;
  sim.RandomRead(100);
  sim.RandomRead(100);
  EXPECT_EQ(sim.seeks(), 2u);
  EXPECT_EQ(sim.pages_read(), 2u);
}

TEST(DiskSimulatorTest, ElapsedMsDominatedBySeeksWhenRandom) {
  DiskOptions opts;
  DiskSimulator seq(opts), rnd(opts);
  // Same bytes: 1000 pages sequential vs 1000 random pages.
  seq.Read(0, 1000 * opts.page_bytes);
  for (int i = 0; i < 1000; ++i) rnd.RandomRead(opts.page_bytes);
  EXPECT_LT(seq.ElapsedMs() * 20, rnd.ElapsedMs());
}

TEST(DiskSimulatorTest, ResetClearsState) {
  DiskSimulator sim;
  sim.Read(0, 100);
  sim.Reset();
  EXPECT_EQ(sim.seeks(), 0u);
  EXPECT_EQ(sim.bytes_read(), 0u);
  EXPECT_DOUBLE_EQ(sim.ElapsedMs(), 0.0);
}

TEST(DiskLayoutTest, IdOrderedExtentsAreContiguous) {
  SetDatabase db(10);
  db.AddSet(SetRecord::FromTokens({1, 2}));
  db.AddSet(SetRecord::FromTokens({3}));
  DiskLayout layout = DiskLayout::IdOrdered(db);
  EXPECT_EQ(layout.set_extent(0).offset, 0u);
  EXPECT_EQ(layout.set_extent(0).bytes, 12u);  // 4 + 2*4
  EXPECT_EQ(layout.set_extent(1).offset, 12u);
  EXPECT_EQ(layout.total_bytes(), 20u);
}

TEST(DiskLayoutTest, GroupContiguousGroupsMembersTogether) {
  SetDatabase db(10);
  db.AddSet(SetRecord::FromTokens({1}));      // group 1
  db.AddSet(SetRecord::FromTokens({2, 3}));   // group 0
  db.AddSet(SetRecord::FromTokens({4}));      // group 1
  DiskLayout layout = DiskLayout::GroupContiguous(db, {1, 0, 1}, 2);
  // Group 0 first: set 1 at offset 0.
  EXPECT_EQ(layout.set_extent(1).offset, 0u);
  EXPECT_EQ(layout.group_extent(0).offset, 0u);
  EXPECT_EQ(layout.group_extent(0).bytes, 12u);
  EXPECT_EQ(layout.group_extent(1).offset, 12u);
  EXPECT_EQ(layout.group_extent(1).bytes, 16u);
  EXPECT_EQ(layout.total_bytes(), 28u);
}

TEST(PostingLayoutTest, OffsetsAccumulate) {
  PostingLayout layout({3, 0, 2});
  EXPECT_EQ(layout.posting_extent(0).bytes, 12u);
  EXPECT_EQ(layout.posting_extent(1).bytes, 0u);
  EXPECT_EQ(layout.posting_extent(2).offset, 12u);
  EXPECT_EQ(layout.total_bytes(), 20u);
}

// ---------------------------------------------------------------------------
// Disk searchers: exactness + relative I/O behavior.

struct DiskFixture {
  SetDatabase db;
  std::vector<GroupId> assignment;
  uint32_t num_groups = 16;
};

DiskFixture MakeFixture(uint64_t seed) {
  DiskFixture f;
  datagen::ZipfOptions opts;
  opts.num_sets = 600;
  opts.num_tokens = 150;
  opts.avg_set_size = 8;
  opts.seed = seed;
  f.db = datagen::GenerateZipf(opts);
  Rng rng(seed + 1);
  f.assignment.resize(f.db.size());
  for (auto& g : f.assignment) {
    g = static_cast<GroupId>(rng.Uniform(f.num_groups));
  }
  return f;
}

TEST(DiskSearchTest, AllMethodsAgreeWithMemoryBruteForce) {
  DiskFixture f = MakeFixture(3);
  auto measure = SimilarityMeasure::kJaccard;
  DiskLes3 les3(&f.db, f.assignment, f.num_groups, measure);
  DiskBruteForce brute(&f.db, measure);
  DiskInvIdx invidx(&f.db, {});
  DiskDualTrans dualtrans(&f.db, {});
  baselines::BruteForce reference(&f.db, measure);
  Rng rng(5);
  for (int q = 0; q < 10; ++q) {
    SetView query = f.db.set(static_cast<SetId>(rng.Uniform(f.db.size())));
    auto expected_knn = reference.Knn(query, 10);
    auto check_knn = [&](const DiskQueryResult& r) {
      ASSERT_EQ(r.hits.size(), expected_knn.size());
      for (size_t i = 0; i < r.hits.size(); ++i) {
        EXPECT_NEAR(r.hits[i].second, expected_knn[i].second, 1e-12);
      }
      EXPECT_GT(r.io_ms, 0.0);
    };
    check_knn(les3.Knn(query, 10));
    check_knn(brute.Knn(query, 10));
    check_knn(invidx.Knn(query, 10));
    check_knn(dualtrans.Knn(query, 10));

    auto expected_range = reference.Range(query, 0.6);
    auto check_range = [&](const DiskQueryResult& r) {
      ASSERT_EQ(r.hits.size(), expected_range.size());
    };
    check_range(les3.Range(query, 0.6));
    check_range(brute.Range(query, 0.6));
    check_range(invidx.Range(query, 0.6));
    check_range(dualtrans.Range(query, 0.6));
  }
}

TEST(DiskSearchTest, BruteForceIoIndependentOfQuery) {
  DiskFixture f = MakeFixture(7);
  DiskBruteForce brute(&f.db, SimilarityMeasure::kJaccard);
  auto r1 = brute.Knn(f.db.set(0), 5);
  auto r2 = brute.Knn(f.db.set(99), 50);
  EXPECT_DOUBLE_EQ(r1.io_ms, r2.io_ms);
  EXPECT_EQ(r1.seeks, 1u);
}

TEST(DiskSearchTest, Les3SkipsGroupsOnSelectiveQueries) {
  // With cluster-aligned groups and a high threshold, LES3 must read fewer
  // bytes than the full scan.
  Rng rng(9);
  SetDatabase db(320);
  std::vector<GroupId> aligned;
  for (uint32_t c = 0; c < 16; ++c) {
    for (int i = 0; i < 40; ++i) {
      std::vector<TokenId> tokens;
      for (int j = 0; j < 8; ++j) {
        tokens.push_back(static_cast<TokenId>(20 * c + rng.Uniform(20)));
      }
      db.AddSet(SetRecord::FromTokens(std::move(tokens)));
      aligned.push_back(c);
    }
  }
  DiskLes3 les3(&db, aligned, 16, SimilarityMeasure::kJaccard);
  DiskBruteForce brute(&db, SimilarityMeasure::kJaccard);
  double les3_io = 0, brute_io = 0;
  for (int q = 0; q < 20; ++q) {
    SetView query = db.set(static_cast<SetId>(q * 31 % db.size()));
    les3_io += les3.Range(query, 0.7).io_ms;
    brute_io += brute.Range(query, 0.7).io_ms;
  }
  EXPECT_LT(les3_io, brute_io);
}

TEST(DiskSearchTest, InvIdxChargesPostingsAndCandidates) {
  DiskFixture f = MakeFixture(11);
  DiskInvIdx invidx(&f.db, {});
  auto r = invidx.Range(f.db.set(0), 0.8);
  EXPECT_GT(r.seeks, 0u);
  EXPECT_GT(r.pages, 0u);
}

}  // namespace
}  // namespace storage
}  // namespace les3
