// Tests for tgm/tgm.h: construction against the paper's Figure 1 example,
// the matched-count/UB machinery, and Section 6 update handling.

#include "tgm/tgm.h"

#include <gtest/gtest.h>

#include "datagen/generators.h"
#include "util/random.h"

namespace les3 {
namespace tgm {
namespace {

// The Figure 1 example: T = {A,B,C,D} (ids 0..3), six sets in two groups.
// G0 = {{A}, {A,B}, {A,B,C}}  -> tokens {A,B,C}
// G1 = {{D}, {B,D}, {B,C,D}}  -> tokens {B,C,D}
SetDatabase Figure1Db() {
  SetDatabase db(4);
  db.AddSet(SetRecord::FromTokens({0}));
  db.AddSet(SetRecord::FromTokens({0, 1}));
  db.AddSet(SetRecord::FromTokens({0, 1, 2}));
  db.AddSet(SetRecord::FromTokens({3}));
  db.AddSet(SetRecord::FromTokens({1, 3}));
  db.AddSet(SetRecord::FromTokens({1, 2, 3}));
  return db;
}

const std::vector<GroupId> kFig1Assignment{0, 0, 0, 1, 1, 1};

TEST(TgmTest, Figure1Matrix) {
  SetDatabase db = Figure1Db();
  Tgm tgm(db, kFig1Assignment, 2);
  EXPECT_EQ(tgm.num_groups(), 2u);
  // M[G0, *] = 1,1,1,0 ; M[G1, *] = 0,1,1,1.
  EXPECT_TRUE(tgm.Test(0, 0));
  EXPECT_TRUE(tgm.Test(0, 1));
  EXPECT_TRUE(tgm.Test(0, 2));
  EXPECT_FALSE(tgm.Test(0, 3));
  EXPECT_FALSE(tgm.Test(1, 0));
  EXPECT_TRUE(tgm.Test(1, 1));
  EXPECT_TRUE(tgm.Test(1, 2));
  EXPECT_TRUE(tgm.Test(1, 3));
}

TEST(TgmTest, Figure1QueryExample) {
  // Query {A}: UB(Q, G0) = 1, UB(Q, G1) = 0 (paper Section 3.1).
  SetDatabase db = Figure1Db();
  Tgm tgm(db, kFig1Assignment, 2);
  std::vector<double> ubs;
  tgm.UpperBounds(SetRecord::FromTokens({0}), SimilarityMeasure::kJaccard,
                  &ubs);
  ASSERT_EQ(ubs.size(), 2u);
  EXPECT_DOUBLE_EQ(ubs[0], 1.0);
  EXPECT_DOUBLE_EQ(ubs[1], 0.0);
}

TEST(TgmTest, GroupMembersAndSizes) {
  SetDatabase db = Figure1Db();
  Tgm tgm(db, kFig1Assignment, 2);
  EXPECT_EQ(tgm.group_size(0), 3u);
  EXPECT_EQ(tgm.group_members(1), (std::vector<SetId>{3, 4, 5}));
  EXPECT_EQ(tgm.group_of(2), 0u);
  EXPECT_EQ(tgm.group_of(5), 1u);
}

TEST(TgmTest, MatchedCountsMultiplicityAndUnknownTokens) {
  SetDatabase db = Figure1Db();
  Tgm tgm(db, kFig1Assignment, 2);
  // Query {B, B, Z} where Z = token 9 (outside T): B matched twice in both
  // groups, Z contributes nothing.
  std::vector<uint32_t> counts;
  size_t cols = tgm.MatchedCounts(SetRecord::FromTokens({1, 1, 9}), &counts);
  EXPECT_EQ(cols, 1u);  // only B's column is non-empty
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
}

TEST(TgmTest, BitsMatchDefinitionOnRandomData) {
  datagen::UniformOptions opts;
  opts.num_sets = 500;
  opts.num_tokens = 200;
  opts.seed = 3;
  SetDatabase db = GenerateUniform(opts);
  Rng rng(5);
  const uint32_t n = 16;
  std::vector<GroupId> assignment(db.size());
  for (auto& g : assignment) g = static_cast<GroupId>(rng.Uniform(n));
  Tgm tgm(db, assignment, n);
  for (GroupId g = 0; g < n; ++g) {
    for (TokenId t = 0; t < db.num_tokens(); ++t) {
      bool expected = false;
      for (SetId s : tgm.group_members(g)) {
        expected = expected || db.set(s).Contains(t);
      }
      ASSERT_EQ(tgm.Test(g, t), expected) << "g=" << g << " t=" << t;
    }
  }
}

TEST(TgmTest, UpperBoundDominatesAllMembers) {
  // The core Theorem 3.1 invariant on the real index across measures.
  datagen::ZipfOptions opts;
  opts.num_sets = 800;
  opts.num_tokens = 300;
  opts.seed = 7;
  SetDatabase db = GenerateZipf(opts);
  Rng rng(9);
  const uint32_t n = 20;
  std::vector<GroupId> assignment(db.size());
  for (auto& g : assignment) g = static_cast<GroupId>(rng.Uniform(n));
  Tgm tgm(db, assignment, n);
  for (auto measure : {SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
                       SimilarityMeasure::kCosine}) {
    for (int q = 0; q < 30; ++q) {
      SetView query = db.set(static_cast<SetId>(rng.Uniform(800)));
      std::vector<double> ubs;
      tgm.UpperBounds(query, measure, &ubs);
      for (GroupId g = 0; g < n; ++g) {
        for (SetId s : tgm.group_members(g)) {
          ASSERT_GE(ubs[g] + 1e-12, Similarity(measure, query, db.set(s)))
              << ToString(measure);
        }
      }
    }
  }
}

TEST(TgmTest, RunOptimizeKeepsSemantics) {
  datagen::UniformOptions opts;
  opts.num_sets = 400;
  opts.num_tokens = 100;
  SetDatabase db = GenerateUniform(opts);
  std::vector<GroupId> assignment(db.size());
  for (SetId i = 0; i < db.size(); ++i) assignment[i] = i % 4;
  Tgm tgm(db, assignment, 4);
  std::vector<uint32_t> before;
  tgm.MatchedCounts(db.set(0), &before);
  tgm.RunOptimize();
  std::vector<uint32_t> after;
  tgm.MatchedCounts(db.set(0), &after);
  EXPECT_EQ(before, after);
}

TEST(TgmUpdateTest, ClosedUniverseInsertChoosesBestGroup) {
  SetDatabase db = Figure1Db();
  Tgm tgm(db, kFig1Assignment, 2);
  // New set {A, B}: UB(G0) = 1.0, UB(G1) = 0.5 -> goes to G0.
  SetRecord s = SetRecord::FromTokens({0, 1});
  SetId id = db.AddSet(s);
  GroupId g = tgm.AddSet(id, db.set(id), SimilarityMeasure::kJaccard);
  EXPECT_EQ(g, 0u);
  EXPECT_EQ(tgm.group_of(id), 0u);
  EXPECT_EQ(tgm.group_size(0), 4u);
}

TEST(TgmUpdateTest, TieBreaksToSmallestGroup) {
  SetDatabase db = Figure1Db();
  // Make group 1 smaller: assignment {0,0,0,0,1,1}.
  std::vector<GroupId> assignment{0, 0, 0, 0, 1, 1};
  Tgm tgm(db, assignment, 2);
  // Query {B}: both groups contain B -> UB tie at 1.0; group 1 is smaller.
  SetId id = db.AddSet(SetRecord::FromTokens({1}));
  GroupId g = tgm.AddSet(id, db.set(id), SimilarityMeasure::kJaccard);
  EXPECT_EQ(g, 1u);
}

TEST(TgmUpdateTest, OpenUniverseInsertGrowsColumns) {
  SetDatabase db = Figure1Db();
  Tgm tgm(db, kFig1Assignment, 2);
  uint32_t cols_before = tgm.num_token_columns();
  // {A, E, F} with E=7, F=9 unseen: routed by PS = {A} to G0, then new
  // columns appear and are set for G0.
  SetId id = db.AddSet(SetRecord::FromTokens({0, 7, 9}));
  GroupId g = tgm.AddSet(id, db.set(id), SimilarityMeasure::kJaccard);
  EXPECT_EQ(g, 0u);
  EXPECT_GT(tgm.num_token_columns(), cols_before);
  EXPECT_TRUE(tgm.Test(0, 7));
  EXPECT_TRUE(tgm.Test(0, 9));
  EXPECT_FALSE(tgm.Test(1, 7));
  // Searching for the new token now reaches the right group.
  std::vector<uint32_t> counts;
  tgm.MatchedCounts(SetRecord::FromTokens({7}), &counts);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
}

TEST(TgmUpdateTest, AllNewTokensGoToSmallestGroup) {
  SetDatabase db = Figure1Db();
  std::vector<GroupId> assignment{0, 0, 0, 0, 0, 1};  // group 1 has 1 set
  Tgm tgm(db, assignment, 2);
  SetId id = db.AddSet(SetRecord::FromTokens({20, 21}));
  GroupId g = tgm.AddSet(id, db.set(id), SimilarityMeasure::kJaccard);
  EXPECT_EQ(g, 1u);
}

TEST(TgmTest, MemoryAccountingPositiveAndOrdered) {
  SetDatabase db = Figure1Db();
  Tgm tgm(db, kFig1Assignment, 2);
  EXPECT_GT(tgm.BitmapBytes(), 0u);
  EXPECT_GT(tgm.MemoryBytes(), tgm.BitmapBytes());
}

}  // namespace
}  // namespace tgm
}  // namespace les3
