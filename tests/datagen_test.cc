// Tests for datagen/: Zipf sampler, synthetic generators, dataset analogs.

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "core/stats.h"
#include "datagen/analogs.h"
#include "datagen/generators.h"
#include "datagen/zipf.h"

namespace les3 {
namespace datagen {
namespace {

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfSampler z(10, 0.0);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 600);
}

TEST(ZipfTest, SkewedWhenExponentLarge) {
  ZipfSampler z(1000, 1.2);
  Rng rng(2);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.Sample(&rng)];
  EXPECT_GT(counts[0], counts[100] * 5);
  EXPECT_GT(counts[0], 2000);
}

TEST(ZipfTest, SamplesWithinRange) {
  ZipfSampler z(7, 2.0);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Sample(&rng), 7u);
}

TEST(GeneratorsTest, UniformShapeAndDeterminism) {
  UniformOptions opts;
  opts.num_sets = 2000;
  opts.num_tokens = 500;
  opts.avg_set_size = 8.0;
  opts.seed = 5;
  SetDatabase db = GenerateUniform(opts);
  EXPECT_EQ(db.size(), 2000u);
  EXPECT_EQ(db.num_tokens(), 500u);
  DatasetStats s = ComputeStats(db);
  EXPECT_NEAR(s.avg_set_size, 8.0, 1.0);
  EXPECT_GE(s.min_set_size, 1u);
  // Deterministic per seed.
  SetDatabase db2 = GenerateUniform(opts);
  for (SetId i = 0; i < 100; ++i) EXPECT_EQ(db.set(i), db2.set(i));
}

TEST(GeneratorsTest, UniformTokensWithinUniverse) {
  UniformOptions opts;
  opts.num_sets = 500;
  opts.num_tokens = 64;
  SetDatabase db = GenerateUniform(opts);
  for (SetId i = 0; i < db.size(); ++i) {
    SetView s = db.set(i);
    for (TokenId t : s.tokens()) EXPECT_LT(t, 64u);
  }
}

TEST(GeneratorsTest, ZipfPopularTokensDominate) {
  ZipfOptions opts;
  opts.num_sets = 3000;
  opts.num_tokens = 2000;
  opts.avg_set_size = 10.0;
  opts.zipf_exponent = 1.0;
  SetDatabase db = GenerateZipf(opts);
  std::vector<int> freq(2000, 0);
  for (SetId i = 0; i < db.size(); ++i) {
    SetView s = db.set(i);
    for (TokenId t : s.tokens()) ++freq[t];
  }
  int head = 0, tail = 0;
  for (int t = 0; t < 20; ++t) head += freq[t];
  for (int t = 1000; t < 1020; ++t) tail += freq[t];
  EXPECT_GT(head, tail * 10);
}

TEST(GeneratorsTest, ZipfRespectsSizeBounds) {
  ZipfOptions opts;
  opts.num_sets = 1000;
  opts.num_tokens = 5000;
  opts.min_set_size = 2;
  opts.max_set_size = 30;
  SetDatabase db = GenerateZipf(opts);
  DatasetStats s = ComputeStats(db);
  EXPECT_GE(s.min_set_size, 2u);
  EXPECT_LE(s.max_set_size, 30u);
}

TEST(GeneratorsTest, PowerLawAlphaControlsSimilarityMass) {
  PowerLawSimOptions lo;
  lo.num_sets = 3000;
  lo.num_tokens = 3000;
  lo.alpha = 1.0;  // most intra-cluster pairs similar
  PowerLawSimOptions hi = lo;
  hi.alpha = 4.0;  // most pairs dissimilar
  SetDatabase db_lo = GeneratePowerLawSimilarity(lo);
  SetDatabase db_hi = GeneratePowerLawSimilarity(hi);
  auto h_lo = SimilarityHistogram(db_lo, 20000, 10, 1);
  auto h_hi = SimilarityHistogram(db_hi, 20000, 10, 1);
  // Mass in the top half of the similarity range shrinks as alpha grows.
  double top_lo = 0, top_hi = 0;
  for (size_t b = 5; b < 10; ++b) {
    top_lo += h_lo[b];
    top_hi += h_hi[b];
  }
  EXPECT_GT(top_lo, top_hi * 2);
}

TEST(GeneratorsTest, SampleQueryIdsDistinctAndBounded) {
  UniformOptions opts;
  opts.num_sets = 300;
  SetDatabase db = GenerateUniform(opts);
  auto ids = SampleQueryIds(db, 50, 9);
  EXPECT_EQ(ids.size(), 50u);
  std::set<SetId> s(ids.begin(), ids.end());
  EXPECT_EQ(s.size(), 50u);
  for (SetId id : ids) EXPECT_LT(id, db.size());
  // Requesting more than |D| clamps.
  EXPECT_EQ(SampleQueryIds(db, 1000, 9).size(), 300u);
}

TEST(AnalogsTest, SixSpecsInPaperOrder) {
  const auto& specs = AllAnalogSpecs();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].name, "KOSARAK");
  EXPECT_EQ(specs[5].name, "PMC");
  EXPECT_EQ(MemoryAnalogSpecs().size(), 4u);
  EXPECT_EQ(DiskAnalogSpecs().size(), 2u);
}

TEST(AnalogsTest, SpecLookupByName) {
  const auto& s = AnalogSpecByName("DBLP");
  EXPECT_EQ(s.paper_num_sets, 5875251u);
  EXPECT_EQ(s.min_set_size, 2u);
}

TEST(AnalogsTest, GeneratedStatisticsTrackTable2) {
  // Spot-check KOSARAK: avg set size within 25% of the paper's 8.1 and the
  // universe matches the scaled |T|.
  const auto& spec = AnalogSpecByName("KOSARAK");
  SetDatabase db = GenerateAnalogSample(spec, 20000);
  DatasetStats s = ComputeStats(db);
  EXPECT_EQ(s.num_sets, 20000u);
  EXPECT_NEAR(s.avg_set_size, spec.avg_set_size, spec.avg_set_size * 0.25);
  EXPECT_GE(s.min_set_size, spec.min_set_size);
  EXPECT_LE(s.max_set_size, spec.max_set_size);
  EXPECT_EQ(db.num_tokens(), spec.num_tokens);
}

TEST(AnalogsTest, DblpMinSizeTwo) {
  const auto& spec = AnalogSpecByName("DBLP");
  SetDatabase db = GenerateAnalogSample(spec, 5000);
  DatasetStats s = ComputeStats(db);
  EXPECT_GE(s.min_set_size, 2u);
}

}  // namespace
}  // namespace datagen
}  // namespace les3
