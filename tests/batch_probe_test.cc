// Differential suite for the batched column-probe pipeline: KnnBatch /
// RangeBatch must agree BYTE-exactly (ids, similarity bit patterns, order,
// and per-query counters) with sequential Knn / Range on every backend,
// every similarity measure, and both bitmap backends — including ragged
// batches, empty queries, duplicate-token multisets, out-of-universe
// tokens, unreachable thresholds, and a batch of one. The batched pipeline
// replays the exact per-query kernel sequence of the solo walk, so any
// divergence here is a bug, not a tolerance.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/engine_builder.h"
#include "api/engine_options.h"
#include "api/search_engine.h"
#include "datagen/generators.h"

namespace les3 {
namespace api {
namespace {

std::shared_ptr<SetDatabase> MakeDb(uint64_t seed, uint32_t num_sets = 400,
                                    uint32_t num_tokens = 120) {
  datagen::ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = num_tokens;
  opts.avg_set_size = 8;
  opts.zipf_exponent = 0.8;
  opts.seed = seed;
  return std::make_shared<SetDatabase>(datagen::GenerateZipf(opts));
}

EngineOptions FastOptions() {
  EngineOptions options;
  options.num_groups = 24;
  options.num_shards = 3;  // exercises the (chunk, shard) striping + id map
  options.cascade.init_groups = 16;
  options.cascade.min_group_size = 10;
  options.cascade.pairs_per_model = 2000;
  options.cascade.seed = 7;
  return options;
}

std::unique_ptr<SearchEngine> MustBuild(std::shared_ptr<SetDatabase> db,
                                        const std::string& backend,
                                        EngineOptions options) {
  auto engine = EngineBuilder::Build(std::move(db), backend, options);
  EXPECT_TRUE(engine.ok()) << backend << ": " << engine.status().ToString();
  return std::move(engine).ValueOrDie();
}

/// The ragged query battery: empty set, singleton, duplicate-token
/// multiset, tokens beyond the trained universe, a wide set, and a spread
/// of database sets (so cache-free batches mix hot and cold columns).
std::vector<SetRecord> RaggedQueries(const SetDatabase& db,
                                     uint32_t num_tokens) {
  std::vector<SetRecord> queries;
  queries.emplace_back();                                      // empty
  queries.push_back(SetRecord::FromSortedTokens({0}));         // singleton
  queries.push_back(SetRecord::FromSortedTokens({5, 5, 5}));   // multiset
  queries.push_back(SetRecord::FromSortedTokens(               // unseen ids
      {num_tokens + 3, num_tokens + 9}));
  {
    std::vector<TokenId> wide;
    for (TokenId t = 0; t < 40; t += 2) wide.push_back(t);
    queries.push_back(SetRecord::FromSortedTokens(std::move(wide)));
  }
  for (SetId i = 0; i < db.size(); i += 37) {
    queries.emplace_back(db.set(i));
  }
  // A duplicate of an earlier query: both rows must fan out independently.
  queries.push_back(queries[1]);
  return queries;
}

/// Byte-exact: same ids, same similarity BIT PATTERNS, same order.
void ExpectExactHits(const std::vector<Hit>& expected,
                     const std::vector<Hit>& actual,
                     const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].first, actual[i].first) << label << " rank " << i;
    EXPECT_EQ(expected[i].second, actual[i].second) << label << " rank " << i;
  }
}

/// Every deterministic counter must agree too — micros is wall time and
/// is the one field allowed to differ.
void ExpectExactStats(const search::QueryStats& expected,
                      const search::QueryStats& actual,
                      const std::string& label) {
  EXPECT_EQ(expected.candidates_verified, actual.candidates_verified) << label;
  EXPECT_EQ(expected.candidates_size_skipped, actual.candidates_size_skipped)
      << label;
  EXPECT_EQ(expected.groups_visited, actual.groups_visited) << label;
  EXPECT_EQ(expected.groups_pruned, actual.groups_pruned) << label;
  EXPECT_EQ(expected.columns_scanned, actual.columns_scanned) << label;
  EXPECT_EQ(expected.results, actual.results) << label;
  EXPECT_EQ(expected.pruning_efficiency, actual.pruning_efficiency) << label;
}

void ExpectBatchMatchesSequential(const SearchEngine& engine,
                                  const std::vector<SetRecord>& queries,
                                  const std::string& label,
                                  bool check_stats) {
  for (size_t k : {size_t{0}, size_t{1}, size_t{5}, size_t{1000}}) {
    std::vector<QueryResult> batch = engine.KnnBatch(queries, k);
    ASSERT_EQ(batch.size(), queries.size()) << label;
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryResult solo = engine.Knn(queries[i].view(), k);
      std::string tag =
          label + " knn k=" + std::to_string(k) + " q=" + std::to_string(i);
      EXPECT_TRUE(batch[i].status.ok()) << tag;
      ExpectExactHits(solo.hits, batch[i].hits, tag);
      if (check_stats) ExpectExactStats(solo.stats, batch[i].stats, tag);
    }
  }
  // 1.1 is an unreachable threshold (finite, above every measure's upper
  // bound): the solo path early-returns, the batch path must ride the
  // query along as hopeless and answer identically.
  for (double delta : {0.0, 0.3, 0.7, 1.1}) {
    std::vector<QueryResult> batch = engine.RangeBatch(queries, delta);
    ASSERT_EQ(batch.size(), queries.size()) << label;
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryResult solo = engine.Range(queries[i].view(), delta);
      std::string tag =
          label + " range d=" + std::to_string(delta) + " q=" + std::to_string(i);
      EXPECT_TRUE(batch[i].status.ok()) << tag;
      ExpectExactHits(solo.hits, batch[i].hits, tag);
      if (check_stats) ExpectExactStats(solo.stats, batch[i].stats, tag);
    }
  }
}

// Every backend, one mixed batch: the fused pipelines (les3, sharded_les3)
// and the thread-pooled base path must all be invisible in the answers.
TEST(BatchProbe, AllBackendsMatchSequential) {
  auto db = MakeDb(31);
  std::vector<SetRecord> queries = RaggedQueries(*db, 120);
  for (const std::string& backend : BackendNames()) {
    auto engine = MustBuild(db, backend, FastOptions());
    // Stats comparison is meaningful on the fused pipelines; the base
    // path trivially shares code with the solo entry points.
    bool check_stats = backend == "les3";
    ExpectBatchMatchesSequential(*engine, queries, backend, check_stats);
  }
}

// The batched accumulators have per-measure weights and two bitmap
// decoders; sweep the full grid on the fused backends.
TEST(BatchProbe, MeasuresTimesBitmapBackendsMatchSequential) {
  auto db = MakeDb(32);
  std::vector<SetRecord> queries = RaggedQueries(*db, 120);
  for (SimilarityMeasure measure :
       {SimilarityMeasure::kJaccard, SimilarityMeasure::kDice,
        SimilarityMeasure::kCosine, SimilarityMeasure::kContainment}) {
    for (bitmap::BitmapBackend bitmap_backend :
         {bitmap::BitmapBackend::kRoaring, bitmap::BitmapBackend::kBitVector}) {
      for (const std::string& backend : {std::string("les3"),
                                         std::string("sharded_les3")}) {
        EngineOptions options = FastOptions();
        options.measure = measure;
        options.bitmap_backend = bitmap_backend;
        auto engine = MustBuild(db, backend, options);
        std::string label = backend + "/" + ToString(measure) + "/" +
                            bitmap::ToString(bitmap_backend);
        ExpectBatchMatchesSequential(*engine, queries, label,
                                     backend == "les3");
      }
    }
  }
}

// Degenerate batch shapes the fan-out plan must not trip over.
TEST(BatchProbe, DegenerateBatchShapes) {
  auto db = MakeDb(33);
  auto engine = MustBuild(db, "les3", FastOptions());

  std::vector<SetRecord> empty_batch;
  EXPECT_TRUE(engine->KnnBatch(empty_batch, 5).empty());
  EXPECT_TRUE(engine->RangeBatch(empty_batch, 0.5).empty());

  std::vector<SetRecord> one{SetRecord(db->set(3))};
  ExpectBatchMatchesSequential(*engine, one, "batch-of-1", true);

  // All rows identical: every subscribing row accumulates the same
  // columns; answers must still be per-row exact.
  std::vector<SetRecord> same(17, SetRecord(db->set(7)));
  ExpectBatchMatchesSequential(*engine, same, "identical-rows", true);

  // All rows empty: nothing subscribes to anything.
  std::vector<SetRecord> empties(5);
  ExpectBatchMatchesSequential(*engine, empties, "all-empty", true);
}

// A batch larger than the sharded engine's chunk size crosses the chunk
// boundary; per-query answers must not depend on where the cuts fall.
TEST(BatchProbe, BatchesLargerThanChunkStayExact) {
  auto db = MakeDb(34, 300);
  auto engine = MustBuild(db, "sharded_les3", FastOptions());
  std::vector<SetRecord> queries;
  for (size_t i = 0; i < 150; ++i) {
    queries.emplace_back(db->set(static_cast<SetId>((i * 13) % db->size())));
  }
  std::vector<QueryResult> batch = engine->KnnBatch(queries, 7);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryResult solo = engine->Knn(queries[i].view(), 7);
    ExpectExactHits(solo.hits, batch[i].hits, "chunk q=" + std::to_string(i));
  }
}

// Mutations between batches: the batch path must see exactly what the
// solo path sees at every index state (tombstones, fresh inserts, updated
// content — the stale-bit and arena-garbage machinery included).
TEST(BatchProbe, ExactAcrossMutations) {
  auto db = MakeDb(35, 300);
  auto engine = MustBuild(db, "sharded_les3", FastOptions());
  std::vector<SetRecord> queries = RaggedQueries(engine->db(), 120);

  auto check = [&](const std::string& phase) {
    std::vector<QueryResult> batch = engine->KnnBatch(queries, 5);
    std::vector<QueryResult> rbatch = engine->RangeBatch(queries, 0.4);
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectExactHits(engine->Knn(queries[i].view(), 5).hits, batch[i].hits,
                      phase + " knn q=" + std::to_string(i));
      ExpectExactHits(engine->Range(queries[i].view(), 0.4).hits,
                      rbatch[i].hits, phase + " range q=" + std::to_string(i));
    }
  };

  check("pristine");
  for (SetId id = 0; id < 60; id += 3) ASSERT_TRUE(engine->Delete(id).ok());
  check("after-deletes");
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(engine->Insert(SetRecord(db->set((i * 7) % db->size()))).ok());
  }
  check("after-inserts");
  for (SetId id = 61; id < 100; id += 2) {  // ids the delete pass skipped
    ASSERT_TRUE(engine->Update(id, SetRecord(db->set(id + 100))).ok());
  }
  check("after-updates");
  auto report = engine->MaintainNow();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  check("after-maintenance");
}

}  // namespace
}  // namespace api
}  // namespace les3
