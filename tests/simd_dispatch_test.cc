// Tests for the runtime SIMD dispatch layer: level naming, the
// environment escape hatch, the test override and its hardware clamp, and
// the supported-level enumeration the forced-path suites iterate.

#include "core/simd_dispatch.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace les3 {
namespace simd {
namespace {

TEST(SimdDispatchTest, LevelNamesAreCanonical) {
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(Level::kAvx2), "avx2");
  EXPECT_STREQ(LevelName(Level::kAvx512), "avx512");
}

TEST(SimdDispatchTest, SupportedLevelsStartAtScalarAndEndAtDetected) {
  std::vector<Level> levels = SupportedLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), Level::kScalar);
  EXPECT_EQ(levels.back(), DetectedLevel());
  for (size_t i = 1; i < levels.size(); ++i) {
    EXPECT_EQ(static_cast<int>(levels[i]),
              static_cast<int>(levels[i - 1]) + 1);
  }
}

TEST(SimdDispatchTest, TestOverrideIsClampedToHardware) {
  // Forcing a level the CPU (or build) lacks must degrade, never let an
  // illegal instruction become reachable.
  SetLevelForTesting(Level::kAvx512);
  EXPECT_LE(static_cast<int>(ActiveLevel()),
            static_cast<int>(DetectedLevel()));
  SetLevelForTesting(Level::kScalar);
  EXPECT_EQ(ActiveLevel(), Level::kScalar);
  ClearLevelForTesting();
  EXPECT_LE(static_cast<int>(ActiveLevel()),
            static_cast<int>(DetectedLevel()));
}

TEST(SimdDispatchTest, ForceScalarEnvironmentPinsToScalar) {
  // LevelFromEnvironment re-reads the variable on every call (unlike
  // ActiveLevel's one-time cache), so the parsing is testable in-process.
  ASSERT_EQ(setenv("LES3_FORCE_SCALAR", "1", /*overwrite=*/1), 0);
  EXPECT_EQ(LevelFromEnvironment(), Level::kScalar);
  // Only the exact string "1" opts in.
  ASSERT_EQ(setenv("LES3_FORCE_SCALAR", "0", 1), 0);
  EXPECT_EQ(LevelFromEnvironment(), DetectedLevel());
  ASSERT_EQ(setenv("LES3_FORCE_SCALAR", "yes", 1), 0);
  EXPECT_EQ(LevelFromEnvironment(), DetectedLevel());
  ASSERT_EQ(unsetenv("LES3_FORCE_SCALAR"), 0);
  EXPECT_EQ(LevelFromEnvironment(), DetectedLevel());
}

}  // namespace
}  // namespace simd
}  // namespace les3
