// Unit tests for bitmap/bitvector.h.

#include "bitmap/bitvector.h"

#include <gtest/gtest.h>

#include <set>

#include "util/random.h"

namespace les3 {
namespace bitmap {
namespace {

TEST(BitVectorTest, SetGetClear) {
  BitVector v(200);
  EXPECT_EQ(v.size(), 200u);
  EXPECT_FALSE(v.Get(63));
  v.Set(63);
  v.Set(64);
  v.Set(199);
  EXPECT_TRUE(v.Get(63));
  EXPECT_TRUE(v.Get(64));
  EXPECT_TRUE(v.Get(199));
  EXPECT_FALSE(v.Get(0));
  v.Clear(64);
  EXPECT_FALSE(v.Get(64));
}

TEST(BitVectorTest, CountMatchesReference) {
  Rng rng(1);
  BitVector v(1000);
  std::set<uint64_t> ref;
  for (int i = 0; i < 300; ++i) {
    uint64_t p = rng.Uniform(1000);
    v.Set(p);
    ref.insert(p);
  }
  EXPECT_EQ(v.Count(), ref.size());
}

TEST(BitVectorTest, AndCountMatchesReference) {
  Rng rng(2);
  BitVector a(512), b(512);
  std::set<uint64_t> ra, rb;
  for (int i = 0; i < 200; ++i) {
    uint64_t p = rng.Uniform(512);
    a.Set(p);
    ra.insert(p);
    uint64_t q = rng.Uniform(512);
    b.Set(q);
    rb.insert(q);
  }
  std::set<uint64_t> inter;
  for (uint64_t p : ra) {
    if (rb.count(p)) inter.insert(p);
  }
  EXPECT_EQ(a.AndCount(b), inter.size());
}

TEST(BitVectorTest, AndCountDifferentSizes) {
  BitVector a(64), b(256);
  a.Set(10);
  b.Set(10);
  b.Set(200);
  EXPECT_EQ(a.AndCount(b), 1u);
  EXPECT_EQ(b.AndCount(a), 1u);
}

TEST(BitVectorTest, ForEachAscending) {
  BitVector v(300);
  std::vector<uint64_t> expected{0, 5, 64, 65, 128, 299};
  for (uint64_t p : expected) v.Set(p);
  std::vector<uint64_t> got;
  v.ForEach([&](uint64_t i) { got.push_back(i); });
  EXPECT_EQ(got, expected);
}

TEST(BitVectorTest, ResizeZeroFillsAndTruncates) {
  BitVector v(10);
  v.Set(9);
  v.Resize(100);
  EXPECT_TRUE(v.Get(9));
  EXPECT_FALSE(v.Get(50));
  v.Set(99);
  v.Resize(20);
  EXPECT_TRUE(v.Get(9));
  v.Resize(100);
  EXPECT_FALSE(v.Get(99));  // truncation cleared it
}

TEST(BitVectorTest, MemoryBytes) {
  BitVector v(65);
  EXPECT_EQ(v.MemoryBytes(), 2 * sizeof(uint64_t));
}

}  // namespace
}  // namespace bitmap
}  // namespace les3
