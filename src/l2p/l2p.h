// L2P as a drop-in Partitioner (the learned counterpart of PAR-C/D/A/G).
//
// Memory accounting note: following the paper's Section 7.4 argument, only
// the model parameters and one mini-batch need to be resident during
// training — PTR representations are recomputable on demand in O(|S| log|T|)
// — so the reported working memory excludes the representation matrix this
// implementation materializes purely as a speed optimization.

#ifndef LES3_L2P_L2P_H_
#define LES3_L2P_L2P_H_

#include <memory>
#include <utility>

#include "l2p/cascade.h"
#include "partition/partitioner.h"

namespace les3 {
namespace l2p {

/// \brief Learning-based partitioner built on the Siamese cascade.
class L2PPartitioner : public partition::Partitioner {
 public:
  explicit L2PPartitioner(CascadeOptions options = {})
      : options_(options) {}

  partition::PartitionResult Partition(const SetDatabase& db,
                                       uint32_t target_groups) override;
  std::string name() const override { return "L2P"; }

  /// Full cascade of the last Partition call (feeds HTGM construction and
  /// the Figure 7 training curves).
  const CascadeResult& last_cascade() const { return last_cascade_; }

  /// Moves the last cascade out (per-level assignments plus any retained
  /// model snapshots can be large; callers that outlive the partitioner
  /// take them instead of copying). The partitioner's retained cascade is
  /// empty afterwards.
  CascadeResult TakeCascade() { return std::move(last_cascade_); }

 private:
  CascadeOptions options_;
  CascadeResult last_cascade_;
};

}  // namespace l2p
}  // namespace les3

#endif  // LES3_L2P_L2P_H_
