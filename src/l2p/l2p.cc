#include "l2p/l2p.h"

#include "embed/ptr.h"
#include "util/logging.h"

namespace les3 {
namespace l2p {

partition::PartitionResult L2PPartitioner::Partition(const SetDatabase& db,
                                                     uint32_t target_groups) {
  CascadeOptions opts = options_;
  opts.target_groups = target_groups;
  embed::PtrRepresentation ptr(db.num_tokens());
  last_cascade_ = TrainCascade(db, ptr, opts);
  LES3_CHECK(!last_cascade_.levels.empty());

  partition::PartitionResult result;
  const CascadeLevel& final_level = last_cascade_.levels.back();
  result.assignment = final_level.assignment;
  result.num_groups = final_level.num_groups;
  result.seconds = last_cascade_.train_seconds;
  result.working_memory_bytes = last_cascade_.working_memory_bytes;
  return result;
}

}  // namespace l2p
}  // namespace les3
