#include "l2p/cascade.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "partition/partitioner.h"
#include "partition/sorted_init.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace les3 {
namespace l2p {
namespace {

/// Splits one group with a freshly trained Siamese model. Returns the
/// member lists of the two sides and the training stats.
struct SplitOutcome {
  std::vector<SetId> left;
  std::vector<SetId> right;
  ml::SiameseStats stats;
  uint64_t param_bytes = 0;
  CascadeModelSnapshot model;  // filled only under options.keep_models
};

SplitOutcome SplitGroup(const SetDatabase& db, const ml::Matrix& reps,
                        const std::vector<SetId>& members,
                        const CascadeOptions& options, uint64_t seed) {
  SplitOutcome outcome;
  Rng rng(seed);
  const size_t n = members.size();

  // Sample training pairs within the group. Representations live in the
  // global matrix, so pair endpoints are global set ids.
  uint64_t max_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
  size_t num_pairs =
      static_cast<size_t>(std::min<uint64_t>(options.pairs_per_model,
                                             max_pairs));
  std::vector<ml::SiamesePair> pairs;
  pairs.reserve(num_pairs);
  for (size_t i = 0; i < num_pairs; ++i) {
    size_t a = rng.Uniform(n);
    size_t b = rng.Uniform(n - 1);
    if (b >= a) ++b;
    float dissim = static_cast<float>(
        1.0 - Similarity(options.measure, db.set(members[a]),
                         db.set(members[b])));
    pairs.push_back(ml::SiamesePair{members[a], members[b], dissim});
  }

  std::vector<size_t> layer_sizes;
  layer_sizes.push_back(reps.cols());
  for (size_t h : options.hidden_layers) layer_sizes.push_back(h);
  layer_sizes.push_back(1);
  ml::Mlp net(layer_sizes, rng.Next());
  outcome.param_bytes = net.NumParams() * sizeof(float);

  ml::SiameseOptions sopts = options.siamese;
  sopts.seed = rng.Next();
  outcome.stats = TrainSiamese(&net, reps, pairs, sopts);

  // Route members by the output neuron.
  std::vector<float> outputs(n);
  for (size_t i = 0; i < n; ++i) {
    outputs[i] = net.ForwardOne(reps.Row(members[i]))[0];
  }
  auto route = [&](float threshold) {
    outcome.model.threshold = threshold;
    outcome.left.clear();
    outcome.right.clear();
    for (size_t i = 0; i < n; ++i) {
      (outputs[i] < threshold ? outcome.left : outcome.right)
          .push_back(members[i]);
    }
  };
  route(0.5f);
  size_t min_side = static_cast<size_t>(
      std::max(1.0, options.min_side_fraction * static_cast<double>(n)));
  if (outcome.left.size() < min_side || outcome.right.size() < min_side) {
    // Degenerate split: fall back to the median output so the level still
    // doubles the group count with balanced sides.
    std::vector<float> sorted = outputs;
    std::nth_element(sorted.begin(), sorted.begin() + n / 2, sorted.end());
    float median = sorted[n / 2];
    route(median);
    if (outcome.left.empty() || outcome.right.empty()) {
      // All outputs identical: arbitrary even split keeps progress. The
      // threshold cannot reproduce this routing, and the model snapshot
      // says so.
      outcome.model.routed_by_threshold = false;
      outcome.left.assign(members.begin(), members.begin() + n / 2);
      outcome.right.assign(members.begin() + n / 2, members.end());
    }
  }
  if (options.keep_models) {
    outcome.model.layer_sizes.assign(layer_sizes.begin(), layer_sizes.end());
    outcome.model.params = net.ParamsFlat();
  }
  return outcome;
}

}  // namespace

CascadeResult TrainCascade(const SetDatabase& db,
                           const embed::SetRepresentation& rep,
                           const CascadeOptions& options) {
  LES3_CHECK_GT(options.target_groups, 0u);
  WallTimer timer;
  CascadeResult result;

  ml::Matrix reps = embed::EmbedDatabase(rep, db);

  // Level 0: sorted initialization (or a single root group).
  std::vector<GroupId> assignment;
  uint32_t num_groups;
  if (options.use_sorted_init && options.init_groups > 1) {
    uint32_t init = std::min<uint32_t>(options.init_groups,
                                       options.target_groups);
    init = std::min<uint32_t>(init, std::max<size_t>(db.size(), 1));
    assignment = partition::SortedInitialization(db, init);
    num_groups = init;
  } else {
    assignment.assign(db.size(), 0);
    num_groups = 1;
  }
  result.levels.push_back(CascadeLevel{assignment, num_groups});

  ThreadPool pool(options.num_threads);
  Rng level_rng(options.seed);

  while (num_groups < options.target_groups) {
    auto groups = partition::GroupMembers(assignment, num_groups);
    // Groups eligible for splitting this level.
    std::vector<uint32_t> to_split;
    for (uint32_t g = 0; g < num_groups; ++g) {
      if (groups[g].size() >= std::max<size_t>(options.min_group_size, 2)) {
        to_split.push_back(g);
      }
    }
    if (to_split.empty()) break;
    // Do not overshoot the target: split only as many groups as needed.
    size_t budget = options.target_groups - num_groups;
    if (to_split.size() > budget) {
      // Prefer the largest groups (closest to the balance objective).
      std::sort(to_split.begin(), to_split.end(),
                [&](uint32_t a, uint32_t b) {
                  return groups[a].size() > groups[b].size();
                });
      to_split.resize(budget);
    }

    std::vector<SplitOutcome> outcomes(to_split.size());
    std::vector<uint64_t> seeds(to_split.size());
    for (size_t i = 0; i < to_split.size(); ++i) seeds[i] = level_rng.Next();
    std::atomic<uint64_t> models{0};
    pool.ParallelFor(to_split.size(), [&](size_t i) {
      outcomes[i] =
          SplitGroup(db, reps, groups[to_split[i]], options, seeds[i]);
      models.fetch_add(1);
    });

    // Apply splits: side 0 keeps the old id, side 1 gets a fresh id.
    uint32_t next_id = num_groups;
    for (size_t i = 0; i < to_split.size(); ++i) {
      SplitOutcome& oc = outcomes[i];
      for (SetId s : oc.right) assignment[s] = next_id;
      ++next_id;
      result.models_trained += 1;
      result.model_memory_bytes += oc.param_bytes;
      if (result.first_model_losses.empty() &&
          !oc.stats.batch_losses.empty()) {
        result.first_model_losses = oc.stats.batch_losses;
      }
      if (options.keep_models) {
        oc.model.level = static_cast<uint32_t>(result.levels.size());
        oc.model.group = to_split[i];
        result.models.push_back(std::move(oc.model));
      }
    }
    num_groups = next_id;
    // Renumber densely in case some groups were skipped entirely.
    num_groups = partition::Compact(&assignment);
    result.levels.push_back(CascadeLevel{assignment, num_groups});
  }

  result.train_seconds = timer.Seconds();
  // Working set: all model parameters (kept for routing), one mini-batch of
  // pair representations, and the pair buffer of the largest model.
  result.working_memory_bytes =
      result.model_memory_bytes +
      2 * options.siamese.batch_size * rep.dim() * sizeof(float) +
      options.pairs_per_model * sizeof(ml::SiamesePair);
  return result;
}

}  // namespace l2p
}  // namespace les3
