// The L2P cascade (Section 5.2): a hierarchy of Siamese networks, each
// responsible for splitting one group of sets into two sub-groups, applied
// level by level until the target group count is reached.
//
// Mechanics per the paper (Section 7.1):
//   - sorted initialization into 128 groups replaces the costly top levels;
//   - each model trains on up to 40k random intra-group pairs, batch 256,
//     3 epochs, Adam, on an MLP with two hidden layers of 8 sigmoid units;
//   - a group with fewer than `min_group_size` (50) sets is not split, so a
//     level may hold fewer than 2^i groups;
//   - sets are routed by the output neuron: O < 0.5 -> first sub-group,
//     O >= 0.5 -> second.
// Engineering note: when a trained split is degenerate (one side nearly
// empty) we fall back to splitting at the median output, preserving the
// balance property the loss is designed to encourage.
//
// Every level's assignment is retained so the hierarchical index (HTGM,
// tgm/htgm.h) can be built from any prefix of levels. Models at the same
// level train in parallel (the future-work direction of Section 7.2).

#ifndef LES3_L2P_CASCADE_H_
#define LES3_L2P_CASCADE_H_

#include <vector>

#include "core/database.h"
#include "core/similarity.h"
#include "embed/representation.h"
#include "ml/siamese.h"

namespace les3 {
namespace l2p {

struct CascadeOptions {
  uint32_t init_groups = 128;    // sorted-initialization width
  uint32_t target_groups = 1024;
  size_t min_group_size = 50;    // do not split smaller groups
  size_t pairs_per_model = 40000;
  std::vector<size_t> hidden_layers = {8, 8};
  ml::SiameseOptions siamese;    // epochs=3, batch=256, Adam
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;
  bool use_sorted_init = true;   // false: single root group (Figure 7 mode)
  size_t num_threads = 0;        // 0 = hardware concurrency
  /// Degenerate-split fallback: if one side would get fewer than this
  /// fraction of the group, split at the median output instead.
  double min_side_fraction = 0.05;
  uint64_t seed = 41;
  /// Retain a CascadeModelSnapshot per trained model in the result, so the
  /// learned partitioner can be persisted alongside the index
  /// (persist/snapshot.h). Off by default: the snapshots cost memory and
  /// nothing on the query path reads them.
  bool keep_models = false;
};

/// \brief Portable snapshot of one trained split model: enough to persist
/// and restore the learned partitioner without retraining.
struct CascadeModelSnapshot {
  uint32_t level = 0;       // cascade level the split ran at (1-based;
                            // level 0 is the sorted initialization)
  GroupId group = 0;        // group id split at that level
  float threshold = 0.5f;   // routing threshold actually used (0.5, or the
                            // median output after a degenerate split)
  /// Whether `output < threshold` reproduces the recorded split. False
  /// only in the all-outputs-identical fallback, where members were split
  /// positionally — replaying the threshold there would not recreate the
  /// persisted assignment (which is always authoritative either way).
  bool routed_by_threshold = true;
  std::vector<uint32_t> layer_sizes;  // {input, hidden..., 1}
  std::vector<float> params;          // Mlp::ParamsFlat() layout
};

/// Per-level snapshot of the hierarchy.
struct CascadeLevel {
  std::vector<GroupId> assignment;  // per set, dense ids
  uint32_t num_groups = 0;
};

/// Full cascade output plus the training accounting used by Figures 7 & 9.
struct CascadeResult {
  std::vector<CascadeLevel> levels;  // levels[0] = initialization
  double train_seconds = 0.0;        // wall time, training + inference
  uint64_t models_trained = 0;
  uint64_t model_memory_bytes = 0;   // all model parameters
  uint64_t working_memory_bytes = 0; // params + one mini-batch + pair buffer
  /// Loss curve of the first trained model (Figure 7a).
  std::vector<float> first_model_losses;
  /// One snapshot per trained model, in training order; filled only when
  /// CascadeOptions::keep_models is set.
  std::vector<CascadeModelSnapshot> models;
};

/// Trains the cascade for `db` using representations from `rep`.
CascadeResult TrainCascade(const SetDatabase& db,
                           const embed::SetRepresentation& rep,
                           const CascadeOptions& options);

}  // namespace l2p
}  // namespace les3

#endif  // LES3_L2P_CASCADE_H_
