// Umbrella header: the full public API of the LES3 library.
//
// Typical usage goes through the unified engine API (see
// examples/quickstart.cpp): EngineBuilder constructs any backend — LES3,
// the baselines, or the disk-resident variants — behind one SearchEngine
// interface.
//
//   les3::SetDatabase db = ...;  // load or generate
//   auto engine = les3::api::EngineBuilder::Build(std::move(db), "les3");
//   auto top10 = engine.value()->Knn(query, 10);
//   auto close = engine.value()->Range(query, 0.7);
//
// The concrete classes (search::Les3Index, baselines::*, storage::Disk*)
// remain available for callers that need backend-specific internals.

#ifndef LES3_LES3_H_
#define LES3_LES3_H_

#include "api/engine_builder.h"
#include "api/engine_options.h"
#include "api/search_engine.h"
#include "baselines/brute_force.h"
#include "baselines/dualtrans.h"
#include "baselines/invidx.h"
#include "bitmap/bitmap_column.h"
#include "bitmap/bitvector.h"
#include "bitmap/kernels.h"
#include "bitmap/roaring.h"
#include "core/database.h"
#include "core/set_record.h"
#include "core/similarity.h"
#include "core/stats.h"
#include "core/tokenizer.h"
#include "core/types.h"
#include "core/verify.h"
#include "datagen/analogs.h"
#include "datagen/generators.h"
#include "embed/binary_encoding.h"
#include "embed/mds.h"
#include "embed/pca.h"
#include "embed/ptr.h"
#include "embed/representation.h"
#include "l2p/cascade.h"
#include "l2p/l2p.h"
#include "partition/metrics.h"
#include "partition/par_a.h"
#include "partition/par_c.h"
#include "partition/par_d.h"
#include "partition/par_g.h"
#include "partition/partitioner.h"
#include "partition/sorted_init.h"
#include "search/candidate_verifier.h"
#include "search/les3_index.h"
#include "search/query_stats.h"
#include "shard/sharded_engine.h"
#include "storage/disk.h"
#include "storage/disk_search.h"
#include "storage/disk_store.h"
#include "tgm/htgm.h"
#include "tgm/tgm.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

#endif  // LES3_LES3_H_
