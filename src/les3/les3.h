// Umbrella header: the full public API of the LES3 library.
//
// Typical usage (see examples/quickstart.cpp):
//
//   les3::SetDatabase db = ...;                       // load or generate
//   les3::l2p::L2PPartitioner l2p;                    // learned partitioner
//   auto part = l2p.Partition(db, /*target_groups=*/256);
//   les3::search::Les3Index index(std::move(db), part.assignment,
//                                 part.num_groups);
//   auto top10 = index.Knn(query, 10);
//   auto close = index.Range(query, 0.7);

#ifndef LES3_LES3_H_
#define LES3_LES3_H_

#include "baselines/brute_force.h"
#include "baselines/dualtrans.h"
#include "baselines/invidx.h"
#include "bitmap/bitvector.h"
#include "bitmap/roaring.h"
#include "core/database.h"
#include "core/set_record.h"
#include "core/similarity.h"
#include "core/stats.h"
#include "core/tokenizer.h"
#include "core/types.h"
#include "datagen/analogs.h"
#include "datagen/generators.h"
#include "embed/binary_encoding.h"
#include "embed/mds.h"
#include "embed/pca.h"
#include "embed/ptr.h"
#include "embed/representation.h"
#include "l2p/cascade.h"
#include "l2p/l2p.h"
#include "partition/metrics.h"
#include "partition/par_a.h"
#include "partition/par_c.h"
#include "partition/par_d.h"
#include "partition/par_g.h"
#include "partition/partitioner.h"
#include "partition/sorted_init.h"
#include "search/les3_index.h"
#include "search/query_stats.h"
#include "storage/disk.h"
#include "storage/disk_search.h"
#include "storage/disk_store.h"
#include "tgm/htgm.h"
#include "tgm/tgm.h"
#include "util/csv.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

#endif  // LES3_LES3_H_
