#include "util/csv.h"

#include <cmath>
#include <cstdio>
#include <iostream>

#include "util/logging.h"

namespace les3 {

TableReporter::TableReporter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TableReporter::AddRow(std::vector<std::string> row) {
  LES3_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TableReporter::Format(double v) {
  char buf[64];
  if (v == 0) return "0";
  double av = std::fabs(v);
  if (av >= 1e6 || av < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  } else if (av >= 100) {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

void TableReporter::Print(const std::string& title) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::cout << "\n== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::cout << "  ";
      std::cout << row[c];
      for (size_t p = row[c].size(); p < widths[c]; ++p) std::cout << ' ';
    }
    std::cout << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::cout << "  " << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

Status TableReporter::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out << '"';
        for (char ch : row[c]) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << row[c];
      }
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  return buf;
}

}  // namespace les3
