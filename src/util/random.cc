#include "util/random.h"

#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace les3 {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  LES3_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  LES3_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  // Box–Muller; discard the second variate for simplicity.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  LES3_CHECK_LE(k, n);
  std::vector<uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (static_cast<uint64_t>(k) * 3 >= n) {
    // Dense case: partial Fisher–Yates over [0, n).
    std::vector<uint32_t> all(n);
    for (uint32_t i = 0; i < n; ++i) all[i] = i;
    for (uint32_t i = 0; i < k; ++i) {
      uint32_t j = i + static_cast<uint32_t>(Uniform(n - i));
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
  } else {
    // Sparse case: rejection with a hash set.
    std::unordered_set<uint32_t> seen;
    seen.reserve(k * 2);
    while (out.size() < k) {
      uint32_t v = static_cast<uint32_t>(Uniform(n));
      if (seen.insert(v).second) out.push_back(v);
    }
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace les3
