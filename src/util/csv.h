// CSV emission and aligned-table printing for the benchmark harnesses.
//
// Every bench binary prints a human-readable table (the paper's rows/series)
// and mirrors it to a CSV file for downstream plotting.

#ifndef LES3_UTIL_CSV_H_
#define LES3_UTIL_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace les3 {

/// \brief Collects rows and renders them as an aligned console table and/or
/// a CSV file.
class TableReporter {
 public:
  explicit TableReporter(std::vector<std::string> header);

  /// Appends a row; the cell count must match the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats arbitrary streamable cells.
  template <typename... Ts>
  void Add(const Ts&... cells) {
    AddRow({Format(cells)...});
  }

  /// Prints an aligned table (with `title` above it) to stdout.
  void Print(const std::string& title) const;

  /// Writes the header + rows as CSV.
  Status WriteCsv(const std::string& path) const;

  static std::string Format(const std::string& s) { return s; }
  static std::string Format(const char* s) { return s; }
  static std::string Format(double v);
  static std::string Format(float v) { return Format(static_cast<double>(v)); }
  static std::string Format(int v) { return std::to_string(v); }
  static std::string Format(unsigned v) { return std::to_string(v); }
  static std::string Format(long v) { return std::to_string(v); }
  static std::string Format(unsigned long v) { return std::to_string(v); }
  static std::string Format(long long v) { return std::to_string(v); }
  static std::string Format(unsigned long long v) { return std::to_string(v); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a byte count as a human-readable string ("12.3 MiB").
std::string HumanBytes(uint64_t bytes);

}  // namespace les3

#endif  // LES3_UTIL_CSV_H_
