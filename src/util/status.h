// Status / Result error-handling primitives in the Arrow/RocksDB idiom.
//
// Library code never throws; fallible operations return a Status or a
// Result<T>. Programming errors (broken invariants) abort via LES3_CHECK in
// logging.h instead.

#ifndef LES3_UTIL_STATUS_H_
#define LES3_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace les3 {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIOError,
  kNotSupported,
  kInternal,
  // Serving-layer codes (src/serve): a request that missed its deadline
  // budget, and a request fast-rejected by admission control.
  kDeadlineExceeded,
  kOverloaded,
};

/// \brief Outcome of a fallible operation.
///
/// A default-constructed Status is OK and carries no allocation. Non-OK
/// statuses carry a code and a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  /// Non-OK status with an explicit code — for wrappers that prepend
  /// context to a propagated error while preserving its code (`code` must
  /// not be kOk).
  static Status FromCode(StatusCode code, std::string msg) {
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : value_(std::move(status)) {}  // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    if (ok()) return kOk;
    return std::get<Status>(value_);
  }

  /// Precondition: ok().
  T& value() & { return std::get<T>(value_); }
  const T& value() const& { return std::get<T>(value_); }
  T&& value() && { return std::move(std::get<T>(value_)); }

  /// Moves the value out; precondition: ok().
  T ValueOrDie() && { return std::move(std::get<T>(value_)); }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK status to the caller.
#define LES3_RETURN_NOT_OK(expr)        \
  do {                                  \
    ::les3::Status _st = (expr);        \
    if (!_st.ok()) return _st;          \
  } while (0)

}  // namespace les3

#endif  // LES3_UTIL_STATUS_H_
