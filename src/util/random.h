// Deterministic pseudo-random number generation.
//
// All randomized components (generators, samplers, partitioner
// initialization, network weights) take an explicit seed so every experiment
// in bench/ is reproducible run-to-run.

#ifndef LES3_UTIL_RANDOM_H_
#define LES3_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace les3 {

/// \brief xoshiro256** PRNG seeded via SplitMix64.
///
/// Fast, high-quality, and deterministic across platforms (unlike
/// std::mt19937 paired with distribution objects, whose output is
/// implementation-defined).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound); bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in arbitrary order.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

  /// Derives an independent child generator (for parallel workers).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace les3

#endif  // LES3_UTIL_RANDOM_H_
