#include "util/thread_pool.h"

#include <atomic>

namespace les3 {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 4;
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Chunked dispatch: one task per worker stride to bound queue churn.
  size_t chunks = std::min(n, num_threads() * 4);
  std::atomic<size_t> next{0};
  // Completion is tracked per call, not via Wait(): Wait() blocks until
  // the pool's GLOBAL queue drains, so concurrent ParallelFor callers
  // (e.g. several scatter-gather queries sharing one engine pool) would
  // convoy on each other's tasks and every caller's latency would become
  // the max over all in-flight calls.
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t done_chunks = 0;
  for (size_t c = 0; c < chunks; ++c) {
    Submit([&, n, chunks] {
      for (;;) {
        size_t i = next.fetch_add(1);
        if (i >= n) break;
        fn(i);
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (++done_chunks == chunks) done_cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return done_chunks == chunks; });
}

}  // namespace les3
