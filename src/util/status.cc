#include "util/status.h"

namespace les3 {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kOverloaded: return "Overloaded";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace les3
