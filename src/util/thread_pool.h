// Fixed-size thread pool used to train cascade models in parallel and to
// batch-run queries in the benches.

#ifndef LES3_UTIL_THREAD_POOL_H_
#define LES3_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace les3 {

/// \brief A minimal work-queue thread pool.
///
/// Submit() enqueues a task; Wait() blocks until every submitted task has
/// finished. The pool is not reentrant: tasks must not Submit() to the pool
/// they run on.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (0 means hardware concurrency).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until the queue drains and all in-flight tasks complete.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool and waits for THIS call's
  /// work only — concurrent ParallelFor calls on one pool do not convoy
  /// on each other (unlike Wait(), which blocks on the global queue).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_done_;
  size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace les3

#endif  // LES3_UTIL_THREAD_POOL_H_
