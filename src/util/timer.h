// Wall-clock timing helpers used by benches and build statistics.

#ifndef LES3_UTIL_TIMER_H_
#define LES3_UTIL_TIMER_H_

#include <chrono>

namespace les3 {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace les3

#endif  // LES3_UTIL_TIMER_H_
