// Invariant checking and lightweight logging.
//
// LES3_CHECK aborts on broken invariants (programming errors); recoverable
// errors are reported through Status (see util/status.h).

#ifndef LES3_UTIL_LOGGING_H_
#define LES3_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace les3 {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& extra) {
  std::fprintf(stderr, "LES3_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace les3

/// Aborts the process when `cond` does not hold. Enabled in all build types:
/// an index that silently returns wrong candidates is worse than a crash.
#define LES3_CHECK(cond)                                                  \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::les3::internal::CheckFailed(__FILE__, __LINE__, #cond, "");       \
    }                                                                     \
  } while (0)

#define LES3_CHECK_OP(op, a, b)                                           \
  do {                                                                    \
    auto _va = (a);                                                       \
    auto _vb = (b);                                                       \
    if (!(_va op _vb)) {                                                  \
      std::ostringstream _oss;                                            \
      _oss << "(" << _va << " vs " << _vb << ")";                         \
      ::les3::internal::CheckFailed(__FILE__, __LINE__, #a " " #op " " #b, \
                                    _oss.str());                          \
    }                                                                     \
  } while (0)

#define LES3_CHECK_EQ(a, b) LES3_CHECK_OP(==, a, b)
#define LES3_CHECK_NE(a, b) LES3_CHECK_OP(!=, a, b)
#define LES3_CHECK_LT(a, b) LES3_CHECK_OP(<, a, b)
#define LES3_CHECK_LE(a, b) LES3_CHECK_OP(<=, a, b)
#define LES3_CHECK_GT(a, b) LES3_CHECK_OP(>, a, b)
#define LES3_CHECK_GE(a, b) LES3_CHECK_OP(>=, a, b)

/// Aborts when a Status-returning expression fails.
#define LES3_CHECK_OK(expr)                                                \
  do {                                                                     \
    ::les3::Status _st = (expr);                                           \
    if (!_st.ok()) {                                                       \
      ::les3::internal::CheckFailed(__FILE__, __LINE__, #expr,             \
                                    _st.ToString());                       \
    }                                                                      \
  } while (0)

#endif  // LES3_UTIL_LOGGING_H_
