#include "storage/disk_search.h"

#include "search/candidate_verifier.h"

#include <algorithm>
#include <queue>

#include "util/timer.h"

namespace les3 {
namespace storage {
namespace {

void FillDiskCounters(const DiskSimulator& sim, DiskQueryResult* result) {
  result->io_ms = sim.ElapsedMs();
  result->seeks = sim.seeks();
  result->pages = sim.pages_read();
}

}  // namespace

// ---------------------------------------------------------------------------
// DiskLes3.

DiskLes3::DiskLes3(const SetDatabase* db,
                   const std::vector<GroupId>& assignment,
                   uint32_t num_groups, SimilarityMeasure measure,
                   DiskOptions disk, bitmap::BitmapBackend bitmap_backend)
    : db_(db),
      tgm_(*db, assignment, num_groups, bitmap_backend),
      measure_(measure),
      layout_(DiskLayout::GroupContiguous(*db, assignment, num_groups)),
      disk_(disk) {
  tgm_.RunOptimize();
}

DiskLes3::DiskLes3(const SetDatabase* db, tgm::Tgm tgm,
                   SimilarityMeasure measure, DiskOptions disk)
    : db_(db),
      tgm_(std::move(tgm)),
      measure_(measure),
      layout_(DiskLayout::GroupContiguous(*db, tgm_.group_assignment(),
                                          tgm_.num_groups())),
      disk_(disk) {}

DiskQueryResult DiskLes3::Knn(SetView query, size_t k) const {
  DiskQueryResult result;
  DiskSimulator sim(disk_);
  // The shared pipeline (bound-ordered traversal, size window, kernels);
  // each group whose members get verified costs one seek plus a sequential
  // read of its contiguous extent. Groups the size window empties are not
  // fetched at all — the filter saves I/O here, not just CPU.
  search::CandidateVerifier verifier(&tgm_, db_, measure_);
  result.hits = verifier.Knn(query, k, &result.stats, [&](GroupId g, size_t) {
    const Extent& extent = layout_.group_extent(g);
    sim.Read(extent.offset, extent.bytes);
  });
  FillDiskCounters(sim, &result);
  return result;
}

DiskQueryResult DiskLes3::Range(SetView query, double delta) const {
  DiskQueryResult result;
  DiskSimulator sim(disk_);
  search::CandidateVerifier verifier(&tgm_, db_, measure_);
  result.hits = verifier.Range(query, delta, &result.stats, [&](GroupId g, size_t) {
    const Extent& extent = layout_.group_extent(g);
    sim.Read(extent.offset, extent.bytes);
  });
  FillDiskCounters(sim, &result);
  return result;
}

// ---------------------------------------------------------------------------
// DiskBruteForce.

DiskBruteForce::DiskBruteForce(const SetDatabase* db,
                               SimilarityMeasure measure, DiskOptions disk)
    : db_(db),
      scan_(db, measure),
      layout_(DiskLayout::IdOrdered(*db)),
      disk_(disk) {}

DiskQueryResult DiskBruteForce::Knn(SetView query, size_t k) const {
  DiskQueryResult result;
  DiskSimulator sim(disk_);
  sim.Read(0, layout_.total_bytes());  // one full sequential scan
  result.hits = scan_.Knn(query, k, &result.stats);
  FillDiskCounters(sim, &result);
  return result;
}

DiskQueryResult DiskBruteForce::Range(SetView query,
                                      double delta) const {
  DiskQueryResult result;
  DiskSimulator sim(disk_);
  sim.Read(0, layout_.total_bytes());
  result.hits = scan_.Range(query, delta, &result.stats);
  FillDiskCounters(sim, &result);
  return result;
}

// ---------------------------------------------------------------------------
// DiskInvIdx.

DiskInvIdx::DiskInvIdx(const SetDatabase* db,
                       baselines::InvIdxOptions options, DiskOptions disk)
    : db_(db),
      index_(db, options),
      options_(options),
      data_layout_(DiskLayout::IdOrdered(*db)),
      disk_(disk) {
  std::vector<uint64_t> lengths(db->num_tokens(), 0);
  for (TokenId t = 0; t < db->num_tokens(); ++t) {
    lengths[t] = index_.Postings(t).size();
  }
  posting_layout_ = std::make_unique<PostingLayout>(lengths);
}

void DiskInvIdx::ChargeFilter(const baselines::InvIdx::FilterResult& filter,
                              DiskSimulator* sim) const {
  for (TokenId t : filter.prefix_tokens) {
    // Query tokens outside the indexed universe have no posting list on
    // disk, hence nothing to read.
    if (t >= db_->num_tokens()) continue;
    const Extent& e = posting_layout_->posting_extent(t);
    sim->Read(e.offset, e.bytes);
  }
  // Candidate fetches in id order coalesce physically adjacent sets.
  std::vector<SetId> sorted = filter.candidates;
  std::sort(sorted.begin(), sorted.end());
  for (SetId c : sorted) {
    const Extent& e = data_layout_.set_extent(c);
    sim->Read(e.offset, e.bytes);
  }
}

DiskQueryResult DiskInvIdx::Range(SetView query,
                                  double delta) const {
  WallTimer timer;
  DiskQueryResult result;
  DiskSimulator sim(disk_);
  auto filter = index_.RangeFilter(query, delta);
  ChargeFilter(filter, &sim);
  for (SetId c : filter.candidates) {
    double simval = Similarity(options_.measure, query, db_->set(c));
    if (simval >= delta) result.hits.emplace_back(c, simval);
  }
  SortHits(&result.hits);
  result.stats.candidates_verified = filter.candidates.size();
  result.stats.results = result.hits.size();
  result.stats.pruning_efficiency = search::RangePruningEfficiency(
      db_->size(), filter.candidates.size(), result.hits.size());
  result.stats.micros = timer.Micros();
  FillDiskCounters(sim, &result);
  return result;
}

DiskQueryResult DiskInvIdx::Knn(SetView query, size_t k) const {
  WallTimer timer;
  DiskQueryResult result;
  DiskSimulator sim(disk_);
  std::vector<uint8_t> verified(db_->size(), 0);
  TopKHits best(k);
  double delta = 1.0;
  for (;;) {
    auto filter = index_.RangeFilter(query, delta);
    // Charge only the not-yet-fetched candidates; postings for the prefix
    // are re-read as the prefix grows (the repeated-filtering cost the
    // paper attributes to InvIdx).
    baselines::InvIdx::FilterResult fresh;
    fresh.prefix_tokens = filter.prefix_tokens;
    for (SetId c : filter.candidates) {
      if (!verified[c]) fresh.candidates.push_back(c);
    }
    ChargeFilter(fresh, &sim);
    for (SetId c : fresh.candidates) {
      verified[c] = 1;
      ++result.stats.candidates_verified;
      best.Offer(c, Similarity(options_.measure, query, db_->set(c)));
    }
    // Unseen sets are strictly below delta (they missed the candidate
    // set), so ties with the k-th best are impossible once it reaches it.
    if (best.size() >= std::min<size_t>(k, db_->size()) && best.size() > 0 &&
        best.WorstSimilarity() >= delta) {
      break;
    }
    if (delta <= 0.0) break;
    delta = std::max(0.0, delta - options_.knn_delta_step);
  }
  result.hits = best.Take();
  result.stats.results = result.hits.size();
  result.stats.pruning_efficiency = search::KnnPruningEfficiency(
      db_->size(), result.stats.candidates_verified, k);
  result.stats.micros = timer.Micros();
  FillDiskCounters(sim, &result);
  return result;
}

// ---------------------------------------------------------------------------
// DiskDualTrans.

DiskDualTrans::DiskDualTrans(const SetDatabase* db,
                             baselines::DualTransOptions options,
                             DiskOptions disk)
    : db_(db),
      index_(db, options),
      layout_(DiskLayout::IdOrdered(*db)),
      disk_(disk) {}

DiskQueryResult DiskDualTrans::Charge(
    std::vector<Hit> hits,
    const search::QueryStats& stats) const {
  DiskQueryResult result;
  result.hits = std::move(hits);
  result.stats = stats;
  DiskSimulator sim(disk_);
  // One random page per R-tree node touched (stats.groups_visited), plus a
  // random read of every candidate set verified.
  for (uint64_t i = 0; i < stats.groups_visited; ++i) {
    sim.RandomRead(disk_.page_bytes);
  }
  for (uint64_t i = 0; i < stats.candidates_verified; ++i) {
    // Average serialized set size approximates the per-candidate fetch.
    uint64_t avg = layout_.total_bytes() / std::max<uint64_t>(db_->size(), 1);
    sim.RandomRead(std::max<uint64_t>(avg, 1));
  }
  FillDiskCounters(sim, &result);
  return result;
}

DiskQueryResult DiskDualTrans::Knn(SetView query, size_t k) const {
  search::QueryStats stats;
  auto hits = index_.Knn(query, k, &stats);
  return Charge(std::move(hits), stats);
}

DiskQueryResult DiskDualTrans::Range(SetView query,
                                     double delta) const {
  search::QueryStats stats;
  auto hits = index_.Range(query, delta, &stats);
  return Charge(std::move(hits), stats);
}

}  // namespace storage
}  // namespace les3
