#include "storage/disk_search.h"

#include <algorithm>
#include <queue>

#include "util/timer.h"

namespace les3 {
namespace storage {
namespace {

void FillDiskCounters(const DiskSimulator& sim, DiskQueryResult* result) {
  result->io_ms = sim.ElapsedMs();
  result->seeks = sim.seeks();
  result->pages = sim.pages_read();
}

}  // namespace

// ---------------------------------------------------------------------------
// DiskLes3.

DiskLes3::DiskLes3(const SetDatabase* db,
                   const std::vector<GroupId>& assignment,
                   uint32_t num_groups, SimilarityMeasure measure,
                   DiskOptions disk, bitmap::BitmapBackend bitmap_backend)
    : db_(db),
      tgm_(*db, assignment, num_groups, bitmap_backend),
      measure_(measure),
      layout_(DiskLayout::GroupContiguous(*db, assignment, num_groups)),
      disk_(disk) {
  tgm_.RunOptimize();
}

DiskLes3::DiskLes3(const SetDatabase* db, tgm::Tgm tgm,
                   SimilarityMeasure measure, DiskOptions disk)
    : db_(db),
      tgm_(std::move(tgm)),
      measure_(measure),
      layout_(DiskLayout::GroupContiguous(*db, tgm_.group_assignment(),
                                          tgm_.num_groups())),
      disk_(disk) {}

DiskQueryResult DiskLes3::Knn(const SetRecord& query, size_t k) const {
  WallTimer timer;
  DiskQueryResult result;
  DiskSimulator sim(disk_);

  // As in Les3Index::Knn: zero-count groups share no token with the query,
  // so their members' similarities are exactly 0 — known without fetching
  // anything from disk. They skip the bound heap (and the extent reads)
  // and only backfill the result when it underflows k or ties at 0.
  uint32_t min_count = query.size() == 0 ? 0 : 1;
  std::vector<uint32_t> counts;
  std::vector<GroupId> candidates;
  result.stats.columns_scanned =
      tgm_.MatchedCandidates(query, min_count, &counts, &candidates);
  std::priority_queue<std::pair<double, GroupId>> groups;
  for (GroupId g : candidates) {
    if (tgm_.group_size(g) == 0) continue;
    groups.push({GroupUpperBound(measure_, counts[g], query.size()), g});
  }
  TopKHits best(k);
  while (!groups.empty()) {
    auto [ub, g] = groups.top();
    groups.pop();
    // Strictly-lower bounds only: an equal bound may still yield an
    // equal-similarity hit with a smaller id (HitOrder tie-handling).
    if (best.full() && ub < best.WorstSimilarity()) break;
    ++result.stats.groups_visited;
    const Extent& extent = layout_.group_extent(g);
    sim.Read(extent.offset, extent.bytes);  // one seek + sequential extent
    for (SetId s : tgm_.group_members(g)) {
      ++result.stats.candidates_verified;
      best.Offer(s, Similarity(measure_, query, db_->set(s)));
    }
  }
  tgm_.BackfillZeroCountGroups(counts, min_count, &best);
  result.hits = best.Take();
  result.stats.results = result.hits.size();
  result.stats.pruning_efficiency = search::KnnPruningEfficiency(
      db_->size(), result.stats.candidates_verified, k);
  result.stats.micros = timer.Micros();
  FillDiskCounters(sim, &result);
  return result;
}

DiskQueryResult DiskLes3::Range(const SetRecord& query, double delta) const {
  WallTimer timer;
  DiskQueryResult result;
  DiskSimulator sim(disk_);

  // As in Les3Index::Range: the TGM prunes groups below the least matched
  // count any δ-result's group must reach (counts[g] >= min_count implies
  // UB(Q, G_g) >= delta by monotonicity), and the whole scan short-circuits
  // when the threshold is unreachable even by an identical set.
  size_t min_count = MinOverlapForThreshold(measure_, query.size(), delta);
  if (min_count > query.size()) {
    result.stats.micros = timer.Micros();
    FillDiskCounters(sim, &result);
    return result;
  }
  std::vector<uint32_t> counts;
  std::vector<GroupId> candidates;
  result.stats.columns_scanned = tgm_.MatchedCandidates(
      query, static_cast<uint32_t>(min_count), &counts, &candidates);
  for (GroupId g : candidates) {
    if (tgm_.group_size(g) == 0) continue;
    ++result.stats.groups_visited;
    const Extent& extent = layout_.group_extent(g);
    sim.Read(extent.offset, extent.bytes);
    for (SetId s : tgm_.group_members(g)) {
      double simval = Similarity(measure_, query, db_->set(s));
      ++result.stats.candidates_verified;
      if (simval >= delta) result.hits.emplace_back(s, simval);
    }
  }
  SortHits(&result.hits);
  result.stats.results = result.hits.size();
  result.stats.pruning_efficiency = search::RangePruningEfficiency(
      db_->size(), result.stats.candidates_verified, result.hits.size());
  result.stats.micros = timer.Micros();
  FillDiskCounters(sim, &result);
  return result;
}

// ---------------------------------------------------------------------------
// DiskBruteForce.

DiskBruteForce::DiskBruteForce(const SetDatabase* db,
                               SimilarityMeasure measure, DiskOptions disk)
    : db_(db),
      scan_(db, measure),
      layout_(DiskLayout::IdOrdered(*db)),
      disk_(disk) {}

DiskQueryResult DiskBruteForce::Knn(const SetRecord& query, size_t k) const {
  DiskQueryResult result;
  DiskSimulator sim(disk_);
  sim.Read(0, layout_.total_bytes());  // one full sequential scan
  result.hits = scan_.Knn(query, k, &result.stats);
  FillDiskCounters(sim, &result);
  return result;
}

DiskQueryResult DiskBruteForce::Range(const SetRecord& query,
                                      double delta) const {
  DiskQueryResult result;
  DiskSimulator sim(disk_);
  sim.Read(0, layout_.total_bytes());
  result.hits = scan_.Range(query, delta, &result.stats);
  FillDiskCounters(sim, &result);
  return result;
}

// ---------------------------------------------------------------------------
// DiskInvIdx.

DiskInvIdx::DiskInvIdx(const SetDatabase* db,
                       baselines::InvIdxOptions options, DiskOptions disk)
    : db_(db),
      index_(db, options),
      options_(options),
      data_layout_(DiskLayout::IdOrdered(*db)),
      disk_(disk) {
  std::vector<uint64_t> lengths(db->num_tokens(), 0);
  for (TokenId t = 0; t < db->num_tokens(); ++t) {
    lengths[t] = index_.Postings(t).size();
  }
  posting_layout_ = std::make_unique<PostingLayout>(lengths);
}

void DiskInvIdx::ChargeFilter(const baselines::InvIdx::FilterResult& filter,
                              DiskSimulator* sim) const {
  for (TokenId t : filter.prefix_tokens) {
    // Query tokens outside the indexed universe have no posting list on
    // disk, hence nothing to read.
    if (t >= db_->num_tokens()) continue;
    const Extent& e = posting_layout_->posting_extent(t);
    sim->Read(e.offset, e.bytes);
  }
  // Candidate fetches in id order coalesce physically adjacent sets.
  std::vector<SetId> sorted = filter.candidates;
  std::sort(sorted.begin(), sorted.end());
  for (SetId c : sorted) {
    const Extent& e = data_layout_.set_extent(c);
    sim->Read(e.offset, e.bytes);
  }
}

DiskQueryResult DiskInvIdx::Range(const SetRecord& query,
                                  double delta) const {
  WallTimer timer;
  DiskQueryResult result;
  DiskSimulator sim(disk_);
  auto filter = index_.RangeFilter(query, delta);
  ChargeFilter(filter, &sim);
  for (SetId c : filter.candidates) {
    double simval = Similarity(options_.measure, query, db_->set(c));
    if (simval >= delta) result.hits.emplace_back(c, simval);
  }
  SortHits(&result.hits);
  result.stats.candidates_verified = filter.candidates.size();
  result.stats.results = result.hits.size();
  result.stats.pruning_efficiency = search::RangePruningEfficiency(
      db_->size(), filter.candidates.size(), result.hits.size());
  result.stats.micros = timer.Micros();
  FillDiskCounters(sim, &result);
  return result;
}

DiskQueryResult DiskInvIdx::Knn(const SetRecord& query, size_t k) const {
  WallTimer timer;
  DiskQueryResult result;
  DiskSimulator sim(disk_);
  std::vector<uint8_t> verified(db_->size(), 0);
  TopKHits best(k);
  double delta = 1.0;
  for (;;) {
    auto filter = index_.RangeFilter(query, delta);
    // Charge only the not-yet-fetched candidates; postings for the prefix
    // are re-read as the prefix grows (the repeated-filtering cost the
    // paper attributes to InvIdx).
    baselines::InvIdx::FilterResult fresh;
    fresh.prefix_tokens = filter.prefix_tokens;
    for (SetId c : filter.candidates) {
      if (!verified[c]) fresh.candidates.push_back(c);
    }
    ChargeFilter(fresh, &sim);
    for (SetId c : fresh.candidates) {
      verified[c] = 1;
      ++result.stats.candidates_verified;
      best.Offer(c, Similarity(options_.measure, query, db_->set(c)));
    }
    // Unseen sets are strictly below delta (they missed the candidate
    // set), so ties with the k-th best are impossible once it reaches it.
    if (best.size() >= std::min<size_t>(k, db_->size()) && best.size() > 0 &&
        best.WorstSimilarity() >= delta) {
      break;
    }
    if (delta <= 0.0) break;
    delta = std::max(0.0, delta - options_.knn_delta_step);
  }
  result.hits = best.Take();
  result.stats.results = result.hits.size();
  result.stats.pruning_efficiency = search::KnnPruningEfficiency(
      db_->size(), result.stats.candidates_verified, k);
  result.stats.micros = timer.Micros();
  FillDiskCounters(sim, &result);
  return result;
}

// ---------------------------------------------------------------------------
// DiskDualTrans.

DiskDualTrans::DiskDualTrans(const SetDatabase* db,
                             baselines::DualTransOptions options,
                             DiskOptions disk)
    : db_(db),
      index_(db, options),
      layout_(DiskLayout::IdOrdered(*db)),
      disk_(disk) {}

DiskQueryResult DiskDualTrans::Charge(
    std::vector<Hit> hits,
    const search::QueryStats& stats) const {
  DiskQueryResult result;
  result.hits = std::move(hits);
  result.stats = stats;
  DiskSimulator sim(disk_);
  // One random page per R-tree node touched (stats.groups_visited), plus a
  // random read of every candidate set verified.
  for (uint64_t i = 0; i < stats.groups_visited; ++i) {
    sim.RandomRead(disk_.page_bytes);
  }
  for (uint64_t i = 0; i < stats.candidates_verified; ++i) {
    // Average serialized set size approximates the per-candidate fetch.
    uint64_t avg = layout_.total_bytes() / std::max<uint64_t>(db_->size(), 1);
    sim.RandomRead(std::max<uint64_t>(avg, 1));
  }
  FillDiskCounters(sim, &result);
  return result;
}

DiskQueryResult DiskDualTrans::Knn(const SetRecord& query, size_t k) const {
  search::QueryStats stats;
  auto hits = index_.Knn(query, k, &stats);
  return Charge(std::move(hits), stats);
}

DiskQueryResult DiskDualTrans::Range(const SetRecord& query,
                                     double delta) const {
  search::QueryStats stats;
  auto hits = index_.Range(query, delta, &stats);
  return Charge(std::move(hits), stats);
}

}  // namespace storage
}  // namespace les3
