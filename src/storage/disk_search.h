// Disk-resident variants of LES3 and the baselines (Figure 13).
//
// All four methods run the same in-memory algorithms as their memory-mode
// counterparts while charging every data access to a DiskSimulator:
//   - DiskLes3: TGM in memory (it is tiny); each surviving group costs one
//     seek plus a sequential read of its contiguous extent. Queries run
//     the shared CandidateVerifier pipeline (search/candidate_verifier.h),
//     so the size window can skip a whole group's extent read when no
//     member size can attain the threshold.
//   - DiskBruteForce: one sequential scan of the whole file.
//   - DiskInvIdx: posting reads for the query prefix plus one random set
//     read per candidate (candidates sorted by id, so physically adjacent
//     candidates coalesce).
//   - DiskDualTrans: one random page per R-tree node visited plus one
//     random set read per scored candidate.
// Reported latency = CPU time + simulated I/O time.

#ifndef LES3_STORAGE_DISK_SEARCH_H_
#define LES3_STORAGE_DISK_SEARCH_H_

#include <memory>
#include <utility>
#include <vector>

#include "baselines/brute_force.h"
#include "baselines/dualtrans.h"
#include "baselines/invidx.h"
#include "core/database.h"
#include "search/les3_index.h"
#include "storage/disk.h"
#include "storage/disk_store.h"

namespace les3 {
namespace storage {

/// Query outcome in disk mode.
struct DiskQueryResult {
  std::vector<Hit> hits;
  search::QueryStats stats;  // candidates / PE / CPU micros
  double io_ms = 0.0;        // simulated I/O time
  uint64_t seeks = 0;
  uint64_t pages = 0;
  /// Total latency the Figure 13 bench reports.
  double TotalMs() const { return io_ms + stats.micros / 1000.0; }
};

/// \brief LES3 with data on disk, groups stored contiguously.
class DiskLes3 {
 public:
  DiskLes3(const SetDatabase* db, const std::vector<GroupId>& assignment,
           uint32_t num_groups, SimilarityMeasure measure,
           DiskOptions disk = {},
           bitmap::BitmapBackend bitmap_backend =
               bitmap::BitmapBackend::kRoaring);

  /// Adopts an already-built matrix (a snapshot reload): no partitioning
  /// or training work, and the GroupContiguous layout is regenerated from
  /// the matrix's own assignment — identical to the layout the original
  /// build produced from the same partitioning.
  DiskLes3(const SetDatabase* db, tgm::Tgm tgm, SimilarityMeasure measure,
           DiskOptions disk = {});

  DiskQueryResult Knn(SetView query, size_t k) const;
  DiskQueryResult Range(SetView query, double delta) const;

  uint64_t IndexBytes() const { return tgm_.MemoryBytes(); }

  /// The matrix and measure (what SearchEngine::Save persists).
  const tgm::Tgm& tgm() const { return tgm_; }
  SimilarityMeasure measure() const { return measure_; }

 private:
  const SetDatabase* db_;
  tgm::Tgm tgm_;
  SimilarityMeasure measure_;
  DiskLayout layout_;
  DiskOptions disk_;
};

/// \brief Sequential-scan baseline on disk.
class DiskBruteForce {
 public:
  DiskBruteForce(const SetDatabase* db, SimilarityMeasure measure,
                 DiskOptions disk = {});

  DiskQueryResult Knn(SetView query, size_t k) const;
  DiskQueryResult Range(SetView query, double delta) const;

 private:
  const SetDatabase* db_;
  baselines::BruteForce scan_;
  DiskLayout layout_;
  DiskOptions disk_;
};

/// \brief Inverted index with postings and data on disk.
class DiskInvIdx {
 public:
  DiskInvIdx(const SetDatabase* db, baselines::InvIdxOptions options,
             DiskOptions disk = {});

  DiskQueryResult Knn(SetView query, size_t k) const;
  DiskQueryResult Range(SetView query, double delta) const;

  uint64_t IndexBytes() const { return index_.IndexBytes(); }

 private:
  /// Charges postings + candidate reads for one filter pass.
  void ChargeFilter(const baselines::InvIdx::FilterResult& filter,
                    DiskSimulator* sim) const;

  const SetDatabase* db_;
  baselines::InvIdx index_;
  baselines::InvIdxOptions options_;
  DiskLayout data_layout_;
  std::unique_ptr<PostingLayout> posting_layout_;
  DiskOptions disk_;
};

/// \brief DualTrans with R-tree nodes and data on disk.
class DiskDualTrans {
 public:
  DiskDualTrans(const SetDatabase* db, baselines::DualTransOptions options,
                DiskOptions disk = {});

  DiskQueryResult Knn(SetView query, size_t k) const;
  DiskQueryResult Range(SetView query, double delta) const;

  uint64_t IndexBytes() const { return index_.IndexBytes(); }

 private:
  DiskQueryResult Charge(std::vector<Hit> hits,
                         const search::QueryStats& stats) const;

  const SetDatabase* db_;
  baselines::DualTrans index_;
  DiskLayout layout_;
  DiskOptions disk_;
};

}  // namespace storage
}  // namespace les3

#endif  // LES3_STORAGE_DISK_SEARCH_H_
