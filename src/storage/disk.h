// Deterministic HDD cost model for the disk-based evaluation (Figure 13).
//
// The paper's testbed is a 5400-RPM HDD with ~80 MB/s sequential reads. We
// cannot ship spinning rust, so the disk layer keeps the real data in memory
// (queries exercise the same code paths) and charges every access to this
// simulator: a seek whenever the read is not contiguous with the previous
// one, half-revolution average rotational latency, and transfer time at the
// sequential rate, with page-granular accounting. The simulated clock is the
// I/O portion of the reported query latency.

#ifndef LES3_STORAGE_DISK_H_
#define LES3_STORAGE_DISK_H_

#include <cstdint>

namespace les3 {
namespace storage {

struct DiskOptions {
  double avg_seek_ms = 9.0;        // 5400-RPM class average seek
  double rpm = 5400.0;             // rotational latency = 30000/rpm ms avg
  double sequential_mb_per_s = 80.0;
  uint64_t page_bytes = 4096;
};

/// \brief Accumulates simulated I/O cost over page-granular reads.
class DiskSimulator {
 public:
  explicit DiskSimulator(DiskOptions options = {});

  /// Reads `bytes` starting at `offset`; contiguous with the previous read
  /// end -> no seek, otherwise one seek + rotational latency is charged.
  void Read(uint64_t offset, uint64_t bytes);

  /// Reads `bytes` from an unpredictable position: always one seek plus the
  /// page-rounded transfer (used for R-tree node fetches whose offsets are
  /// not modeled individually).
  void RandomRead(uint64_t bytes);

  /// Resets the head state and counters (per-query accounting).
  void Reset();

  uint64_t seeks() const { return seeks_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t pages_read() const { return pages_read_; }

  /// Simulated elapsed I/O time.
  double ElapsedMs() const;

  const DiskOptions& options() const { return options_; }

 private:
  DiskOptions options_;
  uint64_t next_contiguous_offset_ = UINT64_MAX;
  uint64_t seeks_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t pages_read_ = 0;
};

}  // namespace storage
}  // namespace les3

#endif  // LES3_STORAGE_DISK_H_
