#include "storage/disk.h"

namespace les3 {
namespace storage {

DiskSimulator::DiskSimulator(DiskOptions options) : options_(options) {}

void DiskSimulator::Read(uint64_t offset, uint64_t bytes) {
  if (bytes == 0) return;
  // Page-align the physical access.
  uint64_t first_page = offset / options_.page_bytes;
  uint64_t last_page = (offset + bytes - 1) / options_.page_bytes;
  uint64_t pages = last_page - first_page + 1;
  uint64_t physical = pages * options_.page_bytes;
  if (offset != next_contiguous_offset_) ++seeks_;
  next_contiguous_offset_ = offset + bytes;
  bytes_read_ += physical;
  pages_read_ += pages;
}

void DiskSimulator::RandomRead(uint64_t bytes) {
  if (bytes == 0) return;
  uint64_t pages = (bytes + options_.page_bytes - 1) / options_.page_bytes;
  ++seeks_;
  next_contiguous_offset_ = UINT64_MAX;
  bytes_read_ += pages * options_.page_bytes;
  pages_read_ += pages;
}

void DiskSimulator::Reset() {
  next_contiguous_offset_ = UINT64_MAX;
  seeks_ = 0;
  bytes_read_ = 0;
  pages_read_ = 0;
}

double DiskSimulator::ElapsedMs() const {
  double rotational_ms = 30000.0 / options_.rpm;  // half revolution
  double seek_cost = static_cast<double>(seeks_) *
                     (options_.avg_seek_ms + rotational_ms);
  double transfer_ms = static_cast<double>(bytes_read_) /
                       (options_.sequential_mb_per_s * 1e6) * 1e3;
  return seek_cost + transfer_ms;
}

}  // namespace storage
}  // namespace les3
