// On-disk layouts for the disk-based evaluation.
//
// Sets are serialized as (u32 count, u32 tokens...). Two layouts:
//   - IdOrdered: sets laid out by id (brute force, InvIdx, DualTrans);
//   - GroupContiguous: sets of a group stored back to back (LES3), which is
//     the paper's design point: a surviving group costs one seek plus a
//     sequential extent read.
// The layout records extents only; the actual bytes stay in the in-memory
// database while the DiskSimulator charges the accesses (see disk.h).

#ifndef LES3_STORAGE_DISK_STORE_H_
#define LES3_STORAGE_DISK_STORE_H_

#include <vector>

#include "core/database.h"
#include "core/types.h"

namespace les3 {
namespace storage {

/// A byte range on the simulated device.
struct Extent {
  uint64_t offset = 0;
  uint64_t bytes = 0;
};

/// \brief Extent map of a serialized database.
class DiskLayout {
 public:
  /// Layout with sets in id order.
  static DiskLayout IdOrdered(const SetDatabase& db);

  /// Layout with each group's sets contiguous, groups in id order.
  static DiskLayout GroupContiguous(const SetDatabase& db,
                                    const std::vector<GroupId>& assignment,
                                    uint32_t num_groups);

  const Extent& set_extent(SetId id) const { return set_extents_[id]; }

  /// Only for GroupContiguous layouts.
  const Extent& group_extent(GroupId g) const { return group_extents_[g]; }

  uint64_t total_bytes() const { return total_bytes_; }

  /// Serialized size of one set record.
  static uint64_t SetBytes(SetView s) {
    return sizeof(uint32_t) * (1 + s.size());
  }

 private:
  std::vector<Extent> set_extents_;    // by set id
  std::vector<Extent> group_extents_;  // by group id (group layout only)
  uint64_t total_bytes_ = 0;
};

/// Extent map for posting lists (InvIdx on disk): postings stored token by
/// token, 4 bytes per entry.
class PostingLayout {
 public:
  PostingLayout(const std::vector<uint64_t>& posting_lengths);

  const Extent& posting_extent(TokenId t) const { return extents_[t]; }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  std::vector<Extent> extents_;
  uint64_t total_bytes_ = 0;
};

}  // namespace storage
}  // namespace les3

#endif  // LES3_STORAGE_DISK_STORE_H_
