#include "storage/disk_store.h"

#include "util/logging.h"

namespace les3 {
namespace storage {

DiskLayout DiskLayout::IdOrdered(const SetDatabase& db) {
  DiskLayout layout;
  layout.set_extents_.resize(db.size());
  uint64_t offset = 0;
  for (SetId i = 0; i < db.size(); ++i) {
    uint64_t bytes = SetBytes(db.set(i));
    layout.set_extents_[i] = Extent{offset, bytes};
    offset += bytes;
  }
  layout.total_bytes_ = offset;
  return layout;
}

DiskLayout DiskLayout::GroupContiguous(const SetDatabase& db,
                                       const std::vector<GroupId>& assignment,
                                       uint32_t num_groups) {
  LES3_CHECK_EQ(assignment.size(), db.size());
  DiskLayout layout;
  layout.set_extents_.resize(db.size());
  layout.group_extents_.resize(num_groups);
  // Two passes: bucket members, then lay groups out consecutively.
  std::vector<std::vector<SetId>> members(num_groups);
  for (SetId i = 0; i < db.size(); ++i) members[assignment[i]].push_back(i);
  uint64_t offset = 0;
  for (GroupId g = 0; g < num_groups; ++g) {
    uint64_t start = offset;
    for (SetId i : members[g]) {
      uint64_t bytes = SetBytes(db.set(i));
      layout.set_extents_[i] = Extent{offset, bytes};
      offset += bytes;
    }
    layout.group_extents_[g] = Extent{start, offset - start};
  }
  layout.total_bytes_ = offset;
  return layout;
}

PostingLayout::PostingLayout(const std::vector<uint64_t>& posting_lengths) {
  extents_.resize(posting_lengths.size());
  uint64_t offset = 0;
  for (size_t t = 0; t < posting_lengths.size(); ++t) {
    uint64_t bytes = posting_lengths[t] * sizeof(uint32_t);
    extents_[t] = Extent{offset, bytes};
    offset += bytes;
  }
  total_bytes_ = offset;
}

}  // namespace storage
}  // namespace les3
