#include "search/maintenance.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace les3 {
namespace search {

void GroupActivity::Grow(size_t num_groups) {
  if (num_groups <= size_) return;
  auto grown = std::make_unique<std::atomic<uint64_t>[]>(num_groups);
  for (size_t g = 0; g < num_groups; ++g) {
    grown[g].store(g < size_ ? counts_[g].load(std::memory_order_relaxed) : 0,
                   std::memory_order_relaxed);
  }
  counts_ = std::move(grown);
  size_ = num_groups;
}

void GroupActivity::Decay() {
  for (size_t g = 0; g < size_; ++g) {
    counts_[g].store(counts_[g].load(std::memory_order_relaxed) / 2,
                     std::memory_order_relaxed);
  }
}

MaintenanceReport MaintainIndexOnce(Les3Index* index,
                                    const MaintenanceOptions& options,
                                    GroupActivity* activity) {
  MaintenanceReport report;
  tgm::Tgm* tgm = index->mutable_tgm();
  const SetDatabase& db = index->db();
  const uint32_t before_split = tgm->num_groups();
  if (before_split == 0) return report;
  size_t ops = 0;

  // Splits first: a split both halves verification cost immediately and
  // creates exact columns for the new group, so it is the higher-value op.
  // The mean is over non-empty groups — empty ones hold no live members
  // and would drag the threshold toward zero.
  if (tgm->num_nonempty_groups() > 0) {
    const double mean_live =
        static_cast<double>(db.num_live()) / tgm->num_nonempty_groups();
    const double split_above =
        std::max(options.overgrown_factor * mean_live,
                 static_cast<double>(options.min_split_size));
    for (GroupId g = 0; g < before_split && ops < options.max_ops_per_cycle;
         ++g) {
      if (static_cast<double>(tgm->group_size(g)) <= split_above) continue;
      if (tgm->SplitGroup(g, db) != kInvalidGroup) {
        ++report.splits;
        ++ops;
      }
    }
  }

  // Column recomputes for the dirtiest groups, hottest first: stale bits
  // only hurt on groups queries actually admit, so observed activity
  // breaks ties among the eligible.
  std::vector<std::pair<uint64_t, GroupId>> dirty;
  for (GroupId g = 0; g < tgm->num_groups(); ++g) {
    const uint32_t dirt = tgm->group_dirt(g);
    if (dirt == 0) continue;
    if (static_cast<double>(dirt) <=
        options.dirt_ratio * static_cast<double>(tgm->group_size(g) + 1)) {
      continue;
    }
    const uint64_t score = activity != nullptr ? activity->Score(g) : 0;
    dirty.emplace_back(score, g);
  }
  std::sort(dirty.begin(), dirty.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [score, g] : dirty) {
    if (ops >= options.max_ops_per_cycle) break;
    (void)score;
    report.bits_dropped += tgm->RecomputeGroupColumns(g, db);
    ++report.recomputes;
    ++ops;
  }

  if (activity != nullptr) {
    activity->Grow(tgm->num_groups());
    activity->Decay();
  }
  return report;
}

MaintenanceThread::MaintenanceThread(Cycle cycle,
                                     std::chrono::milliseconds interval)
    : cycle_(std::move(cycle)), interval_(interval) {
  thread_ = std::thread([this] { Loop(); });
}

MaintenanceThread::~MaintenanceThread() { Stop(); }

void MaintenanceThread::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MaintenanceThread::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (cv_.wait_for(lock, interval_, [this] { return stop_; })) break;
    lock.unlock();
    MaintenanceReport report = cycle_();
    splits_.fetch_add(report.splits, std::memory_order_relaxed);
    recomputes_.fetch_add(report.recomputes, std::memory_order_relaxed);
    lock.lock();
  }
}

}  // namespace search
}  // namespace les3
