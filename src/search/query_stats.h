// Per-query statistics: pruning efficiency (Definition 2.3) and the cost
// counters the benches report.

#ifndef LES3_SEARCH_QUERY_STATS_H_
#define LES3_SEARCH_QUERY_STATS_H_

#include <cstdint>

namespace les3 {
namespace search {

struct QueryStats {
  uint64_t candidates_verified = 0;  // |S_Q|: sets whose similarity was
                                     // computed
  uint64_t candidates_size_skipped = 0;  // members of surviving groups
                                         // skipped by the size window
                                         // without touching a token
  uint64_t groups_visited = 0;       // groups whose members were verified
  uint64_t groups_pruned = 0;
  uint64_t columns_scanned = 0;      // TGM token columns visited
  uint64_t results = 0;              // |R|: result size actually returned
  double pruning_efficiency = 0.0;   // Definition 2.3
  double micros = 0.0;               // wall time of the query
};

/// PE for a kNN query: (|D| - (|S_Q| - k)) / |D|.
inline double KnnPruningEfficiency(uint64_t db_size, uint64_t candidates,
                                   uint64_t k) {
  if (db_size == 0) return 1.0;
  uint64_t extra = candidates > k ? candidates - k : 0;
  return static_cast<double>(db_size - extra) / static_cast<double>(db_size);
}

/// PE for a range query: (|D| - (|S_Q| - |R|)) / |D|.
inline double RangePruningEfficiency(uint64_t db_size, uint64_t candidates,
                                     uint64_t results) {
  if (db_size == 0) return 1.0;
  uint64_t extra = candidates > results ? candidates - results : 0;
  return static_cast<double>(db_size - extra) / static_cast<double>(db_size);
}

}  // namespace search
}  // namespace les3

#endif  // LES3_SEARCH_QUERY_STATS_H_
