// One-call index construction: database in, LES3 index out, with the
// paper's defaults (L2P partitioning over PTR, n ≈ 0.5% |D| groups).

#ifndef LES3_SEARCH_BUILDER_H_
#define LES3_SEARCH_BUILDER_H_

#include "l2p/cascade.h"
#include "partition/partitioner.h"
#include "search/les3_index.h"
#include "util/status.h"

namespace les3 {
namespace search {

/// The paper's group-count heuristic: `requested` if non-zero, else
/// max(16, |D| / 200); always clamped to |D|.
uint32_t ResolveNumGroups(const SetDatabase& db, uint32_t requested);

/// Runs L2P over `db` with `cascade` knobs aligned to the resolved group
/// count and measure (shared by BuildLes3Index and the api/ adapters).
/// When `out_cascade` is non-null it receives the full cascade result —
/// including the trained model snapshots if cascade.keep_models is set —
/// so the caller can persist the learned partitioner.
partition::PartitionResult PartitionWithL2P(
    const SetDatabase& db, uint32_t groups, SimilarityMeasure measure,
    l2p::CascadeOptions cascade, l2p::CascadeResult* out_cascade = nullptr);

struct Les3BuildOptions {
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;
  /// 0 means the paper's heuristic: max(16, |D| / 200) groups.
  uint32_t num_groups = 0;
  /// Training knobs; target_groups is overridden by num_groups.
  l2p::CascadeOptions cascade;
  /// Storage representation of the TGM columns.
  bitmap::BitmapBackend bitmap_backend = bitmap::BitmapBackend::kRoaring;
};

/// \brief The one L2P-partition-then-index build path.
///
/// Runs L2P over `*db` and constructs the index over the shared database.
/// Both the single-index engines and every shard of the sharded engine
/// (shard/sharded_engine.h) build through this function — a shard is just
/// a database slice, so the single-index path is the 1-shard special case.
/// When `out_cascade` is non-null it receives the cascade result
/// (including trained model snapshots if options.cascade.keep_models).
/// `db` must be non-null and non-empty.
Les3Index BuildIndexOverShared(std::shared_ptr<SetDatabase> db,
                               const Les3BuildOptions& options,
                               l2p::CascadeResult* out_cascade = nullptr);

/// \brief Partitions `db` with L2P and builds the search index.
///
/// Fails with InvalidArgument on an empty database.
Result<Les3Index> BuildLes3Index(SetDatabase db,
                                 const Les3BuildOptions& options = {});

}  // namespace search
}  // namespace les3

#endif  // LES3_SEARCH_BUILDER_H_
