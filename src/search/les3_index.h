// The LES3 search engine: exact kNN and range set-similarity search over a
// TGM-indexed, group-partitioned database (paper Sections 3 and 6).
//
// Query processing is group-at-a-time and runs entirely through the shared
// CandidateVerifier pipeline (search/candidate_verifier.h): the TGM yields
// an upper bound on the similarity between the query and every set of each
// group in one pass; groups are then visited in bound order (kNN) or
// bound-filtered (range), each visited group is narrowed to the members
// whose sizes can still attain the governing threshold, and only those run
// the adaptive verification kernels. Results are exact for every measure
// satisfying the TGM Applicability Property (Theorem 3.1).

#ifndef LES3_SEARCH_LES3_INDEX_H_
#define LES3_SEARCH_LES3_INDEX_H_

#include <memory>
#include <vector>

#include "core/database.h"
#include "core/similarity.h"
#include "core/types.h"
#include "search/candidate_verifier.h"
#include "search/query_stats.h"
#include "tgm/tgm.h"

namespace les3 {
namespace search {

/// The shared scored-hit type (see core/types.h).
using les3::Hit;

/// \brief Exact set-similarity search index (LES3).
///
/// Holds a shared reference to the database; supports closed- and
/// open-universe inserts (Section 6).
class Les3Index {
 public:
  /// Builds from a database and a partitioning (from any Partitioner; the
  /// paper's default is L2P). Takes sole ownership of `db`. TGM columns
  /// are stored in `bitmap_backend` representation.
  Les3Index(SetDatabase db, const std::vector<GroupId>& assignment,
            uint32_t num_groups,
            SimilarityMeasure measure = SimilarityMeasure::kJaccard,
            bitmap::BitmapBackend bitmap_backend =
                bitmap::BitmapBackend::kRoaring);

  /// Same, over a database shared with other searchers (the api/ adapters
  /// build every backend over one owned copy). `db` must be non-null.
  Les3Index(std::shared_ptr<SetDatabase> db,
            const std::vector<GroupId>& assignment, uint32_t num_groups,
            SimilarityMeasure measure = SimilarityMeasure::kJaccard,
            bitmap::BitmapBackend bitmap_backend =
                bitmap::BitmapBackend::kRoaring);

  /// Adopts an already-built matrix (a snapshot reload,
  /// persist/snapshot.h): no partitioning, no training, no RunOptimize —
  /// the matrix is used exactly as deserialized, so a reloaded index
  /// answers queries identically to the index that was saved.
  Les3Index(std::shared_ptr<SetDatabase> db, tgm::Tgm tgm,
            SimilarityMeasure measure);

  /// Exact kNN (Definition 2.1): the k most similar sets, sorted by
  /// descending similarity (ties by ascending id). `on_group` (optional)
  /// observes visited groups — see CandidateVerifier::GroupVisitFn.
  std::vector<Hit> Knn(SetView query, size_t k, QueryStats* stats = nullptr,
                       const CandidateVerifier::GroupVisitFn& on_group = {})
      const;

  /// Exact range search (Definition 2.2): all sets with Sim >= delta,
  /// sorted by descending similarity.
  std::vector<Hit> Range(SetView query, double delta,
                         QueryStats* stats = nullptr,
                         const CandidateVerifier::GroupVisitFn& on_group = {})
      const;

  /// \brief Batched exact kNN: one shared column-major TGM probe for all
  /// queries (CandidateVerifier::KnnBatch), hits[q]/stats[q] byte-identical
  /// to a solo Knn(queries[q], k) call.
  void KnnBatch(const SetView* queries, size_t num_queries, size_t k,
                std::vector<std::vector<Hit>>* hits,
                std::vector<QueryStats>* stats,
                const CandidateVerifier::GroupVisitFn& on_group = {}) const {
    verifier().KnnBatch(queries, num_queries, k, hits, stats, on_group);
  }

  /// Batched exact range search; same exactness contract as KnnBatch.
  void RangeBatch(const SetView* queries, size_t num_queries, double delta,
                  std::vector<std::vector<Hit>>* hits,
                  std::vector<QueryStats>* stats,
                  const CandidateVerifier::GroupVisitFn& on_group = {}) const {
    verifier().RangeBatch(queries, num_queries, delta, hits, stats, on_group);
  }

  /// Inserts a new set (tokens may be previously unseen); returns its id.
  SetId Insert(SetRecord set);

  /// Deletes set `id`: the member is erased from its TGM group and the
  /// database entry tombstoned (the id is never reused). Returns false
  /// when `id` is out of range or already deleted.
  bool Delete(SetId id);

  /// Replaces set `id` with new content, keeping the id: the member is
  /// re-routed through Section 6 insertion (possibly to a different
  /// group). Returns false when `id` is out of range or deleted.
  bool Update(SetId id, SetRecord set);

  const SetDatabase& db() const { return *db_; }
  const std::shared_ptr<SetDatabase>& shared_db() const { return db_; }
  const tgm::Tgm& tgm() const { return tgm_; }

  /// Mutable matrix access for the maintenance layer
  /// (search/maintenance.h) only; the caller must hold whatever lock
  /// guards this index against concurrent queries.
  tgm::Tgm* mutable_tgm() { return &tgm_; }
  SimilarityMeasure measure() const { return measure_; }
  bitmap::BitmapBackend bitmap_backend() const {
    return tgm_.bitmap_backend();
  }

  /// Index footprint (TGM bitmaps + group membership), tombstone-aware:
  /// tokens of deleted sets still resident in the arena (SetDatabase
  /// tombstoning is logical) are charged too, so Describe/fig11 memory
  /// numbers stay honest after Delete/Update. Stale column bits need no
  /// extra charge — they are physically present in the bitmaps and already
  /// counted by MemoryBytes; their debt is surfaced via TotalDirt().
  uint64_t IndexBytes() const {
    return tgm_.MemoryBytes() + db_->GarbageTokens() * sizeof(TokenId);
  }

 private:
  CandidateVerifier verifier() const {
    return CandidateVerifier(&tgm_, db_.get(), measure_);
  }

  std::shared_ptr<SetDatabase> db_;
  tgm::Tgm tgm_;
  SimilarityMeasure measure_;
};

}  // namespace search
}  // namespace les3

#endif  // LES3_SEARCH_LES3_INDEX_H_
