// CandidateVerifier — the one cache-resident verification pipeline behind
// every LES3-family engine (memory, disk, and each shard of the sharded
// engine).
//
// The pipeline per query:
//   1. Candidate generation: Tgm::MatchedCandidates computes every group's
//      matched-token count in one fused pass and prunes groups below the
//      threshold-implied minimum (Theorem 3.1).
//   2. Group traversal: range queries visit every surviving group; kNN
//      visits them in descending bound order off a binary heap and stops at
//      the first bound strictly below the running k-th best (groups never
//      popped count toward groups_pruned — they are pre-skipped without a
//      single member touched).
//   3. Length filter: each visited group's members are ordered by set size
//      (tgm/tgm.h), so the candidate-size window implied by the threshold
//      (core/similarity.h SizeBoundsForThreshold — for kNN, the running
//      k-th best) binary-searches down to the one contiguous run that can
//      still qualify; everything outside is counted in
//      QueryStats::candidates_size_skipped.
//   4. Kernel verification: survivors run through the adaptive
//      VerifyThreshold kernels (core/verify.h) over SetViews into the
//      database's CSR token arena — no per-candidate pointer chasing.
//
// Exactness: steps 2–4 only ever discard candidates whose best attainable
// similarity is STRICTLY below the governing threshold under the identical
// double arithmetic the verifier uses, so results — ties included — match
// brute force exactly (the property suite holds every backend to this).

#ifndef LES3_SEARCH_CANDIDATE_VERIFIER_H_
#define LES3_SEARCH_CANDIDATE_VERIFIER_H_

#include <functional>
#include <vector>

#include "core/database.h"
#include "core/similarity.h"
#include "core/types.h"
#include "search/query_stats.h"
#include "tgm/tgm.h"

namespace les3 {
namespace search {

/// \brief Shared candidate generation + size filter + kernel verification.
///
/// A thin view over an index's TGM, database, and measure (cheap to
/// construct per query); owns no state, so one instance is safe to use
/// from any number of threads.
class CandidateVerifier {
 public:
  /// Fires once per group whose members are about to be verified, with the
  /// number of candidates the size window let through — the disk engine
  /// charges its extent read here, and the maintenance layer
  /// (search/maintenance.h) accumulates per-group activity. Groups
  /// pre-skipped by the bound or emptied by the size window never fire.
  using GroupVisitFn = std::function<void(GroupId, size_t candidates)>;

  CandidateVerifier(const tgm::Tgm* tgm, const SetDatabase* db,
                    SimilarityMeasure measure)
      : tgm_(tgm), db_(db), measure_(measure) {}

  /// Exact kNN (Definition 2.1). Fills `stats` (ignored when null) and
  /// returns hits sorted by HitOrder.
  std::vector<Hit> Knn(SetView query, size_t k, QueryStats* stats,
                       const GroupVisitFn& on_group = {}) const;

  /// Exact range search (Definition 2.2).
  std::vector<Hit> Range(SetView query, double delta, QueryStats* stats,
                         const GroupVisitFn& on_group = {}) const;

  /// \brief Batched exact kNN: one shared column-major TGM probe
  /// (Tgm::MatchedCandidatesBatch) for the whole batch, then each query's
  /// traversal unchanged over its own counter row, so hits[q] and stats[q]
  /// are byte-identical to a solo Knn(queries[q], k) — micros aside: the
  /// shared probe's wall time is split evenly across the batch and each
  /// query adds its own traversal time.
  void KnnBatch(const SetView* queries, size_t num_queries, size_t k,
                std::vector<std::vector<Hit>>* hits,
                std::vector<QueryStats>* stats,
                const GroupVisitFn& on_group = {}) const;

  /// Batched exact range search; same exactness contract as KnnBatch.
  void RangeBatch(const SetView* queries, size_t num_queries, double delta,
                  std::vector<std::vector<Hit>>* hits,
                  std::vector<QueryStats>* stats,
                  const GroupVisitFn& on_group = {}) const;

 private:
  /// Steps 2-4 of the pipeline for one kNN query, off an already-computed
  /// counter array (one row of a batch matrix, or a solo probe's counts).
  /// Fills every stats field except columns_scanned and micros (the
  /// caller's probe owns those).
  std::vector<Hit> KnnFromCounts(SetView query, size_t k, uint32_t min_count,
                                 const uint32_t* counts,
                                 const std::vector<GroupId>& candidates,
                                 QueryStats* stats,
                                 const GroupVisitFn& on_group) const;

  /// Range-query counterpart of KnnFromCounts (the min-count pruning is
  /// already folded into `candidates`, so no counter row is needed).
  std::vector<Hit> RangeFromCounts(SetView query, double delta,
                                   const std::vector<GroupId>& candidates,
                                   QueryStats* stats,
                                   const GroupVisitFn& on_group) const;

  const tgm::Tgm* tgm_;
  const SetDatabase* db_;
  SimilarityMeasure measure_;
};

}  // namespace search
}  // namespace les3

#endif  // LES3_SEARCH_CANDIDATE_VERIFIER_H_
