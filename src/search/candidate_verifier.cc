#include "search/candidate_verifier.h"

#include <algorithm>
#include <utility>

#include "core/verify.h"
#include "util/timer.h"

namespace les3 {
namespace search {

std::vector<Hit> CandidateVerifier::KnnFromCounts(
    SetView query, size_t k, uint32_t min_count, const uint32_t* counts,
    const std::vector<GroupId>& candidates, QueryStats* stats,
    const GroupVisitFn& on_group) const {
  // Groups in descending bound order. Built as a flat vector heapified in
  // O(|candidates|) — no per-group push cost for groups that will never be
  // popped: the loop below stops at the first bound strictly below the
  // running k-th best (an equal bound may still yield an equal-similarity
  // hit with a smaller id), and everything still on the heap is pre-skipped
  // wholesale, counted in groups_pruned without touching a member.
  using GroupEntry = std::pair<double, GroupId>;
  std::vector<GroupEntry> heap;
  heap.reserve(candidates.size());
  for (GroupId g : candidates) {
    if (tgm_->group_size(g) == 0) continue;
    heap.emplace_back(GroupUpperBound(measure_, counts[g], query.size()), g);
  }
  std::make_heap(heap.begin(), heap.end());

  TopKHits best(k);
  // Size window implied by the running k-th best; recomputed only when the
  // k-th best moves. Until the heap is full no window applies (any
  // similarity can still enter). The pair-overlap bound is likewise cached
  // per (member size, threshold) run — members arrive size-sorted.
  SizeBounds window;
  double window_threshold = -1.0;
  bool have_window = false;
  size_t cached_size = static_cast<size_t>(-1);
  double cached_threshold = -1.0;
  size_t cached_min_overlap = 0;
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    auto [ub, g] = heap.back();
    heap.pop_back();
    if (best.full() && ub < best.WorstSimilarity()) break;
    tgm::Tgm::MemberWindow w;
    if (best.full()) {
      double threshold = best.WorstSimilarity();
      if (!have_window || threshold != window_threshold) {
        window = SizeBoundsForThreshold(measure_, query.size(), threshold);
        window_threshold = threshold;
        have_window = true;
      }
      w = tgm_->MembersInSizeWindow(g, window.lo, window.hi);
      stats->candidates_size_skipped += w.skipped;
      if (w.begin == w.end) continue;  // window emptied the group
    } else {
      w = tgm_->MembersInSizeWindow(g, 0, static_cast<size_t>(-1));
    }
    ++stats->groups_visited;
    if (on_group) on_group(g, w.count());
    const uint32_t* size = w.sizes;
    for (const SetId* member = w.begin; member != w.end; ++member, ++size) {
      SetId s = *member;
      ++stats->candidates_verified;
      if (!best.full()) {
        best.Offer(s, Similarity(measure_, query, db_->set(s)));
        continue;
      }
      // Early-terminating verification against the running k-th best; a
      // candidate tying the k-th similarity still wins on a smaller id,
      // which Offer resolves under HitOrder.
      double threshold = best.WorstSimilarity();
      if (*size != cached_size || threshold != cached_threshold) {
        cached_size = *size;
        cached_threshold = threshold;
        cached_min_overlap =
            MinOverlapForPair(measure_, query.size(), cached_size, threshold);
      }
      VerifyResult v = VerifyThreshold(measure_, query, db_->set(s),
                                       threshold, cached_min_overlap);
      if (v.passed) best.Offer(s, v.similarity);
    }
  }

  tgm_->BackfillZeroCountGroups(counts, min_count, &best);

  std::vector<Hit> out = best.Take();
  stats->groups_pruned = tgm_->num_nonempty_groups() - stats->groups_visited;
  stats->results = out.size();
  // Deleted ids are not searchable, so efficiency is against the live
  // population, not the id space.
  stats->pruning_efficiency =
      KnnPruningEfficiency(db_->num_live(), stats->candidates_verified, k);
  return out;
}

std::vector<Hit> CandidateVerifier::Knn(SetView query, size_t k,
                                        QueryStats* stats,
                                        const GroupVisitFn& on_group) const {
  WallTimer timer;
  QueryStats local;
  if (stats == nullptr) stats = &local;
  *stats = QueryStats();
  if (k == 0) return {};

  // A group with matched count 0 shares no token with the query, so every
  // member has similarity exactly 0; such groups skip the bound heap
  // entirely and only backfill the result when it underflows k. The empty
  // query is the one exception (all counts are 0, yet empty sets have
  // similarity 1), so it keeps every group as a candidate.
  uint32_t min_count = query.size() == 0 ? 0 : 1;
  std::vector<uint32_t> counts;
  std::vector<GroupId> candidates;
  stats->columns_scanned =
      tgm_->MatchedCandidates(query, min_count, &counts, &candidates);

  std::vector<Hit> out =
      KnnFromCounts(query, k, min_count, counts.data(), candidates, stats,
                    on_group);
  stats->micros = timer.Micros();
  return out;
}

std::vector<Hit> CandidateVerifier::RangeFromCounts(
    SetView query, double delta, const std::vector<GroupId>& candidates,
    QueryStats* stats, const GroupVisitFn& on_group) const {
  // The δ-implied length filter, shared by every visited group.
  SizeBounds window = SizeBoundsForThreshold(measure_, query.size(), delta);
  std::vector<Hit> out;
  // Members come in ascending size order, so the pair-overlap bound — a
  // function of (|Q|, |S|, δ) only — is recomputed once per size run, not
  // per candidate.
  size_t cached_size = static_cast<size_t>(-1);
  size_t cached_min_overlap = 0;
  for (GroupId g : candidates) {
    if (tgm_->group_size(g) == 0) continue;
    // counts[g] >= min_count already implies UB(Q, G_g) >= delta
    // (GroupUpperBound is monotone in the matched count).
    tgm::Tgm::MemberWindow w =
        tgm_->MembersInSizeWindow(g, window.lo, window.hi);
    stats->candidates_size_skipped += w.skipped;
    if (w.begin == w.end) continue;  // every member outside the window
    ++stats->groups_visited;
    if (on_group) on_group(g, w.count());
    const uint32_t* size = w.sizes;
    for (const SetId* member = w.begin; member != w.end; ++member, ++size) {
      ++stats->candidates_verified;
      if (*size != cached_size) {
        cached_size = *size;
        cached_min_overlap =
            MinOverlapForPair(measure_, query.size(), cached_size, delta);
      }
      VerifyResult v = VerifyThreshold(measure_, query, db_->set(*member),
                                       delta, cached_min_overlap);
      if (v.passed) out.emplace_back(*member, v.similarity);
    }
  }
  SortHits(&out);
  stats->groups_pruned = tgm_->num_nonempty_groups() - stats->groups_visited;
  stats->results = out.size();
  stats->pruning_efficiency = RangePruningEfficiency(
      db_->num_live(), stats->candidates_verified, out.size());
  return out;
}

std::vector<Hit> CandidateVerifier::Range(SetView query, double delta,
                                          QueryStats* stats,
                                          const GroupVisitFn& on_group) const {
  WallTimer timer;
  QueryStats local;
  if (stats == nullptr) stats = &local;
  *stats = QueryStats();

  // Least matched count any δ-result's group must reach; the TGM prunes
  // groups below it during candidate generation (and short-circuits the
  // whole scan when the query cannot attain it).
  size_t min_count = MinOverlapForThreshold(measure_, query.size(), delta);
  if (min_count > query.size()) {
    // The threshold is unreachable even by an identical set.
    stats->micros = timer.Micros();
    return {};
  }
  std::vector<uint32_t> counts;
  std::vector<GroupId> candidates;
  stats->columns_scanned = tgm_->MatchedCandidates(
      query, static_cast<uint32_t>(min_count), &counts, &candidates);

  std::vector<Hit> out =
      RangeFromCounts(query, delta, candidates, stats, on_group);
  stats->micros = timer.Micros();
  return out;
}

void CandidateVerifier::KnnBatch(const SetView* queries, size_t num_queries,
                                 size_t k, std::vector<std::vector<Hit>>* hits,
                                 std::vector<QueryStats>* stats,
                                 const GroupVisitFn& on_group) const {
  hits->assign(num_queries, {});
  stats->assign(num_queries, QueryStats());
  if (num_queries == 0 || k == 0) return;  // Knn(k == 0) returns {} with
                                           // untouched stats

  WallTimer probe_timer;
  std::vector<uint32_t> min_counts(num_queries);
  for (size_t q = 0; q < num_queries; ++q) {
    min_counts[q] = queries[q].size() == 0 ? 0 : 1;
  }
  std::vector<uint32_t> counts;
  std::vector<std::vector<GroupId>> candidates;
  std::vector<size_t> columns_visited;
  tgm_->MatchedCandidatesBatch(queries, num_queries, min_counts.data(),
                               &counts, &candidates, &columns_visited);
  // The shared probe's cost is attributed evenly: it ran once for all Q
  // queries, and no per-query split of a fused column walk is meaningful.
  const double probe_share = probe_timer.Micros() / num_queries;

  const uint32_t num_groups = tgm_->num_groups();
  for (size_t q = 0; q < num_queries; ++q) {
    WallTimer timer;
    QueryStats& qstats = (*stats)[q];
    qstats.columns_scanned = columns_visited[q];
    (*hits)[q] = KnnFromCounts(
        queries[q], k, min_counts[q],
        counts.data() + q * static_cast<size_t>(num_groups), candidates[q],
        &qstats, on_group);
    qstats.micros = probe_share + timer.Micros();
  }
}

void CandidateVerifier::RangeBatch(const SetView* queries, size_t num_queries,
                                   double delta,
                                   std::vector<std::vector<Hit>>* hits,
                                   std::vector<QueryStats>* stats,
                                   const GroupVisitFn& on_group) const {
  hits->assign(num_queries, {});
  stats->assign(num_queries, QueryStats());
  if (num_queries == 0) return;

  WallTimer probe_timer;
  // Per-query thresholds. A query whose threshold is unreachable even by
  // an identical set skips probe and traversal entirely (the solo early
  // return); its min_count still rides along as |Q| + 1, which the batch
  // probe's attainable check rejects for free (attainable <= |Q|).
  std::vector<uint32_t> min_counts(num_queries);
  std::vector<uint8_t> unreachable(num_queries, 0);
  for (size_t q = 0; q < num_queries; ++q) {
    size_t min_count =
        MinOverlapForThreshold(measure_, queries[q].size(), delta);
    if (min_count > queries[q].size()) {
      unreachable[q] = 1;
      min_count = queries[q].size() + 1;
    }
    min_counts[q] = static_cast<uint32_t>(
        std::min(min_count, static_cast<size_t>(UINT32_MAX)));
  }
  std::vector<uint32_t> counts;
  std::vector<std::vector<GroupId>> candidates;
  std::vector<size_t> columns_visited;
  tgm_->MatchedCandidatesBatch(queries, num_queries, min_counts.data(),
                               &counts, &candidates, &columns_visited);
  const double probe_share = probe_timer.Micros() / num_queries;

  for (size_t q = 0; q < num_queries; ++q) {
    WallTimer timer;
    QueryStats& qstats = (*stats)[q];
    if (unreachable[q]) {
      qstats.micros = probe_share + timer.Micros();
      continue;
    }
    qstats.columns_scanned = columns_visited[q];
    (*hits)[q] = RangeFromCounts(queries[q], delta, candidates[q], &qstats,
                                 on_group);
    qstats.micros = probe_share + timer.Micros();
  }
}

}  // namespace search
}  // namespace les3
