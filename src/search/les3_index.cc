#include "search/les3_index.h"

#include <utility>

namespace les3 {
namespace search {

Les3Index::Les3Index(SetDatabase db, const std::vector<GroupId>& assignment,
                     uint32_t num_groups, SimilarityMeasure measure,
                     bitmap::BitmapBackend bitmap_backend)
    : Les3Index(std::make_shared<SetDatabase>(std::move(db)), assignment,
                num_groups, measure, bitmap_backend) {}

Les3Index::Les3Index(std::shared_ptr<SetDatabase> db,
                     const std::vector<GroupId>& assignment,
                     uint32_t num_groups, SimilarityMeasure measure,
                     bitmap::BitmapBackend bitmap_backend)
    : db_(std::move(db)),
      tgm_(*db_, assignment, num_groups, bitmap_backend),
      measure_(measure) {
  tgm_.RunOptimize();
}

Les3Index::Les3Index(std::shared_ptr<SetDatabase> db, tgm::Tgm tgm,
                     SimilarityMeasure measure)
    : db_(std::move(db)), tgm_(std::move(tgm)), measure_(measure) {}

std::vector<Hit> Les3Index::Knn(
    SetView query, size_t k, QueryStats* stats,
    const CandidateVerifier::GroupVisitFn& on_group) const {
  return verifier().Knn(query, k, stats, on_group);
}

std::vector<Hit> Les3Index::Range(
    SetView query, double delta, QueryStats* stats,
    const CandidateVerifier::GroupVisitFn& on_group) const {
  return verifier().Range(query, delta, stats, on_group);
}

SetId Les3Index::Insert(SetRecord set) {
  SetId id = db_->AddSet(set);
  // The view into the freshly appended arena tail stays valid through the
  // TGM update (no intervening AddSet).
  tgm_.AddSet(id, db_->set(id), measure_);
  return id;
}

bool Les3Index::Delete(SetId id) {
  if (id >= db_->size() || db_->is_deleted(id)) return false;
  // The TGM member run is keyed by (size, id); read the size before the
  // database entry is tombstoned to zero.
  const uint32_t size = static_cast<uint32_t>(db_->set_size(id));
  bool removed = tgm_.RemoveSet(id, size);
  bool deleted = db_->DeleteSet(id);
  return removed && deleted;
}

bool Les3Index::Update(SetId id, SetRecord set) {
  if (id >= db_->size() || db_->is_deleted(id)) return false;
  const uint32_t size = static_cast<uint32_t>(db_->set_size(id));
  if (!tgm_.RemoveSet(id, size)) return false;
  db_->ReplaceSet(id, set);
  // As with Insert, the fresh arena-tail view survives the TGM update.
  tgm_.ReinsertSet(id, db_->set(id), measure_);
  return true;
}

}  // namespace search
}  // namespace les3
