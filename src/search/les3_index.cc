#include "search/les3_index.h"

#include "core/verify.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"
#include "util/timer.h"

namespace les3 {
namespace search {
Les3Index::Les3Index(SetDatabase db, const std::vector<GroupId>& assignment,
                     uint32_t num_groups, SimilarityMeasure measure,
                     bitmap::BitmapBackend bitmap_backend)
    : Les3Index(std::make_shared<SetDatabase>(std::move(db)), assignment,
                num_groups, measure, bitmap_backend) {}

Les3Index::Les3Index(std::shared_ptr<SetDatabase> db,
                     const std::vector<GroupId>& assignment,
                     uint32_t num_groups, SimilarityMeasure measure,
                     bitmap::BitmapBackend bitmap_backend)
    : db_(std::move(db)),
      tgm_(*db_, assignment, num_groups, bitmap_backend),
      measure_(measure) {
  tgm_.RunOptimize();
}

Les3Index::Les3Index(std::shared_ptr<SetDatabase> db, tgm::Tgm tgm,
                     SimilarityMeasure measure)
    : db_(std::move(db)), tgm_(std::move(tgm)), measure_(measure) {}

std::vector<Hit> Les3Index::Knn(const SetRecord& query, size_t k,
                                QueryStats* stats) const {
  WallTimer timer;
  QueryStats local;
  if (stats == nullptr) stats = &local;
  *stats = QueryStats();
  if (k == 0) return {};

  // A group with matched count 0 shares no token with the query, so every
  // member has similarity exactly 0; such groups skip the bound heap
  // entirely and only backfill the result when it underflows k. The empty
  // query is the one exception (all counts are 0, yet empty sets have
  // similarity 1), so it keeps every group as a candidate.
  uint32_t min_count = query.size() == 0 ? 0 : 1;
  std::vector<uint32_t> counts;
  std::vector<GroupId> candidates;
  stats->columns_scanned =
      tgm_.MatchedCandidates(query, min_count, &counts, &candidates);

  // Groups in descending bound order; a max-heap lets us stop at the first
  // bound strictly below the running k-th best similarity (an equal bound
  // may still yield an equal-similarity hit with a smaller id).
  using GroupEntry = std::pair<double, GroupId>;
  std::priority_queue<GroupEntry> groups;
  for (GroupId g : candidates) {
    if (tgm_.group_size(g) == 0) continue;
    groups.push({GroupUpperBound(measure_, counts[g], query.size()), g});
  }

  TopKHits best(k);
  while (!groups.empty()) {
    auto [ub, g] = groups.top();
    groups.pop();
    if (best.full() && ub < best.WorstSimilarity()) break;
    ++stats->groups_visited;
    for (SetId s : tgm_.group_members(g)) {
      ++stats->candidates_verified;
      if (!best.full()) {
        best.Offer(s, Similarity(measure_, query, db_->set(s)));
        continue;
      }
      // Early-terminating verification against the running k-th best; a
      // candidate tying the k-th similarity still wins on a smaller id,
      // which Offer resolves under HitOrder.
      VerifyResult v =
          VerifyThreshold(measure_, query, db_->set(s), best.WorstSimilarity());
      if (v.passed) best.Offer(s, v.similarity);
    }
  }

  tgm_.BackfillZeroCountGroups(counts, min_count, &best);

  std::vector<Hit> out = best.Take();
  stats->groups_pruned = tgm_.num_nonempty_groups() - stats->groups_visited;
  stats->results = out.size();
  stats->pruning_efficiency =
      KnnPruningEfficiency(db_->size(), stats->candidates_verified, k);
  stats->micros = timer.Micros();
  return out;
}

std::vector<Hit> Les3Index::Range(const SetRecord& query, double delta,
                                  QueryStats* stats) const {
  WallTimer timer;
  QueryStats local;
  if (stats == nullptr) stats = &local;
  *stats = QueryStats();

  // Least matched count any δ-result's group must reach; the TGM prunes
  // groups below it during candidate generation (and short-circuits the
  // whole scan when the query cannot attain it).
  size_t min_count = MinOverlapForThreshold(measure_, query.size(), delta);
  std::vector<uint32_t> counts;
  std::vector<GroupId> candidates;
  if (min_count > query.size()) {
    // The threshold is unreachable even by an identical set.
    stats->micros = timer.Micros();
    return {};
  }
  stats->columns_scanned = tgm_.MatchedCandidates(
      query, static_cast<uint32_t>(min_count), &counts, &candidates);

  std::vector<Hit> out;
  for (GroupId g : candidates) {
    if (tgm_.group_size(g) == 0) continue;
    // counts[g] >= min_count already implies UB(Q, G_g) >= delta
    // (GroupUpperBound is monotone in the matched count).
    ++stats->groups_visited;
    for (SetId s : tgm_.group_members(g)) {
      ++stats->candidates_verified;
      VerifyResult v = VerifyThreshold(measure_, query, db_->set(s), delta);
      if (v.passed) out.emplace_back(s, v.similarity);
    }
  }
  SortHits(&out);
  stats->groups_pruned = tgm_.num_nonempty_groups() - stats->groups_visited;
  stats->results = out.size();
  stats->pruning_efficiency = RangePruningEfficiency(
      db_->size(), stats->candidates_verified, out.size());
  stats->micros = timer.Micros();
  return out;
}

SetId Les3Index::Insert(SetRecord set) {
  SetId id = db_->AddSet(set);  // copy stays valid for the TGM update
  tgm_.AddSet(id, db_->set(id), measure_);
  return id;
}

}  // namespace search
}  // namespace les3
