#include "search/les3_index.h"

#include <utility>

namespace les3 {
namespace search {

Les3Index::Les3Index(SetDatabase db, const std::vector<GroupId>& assignment,
                     uint32_t num_groups, SimilarityMeasure measure,
                     bitmap::BitmapBackend bitmap_backend)
    : Les3Index(std::make_shared<SetDatabase>(std::move(db)), assignment,
                num_groups, measure, bitmap_backend) {}

Les3Index::Les3Index(std::shared_ptr<SetDatabase> db,
                     const std::vector<GroupId>& assignment,
                     uint32_t num_groups, SimilarityMeasure measure,
                     bitmap::BitmapBackend bitmap_backend)
    : db_(std::move(db)),
      tgm_(*db_, assignment, num_groups, bitmap_backend),
      measure_(measure) {
  tgm_.RunOptimize();
}

Les3Index::Les3Index(std::shared_ptr<SetDatabase> db, tgm::Tgm tgm,
                     SimilarityMeasure measure)
    : db_(std::move(db)), tgm_(std::move(tgm)), measure_(measure) {}

std::vector<Hit> Les3Index::Knn(SetView query, size_t k,
                                QueryStats* stats) const {
  return verifier().Knn(query, k, stats);
}

std::vector<Hit> Les3Index::Range(SetView query, double delta,
                                  QueryStats* stats) const {
  return verifier().Range(query, delta, stats);
}

SetId Les3Index::Insert(SetRecord set) {
  SetId id = db_->AddSet(set);
  // The view into the freshly appended arena tail stays valid through the
  // TGM update (no intervening AddSet).
  tgm_.AddSet(id, db_->set(id), measure_);
  return id;
}

}  // namespace search
}  // namespace les3
