#include "search/les3_index.h"

#include "core/verify.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"
#include "util/timer.h"

namespace les3 {
namespace search {
Les3Index::Les3Index(SetDatabase db, const std::vector<GroupId>& assignment,
                     uint32_t num_groups, SimilarityMeasure measure)
    : Les3Index(std::make_shared<SetDatabase>(std::move(db)), assignment,
                num_groups, measure) {}

Les3Index::Les3Index(std::shared_ptr<SetDatabase> db,
                     const std::vector<GroupId>& assignment,
                     uint32_t num_groups, SimilarityMeasure measure)
    : db_(std::move(db)),
      tgm_(*db_, assignment, num_groups),
      measure_(measure) {
  tgm_.RunOptimize();
}

std::vector<Hit> Les3Index::Knn(const SetRecord& query, size_t k,
                                QueryStats* stats) const {
  WallTimer timer;
  QueryStats local;
  if (stats == nullptr) stats = &local;
  *stats = QueryStats();

  std::vector<uint32_t> counts;
  stats->columns_scanned = tgm_.MatchedCounts(query, &counts);

  // Groups in descending bound order; a max-heap lets us stop at the first
  // bound not exceeding the running k-th best similarity.
  using GroupEntry = std::pair<double, GroupId>;
  std::priority_queue<GroupEntry> groups;
  for (GroupId g = 0; g < counts.size(); ++g) {
    if (tgm_.group_size(g) == 0) continue;
    groups.push({GroupUpperBound(measure_, counts[g], query.size()), g});
  }

  std::priority_queue<std::pair<double, SetId>,
                      std::vector<std::pair<double, SetId>>, std::greater<>>
      best;  // min-heap on similarity
  while (!groups.empty()) {
    auto [ub, g] = groups.top();
    groups.pop();
    if (best.size() >= k && ub <= best.top().first) {
      ++stats->groups_pruned;
      stats->groups_pruned += groups.size();
      break;
    }
    ++stats->groups_visited;
    for (SetId s : tgm_.group_members(g)) {
      ++stats->candidates_verified;
      if (best.size() < k) {
        best.push({Similarity(measure_, query, db_->set(s)), s});
        continue;
      }
      // Early-terminating verification against the running k-th best.
      VerifyResult v =
          VerifyThreshold(measure_, query, db_->set(s), best.top().first);
      if (v.passed && v.similarity > best.top().first) {
        best.pop();
        best.push({v.similarity, s});
      }
    }
  }

  std::vector<Hit> out;
  out.reserve(best.size());
  while (!best.empty()) {
    out.emplace_back(best.top().second, best.top().first);
    best.pop();
  }
  SortHits(&out);
  stats->results = out.size();
  stats->pruning_efficiency =
      KnnPruningEfficiency(db_->size(), stats->candidates_verified, k);
  stats->micros = timer.Micros();
  return out;
}

std::vector<Hit> Les3Index::Range(const SetRecord& query, double delta,
                                  QueryStats* stats) const {
  WallTimer timer;
  QueryStats local;
  if (stats == nullptr) stats = &local;
  *stats = QueryStats();

  std::vector<uint32_t> counts;
  stats->columns_scanned = tgm_.MatchedCounts(query, &counts);

  std::vector<Hit> out;
  for (GroupId g = 0; g < counts.size(); ++g) {
    if (tgm_.group_size(g) == 0) continue;
    double ub = GroupUpperBound(measure_, counts[g], query.size());
    if (ub < delta) {
      ++stats->groups_pruned;
      continue;
    }
    ++stats->groups_visited;
    for (SetId s : tgm_.group_members(g)) {
      ++stats->candidates_verified;
      VerifyResult v = VerifyThreshold(measure_, query, db_->set(s), delta);
      if (v.passed) out.emplace_back(s, v.similarity);
    }
  }
  SortHits(&out);
  stats->results = out.size();
  stats->pruning_efficiency = RangePruningEfficiency(
      db_->size(), stats->candidates_verified, out.size());
  stats->micros = timer.Micros();
  return out;
}

SetId Les3Index::Insert(SetRecord set) {
  SetId id = db_->AddSet(set);  // copy stays valid for the TGM update
  tgm_.AddSet(id, db_->set(id), measure_);
  return id;
}

}  // namespace search
}  // namespace les3
