// Self-healing group maintenance (docs/mutability.md).
//
// Sustained Insert/Delete/Update traffic drifts the index away from the
// partition L2P trained at build time, in two distinct ways:
//
//   - Stale column bits: RemoveSet leaves M[g, t] = 1 for tokens no live
//     member of g carries. Upper bounds stay admissible (exactness holds),
//     but pruning weakens — the TGM admits groups that verify nothing.
//     Tracked per group as a dirt counter (tgm::Tgm::group_dirt).
//   - Overgrown groups: Section 6 routing appends every new set to its
//     best existing group, so hot groups swell and their members all pay
//     each other's verification cost whenever the group is admitted.
//
// MaintainIndexOnce pays both debts incrementally: it recomputes the
// columns of the dirtiest groups (prioritized by observed query activity,
// so the groups queries actually visit heal first) and splits groups that
// outgrew the mean at their size median. Work per call is bounded by
// MaintenanceOptions::max_ops_per_cycle, so a cycle is a short
// writer-lock critical section, never a rebuild.
//
// MaintenanceThread runs cycles on an interval; ShardedEngine owns one
// and rotates it across shards, taking each shard's writer lock only for
// the duration of that shard's cycle (queries on other shards proceed).

#ifndef LES3_SEARCH_MAINTENANCE_H_
#define LES3_SEARCH_MAINTENANCE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "core/types.h"
#include "search/les3_index.h"

namespace les3 {
namespace search {

/// Per-group query-activity counters, fed from the CandidateVerifier
/// on_group hook. Observe() runs under the engine's reader lock (relaxed
/// atomics, no contention with other readers); Grow() and Drain() run
/// under the writer lock, so they never race an Observe.
class GroupActivity {
 public:
  explicit GroupActivity(size_t num_groups = 0) { Grow(num_groups); }

  /// Ensures capacity for `num_groups` groups, preserving counts.
  void Grow(size_t num_groups);

  /// Records one group visit that let `candidates` members through the
  /// size window. Out-of-range groups (raced with a split before Grow)
  /// are dropped — maintenance heuristics tolerate undercounting.
  void Observe(GroupId g, size_t candidates) {
    if (g < size_) {
      counts_[g].fetch_add(1 + candidates, std::memory_order_relaxed);
    }
  }

  /// Activity score of group `g` (visits + candidates verified).
  uint64_t Score(GroupId g) const {
    return g < size_ ? counts_[g].load(std::memory_order_relaxed) : 0;
  }

  /// Halves every counter — an exponential decay so old traffic stops
  /// dominating the priorities. Called once per maintenance cycle.
  void Decay();

  size_t size() const { return size_; }

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;
  size_t size_ = 0;
};

struct MaintenanceOptions {
  /// Split a group when its live size exceeds this multiple of the mean
  /// live group size (and min_split_size).
  double overgrown_factor = 2.0;
  /// Never split groups smaller than this (tiny groups prune fine).
  size_t min_split_size = 16;
  /// Recompute a group's columns when dirt > dirt_ratio * (live + 1).
  double dirt_ratio = 0.25;
  /// Upper bound on splits + recomputes per cycle (bounds the writer-lock
  /// critical section).
  size_t max_ops_per_cycle = 4;
  /// Background thread wake interval.
  std::chrono::milliseconds interval{200};
};

struct MaintenanceReport {
  size_t splits = 0;
  size_t recomputes = 0;
  size_t bits_dropped = 0;

  MaintenanceReport& operator+=(const MaintenanceReport& o) {
    splits += o.splits;
    recomputes += o.recomputes;
    bits_dropped += o.bits_dropped;
    return *this;
  }
};

/// \brief One bounded maintenance cycle over one index. The caller must
/// hold the index's writer lock (no queries in flight). `activity` (may
/// be null) prioritizes column recomputes toward the groups queries
/// visit; it is grown to the post-split group count before returning.
MaintenanceReport MaintainIndexOnce(Les3Index* index,
                                    const MaintenanceOptions& options,
                                    GroupActivity* activity = nullptr);

/// \brief Background driver: runs `cycle` every `interval` until
/// destroyed (or Stop()). The cycle callback owns all locking.
class MaintenanceThread {
 public:
  using Cycle = std::function<MaintenanceReport()>;

  MaintenanceThread(Cycle cycle, std::chrono::milliseconds interval);
  ~MaintenanceThread();

  /// Stops and joins the thread; idempotent.
  void Stop();

  /// Totals across all cycles so far (approximate reads, relaxed).
  uint64_t total_splits() const {
    return splits_.load(std::memory_order_relaxed);
  }
  uint64_t total_recomputes() const {
    return recomputes_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  Cycle cycle_;
  std::chrono::milliseconds interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<uint64_t> splits_{0};
  std::atomic<uint64_t> recomputes_{0};
  std::thread thread_;
};

}  // namespace search
}  // namespace les3

#endif  // LES3_SEARCH_MAINTENANCE_H_
