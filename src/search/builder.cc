#include "search/builder.h"

#include "l2p/l2p.h"

namespace les3 {
namespace search {

uint32_t ResolveNumGroups(const SetDatabase& db, uint32_t requested) {
  uint32_t groups = requested;
  if (groups == 0) {
    groups = static_cast<uint32_t>(db.size() / 200);
    if (groups < 16) groups = 16;
  }
  if (groups > db.size()) groups = static_cast<uint32_t>(db.size());
  return groups;
}

partition::PartitionResult PartitionWithL2P(
    const SetDatabase& db, uint32_t groups, SimilarityMeasure measure,
    l2p::CascadeOptions cascade, l2p::CascadeResult* out_cascade) {
  cascade.target_groups = groups;
  cascade.measure = measure;
  if (cascade.init_groups > groups) cascade.init_groups = groups;
  l2p::L2PPartitioner partitioner(cascade);
  partition::PartitionResult result = partitioner.Partition(db, groups);
  if (out_cascade != nullptr) *out_cascade = partitioner.TakeCascade();
  return result;
}

Les3Index BuildIndexOverShared(std::shared_ptr<SetDatabase> db,
                               const Les3BuildOptions& options,
                               l2p::CascadeResult* out_cascade) {
  uint32_t groups = ResolveNumGroups(*db, options.num_groups);
  auto part = PartitionWithL2P(*db, groups, options.measure, options.cascade,
                               out_cascade);
  return Les3Index(std::move(db), part.assignment, part.num_groups,
                   options.measure, options.bitmap_backend);
}

Result<Les3Index> BuildLes3Index(SetDatabase db,
                                 const Les3BuildOptions& options) {
  if (db.empty()) {
    return Status::InvalidArgument("cannot index an empty database");
  }
  return BuildIndexOverShared(std::make_shared<SetDatabase>(std::move(db)),
                              options);
}

}  // namespace search
}  // namespace les3
