#include "search/builder.h"

#include "l2p/l2p.h"

namespace les3 {
namespace search {

Result<Les3Index> BuildLes3Index(SetDatabase db,
                                 const Les3BuildOptions& options) {
  if (db.empty()) {
    return Status::InvalidArgument("cannot index an empty database");
  }
  uint32_t groups = options.num_groups;
  if (groups == 0) {
    groups = static_cast<uint32_t>(db.size() / 200);
    if (groups < 16) groups = 16;
  }
  if (groups > db.size()) groups = static_cast<uint32_t>(db.size());

  l2p::CascadeOptions cascade = options.cascade;
  cascade.target_groups = groups;
  cascade.measure = options.measure;
  if (cascade.init_groups > groups) cascade.init_groups = groups;
  l2p::L2PPartitioner partitioner(cascade);
  auto part = partitioner.Partition(db, groups);
  return Les3Index(std::move(db), part.assignment, part.num_groups,
                   options.measure);
}

}  // namespace search
}  // namespace les3
