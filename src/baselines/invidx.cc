#include "baselines/invidx.h"

#include "core/verify.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"
#include "util/timer.h"

namespace les3 {
namespace baselines {

InvIdx::InvIdx(const SetDatabase* db, InvIdxOptions options)
    : db_(db), options_(options) {
  postings_.resize(db_->num_tokens());
  frequency_.assign(db_->num_tokens(), 0);
  for (SetId i = 0; i < db_->size(); ++i) {
    TokenId prev = static_cast<TokenId>(-1);
    for (TokenId t : db_->set(i).tokens()) {
      if (t == prev) continue;
      prev = t;
      postings_[t].push_back(i);
      ++frequency_[t];
    }
  }
}

const std::vector<SetId>& InvIdx::Postings(TokenId token) const {
  if (token >= postings_.size()) return empty_;
  return postings_[token];
}

uint64_t InvIdx::IndexBytes() const {
  uint64_t total = frequency_.size() * sizeof(uint32_t);
  for (const auto& p : postings_) total += p.size() * sizeof(SetId);
  return total;
}

InvIdx::CanonicalQuery InvIdx::Canonicalize(SetView query) const {
  CanonicalQuery cq;
  const auto& qt = query.tokens();
  size_t i = 0;
  while (i < qt.size()) {
    size_t j = i;
    while (j < qt.size() && qt[j] == qt[i]) ++j;
    cq.tokens.push_back(qt[i]);
    cq.multiplicities.push_back(j - i);
    i = j;
  }
  std::vector<size_t> order(cq.tokens.size());
  for (size_t p = 0; p < order.size(); ++p) order[p] = p;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    TokenId ta = cq.tokens[a], tb = cq.tokens[b];
    uint32_t fa = ta < frequency_.size() ? frequency_[ta] : 0;
    uint32_t fb = tb < frequency_.size() ? frequency_[tb] : 0;
    if (fa != fb) return fa < fb;  // rarest first
    return ta < tb;
  });
  CanonicalQuery sorted;
  for (size_t p : order) {
    sorted.tokens.push_back(cq.tokens[p]);
    sorted.multiplicities.push_back(cq.multiplicities[p]);
  }
  return sorted;
}

InvIdx::FilterResult InvIdx::RangeFilter(SetView query,
                                         double delta) const {
  FilterResult result;
  CanonicalQuery cq = Canonicalize(query);
  CollectCandidates(cq, query.size(), delta, &result.candidates,
                    &result.prefix_tokens);
  return result;
}

void InvIdx::CollectCandidates(const CanonicalQuery& cq, size_t query_size,
                               double delta, std::vector<SetId>* out,
                               std::vector<TokenId>* prefix_out) const {
  const std::vector<TokenId>& canonical = cq.tokens;
  const std::vector<size_t>& multiplicities = cq.multiplicities;
  // Least multiset overlap a δ-result must have (Theorem 3.1 machinery).
  size_t alpha = MinOverlapForThreshold(options_.measure, query_size, delta);
  if (alpha == 0 || alpha > query_size) {
    if (alpha > query_size) return;  // threshold unreachable
    // δ <= 0: every set qualifies.
    out->resize(db_->size());
    for (SetId i = 0; i < db_->size(); ++i) (*out)[i] = i;
    return;
  }
  // Multiset-safe prefix: keep extending the prefix until the total
  // multiplicity of the remaining suffix drops below alpha — a set sharing
  // no prefix token can then never reach the overlap bound. For plain sets
  // this degenerates to the textbook prefix length |Q| - alpha + 1.
  // suffix[i] = total multiplicity of canonical[i..end).
  std::vector<size_t> suffix(canonical.size() + 1, 0);
  for (size_t i = canonical.size(); i-- > 0;) {
    suffix[i] = suffix[i + 1] + multiplicities[i];
  }
  size_t prefix_len = canonical.size();
  for (size_t p = 0; p <= canonical.size(); ++p) {
    if (suffix[p] < alpha) {
      prefix_len = p;
      break;
    }
  }
  std::vector<uint8_t> seen(db_->size(), 0);
  for (size_t i = 0; i < prefix_len; ++i) {
    if (prefix_out != nullptr) prefix_out->push_back(canonical[i]);
    for (SetId c : Postings(canonical[i])) {
      if (seen[c]) continue;
      seen[c] = 1;
      // Size filter: a set too small or too large can never reach δ.
      if (MaxSimForSize(options_.measure, query_size, db_->set(c).size()) <
          delta) {
        continue;
      }
      out->push_back(c);
    }
  }
}

std::vector<Hit> InvIdx::Range(
    SetView query, double delta, search::QueryStats* stats) const {
  WallTimer timer;
  CanonicalQuery canonical = Canonicalize(query);
  std::vector<SetId> candidates;
  CollectCandidates(canonical, query.size(), delta, &candidates);
  std::vector<Hit> out;
  for (SetId c : candidates) {
    VerifyResult v =
        VerifyThreshold(options_.measure, query, db_->set(c), delta);
    if (v.passed) out.emplace_back(c, v.similarity);
  }
  SortHits(&out);
  if (stats != nullptr) {
    *stats = search::QueryStats();
    stats->candidates_verified = candidates.size();
    stats->results = out.size();
    stats->pruning_efficiency = search::RangePruningEfficiency(
        db_->size(), candidates.size(), out.size());
    stats->micros = timer.Micros();
  }
  return out;
}

std::vector<Hit> InvIdx::Knn(
    SetView query, size_t k, search::QueryStats* stats) const {
  WallTimer timer;
  CanonicalQuery canonical = Canonicalize(query);
  std::vector<uint8_t> verified(db_->size(), 0);
  TopKHits best(k);
  uint64_t total_verified = 0;
  double delta = 1.0;
  for (;;) {
    std::vector<SetId> candidates;
    CollectCandidates(canonical, query.size(), delta, &candidates);
    for (SetId c : candidates) {
      if (verified[c]) continue;
      verified[c] = 1;
      ++total_verified;
      best.Offer(c, Similarity(options_.measure, query, db_->set(c)));
    }
    // Every set with similarity >= delta was in this pass's candidate set,
    // so anything still unseen is strictly below the k-th best — ties
    // included — once the k-th best reaches delta.
    if (best.size() >= std::min<size_t>(k, db_->size()) &&
        best.size() > 0 && best.WorstSimilarity() >= delta) {
      break;
    }
    if (delta <= 0.0) break;  // the δ = 0 pass saw every set
    delta -= options_.knn_delta_step;
    if (delta < 0.0) delta = 0.0;
  }
  std::vector<Hit> out = best.Take();
  if (stats != nullptr) {
    *stats = search::QueryStats();
    stats->candidates_verified = total_verified;
    stats->results = out.size();
    stats->pruning_efficiency =
        search::KnnPruningEfficiency(db_->size(), total_verified, k);
    stats->micros = timer.Micros();
  }
  return out;
}

}  // namespace baselines
}  // namespace les3
