// Brute-force set similarity search: verify everything. The completeness
// baseline of Figures 12 and 13 — the paper shows it beating heavy indexes
// at low thresholds / large k, which our benches reproduce.

#ifndef LES3_BASELINES_BRUTE_FORCE_H_
#define LES3_BASELINES_BRUTE_FORCE_H_

#include <utility>
#include <vector>

#include "core/database.h"
#include "core/similarity.h"
#include "search/query_stats.h"

namespace les3 {
namespace baselines {

/// \brief Linear-scan searcher.
class BruteForce {
 public:
  explicit BruteForce(const SetDatabase* db,
                      SimilarityMeasure measure = SimilarityMeasure::kJaccard)
      : db_(db), measure_(measure) {}

  std::vector<Hit> Knn(
      SetView query, size_t k,
      search::QueryStats* stats = nullptr) const;

  std::vector<Hit> Range(
      SetView query, double delta,
      search::QueryStats* stats = nullptr) const;

 private:
  const SetDatabase* db_;
  SimilarityMeasure measure_;
};

}  // namespace baselines
}  // namespace les3

#endif  // LES3_BASELINES_BRUTE_FORCE_H_
