// InvIdx: inverted-index set similarity search with prefix and size filters
// (after Wang et al. [67], the paper's state-of-the-art inverted-index
// comparator).
//
// Tokens are globally ordered by ascending frequency (rarest first). For a
// range query with threshold δ, any result must overlap Q in at least
// α = ceil(δ |Q|) tokens, hence must contain one of the first
// |Q| - α + 1 query tokens in that order (prefix filter); candidates are
// the union of those postings, size-filtered to |S| in [δ|Q|, |Q|/δ], then
// verified. kNN is answered by the paper's Section 7.6 adaptation: start at
// δ = 1 and keep lowering it by a step z until the k-th best similarity
// reaches δ.

#ifndef LES3_BASELINES_INVIDX_H_
#define LES3_BASELINES_INVIDX_H_

#include <utility>
#include <vector>

#include "core/database.h"
#include "core/similarity.h"
#include "search/query_stats.h"

namespace les3 {
namespace baselines {

struct InvIdxOptions {
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;
  double knn_delta_step = 0.05;  // the z of Section 7.6, "tuned"
};

/// \brief Prefix-filtered inverted-index searcher.
class InvIdx {
 public:
  InvIdx(const SetDatabase* db, InvIdxOptions options = {});

  std::vector<Hit> Range(
      SetView query, double delta,
      search::QueryStats* stats = nullptr) const;

  std::vector<Hit> Knn(
      SetView query, size_t k,
      search::QueryStats* stats = nullptr) const;

  /// Index footprint: postings + token-rank table (Figure 11).
  uint64_t IndexBytes() const;

  /// Postings of `token` (ascending set id); empty when unknown.
  const std::vector<SetId>& Postings(TokenId token) const;

  /// Filter-step output for one range threshold: the candidate ids and the
  /// prefix tokens whose postings were fetched (the disk layer charges I/O
  /// for exactly these).
  struct FilterResult {
    std::vector<SetId> candidates;
    std::vector<TokenId> prefix_tokens;
  };
  FilterResult RangeFilter(SetView query, double delta) const;

 private:
  /// Distinct query tokens in ascending global-frequency order, with their
  /// multiplicities in the (multi)set query.
  struct CanonicalQuery {
    std::vector<TokenId> tokens;
    std::vector<size_t> multiplicities;
  };
  CanonicalQuery Canonicalize(SetView query) const;

  /// Range candidates under the prefix + size filters. Appends distinct set
  /// ids to `out` and, when non-null, the prefix tokens to `prefix_out`.
  void CollectCandidates(const CanonicalQuery& canonical, size_t query_size,
                         double delta, std::vector<SetId>* out,
                         std::vector<TokenId>* prefix_out = nullptr) const;

  const SetDatabase* db_;
  InvIdxOptions options_;
  std::vector<std::vector<SetId>> postings_;  // per token
  std::vector<uint32_t> frequency_;           // per token
  std::vector<SetId> empty_;
};

}  // namespace baselines
}  // namespace les3

#endif  // LES3_BASELINES_INVIDX_H_
