#include "baselines/dualtrans.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/logging.h"
#include "util/timer.h"

namespace les3 {
namespace baselines {

DualTrans::DualTrans(const SetDatabase* db, DualTransOptions options)
    : db_(db), options_(options) {
  // Carve the token universe into `dims` buckets balanced by total token
  // frequency (greedy longest-processing-time assignment).
  std::vector<uint64_t> freq(db_->num_tokens(), 0);
  for (SetId i = 0; i < db_->size(); ++i) {
    for (TokenId t : db_->set(i).tokens()) ++freq[t];
  }
  std::vector<TokenId> order(db_->num_tokens());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](TokenId a, TokenId b) { return freq[a] > freq[b]; });
  bucket_of_.assign(db_->num_tokens(), 0);
  std::priority_queue<std::pair<uint64_t, uint32_t>,
                      std::vector<std::pair<uint64_t, uint32_t>>,
                      std::greater<>>
      load;  // (current load, bucket)
  for (uint32_t b = 0; b < options_.dims; ++b) load.push({0, b});
  for (TokenId t : order) {
    auto [l, b] = load.top();
    load.pop();
    bucket_of_[t] = b;
    load.push({l + freq[t], b});
  }

  std::vector<std::vector<float>> vectors(db_->size());
  for (SetId i = 0; i < db_->size(); ++i) {
    vectors[i] = Transform(db_->set(i));
  }
  vector_bytes_ =
      static_cast<uint64_t>(db_->size()) * options_.dims * sizeof(float);
  rtree::RTree::Options topts;
  topts.leaf_capacity = options_.leaf_capacity;
  topts.fanout = options_.fanout;
  tree_ = std::make_unique<rtree::RTree>(vectors, topts);
}

std::vector<float> DualTrans::Transform(SetView s) const {
  std::vector<float> vec(options_.dims, 0.0f);
  for (TokenId t : s.tokens()) {
    if (t < bucket_of_.size()) vec[bucket_of_[t]] += 1.0f;
  }
  return vec;
}

double DualTrans::MbrUpperBound(const std::vector<float>& qvec,
                                size_t query_size,
                                const rtree::Mbr& mbr) const {
  // Bucket-wise overlap cap and set-size range inside the box.
  double overlap_ub = 0.0, size_lo = 0.0, size_hi = 0.0;
  for (size_t d = 0; d < qvec.size(); ++d) {
    overlap_ub += std::min(static_cast<double>(qvec[d]),
                           static_cast<double>(mbr.hi[d]));
    size_lo += mbr.lo[d];
    size_hi += mbr.hi[d];
  }
  // The size s* maximizing the similarity is overlap_ub clamped to the
  // feasible size range (similarity rises while s <= overlap and falls
  // after, for all supported measures).
  double s_star = std::clamp(overlap_ub, size_lo, size_hi);
  double o = std::min(overlap_ub, s_star);
  if (query_size == 0) return 1.0;
  if (s_star <= 0.0 || o <= 0.0) return 0.0;
  return SimilarityFromOverlap(options_.measure, static_cast<size_t>(o),
                               query_size, static_cast<size_t>(s_star));
}

std::vector<Hit> DualTrans::Knn(
    SetView query, size_t k, search::QueryStats* stats) const {
  WallTimer timer;
  std::vector<float> qvec = Transform(query);
  uint64_t nodes = 0, scored = 0;
  auto hits = tree_->TopK(
      k,
      [&](const rtree::Mbr& mbr) {
        return MbrUpperBound(qvec, query.size(), mbr);
      },
      [&](uint32_t id) {
        return Similarity(options_.measure, query, db_->set(id));
      },
      &nodes, &scored);
  if (stats != nullptr) {
    *stats = search::QueryStats();
    stats->candidates_verified = scored;
    stats->groups_visited = nodes;
    stats->results = hits.size();
    stats->pruning_efficiency =
        search::KnnPruningEfficiency(db_->size(), scored, k);
    stats->micros = timer.Micros();
  }
  return {hits.begin(), hits.end()};
}

std::vector<Hit> DualTrans::Range(
    SetView query, double delta, search::QueryStats* stats) const {
  WallTimer timer;
  std::vector<float> qvec = Transform(query);
  uint64_t nodes = 0, scored = 0;
  auto hits = tree_->RangeSearch(
      delta,
      [&](const rtree::Mbr& mbr) {
        return MbrUpperBound(qvec, query.size(), mbr);
      },
      [&](uint32_t id) {
        return Similarity(options_.measure, query, db_->set(id));
      },
      &nodes, &scored);
  if (stats != nullptr) {
    *stats = search::QueryStats();
    stats->candidates_verified = scored;
    stats->groups_visited = nodes;
    stats->results = hits.size();
    stats->pruning_efficiency =
        search::RangePruningEfficiency(db_->size(), scored, hits.size());
    stats->micros = timer.Micros();
  }
  return {hits.begin(), hits.end()};
}

uint64_t DualTrans::IndexBytes() const {
  return tree_->MemoryBytes() + vector_bytes_ +
         bucket_of_.size() * sizeof(uint32_t);
}

}  // namespace baselines
}  // namespace les3
