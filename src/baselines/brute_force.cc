#include "baselines/brute_force.h"

#include <algorithm>
#include <queue>

#include "util/timer.h"

namespace les3 {
namespace baselines {
std::vector<Hit> BruteForce::Knn(
    SetView query, size_t k, search::QueryStats* stats) const {
  WallTimer timer;
  TopKHits best(k);
  for (SetId i = 0; i < db_->size(); ++i) {
    if (db_->is_deleted(i)) continue;  // tombstoned ids are not searchable
    best.Offer(i, Similarity(measure_, query, db_->set(i)));
  }
  std::vector<Hit> out = best.Take();
  if (stats != nullptr) {
    *stats = search::QueryStats();
    stats->candidates_verified = db_->num_live();
    stats->results = out.size();
    stats->pruning_efficiency =
        search::KnnPruningEfficiency(db_->num_live(), db_->num_live(), k);
    stats->micros = timer.Micros();
  }
  return out;
}

std::vector<Hit> BruteForce::Range(
    SetView query, double delta, search::QueryStats* stats) const {
  WallTimer timer;
  std::vector<Hit> out;
  for (SetId i = 0; i < db_->size(); ++i) {
    if (db_->is_deleted(i)) continue;  // tombstoned ids are not searchable
    double sim = Similarity(measure_, query, db_->set(i));
    if (sim >= delta) out.emplace_back(i, sim);
  }
  SortHits(&out);
  if (stats != nullptr) {
    *stats = search::QueryStats();
    stats->candidates_verified = db_->num_live();
    stats->results = out.size();
    stats->pruning_efficiency = search::RangePruningEfficiency(
        db_->num_live(), db_->num_live(), out.size());
    stats->micros = timer.Micros();
  }
  return out;
}

}  // namespace baselines
}  // namespace les3
