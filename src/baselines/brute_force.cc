#include "baselines/brute_force.h"

#include <algorithm>
#include <queue>

#include "util/timer.h"

namespace les3 {
namespace baselines {
namespace {

void SortHits(std::vector<std::pair<SetId, double>>* hits) {
  std::sort(hits->begin(), hits->end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
}

}  // namespace

std::vector<std::pair<SetId, double>> BruteForce::Knn(
    const SetRecord& query, size_t k, search::QueryStats* stats) const {
  WallTimer timer;
  std::priority_queue<std::pair<double, SetId>,
                      std::vector<std::pair<double, SetId>>, std::greater<>>
      best;
  for (SetId i = 0; i < db_->size(); ++i) {
    double sim = Similarity(measure_, query, db_->set(i));
    if (best.size() < k) {
      best.push({sim, i});
    } else if (sim > best.top().first) {
      best.pop();
      best.push({sim, i});
    }
  }
  std::vector<std::pair<SetId, double>> out;
  while (!best.empty()) {
    out.emplace_back(best.top().second, best.top().first);
    best.pop();
  }
  SortHits(&out);
  if (stats != nullptr) {
    *stats = search::QueryStats();
    stats->candidates_verified = db_->size();
    stats->results = out.size();
    stats->pruning_efficiency =
        search::KnnPruningEfficiency(db_->size(), db_->size(), k);
    stats->micros = timer.Micros();
  }
  return out;
}

std::vector<std::pair<SetId, double>> BruteForce::Range(
    const SetRecord& query, double delta, search::QueryStats* stats) const {
  WallTimer timer;
  std::vector<std::pair<SetId, double>> out;
  for (SetId i = 0; i < db_->size(); ++i) {
    double sim = Similarity(measure_, query, db_->set(i));
    if (sim >= delta) out.emplace_back(i, sim);
  }
  SortHits(&out);
  if (stats != nullptr) {
    *stats = search::QueryStats();
    stats->candidates_verified = db_->size();
    stats->results = out.size();
    stats->pruning_efficiency =
        search::RangePruningEfficiency(db_->size(), db_->size(), out.size());
    stats->micros = timer.Micros();
  }
  return out;
}

}  // namespace baselines
}  // namespace les3
