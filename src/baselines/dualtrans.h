// DualTrans: transformation-based tree search (after Zhang et al. [73], the
// paper's tree-based comparator).
//
// Each set is transformed into a d-dimensional count vector — the token
// universe is carved into d buckets balanced by total token frequency, and
// vec[i] counts the set's tokens falling in bucket i — and the vectors are
// organized in an R-tree. A node MBR yields a similarity upper bound for
// every set inside (bucket-wise overlap can never exceed min(q_i, hi_i)),
// so branch-and-bound search is exact. As the paper observes, small d
// separates sets poorly and large d bloats the R-tree with overlapping
// boxes; either way the index is much heavier than the TGM, which Figures
// 11-13 quantify.

#ifndef LES3_BASELINES_DUALTRANS_H_
#define LES3_BASELINES_DUALTRANS_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/similarity.h"
#include "rtree/rtree.h"
#include "search/query_stats.h"

namespace les3 {
namespace baselines {

struct DualTransOptions {
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;
  size_t dims = 16;          // transformation dimensionality (tunable d)
  size_t leaf_capacity = 32;
  size_t fanout = 8;
};

/// \brief Transformation + R-tree searcher.
class DualTrans {
 public:
  DualTrans(const SetDatabase* db, DualTransOptions options = {});

  std::vector<Hit> Knn(
      SetView query, size_t k,
      search::QueryStats* stats = nullptr) const;

  std::vector<Hit> Range(
      SetView query, double delta,
      search::QueryStats* stats = nullptr) const;

  /// Index footprint: R-tree + stored vectors + bucket map (Figure 11).
  uint64_t IndexBytes() const;

  const rtree::RTree& tree() const { return *tree_; }

  /// Transforms a set into its bucket-count vector.
  std::vector<float> Transform(SetView s) const;

 private:
  /// Similarity upper bound between the query vector and any set vector
  /// inside `mbr` (see header comment).
  double MbrUpperBound(const std::vector<float>& qvec, size_t query_size,
                       const rtree::Mbr& mbr) const;

  const SetDatabase* db_;
  DualTransOptions options_;
  std::vector<uint32_t> bucket_of_;  // token -> bucket
  std::unique_ptr<rtree::RTree> tree_;
  uint64_t vector_bytes_ = 0;
};

}  // namespace baselines
}  // namespace les3

#endif  // LES3_BASELINES_DUALTRANS_H_
