#include "graph/knn_graph.h"

#include <algorithm>

namespace les3 {
namespace graph {
namespace {

/// Inverted index over distinct tokens with an occurrence cap.
std::vector<std::vector<SetId>> BuildPostings(const SetDatabase& db) {
  std::vector<std::vector<SetId>> postings(db.num_tokens());
  for (SetId i = 0; i < db.size(); ++i) {
    TokenId prev = static_cast<TokenId>(-1);
    for (TokenId t : db.set(i).tokens()) {
      if (t == prev) continue;
      prev = t;
      postings[t].push_back(i);
    }
  }
  return postings;
}

/// Calls fn(candidate_id, overlap_estimate) for every set sharing at least
/// one sub-cap token with set `q`.
template <typename Fn>
void ForEachCandidate(const SetDatabase& db,
                      const std::vector<std::vector<SetId>>& postings,
                      SetId q, size_t max_token_frequency,
                      std::vector<uint32_t>* counter,
                      std::vector<SetId>* touched, Fn&& fn) {
  touched->clear();
  TokenId prev = static_cast<TokenId>(-1);
  for (TokenId t : db.set(q).tokens()) {
    if (t == prev) continue;
    prev = t;
    const auto& list = postings[t];
    if (list.size() > max_token_frequency) continue;
    for (SetId c : list) {
      if (c == q) continue;
      if ((*counter)[c] == 0) touched->push_back(c);
      ++(*counter)[c];
    }
  }
  for (SetId c : *touched) {
    fn(c, (*counter)[c]);
    (*counter)[c] = 0;
  }
}

}  // namespace

Graph BuildKnnGraph(const SetDatabase& db, const KnnGraphOptions& opts) {
  auto postings = BuildPostings(db);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  std::vector<uint32_t> counter(db.size(), 0);
  std::vector<SetId> touched;
  std::vector<std::pair<double, SetId>> scored;
  for (SetId q = 0; q < db.size(); ++q) {
    scored.clear();
    ForEachCandidate(db, postings, q, opts.max_token_frequency, &counter,
                     &touched, [&](SetId c, uint32_t overlap) {
                       double sim = SimilarityFromOverlap(
                           opts.measure, overlap, db.set(q).size(),
                           db.set(c).size());
                       scored.emplace_back(sim, c);
                     });
    size_t k = std::min(opts.k, scored.size());
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first;
                      });
    for (size_t i = 0; i < k; ++i) edges.emplace_back(q, scored[i].second);
  }
  return Graph::FromEdges(static_cast<uint32_t>(db.size()), std::move(edges));
}

Graph BuildRangeGraph(const SetDatabase& db, double delta,
                      SimilarityMeasure measure,
                      size_t max_token_frequency) {
  auto postings = BuildPostings(db);
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  std::vector<uint32_t> counter(db.size(), 0);
  std::vector<SetId> touched;
  for (SetId q = 0; q < db.size(); ++q) {
    ForEachCandidate(db, postings, q, max_token_frequency, &counter, &touched,
                     [&](SetId c, uint32_t overlap) {
                       if (c < q) return;  // emit each pair once
                       double sim = SimilarityFromOverlap(
                           measure, overlap, db.set(q).size(),
                           db.set(c).size());
                       if (sim >= delta) edges.emplace_back(q, c);
                     });
  }
  return Graph::FromEdges(static_cast<uint32_t>(db.size()), std::move(edges));
}

}  // namespace graph
}  // namespace les3
