// Balanced k-way graph partitioning by recursive bisection with
// Fiduccia–Mattheyses refinement — an open reimplementation of the contract
// PAR-G gets from PaToH in the paper: balanced parts, small edge cut.

#ifndef LES3_GRAPH_PARTITION_FM_H_
#define LES3_GRAPH_PARTITION_FM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace les3 {
namespace graph {

struct FmOptions {
  /// Allowed relative imbalance per bisection (0.02 = parts within ±2% of
  /// their target).
  double imbalance = 0.02;
  /// FM refinement passes per bisection.
  size_t refinement_passes = 6;
  uint64_t seed = 17;
};

/// \brief Partitions `g` into `num_parts` balanced parts, minimizing the
/// edge cut. Returns a per-vertex part id in [0, num_parts).
std::vector<uint32_t> PartitionGraph(const Graph& g, uint32_t num_parts,
                                     const FmOptions& opts = {});

}  // namespace graph
}  // namespace les3

#endif  // LES3_GRAPH_PARTITION_FM_H_
