// Undirected graph in CSR form, the input to the balanced partitioner
// (graph/partition_fm.h) that backs PAR-G.

#ifndef LES3_GRAPH_GRAPH_H_
#define LES3_GRAPH_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace les3 {
namespace graph {

/// \brief Compressed-sparse-row undirected graph.
class Graph {
 public:
  Graph() = default;

  /// Builds from an edge list; edges are deduplicated, self-loops dropped,
  /// and both directions materialized.
  static Graph FromEdges(uint32_t num_vertices,
                         std::vector<std::pair<uint32_t, uint32_t>> edges);

  uint32_t num_vertices() const { return num_vertices_; }
  uint64_t num_edges() const { return neighbors_.size() / 2; }

  /// Neighbor range of vertex v.
  const uint32_t* NeighborsBegin(uint32_t v) const {
    return neighbors_.data() + offsets_[v];
  }
  const uint32_t* NeighborsEnd(uint32_t v) const {
    return neighbors_.data() + offsets_[v + 1];
  }
  uint32_t Degree(uint32_t v) const { return offsets_[v + 1] - offsets_[v]; }

  /// Heap bytes of the CSR arrays (PAR-G space accounting in Figure 9).
  uint64_t MemoryBytes() const {
    return offsets_.size() * sizeof(uint32_t) +
           neighbors_.size() * sizeof(uint32_t);
  }

 private:
  uint32_t num_vertices_ = 0;
  std::vector<uint32_t> offsets_;    // num_vertices + 1
  std::vector<uint32_t> neighbors_;  // both directions
};

/// Number of edges whose endpoints land in different parts.
uint64_t CutSize(const Graph& g, const std::vector<uint32_t>& part);

}  // namespace graph
}  // namespace les3

#endif  // LES3_GRAPH_GRAPH_H_
