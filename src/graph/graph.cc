#include "graph/graph.h"

#include <algorithm>

#include "util/logging.h"

namespace les3 {
namespace graph {

Graph Graph::FromEdges(uint32_t num_vertices,
                       std::vector<std::pair<uint32_t, uint32_t>> edges) {
  // Canonicalize, drop self-loops, dedup.
  std::vector<std::pair<uint32_t, uint32_t>> canon;
  canon.reserve(edges.size());
  for (auto [a, b] : edges) {
    if (a == b) continue;
    LES3_CHECK_LT(a, num_vertices);
    LES3_CHECK_LT(b, num_vertices);
    canon.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());

  Graph g;
  g.num_vertices_ = num_vertices;
  std::vector<uint32_t> degree(num_vertices, 0);
  for (auto [a, b] : canon) {
    ++degree[a];
    ++degree[b];
  }
  g.offsets_.assign(num_vertices + 1, 0);
  for (uint32_t v = 0; v < num_vertices; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  }
  g.neighbors_.resize(g.offsets_.back());
  std::vector<uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (auto [a, b] : canon) {
    g.neighbors_[cursor[a]++] = b;
    g.neighbors_[cursor[b]++] = a;
  }
  return g;
}

uint64_t CutSize(const Graph& g, const std::vector<uint32_t>& part) {
  uint64_t cut = 0;
  for (uint32_t v = 0; v < g.num_vertices(); ++v) {
    for (const uint32_t* n = g.NeighborsBegin(v); n != g.NeighborsEnd(v);
         ++n) {
      if (*n > v && part[*n] != part[v]) ++cut;
    }
  }
  return cut;
}

}  // namespace graph
}  // namespace les3
