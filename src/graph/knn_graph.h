// kNN similarity-graph construction (step 1 of PAR-G, Section 4.3.1).
//
// For each set, the k most similar sets become its neighbors (or, for range
// workloads, all sets within the threshold). Candidates are found through an
// in-memory inverted index over tokens — the same trick the paper uses when
// it "accelerates PAR-G's kNN graph construction with LES3" — with very
// frequent tokens capped to keep the candidate lists tractable.

#ifndef LES3_GRAPH_KNN_GRAPH_H_
#define LES3_GRAPH_KNN_GRAPH_H_

#include "core/database.h"
#include "core/similarity.h"
#include "graph/graph.h"

namespace les3 {
namespace graph {

struct KnnGraphOptions {
  size_t k = 10;
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;
  /// Tokens appearing in more than this many sets contribute no candidates
  /// (they would otherwise connect nearly everything to everything). The
  /// graph remains a good similarity graph because rare tokens carry nearly
  /// all the similarity signal.
  size_t max_token_frequency = 2000;
};

/// Builds the k-nearest-neighbor graph of `db`.
Graph BuildKnnGraph(const SetDatabase& db, const KnnGraphOptions& opts);

/// Builds the range similarity graph: edge (x, y) iff Sim(x, y) >= delta.
Graph BuildRangeGraph(const SetDatabase& db, double delta,
                      SimilarityMeasure measure,
                      size_t max_token_frequency = 2000);

}  // namespace graph
}  // namespace les3

#endif  // LES3_GRAPH_KNN_GRAPH_H_
