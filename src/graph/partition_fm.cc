#include "graph/partition_fm.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

#include "util/logging.h"
#include "util/random.h"

namespace les3 {
namespace graph {
namespace {

/// One bisection task: the vertex subset `vertices` of `g` must be split
/// into two sides with |side 0| ~= target_left.
struct BisectTask {
  std::vector<uint32_t> vertices;
  uint32_t parts;       // number of final parts this subset still owes
  uint32_t part_base;   // first part id assigned to this subset
};

/// Grows side 0 by BFS from a random seed until it holds `target_left`
/// vertices; unreached vertices (disconnected pieces) are appended from a
/// rotating cursor. Returns side[] indexed by position in `vertices`.
std::vector<uint8_t> InitialBisect(const Graph& g,
                                   const std::vector<uint32_t>& vertices,
                                   size_t target_left, Rng* rng,
                                   const std::vector<uint32_t>& local_id) {
  std::vector<uint8_t> side(vertices.size(), 1);
  if (target_left == 0) return side;
  std::vector<uint8_t> visited(vertices.size(), 0);
  size_t taken = 0;
  size_t cursor = 0;
  std::deque<uint32_t> frontier;  // local indices
  while (taken < target_left) {
    if (frontier.empty()) {
      while (cursor < vertices.size() && visited[cursor]) ++cursor;
      if (cursor == vertices.size()) break;
      size_t pick = cursor;
      if (taken == 0 && !vertices.empty()) {
        // Random seed for the first region to decorrelate recursions.
        size_t tries = 0;
        do {
          pick = rng->Uniform(vertices.size());
        } while (visited[pick] && ++tries < 16);
        if (visited[pick]) pick = cursor;
      }
      frontier.push_back(static_cast<uint32_t>(pick));
      visited[pick] = 1;
    }
    uint32_t li = frontier.front();
    frontier.pop_front();
    side[li] = 0;
    ++taken;
    uint32_t v = vertices[li];
    for (const uint32_t* n = g.NeighborsBegin(v); n != g.NeighborsEnd(v);
         ++n) {
      uint32_t ln = local_id[*n];
      if (ln == std::numeric_limits<uint32_t>::max()) continue;  // outside
      if (!visited[ln]) {
        visited[ln] = 1;
        frontier.push_back(ln);
      }
    }
  }
  return side;
}

/// One FM refinement pass with lazy priority queues. Returns true if the
/// pass improved the cut.
bool FmPass(const Graph& g, const std::vector<uint32_t>& vertices,
            const std::vector<uint32_t>& local_id, std::vector<uint8_t>* side,
            size_t min_left, size_t max_left) {
  const size_t n = vertices.size();
  std::vector<int64_t> gain(n, 0);
  size_t left_count = 0;
  for (size_t i = 0; i < n; ++i) {
    if ((*side)[i] == 0) ++left_count;
  }
  auto compute_gain = [&](size_t i) {
    uint32_t v = vertices[i];
    int64_t gn = 0;
    for (const uint32_t* nb = g.NeighborsBegin(v); nb != g.NeighborsEnd(v);
         ++nb) {
      uint32_t ln = local_id[*nb];
      if (ln == std::numeric_limits<uint32_t>::max()) continue;
      gn += ((*side)[ln] != (*side)[i]) ? 1 : -1;
    }
    return gn;
  };
  using Entry = std::pair<int64_t, uint32_t>;  // (gain, local index)
  std::priority_queue<Entry> heap;
  for (size_t i = 0; i < n; ++i) {
    gain[i] = compute_gain(i);
    heap.emplace(gain[i], static_cast<uint32_t>(i));
  }
  std::vector<uint8_t> locked(n, 0);
  // Move sequence with running best prefix.
  std::vector<uint32_t> moves;
  int64_t best_total = 0, running = 0;
  size_t best_prefix = 0;
  while (!heap.empty()) {
    auto [gv, li] = heap.top();
    heap.pop();
    if (locked[li] || gv != gain[li]) continue;  // stale entry
    // Balance check for the prospective move.
    size_t new_left = left_count + ((*side)[li] == 0 ? -1 : +1);
    if (new_left < min_left || new_left > max_left) continue;
    locked[li] = 1;
    (*side)[li] ^= 1;
    left_count = new_left;
    running += gv;
    moves.push_back(li);
    if (running > best_total) {
      best_total = running;
      best_prefix = moves.size();
    }
    uint32_t v = vertices[li];
    for (const uint32_t* nb = g.NeighborsBegin(v); nb != g.NeighborsEnd(v);
         ++nb) {
      uint32_t ln = local_id[*nb];
      if (ln == std::numeric_limits<uint32_t>::max() || locked[ln]) continue;
      gain[ln] = compute_gain(ln);
      heap.emplace(gain[ln], ln);
    }
  }
  // Roll back moves past the best prefix.
  for (size_t i = moves.size(); i-- > best_prefix;) {
    (*side)[moves[i]] ^= 1;
  }
  return best_total > 0;
}

}  // namespace

std::vector<uint32_t> PartitionGraph(const Graph& g, uint32_t num_parts,
                                     const FmOptions& opts) {
  LES3_CHECK_GE(num_parts, 1u);
  std::vector<uint32_t> part(g.num_vertices(), 0);
  if (num_parts == 1) return part;
  Rng rng(opts.seed);

  std::vector<uint32_t> all(g.num_vertices());
  for (uint32_t v = 0; v < g.num_vertices(); ++v) all[v] = v;
  std::deque<BisectTask> tasks;
  tasks.push_back(BisectTask{std::move(all), num_parts, 0});

  // Scratch: local id of each vertex within the current task (max() when the
  // vertex is outside the task subset).
  std::vector<uint32_t> local_id(g.num_vertices(),
                                 std::numeric_limits<uint32_t>::max());

  while (!tasks.empty()) {
    BisectTask task = std::move(tasks.front());
    tasks.pop_front();
    if (task.parts == 1) {
      for (uint32_t v : task.vertices) part[v] = task.part_base;
      continue;
    }
    uint32_t left_parts = task.parts / 2;
    uint32_t right_parts = task.parts - left_parts;
    size_t target_left = task.vertices.size() *
                         static_cast<size_t>(left_parts) / task.parts;
    size_t slack = std::max<size_t>(
        1, static_cast<size_t>(task.vertices.size() * opts.imbalance));
    size_t min_left = target_left > slack ? target_left - slack : 0;
    size_t max_left = std::min(task.vertices.size(), target_left + slack);
    // Each side must keep at least one vertex per part it still owes
    // (when enough vertices exist).
    if (task.vertices.size() >= task.parts) {
      min_left = std::max<size_t>(min_left, left_parts);
      max_left = std::min(max_left, task.vertices.size() - right_parts);
      if (min_left > max_left) min_left = max_left = target_left;
    }

    for (size_t i = 0; i < task.vertices.size(); ++i) {
      local_id[task.vertices[i]] = static_cast<uint32_t>(i);
    }
    std::vector<uint8_t> side =
        InitialBisect(g, task.vertices, target_left, &rng, local_id);
    for (size_t pass = 0; pass < opts.refinement_passes; ++pass) {
      if (!FmPass(g, task.vertices, local_id, &side, min_left, max_left)) {
        break;
      }
    }
    for (uint32_t v : task.vertices) {
      local_id[v] = std::numeric_limits<uint32_t>::max();
    }

    BisectTask left, right;
    left.parts = left_parts;
    left.part_base = task.part_base;
    right.parts = right_parts;
    right.part_base = task.part_base + left_parts;
    for (size_t i = 0; i < task.vertices.size(); ++i) {
      (side[i] == 0 ? left : right).vertices.push_back(task.vertices[i]);
    }
    tasks.push_back(std::move(left));
    tasks.push_back(std::move(right));
  }
  return part;
}

}  // namespace graph
}  // namespace les3
