// The les3_serve wire protocol: a small length-prefixed little-endian
// binary framing with one request and one response shape per message type
// (docs/serving.md has the byte-level layout).
//
// The codec is pure — it maps byte buffers to/from the Request/Response
// structs and never touches a socket — so the malformed-frame test suite
// drives every truncation and corruption case without networking, the same
// way the snapshot corruption suite drives persist/. All multi-byte
// integers are little-endian via persist::ByteWriter/ByteReader: the
// bounds-checked reader is the only way network bytes enter the process,
// so malformed input produces a typed Status, never an out-of-bounds read.
//
// Every request carries a client-chosen `seq` echoed verbatim in its
// response, so pipelined clients can match replies even when the server's
// executor pool completes them out of order. Responses carry no
// server-side timing or counters: for a given engine state, the response
// bytes are a pure function of the request bytes, which is what lets the
// end-to-end tests demand byte-exact agreement between cached and
// uncached serving.

#ifndef LES3_SERVE_WIRE_H_
#define LES3_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/set_record.h"
#include "core/types.h"
#include "persist/bytes.h"
#include "util/status.h"

namespace les3 {
namespace serve {

/// Hard cap on one frame's payload. A length prefix above this is a
/// protocol violation: the framer rejects it before any allocation and the
/// connection closes (there is no way to resynchronize a corrupt length).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB

/// Cap on the per-request query count of the batch types.
inline constexpr uint32_t kMaxBatchQueries = 1u << 16;

/// Cap on the `k` of kKnn/kKnnBatch. Keeps any single-query reply far
/// below kMaxFrameBytes; the decoder rejects a larger k with
/// InvalidArgument before the engine sees it.
inline constexpr uint32_t kMaxKnnK = 1u << 20;

/// Request message types. Values are wire bytes — append only.
enum class MsgType : uint8_t {
  kPing = 1,       // liveness probe, empty body
  kDescribe = 2,   // server + engine description string
  kKnn = 3,        // exact kNN for one query
  kRange = 4,      // exact range search for one query
  kKnnBatch = 5,   // kNN for N queries, one shared k
  kRangeBatch = 6, // range for N queries, one shared delta
  kInsert = 7,     // insert one set, returns its global id
  kDelete = 8,     // tombstone one set by id
  kUpdate = 9,     // replace one set's content, keeping its id
  kMaintainNow = 10,  // run one synchronous maintenance cycle, empty body
};

/// Typed reply status. 0-9 mirror les3::StatusCode value for value
/// (Status::FromCode round-trips them); the serving layer adds nothing —
/// deadline and admission rejections are StatusCode codes too.
enum class WireStatus : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kNotSupported = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,  // request missed its deadline budget
  kOverloaded = 9,        // fast-rejected by admission control
};

/// StatusCode <-> WireStatus, value for value.
WireStatus WireStatusFromCode(StatusCode code);
StatusCode CodeFromWireStatus(WireStatus status);
const char* ToString(WireStatus status);

/// \brief One decoded request.
struct Request {
  uint32_t seq = 0;          // echoed in the response
  MsgType type = MsgType::kPing;
  uint32_t deadline_ms = 0;  // budget from arrival; 0 = unbounded
  uint32_t k = 0;            // kKnn / kKnnBatch
  double delta = 0.0;        // kRange / kRangeBatch
  SetId target_id = 0;       // kDelete / kUpdate: the set being mutated
  /// One entry for kKnn/kRange/kInsert/kUpdate, N for the batch types,
  /// empty for kPing/kDescribe/kDelete. Tokens are sorted non-descending
  /// (the codec rejects anything else; multiset duplicates are legal).
  std::vector<SetRecord> queries;
};

/// \brief One decoded response.
struct Response {
  uint32_t seq = 0;
  WireStatus status = WireStatus::kOk;
  std::string message;   // non-OK replies only
  std::string describe;  // kDescribe
  SetId inserted_id = 0; // kInsert
  /// kMaintainNow: the cycle's ops counters (search::MaintenanceReport
  /// on the wire). Maintenance is exactness-preserving, so these are the
  /// only observable outcome of the verb.
  uint64_t maintenance_splits = 0;
  uint64_t maintenance_recomputes = 0;
  uint64_t maintenance_bits_dropped = 0;
  /// Hit lists: one for kKnn/kRange, N (in request order) for batches.
  std::vector<std::vector<Hit>> results;
};

/// Appends one complete request frame (length prefix included) to `out`.
void EncodeRequest(const Request& request, persist::ByteWriter* out);

/// Appends one complete response frame. `type` selects the OK-body shape
/// (it is not on the wire; the client knows what it asked). An OK
/// response whose payload would exceed kMaxFrameBytes is encoded as a
/// kOutOfRange error frame instead — an oversized result (huge k, very
/// wide Range, big batch) can never abort the encoder.
void EncodeResponse(const Response& response, MsgType type,
                    persist::ByteWriter* out);

/// Payload size EncodeResponse would produce for an OK response.
size_t EncodedOkPayloadSize(const Response& response, MsgType type);

/// Replaces an OK response whose encoded payload would exceed
/// kMaxFrameBytes with a kOutOfRange error carrying an explanatory
/// message; no-op otherwise. The server applies this before counting a
/// reply so its counters match the wire (EncodeResponse also converts,
/// as a backstop for other callers).
void ClampOversizedResponse(Response* response, MsgType type);

/// Convenience for the server's error paths: a non-OK response frame.
void EncodeErrorResponse(uint32_t seq, WireStatus status,
                         const std::string& message, persist::ByteWriter* out);

/// \brief Scans a connection buffer for one complete frame.
///
/// On OK with *complete == true, bytes [4, *frame_end) of `data` are the
/// payload and the caller consumes *frame_end bytes. With *complete ==
/// false, more bytes are needed (fewer than a length prefix, or fewer than
/// the declared payload). A zero or oversized length prefix returns
/// InvalidArgument: the stream cannot be resynchronized and the connection
/// must close after an error reply.
Status ExtractFrame(const uint8_t* data, size_t size, size_t* frame_end,
                    bool* complete);

/// Decodes one request payload (the bytes after the length prefix).
/// Rejects unknown types, truncated bodies, token counts that exceed the
/// payload, out-of-order (descending) tokens, batch counts above
/// kMaxBatchQueries, k above kMaxKnnK, non-finite delta, and trailing
/// bytes.
Result<Request> DecodeRequest(const uint8_t* payload, size_t size);

/// Decodes one response payload; `type` is the request type this reply
/// answers (selects the OK-body shape).
Result<Response> DecodeResponse(const uint8_t* payload, size_t size,
                                MsgType type);

}  // namespace serve
}  // namespace les3

#endif  // LES3_SERVE_WIRE_H_
