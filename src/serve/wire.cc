#include "serve/wire.h"

#include <cmath>

#include "util/logging.h"

namespace les3 {
namespace serve {

namespace {

// Longest error message a response may carry. Generous; the bound exists
// so a corrupt length field cannot demand an attacker-sized allocation.
constexpr size_t kMaxMessageBytes = 64 * 1024;

bool KnownType(uint8_t raw) {
  return raw >= static_cast<uint8_t>(MsgType::kPing) &&
         raw <= static_cast<uint8_t>(MsgType::kMaintainNow);
}

void EncodeSet(SetView set, persist::ByteWriter* out) {
  out->WriteU32(static_cast<uint32_t>(set.size()));
  for (TokenId t : set) out->WriteU32(t);
}

// Reads one set: u32 count then count sorted token ids. The count is
// checked against the bytes actually remaining before any allocation.
Result<SetRecord> DecodeSet(persist::ByteReader* in) {
  uint32_t count = 0;
  LES3_RETURN_NOT_OK(in->ReadU32(&count));
  if (static_cast<size_t>(count) * 4 > in->remaining()) {
    return Status::InvalidArgument("set token count " + std::to_string(count) +
                                   " exceeds the frame payload");
  }
  std::vector<TokenId> tokens(count);
  TokenId prev = 0;
  for (uint32_t i = 0; i < count; ++i) {
    LES3_RETURN_NOT_OK(in->ReadU32(&tokens[i]));
    if (i > 0 && tokens[i] < prev) {
      return Status::InvalidArgument(
          "set tokens must be sorted non-descending (token " +
          std::to_string(tokens[i]) + " after " + std::to_string(prev) + ")");
    }
    prev = tokens[i];
  }
  return SetRecord::FromSortedTokens(std::move(tokens));
}

void EncodeHits(const std::vector<Hit>& hits, persist::ByteWriter* out) {
  out->WriteU32(static_cast<uint32_t>(hits.size()));
  for (const auto& [id, sim] : hits) {
    out->WriteU32(id);
    out->WriteF64(sim);
  }
}

Result<std::vector<Hit>> DecodeHits(persist::ByteReader* in) {
  uint32_t count = 0;
  LES3_RETURN_NOT_OK(in->ReadU32(&count));
  if (static_cast<size_t>(count) * 12 > in->remaining()) {
    return Status::InvalidArgument("hit count " + std::to_string(count) +
                                   " exceeds the frame payload");
  }
  std::vector<Hit> hits;
  hits.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id = 0;
    double sim = 0.0;
    LES3_RETURN_NOT_OK(in->ReadU32(&id));
    LES3_RETURN_NOT_OK(in->ReadF64(&sim));
    hits.emplace_back(id, sim);
  }
  return hits;
}

// Reads a query count for a batch body, bounded both by the protocol cap
// and by what could possibly fit in the remaining bytes (each query is at
// least a u32 token count).
Result<uint32_t> DecodeBatchCount(persist::ByteReader* in) {
  uint32_t n = 0;
  LES3_RETURN_NOT_OK(in->ReadU32(&n));
  if (n > kMaxBatchQueries) {
    return Status::InvalidArgument("batch query count " + std::to_string(n) +
                                   " exceeds the cap of " +
                                   std::to_string(kMaxBatchQueries));
  }
  if (static_cast<size_t>(n) * 4 > in->remaining()) {
    return Status::InvalidArgument("batch query count " + std::to_string(n) +
                                   " exceeds the frame payload");
  }
  return n;
}

std::string OversizeMessage(const Response& response) {
  size_t hits = 0;
  for (const auto& list : response.results) hits += list.size();
  return "result of " + std::to_string(hits) +
         " hits would exceed the frame cap of " +
         std::to_string(kMaxFrameBytes) +
         " bytes; lower k, narrow delta, or split the batch";
}

// Wraps a payload written after a 4-byte placeholder into a frame by
// patching the length prefix.
class FramePatcher {
 public:
  explicit FramePatcher(persist::ByteWriter* out) : out_(out) {
    prefix_pos_ = out->size();
    out->WriteU32(0);
  }
  ~FramePatcher() {
    size_t payload = out_->size() - prefix_pos_ - 4;
    LES3_CHECK_LE(payload, kMaxFrameBytes);
    out_->PatchU32(prefix_pos_, static_cast<uint32_t>(payload));
  }

 private:
  persist::ByteWriter* out_;
  size_t prefix_pos_;
};

}  // namespace

WireStatus WireStatusFromCode(StatusCode code) {
  // The two enums are value-for-value identical by construction.
  return static_cast<WireStatus>(static_cast<uint8_t>(code));
}

StatusCode CodeFromWireStatus(WireStatus status) {
  return static_cast<StatusCode>(static_cast<uint8_t>(status));
}

const char* ToString(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "Ok";
    case WireStatus::kInvalidArgument: return "InvalidArgument";
    case WireStatus::kNotFound: return "NotFound";
    case WireStatus::kAlreadyExists: return "AlreadyExists";
    case WireStatus::kOutOfRange: return "OutOfRange";
    case WireStatus::kIOError: return "IOError";
    case WireStatus::kNotSupported: return "NotSupported";
    case WireStatus::kInternal: return "Internal";
    case WireStatus::kDeadlineExceeded: return "DeadlineExceeded";
    case WireStatus::kOverloaded: return "Overloaded";
  }
  return "Unknown";
}

void EncodeRequest(const Request& request, persist::ByteWriter* out) {
  FramePatcher frame(out);
  out->WriteU32(request.seq);
  out->WriteU8(static_cast<uint8_t>(request.type));
  out->WriteU32(request.deadline_ms);
  switch (request.type) {
    case MsgType::kPing:
    case MsgType::kDescribe:
      break;
    case MsgType::kKnn:
      LES3_CHECK_EQ(request.queries.size(), 1u);
      out->WriteU32(request.k);
      EncodeSet(request.queries[0], out);
      break;
    case MsgType::kRange:
      LES3_CHECK_EQ(request.queries.size(), 1u);
      out->WriteF64(request.delta);
      EncodeSet(request.queries[0], out);
      break;
    case MsgType::kKnnBatch:
      out->WriteU32(request.k);
      out->WriteU32(static_cast<uint32_t>(request.queries.size()));
      for (const auto& q : request.queries) EncodeSet(q, out);
      break;
    case MsgType::kRangeBatch:
      out->WriteF64(request.delta);
      out->WriteU32(static_cast<uint32_t>(request.queries.size()));
      for (const auto& q : request.queries) EncodeSet(q, out);
      break;
    case MsgType::kInsert:
      LES3_CHECK_EQ(request.queries.size(), 1u);
      EncodeSet(request.queries[0], out);
      break;
    case MsgType::kDelete:
      out->WriteU32(request.target_id);
      break;
    case MsgType::kUpdate:
      LES3_CHECK_EQ(request.queries.size(), 1u);
      out->WriteU32(request.target_id);
      EncodeSet(request.queries[0], out);
      break;
    case MsgType::kMaintainNow:
      break;  // admin verb, empty body
  }
}

size_t EncodedOkPayloadSize(const Response& response, MsgType type) {
  size_t size = 5;  // u32 seq + u8 status
  switch (type) {
    case MsgType::kPing:
      break;
    case MsgType::kDescribe:
      size += 4 + response.describe.size();
      break;
    case MsgType::kKnn:
    case MsgType::kRange:
      size += 4;
      if (!response.results.empty()) size += response.results[0].size() * 12;
      break;
    case MsgType::kKnnBatch:
    case MsgType::kRangeBatch:
      size += 4;
      for (const auto& hits : response.results) size += 4 + hits.size() * 12;
      break;
    case MsgType::kInsert:
      size += 4;
      break;
    case MsgType::kDelete:
    case MsgType::kUpdate:
      break;  // an OK mutation reply is just seq + status
    case MsgType::kMaintainNow:
      size += 24;  // three u64 ops counters
      break;
  }
  return size;
}

void ClampOversizedResponse(Response* response, MsgType type) {
  if (response->status != WireStatus::kOk) return;
  if (EncodedOkPayloadSize(*response, type) <= kMaxFrameBytes) return;
  Response clamped;
  clamped.seq = response->seq;
  clamped.status = WireStatus::kOutOfRange;
  clamped.message = OversizeMessage(*response);
  *response = std::move(clamped);
}

void EncodeResponse(const Response& response, MsgType type,
                    persist::ByteWriter* out) {
  if (response.status == WireStatus::kOk &&
      EncodedOkPayloadSize(response, type) > kMaxFrameBytes) {
    EncodeErrorResponse(response.seq, WireStatus::kOutOfRange,
                        OversizeMessage(response), out);
    return;
  }
  FramePatcher frame(out);
  out->WriteU32(response.seq);
  out->WriteU8(static_cast<uint8_t>(response.status));
  if (response.status != WireStatus::kOk) {
    out->WriteString(response.message);
    return;
  }
  switch (type) {
    case MsgType::kPing:
      break;
    case MsgType::kDescribe:
      out->WriteString(response.describe);
      break;
    case MsgType::kKnn:
    case MsgType::kRange:
      LES3_CHECK_EQ(response.results.size(), 1u);
      EncodeHits(response.results[0], out);
      break;
    case MsgType::kKnnBatch:
    case MsgType::kRangeBatch:
      out->WriteU32(static_cast<uint32_t>(response.results.size()));
      for (const auto& hits : response.results) EncodeHits(hits, out);
      break;
    case MsgType::kInsert:
      out->WriteU32(response.inserted_id);
      break;
    case MsgType::kDelete:
    case MsgType::kUpdate:
      break;
    case MsgType::kMaintainNow:
      out->WriteU64(response.maintenance_splits);
      out->WriteU64(response.maintenance_recomputes);
      out->WriteU64(response.maintenance_bits_dropped);
      break;
  }
}

void EncodeErrorResponse(uint32_t seq, WireStatus status,
                         const std::string& message,
                         persist::ByteWriter* out) {
  LES3_CHECK(status != WireStatus::kOk);
  Response response;
  response.seq = seq;
  response.status = status;
  response.message = message;
  // The type is irrelevant for a non-OK body; kPing keeps the encoder
  // honest about not reading result fields.
  EncodeResponse(response, MsgType::kPing, out);
}

Status ExtractFrame(const uint8_t* data, size_t size, size_t* frame_end,
                    bool* complete) {
  *complete = false;
  *frame_end = 0;
  if (size < 4) return Status::OK();  // need the length prefix
  persist::ByteReader prefix(data, size);
  uint32_t payload_len = 0;
  LES3_RETURN_NOT_OK(prefix.ReadU32(&payload_len));
  if (payload_len == 0) {
    return Status::InvalidArgument("zero-length frame");
  }
  if (payload_len > kMaxFrameBytes) {
    return Status::InvalidArgument(
        "frame length " + std::to_string(payload_len) +
        " exceeds the cap of " + std::to_string(kMaxFrameBytes));
  }
  if (size < 4 + static_cast<size_t>(payload_len)) return Status::OK();
  *frame_end = 4 + payload_len;
  *complete = true;
  return Status::OK();
}

Result<Request> DecodeRequest(const uint8_t* payload, size_t size) {
  persist::ByteReader in(payload, size);
  Request request;
  LES3_RETURN_NOT_OK(in.ReadU32(&request.seq));
  uint8_t raw_type = 0;
  LES3_RETURN_NOT_OK(in.ReadU8(&raw_type));
  if (!KnownType(raw_type)) {
    return Status::InvalidArgument("unknown request type " +
                                   std::to_string(raw_type));
  }
  request.type = static_cast<MsgType>(raw_type);
  LES3_RETURN_NOT_OK(in.ReadU32(&request.deadline_ms));

  switch (request.type) {
    case MsgType::kPing:
    case MsgType::kDescribe:
      break;
    case MsgType::kKnn: {
      LES3_RETURN_NOT_OK(in.ReadU32(&request.k));
      if (request.k > kMaxKnnK) {
        return Status::InvalidArgument("k " + std::to_string(request.k) +
                                       " exceeds the cap of " +
                                       std::to_string(kMaxKnnK));
      }
      auto set = DecodeSet(&in);
      if (!set.ok()) return set.status();
      request.queries.push_back(std::move(set).ValueOrDie());
      break;
    }
    case MsgType::kRange: {
      LES3_RETURN_NOT_OK(in.ReadF64(&request.delta));
      if (!std::isfinite(request.delta)) {
        return Status::InvalidArgument("range delta must be finite");
      }
      auto set = DecodeSet(&in);
      if (!set.ok()) return set.status();
      request.queries.push_back(std::move(set).ValueOrDie());
      break;
    }
    case MsgType::kKnnBatch: {
      LES3_RETURN_NOT_OK(in.ReadU32(&request.k));
      if (request.k > kMaxKnnK) {
        return Status::InvalidArgument("k " + std::to_string(request.k) +
                                       " exceeds the cap of " +
                                       std::to_string(kMaxKnnK));
      }
      auto n = DecodeBatchCount(&in);
      if (!n.ok()) return n.status();
      request.queries.reserve(n.value());
      for (uint32_t i = 0; i < n.value(); ++i) {
        auto set = DecodeSet(&in);
        if (!set.ok()) return set.status();
        request.queries.push_back(std::move(set).ValueOrDie());
      }
      break;
    }
    case MsgType::kRangeBatch: {
      LES3_RETURN_NOT_OK(in.ReadF64(&request.delta));
      if (!std::isfinite(request.delta)) {
        return Status::InvalidArgument("range delta must be finite");
      }
      auto n = DecodeBatchCount(&in);
      if (!n.ok()) return n.status();
      request.queries.reserve(n.value());
      for (uint32_t i = 0; i < n.value(); ++i) {
        auto set = DecodeSet(&in);
        if (!set.ok()) return set.status();
        request.queries.push_back(std::move(set).ValueOrDie());
      }
      break;
    }
    case MsgType::kInsert: {
      auto set = DecodeSet(&in);
      if (!set.ok()) return set.status();
      request.queries.push_back(std::move(set).ValueOrDie());
      break;
    }
    case MsgType::kDelete:
      LES3_RETURN_NOT_OK(in.ReadU32(&request.target_id));
      break;
    case MsgType::kUpdate: {
      LES3_RETURN_NOT_OK(in.ReadU32(&request.target_id));
      auto set = DecodeSet(&in);
      if (!set.ok()) return set.status();
      request.queries.push_back(std::move(set).ValueOrDie());
      break;
    }
    case MsgType::kMaintainNow:
      break;
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument(
        std::to_string(in.remaining()) + " trailing bytes after the request");
  }
  return request;
}

Result<Response> DecodeResponse(const uint8_t* payload, size_t size,
                                MsgType type) {
  persist::ByteReader in(payload, size);
  Response response;
  LES3_RETURN_NOT_OK(in.ReadU32(&response.seq));
  uint8_t raw_status = 0;
  LES3_RETURN_NOT_OK(in.ReadU8(&raw_status));
  if (raw_status > static_cast<uint8_t>(WireStatus::kOverloaded)) {
    return Status::InvalidArgument("unknown response status " +
                                   std::to_string(raw_status));
  }
  response.status = static_cast<WireStatus>(raw_status);
  if (response.status != WireStatus::kOk) {
    LES3_RETURN_NOT_OK(in.ReadString(&response.message, kMaxMessageBytes));
    if (!in.AtEnd()) {
      return Status::InvalidArgument("trailing bytes after the error reply");
    }
    return response;
  }
  switch (type) {
    case MsgType::kPing:
      break;
    case MsgType::kDescribe:
      LES3_RETURN_NOT_OK(in.ReadString(&response.describe, kMaxMessageBytes));
      break;
    case MsgType::kKnn:
    case MsgType::kRange: {
      auto hits = DecodeHits(&in);
      if (!hits.ok()) return hits.status();
      response.results.push_back(std::move(hits).ValueOrDie());
      break;
    }
    case MsgType::kKnnBatch:
    case MsgType::kRangeBatch: {
      uint32_t n = 0;
      LES3_RETURN_NOT_OK(in.ReadU32(&n));
      if (static_cast<size_t>(n) * 4 > in.remaining()) {
        return Status::InvalidArgument("batch result count " +
                                       std::to_string(n) +
                                       " exceeds the frame payload");
      }
      response.results.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        auto hits = DecodeHits(&in);
        if (!hits.ok()) return hits.status();
        response.results.push_back(std::move(hits).ValueOrDie());
      }
      break;
    }
    case MsgType::kInsert:
      LES3_RETURN_NOT_OK(in.ReadU32(&response.inserted_id));
      break;
    case MsgType::kDelete:
    case MsgType::kUpdate:
      break;
    case MsgType::kMaintainNow:
      LES3_RETURN_NOT_OK(in.ReadU64(&response.maintenance_splits));
      LES3_RETURN_NOT_OK(in.ReadU64(&response.maintenance_recomputes));
      LES3_RETURN_NOT_OK(in.ReadU64(&response.maintenance_bits_dropped));
      break;
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument(
        std::to_string(in.remaining()) + " trailing bytes after the response");
  }
  return response;
}

}  // namespace serve
}  // namespace les3
