// ResultCache — a sharded LRU cache of Knn/Range hit lists that preserves
// the engine's exactness guarantee under concurrent mutations
// (Insert/Delete/Update).
//
// Keys pack (query type, parameter bits, query tokens) into one byte
// string; values are immutable shared hit lists, so a hit is served with
// zero copies while an eviction never invalidates a reply in flight.
//
// Exactness argument (the part that matters): the cache carries a global
// epoch counter. Every completed mutation — Insert, Delete, or Update —
// bumps it; every cached entry
// records the epoch its query STARTED under, and a lookup only returns an
// entry whose recorded epoch equals the current one. Two races are worth
// spelling out:
//
//  - Insert completes (engine mutated, epoch bumped) before a lookup: the
//    entry's epoch is stale, the lookup misses, and the query recomputes
//    against the post-insert engine. No stale result is ever served.
//  - A query runs concurrently with an Insert (engine mutated, bump not
//    yet visible): the computed result is one the engine itself could have
//    returned for that concurrent interleaving, and it is only served
//    while the bump is still not visible — i.e. while the Insert is still
//    concurrent. The moment the bump lands, the entry dies. A result
//    computed BEFORE the insert can also be cached at the pre-bump epoch;
//    it too dies at the bump. Either way the cache never widens the set of
//    answers the bare engine could give.
//
// The same argument applies verbatim to Delete and Update: both bump the
// epoch after the engine mutation completes, so a hit list containing a
// tombstoned id dies the moment the delete's bump lands.
//
// The conservative direction (an entry invalidated although its result
// happens to still be correct) costs a recompute, never correctness. The
// differential loopback tests interleave mutations with cached queries and
// hold serve-with-cache byte-exact against an uncached engine.

#ifndef LES3_SERVE_RESULT_CACHE_H_
#define LES3_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/set_record.h"
#include "core/types.h"

namespace les3 {
namespace serve {

class ResultCache {
 public:
  struct Options {
    /// Total charged bytes across all shards; entries evict LRU per shard
    /// once a shard exceeds its capacity_bytes / num_shards slice.
    size_t capacity_bytes = 64u << 20;
    /// Lock-striping factor (rounded up to a power of two, min 1).
    size_t num_shards = 16;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;      // capacity pressure
    uint64_t invalidations = 0;  // epoch-stale entries dropped on lookup
  };

  using Value = std::shared_ptr<const std::vector<Hit>>;

  explicit ResultCache(const Options& options);

  /// Packs (type tag, param bits, tokens) into the cache key. k and delta
  /// are keyed on their exact bit patterns — no two distinct parameters
  /// ever share an entry.
  static std::string KnnKey(SetView query, size_t k);
  static std::string RangeKey(SetView query, double delta);

  /// The epoch to record a query under, read BEFORE running it.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Publishes an Insert: called AFTER the engine mutation completes.
  /// Every entry recorded under an earlier epoch is dead from here on.
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  /// Returns the cached hits, or nullptr on miss. An entry whose epoch is
  /// stale counts as a miss (and is dropped eagerly).
  Value Get(const std::string& key);

  /// Inserts `hits` recorded under `epoch` (from epoch(), read before the
  /// query ran). A no-op if the epoch has already moved on — the result
  /// may be stale and there is no point storing a dead entry.
  void Put(const std::string& key, Value hits, uint64_t epoch);

  /// Aggregated over all shards; each counter is individually consistent.
  Stats stats() const;

  size_t capacity_bytes() const { return capacity_bytes_; }

  /// Charged bytes currently held (sum over shards).
  size_t charged_bytes() const;

 private:
  struct Entry {
    std::string key;
    Value hits;
    uint64_t epoch = 0;
    size_t charge = 0;
  };
  // LRU list per shard: front = most recent. The map points into the list.
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;
    std::unordered_map<std::string, std::list<Entry>::iterator> index;
    size_t charged = 0;
    Stats stats;
  };

  Shard& ShardFor(const std::string& key);
  static size_t ChargeOf(const std::string& key, const Value& hits);

  size_t capacity_bytes_;
  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace serve
}  // namespace les3

#endif  // LES3_SERVE_RESULT_CACHE_H_
