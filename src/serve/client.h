// Client — a small blocking TCP client for the les3_serve wire protocol.
//
// One request outstanding at a time (Call assigns sequence numbers and
// verifies the echo); les3_loadgen opens one Client per load thread. All
// transport failures surface as IOError; typed server rejections
// (including kDeadlineExceeded / kOverloaded) come back as the matching
// les3::Status code via Status::FromCode, so callers branch on code()
// exactly as they would on a local engine's Status.

#ifndef LES3_SERVE_CLIENT_H_
#define LES3_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/set_record.h"
#include "core/types.h"
#include "search/maintenance.h"
#include "serve/wire.h"
#include "util/status.h"

namespace les3 {
namespace serve {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port. `timeout_ms` bounds every subsequent send and
  /// receive (0 = block indefinitely); a timeout surfaces as IOError.
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                uint32_t timeout_ms = 0);

  bool connected() const { return fd_ >= 0; }
  void Close();

  Status Ping(uint32_t deadline_ms = 0);
  Result<std::string> Describe();
  Result<std::vector<Hit>> Knn(SetView query, size_t k,
                               uint32_t deadline_ms = 0);
  Result<std::vector<Hit>> Range(SetView query, double delta,
                                 uint32_t deadline_ms = 0);
  Result<std::vector<std::vector<Hit>>> KnnBatch(
      const std::vector<SetRecord>& queries, size_t k,
      uint32_t deadline_ms = 0);
  Result<std::vector<std::vector<Hit>>> RangeBatch(
      const std::vector<SetRecord>& queries, double delta,
      uint32_t deadline_ms = 0);
  Result<SetId> Insert(const SetRecord& set);
  /// Tombstones set `id` on the server (NotFound if absent or already
  /// deleted).
  Status Delete(SetId id);
  /// Replaces set `id`'s content, keeping the id.
  Status Update(SetId id, const SetRecord& set);
  /// Runs one synchronous maintenance cycle on the server's engine and
  /// returns its ops counters (kMaintainNow admin verb).
  Result<search::MaintenanceReport> MaintainNow();

  /// Low-level round trip: sends `request` (seq assigned here) and blocks
  /// for its reply. OK means a well-formed reply arrived — inspect
  /// response->status for the server's verdict. IOError on any transport
  /// or codec failure (the connection is closed; reconnect to continue).
  Status Call(const Request& request, Response* response);

  /// Pipelined round trip: sends every request back to back in ONE write
  /// (seqs assigned here), then blocks until all replies arrive.
  /// (*responses)[i] answers requests[i] — replies are matched by seq, so
  /// the server completing them out of order (executor pool, coalescing)
  /// is fine. IOError closes the connection, as with Call.
  Status CallPipelined(const std::vector<Request>& requests,
                       std::vector<Response>* responses);

 private:
  Status SendAll(const uint8_t* data, size_t size);
  Status RecvFrame(std::vector<uint8_t>* payload);

  int fd_ = -1;
  uint32_t next_seq_ = 1;
  std::vector<uint8_t> in_;  // bytes read past the previous frame
};

/// Folds a server reply into a Status: OK for kOk, otherwise the matching
/// StatusCode via Status::FromCode with the server's message.
Status StatusFromResponse(const Response& response);

}  // namespace serve
}  // namespace les3

#endif  // LES3_SERVE_CLIENT_H_
