// Server — the les3_serve network front-end: an edge-triggered epoll event
// loop serving the wire protocol of serve/wire.h over TCP, on top of any
// api::SearchEngine (ShardedEngine in production).
//
// Architecture (docs/serving.md):
//
//   acceptor thread ── accept, round-robin ──► io workers (1 epoll each)
//   io worker: reads frames, decodes, ADMISSION CONTROL, writes replies
//   bounded pending queue ──► executor threads: DEADLINE CHECK, engine
//   query (through the result cache), reply appended to the connection
//   and the owning io worker woken via eventfd
//
//  - Connection-per-worker: every connection is owned by exactly one io
//    worker; only that worker reads or writes its socket, so no two
//    threads ever race on one fd. Executors hand replies back through the
//    connection's locked output buffer + an eventfd wake.
//  - Admission control: decoded requests enter a bounded pending queue;
//    when it is full (or the server is draining) the io worker replies
//    kOverloaded immediately — a fast reject that costs no engine work.
//  - Flow control: a connection whose unsent-reply backlog reaches
//    max_conn_outbuf_bytes is not read again until the backlog flushes,
//    so a client that pipelines without reading cannot exhaust memory.
//    Replies too large for one frame become typed kOutOfRange errors
//    (ClampOversizedResponse), never an encoder abort. On peer FIN the
//    buffered requests are still answered and the replies flushed before
//    the close (burst + shutdown(SHUT_WR) is a legal client pattern).
//  - Deadline budgets: a request's deadline_ms counts from the moment its
//    frame was decoded. An executor that pops an already-expired request
//    replies kDeadlineExceeded instead of running the query, so a backlog
//    of doomed requests cannot occupy the workers. Batch requests
//    re-check the budget between queries.
//  - Result cache: Knn/Range answers are served from a sharded LRU
//    (serve/result_cache.h) whose global epoch is bumped after every
//    completed mutation (Insert/Delete/Update) — exactness is preserved,
//    never approximated.
//  - Engines without the concurrent-insert contract
//    (SearchEngine::SupportsConcurrentInsert() == false) are guarded by a
//    reader-writer lock here: queries share, mutations exclude.
//  - Graceful shutdown: Shutdown() (wired to SIGINT/SIGTERM by the
//    binary) stops accepting, fast-rejects requests decoded from then on,
//    drains everything already admitted, flushes every reply, then joins
//    all threads. Idempotent; the destructor calls it.

#ifndef LES3_SERVE_SERVER_H_
#define LES3_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/search_engine.h"
#include "serve/result_cache.h"
#include "serve/wire.h"
#include "util/status.h"

namespace les3 {
namespace serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned; Server::port() reports it

  /// Epoll loops; connections are assigned round-robin at accept.
  size_t io_workers = 2;

  /// Engine-executing threads; 0 = hardware concurrency.
  size_t executors = 0;

  /// Admission-control bound on the pending-request queue.
  size_t max_pending = 256;

  /// Per-connection cap on buffered-but-unsent reply bytes. A client that
  /// pipelines requests while never reading replies stops being read once
  /// its backlog reaches this (backpressure instead of unbounded memory);
  /// reading resumes when the backlog flushes. 0 = unlimited.
  size_t max_conn_outbuf_bytes = 64u << 20;

  /// Result-cache budget; 0 disables the cache entirely.
  size_t cache_bytes = 64u << 20;
  size_t cache_shards = 16;

  /// Executor coalescing window. An executor that pops a single-query
  /// kKnn/kRange request may drain up to batch_window-1 more COMPATIBLE
  /// pending requests (same type; equal k / bit-identical delta) from the
  /// queue and answer the whole group through ONE engine batch call — the
  /// batched column probe amortizes the TGM walk across the group.
  /// Replies stay per-request (each keeps its seq, deadline, cache entry,
  /// and counters) and are byte-identical to sequential execution. 1
  /// disables coalescing.
  size_t batch_window = 1;

  /// Test instrumentation. `before_execute` runs in the executor after a
  /// request is popped and BEFORE its deadline check — the deadline and
  /// overload tests use it to hold executors deterministically. Never set
  /// in production.
  std::function<void(const Request&)> before_execute;
};

class Server {
 public:
  /// Monotonic counters, readable while serving.
  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t requests_ok = 0;
    uint64_t requests_error = 0;      // typed non-OK replies (engine/codec)
    uint64_t overloaded = 0;          // admission fast-rejects
    uint64_t deadline_exceeded = 0;
    uint64_t protocol_errors = 0;     // unrecoverable framing violations
  };

  /// The engine must outlive the server (shared_ptr enforces it). Whether
  /// Insert handling locks out queries follows
  /// engine->SupportsConcurrentInsert().
  Server(std::shared_ptr<api::SearchEngine> engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the acceptor + io workers + executors.
  /// IOError on bind/listen failure. Call at most once.
  Status Start();

  /// The bound port (after Start); useful with options.port == 0.
  uint16_t port() const { return port_; }

  /// The options after defaulting (e.g. executors == 0 resolved to the
  /// hardware concurrency in the constructor).
  const ServerOptions& options() const { return options_; }

  /// Graceful shutdown (see file comment). Blocks until every admitted
  /// request is answered and all threads are joined. Idempotent and safe
  /// to call from any thread (the binary calls it from its signal-wait
  /// thread).
  void Shutdown();

  /// Null when options.cache_bytes == 0.
  const ResultCache* cache() const { return cache_.get(); }

  Counters counters() const;

 private:
  struct Connection;
  struct IoWorker;

  /// One admitted request awaiting an executor.
  struct Work {
    std::shared_ptr<Connection> conn;
    Request request;
    std::chrono::steady_clock::time_point arrival;
  };

  void AcceptorLoop();
  void IoLoop(IoWorker* worker);
  void ExecutorLoop();

  void RegisterPending(IoWorker* worker);
  void ReadConnection(IoWorker* worker, const std::shared_ptr<Connection>& conn);
  void ProcessInput(IoWorker* worker, const std::shared_ptr<Connection>& conn);
  void FlushConnection(IoWorker* worker, const std::shared_ptr<Connection>& conn);
  void CloseConnection(IoWorker* worker, const std::shared_ptr<Connection>& conn);

  /// Appends an encoded reply to the connection and wakes its owner.
  void SubmitReply(const std::shared_ptr<Connection>& conn,
                   const persist::ByteWriter& frame);
  void SubmitError(const std::shared_ptr<Connection>& conn, uint32_t seq,
                   WireStatus status, const std::string& message);

  /// False when the queue is full or the server is draining.
  bool TryEnqueue(Work work);

  void Execute(const Work& work);
  /// Answers a coalesced group of compatible kKnn/kRange requests through
  /// one engine batch call (see ServerOptions::batch_window). Each
  /// member's deadline, cache entry, counters, and reply are handled
  /// individually, exactly as Execute would.
  void ExecuteBatch(std::vector<Work>* group);
  Response HandleRequest(const Request& request,
                         std::chrono::steady_clock::time_point arrival);
  /// Answers a kKnnBatch/kRangeBatch body: cache hits peel off per query,
  /// the misses run as ONE engine KnnBatch/RangeBatch, each miss's answer
  /// is cached. Deadline expiry turns the whole response into
  /// kDeadlineExceeded, as the sequential loop did.
  void HandleWireBatch(const Request& request,
                       std::chrono::steady_clock::time_point arrival,
                       Response* response);
  /// One Knn/Range through the cache; `hits` receives a shared list.
  std::vector<Hit> CachedKnn(SetView query, size_t k);
  std::vector<Hit> CachedRange(SetView query, double delta);

  std::shared_ptr<api::SearchEngine> engine_;
  ServerOptions options_;
  std::unique_ptr<ResultCache> cache_;
  bool engine_concurrent_insert_ = false;
  /// Guards the engine when it lacks the concurrent-insert contract:
  /// queries take shared, Insert takes exclusive. Unused otherwise.
  mutable std::shared_mutex engine_mu_;

  int listen_fd_ = -1;
  int acceptor_wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread acceptor_;
  std::vector<std::unique_ptr<IoWorker>> workers_;
  std::vector<std::thread> executors_;
  std::atomic<size_t> next_worker_{0};

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;   // executors wait here
  std::condition_variable drain_cv_;   // Shutdown waits here
  std::deque<Work> queue_;
  size_t active_requests_ = 0;  // popped but not yet replied (under queue_mu_)
  bool executors_stop_ = false;

  std::atomic<bool> draining_{false};
  std::atomic<bool> io_stop_{false};
  std::mutex lifecycle_mu_;
  bool started_ = false;
  bool shutdown_done_ = false;

  mutable std::mutex counters_mu_;
  Counters counters_;
};

}  // namespace serve
}  // namespace les3

#endif  // LES3_SERVE_SERVER_H_
