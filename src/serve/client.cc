#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace les3 {
namespace serve {

namespace {

constexpr size_t kReadChunk = 16 * 1024;

}  // namespace

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), next_seq_(other.next_seq_), in_(std::move(other.in_)) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    next_seq_ = other.next_seq_;
    in_ = std::move(other.in_);
    other.fd_ = -1;
  }
  return *this;
}

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               uint32_t timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError("connect " + host + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    close(fd);
    return st;
  }
  int enable = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  if (timeout_ms > 0) {
    timeval tv;
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
  Client client;
  client.fd_ = fd;
  return client;
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  in_.clear();
}

Status Client::SendAll(const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError(std::string("send: ") + std::strerror(errno));
  }
  return Status::OK();
}

Status Client::RecvFrame(std::vector<uint8_t>* payload) {
  for (;;) {
    size_t frame_end = 0;
    bool complete = false;
    LES3_RETURN_NOT_OK(
        ExtractFrame(in_.data(), in_.size(), &frame_end, &complete));
    if (complete) {
      payload->assign(in_.begin() + 4,
                      in_.begin() + static_cast<ptrdiff_t>(frame_end));
      in_.erase(in_.begin(), in_.begin() + static_cast<ptrdiff_t>(frame_end));
      return Status::OK();
    }
    uint8_t buf[kReadChunk];
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      in_.insert(in_.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      return Status::IOError("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("receive timeout");
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
}

Status Client::Call(const Request& request, Response* response) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  Request to_send = request;
  to_send.seq = next_seq_++;
  persist::ByteWriter frame;
  EncodeRequest(to_send, &frame);
  Status st = SendAll(frame.data().data(), frame.size());
  if (!st.ok()) {
    Close();
    return st;
  }
  std::vector<uint8_t> payload;
  st = RecvFrame(&payload);
  if (!st.ok()) {
    Close();
    return st;
  }
  auto decoded = DecodeResponse(payload.data(), payload.size(), to_send.type);
  if (!decoded.ok()) {
    Close();
    return Status::IOError("malformed server reply: " +
                           decoded.status().message());
  }
  if (decoded.value().seq != to_send.seq) {
    Close();
    return Status::IOError(
        "response sequence mismatch: sent " + std::to_string(to_send.seq) +
        ", got " + std::to_string(decoded.value().seq));
  }
  *response = std::move(decoded).ValueOrDie();
  return Status::OK();
}

Status Client::CallPipelined(const std::vector<Request>& requests,
                             std::vector<Response>* responses) {
  if (fd_ < 0) return Status::IOError("client is not connected");
  responses->assign(requests.size(), Response{});
  if (requests.empty()) return Status::OK();
  persist::ByteWriter frames;
  std::unordered_map<uint32_t, size_t> by_seq;
  std::vector<MsgType> types(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    Request to_send = requests[i];
    to_send.seq = next_seq_++;
    by_seq.emplace(to_send.seq, i);
    types[i] = to_send.type;
    EncodeRequest(to_send, &frames);
  }
  Status st = SendAll(frames.data().data(), frames.size());
  if (!st.ok()) {
    Close();
    return st;
  }
  std::vector<uint8_t> payload;
  for (size_t remaining = requests.size(); remaining > 0; --remaining) {
    st = RecvFrame(&payload);
    if (!st.ok()) {
      Close();
      return st;
    }
    if (payload.size() < 4) {
      Close();
      return Status::IOError("malformed server reply: truncated header");
    }
    uint32_t seq = static_cast<uint32_t>(payload[0]) |
                   (static_cast<uint32_t>(payload[1]) << 8) |
                   (static_cast<uint32_t>(payload[2]) << 16) |
                   (static_cast<uint32_t>(payload[3]) << 24);
    auto it = by_seq.find(seq);
    if (it == by_seq.end()) {
      Close();
      return Status::IOError("response sequence " + std::to_string(seq) +
                             " matches no outstanding request");
    }
    size_t index = it->second;
    by_seq.erase(it);
    auto decoded = DecodeResponse(payload.data(), payload.size(), types[index]);
    if (!decoded.ok()) {
      Close();
      return Status::IOError("malformed server reply: " +
                             decoded.status().message());
    }
    (*responses)[index] = std::move(decoded).ValueOrDie();
  }
  return Status::OK();
}

Status StatusFromResponse(const Response& response) {
  if (response.status == WireStatus::kOk) return Status::OK();
  return Status::FromCode(CodeFromWireStatus(response.status),
                          response.message);
}

Status Client::Ping(uint32_t deadline_ms) {
  Request request;
  request.type = MsgType::kPing;
  request.deadline_ms = deadline_ms;
  Response response;
  LES3_RETURN_NOT_OK(Call(request, &response));
  return StatusFromResponse(response);
}

Result<std::string> Client::Describe() {
  Request request;
  request.type = MsgType::kDescribe;
  Response response;
  LES3_RETURN_NOT_OK(Call(request, &response));
  LES3_RETURN_NOT_OK(StatusFromResponse(response));
  return std::move(response.describe);
}

Result<std::vector<Hit>> Client::Knn(SetView query, size_t k,
                                     uint32_t deadline_ms) {
  Request request;
  request.type = MsgType::kKnn;
  request.deadline_ms = deadline_ms;
  request.k = static_cast<uint32_t>(k);
  request.queries.emplace_back(query);
  Response response;
  LES3_RETURN_NOT_OK(Call(request, &response));
  LES3_RETURN_NOT_OK(StatusFromResponse(response));
  return std::move(response.results[0]);
}

Result<std::vector<Hit>> Client::Range(SetView query, double delta,
                                       uint32_t deadline_ms) {
  Request request;
  request.type = MsgType::kRange;
  request.deadline_ms = deadline_ms;
  request.delta = delta;
  request.queries.emplace_back(query);
  Response response;
  LES3_RETURN_NOT_OK(Call(request, &response));
  LES3_RETURN_NOT_OK(StatusFromResponse(response));
  return std::move(response.results[0]);
}

Result<std::vector<std::vector<Hit>>> Client::KnnBatch(
    const std::vector<SetRecord>& queries, size_t k, uint32_t deadline_ms) {
  Request request;
  request.type = MsgType::kKnnBatch;
  request.deadline_ms = deadline_ms;
  request.k = static_cast<uint32_t>(k);
  request.queries = queries;
  Response response;
  LES3_RETURN_NOT_OK(Call(request, &response));
  LES3_RETURN_NOT_OK(StatusFromResponse(response));
  return std::move(response.results);
}

Result<std::vector<std::vector<Hit>>> Client::RangeBatch(
    const std::vector<SetRecord>& queries, double delta,
    uint32_t deadline_ms) {
  Request request;
  request.type = MsgType::kRangeBatch;
  request.deadline_ms = deadline_ms;
  request.delta = delta;
  request.queries = queries;
  Response response;
  LES3_RETURN_NOT_OK(Call(request, &response));
  LES3_RETURN_NOT_OK(StatusFromResponse(response));
  return std::move(response.results);
}

Result<SetId> Client::Insert(const SetRecord& set) {
  Request request;
  request.type = MsgType::kInsert;
  request.queries.push_back(set);
  Response response;
  LES3_RETURN_NOT_OK(Call(request, &response));
  LES3_RETURN_NOT_OK(StatusFromResponse(response));
  return response.inserted_id;
}

Status Client::Delete(SetId id) {
  Request request;
  request.type = MsgType::kDelete;
  request.target_id = id;
  Response response;
  LES3_RETURN_NOT_OK(Call(request, &response));
  return StatusFromResponse(response);
}

Status Client::Update(SetId id, const SetRecord& set) {
  Request request;
  request.type = MsgType::kUpdate;
  request.target_id = id;
  request.queries.push_back(set);
  Response response;
  LES3_RETURN_NOT_OK(Call(request, &response));
  return StatusFromResponse(response);
}

Result<search::MaintenanceReport> Client::MaintainNow() {
  Request request;
  request.type = MsgType::kMaintainNow;
  Response response;
  LES3_RETURN_NOT_OK(Call(request, &response));
  LES3_RETURN_NOT_OK(StatusFromResponse(response));
  search::MaintenanceReport report;
  report.splits = static_cast<size_t>(response.maintenance_splits);
  report.recomputes = static_cast<size_t>(response.maintenance_recomputes);
  report.bits_dropped = static_cast<size_t>(response.maintenance_bits_dropped);
  return report;
}

}  // namespace serve
}  // namespace les3
