#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.h"

namespace les3 {
namespace serve {

namespace {

constexpr size_t kReadChunk = 16 * 1024;
constexpr int kMaxEpollEvents = 64;

// Decode accumulated input mid-read-burst once this many bytes pile up,
// so `in` stays bounded (~one max frame) and the output-backlog check
// sees the replies a long burst generates.
constexpr size_t kProcessBurstBytes = 256 * 1024;

// Best-effort time budget for flushing replies still buffered when the io
// workers stop (Shutdown has already drained every admitted request by
// then, so this only covers a slow reader's last bytes).
constexpr int kFinalFlushMs = 2000;

void DrainEventFd(int fd) {
  uint64_t value;
  while (read(fd, &value, sizeof(value)) > 0) {
  }
}

void SignalEventFd(int fd) {
  uint64_t one = 1;
  // The counter saturating (EAGAIN) still leaves the fd readable, which is
  // all a wake needs.
  [[maybe_unused]] ssize_t n = write(fd, &one, sizeof(one));
}

uint32_t PeekSeq(const uint8_t* payload, size_t size) {
  if (size < 4) return 0;
  return static_cast<uint32_t>(payload[0]) |
         (static_cast<uint32_t>(payload[1]) << 8) |
         (static_cast<uint32_t>(payload[2]) << 16) |
         (static_cast<uint32_t>(payload[3]) << 24);
}

}  // namespace

/// One accepted socket. Owned by exactly one io worker: only that worker
/// reads the socket, writes the socket, or touches `in`. Executors reach
/// the connection through the locked output buffer only.
struct Server::Connection {
  int fd = -1;
  size_t worker_index = 0;

  std::vector<uint8_t> in;  // unparsed request bytes (worker thread only)

  std::mutex out_mu;
  std::vector<uint8_t> out;  // encoded replies not yet written
  size_t out_pos = 0;
  bool close_after_flush = false;  // unrecoverable framing error

  std::atomic<bool> closed{false};
  /// Requests admitted for this connection and not yet replied; the
  /// close-after-flush path waits for it to reach zero so pipelined
  /// predecessors still get their replies.
  std::atomic<uint32_t> inflight{0};

  bool epollout_armed = false;  // worker thread only
  /// Reading stopped because the reply backlog hit the cap; cleared (and
  /// the socket re-read) by FlushConnection when the backlog drains.
  bool read_paused = false;  // worker thread only
};

struct Server::IoWorker {
  size_t index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;

  std::mutex adds_mu;
  std::vector<std::shared_ptr<Connection>> pending_adds;

  std::unordered_map<int, std::shared_ptr<Connection>> conns;
};

Server::Server(std::shared_ptr<api::SearchEngine> engine,
               ServerOptions options)
    : engine_(std::move(engine)), options_(std::move(options)) {
  LES3_CHECK(engine_ != nullptr);
  if (options_.io_workers == 0) options_.io_workers = 1;
  if (options_.executors == 0) {
    options_.executors = std::thread::hardware_concurrency();
    if (options_.executors == 0) options_.executors = 1;
  }
  if (options_.max_pending == 0) options_.max_pending = 1;
  if (options_.cache_bytes > 0) {
    ResultCache::Options cache_options;
    cache_options.capacity_bytes = options_.cache_bytes;
    cache_options.num_shards = options_.cache_shards;
    cache_ = std::make_unique<ResultCache>(cache_options);
  }
  engine_concurrent_insert_ = engine_->SupportsConcurrentInsert();
}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    LES3_CHECK(!started_);
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IOError("bind " + options_.host + ":" +
                                std::to_string(options_.port) + ": " +
                                std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (listen(listen_fd_, 128) < 0) {
    Status st = Status::IOError(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  // port_ is how port-0 callers learn the kernel-assigned port; reporting
  // garbage from an uninitialized sockaddr would send them connecting to
  // the wrong endpoint, so a failed lookup fails Start.
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) <
      0) {
    Status st =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  acceptor_wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  LES3_CHECK_GE(acceptor_wake_fd_, 0);

  workers_.reserve(options_.io_workers);
  for (size_t i = 0; i < options_.io_workers; ++i) {
    auto worker = std::make_unique<IoWorker>();
    worker->index = i;
    worker->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    LES3_CHECK_GE(worker->epoll_fd, 0);
    worker->wake_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    LES3_CHECK_GE(worker->wake_fd, 0);
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;  // level-triggered: the loop drains the counter
    ev.data.fd = worker->wake_fd;
    LES3_CHECK_EQ(
        epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->wake_fd, &ev), 0);
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    IoWorker* raw = worker.get();
    raw->thread = std::thread([this, raw] { IoLoop(raw); });
  }
  for (size_t i = 0; i < options_.executors; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
  acceptor_ = std::thread([this] { AcceptorLoop(); });

  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  started_ = true;
  return Status::OK();
}

void Server::Shutdown() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!started_ || shutdown_done_) return;

  // 1. Refuse new connections and fast-reject requests decoded from now
  //    on; everything already admitted will be answered.
  draining_.store(true, std::memory_order_release);
  SignalEventFd(acceptor_wake_fd_);
  acceptor_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  close(acceptor_wake_fd_);
  acceptor_wake_fd_ = -1;

  // 2. Drain: wait for the pending queue to empty and every popped
  //    request to finish, then stop the executors.
  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    drain_cv_.wait(lock, [this] {
      return queue_.empty() && active_requests_ == 0;
    });
    executors_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& t : executors_) t.join();
  executors_.clear();

  // 3. Stop the io workers; each flushes buffered replies best-effort and
  //    closes its connections on the way out.
  io_stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) SignalEventFd(worker->wake_fd);
  for (auto& worker : workers_) {
    worker->thread.join();
    close(worker->wake_fd);
    close(worker->epoll_fd);
  }
  workers_.clear();
  shutdown_done_ = true;
}

Server::Counters Server::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

void Server::AcceptorLoop() {
  for (;;) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {acceptor_wake_fd_, POLLIN, 0};
    int n = poll(fds, 2, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (draining_.load(std::memory_order_acquire)) return;
    if (!(fds[0].revents & POLLIN)) continue;
    for (;;) {
      int fd = accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        break;  // transient accept failure; retry on the next poll
      }
      int enable = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));

      auto conn = std::make_shared<Connection>();
      conn->fd = fd;
      size_t w = next_worker_.fetch_add(1, std::memory_order_relaxed) %
                 workers_.size();
      conn->worker_index = w;
      {
        std::lock_guard<std::mutex> lock(workers_[w]->adds_mu);
        workers_[w]->pending_adds.push_back(std::move(conn));
      }
      SignalEventFd(workers_[w]->wake_fd);
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.connections_accepted;
      }
    }
  }
}

void Server::RegisterPending(IoWorker* worker) {
  std::vector<std::shared_ptr<Connection>> adds;
  {
    std::lock_guard<std::mutex> lock(worker->adds_mu);
    adds.swap(worker->pending_adds);
  }
  for (auto& conn : adds) {
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.fd = conn->fd;
    if (epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
      close(conn->fd);
      continue;
    }
    worker->conns.emplace(conn->fd, std::move(conn));
  }
}

void Server::IoLoop(IoWorker* worker) {
  epoll_event events[kMaxEpollEvents];
  for (;;) {
    int n = epoll_wait(worker->epoll_fd, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool woke = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == worker->wake_fd) {
        DrainEventFd(worker->wake_fd);
        woke = true;
        continue;
      }
      auto it = worker->conns.find(events[i].data.fd);
      if (it == worker->conns.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(worker, conn);
        continue;
      }
      if (events[i].events & (EPOLLIN | EPOLLRDHUP)) {
        ReadConnection(worker, conn);
      }
      if (conn->closed.load(std::memory_order_acquire)) continue;
      if (events[i].events & EPOLLOUT) {
        FlushConnection(worker, conn);
      }
    }
    if (woke) {
      RegisterPending(worker);
      // Executor replies land in output buffers; flush whatever has
      // pending bytes (snapshot first — a flush may close + erase).
      std::vector<std::shared_ptr<Connection>> snapshot;
      snapshot.reserve(worker->conns.size());
      for (auto& [fd, conn] : worker->conns) snapshot.push_back(conn);
      for (auto& conn : snapshot) {
        bool pending;
        {
          std::lock_guard<std::mutex> lock(conn->out_mu);
          pending = conn->out_pos < conn->out.size() || conn->close_after_flush;
        }
        if (pending) FlushConnection(worker, conn);
      }
    }
    if (io_stop_.load(std::memory_order_acquire)) break;
  }

  // Final best-effort flush of buffered replies, then close everything.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(kFinalFlushMs);
  for (;;) {
    bool any_pending = false;
    std::vector<std::shared_ptr<Connection>> snapshot;
    for (auto& [fd, conn] : worker->conns) snapshot.push_back(conn);
    for (auto& conn : snapshot) {
      FlushConnection(worker, conn);
      if (conn->closed.load(std::memory_order_acquire)) continue;
      std::lock_guard<std::mutex> lock(conn->out_mu);
      if (conn->out_pos < conn->out.size()) any_pending = true;
    }
    if (!any_pending || std::chrono::steady_clock::now() >= deadline) break;
    pollfd idle = {-1, 0, 0};
    poll(&idle, 0, 20);  // brief pause; peers drain their sockets
  }
  std::vector<std::shared_ptr<Connection>> remaining;
  for (auto& [fd, conn] : worker->conns) remaining.push_back(conn);
  for (auto& conn : remaining) CloseConnection(worker, conn);
}

void Server::ReadConnection(IoWorker* worker,
                            const std::shared_ptr<Connection>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  uint8_t buf[kReadChunk];
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(conn->out_mu);
      // A stream declared unresynchronizable is never read or decoded
      // again: misaligned leftover bytes could decode as valid requests
      // (including mutating Inserts), and newly admitted work would
      // defer the pending close indefinitely.
      if (conn->close_after_flush) {
        conn->in.clear();
        return;
      }
      if (options_.max_conn_outbuf_bytes > 0 &&
          conn->out.size() - conn->out_pos >= options_.max_conn_outbuf_bytes) {
        conn->read_paused = true;
        return;
      }
    }
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.insert(conn->in.end(), buf, buf + n);
      if (conn->in.size() >= kProcessBurstBytes) ProcessInput(worker, conn);
      continue;
    }
    if (n == 0) {
      // Orderly peer FIN: the client is done sending but may still read
      // (burst + shutdown(SHUT_WR) is legal). Answer everything already
      // buffered and close through the flush/inflight gate so no reply
      // is discarded.
      ProcessInput(worker, conn);
      conn->in.clear();  // an incomplete trailing frame can never finish
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        conn->close_after_flush = true;
      }
      FlushConnection(worker, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(worker, conn);
    return;
  }
  ProcessInput(worker, conn);
}

void Server::ProcessInput(IoWorker* worker,
                          const std::shared_ptr<Connection>& conn) {
  (void)worker;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    if (conn->close_after_flush) {
      conn->in.clear();
      return;
    }
  }
  size_t consumed = 0;
  for (;;) {
    size_t frame_end = 0;
    bool complete = false;
    Status framing = ExtractFrame(conn->in.data() + consumed,
                                  conn->in.size() - consumed, &frame_end,
                                  &complete);
    if (!framing.ok()) {
      // The stream cannot be resynchronized: reply, flush, close. Replies
      // to requests already in flight still go out first (inflight gate).
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.protocol_errors;
      }
      SubmitError(conn, 0, WireStatus::kInvalidArgument, framing.message());
      {
        std::lock_guard<std::mutex> lock(conn->out_mu);
        conn->close_after_flush = true;
      }
      conn->in.clear();
      return;
    }
    if (!complete) break;
    const uint8_t* payload = conn->in.data() + consumed + 4;
    size_t payload_size = frame_end - 4;
    auto request = DecodeRequest(payload, payload_size);
    if (!request.ok()) {
      // Framing is intact, so the connection survives; the request gets a
      // typed error reply.
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.requests_error;
      }
      SubmitError(conn, PeekSeq(payload, payload_size),
                  WireStatusFromCode(request.status().code()),
                  request.status().message());
    } else {
      uint32_t seq = request.value().seq;
      Work work;
      work.conn = conn;
      work.request = std::move(request).ValueOrDie();
      work.arrival = std::chrono::steady_clock::now();
      conn->inflight.fetch_add(1, std::memory_order_acq_rel);
      if (!TryEnqueue(std::move(work))) {
        conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
        {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.overloaded;
        }
        SubmitError(conn, seq, WireStatus::kOverloaded,
                    draining_.load(std::memory_order_acquire)
                        ? "server is shutting down"
                        : "pending-request queue is full");
      }
    }
    consumed += frame_end;
  }
  if (consumed > 0) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<ptrdiff_t>(consumed));
  }
}

void Server::FlushConnection(IoWorker* worker,
                             const std::shared_ptr<Connection>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  bool close_now = false;
  bool resume_read = false;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    while (conn->out_pos < conn->out.size()) {
      ssize_t n = send(conn->fd, conn->out.data() + conn->out_pos,
                       conn->out.size() - conn->out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn->out_pos += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn->epollout_armed) {
          epoll_event ev;
          std::memset(&ev, 0, sizeof(ev));
          ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
          ev.data.fd = conn->fd;
          epoll_ctl(worker->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
          conn->epollout_armed = true;
        }
        return;
      }
      close_now = true;  // peer gone (EPIPE/ECONNRESET/...)
      break;
    }
    if (!close_now) {
      conn->out.clear();
      conn->out_pos = 0;
      if (conn->epollout_armed) {
        epoll_event ev;
        std::memset(&ev, 0, sizeof(ev));
        ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
        ev.data.fd = conn->fd;
        epoll_ctl(worker->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
        conn->epollout_armed = false;
      }
      if (conn->close_after_flush &&
          conn->inflight.load(std::memory_order_acquire) == 0) {
        close_now = true;
      } else if (conn->read_paused && !conn->close_after_flush) {
        conn->read_paused = false;
        resume_read = true;
      }
    }
  }
  if (close_now) {
    CloseConnection(worker, conn);
  } else if (resume_read) {
    // The paused socket produced no new epoll edges for bytes already in
    // the kernel buffer; pull them now that the backlog drained.
    ReadConnection(worker, conn);
  }
}

void Server::CloseConnection(IoWorker* worker,
                             const std::shared_ptr<Connection>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  epoll_ctl(worker->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  worker->conns.erase(conn->fd);
}

void Server::SubmitReply(const std::shared_ptr<Connection>& conn,
                         const persist::ByteWriter& frame) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(conn->out_mu);
    conn->out.insert(conn->out.end(), frame.data().begin(),
                     frame.data().end());
  }
}

void Server::SubmitError(const std::shared_ptr<Connection>& conn, uint32_t seq,
                         WireStatus status, const std::string& message) {
  persist::ByteWriter frame;
  EncodeErrorResponse(seq, status, message, &frame);
  SubmitReply(conn, frame);
  SignalEventFd(workers_[conn->worker_index]->wake_fd);
}

bool Server::TryEnqueue(Work work) {
  if (draining_.load(std::memory_order_acquire)) return false;
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (executors_stop_) return false;
  if (queue_.size() >= options_.max_pending) return false;
  queue_.push_back(std::move(work));
  queue_cv_.notify_one();
  return true;
}

void Server::ExecutorLoop() {
  for (;;) {
    std::vector<Work> group;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock,
                     [this] { return executors_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and nothing left
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Coalescing: drain further pending single-query requests that can
      // ride the same engine batch call (same type, equal k / bit-identical
      // delta). Skipping incompatible entries is legal — replies are
      // matched by seq, and the executor pool already completes requests
      // out of order.
      const Request& head = group.front().request;
      if (options_.batch_window > 1 &&
          (head.type == MsgType::kKnn || head.type == MsgType::kRange)) {
        for (auto it = queue_.begin();
             it != queue_.end() && group.size() < options_.batch_window;) {
          const Request& r = it->request;
          bool compatible =
              r.type == head.type &&
              (head.type == MsgType::kKnn
                   ? r.k == head.k
                   : std::memcmp(&r.delta, &head.delta, sizeof(double)) == 0);
          if (compatible) {
            group.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
      active_requests_ += group.size();
    }
    if (group.size() == 1) {
      Execute(group.front());
    } else {
      ExecuteBatch(&group);
    }
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      active_requests_ -= group.size();
      if (queue_.empty() && active_requests_ == 0) drain_cv_.notify_all();
    }
  }
}

void Server::Execute(const Work& work) {
  const Request& request = work.request;
  if (options_.before_execute) options_.before_execute(request);

  persist::ByteWriter frame;
  bool expired =
      request.deadline_ms > 0 &&
      std::chrono::steady_clock::now() - work.arrival >=
          std::chrono::milliseconds(request.deadline_ms);
  if (expired) {
    EncodeErrorResponse(request.seq, WireStatus::kDeadlineExceeded,
                        "deadline of " + std::to_string(request.deadline_ms) +
                            "ms expired before execution",
                        &frame);
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.deadline_exceeded;
  } else {
    Response response = HandleRequest(request, work.arrival);
    response.seq = request.seq;
    // A result too large for one frame becomes a typed kOutOfRange reply
    // here, so the counters below match what actually goes on the wire.
    ClampOversizedResponse(&response, request.type);
    EncodeResponse(response, request.type, &frame);
    std::lock_guard<std::mutex> lock(counters_mu_);
    if (response.status == WireStatus::kOk) {
      ++counters_.requests_ok;
    } else if (response.status == WireStatus::kDeadlineExceeded) {
      ++counters_.deadline_exceeded;
    } else {
      ++counters_.requests_error;
    }
  }
  // Order matters: reply bytes first, then the inflight decrement, then
  // the wake — so the flush that the wake triggers observes both and can
  // safely complete a pending close-after-flush.
  SubmitReply(work.conn, frame);
  work.conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
  SignalEventFd(workers_[work.conn->worker_index]->wake_fd);
}

void Server::ExecuteBatch(std::vector<Work>* group) {
  const size_t n = group->size();
  const Request& head = group->front().request;
  const bool is_knn = head.type == MsgType::kKnn;

  // Per-request prologue first, in queue order, so instrumentation and
  // doomed requests behave exactly as on the solo path.
  if (options_.before_execute) {
    for (const Work& work : *group) options_.before_execute(work.request);
  }

  auto reply = [this](const Work& work, const persist::ByteWriter& frame) {
    // Same ordering contract as Execute: bytes, inflight decrement, wake.
    SubmitReply(work.conn, frame);
    work.conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
    SignalEventFd(workers_[work.conn->worker_index]->wake_fd);
  };

  std::vector<uint8_t> done(n, 0);
  auto now = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    const Work& work = (*group)[i];
    const Request& request = work.request;
    if (request.deadline_ms > 0 &&
        now - work.arrival >= std::chrono::milliseconds(request.deadline_ms)) {
      persist::ByteWriter frame;
      EncodeErrorResponse(
          request.seq, WireStatus::kDeadlineExceeded,
          "deadline of " + std::to_string(request.deadline_ms) +
              "ms expired before execution",
          &frame);
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.deadline_exceeded;
      }
      reply(work, frame);
      done[i] = 1;
    }
  }

  // Cache phase: peel off the hits, collect the misses. The epoch is read
  // BEFORE the engine runs (same protocol as CachedKnn/CachedRange) so a
  // concurrent mutation invalidates what this batch writes back.
  std::vector<std::string> keys(n);
  std::vector<std::vector<Hit>> hits(n);
  std::vector<size_t> miss;
  for (size_t i = 0; i < n; ++i) {
    if (done[i]) continue;
    SetView query = (*group)[i].request.queries[0].view();
    if (cache_ != nullptr) {
      keys[i] = is_knn ? ResultCache::KnnKey(query, head.k)
                       : ResultCache::RangeKey(query, head.delta);
      if (auto cached = cache_->Get(keys[i])) {
        hits[i] = *cached;
        continue;
      }
    }
    miss.push_back(i);
  }
  if (!miss.empty()) {
    uint64_t epoch = cache_ != nullptr ? cache_->epoch() : 0;
    std::vector<SetRecord> queries;
    queries.reserve(miss.size());
    for (size_t i : miss) queries.push_back((*group)[i].request.queries[0]);
    std::vector<api::QueryResult> answers;
    if (engine_concurrent_insert_) {
      answers = is_knn ? engine_->KnnBatch(queries, head.k)
                       : engine_->RangeBatch(queries, head.delta);
    } else {
      std::shared_lock<std::shared_mutex> lock(engine_mu_);
      answers = is_knn ? engine_->KnnBatch(queries, head.k)
                       : engine_->RangeBatch(queries, head.delta);
    }
    for (size_t j = 0; j < miss.size(); ++j) {
      size_t i = miss[j];
      if (cache_ != nullptr) {
        cache_->Put(keys[i],
                    std::make_shared<const std::vector<Hit>>(answers[j].hits),
                    epoch);
      }
      hits[i] = std::move(answers[j].hits);
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (done[i]) continue;
    const Work& work = (*group)[i];
    Response response;
    response.seq = work.request.seq;
    response.status = WireStatus::kOk;
    response.results.push_back(std::move(hits[i]));
    ClampOversizedResponse(&response, work.request.type);
    persist::ByteWriter frame;
    EncodeResponse(response, work.request.type, &frame);
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      if (response.status == WireStatus::kOk) {
        ++counters_.requests_ok;
      } else {
        ++counters_.requests_error;
      }
    }
    reply(work, frame);
  }
}

std::vector<Hit> Server::CachedKnn(SetView query, size_t k) {
  if (cache_ != nullptr) {
    std::string key = ResultCache::KnnKey(query, k);
    if (auto cached = cache_->Get(key)) return *cached;
    uint64_t epoch = cache_->epoch();
    api::QueryResult result;
    if (engine_concurrent_insert_) {
      result = engine_->Knn(query, k);
    } else {
      std::shared_lock<std::shared_mutex> lock(engine_mu_);
      result = engine_->Knn(query, k);
    }
    cache_->Put(key,
                std::make_shared<const std::vector<Hit>>(result.hits), epoch);
    return std::move(result.hits);
  }
  if (engine_concurrent_insert_) return engine_->Knn(query, k).hits;
  std::shared_lock<std::shared_mutex> lock(engine_mu_);
  return engine_->Knn(query, k).hits;
}

std::vector<Hit> Server::CachedRange(SetView query, double delta) {
  if (cache_ != nullptr) {
    std::string key = ResultCache::RangeKey(query, delta);
    if (auto cached = cache_->Get(key)) return *cached;
    uint64_t epoch = cache_->epoch();
    api::QueryResult result;
    if (engine_concurrent_insert_) {
      result = engine_->Range(query, delta);
    } else {
      std::shared_lock<std::shared_mutex> lock(engine_mu_);
      result = engine_->Range(query, delta);
    }
    cache_->Put(key,
                std::make_shared<const std::vector<Hit>>(result.hits), epoch);
    return std::move(result.hits);
  }
  if (engine_concurrent_insert_) return engine_->Range(query, delta).hits;
  std::shared_lock<std::shared_mutex> lock(engine_mu_);
  return engine_->Range(query, delta).hits;
}

Response Server::HandleRequest(
    const Request& request, std::chrono::steady_clock::time_point arrival) {
  Response response;
  response.status = WireStatus::kOk;
  switch (request.type) {
    case MsgType::kPing:
      break;
    case MsgType::kDescribe: {
      ResultCache::Stats stats;
      if (cache_) stats = cache_->stats();
      std::string describe = engine_->Describe();
      describe += " | serve: io_workers=" +
                  std::to_string(options_.io_workers) +
                  " executors=" + std::to_string(options_.executors) +
                  " pending_cap=" + std::to_string(options_.max_pending);
      if (cache_) {
        describe += " cache=on bytes=" + std::to_string(options_.cache_bytes) +
                    " epoch=" + std::to_string(cache_->epoch()) +
                    " hits=" + std::to_string(stats.hits) +
                    " misses=" + std::to_string(stats.misses) +
                    " invalidations=" + std::to_string(stats.invalidations);
      } else {
        describe += " cache=off";
      }
      response.describe = std::move(describe);
      break;
    }
    case MsgType::kKnn:
      response.results.push_back(
          CachedKnn(request.queries[0].view(), request.k));
      break;
    case MsgType::kRange:
      response.results.push_back(
          CachedRange(request.queries[0].view(), request.delta));
      break;
    case MsgType::kKnnBatch:
    case MsgType::kRangeBatch:
      HandleWireBatch(request, arrival, &response);
      break;
    case MsgType::kInsert: {
      Result<SetId> inserted = [&]() -> Result<SetId> {
        if (engine_concurrent_insert_) {
          return engine_->Insert(request.queries[0]);
        }
        std::unique_lock<std::shared_mutex> lock(engine_mu_);
        return engine_->Insert(request.queries[0]);
      }();
      if (inserted.ok()) {
        // Bump AFTER the engine mutation: from here on, any entry cached
        // under an earlier epoch is unreachable (result_cache.h).
        if (cache_) cache_->BumpEpoch();
        response.inserted_id = inserted.value();
      } else {
        response.status = WireStatusFromCode(inserted.status().code());
        response.message = inserted.status().message();
      }
      break;
    }
    case MsgType::kDelete: {
      // Same locking and epoch protocol as kInsert: every mutation that
      // changes answers must make stale cache entries unreachable.
      Status deleted = [&]() -> Status {
        if (engine_concurrent_insert_) {
          return engine_->Delete(request.target_id);
        }
        std::unique_lock<std::shared_mutex> lock(engine_mu_);
        return engine_->Delete(request.target_id);
      }();
      if (deleted.ok()) {
        if (cache_) cache_->BumpEpoch();
      } else {
        response.status = WireStatusFromCode(deleted.code());
        response.message = deleted.message();
      }
      break;
    }
    case MsgType::kUpdate: {
      Status updated = [&]() -> Status {
        if (engine_concurrent_insert_) {
          return engine_->Update(request.target_id, request.queries[0]);
        }
        std::unique_lock<std::shared_mutex> lock(engine_mu_);
        return engine_->Update(request.target_id, request.queries[0]);
      }();
      if (updated.ok()) {
        if (cache_) cache_->BumpEpoch();
      } else {
        response.status = WireStatusFromCode(updated.code());
        response.message = updated.message();
      }
      break;
    }
    case MsgType::kMaintainNow: {
      // Maintenance rewrites index internals, so on engines without the
      // concurrent-mutation contract it excludes queries like any write.
      Result<search::MaintenanceReport> report =
          [&]() -> Result<search::MaintenanceReport> {
        if (engine_concurrent_insert_) return engine_->MaintainNow();
        std::unique_lock<std::shared_mutex> lock(engine_mu_);
        return engine_->MaintainNow();
      }();
      if (report.ok()) {
        // No cache epoch bump: maintenance is exactness-preserving, so
        // every cached answer stays correct.
        response.maintenance_splits = report.value().splits;
        response.maintenance_recomputes = report.value().recomputes;
        response.maintenance_bits_dropped = report.value().bits_dropped;
      } else {
        response.status = WireStatusFromCode(report.status().code());
        response.message = report.status().message();
      }
      break;
    }
  }
  return response;
}

void Server::HandleWireBatch(const Request& request,
                             std::chrono::steady_clock::time_point arrival,
                             Response* response) {
  const bool is_knn = request.type == MsgType::kKnnBatch;
  const size_t n = request.queries.size();
  auto expired = [&]() {
    return request.deadline_ms > 0 &&
           std::chrono::steady_clock::now() - arrival >=
               std::chrono::milliseconds(request.deadline_ms);
  };
  auto deadline_response = [&]() {
    *response = Response{};
    response->status = WireStatus::kDeadlineExceeded;
    response->message = "deadline of " + std::to_string(request.deadline_ms) +
                        "ms expired mid-batch";
  };
  response->results.resize(n);
  std::vector<std::string> keys(n);
  std::vector<size_t> miss;
  for (size_t i = 0; i < n; ++i) {
    SetView query = request.queries[i].view();
    if (cache_ != nullptr) {
      keys[i] = is_knn ? ResultCache::KnnKey(query, request.k)
                       : ResultCache::RangeKey(query, request.delta);
      if (auto cached = cache_->Get(keys[i])) {
        response->results[i] = *cached;
        continue;
      }
    }
    miss.push_back(i);
  }
  if (miss.empty()) return;
  // The budget is re-checked once between the cache phase and the engine
  // call (the fused probe is all-or-nothing, so there is no per-query
  // point to check at). Expiry still voids the WHOLE response.
  if (expired()) {
    deadline_response();
    return;
  }
  uint64_t epoch = cache_ != nullptr ? cache_->epoch() : 0;
  std::vector<SetRecord> queries;
  queries.reserve(miss.size());
  for (size_t i : miss) queries.push_back(request.queries[i]);
  std::vector<api::QueryResult> answers;
  if (engine_concurrent_insert_) {
    answers = is_knn ? engine_->KnnBatch(queries, request.k)
                     : engine_->RangeBatch(queries, request.delta);
  } else {
    std::shared_lock<std::shared_mutex> lock(engine_mu_);
    answers = is_knn ? engine_->KnnBatch(queries, request.k)
                     : engine_->RangeBatch(queries, request.delta);
  }
  for (size_t j = 0; j < miss.size(); ++j) {
    size_t i = miss[j];
    if (cache_ != nullptr) {
      cache_->Put(keys[i],
                  std::make_shared<const std::vector<Hit>>(answers[j].hits),
                  epoch);
    }
    response->results[i] = std::move(answers[j].hits);
  }
}

}  // namespace serve
}  // namespace les3
