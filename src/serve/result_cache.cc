#include "serve/result_cache.h"

#include <cstring>

#include "util/logging.h"

namespace les3 {
namespace serve {

namespace {

// FNV-1a over the key bytes; only stripes locks, no adversarial concerns.
size_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendTokens(SetView query, std::string* out) {
  for (TokenId t : query) {
    for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(t >> (8 * i)));
  }
}

}  // namespace

ResultCache::ResultCache(const Options& options)
    : capacity_bytes_(options.capacity_bytes) {
  size_t n = RoundUpPow2(options.num_shards == 0 ? 1 : options.num_shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  per_shard_capacity_ = capacity_bytes_ / n;
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
}

std::string ResultCache::KnnKey(SetView query, size_t k) {
  std::string key;
  key.reserve(9 + query.size() * 4);
  key.push_back('K');
  AppendU64(static_cast<uint64_t>(k), &key);
  AppendTokens(query, &key);
  return key;
}

std::string ResultCache::RangeKey(SetView query, double delta) {
  std::string key;
  key.reserve(9 + query.size() * 4);
  key.push_back('R');
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(delta), "double must be 64-bit");
  std::memcpy(&bits, &delta, sizeof(bits));
  AppendU64(bits, &key);
  AppendTokens(query, &key);
  return key;
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[HashKey(key) & (shards_.size() - 1)];
}

size_t ResultCache::ChargeOf(const std::string& key, const Value& hits) {
  // Key bytes + 16 bytes per hit + a flat allowance for the list/map nodes.
  return key.size() + (hits ? hits->size() * sizeof(Hit) : 0) + 96;
}

ResultCache::Value ResultCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  if (it->second->epoch != epoch()) {
    // Epoch-stale: an Insert completed after this entry's query started.
    // Drop it eagerly so dead entries do not squat on capacity.
    ++shard.stats.invalidations;
    ++shard.stats.misses;
    shard.charged -= it->second->charge;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return nullptr;
  }
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->hits;
}

void ResultCache::Put(const std::string& key, Value hits, uint64_t epoch) {
  if (epoch != this->epoch()) return;  // already stale, don't store a corpse
  Shard& shard = ShardFor(key);
  size_t charge = ChargeOf(key, hits);
  if (charge > per_shard_capacity_) return;  // would evict the whole shard
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh in place (e.g. two concurrent misses raced to compute).
    shard.charged -= it->second->charge;
    it->second->hits = std::move(hits);
    it->second->epoch = epoch;
    it->second->charge = charge;
    shard.charged += charge;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(hits), epoch, charge});
  shard.index.emplace(key, shard.lru.begin());
  shard.charged += charge;
  ++shard.stats.insertions;
  while (shard.charged > per_shard_capacity_ && !shard.lru.empty()) {
    Entry& victim = shard.lru.back();
    shard.charged -= victim.charge;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.stats.evictions;
  }
}

ResultCache::Stats ResultCache::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->stats.hits;
    total.misses += shard->stats.misses;
    total.insertions += shard->stats.insertions;
    total.evictions += shard->stats.evictions;
    total.invalidations += shard->stats.invalidations;
  }
  return total;
}

size_t ResultCache::charged_bytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->charged;
  }
  return total;
}

}  // namespace serve
}  // namespace les3
