// AVX-512 specializations of the verify intersection kernels: the same
// algorithm as the AVX2 tier at 16 lanes, with equality results landing
// directly in mask registers (no movemask round trip) and native unsigned
// compares for the lower-bound scan. Compiled with -mavx512f -mavx512bw
// per file (CMakeLists.txt); without the flags it degrades to scalar
// stubs and reports kAvx512Compiled = false.

#include "core/verify_simd.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)
#include <immintrin.h>
#define LES3_HAVE_AVX512_TU 1
#endif

namespace les3 {
namespace simd {

#if defined(LES3_HAVE_AVX512_TU)

extern const bool kAvx512Compiled = true;

CountResult IntersectCountAvx512(SetView a_view, SetView b_view,
                                 size_t min_overlap) {
  const TokenId* a = a_view.data();
  const TokenId* b = b_view.data();
  const size_t na = a_view.size(), nb = b_view.size();
  const __m512i kRotate = _mm512_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8, 9, 10,
                                            11, 12, 13, 14, 15, 0);
  size_t i = 0, j = 0, overlap = 0;
  // 17 readable elements per side: the 16-lane window + the duplicate
  // probe at offset +1 (see the AVX2 kernel for the algorithm notes).
  while (i + 16 < na && j + 16 < nb) {
    size_t remaining_a = na - i, remaining_b = nb - j;
    size_t bound =
        overlap + (remaining_a < remaining_b ? remaining_a : remaining_b);
    if (bound < min_overlap) return {bound, true};
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + j);
    const __mmask16 dup =
        _mm512_cmpeq_epi32_mask(va, _mm512_loadu_si512(a + i + 1)) |
        _mm512_cmpeq_epi32_mask(vb, _mm512_loadu_si512(b + j + 1));
    if (dup != 0) {
      detail::ScalarSteps(a, na, b, nb, 16, &i, &j, &overlap);
      continue;
    }
    __m512i rot = vb;
    __mmask16 found = _mm512_cmpeq_epi32_mask(va, rot);
    for (int r = 1; r < 16; ++r) {
      rot = _mm512_permutexvar_epi32(kRotate, rot);
      found |= _mm512_cmpeq_epi32_mask(va, rot);
    }
    overlap += static_cast<size_t>(
        __builtin_popcount(static_cast<unsigned>(found)));
    const TokenId a_max = a[i + 15], b_max = b[j + 15];
    if (a_max <= b_max) i += 16;
    if (b_max <= a_max) j += 16;
  }
  return detail::ScalarMergeFrom(a, na, b, nb, i, j, overlap, min_overlap);
}

size_t LowerBoundAvx512(SetView v, size_t lo, size_t hi, TokenId t) {
  if (lo >= hi) return hi;
  constexpr size_t kScanWindow = 64;
  while (hi - lo > kScanWindow) {
    size_t mid = lo + (hi - lo) / 2;
    if (v[mid] < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m512i vt = _mm512_set1_epi32(static_cast<int>(t));
  size_t i = lo;
  for (; i + 16 <= hi; i += 16) {
    const __m512i x = _mm512_loadu_si512(v.data() + i);
    const __mmask16 below = _mm512_cmplt_epu32_mask(x, vt);
    if (below != 0xFFFFu) {
      return i + static_cast<size_t>(
                     __builtin_ctz(~static_cast<unsigned>(below) & 0xFFFFu));
    }
  }
  while (i < hi && v[i] < t) ++i;
  return i;
}

#else  // !LES3_HAVE_AVX512_TU

extern const bool kAvx512Compiled = false;

CountResult IntersectCountAvx512(SetView a, SetView b, size_t min_overlap) {
  return IntersectCountScalar(a, b, min_overlap);
}

size_t LowerBoundAvx512(SetView v, size_t lo, size_t hi, TokenId t) {
  return LowerBoundScalar(v, lo, hi, t);
}

#endif  // LES3_HAVE_AVX512_TU

}  // namespace simd
}  // namespace les3
