#include "core/verify.h"

namespace les3 {

VerifyResult VerifyThreshold(SimilarityMeasure measure, const SetRecord& a,
                             const SetRecord& b, double threshold) {
  const auto& x = a.tokens();
  const auto& y = b.tokens();
  VerifyResult result;
  if (threshold <= 0.0) {
    result.similarity = Similarity(measure, a, b);
    result.passed = true;
    return result;
  }
  size_t i = 0, j = 0, overlap = 0;
  while (i < x.size() && j < y.size()) {
    // Best-case final overlap if every remaining token matched.
    size_t max_overlap =
        overlap + std::min(x.size() - i, y.size() - j);
    double best = SimilarityFromOverlap(measure, max_overlap, x.size(),
                                        y.size());
    if (best < threshold) {
      result.similarity = best;  // valid upper bound
      result.passed = false;
      return result;
    }
    if (x[i] < y[j]) {
      ++i;
    } else if (x[i] > y[j]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  result.similarity =
      SimilarityFromOverlap(measure, overlap, x.size(), y.size());
  result.passed = result.similarity >= threshold;
  return result;
}

}  // namespace les3
