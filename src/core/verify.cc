#include "core/verify.h"

#include <algorithm>
#include <cmath>

#include "core/verify_simd.h"

namespace les3 {

namespace {

/// First index >= `from` with v[index] >= t, by exponential probe from
/// `from` followed by a lower-bound search over the bracketed run — the
/// finishing search dispatches to the active SIMD level (verify_simd.h).
size_t GallopLowerBound(SetView v, size_t from, TokenId t) {
  if (from >= v.size() || v[from] >= t) return from;
  size_t lo = from;  // v[lo] < t throughout
  size_t step = 1;
  while (lo + step < v.size() && v[lo + step] < t) {
    lo += step;
    step <<= 1;
  }
  size_t hi = std::min(lo + step, v.size());  // v[hi] >= t, or hi == size
  return simd::LowerBound(v, lo + 1, hi, t);
}

/// Finalizes a kernel run: exact similarity from the accumulated overlap.
VerifyResult Finish(SimilarityMeasure m, size_t overlap, size_t size_a,
                    size_t size_b, double threshold) {
  VerifyResult result;
  result.similarity = SimilarityFromOverlap(m, overlap, size_a, size_b);
  result.passed = result.similarity >= threshold;
  return result;
}

/// Early-exit result: the best-case similarity is a valid upper bound.
VerifyResult Abort(SimilarityMeasure m, size_t max_overlap, size_t size_a,
                   size_t size_b) {
  VerifyResult result;
  result.similarity = SimilarityFromOverlap(m, max_overlap, size_a, size_b);
  result.passed = false;
  return result;
}

}  // namespace

size_t MinOverlapForPair(SimilarityMeasure m, size_t size_a, size_t size_b,
                         double threshold) {
  if (threshold <= 0.0) return 0;
  const size_t max_overlap = std::min(size_a, size_b);
  // NaN fails every comparison (including the `<= 0.0` gate above), and
  // +inf exceeds every reachable similarity; for both, no overlap can
  // pass, and letting a non-finite estimate reach the double->size_t cast
  // below would be undefined behavior. max_overlap + 1 is the canonical
  // "unsatisfiable" value (the fix-up loop exits there too).
  if (!std::isfinite(threshold)) return max_overlap + 1;
  auto pass = [&](size_t o) {
    return SimilarityFromOverlap(m, o, size_a, size_b) >= threshold;
  };
  // Closed-form estimate of the boundary (solving Sim(o) = threshold for
  // o), then a linear fix-up against the exact double predicate. The
  // estimate lands within one or two of the true crossover, and
  // SimilarityFromOverlap is monotone in the overlap for fixed sizes (the
  // numerator grows, the denominator shrinks or stays put, and double
  // division rounds monotonically), so the fix-up loops run O(1) steps and
  // the result is the exact least sufficient overlap. This runs once per
  // verified candidate — it must stay a handful of flops, not a binary
  // search.
  const double na = static_cast<double>(size_a);
  const double nb = static_cast<double>(size_b);
  double estimate = 0.0;
  switch (m) {
    case SimilarityMeasure::kJaccard:
      estimate = threshold * (na + nb) / (1.0 + threshold);
      break;
    case SimilarityMeasure::kDice:
      estimate = threshold * (na + nb) / 2.0;
      break;
    case SimilarityMeasure::kCosine:
      estimate = threshold * std::sqrt(na * nb);
      break;
    case SimilarityMeasure::kContainment:
      estimate = threshold * na;
      break;
  }
  size_t o = estimate <= 0.0 ? 0
             : estimate >= static_cast<double>(max_overlap)
                 ? max_overlap
                 : static_cast<size_t>(estimate);
  while (o <= max_overlap && !pass(o)) ++o;  // may exit at max_overlap + 1
  while (o > 0 && pass(o - 1)) --o;
  return o;
}

VerifyResult VerifyMerge(SimilarityMeasure m, SetView a, SetView b,
                         double threshold) {
  return VerifyMerge(m, a, b, threshold,
                     MinOverlapForPair(m, a.size(), b.size(), threshold));
}

VerifyResult VerifyMerge(SimilarityMeasure m, SetView a, SetView b,
                         double threshold, size_t min_overlap) {
  // The intersection count runs in core/verify_simd.h: a vectorized
  // all-pairs block compare on AVX2/AVX-512 hardware, the branchless
  // scalar merge otherwise — identical overlap either way, with the
  // suffix bound (best-case final overlap against the precomputed
  // requirement) checked once per block. A sparser check only delays the
  // early exit; the final overlap (and so the answer) is untouched.
  simd::CountResult r = simd::IntersectCount(a, b, min_overlap);
  if (r.aborted) return Abort(m, r.value, a.size(), b.size());
  return Finish(m, r.value, a.size(), b.size(), threshold);
}

VerifyResult VerifyGallop(SimilarityMeasure m, SetView a, SetView b,
                          double threshold) {
  return VerifyGallop(m, a, b, threshold,
                      MinOverlapForPair(m, a.size(), b.size(), threshold));
}

VerifyResult VerifyGallop(SimilarityMeasure m, SetView a, SetView b,
                          double threshold, size_t min_overlap) {
  SetView small = a.size() <= b.size() ? a : b;
  SetView large = a.size() <= b.size() ? b : a;
  size_t i = 0, j = 0, overlap = 0;
  while (i < small.size() && j < large.size()) {
    size_t max_overlap =
        overlap + std::min(small.size() - i, large.size() - j);
    if (max_overlap < min_overlap) return Abort(m, max_overlap, a.size(),
                                                b.size());
    j = GallopLowerBound(large, j, small[i]);
    if (j >= large.size()) break;
    if (large[j] == small[i]) {
      // Pairwise consumption keeps multiset min-multiplicity semantics:
      // k duplicates in the small side match at most k in the large side.
      ++overlap;
      ++j;
    }
    ++i;
  }
  return Finish(m, overlap, a.size(), b.size(), threshold);
}

VerifyResult VerifyThreshold(SimilarityMeasure measure, SetView a, SetView b,
                             double threshold) {
  return VerifyThreshold(measure, a, b, threshold,
                         MinOverlapForPair(measure, a.size(), b.size(),
                                           threshold));
}

VerifyResult VerifyThreshold(SimilarityMeasure measure, SetView a, SetView b,
                             double threshold, size_t min_overlap) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small > 0 && large / small >= kGallopSizeRatio) {
    return VerifyGallop(measure, a, b, threshold, min_overlap);
  }
  return VerifyMerge(measure, a, b, threshold, min_overlap);
}

}  // namespace les3
