// SetRecord: one (multi)set of tokens, stored as a sorted token array.
//
// The paper's data model allows multisets; duplicates are kept, so the
// multiset {A, A} is the sorted array [A, A]. Intersection size follows the
// multiset convention (sum of minimum multiplicities).

#ifndef LES3_CORE_SET_RECORD_H_
#define LES3_CORE_SET_RECORD_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace les3 {

/// \brief A (multi)set of tokens with sorted storage.
class SetRecord {
 public:
  SetRecord() = default;

  /// Builds from arbitrary-order tokens; sorts, keeps duplicates.
  static SetRecord FromTokens(std::vector<TokenId> tokens);

  /// Builds from tokens already sorted ascending (checked in debug).
  static SetRecord FromSortedTokens(std::vector<TokenId> tokens);

  /// Number of tokens including duplicate multiplicity (the |S| of the
  /// paper's similarity formulas).
  size_t size() const { return tokens_.size(); }
  bool empty() const { return tokens_.empty(); }

  const std::vector<TokenId>& tokens() const { return tokens_; }

  /// Whether the (multi)set contains at least one occurrence of `t`.
  bool Contains(TokenId t) const;

  /// Largest token id, or 0 for an empty set.
  TokenId MaxToken() const { return tokens_.empty() ? 0 : tokens_.back(); }

  /// Smallest token id, or 0 for an empty set.
  TokenId MinToken() const { return tokens_.empty() ? 0 : tokens_.front(); }

  /// Multiset intersection size: sum over tokens of min multiplicity.
  static size_t OverlapSize(const SetRecord& a, const SetRecord& b);

  /// Number of distinct tokens.
  size_t DistinctCount() const;

  bool operator==(const SetRecord& other) const {
    return tokens_ == other.tokens_;
  }

 private:
  std::vector<TokenId> tokens_;  // sorted ascending, duplicates allowed
};

}  // namespace les3

#endif  // LES3_CORE_SET_RECORD_H_
