// SetRecord: one (multi)set of tokens, stored as a sorted token array.
// SetView: a non-owning span over such an array — the type every kernel
// consumes.
//
// The paper's data model allows multisets; duplicates are kept, so the
// multiset {A, A} is the sorted array [A, A]. Intersection size follows the
// multiset convention (sum of minimum multiplicities).
//
// SetRecord is the ingest/API type (it owns its tokens); SetView is the
// query/verification type. The database stores all sets in one contiguous
// CSR token arena (core/database.h) and hands out SetViews into it, so the
// hot verification loops never chase per-set heap pointers. A SetRecord
// converts to a SetView implicitly (the string/string_view pattern); the
// reverse materialization is explicit.

#ifndef LES3_CORE_SET_RECORD_H_
#define LES3_CORE_SET_RECORD_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace les3 {

class SetRecord;

/// \brief A non-owning view of a sorted (multi)set of tokens.
///
/// Trivially copyable (pointer + length); pass by value. A view into the
/// database's arena is invalidated by AddSet (the arena may reallocate), so
/// views are consumed within a query, never stored across mutations.
class SetView {
 public:
  constexpr SetView() = default;
  constexpr SetView(const TokenId* data, size_t size)
      : data_(data), size_(size) {}
  /// Implicit, like std::string -> std::string_view.
  SetView(const SetRecord& record);  // NOLINT(runtime/explicit)

  /// Number of tokens including duplicate multiplicity (the |S| of the
  /// paper's similarity formulas).
  constexpr size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }

  constexpr const TokenId* data() const { return data_; }
  constexpr const TokenId* begin() const { return data_; }
  constexpr const TokenId* end() const { return data_ + size_; }
  constexpr TokenId operator[](size_t i) const { return data_[i]; }

  /// The view itself is the token range; lets generic code written against
  /// SetRecord (`for (TokenId t : s.tokens())`) accept either type.
  /// Returned BY VALUE: a reference into `*this` would dangle when the
  /// receiver is itself a temporary (`for (TokenId t : db.set(i).tokens())`
  /// — range-for lifetime extension does not reach through a member
  /// function's return).
  constexpr SetView tokens() const { return *this; }

  /// Largest token id, or 0 for an empty set.
  constexpr TokenId MaxToken() const { return size_ == 0 ? 0 : data_[size_ - 1]; }

  /// Smallest token id, or 0 for an empty set.
  constexpr TokenId MinToken() const { return size_ == 0 ? 0 : data_[0]; }

  /// Whether the (multi)set contains at least one occurrence of `t`.
  bool Contains(TokenId t) const;

  /// Number of distinct tokens.
  size_t DistinctCount() const;

  /// Multiset intersection size: sum over tokens of min multiplicity.
  /// Linear merge; the adaptive threshold kernels live in core/verify.h.
  static size_t OverlapSize(SetView a, SetView b);

  friend bool operator==(SetView a, SetView b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (a.data_[i] != b.data_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(SetView a, SetView b) { return !(a == b); }

 private:
  const TokenId* data_ = nullptr;
  size_t size_ = 0;  // sorted ascending, duplicates allowed
};

/// \brief A (multi)set of tokens with sorted, owned storage.
class SetRecord {
 public:
  SetRecord() = default;

  /// Materializes a view into owned storage (explicit: it copies).
  explicit SetRecord(SetView view)
      : tokens_(view.begin(), view.end()) {}

  /// Builds from arbitrary-order tokens; sorts, keeps duplicates.
  static SetRecord FromTokens(std::vector<TokenId> tokens);

  /// Builds from tokens already sorted ascending (checked in debug).
  static SetRecord FromSortedTokens(std::vector<TokenId> tokens);

  /// Number of tokens including duplicate multiplicity (the |S| of the
  /// paper's similarity formulas).
  size_t size() const { return tokens_.size(); }
  bool empty() const { return tokens_.empty(); }

  const std::vector<TokenId>& tokens() const { return tokens_; }

  /// The non-owning span over this record's tokens.
  SetView view() const { return SetView(tokens_.data(), tokens_.size()); }

  /// Whether the (multi)set contains at least one occurrence of `t`.
  bool Contains(TokenId t) const { return view().Contains(t); }

  /// Largest token id, or 0 for an empty set.
  TokenId MaxToken() const { return tokens_.empty() ? 0 : tokens_.back(); }

  /// Smallest token id, or 0 for an empty set.
  TokenId MinToken() const { return tokens_.empty() ? 0 : tokens_.front(); }

  /// Multiset intersection size: sum over tokens of min multiplicity.
  static size_t OverlapSize(const SetRecord& a, const SetRecord& b) {
    return SetView::OverlapSize(a.view(), b.view());
  }

  /// Number of distinct tokens.
  size_t DistinctCount() const { return view().DistinctCount(); }

  bool operator==(const SetRecord& other) const {
    return tokens_ == other.tokens_;
  }

 private:
  std::vector<TokenId> tokens_;  // sorted ascending, duplicates allowed
};

inline SetView::SetView(const SetRecord& record)
    : data_(record.tokens().data()), size_(record.size()) {}

}  // namespace les3

#endif  // LES3_CORE_SET_RECORD_H_
