// String tokenization utilities for the data-cleaning example: strings are
// turned into token sets (words or q-grams) over a growing vocabulary, which
// is exactly how approximate string matching becomes set similarity search
// (paper, Section 1).

#ifndef LES3_CORE_TOKENIZER_H_
#define LES3_CORE_TOKENIZER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/set_record.h"
#include "core/types.h"

namespace les3 {

/// \brief Bidirectional string <-> TokenId mapping.
class Vocabulary {
 public:
  /// Returns the id for `token`, assigning a fresh one on first sight.
  TokenId GetOrAdd(const std::string& token);

  /// Returns the id for `token` or kInvalidToken when unknown.
  static constexpr TokenId kInvalidToken = static_cast<TokenId>(-1);
  TokenId Find(const std::string& token) const;

  const std::string& TokenString(TokenId id) const { return strings_[id]; }

  uint32_t size() const { return static_cast<uint32_t>(strings_.size()); }

 private:
  std::unordered_map<std::string, TokenId> ids_;
  std::vector<std::string> strings_;
};

/// Splits on non-alphanumeric characters and lower-cases; empty tokens are
/// dropped.
std::vector<std::string> SplitWords(const std::string& text);

/// Overlapping q-grams of the (lower-cased) string, padded with '#'/'$' at
/// the edges so short strings still produce q grams.
std::vector<std::string> QGrams(const std::string& text, size_t q);

/// Tokenizes `text` into a SetRecord using `vocab` (words mode).
SetRecord TokenizeWords(const std::string& text, Vocabulary* vocab);

/// Tokenizes `text` into a SetRecord of q-gram tokens.
SetRecord TokenizeQGrams(const std::string& text, size_t q, Vocabulary* vocab);

}  // namespace les3

#endif  // LES3_CORE_TOKENIZER_H_
