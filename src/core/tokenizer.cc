#include "core/tokenizer.h"

#include <cctype>

namespace les3 {

TokenId Vocabulary::GetOrAdd(const std::string& token) {
  auto it = ids_.find(token);
  if (it != ids_.end()) return it->second;
  TokenId id = static_cast<TokenId>(strings_.size());
  ids_.emplace(token, id);
  strings_.push_back(token);
  return id;
}

TokenId Vocabulary::Find(const std::string& token) const {
  auto it = ids_.find(token);
  return it == ids_.end() ? kInvalidToken : it->second;
}

std::vector<std::string> SplitWords(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

std::vector<std::string> QGrams(const std::string& text, size_t q) {
  std::string padded;
  padded.reserve(text.size() + 2 * (q - 1));
  padded.append(q - 1, '#');
  for (char c : text) {
    padded.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  padded.append(q - 1, '$');
  std::vector<std::string> out;
  if (padded.size() < q) return out;
  out.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    out.push_back(padded.substr(i, q));
  }
  return out;
}

SetRecord TokenizeWords(const std::string& text, Vocabulary* vocab) {
  std::vector<TokenId> ids;
  for (const auto& w : SplitWords(text)) ids.push_back(vocab->GetOrAdd(w));
  return SetRecord::FromTokens(std::move(ids));
}

SetRecord TokenizeQGrams(const std::string& text, size_t q,
                         Vocabulary* vocab) {
  std::vector<TokenId> ids;
  for (const auto& g : QGrams(text, q)) ids.push_back(vocab->GetOrAdd(g));
  return SetRecord::FromTokens(std::move(ids));
}

}  // namespace les3
