#include "core/verify_simd.h"

#include <algorithm>

namespace les3 {
namespace simd {

CountResult IntersectCountScalar(SetView a, SetView b, size_t min_overlap) {
  return detail::ScalarMergeFrom(a.data(), a.size(), b.data(), b.size(),
                                 /*i=*/0, /*j=*/0, /*overlap=*/0,
                                 min_overlap);
}

CountResult IntersectCount(SetView a, SetView b, size_t min_overlap) {
  switch (ActiveLevel()) {
    case Level::kAvx512: return IntersectCountAvx512(a, b, min_overlap);
    case Level::kAvx2: return IntersectCountAvx2(a, b, min_overlap);
    case Level::kScalar: break;
  }
  return IntersectCountScalar(a, b, min_overlap);
}

size_t LowerBoundScalar(SetView v, size_t lo, size_t hi, TokenId t) {
  const TokenId* pos = std::lower_bound(v.begin() + lo, v.begin() + hi, t);
  return static_cast<size_t>(pos - v.begin());
}

size_t LowerBound(SetView v, size_t lo, size_t hi, TokenId t) {
  switch (ActiveLevel()) {
    case Level::kAvx512: return LowerBoundAvx512(v, lo, hi, t);
    case Level::kAvx2: return LowerBoundAvx2(v, lo, hi, t);
    case Level::kScalar: break;
  }
  return LowerBoundScalar(v, lo, hi, t);
}

}  // namespace simd
}  // namespace les3
