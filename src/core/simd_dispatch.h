// Runtime SIMD dispatch for the hot kernels (core/verify_simd.h,
// bitmap/kernels_simd.h).
//
// The library ships one binary that runs on baseline x86-64: the AVX2 and
// AVX-512 kernel translation units are compiled with per-file -m flags
// (CMakeLists.txt), and every call site routes through ActiveLevel(), which
// is the minimum of what the build enabled and what the CPU reports. A
// level is only ever selected when both hold, so no illegal instruction can
// be reached on older hardware — and on non-x86 targets the dispatch
// degrades to the scalar kernels with zero overhead beyond one relaxed
// atomic load.
//
// Escape hatches:
//   - LES3_FORCE_SCALAR=1 in the environment pins the process to the
//     scalar kernels (the differential CI lane runs the whole suite this
//     way so both code paths stay green).
//   - SetLevelForTesting lets tests and the micro-benches iterate every
//     supported level in one process; it clamps to DetectedLevel() so a
//     test can never force an instruction set the CPU lacks.

#ifndef LES3_CORE_SIMD_DISPATCH_H_
#define LES3_CORE_SIMD_DISPATCH_H_

#include <vector>

namespace les3 {
namespace simd {

/// Instruction-set tiers the kernels are specialized for, in strictly
/// increasing capability order (a level implies all lower ones).
enum class Level : int {
  kScalar = 0,  // portable C++, always available
  kAvx2 = 1,    // 8-lane epi32 (requires AVX2)
  kAvx512 = 2,  // 16-lane epi32 + mask registers (requires AVX512F+BW)
};

/// Canonical lowercase name ("scalar", "avx2", "avx512").
const char* LevelName(Level level);

/// Highest level both compiled into this binary and supported by the
/// running CPU. Computed once per process.
Level DetectedLevel();

/// The level the kernels dispatch on: the test override if set, else the
/// environment-derived default (DetectedLevel() unless LES3_FORCE_SCALAR=1
/// pins it to scalar). Hot paths call this per kernel invocation — it is
/// one relaxed atomic load.
Level ActiveLevel();

/// Pins dispatch to `level` for the current process, clamped to
/// DetectedLevel(); the forced-path test suites and the per-level
/// micro-benches use this to cover every tier in one run.
void SetLevelForTesting(Level level);

/// Removes the test override; dispatch returns to the environment default.
void ClearLevelForTesting();

/// Every level from kScalar up to DetectedLevel(), ascending — the
/// iteration space of the forced-path differential tests.
std::vector<Level> SupportedLevels();

/// Re-reads LES3_FORCE_SCALAR and reports the level the environment would
/// pick (ignoring any test override). Exposed so tests can exercise the
/// env parsing without depending on process-wide call order.
Level LevelFromEnvironment();

}  // namespace simd
}  // namespace les3

#endif  // LES3_CORE_SIMD_DISPATCH_H_
