#include "core/stats.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace les3 {

DatasetStats ComputeStats(const SetDatabase& db) {
  DatasetStats s;
  s.num_sets = db.size();
  s.num_tokens = db.num_tokens();
  if (db.empty()) return s;
  size_t min_size = std::numeric_limits<size_t>::max();
  size_t max_size = 0;
  uint64_t total = 0;
  for (SetId i = 0; i < db.size(); ++i) {
    SetView rec = db.set(i);
    min_size = std::min(min_size, rec.size());
    max_size = std::max(max_size, rec.size());
    total += rec.size();
  }
  s.min_set_size = min_size;
  s.max_set_size = max_size;
  s.avg_set_size = static_cast<double>(total) / static_cast<double>(db.size());
  return s;
}

std::string DatasetStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "|D|=%llu sizes[min=%zu avg=%.1f max=%zu] |T|=%u",
                static_cast<unsigned long long>(num_sets), min_set_size,
                avg_set_size, max_set_size, num_tokens);
  return buf;
}

}  // namespace les3
