// SetDatabase: the collection D of sets plus its token universe.

#ifndef LES3_CORE_DATABASE_H_
#define LES3_CORE_DATABASE_H_

#include <string>
#include <vector>

#include "core/set_record.h"
#include "core/types.h"
#include "util/status.h"

namespace les3 {

/// \brief The database D over a token universe [0, num_tokens).
///
/// Storage is a CSR token arena: one contiguous TokenId buffer holding
/// every set's sorted tokens back to back, plus an offsets array (|D|+1
/// entries). set(id) hands out a SetView span into the arena, so the
/// verification loops walk one cache-friendly buffer instead of chasing a
/// heap pointer per candidate. SetRecord remains the ingest type; AddSet
/// appends its tokens to the arena.
///
/// The universe may grow (open-universe updates, Section 6 of the paper);
/// AddSet extends it automatically when a set carries unseen token ids.
///
/// Lifetime: a SetView returned by set() is invalidated by the next
/// AddSet (the arena may reallocate). Query paths take views for the
/// duration of one query only; engines that interleave inserts and
/// queries (shard/sharded_engine.h) already serialize the two with a
/// reader-writer lock.
class SetDatabase {
 public:
  SetDatabase() = default;

  /// Creates an empty database whose universe is [0, num_tokens).
  explicit SetDatabase(uint32_t num_tokens) : num_tokens_(num_tokens) {}

  /// Appends a set and returns its id. Extends the token universe when the
  /// set contains ids >= num_tokens(). Accepts a view into this database's
  /// own arena (self-append is safe).
  SetId AddSet(SetView set);

  /// Robust against a moved-from state (whose offsets vector is empty).
  size_t size() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  bool empty() const { return size() == 0; }

  /// The tokens of set `id` as a span into the arena. Valid until the next
  /// AddSet.
  SetView set(SetId id) const {
    return SetView(arena_.data() + offsets_[id],
                   static_cast<size_t>(offsets_[id + 1] - offsets_[id]));
  }

  /// Size of set `id` without touching its tokens (one offsets read).
  size_t set_size(SetId id) const {
    return static_cast<size_t>(offsets_[id + 1] - offsets_[id]);
  }

  /// Size of the token universe |T|.
  uint32_t num_tokens() const { return num_tokens_; }

  /// Total number of tokens over all sets (Σ|S|) — the arena length.
  uint64_t TotalTokens() const { return arena_.size(); }

  /// Binary serialization (used to cache generated datasets and to feed the
  /// disk-resident stores).
  Status Save(const std::string& path) const;
  static Result<SetDatabase> Load(const std::string& path);

 private:
  std::vector<TokenId> arena_;      // all sets' tokens, back to back
  std::vector<uint64_t> offsets_ = {0};  // |D|+1 prefix offsets into arena_
  uint32_t num_tokens_ = 0;
};

}  // namespace les3

#endif  // LES3_CORE_DATABASE_H_
