// SetDatabase: the collection D of sets plus its token universe.

#ifndef LES3_CORE_DATABASE_H_
#define LES3_CORE_DATABASE_H_

#include <string>
#include <vector>

#include "core/set_record.h"
#include "core/types.h"
#include "util/status.h"

namespace les3 {

/// \brief The database D: a dense array of SetRecords over a token universe
/// [0, num_tokens).
///
/// The universe may grow (open-universe updates, Section 6 of the paper);
/// AddSet extends it automatically when a set carries unseen token ids.
class SetDatabase {
 public:
  SetDatabase() = default;

  /// Creates an empty database whose universe is [0, num_tokens).
  explicit SetDatabase(uint32_t num_tokens) : num_tokens_(num_tokens) {}

  /// Appends a set and returns its id. Extends the token universe when the
  /// set contains ids >= num_tokens().
  SetId AddSet(SetRecord set);

  size_t size() const { return sets_.size(); }
  bool empty() const { return sets_.empty(); }

  const SetRecord& set(SetId id) const { return sets_[id]; }
  const std::vector<SetRecord>& sets() const { return sets_; }

  /// Size of the token universe |T|.
  uint32_t num_tokens() const { return num_tokens_; }

  /// Total number of tokens over all sets (Σ|S|).
  uint64_t TotalTokens() const;

  /// Binary serialization (used to cache generated datasets and to feed the
  /// disk-resident stores).
  Status Save(const std::string& path) const;
  static Result<SetDatabase> Load(const std::string& path);

 private:
  std::vector<SetRecord> sets_;
  uint32_t num_tokens_ = 0;
};

}  // namespace les3

#endif  // LES3_CORE_DATABASE_H_
