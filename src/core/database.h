// SetDatabase: the collection D of sets plus its token universe.

#ifndef LES3_CORE_DATABASE_H_
#define LES3_CORE_DATABASE_H_

#include <string>
#include <vector>

#include "core/set_record.h"
#include "core/types.h"
#include "util/status.h"

namespace les3 {

/// \brief The database D over a token universe [0, num_tokens).
///
/// Storage is a token arena: one contiguous TokenId buffer holding every
/// set's sorted tokens, plus per-set (start, length) spans. set(id) hands
/// out a SetView span into the arena, so the verification loops walk one
/// cache-friendly buffer instead of chasing a heap pointer per candidate.
/// SetRecord remains the ingest type; AddSet appends its tokens to the
/// arena.
///
/// Spans are explicit (rather than CSR prefix offsets) so a single set can
/// be repointed in place: ReplaceSet appends the new tokens at the arena
/// tail and redirects one span, and DeleteSet empties one span. The bytes
/// a replaced or deleted set used to occupy become arena garbage —
/// GarbageTokens() reports how much — reclaimed when the index is
/// compacted on snapshot save (docs/mutability.md).
///
/// Ids are stable: DeleteSet leaves a hole (is_deleted(id) == true) and
/// ids are never reused, so external references — TGM membership, shard
/// routing arithmetic, results already returned to clients — stay valid.
/// size() is the id-space size including holes; num_live() counts only
/// live sets.
///
/// The universe may grow (open-universe updates, Section 6 of the paper);
/// AddSet/ReplaceSet extend it automatically when a set carries unseen
/// token ids.
///
/// Lifetime: a SetView returned by set() is invalidated by the next
/// AddSet/ReplaceSet (the arena may reallocate). Query paths take views
/// for the duration of one query only; engines that interleave mutations
/// and queries (shard/sharded_engine.h) already serialize the two with a
/// reader-writer lock.
class SetDatabase {
 public:
  SetDatabase() = default;

  /// Creates an empty database whose universe is [0, num_tokens).
  explicit SetDatabase(uint32_t num_tokens) : num_tokens_(num_tokens) {}

  /// Appends a set and returns its id. Extends the token universe when the
  /// set contains ids >= num_tokens(). Accepts a view into this database's
  /// own arena (self-append is safe).
  SetId AddSet(SetView set);

  /// Tombstones set `id`: its view becomes empty, num_live() drops, and the
  /// id is never reused. Idempotent. Returns false when `id` is out of
  /// range or already deleted.
  bool DeleteSet(SetId id);

  /// Replaces the tokens of live set `id` in place (same id, new content).
  /// The new tokens go to the arena tail; the old span becomes garbage.
  /// Accepts a view into this database's own arena. Returns false when
  /// `id` is out of range or deleted (Update of a deleted id is an error
  /// at the engine layer, not a resurrection).
  bool ReplaceSet(SetId id, SetView set);

  /// Id-space size |D| including deleted holes (ids are stable).
  size_t size() const { return starts_.size(); }
  bool empty() const { return size() == 0; }

  /// Number of live (non-deleted) sets.
  size_t num_live() const { return size() - num_deleted_; }
  size_t num_deleted() const { return num_deleted_; }
  bool is_deleted(SetId id) const { return deleted_[id] != 0; }

  /// The tokens of set `id` as a span into the arena (empty for a deleted
  /// set). Valid until the next AddSet/ReplaceSet.
  SetView set(SetId id) const {
    return SetView(arena_.data() + starts_[id], lengths_[id]);
  }

  /// Size of set `id` without touching its tokens (0 for a deleted set).
  size_t set_size(SetId id) const { return lengths_[id]; }

  /// Size of the token universe |T|.
  uint32_t num_tokens() const { return num_tokens_; }

  /// Total number of tokens over all live sets (Σ|S|).
  uint64_t TotalTokens() const { return live_tokens_; }

  /// Arena bytes no longer referenced by any live span (left behind by
  /// DeleteSet/ReplaceSet; dropped when the index compacts on save).
  uint64_t GarbageTokens() const { return arena_.size() - live_tokens_; }

  /// Binary serialization (used to cache generated datasets and to feed the
  /// disk-resident stores). Deleted sets are written as empty; the format
  /// does not carry tombstones — engine snapshots (persist/snapshot.h)
  /// persist those via the partition's kInvalidGroup sentinel instead.
  Status Save(const std::string& path) const;
  static Result<SetDatabase> Load(const std::string& path);

 private:
  std::vector<TokenId> arena_;      // all sets' tokens
  std::vector<uint64_t> starts_;    // per-set span start into arena_
  std::vector<uint32_t> lengths_;   // per-set span length
  std::vector<uint8_t> deleted_;    // per-set tombstone flag
  uint64_t live_tokens_ = 0;        // Σ lengths_ over live sets
  size_t num_deleted_ = 0;
  uint32_t num_tokens_ = 0;
};

}  // namespace les3

#endif  // LES3_CORE_DATABASE_H_
