// Set similarity measures and the group upper bounds of Theorem 3.1.
//
// All supported measures satisfy the paper's TGM Applicability Property:
//   (1) Sim(Q, Q ∩ S) >= Sim(Q, S), and
//   (2) Sim(Q, R) is monotone in |R| for R ⊆ Q.
// The group bound UB(Q, G) is therefore Sim(Q, R) where R is the best-case
// intersection of size r = |{t in Q : some S in G contains t}|.

#ifndef LES3_CORE_SIMILARITY_H_
#define LES3_CORE_SIMILARITY_H_

#include <cstddef>
#include <string>

#include "core/set_record.h"

namespace les3 {

/// Supported similarity measures. All satisfy the TGM Applicability Property
/// (Theorem 3.1); the overlap coefficient does not and is deliberately
/// absent.
///
/// kContainment is asymmetric — Sim(A, B) = |A ∩ B| / |A|, the fraction of
/// the FIRST argument covered by the second. Every searcher passes the
/// query first, so it answers "which sets cover my query best". It
/// satisfies the Applicability Property on the query side: Sim(Q, Q ∩ S) =
/// Sim(Q, S), and Sim(Q, R) = |R| / |Q| is monotone in |R| for R ⊆ Q.
enum class SimilarityMeasure {
  kJaccard,
  kDice,
  kCosine,
  kContainment,
};

/// Human-readable measure name ("jaccard", ...).
std::string ToString(SimilarityMeasure m);

/// Similarity from precomputed overlap o = |A ∩ B| and sizes.
/// Empty-vs-empty pairs are defined as similarity 1.
double SimilarityFromOverlap(SimilarityMeasure m, size_t overlap,
                             size_t size_a, size_t size_b);

/// Exact similarity between two (multi)sets; O(|A| + |B|).
double Similarity(SimilarityMeasure m, SetView a, SetView b);

/// \brief Group upper bound of Equation (2) generalized per Theorem 3.1.
///
/// `matched` is the number of query tokens present somewhere in the group
/// (counting query-side multiplicity), `query_size` is |Q|. The returned
/// value upper-bounds Sim(Q, S) for every S in the group.
double GroupUpperBound(SimilarityMeasure m, size_t matched, size_t query_size);

/// \brief Least overlap a set of any size must have with Q so that
/// Sim can still reach `threshold`; used by filters to prune on the matched
/// token count. Returns the smallest integer r such that
/// GroupUpperBound(m, r, |Q|) >= threshold (|Q|+1 if impossible).
size_t MinOverlapForThreshold(SimilarityMeasure m, size_t query_size,
                              double threshold);

/// Highest similarity any set of size `s` can reach against a query of
/// size `q` — the overlap is capped at min(q, s). Evaluated through
/// SimilarityFromOverlap, the identical expression the verifiers use, so
/// the comparison against a computed similarity is floating-point safe.
double MaxSimForSize(SimilarityMeasure m, size_t query_size, size_t set_size);

/// A candidate-size window [lo, hi]: every set whose size falls outside it
/// is guaranteed below the originating threshold. hi may be SIZE_MAX when
/// the measure imposes no upper bound (containment).
struct SizeBounds {
  size_t lo = 0;
  size_t hi = static_cast<size_t>(-1);
  bool Empty() const { return lo > hi; }
};

/// \brief The length filter: the range of set sizes that can still attain
/// Sim(Q, S) >= threshold for a query of size `query_size`.
///
/// Exact in floating point: s is inside the window iff
/// MaxSimForSize(m, |Q|, s) >= threshold under the same double arithmetic
/// the verifiers use, so a set excluded by the window can never pass
/// verification — ties at the threshold included. Returns an Empty()
/// window when no size qualifies (threshold > 1).
SizeBounds SizeBoundsForThreshold(SimilarityMeasure m, size_t query_size,
                                  double threshold);

}  // namespace les3

#endif  // LES3_CORE_SIMILARITY_H_
