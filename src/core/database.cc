#include "core/database.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace les3 {

namespace {
constexpr uint32_t kMagic = 0x4C455333;  // "LES3"

// Copies `set` to the arena tail, handling the self-aliasing case (the
// source may be a view into this same arena, which resize can reallocate).
// Returns the start offset of the appended span.
uint64_t AppendToArena(std::vector<TokenId>* arena, SetView set) {
  const size_t old_size = arena->size();
  const size_t n = set.size();
  const bool aliased = set.data() >= arena->data() &&
                       set.data() < arena->data() + old_size;
  const size_t src_offset =
      aliased ? static_cast<size_t>(set.data() - arena->data()) : 0;
  arena->resize(old_size + n);
  const TokenId* src = aliased ? arena->data() + src_offset : set.data();
  std::copy(src, src + n, arena->begin() + old_size);
  return old_size;
}
}  // namespace

SetId SetDatabase::AddSet(SetView set) {
#ifndef NDEBUG
  LES3_CHECK(std::is_sorted(set.begin(), set.end()));
#endif
  if (!set.empty() && set.MaxToken() >= num_tokens_) {
    num_tokens_ = set.MaxToken() + 1;
  }
  const uint64_t start = AppendToArena(&arena_, set);
  starts_.push_back(start);
  lengths_.push_back(static_cast<uint32_t>(set.size()));
  deleted_.push_back(0);
  live_tokens_ += set.size();
  return static_cast<SetId>(starts_.size() - 1);
}

bool SetDatabase::DeleteSet(SetId id) {
  if (id >= size() || deleted_[id]) return false;
  live_tokens_ -= lengths_[id];
  lengths_[id] = 0;
  deleted_[id] = 1;
  ++num_deleted_;
  return true;
}

bool SetDatabase::ReplaceSet(SetId id, SetView set) {
  if (id >= size() || deleted_[id]) return false;
#ifndef NDEBUG
  LES3_CHECK(std::is_sorted(set.begin(), set.end()));
#endif
  if (!set.empty() && set.MaxToken() >= num_tokens_) {
    num_tokens_ = set.MaxToken() + 1;
  }
  live_tokens_ -= lengths_[id];
  const uint64_t start = AppendToArena(&arena_, set);
  starts_[id] = start;
  lengths_[id] = static_cast<uint32_t>(set.size());
  live_tokens_ += set.size();
  return true;
}

Status SetDatabase::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  auto write_u32 = [&](uint32_t v) {
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
  };
  bool ok = write_u32(kMagic) && write_u32(num_tokens_) &&
            write_u32(static_cast<uint32_t>(size()));
  for (SetId i = 0; ok && i < size(); ++i) {
    SetView s = set(i);
    ok = write_u32(static_cast<uint32_t>(s.size()));
    if (ok && !s.empty()) {
      ok = std::fwrite(s.data(), sizeof(TokenId), s.size(), f) == s.size();
    }
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<SetDatabase> SetDatabase::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  auto read_u32 = [&](uint32_t* v) {
    return std::fread(v, sizeof(*v), 1, f) == 1;
  };
  uint32_t magic = 0, num_tokens = 0, num_sets = 0;
  if (!read_u32(&magic) || magic != kMagic || !read_u32(&num_tokens) ||
      !read_u32(&num_sets)) {
    std::fclose(f);
    return Status::IOError("bad header: " + path);
  }
  SetDatabase db(num_tokens);
  std::vector<TokenId> tokens;
  for (uint32_t i = 0; i < num_sets; ++i) {
    uint32_t n = 0;
    if (!read_u32(&n)) {
      std::fclose(f);
      return Status::IOError("truncated set header: " + path);
    }
    tokens.resize(n);
    if (n > 0 && std::fread(tokens.data(), sizeof(TokenId), n, f) != n) {
      std::fclose(f);
      return Status::IOError("truncated set payload: " + path);
    }
    db.AddSet(SetView(tokens.data(), n));
  }
  std::fclose(f);
  // AddSet may have grown the universe if data disagreed with the header;
  // keep the larger of the two.
  if (db.num_tokens_ < num_tokens) db.num_tokens_ = num_tokens;
  return db;
}

}  // namespace les3
