#include "core/database.h"

#include <cstdio>

#include "util/logging.h"

namespace les3 {

namespace {
constexpr uint32_t kMagic = 0x4C455333;  // "LES3"
}

SetId SetDatabase::AddSet(SetRecord set) {
  if (!set.empty() && set.MaxToken() >= num_tokens_) {
    num_tokens_ = set.MaxToken() + 1;
  }
  sets_.push_back(std::move(set));
  return static_cast<SetId>(sets_.size() - 1);
}

uint64_t SetDatabase::TotalTokens() const {
  uint64_t total = 0;
  for (const auto& s : sets_) total += s.size();
  return total;
}

Status SetDatabase::Save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  auto write_u32 = [&](uint32_t v) {
    return std::fwrite(&v, sizeof(v), 1, f) == 1;
  };
  bool ok = write_u32(kMagic) && write_u32(num_tokens_) &&
            write_u32(static_cast<uint32_t>(sets_.size()));
  for (const auto& s : sets_) {
    if (!ok) break;
    ok = write_u32(static_cast<uint32_t>(s.size()));
    if (ok && !s.empty()) {
      ok = std::fwrite(s.tokens().data(), sizeof(TokenId), s.size(), f) ==
           s.size();
    }
  }
  std::fclose(f);
  if (!ok) return Status::IOError("short write: " + path);
  return Status::OK();
}

Result<SetDatabase> SetDatabase::Load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  auto read_u32 = [&](uint32_t* v) {
    return std::fread(v, sizeof(*v), 1, f) == 1;
  };
  uint32_t magic = 0, num_tokens = 0, num_sets = 0;
  if (!read_u32(&magic) || magic != kMagic || !read_u32(&num_tokens) ||
      !read_u32(&num_sets)) {
    std::fclose(f);
    return Status::IOError("bad header: " + path);
  }
  SetDatabase db(num_tokens);
  for (uint32_t i = 0; i < num_sets; ++i) {
    uint32_t n = 0;
    if (!read_u32(&n)) {
      std::fclose(f);
      return Status::IOError("truncated set header: " + path);
    }
    std::vector<TokenId> tokens(n);
    if (n > 0 && std::fread(tokens.data(), sizeof(TokenId), n, f) != n) {
      std::fclose(f);
      return Status::IOError("truncated set payload: " + path);
    }
    db.AddSet(SetRecord::FromSortedTokens(std::move(tokens)));
  }
  std::fclose(f);
  // AddSet may have grown the universe if data disagreed with the header;
  // keep the larger of the two.
  if (db.num_tokens_ < num_tokens) db.num_tokens_ = num_tokens;
  return db;
}

}  // namespace les3
