// Threshold-aware verification with early termination.
//
// The verify step computes Sim(Q, S) only to compare it against a threshold
// (the range δ or the current k-th best). Verification can stop as soon as
// the remaining tokens cannot lift the overlap high enough: after consuming
// a prefix of both sorted arrays with `o` matches so far, the final overlap
// is at most o + min(remaining_a, remaining_b). This is the standard
// optimization in set-similarity-join verifiers and cuts the dominant cost
// of low-threshold queries.

#ifndef LES3_CORE_VERIFY_H_
#define LES3_CORE_VERIFY_H_

#include "core/similarity.h"

namespace les3 {

/// Result of a threshold verification.
struct VerifyResult {
  bool passed = false;    // Sim(a, b) >= threshold
  double similarity = 0;  // exact when passed; a valid upper bound when not
};

/// \brief Checks Sim(a, b) >= threshold, stopping early when impossible.
///
/// When the verification fails early, `similarity` holds an upper bound on
/// the true similarity (sufficient for all callers, which discard failed
/// candidates). When it passes, `similarity` is exact.
VerifyResult VerifyThreshold(SimilarityMeasure measure, const SetRecord& a,
                             const SetRecord& b, double threshold);

}  // namespace les3

#endif  // LES3_CORE_VERIFY_H_
