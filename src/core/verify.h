// Threshold-aware verification with early termination — the kernel suite
// behind every exact candidate check.
//
// The verify step computes Sim(Q, S) only to compare it against a threshold
// (the range δ or the current k-th best), so it can stop as soon as the
// remaining tokens cannot lift the overlap high enough: after consuming a
// prefix of both sorted arrays with `o` matches, the final overlap is at
// most o + min(remaining_a, remaining_b). Both kernels reduce that test to
// one integer comparison by precomputing the least overlap the threshold
// requires (MinOverlapForPair), instead of evaluating the similarity
// formula every merge step.
//
// Two layouts of the same exact computation:
//   - VerifyMerge: linear merge; right when |A| and |B| are comparable.
//   - VerifyGallop: iterate the smaller set, exponential-search the larger;
//     right when the sizes are skewed (O(|small| log |large|)).
// VerifyThreshold picks by size ratio (kGallopSizeRatio). All kernels
// preserve multiset min-multiplicity semantics (equal elements consumed
// pairwise) and produce bit-identical similarities to
// Similarity()/SimilarityFromOverlap on the pass path, so tie comparisons
// downstream are floating-point safe.

#ifndef LES3_CORE_VERIFY_H_
#define LES3_CORE_VERIFY_H_

#include "core/similarity.h"

namespace les3 {

/// Result of a threshold verification.
struct VerifyResult {
  bool passed = false;    // Sim(a, b) >= threshold
  double similarity = 0;  // exact when passed; a valid upper bound when not
};

/// \brief Least multiset overlap o such that
/// SimilarityFromOverlap(m, o, size_a, size_b) >= threshold, under the
/// exact double arithmetic of the verifiers; min(size_a, size_b) + 1 when
/// no attainable overlap suffices. The integer form of the early-exit
/// bound shared by the kernels and their tests.
size_t MinOverlapForPair(SimilarityMeasure m, size_t size_a, size_t size_b,
                         double threshold);

/// Linear-merge kernel; best for similarly-sized operands.
VerifyResult VerifyMerge(SimilarityMeasure m, SetView a, SetView b,
                         double threshold);

/// Galloping kernel: walks the smaller operand and exponential-searches the
/// larger; best for heavily skewed sizes.
VerifyResult VerifyGallop(SimilarityMeasure m, SetView a, SetView b,
                          double threshold);

/// Variants taking the pair's MinOverlapForPair value precomputed — the
/// batch loops of search::CandidateVerifier verify size-sorted candidate
/// runs, so consecutive pairs share (|a|, |b|, threshold) and the bound is
/// hoisted out of the per-candidate path.
VerifyResult VerifyMerge(SimilarityMeasure m, SetView a, SetView b,
                         double threshold, size_t min_overlap);
VerifyResult VerifyGallop(SimilarityMeasure m, SetView a, SetView b,
                          double threshold, size_t min_overlap);
VerifyResult VerifyThreshold(SimilarityMeasure measure, SetView a, SetView b,
                             double threshold, size_t min_overlap);

/// Size ratio (larger / smaller) at which VerifyThreshold switches from the
/// linear merge to the galloping kernel.
inline constexpr size_t kGallopSizeRatio = 16;

/// \brief Checks Sim(a, b) >= threshold, stopping early when impossible;
/// dispatches to the kernel fitting the operand sizes.
///
/// When the verification fails early, `similarity` holds an upper bound on
/// the true similarity (sufficient for all callers, which discard failed
/// candidates). When it passes, `similarity` is exact.
VerifyResult VerifyThreshold(SimilarityMeasure measure, SetView a, SetView b,
                             double threshold);

}  // namespace les3

#endif  // LES3_CORE_VERIFY_H_
