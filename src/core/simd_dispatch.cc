#include "core/simd_dispatch.h"

#include <atomic>
#include <cstdlib>

namespace les3 {
namespace simd {

// Defined in the per-level translation units (verify_simd_avx2.cc,
// verify_simd_avx512.cc): true when that TU was compiled with its
// instruction set enabled. On non-x86 builds (or with LES3_ENABLE_SIMD
// off) the TUs compile to stubs and report false, so detection can never
// select a level whose kernels do not exist in the binary.
extern const bool kAvx2Compiled;
extern const bool kAvx512Compiled;

namespace {

Level DetectHardware() {
#if defined(__x86_64__) || defined(_M_X64)
  __builtin_cpu_init();
  if (kAvx512Compiled && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw")) {
    return Level::kAvx512;
  }
  if (kAvx2Compiled && __builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
  return Level::kScalar;
}

// -1 = no override; otherwise the int value of the forced Level.
std::atomic<int> g_test_override{-1};

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kAvx2: return "avx2";
    case Level::kAvx512: return "avx512";
  }
  return "unknown";
}

Level DetectedLevel() {
  static const Level detected = DetectHardware();
  return detected;
}

Level LevelFromEnvironment() {
  const char* force = std::getenv("LES3_FORCE_SCALAR");
  if (force != nullptr && force[0] == '1' && force[1] == '\0') {
    return Level::kScalar;
  }
  return DetectedLevel();
}

Level ActiveLevel() {
  int forced = g_test_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  // The environment is read once: kernels must not change behavior
  // mid-process because a test mutated the env after startup.
  static const Level env_level = LevelFromEnvironment();
  return env_level;
}

void SetLevelForTesting(Level level) {
  if (level > DetectedLevel()) level = DetectedLevel();
  g_test_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void ClearLevelForTesting() {
  g_test_override.store(-1, std::memory_order_relaxed);
}

std::vector<Level> SupportedLevels() {
  std::vector<Level> levels;
  for (int l = 0; l <= static_cast<int>(DetectedLevel()); ++l) {
    levels.push_back(static_cast<Level>(l));
  }
  return levels;
}

}  // namespace simd
}  // namespace les3
