// AVX2 specializations of the verify intersection kernels. This file is
// compiled with -mavx2 (CMakeLists.txt sets the flag per file, so the rest
// of the binary stays runnable on baseline x86-64); when the flag is
// absent — non-x86 target or LES3_ENABLE_SIMD=OFF — it compiles to scalar
// forwarding stubs and reports kAvx2Compiled = false, which keeps the
// dispatch from ever selecting this level.

#include "core/verify_simd.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace les3 {
namespace simd {

#if defined(__AVX2__)

extern const bool kAvx2Compiled = true;

CountResult IntersectCountAvx2(SetView a_view, SetView b_view,
                               size_t min_overlap) {
  const TokenId* a = a_view.data();
  const TokenId* b = b_view.data();
  const size_t na = a_view.size(), nb = b_view.size();
  // Lane index rotation for the all-pairs compare: vb -> [b1..b7, b0].
  const __m256i kRotate = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  size_t i = 0, j = 0, overlap = 0;
  // The vector loop needs 9 readable elements per side: the 8-lane match
  // window plus one more for the adjacent-duplicate probe at offset +1.
  while (i + 8 < na && j + 8 < nb) {
    size_t remaining_a = na - i, remaining_b = nb - j;
    size_t bound =
        overlap + (remaining_a < remaining_b ? remaining_a : remaining_b);
    if (bound < min_overlap) return {bound, true};
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    // Strict-increase probe over a[i..i+8] and b[j..j+8]. Any adjacent
    // equal pair means a value with multiplicity > 1 touches a window; the
    // all-pairs compare below would overcount it, so such windows take up
    // to 8 steps of the pairwise-consuming scalar merge instead. The probe
    // includes the element one past each window, so a duplicate can never
    // straddle a block-advance boundary undetected.
    const __m256i dup = _mm256_or_si256(
        _mm256_cmpeq_epi32(
            va, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 1))),
        _mm256_cmpeq_epi32(
            vb, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j + 1))));
    if (!_mm256_testz_si256(dup, dup)) {
      detail::ScalarSteps(a, na, b, nb, 8, &i, &j, &overlap);
      continue;
    }
    // All-pairs equality: va against vb and its 7 lane rotations. With
    // both windows strictly increasing, each common value matches in
    // exactly one (A-lane, rotation) pair, so the popcount of the matched
    // A lanes is the exact window intersection — and the advance rule
    // (drop the block whose last element is smaller, both on a tie) makes
    // every matching pair co-resident exactly once across iterations.
    __m256i rot = vb;
    __m256i found = _mm256_cmpeq_epi32(va, rot);
    for (int r = 1; r < 8; ++r) {
      rot = _mm256_permutevar8x32_epi32(rot, kRotate);
      found = _mm256_or_si256(found, _mm256_cmpeq_epi32(va, rot));
    }
    overlap += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(found)))));
    const TokenId a_max = a[i + 7], b_max = b[j + 7];
    if (a_max <= b_max) i += 8;
    if (b_max <= a_max) j += 8;
  }
  return detail::ScalarMergeFrom(a, na, b, nb, i, j, overlap, min_overlap);
}

size_t LowerBoundAvx2(SetView v, size_t lo, size_t hi, TokenId t) {
  if (lo >= hi) return hi;
  // Binary-narrow large ranges, then scan the last few blocks 8 lanes at
  // a time. AVX2 has no unsigned compare, so both sides are biased by
  // 0x80000000 to make the signed compare order-preserving over uint32.
  constexpr size_t kScanWindow = 32;
  while (hi - lo > kScanWindow) {
    size_t mid = lo + (hi - lo) / 2;
    if (v[mid] < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const __m256i kBias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vt = _mm256_xor_si256(
      _mm256_set1_epi32(static_cast<int>(t)), kBias);
  size_t i = lo;
  for (; i + 8 <= hi; i += 8) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v.data() + i)),
        kBias);
    // Lanes with v[lane] < t; the first zero bit is the answer.
    unsigned below = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vt, x))));
    if (below != 0xFFu) {
      return i + static_cast<size_t>(__builtin_ctz(~below & 0xFFu));
    }
  }
  while (i < hi && v[i] < t) ++i;
  return i;
}

#else  // !defined(__AVX2__)

extern const bool kAvx2Compiled = false;

CountResult IntersectCountAvx2(SetView a, SetView b, size_t min_overlap) {
  return IntersectCountScalar(a, b, min_overlap);
}

size_t LowerBoundAvx2(SetView v, size_t lo, size_t hi, TokenId t) {
  return LowerBoundScalar(v, lo, hi, t);
}

#endif  // defined(__AVX2__)

}  // namespace simd
}  // namespace les3
