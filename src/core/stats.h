// Dataset statistics in the shape of the paper's Table 2.

#ifndef LES3_CORE_STATS_H_
#define LES3_CORE_STATS_H_

#include <string>

#include "core/database.h"

namespace les3 {

/// Summary statistics of a database (the columns of Table 2).
struct DatasetStats {
  uint64_t num_sets = 0;
  size_t max_set_size = 0;
  size_t min_set_size = 0;
  double avg_set_size = 0.0;
  uint32_t num_tokens = 0;  // |T|

  std::string ToString() const;
};

/// Scans the database once and fills a DatasetStats.
DatasetStats ComputeStats(const SetDatabase& db);

}  // namespace les3

#endif  // LES3_CORE_STATS_H_
