#include "core/text_io.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>

namespace les3 {

Result<SetRecord> ParseSetLine(const std::string& line) {
  std::vector<TokenId> tokens;
  const char* p = line.c_str();
  const char* end = p + line.size();
  while (p < end) {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    if (p >= end) break;
    char* next = nullptr;
    errno = 0;
    unsigned long long v = std::strtoull(p, &next, 10);
    if (next == p || errno == ERANGE || v > 0xFFFFFFFFull) {
      return Status::InvalidArgument("bad token id near: " +
                                     std::string(p, std::min<size_t>(
                                                        8, end - p)));
    }
    tokens.push_back(static_cast<TokenId>(v));
    p = next;
  }
  return SetRecord::FromTokens(std::move(tokens));
}

Result<SetDatabase> LoadSetsFromText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open: " + path);
  SetDatabase db;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    Result<SetRecord> record = ParseSetLine(line);
    if (!record.ok()) {
      return Status::InvalidArgument(path + ":" +
                                     std::to_string(line_number) + ": " +
                                     record.status().message());
    }
    db.AddSet(std::move(record).ValueOrDie());
  }
  return db;
}

Status SaveSetsToText(const SetDatabase& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for write: " + path);
  for (SetId i = 0; i < db.size(); ++i) {
    SetView s = db.set(i);
    bool first = true;
    for (TokenId t : s.tokens()) {
      if (!first) out << ' ';
      first = false;
      out << t;
    }
    out << '\n';
  }
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace les3
