// SIMD sorted-set intersection kernels behind the verify suite
// (core/verify.h), with runtime dispatch (core/simd_dispatch.h).
//
// The verify hot loop is an early-exiting multiset intersection count. The
// vector kernels process W-lane blocks (W = 8 for AVX2, 16 for AVX-512)
// with the classic all-pairs rotation compare: load one block from each
// side, compare block A against every lane rotation of block B, OR the
// equality masks, popcount the matched A lanes, then advance whichever
// block's last element is smaller (both on a tie). That compare is exact
// for strictly increasing windows but would overcount duplicates (an A
// value with multiplicity 3 matches a single B occurrence three times), so
// each iteration first probes both windows for adjacent equal elements —
// one unaligned load at +1 and a compare — and routes duplicate-bearing
// windows through up to W steps of the pairwise-consuming scalar merge.
// The min-overlap early exit (see MinOverlapForPair) is checked once per
// vector block; a coarser check only delays the exit and never changes the
// final overlap.
//
// The per-level entry points are exported alongside the dispatching ones
// so the forced-path differential tests and bench/micro_verify.cc can pin
// a kernel directly; production code calls the dispatching form.

#ifndef LES3_CORE_VERIFY_SIMD_H_
#define LES3_CORE_VERIFY_SIMD_H_

#include <cstddef>

#include "core/set_record.h"
#include "core/simd_dispatch.h"

namespace les3 {
namespace simd {

/// Outcome of an early-exiting intersection count.
struct CountResult {
  /// The exact multiset overlap when !aborted; when aborted, the
  /// best-case final overlap at the exit point (a valid upper bound on
  /// the true overlap, which is what the verify Abort path reports).
  size_t value = 0;
  /// True when the kernel exited early because even matching every
  /// remaining token could not reach `min_overlap`.
  bool aborted = false;
};

/// Multiset intersection count (sum of min multiplicities) with the
/// min-overlap early exit, dispatched on ActiveLevel(). Exact for every
/// input, duplicates included.
CountResult IntersectCount(SetView a, SetView b, size_t min_overlap);

/// Per-level kernels. The AVX entries fall back to scalar when their
/// translation unit was built without the instruction set (they are then
/// unreachable through dispatch, but tests may still call them).
CountResult IntersectCountScalar(SetView a, SetView b, size_t min_overlap);
CountResult IntersectCountAvx2(SetView a, SetView b, size_t min_overlap);
CountResult IntersectCountAvx512(SetView a, SetView b, size_t min_overlap);

/// First index in [lo, hi) with v[index] >= t (hi if none), dispatched on
/// ActiveLevel(). The vector forms binary-search down to a small window
/// and finish with an unsigned 32-bit compare scan — the probe
/// VerifyGallop runs once per small-side element.
size_t LowerBound(SetView v, size_t lo, size_t hi, TokenId t);

size_t LowerBoundScalar(SetView v, size_t lo, size_t hi, TokenId t);
size_t LowerBoundAvx2(SetView v, size_t lo, size_t hi, TokenId t);
size_t LowerBoundAvx512(SetView v, size_t lo, size_t hi, TokenId t);

namespace detail {

/// One pairwise-consuming scalar merge step (the reference multiset
/// semantics): advances past equal tokens on both sides, counting one
/// match. Shared by the scalar kernel and the duplicate-window fallback
/// of the vector kernels.
inline void ScalarSteps(const TokenId* a, size_t na, const TokenId* b,
                        size_t nb, size_t steps, size_t* i, size_t* j,
                        size_t* overlap) {
  for (size_t s = 0; s < steps && *i < na && *j < nb; ++s) {
    TokenId x = a[*i], y = b[*j];
    *overlap += static_cast<size_t>(x == y);
    *i += static_cast<size_t>(x <= y);
    *j += static_cast<size_t>(y <= x);
  }
}

/// The branchless scalar merge from position (i, j), bound-checked once
/// per 8-element block — both the scalar kernel (from 0, 0) and every
/// vector kernel's tail run through this one implementation.
inline CountResult ScalarMergeFrom(const TokenId* a, size_t na,
                                   const TokenId* b, size_t nb, size_t i,
                                   size_t j, size_t overlap,
                                   size_t min_overlap) {
  constexpr size_t kCheckEvery = 8;
  while (i < na && j < nb) {
    size_t remaining_a = na - i, remaining_b = nb - j;
    size_t bound =
        overlap + (remaining_a < remaining_b ? remaining_a : remaining_b);
    if (bound < min_overlap) return {bound, true};
    ScalarSteps(a, na, b, nb, kCheckEvery, &i, &j, &overlap);
  }
  return {overlap, false};
}

}  // namespace detail

}  // namespace simd
}  // namespace les3

#endif  // LES3_CORE_VERIFY_SIMD_H_
