#include "core/set_record.h"

#include <algorithm>

#include "util/logging.h"

namespace les3 {

SetRecord SetRecord::FromTokens(std::vector<TokenId> tokens) {
  std::sort(tokens.begin(), tokens.end());
  SetRecord r;
  r.tokens_ = std::move(tokens);
  return r;
}

SetRecord SetRecord::FromSortedTokens(std::vector<TokenId> tokens) {
#ifndef NDEBUG
  LES3_CHECK(std::is_sorted(tokens.begin(), tokens.end()));
#endif
  SetRecord r;
  r.tokens_ = std::move(tokens);
  return r;
}

bool SetRecord::Contains(TokenId t) const {
  return std::binary_search(tokens_.begin(), tokens_.end(), t);
}

size_t SetRecord::OverlapSize(const SetRecord& a, const SetRecord& b) {
  // Linear merge; counts duplicates with multiset semantics because equal
  // elements are consumed pairwise.
  size_t i = 0, j = 0, overlap = 0;
  const auto& x = a.tokens_;
  const auto& y = b.tokens_;
  while (i < x.size() && j < y.size()) {
    if (x[i] < y[j]) {
      ++i;
    } else if (x[i] > y[j]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  return overlap;
}

size_t SetRecord::DistinctCount() const {
  size_t count = 0;
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (i == 0 || tokens_[i] != tokens_[i - 1]) ++count;
  }
  return count;
}

}  // namespace les3
