#include "core/set_record.h"

#include <algorithm>

#include "util/logging.h"

namespace les3 {

SetRecord SetRecord::FromTokens(std::vector<TokenId> tokens) {
  std::sort(tokens.begin(), tokens.end());
  SetRecord r;
  r.tokens_ = std::move(tokens);
  return r;
}

SetRecord SetRecord::FromSortedTokens(std::vector<TokenId> tokens) {
#ifndef NDEBUG
  LES3_CHECK(std::is_sorted(tokens.begin(), tokens.end()));
#endif
  SetRecord r;
  r.tokens_ = std::move(tokens);
  return r;
}

bool SetView::Contains(TokenId t) const {
  return std::binary_search(begin(), end(), t);
}

size_t SetView::OverlapSize(SetView a, SetView b) {
  // Linear merge; counts duplicates with multiset semantics because equal
  // elements are consumed pairwise.
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  return overlap;
}

size_t SetView::DistinctCount() const {
  size_t count = 0;
  for (size_t i = 0; i < size_; ++i) {
    if (i == 0 || data_[i] != data_[i - 1]) ++count;
  }
  return count;
}

}  // namespace les3
