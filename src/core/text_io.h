// Plain-text set database I/O: one set per line, whitespace-separated
// non-negative integer token ids — the format the public set-similarity
// benchmarks (KOSARAK et al.) ship in, so users can load the real datasets
// into this library directly.

#ifndef LES3_CORE_TEXT_IO_H_
#define LES3_CORE_TEXT_IO_H_

#include <string>

#include "core/database.h"
#include "util/status.h"

namespace les3 {

/// Parses a whitespace-separated token-id file into a database. Blank lines
/// become empty sets; a line failing to parse yields InvalidArgument with
/// its line number.
Result<SetDatabase> LoadSetsFromText(const std::string& path);

/// Writes `db` in the same format.
Status SaveSetsToText(const SetDatabase& db, const std::string& path);

/// Parses one line ("3 17 2") into a SetRecord; used by the CLI for query
/// parsing too.
Result<SetRecord> ParseSetLine(const std::string& line);

}  // namespace les3

#endif  // LES3_CORE_TEXT_IO_H_
