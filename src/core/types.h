// Fundamental identifier types shared across all modules.

#ifndef LES3_CORE_TYPES_H_
#define LES3_CORE_TYPES_H_

#include <cstdint>

namespace les3 {

/// Identifier of a token in the token universe T (dense, 0-based).
using TokenId = uint32_t;

/// Identifier of a set in the database D (dense, 0-based).
using SetId = uint32_t;

/// Identifier of a group produced by partitioning (dense, 0-based).
using GroupId = uint32_t;

/// Sentinel for "no group assigned".
inline constexpr GroupId kInvalidGroup = static_cast<GroupId>(-1);

}  // namespace les3

#endif  // LES3_CORE_TYPES_H_
