// Fundamental identifier types shared across all modules.

#ifndef LES3_CORE_TYPES_H_
#define LES3_CORE_TYPES_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

namespace les3 {

/// Identifier of a token in the token universe T (dense, 0-based).
using TokenId = uint32_t;

/// Identifier of a set in the database D (dense, 0-based).
using SetId = uint32_t;

/// Identifier of a group produced by partitioning (dense, 0-based).
using GroupId = uint32_t;

/// Sentinel for "no group assigned".
inline constexpr GroupId kInvalidGroup = static_cast<GroupId>(-1);

/// A scored hit: (set id, similarity). Every searcher — LES3, the
/// baselines, and the disk variants — returns hits of this one type.
using Hit = std::pair<SetId, double>;

/// The canonical result order every searcher returns: descending
/// similarity, ties by ascending id.
struct HitOrder {
  bool operator()(const Hit& a, const Hit& b) const {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  }
};

inline void SortHits(std::vector<Hit>* hits) {
  std::sort(hits->begin(), hits->end(), HitOrder{});
}

/// \brief Bounded top-k accumulator under the canonical HitOrder.
///
/// Keeps the k best hits seen so far, resolving similarity ties toward the
/// smaller id — so the retained set (not just its order) is a deterministic
/// function of the offered hits, independent of offer order. Every kNN
/// searcher funnels candidates through this one type, which is what lets
/// the differential tests demand exact agreement with brute force,
/// tie-handling included.
class TopKHits {
 public:
  explicit TopKHits(size_t k) : k_(k) {}

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= k_; }

  /// The weakest retained hit under HitOrder; only valid when full().
  const Hit& worst() const { return heap_.top(); }

  /// Least similarity a new hit needs to possibly displace the current
  /// worst (it still loses the tie unless its id is smaller). +infinity
  /// when k == 0 (nothing can ever be retained), so `full() &&
  /// ub < WorstSimilarity()` terminates searches immediately.
  double WorstSimilarity() const {
    return heap_.empty() ? std::numeric_limits<double>::infinity()
                         : heap_.top().second;
  }

  /// Inserts if `hit` beats the current worst under HitOrder (always
  /// inserts while not full). Returns true when retained.
  bool Offer(const Hit& hit) {
    if (heap_.size() < k_) {
      heap_.push(hit);
      return true;
    }
    if (k_ == 0 || !HitOrder{}(hit, heap_.top())) return false;
    heap_.pop();
    heap_.push(hit);
    return true;
  }
  bool Offer(SetId id, double similarity) { return Offer(Hit{id, similarity}); }

  /// Drains into a vector sorted by HitOrder; the accumulator is empty
  /// afterwards.
  std::vector<Hit> Take() {
    std::vector<Hit> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  // HitOrder as the comparator makes "better" mean "lower priority", so
  // the heap top is always the weakest retained hit.
  std::priority_queue<Hit, std::vector<Hit>, HitOrder> heap_;
  size_t k_;
};

}  // namespace les3

#endif  // LES3_CORE_TYPES_H_
