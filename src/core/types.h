// Fundamental identifier types shared across all modules.

#ifndef LES3_CORE_TYPES_H_
#define LES3_CORE_TYPES_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace les3 {

/// Identifier of a token in the token universe T (dense, 0-based).
using TokenId = uint32_t;

/// Identifier of a set in the database D (dense, 0-based).
using SetId = uint32_t;

/// Identifier of a group produced by partitioning (dense, 0-based).
using GroupId = uint32_t;

/// Sentinel for "no group assigned".
inline constexpr GroupId kInvalidGroup = static_cast<GroupId>(-1);

/// A scored hit: (set id, similarity). Every searcher — LES3, the
/// baselines, and the disk variants — returns hits of this one type.
using Hit = std::pair<SetId, double>;

/// The canonical result order every searcher returns: descending
/// similarity, ties by ascending id.
struct HitOrder {
  bool operator()(const Hit& a, const Hit& b) const {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  }
};

inline void SortHits(std::vector<Hit>* hits) {
  std::sort(hits->begin(), hits->end(), HitOrder{});
}

}  // namespace les3

#endif  // LES3_CORE_TYPES_H_
