#include "core/similarity.h"

#include <cmath>

#include "util/logging.h"

namespace les3 {

std::string ToString(SimilarityMeasure m) {
  switch (m) {
    case SimilarityMeasure::kJaccard: return "jaccard";
    case SimilarityMeasure::kDice: return "dice";
    case SimilarityMeasure::kCosine: return "cosine";
    case SimilarityMeasure::kContainment: return "containment";
  }
  return "unknown";
}

double SimilarityFromOverlap(SimilarityMeasure m, size_t overlap,
                             size_t size_a, size_t size_b) {
  if (size_a == 0 && size_b == 0) return 1.0;
  if (size_a == 0 || size_b == 0) return 0.0;
  double o = static_cast<double>(overlap);
  double na = static_cast<double>(size_a);
  double nb = static_cast<double>(size_b);
  switch (m) {
    case SimilarityMeasure::kJaccard:
      return o / (na + nb - o);
    case SimilarityMeasure::kDice:
      return 2.0 * o / (na + nb);
    case SimilarityMeasure::kCosine:
      return o / std::sqrt(na * nb);
    case SimilarityMeasure::kContainment:
      return o / na;
  }
  return 0.0;
}

double Similarity(SimilarityMeasure m, SetView a, SetView b) {
  size_t overlap = SetView::OverlapSize(a, b);
  return SimilarityFromOverlap(m, overlap, a.size(), b.size());
}

double GroupUpperBound(SimilarityMeasure m, size_t matched,
                       size_t query_size) {
  if (query_size == 0) return 1.0;
  if (matched == 0) return 0.0;
  LES3_CHECK_LE(matched, query_size);
  // Best case: the candidate set equals R = Q ∩ S with |R| = matched, so
  // Sim(Q, R) is the bound (Theorem 3.1). Deliberately evaluated through
  // SimilarityFromOverlap — the same expression the verifiers use — so a
  // candidate that attains the bound produces the bit-identical double
  // (e.g. cosine as r / sqrt(q * r), never the differently-rounded
  // sqrt(r / q)) and >= / tie comparisons against exact similarities are
  // floating-point safe.
  return SimilarityFromOverlap(m, matched, query_size, matched);
}

size_t MinOverlapForThreshold(SimilarityMeasure m, size_t query_size,
                              double threshold) {
  if (threshold <= 0.0) return 0;
  // GroupUpperBound is monotone non-decreasing in `matched` for all supported
  // measures, so a linear scan (|Q| is small) finds the least sufficient r.
  for (size_t r = 0; r <= query_size; ++r) {
    if (GroupUpperBound(m, r, query_size) >= threshold) return r;
  }
  return query_size + 1;
}

double MaxSimForSize(SimilarityMeasure m, size_t query_size, size_t set_size) {
  return SimilarityFromOverlap(m, std::min(query_size, set_size), query_size,
                               set_size);
}

SizeBounds SizeBoundsForThreshold(SimilarityMeasure m, size_t query_size,
                                  double threshold) {
  SizeBounds bounds;  // [0, SIZE_MAX]: everything qualifies
  if (threshold <= 0.0) return bounds;
  // The exact predicate the window must preserve. MaxSimForSize rises
  // monotonically on s in [0, |Q|] and falls monotonically on s >= |Q|
  // (the double expressions stay monotone: the intermediate sums are exact
  // integers and division/sqrt round monotonically), so both boundaries
  // binary-search; a cheap linear fix-up keeps the result exact even if a
  // rounding plateau shifts the crossover by one.
  auto pass = [&](size_t s) {
    return MaxSimForSize(m, query_size, s) >= threshold;
  };
  if (!pass(query_size)) {
    // Even |S| = |Q| (best-case similarity 1) fails: threshold > 1.
    bounds.lo = 1;
    bounds.hi = 0;
    return bounds;
  }
  if (pass(0)) {
    bounds.lo = 0;
  } else {
    size_t lo = 0, hi = query_size;  // !pass(lo), pass(hi)
    while (hi - lo > 1) {
      size_t mid = lo + (hi - lo) / 2;
      (pass(mid) ? hi : lo) = mid;
    }
    bounds.lo = hi;
    while (bounds.lo > 0 && pass(bounds.lo - 1)) --bounds.lo;
  }
  // Set sizes are bounded by the SetId-addressable arena; beyond this the
  // window is effectively unbounded (containment never bounds above).
  const size_t kMaxSize = static_cast<size_t>(0xFFFFFFFFu);
  if (pass(kMaxSize)) {
    bounds.hi = static_cast<size_t>(-1);
    return bounds;
  }
  size_t lo = query_size, hi = kMaxSize;  // pass(lo), !pass(hi)
  while (hi - lo > 1) {
    size_t mid = lo + (hi - lo) / 2;
    (pass(mid) ? lo : hi) = mid;
  }
  bounds.hi = lo;
  while (bounds.hi < kMaxSize && pass(bounds.hi + 1)) ++bounds.hi;
  return bounds;
}

}  // namespace les3
