#include "embed/mds.h"

#include <cmath>

#include "core/similarity.h"
#include "embed/eigen.h"
#include "util/logging.h"
#include "util/random.h"

namespace les3 {
namespace embed {

MdsRepresentation::MdsRepresentation(const SetDatabase& db, MdsOptions opts) {
  size_t m = std::min<size_t>(opts.num_landmarks, db.size());
  LES3_CHECK_GT(m, 1u);
  dim_ = std::min(opts.dim, m - 1);

  Rng rng(opts.seed);
  auto ids = rng.SampleWithoutReplacement(static_cast<uint32_t>(db.size()),
                                          static_cast<uint32_t>(m));
  landmarks_.reserve(m);
  for (uint32_t id : ids) landmarks_.emplace_back(db.set(id));

  // Squared Jaccard-distance matrix among landmarks.
  std::vector<double> d2(m * m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i + 1; j < m; ++j) {
      double dist = 1.0 - Similarity(SimilarityMeasure::kJaccard,
                                     landmarks_[i], landmarks_[j]);
      d2[i * m + j] = d2[j * m + i] = dist * dist;
    }
  }

  // Double centering: B = -0.5 * J D2 J.
  std::vector<double> row_mean(m, 0.0);
  double grand_mean = 0.0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) row_mean[i] += d2[i * m + j];
    row_mean[i] /= static_cast<double>(m);
    grand_mean += row_mean[i];
  }
  grand_mean /= static_cast<double>(m);
  std::vector<double> b(m * m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) {
      b[i * m + j] =
          -0.5 * (d2[i * m + j] - row_mean[i] - row_mean[j] + grand_mean);
    }
  }

  EigenDecomposition eig = JacobiEigen(b, m);

  pseudo_inverse_.clear();
  for (size_t k = 0; k < dim_; ++k) {
    double lambda = eig.eigenvalues[k];
    std::vector<double> row(m, 0.0);
    if (lambda > 1e-9) {
      double inv_sqrt = 1.0 / std::sqrt(lambda);
      for (size_t j = 0; j < m; ++j) {
        row[j] = eig.eigenvectors[k][j] * inv_sqrt;
      }
    }
    pseudo_inverse_.push_back(std::move(row));
  }
  mean_sq_dist_ = row_mean;
}

void MdsRepresentation::Embed(SetId /*id*/, SetView s,
                              float* out) const {
  size_t m = landmarks_.size();
  std::vector<double> delta(m);
  for (size_t j = 0; j < m; ++j) {
    double dist =
        1.0 - Similarity(SimilarityMeasure::kJaccard, s, landmarks_[j]);
    delta[j] = dist * dist;
  }
  // x_k = -0.5 * pinv_k . (delta - mean_sq_dist).
  for (size_t k = 0; k < dim_; ++k) {
    double acc = 0.0;
    for (size_t j = 0; j < m; ++j) {
      acc += pseudo_inverse_[k][j] * (delta[j] - mean_sq_dist_[j]);
    }
    out[k] = static_cast<float>(-0.5 * acc);
  }
}

}  // namespace embed
}  // namespace les3
