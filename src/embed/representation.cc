#include "embed/representation.h"

namespace les3 {
namespace embed {

ml::Matrix EmbedDatabase(const SetRepresentation& rep, const SetDatabase& db,
                         const std::vector<SetId>* subset) {
  size_t count = subset ? subset->size() : db.size();
  ml::Matrix out(count, rep.dim());
  for (size_t i = 0; i < count; ++i) {
    SetId id = subset ? (*subset)[i] : static_cast<SetId>(i);
    rep.Embed(id, db.set(id), out.Row(i));
  }
  return out;
}

}  // namespace embed
}  // namespace les3
