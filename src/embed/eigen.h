// Symmetric eigendecomposition via cyclic Jacobi rotations.
//
// Used by classical/landmark MDS (embed/mds.h). Sizes here are small (the
// landmark count, <= a few hundred), where Jacobi is simple, robust, and
// accurate.

#ifndef LES3_EMBED_EIGEN_H_
#define LES3_EMBED_EIGEN_H_

#include <cstddef>
#include <vector>

namespace les3 {
namespace embed {

/// Result of a symmetric eigendecomposition, sorted by descending
/// eigenvalue. eigenvectors[k] is the unit eigenvector for eigenvalues[k].
struct EigenDecomposition {
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
};

/// \brief Full eigendecomposition of the symmetric n x n matrix `a`
/// (row-major, only read). Converges to off-diagonal norm < tol.
EigenDecomposition JacobiEigen(const std::vector<double>& a, size_t n,
                               double tol = 1e-10, size_t max_sweeps = 64);

}  // namespace embed
}  // namespace les3

#endif  // LES3_EMBED_EIGEN_H_
