#include "embed/pca.h"

#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace les3 {
namespace embed {
namespace {

/// Gram–Schmidt orthonormalization of `vs` in place.
void Orthonormalize(std::vector<std::vector<double>>* vs) {
  for (size_t k = 0; k < vs->size(); ++k) {
    auto& v = (*vs)[k];
    for (size_t j = 0; j < k; ++j) {
      const auto& u = (*vs)[j];
      double dot = 0.0;
      for (size_t i = 0; i < v.size(); ++i) dot += v[i] * u[i];
      for (size_t i = 0; i < v.size(); ++i) v[i] -= dot * u[i];
    }
    double norm = 0.0;
    for (double x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      // Degenerate direction; reset to a unit basis vector to keep the
      // basis full-rank.
      std::fill(v.begin(), v.end(), 0.0);
      v[k % v.size()] = 1.0;
    } else {
      for (double& x : v) x /= norm;
    }
  }
}

}  // namespace

PcaRepresentation::PcaRepresentation(const SetDatabase& db, PcaOptions opts)
    : opts_(opts), num_tokens_(db.num_tokens()) {
  LES3_CHECK_GT(num_tokens_, 0u);
  opts_.dim = std::min<size_t>(opts_.dim, num_tokens_);
  const size_t d = opts_.dim;
  const size_t n = db.size();
  const double inv_n = n > 0 ? 1.0 / static_cast<double>(n) : 0.0;

  // Token occurrence mean over distinct membership.
  mean_.assign(num_tokens_, 0.0);
  for (SetId i = 0; i < db.size(); ++i) {
    SetView s = db.set(i);
    TokenId prev = static_cast<TokenId>(-1);
    for (TokenId t : s.tokens()) {
      if (t != prev) mean_[t] += inv_n;
      prev = t;
    }
  }

  // Subspace iteration: V <- orth(C V), C = X^T X / n - mean mean^T.
  Rng rng(opts_.seed);
  components_.assign(d, std::vector<double>(num_tokens_));
  for (auto& v : components_) {
    for (auto& x : v) x = rng.NextGaussian();
  }
  Orthonormalize(&components_);

  std::vector<double> proj(d);  // per-set projections x . v_k
  for (size_t iter = 0; iter < opts_.power_iterations; ++iter) {
    std::vector<std::vector<double>> next(d,
                                          std::vector<double>(num_tokens_));
    std::vector<double> mean_dot(d, 0.0);
    for (size_t k = 0; k < d; ++k) {
      const auto& v = components_[k];
      for (uint32_t t = 0; t < num_tokens_; ++t) mean_dot[k] += mean_[t] * v[t];
    }
    for (SetId i = 0; i < db.size(); ++i) {
      SetView s = db.set(i);
      std::fill(proj.begin(), proj.end(), 0.0);
      TokenId prev = static_cast<TokenId>(-1);
      for (TokenId t : s.tokens()) {
        if (t == prev) continue;
        prev = t;
        for (size_t k = 0; k < d; ++k) proj[k] += components_[k][t];
      }
      prev = static_cast<TokenId>(-1);
      for (TokenId t : s.tokens()) {
        if (t == prev) continue;
        prev = t;
        for (size_t k = 0; k < d; ++k) next[k][t] += proj[k] * inv_n;
      }
    }
    for (size_t k = 0; k < d; ++k) {
      for (uint32_t t = 0; t < num_tokens_; ++t) {
        next[k][t] -= mean_[t] * mean_dot[k];
      }
    }
    components_ = std::move(next);
    Orthonormalize(&components_);
  }

  // Rayleigh quotients as explained-variance proxies, and the embedding
  // bias <v_k, mean>.
  component_bias_.assign(d, 0.0);
  scales_.assign(d, 0.0);
  for (size_t k = 0; k < d; ++k) {
    for (uint32_t t = 0; t < num_tokens_; ++t) {
      component_bias_[k] += components_[k][t] * mean_[t];
    }
  }
  // One more pass to estimate variance along each component.
  for (SetId i = 0; i < db.size(); ++i) {
    SetView s = db.set(i);
    std::fill(proj.begin(), proj.end(), 0.0);
    TokenId prev = static_cast<TokenId>(-1);
    for (TokenId t : s.tokens()) {
      if (t == prev) continue;
      prev = t;
      for (size_t k = 0; k < d; ++k) proj[k] += components_[k][t];
    }
    for (size_t k = 0; k < d; ++k) {
      double c = proj[k] - component_bias_[k];
      scales_[k] += c * c * inv_n;
    }
  }
}

void PcaRepresentation::Embed(SetId /*id*/, SetView s,
                              float* out) const {
  for (size_t k = 0; k < opts_.dim; ++k) {
    double acc = -component_bias_[k];
    TokenId prev = static_cast<TokenId>(-1);
    for (TokenId t : s.tokens()) {
      if (t == prev) continue;
      prev = t;
      if (t < num_tokens_) acc += components_[k][t];
    }
    out[k] = static_cast<float>(acc);
  }
}

}  // namespace embed
}  // namespace les3
