// Landmark multidimensional scaling (De Silva & Tenenbaum, the paper's
// reference [12]) over Jaccard distances: classical MDS on a landmark
// sample, then distance-based triangulation of the remaining sets. The
// representative non-linear embedding comparator of Figure 8 — and
// deliberately expensive per set (one Jaccard evaluation per landmark),
// which is the cost gap Figure 8 demonstrates.

#ifndef LES3_EMBED_MDS_H_
#define LES3_EMBED_MDS_H_

#include "embed/representation.h"

namespace les3 {
namespace embed {

struct MdsOptions {
  size_t dim = 16;         // target dimensionality
  size_t num_landmarks = 64;
  uint64_t seed = 13;
};

/// \brief Landmark MDS representation.
class MdsRepresentation : public SetRepresentation {
 public:
  /// Fits on `db`: samples landmarks, solves classical MDS among them.
  MdsRepresentation(const SetDatabase& db, MdsOptions opts = {});

  size_t dim() const override { return dim_; }
  void Embed(SetId id, SetView s, float* out) const override;
  std::string name() const override { return "MDS"; }

 private:
  size_t dim_;
  std::vector<SetRecord> landmarks_;
  // Triangulation data: pseudo_inverse_[k][j] = v_kj / sqrt(lambda_k).
  std::vector<std::vector<double>> pseudo_inverse_;
  std::vector<double> mean_sq_dist_;  // per-landmark mean squared distance
};

}  // namespace embed
}  // namespace les3

#endif  // LES3_EMBED_MDS_H_
