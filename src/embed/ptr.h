// PTR: Path-Table Representation (paper Section 5.3).
//
// Tokens are the leaves of a balanced binary tree of height h = ceil(log2
// |T|); the edge to a left child is labeled 1, to a right child 0. The path
// table stores each token's root-to-leaf path in positions [1, h] and its
// complement in positions [h+1, 2h] (Equation 16); a set's representation is
// the column-wise sum of its tokens' rows (Equation 17). The complement half
// removes collisions such as Rep({A}) = Rep({B, C}) that the half table
// suffers from, and the construction gives the Set Separation-Friendly
// Property: all sets containing a token t lie on one side of an axis-aligned
// hyperplane.
//
// The tree is implicit: token id bits ARE the path (bit = 0 means "left",
// stored as path value 1), so no tree is materialized and embedding costs
// O(|S| * h).

#ifndef LES3_EMBED_PTR_H_
#define LES3_EMBED_PTR_H_

#include "embed/representation.h"

namespace les3 {
namespace embed {

/// \brief Full path-table representation (dim = 2h).
class PtrRepresentation : public SetRepresentation {
 public:
  /// `num_tokens` fixes the tree height; ids >= num_tokens are rejected.
  explicit PtrRepresentation(uint32_t num_tokens);

  size_t dim() const override { return 2 * height_; }
  void Embed(SetId id, SetView s, float* out) const override;
  std::string name() const override { return "PTR"; }

  /// Tree height h = ceil(log2 max(2, num_tokens)).
  size_t height() const { return height_; }

  /// Path bit of `token` at depth `i` in [0, h): 1 when the path goes left.
  int PathBit(TokenId token, size_t i) const;

 private:
  uint32_t num_tokens_;
  size_t height_;
};

/// \brief Half path-table variant (positions [1, h] only) used as the
/// PTR-half comparator in Figure 8.
class PtrHalfRepresentation : public SetRepresentation {
 public:
  explicit PtrHalfRepresentation(uint32_t num_tokens) : full_(num_tokens) {}

  size_t dim() const override { return full_.height(); }
  void Embed(SetId id, SetView s, float* out) const override;
  std::string name() const override { return "PTR-half"; }

 private:
  PtrRepresentation full_;
};

}  // namespace embed
}  // namespace les3

#endif  // LES3_EMBED_PTR_H_
