#include "embed/ptr.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace les3 {
namespace embed {
namespace {

size_t TreeHeight(uint32_t num_tokens) {
  uint32_t n = std::max<uint32_t>(2, num_tokens);
  size_t h = 0;
  uint32_t capacity = 1;
  while (capacity < n) {
    capacity <<= 1;
    ++h;
  }
  return h;
}

}  // namespace

PtrRepresentation::PtrRepresentation(uint32_t num_tokens)
    : num_tokens_(std::max<uint32_t>(2, num_tokens)),
      height_(TreeHeight(num_tokens)) {}

int PtrRepresentation::PathBit(TokenId token, size_t i) const {
  LES3_CHECK_LT(i, height_);
  // Leaf index bits, most significant first; a 0 bit descends left, and left
  // edges are labeled 1 (Table 1: token A = id 0 has path 1,1).
  uint32_t bit = (token >> (height_ - 1 - i)) & 1u;
  return 1 - static_cast<int>(bit);
}

void PtrRepresentation::Embed(SetId /*id*/, SetView s,
                              float* out) const {
  std::memset(out, 0, sizeof(float) * dim());
  for (TokenId t : s.tokens()) {
    LES3_CHECK_LT(t, num_tokens_);
    for (size_t i = 0; i < height_; ++i) {
      float bit = static_cast<float>(PathBit(t, i));
      out[i] += bit;                    // positions [1, h]: the path
      out[height_ + i] += 1.0f - bit;   // positions [h+1, 2h]: complement
    }
  }
}

void PtrHalfRepresentation::Embed(SetId /*id*/, SetView s,
                                  float* out) const {
  size_t h = full_.height();
  std::memset(out, 0, sizeof(float) * h);
  for (TokenId t : s.tokens()) {
    for (size_t i = 0; i < h; ++i) {
      out[i] += static_cast<float>(full_.PathBit(t, i));
    }
  }
}

}  // namespace embed
}  // namespace les3
