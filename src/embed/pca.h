// PCA over n-hot set vectors, fitted with subspace (orthogonal power)
// iteration on the sparse data matrix — the |T| x |T| covariance is never
// materialized, so fitting stays feasible for large token universes. Used as
// the "linear embedding" comparator of Figure 8.

#ifndef LES3_EMBED_PCA_H_
#define LES3_EMBED_PCA_H_

#include "embed/representation.h"

namespace les3 {
namespace embed {

struct PcaOptions {
  size_t dim = 16;             // target dimensionality
  size_t power_iterations = 12;
  uint64_t seed = 11;
};

/// \brief PCA projection of the n-hot (distinct-token) indicator vectors.
class PcaRepresentation : public SetRepresentation {
 public:
  /// Fits the top-`opts.dim` principal components of `db`.
  PcaRepresentation(const SetDatabase& db, PcaOptions opts = {});

  size_t dim() const override { return opts_.dim; }
  void Embed(SetId id, SetView s, float* out) const override;
  std::string name() const override { return "PCA"; }

  /// Explained-variance proxies (Rayleigh quotients of the fitted
  /// components), descending.
  const std::vector<double>& component_scales() const { return scales_; }

 private:
  PcaOptions opts_;
  uint32_t num_tokens_;
  // components_[k] is the k-th principal direction, length |T|.
  std::vector<std::vector<double>> components_;
  std::vector<double> mean_;            // token occurrence frequencies
  std::vector<double> component_bias_;  // precomputed <component_k, mean>
  std::vector<double> scales_;
};

}  // namespace embed
}  // namespace les3

#endif  // LES3_EMBED_PCA_H_
