#include "embed/binary_encoding.h"

#include <algorithm>

namespace les3 {
namespace embed {

BinaryEncoding::BinaryEncoding(uint64_t num_sets) {
  uint64_t n = std::max<uint64_t>(2, num_sets);
  bits_ = 0;
  uint64_t capacity = 1;
  while (capacity < n) {
    capacity <<= 1;
    ++bits_;
  }
}

void BinaryEncoding::Embed(SetId id, SetView /*s*/,
                           float* out) const {
  for (size_t i = 0; i < bits_; ++i) {
    out[i] = static_cast<float>((id >> i) & 1u);
  }
}

}  // namespace embed
}  // namespace les3
