#include "embed/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace les3 {
namespace embed {

EigenDecomposition JacobiEigen(const std::vector<double>& a, size_t n,
                               double tol, size_t max_sweeps) {
  LES3_CHECK_EQ(a.size(), n * n);
  std::vector<double> m = a;  // working copy, symmetric
  // v starts as identity; columns accumulate the rotations.
  std::vector<double> v(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_norm = [&] {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) s += m[i * n + j] * m[i * n + j];
    }
    return std::sqrt(s);
  };

  for (size_t sweep = 0; sweep < max_sweeps && off_norm() > tol; ++sweep) {
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = m[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        double app = m[p * n + p];
        double aqq = m[q * n + q];
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Rotate rows/cols p and q of m.
        for (size_t k = 0; k < n; ++k) {
          double mkp = m[k * n + p];
          double mkq = m[k * n + q];
          m[k * n + p] = c * mkp - s * mkq;
          m[k * n + q] = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          double mpk = m[p * n + k];
          double mqk = m[q * n + k];
          m[p * n + k] = c * mpk - s * mqk;
          m[q * n + k] = s * mpk + c * mqk;
        }
        // Accumulate rotation into v (columns are eigenvectors).
        for (size_t k = 0; k < n; ++k) {
          double vkp = v[k * n + p];
          double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return m[x * n + x] > m[y * n + y];
  });

  EigenDecomposition out;
  out.eigenvalues.reserve(n);
  out.eigenvectors.reserve(n);
  for (size_t k : order) {
    out.eigenvalues.push_back(m[k * n + k]);
    std::vector<double> vec(n);
    for (size_t i = 0; i < n; ++i) vec[i] = v[i * n + k];
    out.eigenvectors.push_back(std::move(vec));
  }
  return out;
}

}  // namespace embed
}  // namespace les3
