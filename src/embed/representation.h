// Set-representation interface: maps a (multi)set to a fixed-length float
// vector that the Siamese networks consume (paper Section 5.3).
//
// Implementations: PTR and PTR-half (embed/ptr.h), Binary Encoding
// (embed/binary_encoding.h), PCA (embed/pca.h), Landmark MDS (embed/mds.h).

#ifndef LES3_EMBED_REPRESENTATION_H_
#define LES3_EMBED_REPRESENTATION_H_

#include <memory>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/set_record.h"
#include "core/types.h"
#include "ml/matrix.h"

namespace les3 {
namespace embed {

/// \brief Abstract set-to-vector encoder.
class SetRepresentation {
 public:
  virtual ~SetRepresentation() = default;

  /// Output dimensionality.
  virtual size_t dim() const = 0;

  /// Writes the representation of set `id` (whose record is `s`) into
  /// `out[0..dim())`. PTR-style encoders ignore `id`; Binary Encoding uses
  /// only `id`.
  virtual void Embed(SetId id, SetView s, float* out) const = 0;

  /// Short display name ("PTR", "PCA", ...).
  virtual std::string name() const = 0;
};

/// Embeds every set of `db` (or only `subset` when non-null, in order) into
/// a (count x dim) matrix.
ml::Matrix EmbedDatabase(const SetRepresentation& rep, const SetDatabase& db,
                         const std::vector<SetId>* subset = nullptr);

}  // namespace embed
}  // namespace les3

#endif  // LES3_EMBED_REPRESENTATION_H_
