// Binary Encoding (Han et al., reference [28]): each set's ordinal id is
// written in binary over ceil(log2 |D|) dimensions. It assigns unique codes
// but ignores token composition entirely, so it cannot have the Set
// Separation-Friendly Property — the paper's Figure 8 uses it as the
// "content-blind" comparator.

#ifndef LES3_EMBED_BINARY_ENCODING_H_
#define LES3_EMBED_BINARY_ENCODING_H_

#include "embed/representation.h"

namespace les3 {
namespace embed {

/// \brief Content-blind binary id encoding.
class BinaryEncoding : public SetRepresentation {
 public:
  /// `num_sets` fixes the code width.
  explicit BinaryEncoding(uint64_t num_sets);

  size_t dim() const override { return bits_; }
  void Embed(SetId id, SetView s, float* out) const override;
  std::string name() const override { return "BinaryEnc"; }

 private:
  size_t bits_;
};

}  // namespace embed
}  // namespace les3

#endif  // LES3_EMBED_BINARY_ENCODING_H_
