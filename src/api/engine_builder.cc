#include "api/engine_builder.h"

#include <utility>

#include "api/adapters.h"

namespace les3 {
namespace api {
namespace {

Status ValidateOptions(const SetDatabase& db, const EngineOptions& options) {
  if (db.empty()) {
    return Status::InvalidArgument("cannot build " + ToString(options.backend) +
                                   " over an empty database");
  }
  // Knobs are only validated for the backend that consumes them
  // (EngineOptions documents irrelevant fields as ignored).
  if ((options.backend == Backend::kInvIdx ||
       options.backend == Backend::kDiskInvIdx) &&
      options.invidx.knn_delta_step <= 0.0) {
    return Status::InvalidArgument("invidx.knn_delta_step must be positive");
  }
  if ((options.backend == Backend::kDualTrans ||
       options.backend == Backend::kDiskDualTrans) &&
      options.dualtrans.dims == 0) {
    return Status::InvalidArgument("dualtrans.dims must be positive");
  }
  if (IsDiskBackend(options.backend) && options.disk.page_bytes == 0) {
    return Status::InvalidArgument("disk.page_bytes must be positive");
  }
  if (options.backend == Backend::kShardedLes3 && options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<SearchEngine>> EngineBuilder::Build(
    SetDatabase db, const EngineOptions& options) {
  return Build(std::make_shared<SetDatabase>(std::move(db)), options);
}

Result<std::unique_ptr<SearchEngine>> EngineBuilder::Build(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options) {
  if (db == nullptr) {
    return Status::InvalidArgument("database must be non-null");
  }
  LES3_RETURN_NOT_OK(ValidateOptions(*db, options));
  switch (options.backend) {
    case Backend::kLes3:
      return internal::MakeLes3Engine(std::move(db), options);
    case Backend::kBruteForce:
      return internal::MakeBruteForceEngine(std::move(db), options);
    case Backend::kInvIdx:
      return internal::MakeInvIdxEngine(std::move(db), options);
    case Backend::kDualTrans:
      return internal::MakeDualTransEngine(std::move(db), options);
    case Backend::kDiskLes3:
      return internal::MakeDiskLes3Engine(std::move(db), options);
    case Backend::kDiskBruteForce:
      return internal::MakeDiskBruteForceEngine(std::move(db), options);
    case Backend::kDiskInvIdx:
      return internal::MakeDiskInvIdxEngine(std::move(db), options);
    case Backend::kDiskDualTrans:
      return internal::MakeDiskDualTransEngine(std::move(db), options);
    case Backend::kShardedLes3:
      return internal::MakeShardedEngine(std::move(db), options);
  }
  return Status::Internal("unhandled backend enum value");
}

Result<std::unique_ptr<SearchEngine>> EngineBuilder::Build(
    SetDatabase db, const std::string& backend, EngineOptions options) {
  return Build(std::make_shared<SetDatabase>(std::move(db)), backend,
               std::move(options));
}

Result<std::unique_ptr<SearchEngine>> EngineBuilder::Build(
    std::shared_ptr<SetDatabase> db, const std::string& backend,
    EngineOptions options) {
  auto parsed = ParseBackend(backend);
  if (!parsed.ok()) return parsed.status();
  options.backend = parsed.value();
  return Build(std::move(db), options);
}

Result<std::unique_ptr<SearchEngine>> EngineBuilder::Open(
    const std::string& path, const OpenOptions& options) {
  auto snapshot = persist::LoadSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  // A single-index (v1) snapshot is shared by the les3 family — an
  // explicit backend may reopen it memory- or disk-resident. A sharded
  // (v2) snapshot reopens only as the sharded engine; its per-shard
  // indexes are not a single-index artifact.
  std::string backend =
      options.backend.empty() ? snapshot.value().meta.backend
                              : options.backend;
  if (backend != "les3" && backend != "disk_les3" &&
      backend != "sharded_les3") {
    return Status::InvalidArgument(
        "snapshots hold a les3-family index; cannot open as \"" + backend +
        "\" (use \"les3\", \"disk_les3\", \"sharded_les3\", or leave the "
        "backend empty)");
  }
  bool snapshot_sharded =
      snapshot.value().version == persist::kSnapshotVersionSharded;
  if (snapshot_sharded != (backend == "sharded_les3")) {
    return Status::InvalidArgument(
        snapshot_sharded
            ? "this is a sharded (v2) snapshot; it reopens only as "
              "\"sharded_les3\""
            : "this is a single-index (v1) snapshot; it cannot reopen as "
              "\"sharded_les3\"");
  }
  if (options.disk.page_bytes == 0) {
    return Status::InvalidArgument("disk.page_bytes must be positive");
  }
  return internal::OpenSnapshotEngine(std::move(snapshot).ValueOrDie(),
                                      backend, options);
}

}  // namespace api
}  // namespace les3
