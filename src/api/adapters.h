// Per-backend SearchEngine factories. Internal to the api layer — callers
// go through EngineBuilder, which validates options and dispatches here.
// Every factory shares the one owned database it is handed; no backend
// copies the sets.

#ifndef LES3_API_ADAPTERS_H_
#define LES3_API_ADAPTERS_H_

#include <memory>

#include "api/engine_options.h"
#include "api/search_engine.h"
#include "persist/snapshot.h"

namespace les3 {
namespace api {
namespace internal {

std::unique_ptr<SearchEngine> MakeLes3Engine(std::shared_ptr<SetDatabase> db,
                                             const EngineOptions& options);
std::unique_ptr<SearchEngine> MakeBruteForceEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options);
std::unique_ptr<SearchEngine> MakeInvIdxEngine(std::shared_ptr<SetDatabase> db,
                                               const EngineOptions& options);
std::unique_ptr<SearchEngine> MakeDualTransEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options);
std::unique_ptr<SearchEngine> MakeDiskLes3Engine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options);
std::unique_ptr<SearchEngine> MakeDiskBruteForceEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options);
std::unique_ptr<SearchEngine> MakeDiskInvIdxEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options);
std::unique_ptr<SearchEngine> MakeDiskDualTransEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options);
std::unique_ptr<SearchEngine> MakeShardedEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options);

/// Reconstructs a les3, disk_les3, or sharded_les3 engine from a decoded
/// snapshot — zero partitioning/training work. `backend` must be one of
/// those names, already checked against the snapshot version
/// (EngineBuilder::Open resolves the default and the pairing beforehand).
std::unique_ptr<SearchEngine> OpenSnapshotEngine(
    persist::LoadedSnapshot snapshot, const std::string& backend,
    const OpenOptions& options);

}  // namespace internal
}  // namespace api
}  // namespace les3

#endif  // LES3_API_ADAPTERS_H_
