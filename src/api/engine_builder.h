// EngineBuilder: the one entry point that turns a database plus options
// into any searcher the repo ships.
//
//   auto engine = les3::api::EngineBuilder::Build(std::move(db), "les3");
//   if (!engine.ok()) { ... }
//   auto top10 = engine.value()->Knn(query, 10);
//
// Build validates the options, runs whatever construction the backend
// needs (L2P training for les3/disk_les3, posting lists for invidx, ...),
// and returns the engine behind the SearchEngine interface. The overloads
// taking a shared_ptr let several engines search one owned database —
// the parity tests and comparison benches build every backend that way.

#ifndef LES3_API_ENGINE_BUILDER_H_
#define LES3_API_ENGINE_BUILDER_H_

#include <memory>
#include <string>

#include "api/engine_options.h"
#include "api/search_engine.h"
#include "core/database.h"
#include "util/status.h"

namespace les3 {
namespace api {

class EngineBuilder {
 public:
  /// Builds the backend selected by `options.backend`, taking ownership of
  /// `db`. InvalidArgument on an empty database or bad knobs.
  static Result<std::unique_ptr<SearchEngine>> Build(
      SetDatabase db, const EngineOptions& options = {});

  /// Same, over a database shared with other engines. `db` must be
  /// non-null; treat it as read-only while any sibling engine exists
  /// (Insert through one engine does not rebuild the others' indexes).
  static Result<std::unique_ptr<SearchEngine>> Build(
      std::shared_ptr<SetDatabase> db, const EngineOptions& options = {});

  /// By-name construction: `backend` is a canonical name from
  /// BackendNames(); remaining knobs come from `options`.
  static Result<std::unique_ptr<SearchEngine>> Build(
      SetDatabase db, const std::string& backend,
      EngineOptions options = {});
  static Result<std::unique_ptr<SearchEngine>> Build(
      std::shared_ptr<SetDatabase> db, const std::string& backend,
      EngineOptions options = {});

  /// \brief Reopens a snapshot written by SearchEngine::Save.
  ///
  /// Runs zero partitioning/training work: the database, assignment, TGM
  /// columns, and (if persisted) L2P weights come straight off the file,
  /// and the reloaded engine answers every query exactly as the engine
  /// that was saved (the save/load differential property tests hold both
  /// to that). Describe() reflects the snapshot provenance. Malformed or
  /// corrupted files return a Status — never a crash.
  static Result<std::unique_ptr<SearchEngine>> Open(
      const std::string& path, const OpenOptions& options = {});
};

}  // namespace api
}  // namespace les3

#endif  // LES3_API_ENGINE_BUILDER_H_
