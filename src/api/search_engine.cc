#include "api/search_engine.h"

namespace les3 {
namespace api {

ThreadPool& SearchEngine::pool() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(batch_threads_);
  return *pool_;
}

std::vector<QueryResult> SearchEngine::KnnBatch(
    const std::vector<SetRecord>& queries, size_t k) const {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) return results;
  pool().ParallelFor(queries.size(),
                     [&](size_t i) { results[i] = Knn(queries[i], k); });
  return results;
}

std::vector<QueryResult> SearchEngine::RangeBatch(
    const std::vector<SetRecord>& queries, double delta) const {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) return results;
  pool().ParallelFor(queries.size(),
                     [&](size_t i) { results[i] = Range(queries[i], delta); });
  return results;
}

Result<SetId> SearchEngine::Insert(SetRecord) {
  return Status::NotSupported(Describe() + " does not support inserts");
}

Status SearchEngine::Save(const std::string&) const {
  return Status::NotSupported(Describe() + " does not support snapshots");
}

}  // namespace api
}  // namespace les3
