#include "api/search_engine.h"

#include <cmath>

namespace les3 {
namespace api {

namespace {

QueryResult NonFiniteDeltaResult(double delta) {
  QueryResult result;
  result.status = Status::InvalidArgument(
      "range delta must be finite, got " + std::to_string(delta));
  return result;
}

}  // namespace

ThreadPool& SearchEngine::pool() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  if (!pool_) pool_ = std::make_unique<ThreadPool>(batch_threads_);
  return *pool_;
}

std::vector<QueryResult> SearchEngine::KnnBatch(
    const std::vector<SetRecord>& queries, size_t k) const {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) return results;
  pool().ParallelFor(queries.size(),
                     [&](size_t i) { results[i] = Knn(queries[i], k); });
  return results;
}

QueryResult SearchEngine::Range(SetView query, double delta) const {
  if (!std::isfinite(delta)) return NonFiniteDeltaResult(delta);
  return RangeImpl(query, delta);
}

std::vector<QueryResult> SearchEngine::RangeBatch(
    const std::vector<SetRecord>& queries, double delta) const {
  if (!std::isfinite(delta)) {
    return std::vector<QueryResult>(queries.size(),
                                    NonFiniteDeltaResult(delta));
  }
  return RangeBatchImpl(queries, delta);
}

std::vector<QueryResult> SearchEngine::RangeBatchImpl(
    const std::vector<SetRecord>& queries, double delta) const {
  std::vector<QueryResult> results(queries.size());
  if (queries.empty()) return results;
  pool().ParallelFor(queries.size(), [&](size_t i) {
    results[i] = RangeImpl(queries[i], delta);
  });
  return results;
}

Result<SetId> SearchEngine::Insert(SetRecord) {
  return Status::NotSupported(Describe() + " does not support inserts");
}

Status SearchEngine::Delete(SetId) {
  return Status::NotSupported(Describe() + " does not support deletes");
}

Status SearchEngine::Update(SetId, SetRecord) {
  return Status::NotSupported(Describe() + " does not support updates");
}

Result<search::MaintenanceReport> SearchEngine::MaintainNow() {
  return Status::NotSupported(Describe() +
                              " does not support on-demand maintenance");
}

std::shared_ptr<const SetDatabase> SearchEngine::StableDb() const {
  // Non-owning alias of the live database: engines on the default
  // (serialized-mutation) contract need no copy, because the caller must
  // already keep mutations off this engine while reading. The sharded
  // engine overrides this with a locked copy.
  return std::shared_ptr<const SetDatabase>(std::shared_ptr<void>(), &db());
}

Status SearchEngine::Save(const std::string&) const {
  return Status::NotSupported(Describe() + " does not support snapshots");
}

}  // namespace api
}  // namespace les3
