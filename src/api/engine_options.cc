#include "api/engine_options.h"

namespace les3 {
namespace api {
namespace {

// Index == static_cast<size_t>(Backend); keep in enum order.
const char* const kBackendNames[] = {
    "les3",      "brute_force",      "invidx",      "dualtrans",
    "disk_les3", "disk_brute_force", "disk_invidx", "disk_dualtrans",
    "sharded_les3",
};

constexpr size_t kNumBackends =
    sizeof(kBackendNames) / sizeof(kBackendNames[0]);

}  // namespace

std::string ToString(Backend backend) {
  return kBackendNames[static_cast<size_t>(backend)];
}

Result<Backend> ParseBackend(const std::string& name) {
  for (size_t i = 0; i < kNumBackends; ++i) {
    if (name == kBackendNames[i]) return static_cast<Backend>(i);
  }
  std::string known;
  for (const auto& n : BackendNames()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  return Status::InvalidArgument("unknown backend \"" + name +
                                 "\" (known: " + known + ")");
}

const std::vector<std::string>& BackendNames() {
  static const std::vector<std::string> names(kBackendNames,
                                              kBackendNames + kNumBackends);
  return names;
}

bool IsDiskBackend(Backend backend) {
  switch (backend) {
    case Backend::kDiskLes3:
    case Backend::kDiskBruteForce:
    case Backend::kDiskInvIdx:
    case Backend::kDiskDualTrans:
      return true;
    default:
      return false;
  }
}

}  // namespace api
}  // namespace les3
