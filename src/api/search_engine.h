// The unified query interface over every searcher in the repo.
//
// All backends — LES3 (the paper's method), the comparison baselines of
// Figures 11-13, and the disk-resident variants — answer the same exact
// kNN / range queries; only their pruning strategy and cost profile differ.
// SearchEngine makes that interchangeability explicit: one polymorphic
// interface returning one QueryResult, so benches, examples, tools, and
// future scale work (sharding, caching, async) are written once against
// the interface instead of once per backend. Engines are obtained from
// EngineBuilder (api/engine_builder.h).
//
// Thread-safety: Knn/Range are const and safe to call concurrently;
// KnnBatch/RangeBatch exploit that via util/thread_pool.h. The mutating
// ops (Insert/Delete/Update) share one per-backend contract: on the
// single-index backends they are NOT safe concurrently with queries on
// the same engine, while the sharded engine (shard/sharded_engine.h,
// backend "sharded_les3") guards each shard with a reader-writer lock so
// every mutating op IS safe concurrently with queries and with other
// mutations — see docs/sharding.md and docs/mutability.md. db() returns a
// bare reference and therefore inherits the single-index contract even on
// the sharded engine; use StableDb() wherever mutations may run
// concurrently.

#ifndef LES3_API_SEARCH_ENGINE_H_
#define LES3_API_SEARCH_ENGINE_H_

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/set_record.h"
#include "core/types.h"
#include "search/maintenance.h"
#include "search/query_stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace les3 {
namespace api {

/// Simulated I/O accounting of one query on a disk-resident backend
/// (storage/disk.h cost model).
struct DiskIoStats {
  double io_ms = 0.0;
  uint64_t seeks = 0;
  uint64_t pages = 0;
};

/// \brief Outcome of one query, identical in shape across all backends.
struct QueryResult {
  std::vector<Hit> hits;      // descending similarity, ties by ascending id
  search::QueryStats stats;   // candidates / PE / CPU micros
  std::optional<DiskIoStats> io;  // engaged only on disk backends

  /// OK for every answered query. Non-OK (with empty hits) when the
  /// request itself was rejected before reaching the backend — e.g.
  /// Range with a non-finite delta returns InvalidArgument.
  Status status = Status::OK();

  /// End-to-end latency: CPU time plus simulated I/O time (if any) — the
  /// quantity Figures 12 and 13 report.
  double TotalMs() const {
    return stats.micros / 1000.0 + (io ? io->io_ms : 0.0);
  }
};

/// \brief Abstract exact set-similarity searcher.
///
/// Implementations adapt one concrete backend (api/adapters.cc). The base
/// class provides thread-pooled batch queries on top of the virtual
/// single-query entry points; backends with a smarter multi-query plan may
/// override the batch methods.
class SearchEngine {
 public:
  virtual ~SearchEngine() = default;

  SearchEngine(const SearchEngine&) = delete;
  SearchEngine& operator=(const SearchEngine&) = delete;

  /// Exact kNN (Definition 2.1): the k most similar sets.
  virtual QueryResult Knn(SetView query, size_t k) const = 0;

  /// Exact range search (Definition 2.2): all sets with Sim >= delta.
  /// Non-virtual template method: validates the request (a non-finite
  /// delta yields an InvalidArgument QueryResult — letting NaN reach the
  /// kernels' double->size_t threshold cast would be undefined behavior)
  /// and then dispatches to the backend's RangeImpl.
  QueryResult Range(SetView query, double delta) const;

  /// Answers every query independently across the engine's thread pool.
  /// results[i] is exactly what Knn(queries[i], k) returns.
  virtual std::vector<QueryResult> KnnBatch(
      const std::vector<SetRecord>& queries, size_t k) const;

  /// Batch counterpart of Range; results[i] == Range(queries[i], delta).
  /// Validates delta once up front (same contract as Range), then
  /// dispatches to RangeBatchImpl.
  std::vector<QueryResult> RangeBatch(const std::vector<SetRecord>& queries,
                                      double delta) const;

  /// Inserts a set into the database and index, returning its id. Backends
  /// whose index cannot absorb inserts return NotSupported. Mutates the
  /// database shared with any sibling engines built over it.
  virtual Result<SetId> Insert(SetRecord set);

  /// Deletes set `id` from the database and index. The id is tombstoned,
  /// never reused, and can no longer appear in any result (including the
  /// kNN zero-similarity backfill). NotFound when `id` is out of range or
  /// already deleted; NotSupported on backends without mutation support.
  virtual Status Delete(SetId id);

  /// Replaces set `id` with new content, keeping the same id (the index
  /// re-routes it as a Section 6 insertion). NotFound when `id` is out of
  /// range or deleted; NotSupported on backends without mutation support.
  virtual Status Update(SetId id, SetRecord set);

  /// Runs one synchronous maintenance pass (docs/mutability.md): pays down
  /// stale-bit debt and splits overgrown groups, returning the ops
  /// counters. Exactness-preserving — answers before and after are
  /// identical. NotSupported on backends without self-healing maintenance;
  /// the sharded engine overrides it (one bounded cycle per shard).
  virtual Result<search::MaintenanceReport> MaintainNow();

  /// Whether the mutating ops (Insert/Delete/Update) are safe concurrently
  /// with Knn/Range (and with each other) on this engine — the sharded
  /// engine's upgraded contract. Layers that interleave reads and writes
  /// on one engine (the network server, serve/server.h) key their locking
  /// off this: when false they serialize mutations against queries
  /// themselves.
  virtual bool SupportsConcurrentInsert() const { return false; }

  /// Persists the built index as a versioned snapshot
  /// (docs/snapshot_format.md) that EngineBuilder::Open reloads without
  /// any partitioning or training work. Supported by the les3-family
  /// backends (les3, disk_les3); others return NotSupported. Not safe
  /// concurrently with Insert on the same engine.
  virtual Status Save(const std::string& path) const;

  /// Index footprint in bytes (Figure 11's metric); 0 for index-free
  /// backends such as brute force.
  virtual uint64_t IndexBytes() const = 0;

  /// One-line human-readable description: backend name + active knobs.
  virtual std::string Describe() const = 0;

  /// The database this engine searches. NOT safe concurrently with the
  /// mutating ops, even on engines whose SupportsConcurrentInsert() is
  /// true — the reference bypasses their locks. Use StableDb() there.
  virtual const SetDatabase& db() const = 0;

  /// A database view that is safe to read while mutations run. On engines
  /// without concurrent-mutation support this aliases the live database
  /// (no copy — the caller already must not mutate concurrently, per the
  /// contract above); the sharded engine overrides it to return a private
  /// copy taken under its locks, a consistent point-in-time snapshot that
  /// later mutations never touch (O(|D|) per call — a tooling/inspection
  /// path, not a query path).
  virtual std::shared_ptr<const SetDatabase> StableDb() const;

 protected:
  /// `batch_threads` sizes the lazily created batch pool (0 = hardware
  /// concurrency).
  explicit SearchEngine(size_t batch_threads = 0)
      : batch_threads_(batch_threads) {}

  /// Backend range search; delta is guaranteed finite here (the public
  /// Range validated it).
  virtual QueryResult RangeImpl(SetView query, double delta) const = 0;

  /// Backend batch range search; the base implementation fans RangeImpl
  /// out across pool(). Subclasses with a smarter multi-query plan (the
  /// sharded engine's striped batches) override this.
  virtual std::vector<QueryResult> RangeBatchImpl(
      const std::vector<SetRecord>& queries, double delta) const;

  /// The engine's pool, created on first use. Subclasses that fan out
  /// (the sharded engine's scatter and striped batches) share it; tasks
  /// submitted to it must never submit to it again (ThreadPool is not
  /// reentrant), which is why such subclasses override the batch methods
  /// instead of layering them over Knn/Range.
  ThreadPool& pool() const;

 private:
  size_t batch_threads_;
  mutable std::mutex pool_mu_;
  mutable std::unique_ptr<ThreadPool> pool_;
};

}  // namespace api
}  // namespace les3

#endif  // LES3_API_SEARCH_ENGINE_H_
