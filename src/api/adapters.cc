// SearchEngine adapters over the seven concrete searchers (plus disk brute
// force). Two class templates cover the common shapes — memory indexes
// answering (query, x, QueryStats*) and disk indexes answering with a
// DiskQueryResult — so each backend is one instantiation plus a describe
// string. Every adapter shares the one owned SetDatabase it is built
// over — the baselines hold a raw pointer into it, the LES3 index holds
// the shared_ptr itself.

#include "api/adapters.h"

#include <algorithm>
#include <utility>

#include "baselines/brute_force.h"
#include "baselines/dualtrans.h"
#include "baselines/invidx.h"
#include "search/builder.h"
#include "search/les3_index.h"
#include "shard/sharded_engine.h"
#include "storage/disk_search.h"

namespace les3 {
namespace api {
namespace internal {
namespace {

QueryResult FromHits(std::vector<Hit> hits, const search::QueryStats& stats) {
  QueryResult result;
  result.hits = std::move(hits);
  result.stats = stats;
  return result;
}

QueryResult FromDisk(storage::DiskQueryResult r) {
  QueryResult result;
  result.hits = std::move(r.hits);
  result.stats = r.stats;
  result.io = DiskIoStats{r.io_ms, r.seeks, r.pages};
  return result;
}

std::string DescribeMeasure(const EngineOptions& options) {
  return "measure=" + ToString(options.measure);
}

/// Appends the live/deleted population to a describe string once holes
/// exist (Describe() must not count tombstoned ids as data; without holes
/// the string is unchanged, so describe-sensitive callers see no churn).
std::string AppendPopulation(const std::string& describe,
                             const SetDatabase& db) {
  if (db.num_deleted() == 0) return describe;
  return describe + " [live=" + std::to_string(db.num_live()) +
         ", deleted=" + std::to_string(db.num_deleted()) + "]";
}

/// Shared describe tail for the les3-family engines: group count, bitmap
/// backend, persisted-model count, and snapshot provenance.
std::string DescribeLes3(SimilarityMeasure measure, uint32_t groups,
                         bitmap::BitmapBackend bitmap_backend,
                         size_t num_models, bool from_snapshot) {
  std::string s = "measure=" + ToString(measure) +
                  ", groups=" + std::to_string(groups) +
                  ", bitmap=" + bitmap::ToString(bitmap_backend);
  if (num_models > 0) s += ", l2p_models=" + std::to_string(num_models);
  if (from_snapshot) {
    s += ", snapshot=v" + std::to_string(persist::kSnapshotVersion);
  }
  return s;
}

baselines::InvIdxOptions InvIdxFrom(const EngineOptions& options) {
  baselines::InvIdxOptions o = options.invidx;
  o.measure = options.measure;
  return o;
}

baselines::DualTransOptions DualTransFrom(const EngineOptions& options) {
  baselines::DualTransOptions o = options.dualtrans;
  o.measure = options.measure;
  return o;
}

/// Index footprint; the scan baselines keep no index at all.
uint64_t IndexBytesOf(const baselines::BruteForce&) { return 0; }
uint64_t IndexBytesOf(const storage::DiskBruteForce&) { return 0; }
template <typename Index>
uint64_t IndexBytesOf(const Index& index) {
  return index.IndexBytes();
}

/// Adapter for memory-resident indexes: Knn/Range(query, x, QueryStats*).
template <typename Index>
class MemoryEngine : public SearchEngine {
 public:
  MemoryEngine(std::shared_ptr<SetDatabase> db, Index index,
               std::string describe, const EngineOptions& options)
      : SearchEngine(options.num_threads),
        db_(std::move(db)),
        index_(std::move(index)),
        describe_(std::move(describe)) {}

  QueryResult Knn(SetView query, size_t k) const override {
    search::QueryStats stats;
    auto hits = index_.Knn(query, k, &stats);
    return FromHits(std::move(hits), stats);
  }

  uint64_t IndexBytes() const override { return IndexBytesOf(index_); }
  std::string Describe() const override { return describe_; }
  const SetDatabase& db() const override { return *db_; }

 protected:
  QueryResult RangeImpl(SetView query, double delta) const override {
    search::QueryStats stats;
    auto hits = index_.Range(query, delta, &stats);
    return FromHits(std::move(hits), stats);
  }

  std::shared_ptr<SetDatabase> db_;
  Index index_;
  std::string describe_;
};

/// Adapter for disk-resident indexes: Knn/Range return DiskQueryResult.
/// Inserts stay unsupported: the on-disk layouts are computed at build
/// time.
template <typename Index>
class DiskEngine : public SearchEngine {
 public:
  DiskEngine(std::shared_ptr<SetDatabase> db, Index index,
             std::string describe, const EngineOptions& options)
      : SearchEngine(options.num_threads),
        db_(std::move(db)),
        index_(std::move(index)),
        describe_(std::move(describe)) {}

  QueryResult Knn(SetView query, size_t k) const override {
    return FromDisk(index_.Knn(query, k));
  }

  uint64_t IndexBytes() const override { return IndexBytesOf(index_); }
  std::string Describe() const override { return describe_; }
  const SetDatabase& db() const override { return *db_; }

 protected:
  QueryResult RangeImpl(SetView query, double delta) const override {
    return FromDisk(index_.Range(query, delta));
  }

  std::shared_ptr<SetDatabase> db_;
  Index index_;
  std::string describe_;
};

/// LES3 absorbs inserts (Section 6) and persists as a snapshot; the index
/// shares the adapter's db. `l2p_models` is the trained-partitioner
/// snapshot carried for Save() — nothing on the query/insert path reads
/// it (Section 6 routes inserts through the TGM), so an engine without
/// persisted weights behaves identically.
class Les3Engine : public MemoryEngine<search::Les3Index> {
 public:
  Les3Engine(std::shared_ptr<SetDatabase> db, search::Les3Index index,
             std::string describe, const EngineOptions& options,
             std::vector<l2p::CascadeModelSnapshot> l2p_models)
      : MemoryEngine(std::move(db), std::move(index), std::move(describe),
                     options),
        l2p_models_(std::move(l2p_models)) {}

  Result<SetId> Insert(SetRecord set) override {
    return index_.Insert(std::move(set));
  }

  Status Delete(SetId id) override {
    if (!index_.Delete(id)) {
      return Status::NotFound("no live set with id " + std::to_string(id));
    }
    return Status::OK();
  }

  Status Update(SetId id, SetRecord set) override {
    if (!index_.Update(id, std::move(set))) {
      return Status::NotFound("no live set with id " + std::to_string(id));
    }
    return Status::OK();
  }

  /// The static describe string plus the current live/deleted counts —
  /// mutation makes the population dynamic, so Describe() reports it at
  /// call time instead of freezing construction-time numbers. Once
  /// mutation has left debt behind, the dirt counters (stale column bits)
  /// and arena garbage tokens are appended too, so the memory the index
  /// reports is attributable.
  std::string Describe() const override {
    std::string s = AppendPopulation(describe_, *db_);
    uint64_t dirt = index_.tgm().TotalDirt();
    uint64_t garbage = db_->GarbageTokens();
    if (dirt != 0 || garbage != 0) {
      s += " [dirt=" + std::to_string(dirt) +
           ", garbage_tokens=" + std::to_string(garbage) + "]";
    }
    return s;
  }

  /// One bounded maintenance cycle. Same concurrency contract as the
  /// other mutating ops on this backend: not safe concurrently with
  /// queries (the server serializes it behind its engine lock).
  Result<search::MaintenanceReport> MaintainNow() override {
    return search::MaintainIndexOnce(&index_, search::MaintenanceOptions());
  }

  /// Batched queries run the column-major batched probe: the batch is cut
  /// into chunks and each chunk executes one fused Les3Index::KnnBatch /
  /// RangeBatch call on a pool thread — one column walk per (chunk,
  /// column) instead of per (query, column). Chunking keeps the Q x groups
  /// scratch matrix cache-resident and the pool busy on large batches.
  std::vector<QueryResult> KnnBatch(const std::vector<SetRecord>& queries,
                                    size_t k) const override {
    return ChunkedBatch(queries,
                        [&](const SetView* views, size_t n,
                            std::vector<std::vector<Hit>>* hits,
                            std::vector<search::QueryStats>* stats) {
                          index_.KnnBatch(views, n, k, hits, stats);
                        });
  }

  Status Save(const std::string& path) const override {
    persist::SnapshotMeta meta;
    meta.backend = "les3";
    meta.measure = index_.measure();
    meta.bitmap_backend = index_.bitmap_backend();
    return persist::SaveSnapshot(path, meta, *db_, index_.tgm(),
                                 l2p_models_);
  }

 protected:
  std::vector<QueryResult> RangeBatchImpl(
      const std::vector<SetRecord>& queries, double delta) const override {
    return ChunkedBatch(queries,
                        [&](const SetView* views, size_t n,
                            std::vector<std::vector<Hit>>* hits,
                            std::vector<search::QueryStats>* stats) {
                          index_.RangeBatch(views, n, delta, hits, stats);
                        });
  }

 private:
  /// Queries per fused probe. Large enough to amortize the shared column
  /// walk, small enough that the counts matrix (chunk x groups x 4 bytes)
  /// stays in cache and chunks spread across the pool.
  static constexpr size_t kBatchChunk = 64;

  template <typename RunChunk>
  std::vector<QueryResult> ChunkedBatch(const std::vector<SetRecord>& queries,
                                        const RunChunk& run_chunk) const {
    std::vector<QueryResult> results(queries.size());
    if (queries.empty()) return results;
    const size_t num_chunks =
        (queries.size() + kBatchChunk - 1) / kBatchChunk;
    pool().ParallelFor(num_chunks, [&](size_t c) {
      const size_t begin = c * kBatchChunk;
      const size_t end = std::min(begin + kBatchChunk, queries.size());
      std::vector<SetView> views;
      views.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) views.push_back(queries[i].view());
      std::vector<std::vector<Hit>> hits;
      std::vector<search::QueryStats> stats;
      run_chunk(views.data(), views.size(), &hits, &stats);
      for (size_t i = begin; i < end; ++i) {
        results[i].hits = std::move(hits[i - begin]);
        results[i].stats = stats[i - begin];
      }
    });
    return results;
  }

  std::vector<l2p::CascadeModelSnapshot> l2p_models_;
};

/// Disk-resident LES3 persists through the same snapshot format (the
/// GroupContiguous layout is regenerated from the assignment on reload,
/// so only the matrix travels).
class DiskLes3Engine : public DiskEngine<storage::DiskLes3> {
 public:
  DiskLes3Engine(std::shared_ptr<SetDatabase> db, storage::DiskLes3 index,
                 std::string describe, const EngineOptions& options,
                 std::vector<l2p::CascadeModelSnapshot> l2p_models)
      : DiskEngine(std::move(db), std::move(index), std::move(describe),
                   options),
        l2p_models_(std::move(l2p_models)) {}

  Status Save(const std::string& path) const override {
    persist::SnapshotMeta meta;
    meta.backend = "disk_les3";
    meta.measure = index_.measure();
    meta.bitmap_backend = index_.tgm().bitmap_backend();
    return persist::SaveSnapshot(path, meta, *db_, index_.tgm(),
                                 l2p_models_);
  }

 private:
  std::vector<l2p::CascadeModelSnapshot> l2p_models_;
};

/// A scan has no index to maintain, so mutations are pure database edits
/// (the scan skips tombstoned ids). This keeps brute force usable as the
/// mutation oracle of the differential property suite.
class BruteForceEngine : public MemoryEngine<baselines::BruteForce> {
 public:
  using MemoryEngine::MemoryEngine;

  Result<SetId> Insert(SetRecord set) override {
    return db_->AddSet(std::move(set));
  }

  Status Delete(SetId id) override {
    if (!db_->DeleteSet(id)) {
      return Status::NotFound("no live set with id " + std::to_string(id));
    }
    return Status::OK();
  }

  Status Update(SetId id, SetRecord set) override {
    if (!db_->ReplaceSet(id, std::move(set))) {
      return Status::NotFound("no live set with id " + std::to_string(id));
    }
    return Status::OK();
  }

  std::string Describe() const override {
    return AppendPopulation(describe_, *db_);
  }
};

}  // namespace

std::unique_ptr<SearchEngine> MakeLes3Engine(std::shared_ptr<SetDatabase> db,
                                             const EngineOptions& options) {
  // The single-index engine is the 1-shard special case of the build
  // path: it goes through the same BuildIndexOverShared the sharded
  // engine runs once per shard.
  search::Les3BuildOptions build;
  build.measure = options.measure;
  build.num_groups = options.num_groups;
  build.cascade = options.cascade;
  build.cascade.keep_models = options.keep_l2p_models;
  build.bitmap_backend = options.bitmap_backend;
  l2p::CascadeResult cascade_result;
  search::Les3Index index = search::BuildIndexOverShared(
      db, build, options.keep_l2p_models ? &cascade_result : nullptr);
  uint32_t groups = index.tgm().num_groups();
  return std::make_unique<Les3Engine>(
      std::move(db), std::move(index),
      "les3(" + DescribeLes3(options.measure, groups,
                             options.bitmap_backend,
                             cascade_result.models.size(),
                             /*from_snapshot=*/false) +
          ")",
      options, std::move(cascade_result.models));
}

std::unique_ptr<SearchEngine> MakeShardedEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options) {
  return shard::ShardedEngine::Build(std::move(db), options);
}

std::unique_ptr<SearchEngine> MakeBruteForceEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options) {
  baselines::BruteForce scan(db.get(), options.measure);
  return std::make_unique<BruteForceEngine>(
      std::move(db), std::move(scan),
      "brute_force(" + DescribeMeasure(options) + ")", options);
}

std::unique_ptr<SearchEngine> MakeInvIdxEngine(std::shared_ptr<SetDatabase> db,
                                               const EngineOptions& options) {
  baselines::InvIdx index(db.get(), InvIdxFrom(options));
  return std::make_unique<MemoryEngine<baselines::InvIdx>>(
      std::move(db), std::move(index),
      "invidx(" + DescribeMeasure(options) + ", knn_delta_step=" +
          std::to_string(options.invidx.knn_delta_step) + ")",
      options);
}

std::unique_ptr<SearchEngine> MakeDualTransEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options) {
  baselines::DualTrans index(db.get(), DualTransFrom(options));
  return std::make_unique<MemoryEngine<baselines::DualTrans>>(
      std::move(db), std::move(index),
      "dualtrans(" + DescribeMeasure(options) +
          ", dims=" + std::to_string(options.dualtrans.dims) + ")",
      options);
}

std::unique_ptr<SearchEngine> MakeDiskLes3Engine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options) {
  uint32_t groups = search::ResolveNumGroups(*db, options.num_groups);
  l2p::CascadeOptions cascade = options.cascade;
  cascade.keep_models = options.keep_l2p_models;
  l2p::CascadeResult cascade_result;
  auto part = search::PartitionWithL2P(
      *db, groups, options.measure, cascade,
      options.keep_l2p_models ? &cascade_result : nullptr);
  storage::DiskLes3 index(db.get(), part.assignment, part.num_groups,
                          options.measure, options.disk,
                          options.bitmap_backend);
  return std::make_unique<DiskLes3Engine>(
      std::move(db), std::move(index),
      "disk_les3(" + DescribeLes3(options.measure, part.num_groups,
                                  options.bitmap_backend,
                                  cascade_result.models.size(),
                                  /*from_snapshot=*/false) +
          ")",
      options, std::move(cascade_result.models));
}

std::unique_ptr<SearchEngine> OpenSnapshotEngine(
    persist::LoadedSnapshot snapshot, const std::string& backend,
    const OpenOptions& options) {
  if (backend == "sharded_les3") {
    return shard::ShardedEngine::FromSnapshot(std::move(snapshot), options);
  }
  EngineOptions engine_options;
  engine_options.num_threads = options.num_threads;
  std::string describe_tail =
      DescribeLes3(snapshot.meta.measure, snapshot.tgm.num_groups(),
                   snapshot.meta.bitmap_backend, snapshot.models.size(),
                   /*from_snapshot=*/true);
  if (backend == "disk_les3") {
    storage::DiskLes3 index(snapshot.db.get(), std::move(snapshot.tgm),
                            snapshot.meta.measure, options.disk);
    return std::make_unique<DiskLes3Engine>(
        std::move(snapshot.db), std::move(index),
        "disk_les3(" + describe_tail + ")", engine_options,
        std::move(snapshot.models));
  }
  search::Les3Index index(snapshot.db, std::move(snapshot.tgm),
                          snapshot.meta.measure);
  return std::make_unique<Les3Engine>(
      std::move(snapshot.db), std::move(index), "les3(" + describe_tail + ")",
      engine_options, std::move(snapshot.models));
}

std::unique_ptr<SearchEngine> MakeDiskBruteForceEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options) {
  storage::DiskBruteForce index(db.get(), options.measure, options.disk);
  return std::make_unique<DiskEngine<storage::DiskBruteForce>>(
      std::move(db), std::move(index),
      "disk_brute_force(" + DescribeMeasure(options) + ")", options);
}

std::unique_ptr<SearchEngine> MakeDiskInvIdxEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options) {
  storage::DiskInvIdx index(db.get(), InvIdxFrom(options), options.disk);
  return std::make_unique<DiskEngine<storage::DiskInvIdx>>(
      std::move(db), std::move(index),
      "disk_invidx(" + DescribeMeasure(options) + ")", options);
}

std::unique_ptr<SearchEngine> MakeDiskDualTransEngine(
    std::shared_ptr<SetDatabase> db, const EngineOptions& options) {
  storage::DiskDualTrans index(db.get(), DualTransFrom(options),
                               options.disk);
  return std::make_unique<DiskEngine<storage::DiskDualTrans>>(
      std::move(db), std::move(index),
      "disk_dualtrans(" + DescribeMeasure(options) +
          ", dims=" + std::to_string(options.dualtrans.dims) + ")",
      options);
}

}  // namespace internal
}  // namespace api
}  // namespace les3
