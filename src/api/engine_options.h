// Backend selection and construction knobs for the unified SearchEngine
// API. One EngineOptions struct configures every searcher the repo ships —
// LES3, the baselines, and the disk-resident variants — so callers switch
// backend by changing one field (or one string, via ParseBackend).

#ifndef LES3_API_ENGINE_OPTIONS_H_
#define LES3_API_ENGINE_OPTIONS_H_

#include <string>
#include <vector>

#include "baselines/dualtrans.h"
#include "baselines/invidx.h"
#include "bitmap/bitmap_column.h"
#include "core/similarity.h"
#include "l2p/cascade.h"
#include "storage/disk.h"
#include "util/status.h"

namespace les3 {
namespace api {

/// Every searcher constructible through EngineBuilder. The memory-resident
/// backends run entirely in RAM; the disk_ variants run the same
/// algorithms while charging data accesses to the HDD cost model of
/// storage/disk.h. kShardedLes3 hash-partitions the database across
/// num_shards independent LES3 indexes (shard/sharded_engine.h) for
/// parallel build and insert-concurrent serving.
enum class Backend {
  kLes3,
  kBruteForce,
  kInvIdx,
  kDualTrans,
  kDiskLes3,
  kDiskBruteForce,
  kDiskInvIdx,
  kDiskDualTrans,
  kShardedLes3,
};

/// Canonical backend name ("les3", "brute_force", "invidx", "dualtrans",
/// "disk_les3", "disk_brute_force", "disk_invidx", "disk_dualtrans",
/// "sharded_les3").
std::string ToString(Backend backend);

/// Parses a canonical backend name; InvalidArgument on anything else.
Result<Backend> ParseBackend(const std::string& name);

/// All canonical backend names, in enum order.
const std::vector<std::string>& BackendNames();

/// Whether queries on this backend report DiskIoStats.
bool IsDiskBackend(Backend backend);

/// \brief Construction knobs for any backend.
///
/// Fields irrelevant to the chosen backend are ignored; the `measure`
/// field always wins over the measure embedded in the per-backend option
/// structs.
struct EngineOptions {
  Backend backend = Backend::kLes3;

  /// Similarity measure shared by index construction and queries.
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;

  /// LES3 group count; 0 means the paper's heuristic max(16, |D| / 200).
  /// For sharded_les3 this is the PER-SHARD count (0 = heuristic on the
  /// shard's size).
  uint32_t num_groups = 0;

  /// Shard count (sharded_les3 only): the database is hash-partitioned by
  /// set id across this many shards, each with its own independently and
  /// concurrently built LES3 index. Must be >= 1; clamped to |D| so no
  /// shard starts empty. See docs/sharding.md.
  uint32_t num_shards = 1;

  /// TGM column representation (les3 / disk_les3): compressed Roaring
  /// containers (default) or flat BitVector rows. Reported by Describe()
  /// and reflected in IndexBytes().
  bitmap::BitmapBackend bitmap_backend = bitmap::BitmapBackend::kRoaring;

  /// L2P training knobs (les3 / disk_les3); target_groups and measure are
  /// overridden from `num_groups` and `measure`.
  l2p::CascadeOptions cascade;

  /// Retain the trained L2P cascade weights in the engine so Save()
  /// persists them (les3 / disk_les3). Costs memory proportional to the
  /// model count; queries and inserts never read them (Section 6 routes
  /// inserts through the TGM), so this is purely about making the learned
  /// partitioner part of the snapshot artifact.
  bool keep_l2p_models = false;

  /// Inverted-index knobs (invidx / disk_invidx).
  baselines::InvIdxOptions invidx;

  /// Transformation-tree knobs (dualtrans / disk_dualtrans).
  baselines::DualTransOptions dualtrans;

  /// HDD cost model (disk_* backends).
  storage::DiskOptions disk;

  /// Worker threads for KnnBatch / RangeBatch; 0 = hardware concurrency.
  size_t num_threads = 0;
};

/// \brief Knobs for EngineBuilder::Open — reloading a saved snapshot.
///
/// Opening bypasses partitioning and training entirely: the engine is
/// reconstructed from the persisted assignment and TGM columns, so only
/// runtime knobs (not construction knobs) apply here.
struct OpenOptions {
  /// Backend to reopen as: "" uses the backend recorded in the snapshot;
  /// "les3" / "disk_les3" reopen a single-index (v1) snapshot memory- or
  /// disk-resident (the two share one snapshot content); "sharded_les3"
  /// reopens a sharded (v2) snapshot. Anything else — including mixing a
  /// sharded snapshot with a single-index backend or vice versa — is
  /// InvalidArgument.
  std::string backend;

  /// HDD cost model when reopening as disk_les3.
  storage::DiskOptions disk;

  /// Worker threads for KnnBatch / RangeBatch; 0 = hardware concurrency.
  size_t num_threads = 0;
};

}  // namespace api
}  // namespace les3

#endif  // LES3_API_ENGINE_OPTIONS_H_
