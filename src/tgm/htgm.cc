#include "tgm/htgm.h"

#include <algorithm>
#include <queue>

#include "tgm/tgm.h"
#include "util/logging.h"

namespace les3 {
namespace tgm {

Htgm::Htgm(const SetDatabase& db, std::vector<HtgmLevelSpec> specs,
           bitmap::BitmapBackend bitmap_backend)
    : bitmap_backend_(bitmap_backend) {
  LES3_CHECK(!specs.empty());
  levels_.resize(specs.size());
  for (size_t l = 0; l < specs.size(); ++l) {
    LES3_CHECK_EQ(specs[l].assignment.size(), db.size());
    levels_[l].resize(specs[l].num_groups);
  }
  // Token row bitmaps, subtree counts, and leaf membership.
  for (size_t l = 0; l < specs.size(); ++l) {
    std::vector<std::vector<TokenId>> tokens(specs[l].num_groups);
    for (SetId i = 0; i < db.size(); ++i) {
      GroupId g = specs[l].assignment[i];
      LES3_CHECK_LT(g, specs[l].num_groups);
      auto& bucket = tokens[g];
      for (TokenId t : db.set(i).tokens()) bucket.push_back(t);
      ++levels_[l][g].count;
      if (l + 1 == specs.size()) levels_[l][g].members.push_back(i);
    }
    for (uint32_t g = 0; g < specs[l].num_groups; ++g) {
      auto& bucket = tokens[g];
      std::sort(bucket.begin(), bucket.end());
      bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
      levels_[l][g].tokens = bitmap::BitmapColumn::FromSorted(
          bitmap_backend_,
          std::vector<uint32_t>(bucket.begin(), bucket.end()));
      bucket.clear();
      bucket.shrink_to_fit();
    }
  }
  // Child links: a finer group hangs under the coarser group of any of its
  // members (they must all agree — checked).
  for (size_t l = 0; l + 1 < specs.size(); ++l) {
    std::vector<GroupId> parent_of(specs[l + 1].num_groups, kInvalidGroup);
    for (SetId i = 0; i < db.size(); ++i) {
      GroupId child = specs[l + 1].assignment[i];
      GroupId parent = specs[l].assignment[i];
      if (parent_of[child] == kInvalidGroup) {
        parent_of[child] = parent;
        levels_[l][parent].children.push_back(child);
      } else {
        LES3_CHECK_EQ(parent_of[child], parent);  // levels must nest
      }
    }
  }
}

Htgm::WeightedQuery Htgm::Canonicalize(SetView query) {
  WeightedQuery out;
  ForEachTokenMultiplicity(query.tokens(), [&](TokenId t, uint32_t m) {
    out.emplace_back(t, m);
  });
  return out;
}

uint32_t Htgm::Matched(const Node& node, const WeightedQuery& query,
                       HtgmQueryCost* cost) const {
  cost->cells_accessed += query.size();
  ++cost->nodes_visited;
  return static_cast<uint32_t>(
      node.tokens.WeightedIntersect(query.data(), query.size()));
}

std::vector<Hit> Htgm::Knn(const SetDatabase& db,
                                                SetView query,
                                                size_t k,
                                                SimilarityMeasure measure,
                                                HtgmQueryCost* cost) const {
  HtgmQueryCost local;
  if (cost == nullptr) cost = &local;
  WeightedQuery wq = Canonicalize(query);
  // Best-first over (ub, level, node). Leaves verify their members.
  using Entry = std::pair<double, std::pair<uint32_t, uint32_t>>;
  std::priority_queue<Entry> frontier;
  for (uint32_t g = 0; g < levels_[0].size(); ++g) {
    double ub = GroupUpperBound(measure, Matched(levels_[0][g], wq, cost),
                                query.size());
    frontier.push({ub, {0, g}});
  }
  TopKHits best(k);
  while (!frontier.empty()) {
    auto [ub, ln] = frontier.top();
    frontier.pop();
    // A node whose bound ties the k-th similarity may still hold an
    // equal-similarity, smaller-id hit, so only strictly lower bounds stop
    // the descent (exact tie-handling under HitOrder).
    if (best.full() && ub < best.WorstSimilarity()) break;
    auto [level, node_id] = ln;
    const Node& node = levels_[level][node_id];
    if (level + 1 == levels_.size()) {
      for (SetId s : node.members) {
        double sim = Similarity(measure, query, db.set(s));
        ++cost->sims_computed;
        best.Offer(s, sim);
      }
    } else {
      for (uint32_t child : node.children) {
        double cub = GroupUpperBound(
            measure, Matched(levels_[level + 1][child], wq, cost),
            query.size());
        // A child's bound cannot exceed its parent's.
        cub = std::min(cub, ub);
        frontier.push({cub, {static_cast<uint32_t>(level + 1), child}});
      }
    }
  }
  return best.Take();
}

std::vector<Hit> Htgm::Range(const SetDatabase& db,
                                                  SetView query,
                                                  double delta,
                                                  SimilarityMeasure measure,
                                                  HtgmQueryCost* cost) const {
  HtgmQueryCost local;
  if (cost == nullptr) cost = &local;
  WeightedQuery wq = Canonicalize(query);
  std::vector<Hit> out;
  // Level-order descent, pruning nodes whose bound is below delta.
  std::vector<std::pair<uint32_t, uint32_t>> active;
  for (uint32_t g = 0; g < levels_[0].size(); ++g) active.push_back({0, g});
  while (!active.empty()) {
    auto [level, node_id] = active.back();
    active.pop_back();
    const Node& node = levels_[level][node_id];
    double ub = GroupUpperBound(measure, Matched(node, wq, cost),
                                query.size());
    if (ub < delta) continue;
    if (level + 1 == levels_.size()) {
      for (SetId s : node.members) {
        double sim = Similarity(measure, query, db.set(s));
        ++cost->sims_computed;
        if (sim >= delta) out.emplace_back(s, sim);
      }
    } else {
      for (uint32_t child : node.children) {
        active.push_back({static_cast<uint32_t>(level + 1), child});
      }
    }
  }
  SortHits(&out);
  return out;
}

GroupId Htgm::AddSet(SetId id, SetView set,
                     SimilarityMeasure measure) {
  HtgmQueryCost scratch;
  WeightedQuery ws = Canonicalize(set);
  // Pick the best root, then descend choosing the best child per level.
  uint32_t current = 0;
  {
    double best_ub = -1.0;
    for (uint32_t g = 0; g < levels_[0].size(); ++g) {
      const Node& node = levels_[0][g];
      double ub = GroupUpperBound(measure, Matched(node, ws, &scratch),
                                  set.size());
      if (ub > best_ub ||
          (ub == best_ub && node.count < levels_[0][current].count)) {
        best_ub = ub;
        current = g;
      }
    }
  }
  for (size_t l = 0; l + 1 < levels_.size(); ++l) {
    Node& node = levels_[l][current];
    for (const auto& tw : ws) node.tokens.Add(tw.first);
    ++node.count;
    LES3_CHECK(!node.children.empty());
    uint32_t best_child = node.children.front();
    double best_ub = -1.0;
    for (uint32_t child : node.children) {
      const Node& cn = levels_[l + 1][child];
      double ub = GroupUpperBound(measure, Matched(cn, ws, &scratch),
                                  set.size());
      if (ub > best_ub ||
          (ub == best_ub && cn.count < levels_[l + 1][best_child].count)) {
        best_ub = ub;
        best_child = child;
      }
    }
    current = best_child;
  }
  Node& leaf = levels_.back()[current];
  for (const auto& tw : ws) leaf.tokens.Add(tw.first);
  ++leaf.count;
  leaf.members.push_back(id);
  return current;
}

uint64_t Htgm::MemoryBytes() const {
  uint64_t total = 0;
  for (const auto& level : levels_) {
    for (const auto& node : level) {
      total += node.tokens.MemoryBytes();
      total += node.children.size() * sizeof(uint32_t);
      total += node.members.size() * sizeof(SetId);
    }
  }
  return total;
}

}  // namespace tgm
}  // namespace les3
