#include "tgm/tgm.h"

#include <algorithm>
#include <numeric>

#include "bitmap/kernels.h"
#include "persist/bytes.h"
#include "util/logging.h"

namespace les3 {
namespace tgm {

template <typename SizeFn>
void Tgm::OrderMembersBySize(const SizeFn& size_of) {
  member_sizes_.resize(members_.size());
  for (GroupId g = 0; g < members_.size(); ++g) {
    auto& ids = members_[g];
    // Members arrive in ascending id; a stable sort on size alone yields
    // the canonical (size, id) order.
    std::stable_sort(ids.begin(), ids.end(), [&](SetId a, SetId b) {
      return size_of(a) < size_of(b);
    });
    auto& sizes = member_sizes_[g];
    sizes.resize(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      sizes[i] = static_cast<uint32_t>(size_of(ids[i]));
    }
  }
}

Tgm::Tgm(const SetDatabase& db, const std::vector<GroupId>& assignment,
         uint32_t num_groups, bitmap::BitmapBackend bitmap_backend)
    : bitmap_backend_(bitmap_backend) {
  LES3_CHECK_EQ(assignment.size(), db.size());
  members_.resize(num_groups);
  group_of_ = assignment;
  for (SetId i = 0; i < db.size(); ++i) {
    LES3_CHECK_LT(assignment[i], num_groups);
    members_[assignment[i]].push_back(i);
  }
  OrderMembersBySize([&](SetId id) { return db.set_size(id); });
  for (const auto& m : members_) nonempty_groups_ += !m.empty();
  group_dirt_.assign(num_groups, 0);
  // Build columns via per-token sorted group lists (bulk build).
  std::vector<std::vector<GroupId>> token_groups(db.num_tokens());
  for (SetId i = 0; i < db.size(); ++i) {
    GroupId g = assignment[i];
    TokenId prev = static_cast<TokenId>(-1);
    for (TokenId t : db.set(i)) {
      if (t == prev) continue;
      prev = t;
      token_groups[t].push_back(g);
    }
  }
  columns_.reserve(db.num_tokens());
  for (auto& groups : token_groups) {
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
    columns_.push_back(bitmap::BitmapColumn::FromSorted(
        bitmap_backend_, std::vector<uint32_t>(groups.begin(), groups.end())));
    groups.clear();
    groups.shrink_to_fit();
  }
}

Tgm::MemberWindow Tgm::MembersInSizeWindow(GroupId g, size_t size_lo,
                                           size_t size_hi) const {
  const auto& ids = members_[g];
  const auto& sizes = member_sizes_[g];
  MemberWindow window;
  auto first = sizes.begin();
  if (size_lo > 0xFFFFFFFFu) {
    first = sizes.end();  // member sizes are 32-bit; nothing can qualify
  } else if (size_lo > 0) {
    first = std::lower_bound(sizes.begin(), sizes.end(),
                             static_cast<uint32_t>(size_lo));
  }
  auto last = sizes.end();
  if (size_hi < 0xFFFFFFFFu) {
    last = std::upper_bound(first, sizes.end(),
                            static_cast<uint32_t>(size_hi));
  }
  window.begin = ids.data() + (first - sizes.begin());
  window.end = ids.data() + (last - sizes.begin());
  window.sizes = sizes.data() + (first - sizes.begin());
  window.skipped = ids.size() - window.count();
  return window;
}

size_t Tgm::MatchedCounts(SetView query, std::vector<uint32_t>* counts) const {
  // One accumulator per thread: its difference array is all-zero between
  // uses and carries no index-specific state, so reusing it only saves the
  // per-query allocation (batch queries run on a thread pool, so this must
  // not be a member of the const Tgm).
  static thread_local bitmap::GroupCountAccumulator acc;
  acc.Reset(num_groups(), counts);
  size_t columns_visited = 0;
  ForEachTokenMultiplicity(query, [&](TokenId t, uint32_t m) {
    if (t >= columns_.size()) return;  // token outside T: M[*, t] = 0
    const bitmap::BitmapColumn& col = columns_[t];
    if (col.Empty()) return;
    ++columns_visited;
    col.AccumulateInto(acc, m);
  });
  acc.Finish();
  return columns_visited;
}

size_t Tgm::MatchedCandidates(SetView query, uint32_t min_count,
                              std::vector<uint32_t>* counts,
                              std::vector<GroupId>* candidates) const {
  candidates->clear();
  // Short-circuit: if even a group containing every query token cannot
  // attain min_count, no column scan can produce a candidate.
  if (min_count > 0) {
    uint32_t attainable = 0;
    ForEachTokenMultiplicity(query, [&](TokenId t, uint32_t m) {
      if (t < columns_.size() && !columns_[t].Empty()) attainable += m;
    });
    if (attainable < min_count) {
      counts->assign(num_groups(), 0);
      return 0;
    }
  }
  size_t visited = MatchedCounts(query, counts);
  // Harvest: groups below min_count can no longer reach the bound (all
  // columns are folded in), so they are pruned without ever computing an
  // upper bound or entering the search frontier.
  candidates->reserve(counts->size());
  for (GroupId g = 0; g < counts->size(); ++g) {
    if ((*counts)[g] >= min_count) candidates->push_back(g);
  }
  return visited;
}

namespace {

/// One entry of the inverted batch plan: query `query` wants column
/// `token` folded into its row with weight `weight`.
struct TokenSubscriber {
  TokenId token;
  uint32_t query;
  uint32_t weight;
};

}  // namespace

size_t Tgm::MatchedCandidatesBatch(
    const SetView* queries, size_t num_queries, const uint32_t* min_counts,
    std::vector<uint32_t>* counts, std::vector<std::vector<GroupId>>* candidates,
    std::vector<size_t>* columns_visited) const {
  // Thread-local scratch mirrors MatchedCounts: the plan, fan-out buffer
  // and accumulator carry no index-specific state between uses, so reuse
  // only amortizes allocations across batches on pool threads.
  static thread_local bitmap::BatchGroupCountAccumulator acc;
  static thread_local std::vector<TokenSubscriber> plan;
  static thread_local std::vector<bitmap::QueryWeight> fan;

  const uint32_t nq = static_cast<uint32_t>(num_queries);
  columns_visited->assign(num_queries, 0);

  // Invert: per query, the same canonicalization loop as the solo path.
  // Queries whose attainable count cannot reach their threshold subscribe
  // to nothing (the solo short-circuit), leaving an all-zero row.
  plan.clear();
  for (uint32_t q = 0; q < nq; ++q) {
    if (min_counts != nullptr && min_counts[q] > 0) {
      uint32_t attainable = 0;
      ForEachTokenMultiplicity(queries[q], [&](TokenId t, uint32_t m) {
        if (t < columns_.size() && !columns_[t].Empty()) attainable += m;
      });
      if (attainable < min_counts[q]) continue;
    }
    ForEachTokenMultiplicity(queries[q], [&](TokenId t, uint32_t m) {
      if (t >= columns_.size()) return;  // token outside T: M[*, t] = 0
      if (columns_[t].Empty()) return;
      plan.push_back({t, q, m});
      ++(*columns_visited)[q];
    });
  }
  // Group subscribers by column; query order within a column keeps each
  // row's kernel sequence identical to its solo walk (the sums are exact
  // integers, so any order would do — identical order just makes the
  // byte-exactness argument trivial).
  std::sort(plan.begin(), plan.end(),
            [](const TokenSubscriber& a, const TokenSubscriber& b) {
              return a.token != b.token ? a.token < b.token
                                        : a.query < b.query;
            });

  acc.Reset(nq, num_groups(), counts);
  size_t distinct_columns = 0;
  size_t i = 0;
  while (i < plan.size()) {
    const TokenId t = plan[i].token;
    fan.clear();
    do {
      fan.push_back({plan[i].query, plan[i].weight});
      ++i;
    } while (i < plan.size() && plan[i].token == t);
    ++distinct_columns;
    columns_[t].AccumulateIntoBatch(acc, fan.data(), fan.size());
  }
  acc.Finish();

  if (candidates != nullptr) {
    candidates->assign(num_queries, {});
    const uint32_t* rows = counts->data();
    for (uint32_t q = 0; q < nq; ++q) {
      const uint32_t min_count = min_counts != nullptr ? min_counts[q] : 0;
      const uint32_t* row = rows + static_cast<size_t>(q) * num_groups();
      // Hopeless queries harvested nothing on the solo path either: their
      // short-circuit returns before the harvest loop. (With min_count > 0,
      // zero columns visited can only mean the attainable check failed.)
      if (min_count > 0 && (*columns_visited)[q] == 0) continue;
      auto& out = (*candidates)[q];
      out.reserve(num_groups());
      for (GroupId g = 0; g < num_groups(); ++g) {
        if (row[g] >= min_count) out.push_back(g);
      }
    }
  }
  return distinct_columns;
}

size_t Tgm::MatchedCountsBatch(const SetView* queries, size_t num_queries,
                               std::vector<uint32_t>* counts,
                               std::vector<size_t>* columns_visited) const {
  return MatchedCandidatesBatch(queries, num_queries, /*min_counts=*/nullptr,
                                counts, /*candidates=*/nullptr,
                                columns_visited);
}

void Tgm::BackfillZeroCountGroups(const std::vector<uint32_t>& counts,
                                  uint32_t min_count, TopKHits* best) const {
  BackfillZeroCountGroups(counts.data(), min_count, best);
}

void Tgm::BackfillZeroCountGroups(const uint32_t* counts, uint32_t min_count,
                                  TopKHits* best) const {
  if (min_count == 0) return;  // nothing was pruned
  if (best->full() && best->WorstSimilarity() > 0.0) return;
  for (GroupId g = 0; g < num_groups(); ++g) {
    if (counts[g] != 0 || members_[g].empty()) continue;
    for (SetId s : members_[g]) best->Offer(s, 0.0);
  }
}

size_t Tgm::MatchedCountsReference(SetView query,
                                   std::vector<uint32_t>* counts) const {
  counts->assign(num_groups(), 0);
  size_t columns_visited = 0;
  ForEachTokenMultiplicity(query, [&](TokenId t, uint32_t m) {
    if (t >= columns_.size()) return;
    const bitmap::BitmapColumn& col = columns_[t];
    if (col.Empty()) return;
    ++columns_visited;
    col.ForEach([&](uint32_t g) { (*counts)[g] += m; });
  });
  return columns_visited;
}

size_t Tgm::UpperBounds(SetView query, SimilarityMeasure measure,
                        std::vector<double>* ubs) const {
  std::vector<uint32_t> counts;
  size_t visited = MatchedCounts(query, &counts);
  ubs->resize(counts.size());
  for (size_t g = 0; g < counts.size(); ++g) {
    (*ubs)[g] = GroupUpperBound(measure, counts[g], query.size());
  }
  return visited;
}

GroupId Tgm::RouteBestGroup(SetView set, SimilarityMeasure measure) const {
  // Stage 1 (Section 6): find the best group by UB over the known tokens;
  // ties (and the all-new-tokens case) go to the smallest group.
  std::vector<uint32_t> counts;
  MatchedCounts(set, &counts);
  GroupId best = 0;
  double best_ub = -1.0;
  for (GroupId g = 0; g < counts.size(); ++g) {
    double ub = GroupUpperBound(measure, counts[g], set.size());
    if (ub > best_ub ||
        (ub == best_ub && members_[g].size() < members_[best].size())) {
      best_ub = ub;
      best = g;
    }
  }
  return best;
}

void Tgm::InsertMember(GroupId g, SetId id, uint32_t size) {
  if (members_[g].empty()) ++nonempty_groups_;
  auto& sizes = member_sizes_[g];
  auto& ids = members_[g];
  // Splice at the exact (size, id) position: within an equal-size run ids
  // are ascending, so bound the run first, then the id slot inside it.
  size_t lo = static_cast<size_t>(
      std::lower_bound(sizes.begin(), sizes.end(), size) - sizes.begin());
  size_t hi = static_cast<size_t>(
      std::upper_bound(sizes.begin() + lo, sizes.end(), size) -
      sizes.begin());
  size_t pos = static_cast<size_t>(
      std::lower_bound(ids.begin() + lo, ids.begin() + hi, id) - ids.begin());
  sizes.insert(sizes.begin() + pos, size);
  ids.insert(ids.begin() + pos, id);
}

void Tgm::AddColumnBits(GroupId g, SetView set) {
  TokenId prev = static_cast<TokenId>(-1);
  for (TokenId t : set) {
    if (t == prev) continue;
    prev = t;
    if (t >= columns_.size()) {
      columns_.resize(t + 1, bitmap::BitmapColumn(bitmap_backend_));
    }
    columns_[t].Add(g);
  }
}

GroupId Tgm::AddSet(SetId id, SetView set, SimilarityMeasure measure) {
  LES3_CHECK_EQ(id, group_of_.size());  // new ids are appended in order
  group_of_.push_back(kInvalidGroup);
  return ReinsertSet(id, set, measure);
}

GroupId Tgm::ReinsertSet(SetId id, SetView set, SimilarityMeasure measure) {
  LES3_CHECK_LT(id, group_of_.size());
  LES3_CHECK_EQ(group_of_[id], kInvalidGroup);  // must be removed first
  GroupId best = RouteBestGroup(set, measure);
  InsertMember(best, id, static_cast<uint32_t>(set.size()));
  group_of_[id] = best;
  AddColumnBits(best, set);
  return best;
}

bool Tgm::RemoveSet(SetId id, uint32_t size) {
  if (id >= group_of_.size() || group_of_[id] == kInvalidGroup) return false;
  const GroupId g = group_of_[id];
  auto& sizes = member_sizes_[g];
  auto& ids = members_[g];
  size_t lo = static_cast<size_t>(
      std::lower_bound(sizes.begin(), sizes.end(), size) - sizes.begin());
  size_t hi = static_cast<size_t>(
      std::upper_bound(sizes.begin() + lo, sizes.end(), size) -
      sizes.begin());
  auto idit = std::lower_bound(ids.begin() + lo, ids.begin() + hi, id);
  if (idit == ids.begin() + hi || *idit != id) {
    return false;  // caller passed a stale size; refuse rather than corrupt
  }
  size_t pos = static_cast<size_t>(idit - ids.begin());
  ids.erase(idit);
  sizes.erase(sizes.begin() + pos);
  group_of_[id] = kInvalidGroup;
  if (ids.empty()) --nonempty_groups_;
  ++group_dirt_[g];
  return true;
}

GroupId Tgm::SplitGroup(GroupId g, const SetDatabase& db) {
  if (members_[g].size() < 2) return kInvalidGroup;
  const size_t mid = members_[g].size() / 2;
  const GroupId g2 = num_groups();
  // emplace_back may reallocate members_/member_sizes_; index afterwards.
  members_.emplace_back(members_[g].begin() + mid, members_[g].end());
  member_sizes_.emplace_back(member_sizes_[g].begin() + mid,
                             member_sizes_[g].end());
  group_dirt_.push_back(0);
  members_[g].resize(mid);
  member_sizes_[g].resize(mid);
  ++nonempty_groups_;  // both halves are non-empty (1 <= mid < old size)
  for (size_t i = 0; i < members_[g2].size(); ++i) {
    const SetId id = members_[g2][i];
    group_of_[id] = g2;
    AddColumnBits(g2, db.set(id));
  }
  // The source group's bits for tokens exclusive to the moved members are
  // now stale; charge them so maintenance recomputes g eventually.
  group_dirt_[g] += static_cast<uint32_t>(members_[g2].size());
  return g2;
}

size_t Tgm::RecomputeGroupColumns(GroupId g, const SetDatabase& db) {
  // Exact token set of the group's live members. Every member token was
  // added to a column at insert time, so t < columns_.size() throughout.
  std::vector<uint8_t> needed(columns_.size(), 0);
  for (SetId id : members_[g]) {
    for (TokenId t : db.set(id)) needed[t] = 1;
  }
  size_t dropped = 0;
  for (TokenId t = 0; t < columns_.size(); ++t) {
    if (!needed[t]) dropped += columns_[t].Remove(g);
  }
  group_dirt_[g] = 0;
  return dropped;
}

void Tgm::RunOptimize() {
  for (auto& col : columns_) col.RunOptimize();
}

uint64_t Tgm::BitmapBytes() const {
  uint64_t total = 0;
  for (const auto& col : columns_) total += col.MemoryBytes();
  return total;
}

uint64_t Tgm::MemoryBytes() const {
  uint64_t total = BitmapBytes();
  total += group_of_.size() * sizeof(GroupId);
  for (const auto& m : members_) {
    total += m.size() * (sizeof(SetId) + sizeof(uint32_t));  // ids + sizes
  }
  return total;
}

bool Tgm::Test(GroupId g, TokenId t) const {
  if (t >= columns_.size()) return false;
  return columns_[t].Contains(g);
}

void Tgm::SerializeColumns(persist::ByteWriter* writer) const {
  writer->WriteU8(static_cast<uint8_t>(bitmap_backend_));
  writer->WriteU32(static_cast<uint32_t>(columns_.size()));
  for (const auto& col : columns_) col.Serialize(writer);
}

void Tgm::SerializeCompactedColumns(const SetDatabase& db,
                                    persist::ByteWriter* writer) const {
  // Same bulk build as the constructor, driven off the live membership:
  // deleted ids are absent from members_, so their tokens contribute no
  // bits and every stale bit is dropped from the serialized form.
  std::vector<std::vector<GroupId>> token_groups(db.num_tokens());
  for (GroupId g = 0; g < members_.size(); ++g) {
    for (SetId id : members_[g]) {
      TokenId prev = static_cast<TokenId>(-1);
      for (TokenId t : db.set(id)) {
        if (t == prev) continue;
        prev = t;
        token_groups[t].push_back(g);
      }
    }
  }
  writer->WriteU8(static_cast<uint8_t>(bitmap_backend_));
  writer->WriteU32(static_cast<uint32_t>(token_groups.size()));
  for (auto& groups : token_groups) {
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
    bitmap::BitmapColumn col = bitmap::BitmapColumn::FromSorted(
        bitmap_backend_, std::vector<uint32_t>(groups.begin(), groups.end()));
    col.RunOptimize();  // the build pipeline run-optimizes; keep parity
    col.Serialize(writer);
    groups.clear();
    groups.shrink_to_fit();
  }
}

Result<Tgm> Tgm::Deserialize(const std::vector<GroupId>& assignment,
                             uint32_t num_groups,
                             const std::vector<uint32_t>& set_sizes,
                             persist::ByteReader* reader) {
  LES3_CHECK_EQ(set_sizes.size(), assignment.size());
  if (num_groups == 0) {
    return Status::InvalidArgument("snapshot partition has zero groups");
  }
  // Partitionings are dense (every group id appears), so a legitimate
  // snapshot always has num_groups <= |assignment|; checking it first also
  // caps the membership allocation below against attacker-sized counts.
  if (num_groups > assignment.size()) {
    return Status::OutOfRange("group count " + std::to_string(num_groups) +
                              " exceeds the set count " +
                              std::to_string(assignment.size()));
  }
  Tgm tgm;
  tgm.members_.resize(num_groups);
  tgm.group_of_ = assignment;
  for (SetId i = 0; i < assignment.size(); ++i) {
    if (assignment[i] == kInvalidGroup) continue;  // tombstoned id (v3)
    if (assignment[i] >= num_groups) {
      return Status::OutOfRange(
          "assignment entry " + std::to_string(assignment[i]) +
          " exceeds group count " + std::to_string(num_groups));
    }
    tgm.members_[assignment[i]].push_back(i);
  }
  tgm.OrderMembersBySize([&](SetId id) { return set_sizes[id]; });
  for (const auto& m : tgm.members_) tgm.nonempty_groups_ += !m.empty();
  tgm.group_dirt_.assign(num_groups, 0);

  uint8_t backend_tag = 0;
  LES3_RETURN_NOT_OK(reader->ReadU8(&backend_tag));
  if (backend_tag > static_cast<uint8_t>(bitmap::BitmapBackend::kBitVector)) {
    return Status::InvalidArgument("unknown TGM bitmap backend tag " +
                                   std::to_string(backend_tag));
  }
  tgm.bitmap_backend_ = static_cast<bitmap::BitmapBackend>(backend_tag);
  uint32_t num_columns = 0;
  LES3_RETURN_NOT_OK(reader->ReadU32(&num_columns));
  // A serialized column is at least 5 bytes (tag + count), so a count the
  // remaining bytes cannot hold is corruption — reject before reserving.
  if (num_columns > reader->remaining() / 5) {
    return Status::OutOfRange("column count " + std::to_string(num_columns) +
                              " exceeds what the chunk can hold");
  }
  tgm.columns_.reserve(num_columns);
  for (uint32_t t = 0; t < num_columns; ++t) {
    auto col = bitmap::BitmapColumn::Deserialize(reader, num_groups);
    if (!col.ok()) {
      return Status::FromCode(col.status().code(),
                              "column " + std::to_string(t) + ": " +
                                  col.status().message());
    }
    if (col.value().backend() != tgm.bitmap_backend_) {
      return Status::InvalidArgument(
          "column " + std::to_string(t) +
          " backend does not match the matrix backend");
    }
    tgm.columns_.push_back(std::move(col).ValueOrDie());
  }
  return tgm;
}

}  // namespace tgm
}  // namespace les3
