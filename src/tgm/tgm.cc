#include "tgm/tgm.h"

#include <algorithm>

#include "util/logging.h"

namespace les3 {
namespace tgm {

Tgm::Tgm(const SetDatabase& db, const std::vector<GroupId>& assignment,
         uint32_t num_groups) {
  LES3_CHECK_EQ(assignment.size(), db.size());
  members_.resize(num_groups);
  group_of_ = assignment;
  for (SetId i = 0; i < db.size(); ++i) {
    LES3_CHECK_LT(assignment[i], num_groups);
    members_[assignment[i]].push_back(i);
  }
  // Build columns via per-token sorted group lists (bulk Roaring build).
  std::vector<std::vector<GroupId>> token_groups(db.num_tokens());
  for (SetId i = 0; i < db.size(); ++i) {
    GroupId g = assignment[i];
    TokenId prev = static_cast<TokenId>(-1);
    for (TokenId t : db.set(i).tokens()) {
      if (t == prev) continue;
      prev = t;
      token_groups[t].push_back(g);
    }
  }
  columns_.reserve(db.num_tokens());
  for (auto& groups : token_groups) {
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
    columns_.push_back(bitmap::Roaring::FromSorted(
        std::vector<uint32_t>(groups.begin(), groups.end())));
    groups.clear();
    groups.shrink_to_fit();
  }
}

size_t Tgm::MatchedCounts(const SetRecord& query,
                          std::vector<uint32_t>* counts) const {
  counts->assign(num_groups(), 0);
  size_t columns_visited = 0;
  const auto& tokens = query.tokens();
  size_t i = 0;
  while (i < tokens.size()) {
    TokenId t = tokens[i];
    uint32_t multiplicity = 0;
    while (i < tokens.size() && tokens[i] == t) {
      ++multiplicity;
      ++i;
    }
    if (t >= columns_.size()) continue;  // token outside T: M[*, t] = 0
    const bitmap::Roaring& col = columns_[t];
    if (col.Empty()) continue;
    ++columns_visited;
    col.ForEach([&](uint32_t g) { (*counts)[g] += multiplicity; });
  }
  return columns_visited;
}

size_t Tgm::UpperBounds(const SetRecord& query, SimilarityMeasure measure,
                        std::vector<double>* ubs) const {
  std::vector<uint32_t> counts;
  size_t visited = MatchedCounts(query, &counts);
  ubs->resize(counts.size());
  for (size_t g = 0; g < counts.size(); ++g) {
    (*ubs)[g] = GroupUpperBound(measure, counts[g], query.size());
  }
  return visited;
}

GroupId Tgm::AddSet(SetId id, const SetRecord& set,
                    SimilarityMeasure measure) {
  LES3_CHECK_EQ(id, group_of_.size());  // sets must be appended in order
  // Stage 1 (Section 6): find the best group by UB over the known tokens;
  // ties (and the all-new-tokens case) go to the smallest group.
  std::vector<uint32_t> counts;
  MatchedCounts(set, &counts);
  GroupId best = 0;
  double best_ub = -1.0;
  for (GroupId g = 0; g < counts.size(); ++g) {
    double ub = GroupUpperBound(measure, counts[g], set.size());
    if (ub > best_ub ||
        (ub == best_ub && members_[g].size() < members_[best].size())) {
      best_ub = ub;
      best = g;
    }
  }
  // Stage 2: grow columns for unseen tokens and set M[best, t] = 1.
  members_[best].push_back(id);
  group_of_.push_back(best);
  TokenId prev = static_cast<TokenId>(-1);
  for (TokenId t : set.tokens()) {
    if (t == prev) continue;
    prev = t;
    if (t >= columns_.size()) columns_.resize(t + 1);
    columns_[t].Add(best);
  }
  return best;
}

void Tgm::RunOptimize() {
  for (auto& col : columns_) col.RunOptimize();
}

uint64_t Tgm::BitmapBytes() const {
  uint64_t total = 0;
  for (const auto& col : columns_) total += col.MemoryBytes();
  return total;
}

uint64_t Tgm::MemoryBytes() const {
  uint64_t total = BitmapBytes();
  total += group_of_.size() * sizeof(GroupId);
  for (const auto& m : members_) total += m.size() * sizeof(SetId);
  return total;
}

bool Tgm::Test(GroupId g, TokenId t) const {
  if (t >= columns_.size()) return false;
  return columns_[t].Contains(g);
}

}  // namespace tgm
}  // namespace les3
