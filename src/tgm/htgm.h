// HTGM — hierarchical token-group matrix (paper Section 5.2).
//
// One TGM per cascade level, coarse to fine; a group pruned at a coarse
// level removes all its descendants from consideration without touching
// their (larger) matrices. Nodes store row bitmaps (the token set of the
// group) and queries descend best-first, so the index access cost is
// proportional to the nodes actually probed — the quantity the paper's
// Figure 14 compares against the flat TGM.

#ifndef LES3_TGM_HTGM_H_
#define LES3_TGM_HTGM_H_

#include <utility>
#include <vector>

#include "bitmap/bitmap_column.h"
#include "core/database.h"
#include "core/similarity.h"
#include "core/types.h"

namespace les3 {
namespace tgm {

/// One level of the hierarchy: a partitioning of the database. Levels must
/// refine each other (every finer group nested in one coarser group), which
/// cascade levels do by construction.
struct HtgmLevelSpec {
  std::vector<GroupId> assignment;
  uint32_t num_groups = 0;
};

/// Query-cost counters for the Figure 14 comparison.
struct HtgmQueryCost {
  uint64_t nodes_visited = 0;
  uint64_t cells_accessed = 0;  // (node, query-token) membership probes
  uint64_t sims_computed = 0;   // exact similarity evaluations
};

/// \brief Hierarchical TGM over h >= 1 levels (h = 1 degenerates to a flat
/// row-layout TGM, the baseline of Figure 14).
class Htgm {
 public:
  /// `levels` are ordered coarse to fine; the finest level defines the
  /// verification groups. Node token bitmaps use `bitmap_backend`.
  Htgm(const SetDatabase& db, std::vector<HtgmLevelSpec> levels,
       bitmap::BitmapBackend bitmap_backend =
           bitmap::BitmapBackend::kRoaring);

  /// Exact kNN via best-first descent over group upper bounds.
  std::vector<Hit> Knn(const SetDatabase& db,
                                            SetView query, size_t k,
                                            SimilarityMeasure measure,
                                            HtgmQueryCost* cost) const;

  /// Exact range search.
  std::vector<Hit> Range(const SetDatabase& db,
                                              SetView query,
                                              double delta,
                                              SimilarityMeasure measure,
                                              HtgmQueryCost* cost) const;

  size_t num_levels() const { return levels_.size(); }
  uint64_t MemoryBytes() const;

  /// \brief Level-by-level insertion (paper Section 6): the new set is
  /// routed down the hierarchy, at each level into the child with the
  /// highest similarity upper bound (ties -> smallest subtree), and the
  /// token bitmaps along the path absorb its tokens (previously unseen
  /// tokens included). `id` must be the set's index in the database used
  /// for searching. Returns the finest-level group it joined.
  GroupId AddSet(SetId id, SetView set, SimilarityMeasure measure);

  /// Number of sets under finest-level group `g`.
  size_t GroupSize(GroupId g) const {
    return levels_.back()[g].members.size();
  }

 private:
  struct Node {
    bitmap::BitmapColumn tokens;     // distinct tokens of the group
    std::vector<uint32_t> children;  // node ids in the next level
    std::vector<SetId> members;      // only at the finest level
    uint32_t count = 0;              // sets in the subtree
  };

  /// A query canonicalized once per traversal: (unique token,
  /// multiplicity) pairs in ascending token order, so every node probe is
  /// one batched WeightedIntersect instead of a re-deduplicating scan.
  using WeightedQuery = std::vector<std::pair<uint32_t, uint32_t>>;
  static WeightedQuery Canonicalize(SetView query);

  /// Matched-token count of the canonicalized query against a node.
  uint32_t Matched(const Node& node, const WeightedQuery& query,
                   HtgmQueryCost* cost) const;

  bitmap::BitmapBackend bitmap_backend_;
  std::vector<std::vector<Node>> levels_;  // coarse -> fine
};

}  // namespace tgm
}  // namespace les3

#endif  // LES3_TGM_HTGM_H_
