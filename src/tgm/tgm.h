// TGM — the token-group matrix (paper Section 3).
//
// M[g, t] = 1 iff some set in group G_g contains token t. The matrix is
// stored column-wise: one bitmap per token holding the groups that contain
// it, which lets a query compute the matched-token count of every group in
// one pass over its tokens (cost O(Σ_{t in Q} |column_t|), far below
// O(n |Q|) for sparse data). Columns live behind BitmapColumn, so one index
// can choose compressed Roaring storage or flat BitVector rows; either way
// the query pass runs the container-aware batch kernels of
// bitmap/kernels.h rather than per-bit iteration.
//
// Group membership lists are kept alongside so the search layer can verify
// candidates group-at-a-time. Members are ordered by (set size, id) with a
// parallel size array, so a searcher holding a candidate-size window
// [lo, hi] (core/similarity.h SizeBoundsForThreshold) binary-searches the
// window's member run and never touches a token of an out-of-window set.
// This order is an in-memory property — snapshots persist only the
// assignment, and the order is re-derived on open.
//
// Updates (paper Section 6): AddSet routes a new set to the group with the
// highest similarity upper bound (ties -> smallest group) and extends the
// matrix, growing new columns when previously unseen tokens appear and
// splicing the member into its group's size order.
//
// Mutation (docs/mutability.md): RemoveSet physically erases the member
// from its group's run — so verification, MatchedCandidates harvesting and
// the zero-count backfill can never see (or resurrect) a deleted id — and
// parks group_of_[id] at kInvalidGroup. Column bits are NOT cleared on the
// mutation path: a stale bit only over-approximates a group's matched
// count, which keeps every upper bound admissible (exactness is
// unaffected; only pruning quality degrades). Each group's stale-bit debt
// is tracked in a dirt counter; the maintenance layer
// (search/maintenance.h) calls RecomputeGroupColumns / SplitGroup to pay
// it down incrementally, and snapshot save compacts all columns at once.

#ifndef LES3_TGM_TGM_H_
#define LES3_TGM_TGM_H_

#include <vector>

#include "bitmap/bitmap_column.h"
#include "core/database.h"
#include "core/similarity.h"
#include "core/types.h"

namespace les3 {
namespace tgm {

/// Calls fn(token, multiplicity) for every distinct token of the sorted
/// token list `tokens`, ascending. The one query-canonicalization loop
/// shared by the Tgm count kernels (including the differential reference)
/// and Htgm::Canonicalize.
template <typename Tokens, typename Fn>
void ForEachTokenMultiplicity(const Tokens& tokens, Fn&& fn) {
  size_t i = 0;
  while (i < tokens.size()) {
    TokenId t = tokens[i];
    uint32_t multiplicity = 0;
    while (i < tokens.size() && tokens[i] == t) {
      ++multiplicity;
      ++i;
    }
    fn(t, multiplicity);
  }
}

/// \brief The token-group matrix plus group membership.
class Tgm {
 public:
  /// An empty matrix (no groups, no columns); the placeholder state a
  /// snapshot deserialization (persist/snapshot.h) fills in.
  Tgm() = default;

  /// Builds from a partitioning of `db` into `num_groups` groups, storing
  /// columns in the chosen bitmap representation.
  Tgm(const SetDatabase& db, const std::vector<GroupId>& assignment,
      uint32_t num_groups,
      bitmap::BitmapBackend bitmap_backend = bitmap::BitmapBackend::kRoaring);

  uint32_t num_groups() const {
    return static_cast<uint32_t>(members_.size());
  }
  uint32_t num_token_columns() const {
    return static_cast<uint32_t>(columns_.size());
  }
  bitmap::BitmapBackend bitmap_backend() const { return bitmap_backend_; }

  /// Members of group `g`, ordered by (set size, id) ascending.
  const std::vector<SetId>& group_members(GroupId g) const {
    return members_[g];
  }
  size_t group_size(GroupId g) const { return members_[g].size(); }

  /// The contiguous run of group `g`'s members whose set sizes fall in
  /// [lo, hi], plus how many members the window excluded. `sizes` walks in
  /// lockstep with [begin, end) — ascending, so verification loops can key
  /// per-size work (e.g. MinOverlapForPair) off size-run boundaries.
  struct MemberWindow {
    const SetId* begin = nullptr;
    const SetId* end = nullptr;
    const uint32_t* sizes = nullptr;  // parallel to begin
    size_t skipped = 0;               // members of g outside the window
    size_t count() const { return static_cast<size_t>(end - begin); }
  };

  /// \brief Binary-searches group `g`'s size-ordered members for the run
  /// with set size in [size_lo, size_hi]. O(log |G_g|); no token of an
  /// excluded member is ever touched.
  MemberWindow MembersInSizeWindow(GroupId g, size_t size_lo,
                                   size_t size_hi) const;

  /// Number of groups with at least one member (maintained across AddSet,
  /// so the search layer's pruning stats need no per-query group scan).
  uint32_t num_nonempty_groups() const { return nonempty_groups_; }

  /// Group of a set (maintained across AddSet).
  GroupId group_of(SetId id) const { return group_of_[id]; }

  /// The full per-set assignment (what a snapshot persists, and what the
  /// disk backends feed to DiskLayout::GroupContiguous on reload).
  const std::vector<GroupId>& group_assignment() const { return group_of_; }

  /// \brief Fills `counts[g]` with Σ_{t in Q} M[g, t] (query multiplicity
  /// counted, per Equation 2/4), fusing all query-token columns into the
  /// one counter array through the batched kernels. `counts` is resized to
  /// num_groups(). Returns the number of non-empty token columns visited.
  size_t MatchedCounts(SetView query, std::vector<uint32_t>* counts) const;

  /// \brief Threshold-aware MatchedCounts: additionally fills `candidates`
  /// with the groups whose count reached `min_count` (ascending GroupId).
  /// Short-circuits without touching any column when even a group matching
  /// every query token could not reach `min_count` — i.e. when the total
  /// attainable count (summed multiplicity of query tokens with non-empty
  /// columns) falls below it — and skips hopeless groups during the
  /// harvest. With min_count == 0 every group is a candidate.
  size_t MatchedCandidates(SetView query, uint32_t min_count,
                           std::vector<uint32_t>* counts,
                           std::vector<GroupId>* candidates) const;

  /// \brief Batched MatchedCounts over `num_queries` canonicalized queries:
  /// inverts the batch into a token -> subscriber plan and walks each
  /// referenced column once, fanning its decoded containers out to every
  /// subscribing query's counter row. `counts` is resized to
  /// num_queries * num_groups() (row-major; row q is query q's counter
  /// array, byte-identical to a solo MatchedCounts run).
  /// `columns_visited` is resized to the per-query non-empty column counts
  /// (the solo MatchedCounts return values). Returns the number of
  /// *distinct* columns walked — the work the batch actually did.
  size_t MatchedCountsBatch(const SetView* queries, size_t num_queries,
                            std::vector<uint32_t>* counts,
                            std::vector<size_t>* columns_visited) const;

  /// \brief Batched MatchedCandidates: per-query thresholds in
  /// `min_counts[0 .. num_queries)`. Queries whose attainable count falls
  /// below their threshold are excluded from the shared walk entirely
  /// (zero counter row, empty candidate list, columns_visited 0 — exactly
  /// the solo short-circuit). `candidates[q]` gets query q's qualifying
  /// groups ascending. Returns the number of distinct columns walked.
  size_t MatchedCandidatesBatch(const SetView* queries, size_t num_queries,
                                const uint32_t* min_counts,
                                std::vector<uint32_t>* counts,
                                std::vector<std::vector<GroupId>>* candidates,
                                std::vector<size_t>* columns_visited) const;

  /// \brief kNN backfill for the zero-count groups MatchedCandidates
  /// pruned: their members all have similarity exactly 0, so they are only
  /// offered (at similarity 0) when the result underflowed k, or when
  /// similarity-0 hits made the cut and a smaller id might exist among
  /// them (HitOrder tie-handling). No-op when min_count == 0 — nothing was
  /// pruned. Shared by the memory and disk LES3 engines through
  /// search::CandidateVerifier so the subtle tie rule lives in one place.
  void BackfillZeroCountGroups(const std::vector<uint32_t>& counts,
                               uint32_t min_count, TopKHits* best) const;

  /// Pointer variant over one row of a batch counts matrix (`counts` has
  /// num_groups() entries).
  void BackfillZeroCountGroups(const uint32_t* counts, uint32_t min_count,
                               TopKHits* best) const;

  /// \brief Reference per-bit implementation of MatchedCounts (the
  /// pre-kernel ForEach loop). Kept as the differential baseline for the
  /// property tests and the micro benches; not used on the query path.
  size_t MatchedCountsReference(SetView query,
                                std::vector<uint32_t>* counts) const;

  /// \brief Similarity upper bounds UB(Q, G_g) for all groups.
  /// Returns the number of token columns visited.
  size_t UpperBounds(SetView query, SimilarityMeasure measure,
                     std::vector<double>* ubs) const;

  /// \brief Inserts a new set (already appended to the caller's database as
  /// `id`) per Section 6; returns the chosen group.
  GroupId AddSet(SetId id, SetView set, SimilarityMeasure measure);

  /// \brief Removes set `id` from its group. `size` is the set's size at
  /// insert time (the caller reads db.set_size(id) before tombstoning the
  /// database entry); it keys the O(log |G|) binary search into the
  /// (size, id)-ordered member run. group_of(id) becomes kInvalidGroup and
  /// the group's dirt counter is charged one stale-bit debt. Returns false
  /// when `id` is unknown or already removed.
  bool RemoveSet(SetId id, uint32_t size);

  /// \brief Re-routes a previously removed id with new content (Update
  /// keeps the id stable). Requires group_of(id) == kInvalidGroup. Same
  /// Section 6 routing as AddSet; the member is spliced at its exact
  /// (size, id) position since a reinserted id need not be the largest.
  GroupId ReinsertSet(SetId id, SetView set, SimilarityMeasure measure);

  /// Stale-bit debt of group `g`: members removed (or moved out by a
  /// split) since its columns were last recomputed. Monotone between
  /// RecomputeGroupColumns calls; the maintenance policy triggers on the
  /// ratio of dirt to live size.
  uint32_t group_dirt(GroupId g) const { return group_dirt_[g]; }

  /// Total stale-bit debt across groups. Zero means the in-memory columns
  /// are exact (no bit without a live member behind it), so snapshot save
  /// can serialize them as-is instead of compacting.
  uint64_t TotalDirt() const {
    uint64_t total = 0;
    for (uint32_t d : group_dirt_) total += d;
    return total;
  }

  /// \brief Splits group `g` at its size median: the upper half of the
  /// (size, id)-ordered member run moves to a new group appended at
  /// num_groups(). Column bits for the new group are built from the moved
  /// members' tokens (read from `db`); the source group's bits for those
  /// tokens become stale debt. Both halves stay (size, id)-ordered.
  /// Returns the new group id, or kInvalidGroup when |G_g| < 2.
  GroupId SplitGroup(GroupId g, const SetDatabase& db);

  /// \brief Drops group `g`'s stale column bits: recomputes the exact
  /// token set of its live members from `db` and removes the bit g from
  /// every column not in it. O(num_token_columns) — a background
  /// maintenance cost, never on the query path. Resets the dirt counter.
  /// Returns the number of bits dropped.
  size_t RecomputeGroupColumns(GroupId g, const SetDatabase& db);

  /// Compresses columns with run encoding where beneficial (Roaring
  /// backend only; the dense backend is already fixed-shape).
  void RunOptimize();

  /// Bytes of the bitmap columns (the "TGM size" of Figure 11).
  uint64_t BitmapBytes() const;

  /// BitmapBytes plus the group membership arrays (ids and sizes).
  uint64_t MemoryBytes() const;

  /// Direct bit probe M[g, t] (test/debug; O(log) inside the column).
  bool Test(GroupId g, TokenId t) const;

  /// \brief Serializes the bitmap backend tag plus every column's exact
  /// container state (the snapshot's TGMC chunk). The partition half of
  /// the matrix — num_groups + assignment — travels in its own chunk, so
  /// it is not repeated here. Member order is NOT persisted: it is an
  /// in-memory property re-derived from the set sizes on open.
  void SerializeColumns(persist::ByteWriter* writer) const;

  /// \brief Rebuilds a matrix from a loaded partition plus serialized
  /// columns. `set_sizes` holds the database's set sizes parallel to
  /// `assignment` (the decoder reads them off the already-loaded DB chunk)
  /// so membership lists come back in the same (size, id) order the
  /// building constructor produces. A kInvalidGroup entry is a tombstoned
  /// id (tombstone-flagged snapshots persist holes that way) and joins no
  /// group; every
  /// other assignment entry must be < `num_groups`, and every column value
  /// must be < `num_groups` (membership arrays and count kernels index by
  /// those values); malformed input returns a Status.
  static Result<Tgm> Deserialize(const std::vector<GroupId>& assignment,
                                 uint32_t num_groups,
                                 const std::vector<uint32_t>& set_sizes,
                                 persist::ByteReader* reader);

  /// \brief SerializeColumns variant for save-time compaction: serializes
  /// columns rebuilt from the live members only — exactly what a fresh
  /// build over the same live assignment would produce, with every stale
  /// bit dropped — without mutating this matrix. The column count is
  /// db.num_tokens(), matching the building constructor.
  void SerializeCompactedColumns(const SetDatabase& db,
                                 persist::ByteWriter* writer) const;

 private:
  /// Re-sorts every group's members by (size, id) and (re)builds the
  /// parallel size arrays; `size_of(id)` returns a set's size.
  template <typename SizeFn>
  void OrderMembersBySize(const SizeFn& size_of);

  /// Section 6 stage 1: best group by UB (ties -> smallest group).
  GroupId RouteBestGroup(SetView set, SimilarityMeasure measure) const;

  /// Splices (id, size) at its (size, id) position in group g's run.
  void InsertMember(GroupId g, SetId id, uint32_t size);

  /// Sets M[g, t] = 1 for every distinct token of `set`, growing columns
  /// for unseen tokens.
  void AddColumnBits(GroupId g, SetView set);

  bitmap::BitmapBackend bitmap_backend_;
  std::vector<bitmap::BitmapColumn> columns_;  // per token: groups with it
  std::vector<std::vector<SetId>> members_;    // per group, (size, id) order
  std::vector<std::vector<uint32_t>> member_sizes_;  // parallel to members_
  std::vector<GroupId> group_of_;
  std::vector<uint32_t> group_dirt_;  // per group, stale-bit debt
  uint32_t nonempty_groups_ = 0;
};

}  // namespace tgm
}  // namespace les3

#endif  // LES3_TGM_TGM_H_
