// TGM — the token-group matrix (paper Section 3).
//
// M[g, t] = 1 iff some set in group G_g contains token t. The matrix is
// stored column-wise: one Roaring bitmap per token holding the groups that
// contain it, which lets a query compute the matched-token count of every
// group in one pass over its tokens (cost O(Σ_{t in Q} |column_t|), far
// below O(n |Q|) for sparse data). Group membership lists are kept alongside
// so the search layer can verify candidates group-at-a-time.
//
// Updates (paper Section 6): AddSet routes a new set to the group with the
// highest similarity upper bound (ties -> smallest group) and extends the
// matrix, growing new columns when previously unseen tokens appear.

#ifndef LES3_TGM_TGM_H_
#define LES3_TGM_TGM_H_

#include <vector>

#include "bitmap/roaring.h"
#include "core/database.h"
#include "core/similarity.h"
#include "core/types.h"

namespace les3 {
namespace tgm {

/// \brief The token-group matrix plus group membership.
class Tgm {
 public:
  /// Builds from a partitioning of `db` into `num_groups` groups.
  Tgm(const SetDatabase& db, const std::vector<GroupId>& assignment,
      uint32_t num_groups);

  uint32_t num_groups() const {
    return static_cast<uint32_t>(members_.size());
  }
  uint32_t num_token_columns() const {
    return static_cast<uint32_t>(columns_.size());
  }

  const std::vector<SetId>& group_members(GroupId g) const {
    return members_[g];
  }
  size_t group_size(GroupId g) const { return members_[g].size(); }

  /// Group of a set (maintained across AddSet).
  GroupId group_of(SetId id) const { return group_of_[id]; }

  /// \brief Fills `counts[g]` with Σ_{t in Q} M[g, t] (query multiplicity
  /// counted, per Equation 2/4). `counts` is resized to num_groups().
  /// Returns the number of non-empty token columns visited.
  size_t MatchedCounts(const SetRecord& query,
                       std::vector<uint32_t>* counts) const;

  /// \brief Similarity upper bounds UB(Q, G_g) for all groups.
  /// Returns the number of token columns visited.
  size_t UpperBounds(const SetRecord& query, SimilarityMeasure measure,
                     std::vector<double>* ubs) const;

  /// \brief Inserts a new set (already appended to the caller's database as
  /// `id`) per Section 6; returns the chosen group.
  GroupId AddSet(SetId id, const SetRecord& set, SimilarityMeasure measure);

  /// Compresses columns with run encoding where beneficial.
  void RunOptimize();

  /// Bytes of the compressed bitmap columns (the "TGM size" of Figure 11).
  uint64_t BitmapBytes() const;

  /// BitmapBytes plus the group membership arrays.
  uint64_t MemoryBytes() const;

  /// Direct bit probe M[g, t] (test/debug; O(log) inside the column).
  bool Test(GroupId g, TokenId t) const;

 private:
  std::vector<bitmap::Roaring> columns_;   // per token: groups containing it
  std::vector<std::vector<SetId>> members_;
  std::vector<GroupId> group_of_;
};

}  // namespace tgm
}  // namespace les3

#endif  // LES3_TGM_TGM_H_
