#include "datagen/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/similarity.h"
#include "datagen/zipf.h"
#include "util/logging.h"

namespace les3 {
namespace datagen {
namespace {

/// Geometric set-size sampler with mean `avg` clamped to [min_size,
/// max_size]. Real benchmarks have roughly geometric/log-normal size decay;
/// geometric keeps the generator a one-liner and matches avg exactly enough.
size_t SampleSize(double avg, size_t min_size, size_t max_size, Rng* rng) {
  LES3_CHECK_GE(avg, 1.0);
  if (min_size >= max_size) return min_size;
  double mean_above = std::max(avg - static_cast<double>(min_size), 0.05);
  double p = 1.0 / (1.0 + mean_above);
  // Inverse-CDF geometric sample.
  double u = rng->NextDouble();
  double g = std::floor(std::log1p(-u) / std::log1p(-p));
  size_t size = min_size + static_cast<size_t>(std::max(0.0, g));
  return std::min(size, max_size);
}

}  // namespace

SetDatabase GenerateUniform(const UniformOptions& opts) {
  LES3_CHECK_GT(opts.num_tokens, 0u);
  Rng rng(opts.seed);
  SetDatabase db(opts.num_tokens);
  for (uint32_t i = 0; i < opts.num_sets; ++i) {
    size_t size = SampleSize(opts.avg_set_size, 1, opts.num_tokens, &rng);
    auto sample = rng.SampleWithoutReplacement(opts.num_tokens,
                                               static_cast<uint32_t>(size));
    db.AddSet(SetRecord::FromTokens(
        std::vector<TokenId>(sample.begin(), sample.end())));
  }
  return db;
}

SetDatabase GenerateZipf(const ZipfOptions& opts) {
  LES3_CHECK_GT(opts.num_tokens, 0u);
  Rng rng(opts.seed);
  ZipfSampler zipf(opts.num_tokens, opts.zipf_exponent);
  SetDatabase db(opts.num_tokens);

  // Latent-cluster core pools (empty when cluster_fraction == 0). Core
  // tokens are uniform over the universe — the *distinctive* content of a
  // cluster lives in the popularity tail, while the head tokens come from
  // the global Zipf draws below, mirroring real corpora (a few items in
  // half the sets + long-tail content that identifies near-duplicates).
  const bool clustered = opts.cluster_fraction > 0.0;
  const size_t core_size = static_cast<size_t>(
      std::max(4.0, 1.5 * opts.avg_set_size));
  std::vector<TokenId> core;  // pool of the current cluster
  auto refresh_core = [&] {
    core.clear();
    for (size_t j = 0; j < core_size; ++j) {
      core.push_back(static_cast<TokenId>(rng.Uniform(opts.num_tokens)));
    }
  };

  std::unordered_set<TokenId> seen;
  for (uint32_t i = 0; i < opts.num_sets; ++i) {
    if (clustered && i % opts.sets_per_cluster == 0) refresh_core();
    bool orphan = clustered && rng.Bernoulli(opts.orphan_fraction);
    size_t size = SampleSize(opts.avg_set_size, opts.min_set_size,
                             std::min<size_t>(opts.max_set_size,
                                              opts.num_tokens),
                             &rng);
    seen.clear();
    std::vector<TokenId> tokens;
    tokens.reserve(size);
    // Rejection keeps tokens distinct within a set; popular tokens still
    // appear in many sets, which is the skew that matters.
    size_t attempts = 0;
    while (tokens.size() < size && attempts < size * 50 + 100) {
      ++attempts;
      TokenId t;
      if (clustered && !orphan && rng.Bernoulli(opts.cluster_fraction)) {
        t = core[rng.Uniform(core.size())];
      } else {
        t = static_cast<TokenId>(zipf.Sample(&rng));
      }
      if (seen.insert(t).second) tokens.push_back(t);
    }
    db.AddSet(SetRecord::FromTokens(std::move(tokens)));
  }
  return db;
}

SetDatabase GeneratePowerLawSimilarity(const PowerLawSimOptions& opts) {
  LES3_CHECK_GE(opts.alpha, 1.0);
  LES3_CHECK_GT(opts.sets_per_cluster, 0u);
  Rng rng(opts.seed);
  SetDatabase db(opts.num_tokens);
  // P[sim = v] ~ v^-alpha: at alpha -> 1 the similarity mass sits high
  // (most pairs similar), at large alpha it concentrates near zero (most
  // pairs dissimilar). Realized by blending a GLOBAL token pool shared by
  // every set (weight 1/alpha) with per-cluster pools (the rest): alpha = 1
  // degenerates to one blob where any two sets overlap heavily; large alpha
  // yields distinct islands with near-zero cross-cluster similarity.
  const double global_fraction = 1.0 / opts.alpha;
  const size_t avg = static_cast<size_t>(std::max(2.0, opts.avg_set_size));
  const uint32_t pool = static_cast<uint32_t>(std::min<size_t>(
      std::max<size_t>(4, avg + avg / 4), opts.num_tokens));
  auto global_pool = rng.SampleWithoutReplacement(opts.num_tokens, pool);
  uint32_t num_clusters =
      (opts.num_sets + opts.sets_per_cluster - 1) / opts.sets_per_cluster;
  uint32_t produced = 0;
  for (uint32_t c = 0; c < num_clusters && produced < opts.num_sets; ++c) {
    auto core = rng.SampleWithoutReplacement(opts.num_tokens, pool);
    for (uint32_t m = 0; m < opts.sets_per_cluster && produced < opts.num_sets;
         ++m, ++produced) {
      size_t size = SampleSize(opts.avg_set_size, 2, opts.num_tokens, &rng);
      std::unordered_set<TokenId> tokens;
      for (size_t j = 0; j < size; ++j) {
        double r = rng.NextDouble();
        if (r < global_fraction) {
          tokens.insert(global_pool[rng.Uniform(global_pool.size())]);
        } else if (r < global_fraction + (1.0 - global_fraction) * 0.95) {
          tokens.insert(core[rng.Uniform(core.size())]);
        } else {
          tokens.insert(static_cast<TokenId>(rng.Uniform(opts.num_tokens)));
        }
      }
      db.AddSet(SetRecord::FromTokens(
          std::vector<TokenId>(tokens.begin(), tokens.end())));
    }
  }
  return db;
}

std::vector<SetId> SampleQueryIds(const SetDatabase& db, size_t count,
                                  uint64_t seed) {
  Rng rng(seed);
  count = std::min(count, db.size());
  auto sample = rng.SampleWithoutReplacement(
      static_cast<uint32_t>(db.size()), static_cast<uint32_t>(count));
  return {sample.begin(), sample.end()};
}

std::vector<double> SimilarityHistogram(const SetDatabase& db, size_t pairs,
                                        size_t bins, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> hist(bins, 0.0);
  if (db.size() < 2) return hist;
  for (size_t i = 0; i < pairs; ++i) {
    SetId a = static_cast<SetId>(rng.Uniform(db.size()));
    SetId b = static_cast<SetId>(rng.Uniform(db.size()));
    if (a == b) {
      --i;
      continue;
    }
    double sim =
        Similarity(SimilarityMeasure::kJaccard, db.set(a), db.set(b));
    size_t bin = std::min(bins - 1, static_cast<size_t>(sim * bins));
    hist[bin] += 1.0;
  }
  for (auto& h : hist) h /= static_cast<double>(pairs);
  return hist;
}

}  // namespace datagen
}  // namespace les3
