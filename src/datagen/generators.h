// Synthetic database generators.
//
// Three families, matching the paper's experimental needs:
//   - uniform-token databases (the Section 4.1 analysis assumption),
//   - Zipf-token databases (skewed token popularity, like real benchmarks),
//   - power-law-similarity databases (the Figure 14 workload: the pairwise
//     similarity distribution follows P[sim = v] ~ v^-alpha; larger alpha
//     means most pairs are dissimilar).

#ifndef LES3_DATAGEN_GENERATORS_H_
#define LES3_DATAGEN_GENERATORS_H_

#include <vector>

#include "core/database.h"
#include "util/random.h"

namespace les3 {
namespace datagen {

/// Options for uniform-token generation (Definition 4.1's assumption: every
/// token equally and independently likely).
struct UniformOptions {
  uint32_t num_sets = 10000;
  uint32_t num_tokens = 1000;
  double avg_set_size = 10.0;
  uint64_t seed = 1;
};

SetDatabase GenerateUniform(const UniformOptions& opts);

/// Options for Zipf-token generation. Real transactional/click/text data
/// combines Zipfian token popularity with strong co-occurrence: sets from
/// the same latent context share tokens. `cluster_fraction` > 0 adds that
/// structure — each set belongs to a latent cluster and draws that fraction
/// of its tokens from the cluster's core pool (itself Zipf-sampled, so
/// marginal popularity stays skewed) — which is the structure partitioning
/// indexes exploit.
struct ZipfOptions {
  uint32_t num_sets = 10000;
  uint32_t num_tokens = 10000;
  double avg_set_size = 10.0;
  size_t min_set_size = 1;
  size_t max_set_size = 1000;
  double zipf_exponent = 1.0;  // token popularity skew
  double cluster_fraction = 0.0;  // 0 = independent tokens
  uint32_t sets_per_cluster = 256;
  /// Fraction of "orphan" sets drawn purely from the global Zipf
  /// distribution (no cluster membership). Real corpora mix duplicate-rich
  /// regions with one-off records; orphan queries are the ones whose k-th
  /// neighbor similarity is low, the regime that separates filter designs.
  double orphan_fraction = 0.0;
  uint64_t seed = 1;
};

SetDatabase GenerateZipf(const ZipfOptions& opts);

/// Options for the power-law-similarity workload of Figure 14. Sets are
/// organized in latent clusters; members draw a fraction 1/alpha of their
/// tokens from the cluster core and the rest at random, so larger alpha
/// pushes the pairwise-similarity mass toward zero (P[sim = v] ~ v^-alpha).
struct PowerLawSimOptions {
  uint32_t num_sets = 20000;
  uint32_t num_tokens = 20000;
  double avg_set_size = 12.0;
  double alpha = 2.0;          // >= 1
  uint32_t sets_per_cluster = 20;
  uint64_t seed = 1;
};

SetDatabase GeneratePowerLawSimilarity(const PowerLawSimOptions& opts);

/// Samples `count` query sets uniformly from the database (the paper's
/// protocol: 10 k random sets per experiment, scaled down in our benches).
std::vector<SetId> SampleQueryIds(const SetDatabase& db, size_t count,
                                  uint64_t seed);

/// Empirical distribution of pairwise similarities over `pairs` random
/// pairs; returns histogram over [0, 1] with `bins` buckets (used to verify
/// the Figure 14 workload really is power-law shaped).
std::vector<double> SimilarityHistogram(const SetDatabase& db, size_t pairs,
                                        size_t bins, uint64_t seed);

}  // namespace datagen
}  // namespace les3

#endif  // LES3_DATAGEN_GENERATORS_H_
