// Zipf-distributed token sampling.
//
// Real set-similarity benchmarks (KOSARAK, DBLP, AOL, ...) have strongly
// skewed token popularity; the analogs in datagen/analogs.h sample token ids
// from this distribution to reproduce that skew.

#ifndef LES3_DATAGEN_ZIPF_H_
#define LES3_DATAGEN_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace les3 {
namespace datagen {

/// \brief Samples values in [0, n) with P(i) ∝ 1 / (i + 1)^s.
///
/// Uses a precomputed CDF with binary search: O(n) setup, O(log n) per
/// sample, and bit-exact determinism across platforms.
class ZipfSampler {
 public:
  /// `n` must be > 0; `s` >= 0 (s = 0 is uniform).
  ZipfSampler(uint64_t n, double s);

  /// Draws one value in [0, n).
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

}  // namespace datagen
}  // namespace les3

#endif  // LES3_DATAGEN_ZIPF_H_
