#include "datagen/analogs.h"

#include "datagen/generators.h"
#include "util/logging.h"

namespace les3 {
namespace datagen {
namespace {

std::vector<AnalogSpec> MakeSpecs() {
  // name, paper |D|, paper |T|, avg, min, max(analog-clamped), |D| scale,
  // analog |T|.
  //
  // Only |D| is scaled down. The token universe is kept at the paper's size
  // (analog_tokens == paper |T|) for the memory-resident datasets: the TGM's
  // pruning power depends on the fraction of the universe each group
  // covers, and that fraction is only preserved when |T| stays put. For FS
  // the tokens ARE the users, so the analog universe equals the analog
  // |D|; for PMC a Heaps-law-style reduced vocabulary is used.
  auto make = [](std::string name, uint64_t d, uint32_t t, double avg,
                 size_t mn, size_t mx, uint32_t scale,
                 uint32_t analog_tokens, size_t clamp_max, double zipf,
                 bool disk) {
    AnalogSpec s;
    s.name = std::move(name);
    s.paper_num_sets = d;
    s.paper_num_tokens = t;
    s.avg_set_size = avg;
    s.min_set_size = mn;
    s.max_set_size = std::min(mx, clamp_max);
    s.scale = scale;
    s.num_sets = static_cast<uint32_t>(d / scale);
    s.num_tokens = analog_tokens == 0 ? s.num_sets : analog_tokens;
    s.zipf_exponent = zipf;
    // Real benchmark data is strongly co-occurrence structured (click
    // sessions, friend lists, titles); latent clusters of ~200 sets drawing
    // 80% of their tokens from a shared pool reproduce that while keeping
    // the Zipfian marginals.
    s.cluster_fraction = 0.8;
    s.sets_per_cluster = 200;
    // Half the sets are one-off records with no near-duplicates: their kNN
    // neighbors are genuinely dissimilar, the regime where prefix-filter
    // candidate sets explode (paper Section 7.6 discussion).
    s.orphan_fraction = 0.5;
    s.disk_scale = disk;
    return s;
  };
  std::vector<AnalogSpec> specs;
  specs.push_back(make("KOSARAK", 990002, 41270, 8.1, 1, 2498, 10, 41270,
                       400, 1.1, false));
  specs.push_back(make("LIVEJ", 3201202, 7489073, 35.1, 1, 300, 32, 7489073,
                       300, 1.05, false));
  specs.push_back(make("DBLP", 5875251, 3720067, 8.7, 2, 462, 48, 3720067,
                       462, 1.2, false));
  specs.push_back(make("AOL", 10154742, 3849555, 3.0, 1, 245, 64, 3849555,
                       245, 1.2, false));
  specs.push_back(make("FS", 65608366, 65608366, 27.5, 1, 3615, 256,
                       /*analog_tokens=0 -> |D|*/ 0, 600, 1.05, true));
  specs.push_back(make("PMC", 787220474, 22923401, 8.8, 1, 2597, 2048,
                       1000000, 400, 1.2, true));
  return specs;
}

}  // namespace

const std::vector<AnalogSpec>& AllAnalogSpecs() {
  static const std::vector<AnalogSpec>* specs =
      new std::vector<AnalogSpec>(MakeSpecs());
  return *specs;
}

std::vector<AnalogSpec> MemoryAnalogSpecs() {
  std::vector<AnalogSpec> out;
  for (const auto& s : AllAnalogSpecs()) {
    if (!s.disk_scale) out.push_back(s);
  }
  return out;
}

std::vector<AnalogSpec> DiskAnalogSpecs() {
  std::vector<AnalogSpec> out;
  for (const auto& s : AllAnalogSpecs()) {
    if (s.disk_scale) out.push_back(s);
  }
  return out;
}

const AnalogSpec& AnalogSpecByName(const std::string& name) {
  for (const auto& s : AllAnalogSpecs()) {
    if (s.name == name) return s;
  }
  LES3_CHECK(false && "unknown analog dataset");
  __builtin_unreachable();
}

SetDatabase GenerateAnalog(const AnalogSpec& spec, uint64_t seed) {
  return GenerateAnalogSample(spec, spec.num_sets, seed);
}

SetDatabase GenerateAnalogSample(const AnalogSpec& spec, uint32_t num_sets,
                                 uint64_t seed) {
  ZipfOptions opts;
  opts.num_sets = num_sets;
  opts.num_tokens = spec.num_tokens;
  opts.avg_set_size = spec.avg_set_size;
  opts.min_set_size = spec.min_set_size;
  opts.max_set_size = spec.max_set_size;
  opts.zipf_exponent = spec.zipf_exponent;
  opts.cluster_fraction = spec.cluster_fraction;
  opts.sets_per_cluster = spec.sets_per_cluster;
  opts.orphan_fraction = spec.orphan_fraction;
  opts.seed = seed;
  return GenerateZipf(opts);
}

}  // namespace datagen
}  // namespace les3
