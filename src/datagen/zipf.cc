#include "datagen/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace les3 {
namespace datagen {

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  LES3_CHECK_GT(n, 0u);
  LES3_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i + 1), -s);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against floating-point shortfall
}

uint64_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace datagen
}  // namespace les3
