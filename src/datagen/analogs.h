// Scaled-down synthetic analogs of the paper's six benchmark datasets
// (Table 2). We cannot ship KOSARAK/LIVEJ/DBLP/AOL/FS/PMC, so each analog
// matches the published per-set statistics (avg/max/min set size, Zipfian
// token popularity, |T|/|D| ratio) with |D| scaled down so the full bench
// suite runs in minutes. The scale factor per dataset is recorded in the
// spec and reported by the benches.

#ifndef LES3_DATAGEN_ANALOGS_H_
#define LES3_DATAGEN_ANALOGS_H_

#include <string>
#include <vector>

#include "core/database.h"

namespace les3 {
namespace datagen {

/// Specification of one dataset analog.
struct AnalogSpec {
  std::string name;          // e.g. "KOSARAK"
  uint64_t paper_num_sets;   // |D| in Table 2
  uint32_t paper_num_tokens; // |T| in Table 2
  double avg_set_size;       // Table 2 Avg
  size_t min_set_size;       // Table 2 Min
  size_t max_set_size;       // Table 2 Max (clamped for the analog)
  uint32_t scale;            // |D| divisor applied for the analog
  uint32_t num_sets;         // analog |D| = paper_num_sets / scale
  uint32_t num_tokens;       // analog |T| (scaled with the same factor)
  double zipf_exponent;      // token popularity skew
  double cluster_fraction;   // co-occurrence strength (see ZipfOptions)
  uint32_t sets_per_cluster; // latent cluster size
  double orphan_fraction;    // fraction of cluster-free sets
  bool disk_scale;           // true for FS/PMC (used in the disk benches)
};

/// The six Table 2 datasets, in paper order.
const std::vector<AnalogSpec>& AllAnalogSpecs();

/// The four memory-resident datasets (KOSARAK, LIVEJ, DBLP, AOL).
std::vector<AnalogSpec> MemoryAnalogSpecs();

/// The two disk-scale datasets (FS, PMC).
std::vector<AnalogSpec> DiskAnalogSpecs();

/// Looks a spec up by name; aborts if unknown.
const AnalogSpec& AnalogSpecByName(const std::string& name);

/// Generates the analog database for `spec` (deterministic per seed).
SetDatabase GenerateAnalog(const AnalogSpec& spec, uint64_t seed = 7);

/// Convenience: a smaller version of the analog (num_sets overridden) for
/// quick experiments such as the Figure 8 sampled-KOSARAK comparison.
SetDatabase GenerateAnalogSample(const AnalogSpec& spec, uint32_t num_sets,
                                 uint64_t seed = 7);

}  // namespace datagen
}  // namespace les3

#endif  // LES3_DATAGEN_ANALOGS_H_
