#include "partition/metrics.h"

#include <cmath>
#include <unordered_set>

#include "partition/partitioner.h"
#include "util/logging.h"
#include "util/random.h"

namespace les3 {
namespace partition {

double ExactGpo(const SetDatabase& db, const std::vector<GroupId>& assignment,
                uint32_t num_groups, SimilarityMeasure measure) {
  auto groups = GroupMembers(assignment, num_groups);
  double total = 0.0;
  for (const auto& members : groups) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        total += 2.0 * (1.0 - Similarity(measure, db.set(members[i]),
                                         db.set(members[j])));
      }
    }
  }
  // Equation (13) sums over ordered pairs (Sx, Sy), hence the factor 2
  // above; self-pairs contribute 0.
  return total;
}

double EstimateGpo(const SetDatabase& db,
                   const std::vector<GroupId>& assignment,
                   uint32_t num_groups, SimilarityMeasure measure,
                   size_t pairs_per_group, uint64_t seed) {
  auto groups = GroupMembers(assignment, num_groups);
  Rng rng(seed);
  double total = 0.0;
  for (const auto& members : groups) {
    size_t n = members.size();
    if (n < 2) continue;
    uint64_t all_pairs = static_cast<uint64_t>(n) * (n - 1);  // ordered
    uint64_t sample = std::min<uint64_t>(pairs_per_group, all_pairs / 2);
    if (sample == 0) continue;
    double acc = 0.0;
    for (uint64_t s = 0; s < sample; ++s) {
      size_t i = rng.Uniform(n);
      size_t j = rng.Uniform(n - 1);
      if (j >= i) ++j;
      acc += 1.0 - Similarity(measure, db.set(members[i]), db.set(members[j]));
    }
    total += acc / static_cast<double>(sample) * static_cast<double>(all_pairs);
  }
  return total;
}

uint64_t UnionObjective(const SetDatabase& db,
                        const std::vector<GroupId>& assignment,
                        uint32_t num_groups) {
  auto groups = GroupMembers(assignment, num_groups);
  uint64_t total = 0;
  std::unordered_set<TokenId> tokens;
  for (const auto& members : groups) {
    tokens.clear();
    for (SetId id : members) {
      for (TokenId t : db.set(id).tokens()) tokens.insert(t);
    }
    total += tokens.size();
  }
  return total;
}

BalanceStats ComputeBalance(const std::vector<GroupId>& assignment,
                            uint32_t num_groups) {
  BalanceStats stats;
  if (num_groups == 0) return stats;
  std::vector<size_t> sizes(num_groups, 0);
  for (GroupId g : assignment) {
    LES3_CHECK_LT(g, num_groups);
    ++sizes[g];
  }
  stats.min_size = sizes[0];
  stats.max_size = sizes[0];
  double sum = 0.0;
  for (size_t s : sizes) {
    stats.min_size = std::min(stats.min_size, s);
    stats.max_size = std::max(stats.max_size, s);
    sum += static_cast<double>(s);
  }
  stats.mean_size = sum / num_groups;
  double var = 0.0;
  for (size_t s : sizes) {
    double d = static_cast<double>(s) - stats.mean_size;
    var += d * d;
  }
  stats.stddev = std::sqrt(var / num_groups);
  return stats;
}

}  // namespace partition
}  // namespace les3
