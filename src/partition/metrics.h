// Partition-quality metrics from Section 4: the general partitioning
// objective GPO (Equation 13), the union-size objective U (Equation 10 /
// Property 2), and balance statistics (Property 1).

#ifndef LES3_PARTITION_METRICS_H_
#define LES3_PARTITION_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/similarity.h"
#include "core/types.h"

namespace les3 {
namespace partition {

/// Exact GPO = sum over groups of all intra-group pairwise distances
/// (1 - Sim). Quadratic in group sizes — use on small inputs or via
/// EstimateGpo below.
double ExactGpo(const SetDatabase& db, const std::vector<GroupId>& assignment,
                uint32_t num_groups, SimilarityMeasure measure);

/// Sampled GPO estimate: per group, up to `pairs_per_group` random pairs,
/// scaled to the full pair count (the paper's footnote-2 approximation).
double EstimateGpo(const SetDatabase& db,
                   const std::vector<GroupId>& assignment,
                   uint32_t num_groups, SimilarityMeasure measure,
                   size_t pairs_per_group, uint64_t seed);

/// U = sum over groups of |union of member sets| (Equation 10).
uint64_t UnionObjective(const SetDatabase& db,
                        const std::vector<GroupId>& assignment,
                        uint32_t num_groups);

/// Group-size balance summary.
struct BalanceStats {
  size_t min_size = 0;
  size_t max_size = 0;
  double mean_size = 0.0;
  double stddev = 0.0;
};

BalanceStats ComputeBalance(const std::vector<GroupId>& assignment,
                            uint32_t num_groups);

}  // namespace partition
}  // namespace les3

#endif  // LES3_PARTITION_METRICS_H_
