#include "partition/sorted_init.h"

#include <algorithm>

#include "util/logging.h"

namespace les3 {
namespace partition {

std::vector<GroupId> SortedInitialization(const SetDatabase& db,
                                          uint32_t num_groups) {
  LES3_CHECK_GT(num_groups, 0u);
  const size_t n = db.size();
  std::vector<SetId> order(n);
  for (SetId i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](SetId a, SetId b) {
    TokenId ma = db.set(a).MinToken();
    TokenId mb = db.set(b).MinToken();
    if (ma != mb) return ma < mb;
    return a < b;
  });
  std::vector<GroupId> assignment(n, 0);
  for (size_t rank = 0; rank < n; ++rank) {
    assignment[order[rank]] =
        static_cast<GroupId>(rank * num_groups / std::max<size_t>(n, 1));
  }
  return assignment;
}

}  // namespace partition
}  // namespace les3
