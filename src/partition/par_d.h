// PAR-D: divisive (top-down) clustering (Section 4.3.3).
//
// Starts with all sets in one group and repeatedly splits the group with the
// largest (sampled) φ: a random member seeds the new group (the paper's
// simplification over argmax individual distance) and every other member
// moves if that lowers the GPO, judged on sampled distance sums.

#ifndef LES3_PARTITION_PAR_D_H_
#define LES3_PARTITION_PAR_D_H_

#include "core/similarity.h"
#include "partition/partitioner.h"

namespace les3 {
namespace partition {

struct ParDOptions {
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;
  size_t sample_size = 8;  // members sampled per distance-sum estimate
  uint64_t seed = 29;
};

/// \brief Divisive clustering partitioner.
class ParD : public Partitioner {
 public:
  explicit ParD(ParDOptions opts = {}) : opts_(opts) {}

  PartitionResult Partition(const SetDatabase& db,
                            uint32_t target_groups) override;
  std::string name() const override { return "PAR-D"; }

 private:
  ParDOptions opts_;
};

}  // namespace partition
}  // namespace les3

#endif  // LES3_PARTITION_PAR_D_H_
