// Exact GPO minimization for tiny inputs by exhaustive enumeration of
// set-partitions (restricted growth strings). Minimizing GPO is NP-complete
// (Theorem 4.4), so this is only feasible for |D| up to ~12 — enough to
// validate the heuristics and the balance property of Theorem 4.2 in tests
// and ablations.

#ifndef LES3_PARTITION_EXACT_SMALL_H_
#define LES3_PARTITION_EXACT_SMALL_H_

#include <vector>

#include "core/database.h"
#include "core/similarity.h"
#include "core/types.h"

namespace les3 {
namespace partition {

/// Result of exhaustive GPO minimization.
struct ExactPartition {
  std::vector<GroupId> assignment;
  uint32_t num_groups = 0;
  double gpo = 0.0;
};

/// \brief Finds the assignment of `db` into exactly `num_groups` non-empty
/// groups minimizing GPO (Equation 13). Aborts if |D| > 14 (the search is
/// O(num_groups^|D|)).
ExactPartition MinimizeGpoExact(const SetDatabase& db, uint32_t num_groups,
                                SimilarityMeasure measure);

}  // namespace partition
}  // namespace les3

#endif  // LES3_PARTITION_EXACT_SMALL_H_
