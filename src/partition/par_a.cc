#include "partition/par_a.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace les3 {
namespace partition {
namespace {

struct Group {
  std::vector<SetId> members;
  double phi = 0.0;  // sampled intra-group pairwise distance sum (ordered/2)
  bool alive = true;
};

/// Sampled mean distance between members of two groups.
double MeanCrossDistance(const SetDatabase& db, const Group& a,
                         const Group& b, SimilarityMeasure measure,
                         size_t samples, Rng* rng) {
  double acc = 0.0;
  size_t count = std::max<size_t>(1, samples);
  for (size_t i = 0; i < count; ++i) {
    SetId x = a.members[rng->Uniform(a.members.size())];
    SetId y = b.members[rng->Uniform(b.members.size())];
    acc += 1.0 - Similarity(measure, db.set(x), db.set(y));
  }
  return acc / static_cast<double>(count);
}

}  // namespace

PartitionResult ParA::Partition(const SetDatabase& db,
                                uint32_t target_groups) {
  WallTimer timer;
  Rng rng(opts_.seed);
  const size_t n = db.size();
  LES3_CHECK_GE(n, target_groups);

  std::vector<Group> groups(n);
  for (SetId i = 0; i < n; ++i) groups[i].members.push_back(i);
  // Buckets of alive group ids by size for "smallest group first".
  size_t alive = n;

  // Index of alive groups; refreshed lazily when it drifts from reality.
  std::vector<uint32_t> alive_ids(n);
  for (uint32_t i = 0; i < n; ++i) alive_ids[i] = i;

  while (alive > target_groups) {
    // Find the smallest alive group (ties broken by id order after a lazy
    // compaction of the alive list).
    size_t best_pos = 0;
    size_t best_size = std::numeric_limits<size_t>::max();
    for (size_t p = 0; p < alive_ids.size(); ++p) {
      const Group& g = groups[alive_ids[p]];
      if (!g.alive) continue;
      if (g.members.size() < best_size) {
        best_size = g.members.size();
        best_pos = p;
        if (best_size == 1) break;
      }
    }
    uint32_t g1 = alive_ids[best_pos];

    // Probe a sample of partners; choose the one with the smallest mean
    // cross distance (average linkage). Under sampled φ this follows the
    // paper's min-φ(G1 ∪ G2) intent — the merge adds cross-pair mass
    // proportional to that mean — while the smallest-group-first rule
    // keeps sizes in check.
    uint32_t best_partner = std::numeric_limits<uint32_t>::max();
    double best_cross = std::numeric_limits<double>::max();
    size_t probes = std::min<size_t>(opts_.max_candidate_groups, alive - 1);
    for (size_t t = 0; t < probes * 3 && probes > 0; ++t) {
      uint32_t g2 = alive_ids[rng.Uniform(alive_ids.size())];
      if (g2 == g1 || !groups[g2].alive) continue;
      double cross = MeanCrossDistance(db, groups[g1], groups[g2],
                                       opts_.measure, opts_.sample_size, &rng);
      if (cross < best_cross) {
        best_cross = cross;
        best_partner = g2;
      }
      if (--probes == 0) break;
    }
    if (best_partner == std::numeric_limits<uint32_t>::max()) {
      // All probes hit dead groups; compact and retry.
      std::vector<uint32_t> compacted;
      for (uint32_t id : alive_ids) {
        if (groups[id].alive) compacted.push_back(id);
      }
      alive_ids = std::move(compacted);
      continue;
    }

    Group& a = groups[g1];
    Group& b = groups[best_partner];
    b.members.insert(b.members.end(), a.members.begin(), a.members.end());
    b.phi = a.phi + b.phi +
            best_cross * static_cast<double>(a.members.size()) *
                static_cast<double>(b.members.size());
    a.alive = false;
    a.members.clear();
    a.members.shrink_to_fit();
    --alive;

    // Periodic compaction keeps the candidate probing effective.
    if (alive_ids.size() > 2 * alive) {
      std::vector<uint32_t> compacted;
      compacted.reserve(alive);
      for (uint32_t id : alive_ids) {
        if (groups[id].alive) compacted.push_back(id);
      }
      alive_ids = std::move(compacted);
    }
  }

  PartitionResult result;
  result.assignment.assign(n, 0);
  uint32_t next_id = 0;
  for (auto& g : groups) {
    if (!g.alive) continue;
    for (SetId s : g.members) result.assignment[s] = next_id;
    ++next_id;
  }
  result.num_groups = next_id;
  result.seconds = timer.Seconds();
  result.working_memory_bytes =
      n * (sizeof(GroupId) + sizeof(SetId)) + n * sizeof(Group);
  return result;
}

}  // namespace partition
}  // namespace les3
