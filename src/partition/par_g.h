// PAR-G: graph-cut partitioning (Section 4.3.1, after Dong et al.).
//
// Builds the kNN (or range) similarity graph of the database, then cuts it
// into n balanced parts with minimum crossing edges using the FM-based
// partitioner in graph/partition_fm.h (standing in for PaToH). The method is
// workload-specific: it takes the query k or δ as an input.

#ifndef LES3_PARTITION_PAR_G_H_
#define LES3_PARTITION_PAR_G_H_

#include "core/similarity.h"
#include "graph/knn_graph.h"
#include "graph/partition_fm.h"
#include "partition/partitioner.h"

namespace les3 {
namespace partition {

struct ParGOptions {
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;
  /// Workload: kNN with this k (when range_delta < 0), else range with
  /// threshold range_delta.
  size_t knn_k = 10;
  double range_delta = -1.0;
  graph::FmOptions fm;
  size_t max_token_frequency = 2000;
  uint64_t seed = 37;
};

/// \brief Similarity-graph + balanced-cut partitioner.
class ParG : public Partitioner {
 public:
  explicit ParG(ParGOptions opts = {}) : opts_(opts) {}

  PartitionResult Partition(const SetDatabase& db,
                            uint32_t target_groups) override;
  std::string name() const override { return "PAR-G"; }

  /// Statistics from the last run (graph size feeds the Figure 9 space
  /// accounting).
  uint64_t last_graph_bytes() const { return last_graph_bytes_; }
  uint64_t last_cut_size() const { return last_cut_size_; }

 private:
  ParGOptions opts_;
  uint64_t last_graph_bytes_ = 0;
  uint64_t last_cut_size_ = 0;
};

}  // namespace partition
}  // namespace les3

#endif  // LES3_PARTITION_PAR_G_H_
