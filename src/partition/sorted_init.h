// Sorted initialization (paper Section 7.1, "Initialization"): sets are
// sorted by their minimal token and cut into `num_groups` consecutive,
// equal-sized runs. L2P starts its cascade from these groups instead of the
// whole database, which removes the most expensive top levels.

#ifndef LES3_PARTITION_SORTED_INIT_H_
#define LES3_PARTITION_SORTED_INIT_H_

#include <vector>

#include "core/database.h"
#include "core/types.h"

namespace les3 {
namespace partition {

/// Assigns each set to one of `num_groups` groups of (near-)equal size by
/// rank of (min token, set id).
std::vector<GroupId> SortedInitialization(const SetDatabase& db,
                                          uint32_t num_groups);

}  // namespace partition
}  // namespace les3

#endif  // LES3_PARTITION_SORTED_INIT_H_
