#include "partition/partitioner.h"

#include "util/logging.h"

namespace les3 {
namespace partition {

std::vector<std::vector<SetId>> GroupMembers(
    const std::vector<GroupId>& assignment, uint32_t num_groups) {
  std::vector<std::vector<SetId>> groups(num_groups);
  for (SetId i = 0; i < assignment.size(); ++i) {
    LES3_CHECK_LT(assignment[i], num_groups);
    groups[assignment[i]].push_back(i);
  }
  return groups;
}

uint32_t Compact(std::vector<GroupId>* assignment) {
  std::vector<GroupId> remap;
  constexpr GroupId kUnmapped = static_cast<GroupId>(-1);
  uint32_t next = 0;
  for (GroupId& g : *assignment) {
    if (g >= remap.size()) remap.resize(g + 1, kUnmapped);
    if (remap[g] == kUnmapped) remap[g] = next++;
    g = remap[g];
  }
  return next;
}

}  // namespace partition
}  // namespace les3
