#include "partition/par_g.h"

#include "util/timer.h"

namespace les3 {
namespace partition {

PartitionResult ParG::Partition(const SetDatabase& db,
                                uint32_t target_groups) {
  WallTimer timer;
  graph::Graph g;
  if (opts_.range_delta >= 0.0) {
    g = graph::BuildRangeGraph(db, opts_.range_delta, opts_.measure,
                               opts_.max_token_frequency);
  } else {
    graph::KnnGraphOptions kopts;
    kopts.k = opts_.knn_k;
    kopts.measure = opts_.measure;
    kopts.max_token_frequency = opts_.max_token_frequency;
    g = graph::BuildKnnGraph(db, kopts);
  }
  graph::FmOptions fm = opts_.fm;
  fm.seed = opts_.seed;
  std::vector<uint32_t> part = graph::PartitionGraph(g, target_groups, fm);

  last_graph_bytes_ = g.MemoryBytes();
  last_cut_size_ = graph::CutSize(g, part);

  PartitionResult result;
  result.assignment.assign(part.begin(), part.end());
  result.num_groups = target_groups;
  result.seconds = timer.Seconds();
  // The kNN graph dominates PAR-G's working set (the paper reports ~99%
  // more space than L2P); edge-list construction transiently doubles it.
  result.working_memory_bytes =
      2 * last_graph_bytes_ + db.size() * (sizeof(GroupId) + sizeof(uint32_t));
  return result;
}

}  // namespace partition
}  // namespace les3
