#include "partition/par_d.h"

#include <algorithm>
#include <queue>

#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace les3 {
namespace partition {
namespace {

/// Sampled mean pairwise distance within `members`.
double MeanPairDistance(const SetDatabase& db,
                        const std::vector<SetId>& members,
                        SimilarityMeasure measure, size_t samples, Rng* rng) {
  if (members.size() < 2) return 0.0;
  double acc = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < samples; ++i) {
    size_t a = rng->Uniform(members.size());
    size_t b = rng->Uniform(members.size() - 1);
    if (b >= a) ++b;
    acc += 1.0 - Similarity(measure, db.set(members[a]), db.set(members[b]));
    ++used;
  }
  return used ? acc / static_cast<double>(used) : 0.0;
}

/// Sampled mean distance from set `s` to `members`.
double MeanDistanceTo(const SetDatabase& db, SetId s,
                      const std::vector<SetId>& members,
                      SimilarityMeasure measure, size_t samples, Rng* rng) {
  if (members.empty()) return 0.0;
  double acc = 0.0;
  size_t count = std::min(samples, members.size());
  for (size_t i = 0; i < count; ++i) {
    SetId m = members[rng->Uniform(members.size())];
    acc += 1.0 - Similarity(measure, db.set(s), db.set(m));
  }
  return acc / static_cast<double>(count);
}

}  // namespace

PartitionResult ParD::Partition(const SetDatabase& db,
                                uint32_t target_groups) {
  WallTimer timer;
  Rng rng(opts_.seed);
  const size_t n = db.size();

  std::vector<std::vector<SetId>> groups;
  groups.emplace_back();
  groups[0].reserve(n);
  for (SetId i = 0; i < n; ++i) groups[0].push_back(i);

  // Max-heap of (sampled φ, group index); stale entries are skipped by
  // comparing against a per-group version counter.
  using Entry = std::pair<double, std::pair<uint32_t, uint32_t>>;
  std::priority_queue<Entry> heap;
  std::vector<uint32_t> version(1, 0);
  auto push_group = [&](uint32_t g) {
    const auto& members = groups[g];
    double mean =
        MeanPairDistance(db, members, opts_.measure, opts_.sample_size, &rng);
    double phi = mean * static_cast<double>(members.size()) *
                 static_cast<double>(members.size() > 0 ? members.size() - 1
                                                        : 0);
    heap.push({phi, {g, version[g]}});
  };
  push_group(0);

  while (groups.size() < target_groups && !heap.empty()) {
    auto [phi, gv] = heap.top();
    heap.pop();
    auto [g, ver] = gv;
    if (ver != version[g]) continue;   // stale
    if (groups[g].size() < 2) continue;  // cannot split further

    // Seed the new group with a random member (paper simplification 3).
    auto& old_members = groups[g];
    size_t seed_pos = rng.Uniform(old_members.size());
    SetId seed_set = old_members[seed_pos];
    old_members[seed_pos] = old_members.back();
    old_members.pop_back();
    std::vector<SetId> fresh{seed_set};

    // Move members that are closer to the new group than to the remainder.
    std::vector<SetId> keep;
    keep.reserve(old_members.size());
    for (SetId s : old_members) {
      double d_new = MeanDistanceTo(db, s, fresh, opts_.measure,
                                    opts_.sample_size, &rng);
      double d_old = MeanDistanceTo(db, s, keep.empty() ? old_members : keep,
                                    opts_.measure, opts_.sample_size, &rng);
      if (d_new < d_old) {
        fresh.push_back(s);
      } else {
        keep.push_back(s);
      }
    }
    if (keep.empty()) {
      // Degenerate split; put half back to guarantee progress.
      size_t half = fresh.size() / 2;
      keep.assign(fresh.begin() + half, fresh.end());
      fresh.resize(half);
      if (fresh.empty()) fresh.push_back(keep.back()), keep.pop_back();
    }
    groups[g] = std::move(keep);
    ++version[g];
    groups.push_back(std::move(fresh));
    version.push_back(0);
    push_group(g);
    push_group(static_cast<uint32_t>(groups.size() - 1));
  }

  PartitionResult result;
  result.num_groups = static_cast<uint32_t>(groups.size());
  result.assignment.assign(n, 0);
  for (uint32_t g = 0; g < groups.size(); ++g) {
    for (SetId s : groups[g]) result.assignment[s] = g;
  }
  result.seconds = timer.Seconds();
  result.working_memory_bytes =
      n * (sizeof(GroupId) + sizeof(SetId)) +
      groups.size() * (sizeof(Entry) + sizeof(uint32_t));
  return result;
}

}  // namespace partition
}  // namespace les3
