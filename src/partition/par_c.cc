#include "partition/par_c.h"

#include <algorithm>

#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace les3 {
namespace partition {
namespace {

/// Estimated distance sum d(S, G) = Σ_{x in G, x != S} (1 - Sim(S, x)),
/// scaled up from `sample_size` random members.
double EstimateDistanceSum(const SetDatabase& db, SetId s,
                           const std::vector<SetId>& group, SetId skip,
                           SimilarityMeasure measure, size_t sample_size,
                           Rng* rng) {
  size_t effective = group.size();
  for (SetId m : group) {
    if (m == skip) {
      --effective;
      break;
    }
  }
  if (effective == 0) return 0.0;
  size_t samples = std::min(sample_size, group.size());
  double acc = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < samples * 2 && used < samples; ++i) {
    SetId m = group[rng->Uniform(group.size())];
    if (m == skip || m == s) continue;
    acc += 1.0 - Similarity(measure, db.set(s), db.set(m));
    ++used;
  }
  if (used == 0) return 0.0;
  return acc / static_cast<double>(used) * static_cast<double>(effective);
}

}  // namespace

PartitionResult ParC::Partition(const SetDatabase& db,
                                uint32_t target_groups) {
  WallTimer timer;
  Rng rng(opts_.seed);
  const size_t n = db.size();
  PartitionResult result;
  result.num_groups = target_groups;
  result.assignment.resize(n);
  for (size_t i = 0; i < n; ++i) {
    result.assignment[i] = static_cast<GroupId>(rng.Uniform(target_groups));
  }
  auto groups = GroupMembers(result.assignment, target_groups);
  // Position of each set inside its group vector, for O(1) removal.
  std::vector<uint32_t> pos(n);
  for (const auto& members : groups) {
    for (uint32_t p = 0; p < members.size(); ++p) pos[members[p]] = p;
  }
  auto remove_from = [&](SetId s, GroupId g) {
    auto& members = groups[g];
    uint32_t p = pos[s];
    members[p] = members.back();
    pos[members[p]] = p;
    members.pop_back();
  };
  auto add_to = [&](SetId s, GroupId g) {
    pos[s] = static_cast<uint32_t>(groups[g].size());
    groups[g].push_back(s);
    result.assignment[s] = g;
  };

  std::vector<SetId> order(n);
  for (SetId i = 0; i < n; ++i) order[i] = i;

  for (size_t iter = 0; iter < opts_.max_iterations; ++iter) {
    rng.Shuffle(&order);
    size_t relocations = 0;
    for (SetId s : order) {
      GroupId gi = result.assignment[s];
      double d_here = EstimateDistanceSum(db, s, groups[gi], s, opts_.measure,
                                          opts_.sample_size, &rng);
      size_t candidates =
          std::min<size_t>(opts_.max_candidate_groups, target_groups);
      for (size_t c = 0; c < candidates; ++c) {
        GroupId gj = static_cast<GroupId>(rng.Uniform(target_groups));
        if (gj == gi) continue;
        double d_there =
            EstimateDistanceSum(db, s, groups[gj], s, opts_.measure,
                                opts_.sample_size, &rng);
        // Δ(S, Gi, Gj) > 0 ⟺ d(S, Gj) < d(S, Gi \ S): first improvement.
        if (d_there < d_here) {
          remove_from(s, gi);
          add_to(s, gj);
          ++relocations;
          break;
        }
      }
    }
    if (relocations == 0) break;
  }

  result.seconds = timer.Seconds();
  // Working set: assignment + member lists + position index.
  result.working_memory_bytes =
      n * (sizeof(GroupId) + sizeof(SetId) + sizeof(uint32_t));
  return result;
}

}  // namespace partition
}  // namespace les3
