// PAR-A: agglomerative (bottom-up) clustering (Section 4.3.4).
//
// Every set starts as its own group; merges continue until n groups remain.
// Following the paper's simplification, the smaller operand of each merge is
// always the currently smallest group, so only the partner needs searching —
// done here over a random candidate sample with sampled cross-distances
// (footnote 2), which keeps the quadratic-in-|D| exact algorithm tractable.

#ifndef LES3_PARTITION_PAR_A_H_
#define LES3_PARTITION_PAR_A_H_

#include "core/similarity.h"
#include "partition/partitioner.h"

namespace les3 {
namespace partition {

struct ParAOptions {
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;
  size_t sample_size = 4;          // members sampled per group for φ
  size_t max_candidate_groups = 64;  // partners probed per merge
  uint64_t seed = 31;
};

/// \brief Agglomerative clustering partitioner.
class ParA : public Partitioner {
 public:
  explicit ParA(ParAOptions opts = {}) : opts_(opts) {}

  PartitionResult Partition(const SetDatabase& db,
                            uint32_t target_groups) override;
  std::string name() const override { return "PAR-A"; }

 private:
  ParAOptions opts_;
};

}  // namespace partition
}  // namespace les3

#endif  // LES3_PARTITION_PAR_A_H_
