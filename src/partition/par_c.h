// PAR-C: centroid-style relocation partitioning (Section 4.3.2).
//
// Starts from a random assignment into n groups and repeatedly relocates a
// set into the first group that lowers the (sampled) GPO — the paper's
// "first-improvement" simplification, with group-distance sums φ
// approximated on random member samples (paper footnote 2). Candidate
// groups per relocation are additionally capped so a sweep stays
// near-linear in |D|.

#ifndef LES3_PARTITION_PAR_C_H_
#define LES3_PARTITION_PAR_C_H_

#include "core/similarity.h"
#include "partition/partitioner.h"

namespace les3 {
namespace partition {

struct ParCOptions {
  SimilarityMeasure measure = SimilarityMeasure::kJaccard;
  size_t max_iterations = 4;      // full relocation sweeps
  size_t sample_size = 8;         // members sampled to estimate d(S, G)
  size_t max_candidate_groups = 48;  // groups probed per relocation attempt
  uint64_t seed = 23;
};

/// \brief First-improvement relocation partitioner.
class ParC : public Partitioner {
 public:
  explicit ParC(ParCOptions opts = {}) : opts_(opts) {}

  PartitionResult Partition(const SetDatabase& db,
                            uint32_t target_groups) override;
  std::string name() const override { return "PAR-C"; }

 private:
  ParCOptions opts_;
};

}  // namespace partition
}  // namespace les3

#endif  // LES3_PARTITION_PAR_C_H_
