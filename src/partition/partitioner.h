// Partitioner interface: everything that maps a database to n groups
// (Section 4). Implementations: PAR-C, PAR-D, PAR-A, PAR-G (partition/) and
// L2P (l2p/).

#ifndef LES3_PARTITION_PARTITIONER_H_
#define LES3_PARTITION_PARTITIONER_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "core/types.h"

namespace les3 {
namespace partition {

/// Outcome of a partitioning run, including the cost accounting that
/// Figure 9 compares (wall time, working-set bytes).
struct PartitionResult {
  std::vector<GroupId> assignment;  // one GroupId per set, dense in
                                    // [0, num_groups)
  uint32_t num_groups = 0;
  double seconds = 0.0;             // end-to-end partitioning time
  uint64_t working_memory_bytes = 0;  // peak auxiliary memory (documented
                                      // analytic estimate per method)
};

/// \brief Base class for all partitioning strategies.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Partitions `db` into (at most) `target_groups` groups.
  virtual PartitionResult Partition(const SetDatabase& db,
                                    uint32_t target_groups) = 0;

  virtual std::string name() const = 0;
};

/// Inverts an assignment into per-group member lists.
std::vector<std::vector<SetId>> GroupMembers(
    const std::vector<GroupId>& assignment, uint32_t num_groups);

/// Renumbers group ids to a dense range [0, k) preserving first-appearance
/// order; returns k.
uint32_t Compact(std::vector<GroupId>* assignment);

}  // namespace partition
}  // namespace les3

#endif  // LES3_PARTITION_PARTITIONER_H_
