#include "partition/exact_small.h"

#include <functional>
#include <limits>

#include "util/logging.h"

namespace les3 {
namespace partition {

ExactPartition MinimizeGpoExact(const SetDatabase& db, uint32_t num_groups,
                                SimilarityMeasure measure) {
  const size_t n = db.size();
  LES3_CHECK_GE(n, 1u);
  LES3_CHECK_LE(n, 14u);
  LES3_CHECK_GE(num_groups, 1u);
  LES3_CHECK_LE(num_groups, n);

  // Precompute the (ordered-pair) distance matrix.
  std::vector<double> dist(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) {
        dist[i * n + j] = 1.0 - Similarity(measure, db.set(i), db.set(j));
      }
    }
  }

  ExactPartition best;
  best.gpo = std::numeric_limits<double>::max();
  std::vector<GroupId> assignment(n, 0);

  auto evaluate = [&] {
    GroupId max_label = 0;
    for (GroupId g : assignment) max_label = std::max(max_label, g);
    if (max_label + 1 != num_groups) return;  // need exactly num_groups
    double gpo = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (assignment[i] == assignment[j]) gpo += dist[i * n + j];
      }
    }
    if (gpo < best.gpo) {
      best.gpo = gpo;
      best.assignment = assignment;
      best.num_groups = num_groups;
    }
  };

  // Restricted growth strings enumerate each set-partition once: position i
  // may reuse any label seen so far or open the next fresh one.
  std::function<void(size_t, GroupId)> enumerate = [&](size_t i,
                                                       GroupId used) {
    if (i == n) {
      evaluate();
      return;
    }
    GroupId limit = std::min<GroupId>(used, num_groups - 1);
    for (GroupId g = 0; g <= limit; ++g) {
      assignment[i] = g;
      enumerate(i + 1, std::max<GroupId>(used, g + 1));
    }
  };
  enumerate(1, 1);  // assignment[0] is pinned to label 0
  return best;
}

}  // namespace partition
}  // namespace les3
