// Adam optimizer (Kingma & Ba), the optimizer the paper uses for L2P.

#ifndef LES3_ML_ADAM_H_
#define LES3_ML_ADAM_H_

#include <cstddef>
#include <vector>

namespace les3 {
namespace ml {

/// Hyper-parameters with the standard defaults.
struct AdamOptions {
  float learning_rate = 1e-2f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
};

/// \brief Adam with bias-corrected first/second moment estimates.
class Adam {
 public:
  Adam(size_t num_params, AdamOptions options = {});

  /// Applies one update: params[i] -= lr * m_hat / (sqrt(v_hat) + eps).
  /// `params` are pointers into the model, `grads` is the flat gradient.
  void Step(const std::vector<float*>& params, const std::vector<float>& grads);

  size_t step_count() const { return t_; }

 private:
  AdamOptions options_;
  std::vector<float> m_;
  std::vector<float> v_;
  size_t t_ = 0;
};

}  // namespace ml
}  // namespace les3

#endif  // LES3_ML_ADAM_H_
