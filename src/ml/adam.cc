#include "ml/adam.h"

#include <cmath>

#include "util/logging.h"

namespace les3 {
namespace ml {

Adam::Adam(size_t num_params, AdamOptions options)
    : options_(options), m_(num_params, 0.0f), v_(num_params, 0.0f) {}

void Adam::Step(const std::vector<float*>& params,
                const std::vector<float>& grads) {
  LES3_CHECK_EQ(params.size(), m_.size());
  LES3_CHECK_EQ(grads.size(), m_.size());
  ++t_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  const float correction1 =
      1.0f - std::pow(b1, static_cast<float>(t_));
  const float correction2 =
      1.0f - std::pow(b2, static_cast<float>(t_));
  for (size_t i = 0; i < m_.size(); ++i) {
    float g = grads[i];
    m_[i] = b1 * m_[i] + (1.0f - b1) * g;
    v_[i] = b2 * v_[i] + (1.0f - b2) * g * g;
    float m_hat = m_[i] / correction1;
    float v_hat = v_[i] / correction2;
    *params[i] -=
        options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
  }
}

}  // namespace ml
}  // namespace les3
