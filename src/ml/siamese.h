// Siamese-network training on the paper's surrogate loss (Equation 18).
//
// A Siamese "network" is one MLP applied to both members of a pair with
// shared weights; the loss couples the two outputs:
//
//   loss'(Sx, Sy) = W(Ox, Oy) * (1 - Sim(Sx, Sy))   if Ox, Oy fall on the
//                                                    same side of 0.5,
//                 = 0                                otherwise,
//   with W(Ox, Oy) = 0.5 - |Ox - Oy|.
//
// Minimizing it pushes dissimilar same-side pairs apart (growing |Ox - Oy|
// until the pair crosses the 0.5 boundary) and leaves similar pairs alone,
// which has the same global optimum as the exact loss of Equation (15).

#ifndef LES3_ML_SIAMESE_H_
#define LES3_ML_SIAMESE_H_

#include <cstdint>
#include <vector>

#include "ml/adam.h"
#include "ml/mlp.h"

namespace les3 {
namespace ml {

/// One training pair: two row indices into the representation matrix and the
/// precomputed dissimilarity 1 - Sim(Sx, Sy).
struct SiamesePair {
  uint32_t a;
  uint32_t b;
  float dissimilarity;
};

struct SiameseOptions {
  size_t epochs = 3;         // paper Section 7.1
  size_t batch_size = 256;   // paper Section 7.1
  AdamOptions adam;          // Adam, paper Section 7.1
  uint64_t seed = 1;
};

/// Per-training-run statistics (feeds the Figure 7 learning curves).
struct SiameseStats {
  std::vector<float> batch_losses;  // mean Eq.-18 loss per mini-batch
  double train_seconds = 0.0;
};

/// \brief Trains `net` in-place on `pairs`, whose endpoints index rows of
/// `representations`.
SiameseStats TrainSiamese(Mlp* net, const Matrix& representations,
                          const std::vector<SiamesePair>& pairs,
                          const SiameseOptions& options);

/// Evaluates Equation (18) on a pair of outputs (exposed for tests).
float SurrogateLoss(float ox, float oy, float dissimilarity);

}  // namespace ml
}  // namespace les3

#endif  // LES3_ML_SIAMESE_H_
