#include "ml/mlp.h"

#include <cmath>

#include "util/logging.h"

namespace les3 {
namespace ml {
namespace {

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Mlp::Mlp(std::vector<size_t> layer_sizes, uint64_t seed)
    : layer_sizes_(std::move(layer_sizes)) {
  LES3_CHECK_GE(layer_sizes_.size(), 2u);
  Rng rng(seed);
  size_t num_layers = layer_sizes_.size() - 1;
  weights_.reserve(num_layers);
  for (size_t l = 0; l < num_layers; ++l) {
    Matrix w(layer_sizes_[l + 1], layer_sizes_[l]);
    w.InitXavier(&rng);
    weights_.push_back(std::move(w));
    biases_.emplace_back(layer_sizes_[l + 1], 0.0f);
    weight_grads_.emplace_back(layer_sizes_[l + 1], layer_sizes_[l]);
    bias_grads_.emplace_back(layer_sizes_[l + 1], 0.0f);
  }
  activations_.resize(num_layers);
}

const Matrix& Mlp::Forward(const Matrix& input) {
  LES3_CHECK_EQ(input.cols(), layer_sizes_.front());
  size_t batch = input.rows();
  const Matrix* prev = &input;
  for (size_t l = 0; l < weights_.size(); ++l) {
    const Matrix& w = weights_[l];
    const auto& b = biases_[l];
    Matrix& act = activations_[l];
    act = Matrix(batch, w.rows());
    for (size_t i = 0; i < batch; ++i) {
      const float* x = prev->Row(i);
      float* out = act.Row(i);
      for (size_t o = 0; o < w.rows(); ++o) {
        const float* wr = w.Row(o);
        float z = b[o];
        for (size_t k = 0; k < w.cols(); ++k) z += wr[k] * x[k];
        out[o] = Sigmoid(z);
      }
    }
    prev = &act;
  }
  return activations_.back();
}

std::vector<float> Mlp::ForwardOne(const float* x) const {
  std::vector<float> cur(x, x + layer_sizes_.front());
  std::vector<float> next;
  for (size_t l = 0; l < weights_.size(); ++l) {
    const Matrix& w = weights_[l];
    const auto& b = biases_[l];
    next.assign(w.rows(), 0.0f);
    for (size_t o = 0; o < w.rows(); ++o) {
      const float* wr = w.Row(o);
      float z = b[o];
      for (size_t k = 0; k < w.cols(); ++k) z += wr[k] * cur[k];
      next[o] = Sigmoid(z);
    }
    cur.swap(next);
  }
  return cur;
}

void Mlp::ZeroGrad() {
  for (auto& g : weight_grads_) g.Fill(0.0f);
  for (auto& g : bias_grads_) std::fill(g.begin(), g.end(), 0.0f);
}

void Mlp::Backward(const Matrix& input, const Matrix& grad_output) {
  size_t batch = input.rows();
  LES3_CHECK_EQ(grad_output.rows(), batch);
  LES3_CHECK_EQ(grad_output.cols(), layer_sizes_.back());
  // delta for the current layer, (batch x width_l).
  Matrix delta = grad_output;
  for (size_t l = weights_.size(); l-- > 0;) {
    const Matrix& act = activations_[l];
    // Through the sigmoid: delta *= a * (1 - a).
    for (size_t i = 0; i < batch; ++i) {
      float* d = delta.Row(i);
      const float* a = act.Row(i);
      for (size_t o = 0; o < delta.cols(); ++o) {
        d[o] *= a[o] * (1.0f - a[o]);
      }
    }
    const Matrix& below = (l == 0) ? input : activations_[l - 1];
    Matrix& wg = weight_grads_[l];
    auto& bg = bias_grads_[l];
    for (size_t i = 0; i < batch; ++i) {
      const float* d = delta.Row(i);
      const float* x = below.Row(i);
      for (size_t o = 0; o < wg.rows(); ++o) {
        float* wr = wg.Row(o);
        float dv = d[o];
        if (dv == 0.0f) continue;
        for (size_t k = 0; k < wg.cols(); ++k) wr[k] += dv * x[k];
        bg[o] += dv;
      }
    }
    if (l == 0) break;
    // Propagate: next_delta = delta . W_l  (batch x in_l).
    const Matrix& w = weights_[l];
    Matrix next_delta(batch, w.cols());
    for (size_t i = 0; i < batch; ++i) {
      const float* d = delta.Row(i);
      float* nd = next_delta.Row(i);
      for (size_t o = 0; o < w.rows(); ++o) {
        float dv = d[o];
        if (dv == 0.0f) continue;
        const float* wr = w.Row(o);
        for (size_t k = 0; k < w.cols(); ++k) nd[k] += dv * wr[k];
      }
    }
    delta = std::move(next_delta);
  }
}

std::vector<float*> Mlp::MutableParams() {
  std::vector<float*> out;
  for (size_t l = 0; l < weights_.size(); ++l) {
    Matrix& w = weights_[l];
    for (size_t i = 0; i < w.size(); ++i) out.push_back(w.data() + i);
    for (auto& b : biases_[l]) out.push_back(&b);
  }
  return out;
}

std::vector<float> Mlp::GradsFlat() const {
  std::vector<float> out;
  out.reserve(NumParams());
  for (size_t l = 0; l < weight_grads_.size(); ++l) {
    const Matrix& g = weight_grads_[l];
    out.insert(out.end(), g.data(), g.data() + g.size());
    out.insert(out.end(), bias_grads_[l].begin(), bias_grads_[l].end());
  }
  return out;
}

size_t Mlp::NumParams() const {
  size_t total = 0;
  for (size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    total += layer_sizes_[l] * layer_sizes_[l + 1] + layer_sizes_[l + 1];
  }
  return total;
}

std::vector<float> Mlp::ParamsFlat() const {
  std::vector<float> out;
  out.reserve(NumParams());
  for (size_t l = 0; l < weights_.size(); ++l) {
    const Matrix& w = weights_[l];
    out.insert(out.end(), w.data(), w.data() + w.size());
    out.insert(out.end(), biases_[l].begin(), biases_[l].end());
  }
  return out;
}

void Mlp::SetParamsFlat(const std::vector<float>& flat) {
  LES3_CHECK_EQ(flat.size(), NumParams());
  size_t pos = 0;
  for (size_t l = 0; l < weights_.size(); ++l) {
    Matrix& w = weights_[l];
    for (size_t i = 0; i < w.size(); ++i) w.data()[i] = flat[pos++];
    for (auto& b : biases_[l]) b = flat[pos++];
  }
}

uint64_t Mlp::MemoryBytes() const {
  return static_cast<uint64_t>(NumParams()) * 2 * sizeof(float);
}

}  // namespace ml
}  // namespace les3
