// Multi-layer perceptron with sigmoid activations and manual backprop.
//
// The paper's L2P network (Section 7.1) is an MLP with two hidden layers of
// eight neurons, sigmoid activations, and a single sigmoid output neuron.
// This class implements exactly that family (arbitrary layer widths), with
// batch forward/backward passes and a flat parameter/gradient view that the
// Adam optimizer (ml/adam.h) consumes.

#ifndef LES3_ML_MLP_H_
#define LES3_ML_MLP_H_

#include <cstdint>
#include <vector>

#include "ml/matrix.h"
#include "util/random.h"

namespace les3 {
namespace ml {

/// \brief Sigmoid MLP with batch forward/backward.
///
/// Usage per mini-batch:
///   const Matrix& out = net.Forward(batch);     // caches activations
///   net.ZeroGrad();
///   net.Backward(batch, dL_dOut);               // accumulates gradients
///   adam.Step(net.MutableParams(), net.Grads());
class Mlp {
 public:
  /// `layer_sizes` = {input, hidden..., output}; at least {in, out}.
  Mlp(std::vector<size_t> layer_sizes, uint64_t seed);

  /// Forward pass for a (batch x input_dim) matrix; returns a reference to
  /// the cached (batch x output_dim) activations, valid until next call.
  const Matrix& Forward(const Matrix& input);

  /// Forward pass for a single example (no caching side effects relied on;
  /// convenient for inference).
  std::vector<float> ForwardOne(const float* x) const;

  /// Zeroes accumulated gradients.
  void ZeroGrad();

  /// Backpropagates dL/dOutput (batch x output_dim) through the cached
  /// activations of the preceding Forward(); accumulates into gradients.
  void Backward(const Matrix& input, const Matrix& grad_output);

  /// Flat views over all parameters / gradients (weights then biases per
  /// layer, in layer order).
  std::vector<float*> MutableParams();
  std::vector<float> GradsFlat() const;
  size_t NumParams() const;

  /// Copies a flat parameter vector in/out (testing, checkpointing).
  std::vector<float> ParamsFlat() const;
  void SetParamsFlat(const std::vector<float>& flat);

  /// Adds `grads` (flat) scaled by `scale` into a caller-held accumulator.
  const std::vector<Matrix>& weights() const { return weights_; }

  size_t input_dim() const { return layer_sizes_.front(); }
  size_t output_dim() const { return layer_sizes_.back(); }

  /// Heap bytes of parameters + optimizer-visible state (for the Figure 9
  /// space accounting).
  uint64_t MemoryBytes() const;

 private:
  std::vector<size_t> layer_sizes_;
  std::vector<Matrix> weights_;        // [l]: (out_l x in_l)
  std::vector<std::vector<float>> biases_;  // [l]: out_l
  std::vector<Matrix> weight_grads_;
  std::vector<std::vector<float>> bias_grads_;
  std::vector<Matrix> activations_;    // [l]: post-sigmoid per layer
};

}  // namespace ml
}  // namespace les3

#endif  // LES3_ML_MLP_H_
