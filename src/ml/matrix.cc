#include "ml/matrix.h"

#include <cmath>

namespace les3 {
namespace ml {

void Matrix::InitXavier(Rng* rng) {
  // rows_ = fan_out, cols_ = fan_in.
  float limit = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
  for (auto& v : data_) {
    v = (static_cast<float>(rng->NextDouble()) * 2.0f - 1.0f) * limit;
  }
}

}  // namespace ml
}  // namespace les3
