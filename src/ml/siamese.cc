#include "ml/siamese.h"

#include <cmath>

#include "util/logging.h"
#include "util/timer.h"

namespace les3 {
namespace ml {

float SurrogateLoss(float ox, float oy, float dissimilarity) {
  bool same_side = (ox >= 0.5f) == (oy >= 0.5f);
  if (!same_side) return 0.0f;
  return (0.5f - std::fabs(ox - oy)) * dissimilarity;
}

SiameseStats TrainSiamese(Mlp* net, const Matrix& representations,
                          const std::vector<SiamesePair>& pairs,
                          const SiameseOptions& options) {
  LES3_CHECK_EQ(net->output_dim(), 1u);
  SiameseStats stats;
  if (pairs.empty()) return stats;
  WallTimer timer;
  Rng rng(options.seed);
  Adam adam(net->NumParams(), options.adam);
  const size_t dim = net->input_dim();
  LES3_CHECK_EQ(representations.cols(), dim);

  std::vector<uint32_t> order(pairs.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += options.batch_size) {
      size_t batch = std::min(options.batch_size, order.size() - start);
      // Stack the pair members into one 2*batch forward pass so the cached
      // activations cover both sides when we backprop.
      Matrix input(2 * batch, dim);
      for (size_t i = 0; i < batch; ++i) {
        const SiamesePair& p = pairs[order[start + i]];
        const float* ra = representations.Row(p.a);
        const float* rb = representations.Row(p.b);
        std::copy(ra, ra + dim, input.Row(i));
        std::copy(rb, rb + dim, input.Row(batch + i));
      }
      const Matrix& out = net->Forward(input);
      Matrix grad(2 * batch, 1);
      float batch_loss = 0.0f;
      const float inv_batch = 1.0f / static_cast<float>(batch);
      for (size_t i = 0; i < batch; ++i) {
        const SiamesePair& p = pairs[order[start + i]];
        float ox = out.At(i, 0);
        float oy = out.At(batch + i, 0);
        batch_loss += SurrogateLoss(ox, oy, p.dissimilarity);
        bool same_side = (ox >= 0.5f) == (oy >= 0.5f);
        if (!same_side || p.dissimilarity == 0.0f) continue;
        // d/dOx [ (0.5 - |Ox - Oy|) * d ] = -sign(Ox - Oy) * d.
        float sign = (ox > oy) ? 1.0f : (ox < oy ? -1.0f : 0.0f);
        grad.At(i, 0) = -sign * p.dissimilarity * inv_batch;
        grad.At(batch + i, 0) = sign * p.dissimilarity * inv_batch;
      }
      net->ZeroGrad();
      net->Backward(input, grad);
      adam.Step(net->MutableParams(), net->GradsFlat());
      stats.batch_losses.push_back(batch_loss * inv_batch);
    }
  }
  stats.train_seconds = timer.Seconds();
  return stats;
}

}  // namespace ml
}  // namespace les3
