// A minimal dense row-major float matrix for the neural-network substrate.
//
// This is deliberately not a general linear-algebra library: the paper's
// network is a 2x8 MLP, so all we need is storage, a few fills, and GEMM-ish
// loops that the MLP implements inline.

#ifndef LES3_ML_MATRIX_H_
#define LES3_ML_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace les3 {
namespace ml {

/// \brief Dense row-major matrix of floats.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }

  float& At(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float At(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* Row(size_t r) { return data_.data() + r * cols_; }
  const float* Row(size_t r) const { return data_.data() + r * cols_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

  /// Xavier/Glorot uniform initialization for a (fan_out x fan_in) weight.
  void InitXavier(Rng* rng);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace ml
}  // namespace les3

#endif  // LES3_ML_MATRIX_H_
