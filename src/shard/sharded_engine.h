// ShardedEngine — the scatter-gather serving engine: one LES3 index per
// shard, hash-partitioned by set id, behind the unified SearchEngine API.
//
// LES3's build cost is dominated by learning the partitioning (paper
// Figure 7) and its query cost by probing one monolithic TGM; both are
// single-index today. Sharding attacks both at once:
//
//  - Build: the database is split by `id mod num_shards` and every shard
//    trains its own L2P cascade and builds its own TGM **in parallel** on
//    a thread pool, so the Figure 7 bottleneck scales with cores.
//  - Queries: Knn scatter-gathers — every shard answers its local top-k,
//    and the per-shard results merge through TopKHits under the canonical
//    HitOrder, so the global answer is exact (ids, similarities, order,
//    ties included) even when a shard holds fewer than k sets. Range
//    concatenates the per-shard exact answers and re-sorts.
//  - Mutations: Insert/Delete/Update route to exactly one shard, taking
//    that shard's writer lock only — queries on every shard (including
//    the one being written, via its std::shared_mutex) stay safe
//    concurrently. This upgrades the engine-wide thread-safety contract:
//    on this backend, every mutating op IS safe concurrently with
//    Knn/Range and with other mutations.
//  - Self-healing: an optional background maintenance thread
//    (search/maintenance.h) rotates across shards, splitting overgrown
//    groups and dropping the stale column bits deletes leave behind, so
//    pruning quality stays bounded under sustained mutation without a
//    rebuild. Queries feed it per-group activity through the verifier's
//    group-visit hook.
//
// Id mapping is arithmetic, not tabulated: shard s holds the global ids
// {s, s+S, s+2S, ...} in order, so local id l in shard s is global id
// l*S + s and a fresh insert (global id = |D|) lands at exactly the next
// local id of its shard. The mapping therefore survives any number of
// inserts and is re-derived for free when a snapshot reopens.
//
// Snapshots: Save writes format v2 (docs/snapshot_format.md) — the global
// database plus one PART/TGMC pair per shard — and EngineBuilder::Open
// reconstructs the engine with zero partitioning or training work.

#ifndef LES3_SHARD_SHARDED_ENGINE_H_
#define LES3_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "api/engine_options.h"
#include "api/search_engine.h"
#include "persist/snapshot.h"
#include "search/les3_index.h"
#include "search/maintenance.h"

namespace les3 {
namespace shard {

class ShardedEngine : public api::SearchEngine {
 public:
  /// Splits `db` by id mod num_shards and builds every shard's index in
  /// parallel. `db` must be non-null and non-empty; options.num_shards
  /// must be >= 1 (EngineBuilder validates both) and is clamped to the
  /// database size so no shard starts empty.
  static std::unique_ptr<ShardedEngine> Build(
      std::shared_ptr<SetDatabase> db, const api::EngineOptions& options);

  /// Reconstructs the engine from a decoded v2 snapshot — zero
  /// partitioning or training work; the decoder has already validated
  /// every shard's shape against the id-mod-S split.
  static std::unique_ptr<ShardedEngine> FromSnapshot(
      persist::LoadedSnapshot snapshot, const api::OpenOptions& options);

  /// Exact global kNN by scatter-gather (see file comment). Safe
  /// concurrently with Insert.
  api::QueryResult Knn(SetView query, size_t k) const override;

  /// Batch queries stripe (chunk, shard) sub-batches across ONE thread
  /// pool: the batch is cut into fixed-size chunks and each shard answers
  /// a whole chunk in one fused Les3Index::KnnBatch call under a single
  /// reader-lock acquisition — one batched column probe per (shard,
  /// chunk) instead of one task per (query, shard). Results are merged
  /// per query exactly as the single-query scatter-gather does.
  std::vector<api::QueryResult> KnnBatch(const std::vector<SetRecord>& queries,
                                         size_t k) const override;

  /// Routes the set to shard (new id) mod num_shards, locking only that
  /// shard for writing. Returns the GLOBAL id. Safe concurrently with
  /// queries on every shard and with other Inserts.
  Result<SetId> Insert(SetRecord set) override;

  /// Tombstones global id `id` in its shard (writer lock on that shard
  /// only) and in the global database. Same concurrency contract as
  /// Insert: safe with queries everywhere and with other mutations.
  Status Delete(SetId id) override;

  /// Replaces global id `id` in place, re-routing it through Section 6
  /// insertion inside its shard. Same concurrency contract as Insert.
  Status Update(SetId id, SetRecord set) override;

  /// The per-shard reader-writer locks make concurrent mutation + query
  /// the contract on this backend (file comment above).
  bool SupportsConcurrentInsert() const override { return true; }

  /// Starts the background maintenance thread (no-op if already running).
  /// Each wake maintains ONE shard (round-robin) under that shard's
  /// writer lock, so a cycle never stalls queries on other shards.
  void StartMaintenance(const search::MaintenanceOptions& options);

  /// Stops and joins the maintenance thread; idempotent.
  void StopMaintenance();

  /// Runs one synchronous maintenance cycle over EVERY shard — the
  /// deterministic entry point for tests, benchmarks, and the serve
  /// admin verb (kMaintainNow). Safe while the background thread runs
  /// (shard locks serialize the cycles). Never fails on this backend.
  Result<search::MaintenanceReport> MaintainNow() override;

  /// Writes a v2 sharded snapshot. Takes every shard lock, so it is safe
  /// concurrently with queries and Inserts (they wait).
  Status Save(const std::string& path) const override;

  uint64_t IndexBytes() const override;
  std::string Describe() const override;

  /// The global database. NOT safe to read concurrently with mutations
  /// (queries never touch it; they read the per-shard slices) — use
  /// StableDb() when writers may be live. At 2+ shards the slices are
  /// copies, so set storage is held twice — the global view serves
  /// db()/Save and the id assignment; see the trade-offs section of
  /// docs/sharding.md. IndexBytes() reports index structures only, as on
  /// every backend.
  const SetDatabase& db() const override { return *global_db_; }

  /// Race-free database view: a deep copy of the global database taken
  /// under the mutation lock (O(|D|) — every mutating op holds insert_mu_,
  /// so the copy observes a consistent prefix). This is the supported way
  /// to read the database while Insert/Delete/Update run concurrently.
  std::shared_ptr<const SetDatabase> StableDb() const override;

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

 protected:
  /// Exact global range search: per-shard exact answers, concatenated and
  /// re-sorted under HitOrder. Safe concurrently with Insert. (Backend
  /// hook of the validating api::SearchEngine::Range template method.)
  api::QueryResult RangeImpl(SetView query, double delta) const override;

  /// Stripes (chunk, shard) sub-batches across ONE thread pool, like
  /// KnnBatch.
  std::vector<api::QueryResult> RangeBatchImpl(
      const std::vector<SetRecord>& queries, double delta) const override;

 private:
  /// One shard: its database slice, its index, and its reader-writer lock.
  /// With a single shard the slice IS the global database (no copy).
  struct Shard {
    mutable std::shared_mutex mu;
    std::shared_ptr<SetDatabase> db;
    std::unique_ptr<search::Les3Index> index;
  };

  /// What one shard contributes to a query: hits already mapped to global
  /// ids, the shard's stats, and its current size (for pruning
  /// efficiency over the whole database).
  struct Probe {
    std::vector<Hit> hits;
    search::QueryStats stats;
    uint64_t shard_size = 0;
  };

  ShardedEngine(std::shared_ptr<SetDatabase> db, size_t num_shards,
                SimilarityMeasure measure,
                bitmap::BitmapBackend bitmap_backend, size_t num_threads,
                bool from_snapshot);

  /// Splits the global database into per-shard slices (shared with the
  /// global database when there is only one shard).
  static std::vector<std::shared_ptr<SetDatabase>> SplitDb(
      const std::shared_ptr<SetDatabase>& db, size_t num_shards);

  /// Runs `run` against shard s's index under its reader lock, then maps
  /// the returned hits to global ids — the one place the locking protocol
  /// and the id mapping live.
  Probe RunProbe(size_t s,
                 const std::function<std::vector<Hit>(
                     const search::Les3Index&, search::QueryStats*)>& run)
      const;
  Probe ProbeKnn(size_t s, SetView query, size_t k) const;
  Probe ProbeRange(size_t s, SetView query, double delta) const;

  /// \brief One fused sub-batch probe: shard `s` answers all `nq` queries
  /// through the index's batched pipeline under ONE reader-lock
  /// acquisition, writing query q's probe (hits mapped to global ids) to
  /// out[q * stride]. Byte-identical per query to ProbeKnn/ProbeRange.
  void BatchProbeKnn(size_t s, const SetView* queries, size_t nq, size_t k,
                     Probe* out, size_t stride) const;
  void BatchProbeRange(size_t s, const SetView* queries, size_t nq,
                       double delta, Probe* out, size_t stride) const;

  /// Sums one probe's counters into `stats` and tracks the whole-database
  /// size and the slowest probe (the scatter-gather critical path).
  static void AccumulateProbe(const Probe& probe, search::QueryStats* stats,
                              uint64_t* db_size, double* critical_path);
  api::QueryResult MergeKnn(std::vector<Probe> probes, size_t k) const;
  api::QueryResult MergeRange(std::vector<Probe> probes) const;

  /// One bounded maintenance cycle on shard `s`, under its writer lock.
  search::MaintenanceReport MaintainShard(size_t s);

  std::shared_ptr<SetDatabase> global_db_;
  std::vector<std::unique_ptr<Shard>> shards_;
  SimilarityMeasure measure_;
  bitmap::BitmapBackend bitmap_backend_;
  bool from_snapshot_;
  /// Serializes global-id assignment and global_db_ mutation across
  /// concurrent Insert/Delete/Update (and StableDb copies); always
  /// acquired before any shard lock.
  mutable std::mutex insert_mu_;
  /// Per-shard query-activity counters (sized with shards_, never
  /// resized) feeding maintenance priorities; written from queries under
  /// the shard reader lock via relaxed atomics.
  std::vector<std::unique_ptr<search::GroupActivity>> activities_;
  search::MaintenanceOptions maintenance_options_;
  /// Round-robin shard cursor for the background thread.
  std::atomic<size_t> maintenance_cursor_{0};
  /// Declared last so it is destroyed (and joined) before the shards it
  /// walks. StopMaintenance() in the destructor path makes this explicit.
  std::unique_ptr<search::MaintenanceThread> maintenance_;
};

}  // namespace shard
}  // namespace les3

#endif  // LES3_SHARD_SHARDED_ENGINE_H_
