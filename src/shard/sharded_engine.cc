#include "shard/sharded_engine.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "search/builder.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace les3 {
namespace shard {
namespace {

size_t HardwareThreads() {
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

/// Queries per (chunk, shard) sub-batch probe. Large enough that the
/// fused column walk amortizes, small enough that the per-chunk counts
/// matrix stays cache-resident and chunks spread across the pool.
constexpr size_t kBatchChunk = 64;

}  // namespace

ShardedEngine::ShardedEngine(std::shared_ptr<SetDatabase> db,
                             size_t num_shards, SimilarityMeasure measure,
                             bitmap::BitmapBackend bitmap_backend,
                             size_t num_threads, bool from_snapshot)
    : api::SearchEngine(num_threads),
      global_db_(std::move(db)),
      measure_(measure),
      bitmap_backend_(bitmap_backend),
      from_snapshot_(from_snapshot) {
  auto locals = SplitDb(global_db_, num_shards);
  shards_.reserve(num_shards);
  activities_.reserve(num_shards);
  for (auto& local : locals) {
    auto s = std::make_unique<Shard>();
    s->db = std::move(local);
    shards_.push_back(std::move(s));
    // Grown to the shard's group count once its index exists; the vector
    // itself is never resized again, so queries index it lock-free.
    activities_.push_back(std::make_unique<search::GroupActivity>());
  }
}

std::vector<std::shared_ptr<SetDatabase>> ShardedEngine::SplitDb(
    const std::shared_ptr<SetDatabase>& db, size_t num_shards) {
  std::vector<std::shared_ptr<SetDatabase>> locals(num_shards);
  if (num_shards == 1) {
    // The 1-shard special case: the slice IS the global database — no
    // copy, and Insert appends exactly once.
    locals[0] = db;
    return locals;
  }
  for (auto& local : locals) local = std::make_shared<SetDatabase>();
  for (SetId gid = 0; gid < db->size(); ++gid) {
    SetId local = locals[gid % num_shards]->AddSet(db->set(gid));
    // Tombstones survive the split (a reopened flagged snapshot): the
    // deleted entry occupies its local id so the arithmetic mapping
    // holds, and the slice's live count matches its share of the global.
    if (db->is_deleted(gid)) locals[gid % num_shards]->DeleteSet(local);
  }
  return locals;
}

std::unique_ptr<ShardedEngine> ShardedEngine::Build(
    std::shared_ptr<SetDatabase> db, const api::EngineOptions& options) {
  size_t num_shards = options.num_shards == 0 ? 1 : options.num_shards;
  // Clamp so every shard starts with at least one set (residues 0..S-1
  // all occur when S <= |D|); insert routing uses the clamped count.
  if (num_shards > db->size()) num_shards = db->size();
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine(
      std::move(db), num_shards, options.measure, options.bitmap_backend,
      options.num_threads, /*from_snapshot=*/false));

  search::Les3BuildOptions build;
  build.measure = options.measure;
  build.num_groups = options.num_groups;
  build.cascade = options.cascade;
  build.bitmap_backend = options.bitmap_backend;
  // Sharded snapshots do not carry trained cascades (format v2).
  build.cascade.keep_models = false;
  size_t hw = HardwareThreads();
  if (num_shards > 1 && build.cascade.num_threads == 0) {
    // Shard-level parallelism replaces cascade-level parallelism: S
    // concurrent builds each training on hw/S threads keeps the machine
    // busy without oversubscribing it S-fold.
    build.cascade.num_threads = std::max<size_t>(1, hw / num_shards);
  }
  if (num_shards > 1) {
    // Constant TOTAL training budget across the fleet: each shard's split
    // problems involve 1/S of the data, and pruning is insensitive to
    // sample count beyond a modest threshold (paper Section 7.1), so each
    // shard's models train on pairs_per_model / S samples (floored, and
    // never raised above the caller's setting). Together with the
    // cross-shard parallelism above, this is why sharded build scales:
    // less work per model AND concurrent shards.
    size_t floor = std::min<size_t>(2000, build.cascade.pairs_per_model);
    build.cascade.pairs_per_model =
        std::max(floor, build.cascade.pairs_per_model / num_shards);
  }

  if (num_shards == 1) {
    engine->shards_[0]->index = std::make_unique<search::Les3Index>(
        search::BuildIndexOverShared(engine->shards_[0]->db, build));
    engine->activities_[0]->Grow(engine->shards_[0]->index->tgm().num_groups());
    return engine;
  }
  ThreadPool build_pool(std::min(num_shards, hw));
  build_pool.ParallelFor(num_shards, [&](size_t s) {
    engine->shards_[s]->index = std::make_unique<search::Les3Index>(
        search::BuildIndexOverShared(engine->shards_[s]->db, build));
    engine->activities_[s]->Grow(engine->shards_[s]->index->tgm().num_groups());
  });
  return engine;
}

std::unique_ptr<ShardedEngine> ShardedEngine::FromSnapshot(
    persist::LoadedSnapshot snapshot, const api::OpenOptions& options) {
  size_t num_shards = snapshot.shards.size();
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine(
      std::move(snapshot.db), num_shards, snapshot.meta.measure,
      snapshot.meta.bitmap_backend, options.num_threads,
      /*from_snapshot=*/true));
  for (size_t s = 0; s < num_shards; ++s) {
    engine->shards_[s]->index = std::make_unique<search::Les3Index>(
        engine->shards_[s]->db, std::move(snapshot.shards[s].tgm),
        snapshot.meta.measure);
    engine->activities_[s]->Grow(engine->shards_[s]->index->tgm().num_groups());
  }
  return engine;
}

ShardedEngine::Probe ShardedEngine::RunProbe(
    size_t s, const std::function<std::vector<Hit>(
                  const search::Les3Index&, search::QueryStats*)>& run) const {
  Probe probe;
  const Shard& sh = *shards_[s];
  {
    std::shared_lock<std::shared_mutex> lock(sh.mu);
    probe.hits = run(*sh.index, &probe.stats);
    probe.shard_size = sh.db->size();
  }
  const SetId stride = static_cast<SetId>(shards_.size());
  if (stride > 1) {
    for (Hit& h : probe.hits) {
      h.first = h.first * stride + static_cast<SetId>(s);
    }
  }
  return probe;
}

ShardedEngine::Probe ShardedEngine::ProbeKnn(size_t s, SetView query,
                                             size_t k) const {
  // The group-visit hook feeds the maintenance priorities: relaxed
  // atomic adds under the shard reader lock, contention-free with other
  // probes.
  return RunProbe(s,
                  [&](const search::Les3Index& index,
                      search::QueryStats* stats) {
                    return index.Knn(query, k, stats,
                                     [this, s](GroupId g, size_t candidates) {
                                       activities_[s]->Observe(g, candidates);
                                     });
                  });
}

ShardedEngine::Probe ShardedEngine::ProbeRange(size_t s,
                                               SetView query,
                                               double delta) const {
  return RunProbe(s,
                  [&](const search::Les3Index& index,
                      search::QueryStats* stats) {
                    return index.Range(query, delta, stats,
                                       [this, s](GroupId g, size_t candidates) {
                                         activities_[s]->Observe(g, candidates);
                                       });
                  });
}

void ShardedEngine::AccumulateProbe(const Probe& probe,
                                    search::QueryStats* stats,
                                    uint64_t* db_size,
                                    double* critical_path) {
  stats->candidates_verified += probe.stats.candidates_verified;
  stats->candidates_size_skipped += probe.stats.candidates_size_skipped;
  stats->groups_visited += probe.stats.groups_visited;
  stats->groups_pruned += probe.stats.groups_pruned;
  stats->columns_scanned += probe.stats.columns_scanned;
  *db_size += probe.shard_size;
  *critical_path = std::max(*critical_path, probe.stats.micros);
}

api::QueryResult ShardedEngine::MergeKnn(std::vector<Probe> probes,
                                         size_t k) const {
  api::QueryResult out;
  TopKHits best(k);
  uint64_t db_size = 0;
  double critical_path = 0.0;
  for (Probe& p : probes) {
    // Every global top-k hit is a top-k hit of its own shard (fewer than
    // k shard-mates beat it under HitOrder), so offering the per-shard
    // top-k lists to one TopKHits reproduces the exact global answer —
    // similarity ties resolving toward the smaller GLOBAL id, because the
    // local-to-global mapping is monotone within a shard.
    for (const Hit& h : p.hits) best.Offer(h);
    AccumulateProbe(p, &out.stats, &db_size, &critical_path);
  }
  out.hits = best.Take();
  out.stats.results = out.hits.size();
  out.stats.pruning_efficiency =
      search::KnnPruningEfficiency(db_size, out.stats.candidates_verified, k);
  // Scatter-gather latency is the slowest shard probe; the single-query
  // entry points overwrite this with the measured wall time.
  out.stats.micros = critical_path;
  return out;
}

api::QueryResult ShardedEngine::MergeRange(std::vector<Probe> probes) const {
  api::QueryResult out;
  uint64_t db_size = 0;
  double critical_path = 0.0;
  for (Probe& p : probes) {
    out.hits.insert(out.hits.end(), p.hits.begin(), p.hits.end());
    AccumulateProbe(p, &out.stats, &db_size, &critical_path);
  }
  SortHits(&out.hits);
  out.stats.results = out.hits.size();
  out.stats.pruning_efficiency = search::RangePruningEfficiency(
      db_size, out.stats.candidates_verified, out.stats.results);
  out.stats.micros = critical_path;
  return out;
}

api::QueryResult ShardedEngine::Knn(SetView query, size_t k) const {
  WallTimer timer;
  const size_t num_shards = shards_.size();
  std::vector<Probe> probes(num_shards);
  if (num_shards == 1) {
    probes[0] = ProbeKnn(0, query, k);
  } else {
    pool().ParallelFor(num_shards,
                       [&](size_t s) { probes[s] = ProbeKnn(s, query, k); });
  }
  api::QueryResult out = MergeKnn(std::move(probes), k);
  out.stats.micros = timer.Micros();
  return out;
}

api::QueryResult ShardedEngine::RangeImpl(SetView query,
                                          double delta) const {
  WallTimer timer;
  const size_t num_shards = shards_.size();
  std::vector<Probe> probes(num_shards);
  if (num_shards == 1) {
    probes[0] = ProbeRange(0, query, delta);
  } else {
    pool().ParallelFor(
        num_shards, [&](size_t s) { probes[s] = ProbeRange(s, query, delta); });
  }
  api::QueryResult out = MergeRange(std::move(probes));
  out.stats.micros = timer.Micros();
  return out;
}

void ShardedEngine::BatchProbeKnn(size_t s, const SetView* queries, size_t nq,
                                  size_t k, Probe* out, size_t stride) const {
  std::vector<std::vector<Hit>> hits;
  std::vector<search::QueryStats> stats;
  uint64_t shard_size = 0;
  const Shard& sh = *shards_[s];
  {
    std::shared_lock<std::shared_mutex> lock(sh.mu);
    sh.index->KnnBatch(queries, nq, k, &hits, &stats,
                       [this, s](GroupId g, size_t candidates) {
                         activities_[s]->Observe(g, candidates);
                       });
    shard_size = sh.db->size();
  }
  const SetId id_stride = static_cast<SetId>(shards_.size());
  for (size_t q = 0; q < nq; ++q) {
    Probe& p = out[q * stride];
    p.hits = std::move(hits[q]);
    p.stats = stats[q];
    p.shard_size = shard_size;
    if (id_stride > 1) {
      for (Hit& h : p.hits) {
        h.first = h.first * id_stride + static_cast<SetId>(s);
      }
    }
  }
}

void ShardedEngine::BatchProbeRange(size_t s, const SetView* queries,
                                    size_t nq, double delta, Probe* out,
                                    size_t stride) const {
  std::vector<std::vector<Hit>> hits;
  std::vector<search::QueryStats> stats;
  uint64_t shard_size = 0;
  const Shard& sh = *shards_[s];
  {
    std::shared_lock<std::shared_mutex> lock(sh.mu);
    sh.index->RangeBatch(queries, nq, delta, &hits, &stats,
                         [this, s](GroupId g, size_t candidates) {
                           activities_[s]->Observe(g, candidates);
                         });
    shard_size = sh.db->size();
  }
  const SetId id_stride = static_cast<SetId>(shards_.size());
  for (size_t q = 0; q < nq; ++q) {
    Probe& p = out[q * stride];
    p.hits = std::move(hits[q]);
    p.stats = stats[q];
    p.shard_size = shard_size;
    if (id_stride > 1) {
      for (Hit& h : p.hits) {
        h.first = h.first * id_stride + static_cast<SetId>(s);
      }
    }
  }
}

std::vector<api::QueryResult> ShardedEngine::KnnBatch(
    const std::vector<SetRecord>& queries, size_t k) const {
  const size_t num_shards = shards_.size();
  const size_t nq = queries.size();
  std::vector<api::QueryResult> results(nq);
  if (nq == 0) return results;
  // One flat (chunk, shard) grid on ONE pool — the base-class batch path
  // would call Knn from inside a pool task, which would Submit to (and
  // Wait on) the pool it runs on: a deadlock, not just a slowdown. Each
  // task is one fused batched probe (one column walk per chunk), the
  // tentpole's whole point; each shard still sees every chunk, so the
  // grid keeps all cores busy even on few-shard engines.
  std::vector<SetView> views;
  views.reserve(nq);
  for (const SetRecord& q : queries) views.push_back(q.view());
  const size_t num_chunks = (nq + kBatchChunk - 1) / kBatchChunk;
  std::vector<Probe> probes(nq * num_shards);
  pool().ParallelFor(num_chunks * num_shards, [&](size_t t) {
    const size_t c = t / num_shards;
    const size_t s = t % num_shards;
    const size_t begin = c * kBatchChunk;
    const size_t n = std::min(kBatchChunk, nq - begin);
    BatchProbeKnn(s, views.data() + begin, n, k,
                  &probes[begin * num_shards + s], num_shards);
  });
  for (size_t q = 0; q < nq; ++q) {
    std::vector<Probe> per(
        std::make_move_iterator(probes.begin() + q * num_shards),
        std::make_move_iterator(probes.begin() + (q + 1) * num_shards));
    results[q] = MergeKnn(std::move(per), k);
  }
  return results;
}

std::vector<api::QueryResult> ShardedEngine::RangeBatchImpl(
    const std::vector<SetRecord>& queries, double delta) const {
  const size_t num_shards = shards_.size();
  const size_t nq = queries.size();
  std::vector<api::QueryResult> results(nq);
  if (nq == 0) return results;
  std::vector<SetView> views;
  views.reserve(nq);
  for (const SetRecord& q : queries) views.push_back(q.view());
  const size_t num_chunks = (nq + kBatchChunk - 1) / kBatchChunk;
  std::vector<Probe> probes(nq * num_shards);
  pool().ParallelFor(num_chunks * num_shards, [&](size_t t) {
    const size_t c = t / num_shards;
    const size_t s = t % num_shards;
    const size_t begin = c * kBatchChunk;
    const size_t n = std::min(kBatchChunk, nq - begin);
    BatchProbeRange(s, views.data() + begin, n, delta,
                    &probes[begin * num_shards + s], num_shards);
  });
  for (size_t q = 0; q < nq; ++q) {
    std::vector<Probe> per(
        std::make_move_iterator(probes.begin() + q * num_shards),
        std::make_move_iterator(probes.begin() + (q + 1) * num_shards));
    results[q] = MergeRange(std::move(per));
  }
  return results;
}

Result<SetId> ShardedEngine::Insert(SetRecord set) {
  const size_t num_shards = shards_.size();
  // insert_mu_ pins the global id and the global-db append; the shard's
  // writer lock covers the index update. Queries take only shard locks
  // (shared), so they proceed on every shard throughout — including this
  // one, up to the moment the index mutation begins.
  std::lock_guard<std::mutex> global_lock(insert_mu_);
  SetId gid = static_cast<SetId>(global_db_->size());
  Shard& sh = *shards_[gid % num_shards];
  std::unique_lock<std::shared_mutex> shard_lock(sh.mu);
  // With one shard the slice is the global database and the index insert
  // below is the single append.
  if (num_shards > 1) global_db_->AddSet(set);
  SetId local = sh.index->Insert(std::move(set));
  // The arithmetic mapping stays closed under inserts: the new local id
  // is exactly gid / num_shards.
  (void)local;
  return gid;
}

Status ShardedEngine::Delete(SetId id) {
  const size_t num_shards = shards_.size();
  // Same protocol as Insert: insert_mu_ serializes global-db mutation
  // and the validity check, the shard writer lock covers the index.
  std::lock_guard<std::mutex> global_lock(insert_mu_);
  if (id >= global_db_->size() || global_db_->is_deleted(id)) {
    return Status::NotFound("no live set with id " + std::to_string(id));
  }
  Shard& sh = *shards_[id % num_shards];
  std::unique_lock<std::shared_mutex> shard_lock(sh.mu);
  if (num_shards == 1) {
    // The slice IS the global database; the index delete tombstones both.
    if (!sh.index->Delete(id)) {
      return Status::Internal("shard delete failed for id " +
                              std::to_string(id));
    }
    return Status::OK();
  }
  if (!sh.index->Delete(id / num_shards)) {
    return Status::Internal("shard delete failed for id " +
                            std::to_string(id));
  }
  global_db_->DeleteSet(id);
  return Status::OK();
}

Status ShardedEngine::Update(SetId id, SetRecord set) {
  const size_t num_shards = shards_.size();
  std::lock_guard<std::mutex> global_lock(insert_mu_);
  if (id >= global_db_->size() || global_db_->is_deleted(id)) {
    return Status::NotFound("no live set with id " + std::to_string(id));
  }
  Shard& sh = *shards_[id % num_shards];
  std::unique_lock<std::shared_mutex> shard_lock(sh.mu);
  if (num_shards > 1) global_db_->ReplaceSet(id, set);
  const SetId local = num_shards == 1 ? id : id / num_shards;
  if (!sh.index->Update(local, std::move(set))) {
    return Status::Internal("shard update failed for id " +
                            std::to_string(id));
  }
  return Status::OK();
}

std::shared_ptr<const SetDatabase> ShardedEngine::StableDb() const {
  // Every mutating op holds insert_mu_ while it touches global_db_, so a
  // copy taken under it is a consistent point-in-time view. O(|D|), by
  // design — the race-free read path trades a copy for zero overhead on
  // the mutation path.
  std::lock_guard<std::mutex> global_lock(insert_mu_);
  return std::make_shared<const SetDatabase>(*global_db_);
}

void ShardedEngine::StartMaintenance(
    const search::MaintenanceOptions& options) {
  if (maintenance_ != nullptr) return;
  maintenance_options_ = options;
  maintenance_ = std::make_unique<search::MaintenanceThread>(
      [this] {
        // One shard per wake, round-robin: the writer-lock critical
        // section stays bounded and queries on other shards never wait.
        const size_t s =
            maintenance_cursor_.fetch_add(1, std::memory_order_relaxed) %
            shards_.size();
        return MaintainShard(s);
      },
      options.interval);
}

void ShardedEngine::StopMaintenance() { maintenance_.reset(); }

Result<search::MaintenanceReport> ShardedEngine::MaintainNow() {
  search::MaintenanceReport total;
  for (size_t s = 0; s < shards_.size(); ++s) total += MaintainShard(s);
  return total;
}

search::MaintenanceReport ShardedEngine::MaintainShard(size_t s) {
  Shard& sh = *shards_[s];
  std::unique_lock<std::shared_mutex> lock(sh.mu);
  return search::MaintainIndexOnce(sh.index.get(), maintenance_options_,
                                   activities_[s].get());
}

Status ShardedEngine::Save(const std::string& path) const {
  std::lock_guard<std::mutex> global_lock(insert_mu_);
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const auto& sh : shards_) locks.emplace_back(sh->mu);
  persist::SnapshotMeta meta;
  meta.backend = "sharded_les3";
  meta.measure = measure_;
  meta.bitmap_backend = bitmap_backend_;
  std::vector<const tgm::Tgm*> tgms;
  std::vector<const SetDatabase*> dbs;
  tgms.reserve(shards_.size());
  dbs.reserve(shards_.size());
  for (const auto& sh : shards_) {
    tgms.push_back(&sh->index->tgm());
    dbs.push_back(sh->db.get());
  }
  return persist::SaveShardedSnapshot(path, meta, *global_db_, tgms, dbs);
}

uint64_t ShardedEngine::IndexBytes() const {
  uint64_t total = 0;
  for (const auto& sh : shards_) {
    std::shared_lock<std::shared_mutex> lock(sh->mu);
    total += sh->index->IndexBytes();
  }
  return total;
}

std::string ShardedEngine::Describe() const {
  std::string s = "sharded_les3(shards=" + std::to_string(shards_.size()) +
                  ", measure=" + ToString(measure_) +
                  ", bitmap=" + bitmap::ToString(bitmap_backend_) +
                  ", groups=[";
  uint64_t dirt = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::shared_lock<std::shared_mutex> lock(shards_[i]->mu);
    if (i > 0) s += ",";
    s += std::to_string(shards_[i]->index->tgm().num_groups());
    dirt += shards_[i]->index->tgm().TotalDirt();
  }
  s += "]";
  if (from_snapshot_) {
    s += ", snapshot=v" + std::to_string(persist::kSnapshotVersionSharded);
  }
  s += ")";
  {
    // Population counters live in the global database; insert_mu_ is the
    // lock that guards it (taken after the shard locks above are
    // released, so there is no ordering inversion).
    std::lock_guard<std::mutex> global_lock(insert_mu_);
    if (global_db_->num_deleted() > 0) {
      s += " [live=" + std::to_string(global_db_->num_live()) +
           ", deleted=" + std::to_string(global_db_->num_deleted()) + "]";
    }
    // Mutation debt, when any exists: stale column bits awaiting
    // maintenance and arena tokens of tombstoned sets (both counted in
    // IndexBytes / memory reporting, attributed here).
    uint64_t garbage = global_db_->GarbageTokens();
    if (dirt != 0 || garbage != 0) {
      s += " [dirt=" + std::to_string(dirt) +
           ", garbage_tokens=" + std::to_string(garbage) + "]";
    }
  }
  return s;
}

}  // namespace shard
}  // namespace les3
