// A d-dimensional R-tree over float vectors, bulk loaded sort-tile-recursive
// style (cycling the widest dimension per level). Substrate for the
// DualTrans baseline (baselines/dualtrans.h): entries are transformed set
// vectors, and queries walk the tree best-first under a caller-supplied
// upper-bound function evaluated on node MBRs.

#ifndef LES3_RTREE_RTREE_H_
#define LES3_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace les3 {
namespace rtree {

/// Axis-aligned bounding box in d dimensions.
struct Mbr {
  std::vector<float> lo;
  std::vector<float> hi;
};

struct RTreeOptions {
  size_t leaf_capacity = 32;
  size_t fanout = 8;
};

/// \brief Bulk-loaded R-tree with best-first traversal.
class RTree {
 public:
  using Options = RTreeOptions;

  /// Bulk loads `vectors` (all the same dimension); entry i keeps id i.
  RTree(const std::vector<std::vector<float>>& vectors, Options options = {});

  size_t dim() const { return dim_; }
  size_t num_entries() const { return num_entries_; }

  /// Upper-bound score of a node MBR; must dominate Score of any entry
  /// inside. Higher = more promising.
  using MbrScore = std::function<double(const Mbr&)>;
  /// Exact score of one entry id.
  using EntryScore = std::function<double(uint32_t)>;

  /// Best-first search: returns the k entries with the highest EntryScore,
  /// sorted descending, provided MbrScore upper-bounds EntryScore. Counters
  /// (may be null): nodes popped, entries scored.
  std::vector<std::pair<uint32_t, double>> TopK(
      size_t k, const MbrScore& bound, const EntryScore& score,
      uint64_t* nodes_visited, uint64_t* entries_scored) const;

  /// All entries whose EntryScore >= threshold, pruned by MbrScore.
  std::vector<std::pair<uint32_t, double>> RangeSearch(
      double threshold, const MbrScore& bound, const EntryScore& score,
      uint64_t* nodes_visited, uint64_t* entries_scored) const;

  /// Total bytes of nodes + MBRs + entry lists (Figure 11 accounting).
  uint64_t MemoryBytes() const;

  size_t num_nodes() const { return nodes_.size(); }

  /// Leaf node ids in [0, num_nodes()) — exposed so the disk layer can map
  /// node visits to page reads.
  bool IsLeaf(size_t node) const { return nodes_[node].leaf; }
  const std::vector<uint32_t>& NodeEntries(size_t node) const {
    return nodes_[node].entries;
  }

 private:
  struct Node {
    Mbr mbr;
    bool leaf = false;
    std::vector<uint32_t> children;  // node ids (internal)
    std::vector<uint32_t> entries;   // entry ids (leaf)
  };

  /// Recursively packs `ids` (indices into vectors) into a subtree; returns
  /// the root node id.
  uint32_t Build(const std::vector<std::vector<float>>& vectors,
                 std::vector<uint32_t>* ids, size_t lo, size_t hi);

  Mbr ComputeMbr(const std::vector<std::vector<float>>& vectors,
                 const std::vector<uint32_t>& ids, size_t lo, size_t hi) const;

  size_t dim_ = 0;
  size_t num_entries_ = 0;
  Options options_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
};

}  // namespace rtree
}  // namespace les3

#endif  // LES3_RTREE_RTREE_H_
