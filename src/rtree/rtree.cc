#include "rtree/rtree.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/types.h"
#include "util/logging.h"

namespace les3 {
namespace rtree {

RTree::RTree(const std::vector<std::vector<float>>& vectors, Options options)
    : options_(options) {
  num_entries_ = vectors.size();
  if (vectors.empty()) {
    Node root;
    root.leaf = true;
    nodes_.push_back(root);
    root_ = 0;
    return;
  }
  dim_ = vectors[0].size();
  std::vector<uint32_t> ids(vectors.size());
  for (uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
  root_ = Build(vectors, &ids, 0, ids.size());
}

Mbr RTree::ComputeMbr(const std::vector<std::vector<float>>& vectors,
                      const std::vector<uint32_t>& ids, size_t lo,
                      size_t hi) const {
  Mbr mbr;
  mbr.lo.assign(dim_, std::numeric_limits<float>::max());
  mbr.hi.assign(dim_, std::numeric_limits<float>::lowest());
  for (size_t i = lo; i < hi; ++i) {
    const auto& v = vectors[ids[i]];
    for (size_t d = 0; d < dim_; ++d) {
      mbr.lo[d] = std::min(mbr.lo[d], v[d]);
      mbr.hi[d] = std::max(mbr.hi[d], v[d]);
    }
  }
  return mbr;
}

uint32_t RTree::Build(const std::vector<std::vector<float>>& vectors,
                      std::vector<uint32_t>* ids, size_t lo, size_t hi) {
  size_t count = hi - lo;
  Node node;
  node.mbr = ComputeMbr(vectors, *ids, lo, hi);
  if (count <= options_.leaf_capacity) {
    node.leaf = true;
    node.entries.assign(ids->begin() + lo, ids->begin() + hi);
    nodes_.push_back(std::move(node));
    return static_cast<uint32_t>(nodes_.size() - 1);
  }
  // Sort-tile: order this run along its widest dimension and cut it into
  // `fanout` equal tiles.
  size_t widest = 0;
  float best_spread = -1.0f;
  for (size_t d = 0; d < dim_; ++d) {
    float spread = node.mbr.hi[d] - node.mbr.lo[d];
    if (spread > best_spread) {
      best_spread = spread;
      widest = d;
    }
  }
  std::sort(ids->begin() + lo, ids->begin() + hi,
            [&](uint32_t a, uint32_t b) {
              return vectors[a][widest] < vectors[b][widest];
            });
  size_t parts = std::min(options_.fanout, count);
  std::vector<std::pair<size_t, size_t>> runs;
  for (size_t p = 0; p < parts; ++p) {
    size_t a = lo + count * p / parts;
    size_t b = lo + count * (p + 1) / parts;
    if (a < b) runs.emplace_back(a, b);
  }
  for (auto [a, b] : runs) {
    node.children.push_back(Build(vectors, ids, a, b));
  }
  nodes_.push_back(std::move(node));
  return static_cast<uint32_t>(nodes_.size() - 1);
}

std::vector<std::pair<uint32_t, double>> RTree::TopK(
    size_t k, const MbrScore& bound, const EntryScore& score,
    uint64_t* nodes_visited, uint64_t* entries_scored) const {
  using Frontier = std::pair<double, uint32_t>;
  std::priority_queue<Frontier> frontier;
  frontier.push({bound(nodes_[root_].mbr), root_});
  TopKHits best(k);
  while (!frontier.empty()) {
    auto [ub, node_id] = frontier.top();
    frontier.pop();
    // Strict comparison: a node tying the k-th score may still hold an
    // equal-score entry with a smaller id (HitOrder tie-handling).
    if (best.full() && ub < best.WorstSimilarity()) break;
    if (nodes_visited != nullptr) ++*nodes_visited;
    const Node& node = nodes_[node_id];
    if (node.leaf) {
      for (uint32_t e : node.entries) {
        if (entries_scored != nullptr) ++*entries_scored;
        best.Offer(e, score(e));
      }
    } else {
      for (uint32_t child : node.children) {
        frontier.push({bound(nodes_[child].mbr), child});
      }
    }
  }
  return best.Take();
}

std::vector<std::pair<uint32_t, double>> RTree::RangeSearch(
    double threshold, const MbrScore& bound, const EntryScore& score,
    uint64_t* nodes_visited, uint64_t* entries_scored) const {
  std::vector<std::pair<uint32_t, double>> out;
  std::vector<uint32_t> stack{root_};
  while (!stack.empty()) {
    uint32_t node_id = stack.back();
    stack.pop_back();
    if (bound(nodes_[node_id].mbr) < threshold) continue;
    if (nodes_visited != nullptr) ++*nodes_visited;
    const Node& node = nodes_[node_id];
    if (node.leaf) {
      for (uint32_t e : node.entries) {
        double s = score(e);
        if (entries_scored != nullptr) ++*entries_scored;
        if (s >= threshold) out.emplace_back(e, s);
      }
    } else {
      for (uint32_t child : node.children) stack.push_back(child);
    }
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second > b.second || (a.second == b.second && a.first < b.first);
  });
  return out;
}

uint64_t RTree::MemoryBytes() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += 2 * dim_ * sizeof(float);  // MBR
    total += node.children.size() * sizeof(uint32_t);
    total += node.entries.size() * sizeof(uint32_t);
    total += sizeof(Node);
  }
  return total;
}

}  // namespace rtree
}  // namespace les3
